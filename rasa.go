// Package rasa is the public API of the RASA library — an implementation
// of "Resource Allocation with Service Affinity in Large-Scale Cloud
// Environments" (ICDE 2024).
//
// RASA computes container-to-machine mappings that maximize *gained
// affinity*: the share of inter-service traffic that can be served
// between collocated containers over IPC instead of crossing the network
// (Definition 1 of the paper). The optimizer follows the paper's
// three-phase algorithm — multi-stage service partitioning, learned
// algorithm selection between MIP and column generation, and migration
// path computation — implemented entirely in Go on a from-scratch
// simplex/branch-and-bound substrate.
//
// Quick start (the API is context-first; the non-context forms in
// compat.go are deprecated wrappers):
//
//	b := rasa.NewClusterBuilder("cpu", "memory")
//	web := b.AddService("web", 4, rasa.Resources{2, 4})
//	cache := b.AddService("cache", 4, rasa.Resources{1, 8})
//	for i := 0; i < 4; i++ {
//		b.AddMachine(fmt.Sprintf("node-%d", i), rasa.Resources{8, 32})
//	}
//	b.SetAffinity(web, cache, 1.0) // traffic volume between the services
//	p, _ := b.Build()
//	current, _ := rasa.Schedule(p, 42) // or your cluster's real state
//	ctx := context.Background()
//	res, _ := rasa.OptimizeContext(ctx, p, current, rasa.Options{Budget: time.Second})
//	fmt.Println(res.GainedAffinity, len(res.Plan.Steps))
//
// Failures are classified by the sentinel errors ErrInvalidProblem,
// ErrInfeasible, and ErrBudgetExceeded (see errors.go) — test with
// errors.Is rather than matching message strings.
//
// See the examples/ directory for complete programs and DESIGN.md for
// the system inventory.
package rasa

import (
	"context"
	"fmt"
	"time"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/core"
	"github.com/cloudsched/rasa/internal/graph"
	"github.com/cloudsched/rasa/internal/learn"
	"github.com/cloudsched/rasa/internal/migrate"
	"github.com/cloudsched/rasa/internal/partition"
	"github.com/cloudsched/rasa/internal/pool"
	"github.com/cloudsched/rasa/internal/prodsim"
	"github.com/cloudsched/rasa/internal/sched"
	"github.com/cloudsched/rasa/internal/selector"
	"github.com/cloudsched/rasa/internal/solve"
	"github.com/cloudsched/rasa/internal/workload"
)

// Core problem model (see internal/cluster).
type (
	// Problem is a full RASA instance: services, machines, constraints
	// and the affinity graph.
	Problem = cluster.Problem
	// Service is a microservice with an SLA replica count and a
	// per-container resource request.
	Service = cluster.Service
	// Machine is a host with multi-dimensional capacity.
	Machine = cluster.Machine
	// Resources is a vector of resource quantities (same ordering as
	// Problem.ResourceNames).
	Resources = cluster.Resources
	// AntiAffinityRule caps containers of a service set per machine.
	AntiAffinityRule = cluster.AntiAffinityRule
	// Assignment is a container-to-machine mapping x[s][m].
	Assignment = cluster.Assignment
	// Violation describes one constraint violation found by
	// Assignment.Check.
	Violation = cluster.Violation
	// AffinityGraph is the weighted service-affinity graph.
	AffinityGraph = graph.Graph
	// PriorityLevel weights a service's traffic in the affinity graph
	// (Section II-B).
	PriorityLevel = cluster.PriorityLevel
)

// Priority levels for SetServicePriority.
const (
	PriorityLow      = cluster.PriorityLow
	PriorityNormal   = cluster.PriorityNormal
	PriorityHigh     = cluster.PriorityHigh
	PriorityCritical = cluster.PriorityCritical
)

// Optimization pipeline (see internal/core).
type (
	// Options tunes an Optimize pass.
	Options = core.Options
	// Result is the outcome of an Optimize pass.
	Result = core.Result
	// Strategy selects the service-partitioning algorithm.
	Strategy = core.Strategy
	// PartitionOptions tunes the partitioning phase (master ratio,
	// subproblem size, sampling).
	PartitionOptions = partition.Options
	// Policy chooses between the MIP and column-generation algorithms
	// for each subproblem.
	Policy = selector.Policy
	// SolveStats reports solver effort: simplex pivots, branch-and-bound
	// nodes, CG columns and pricing rounds, per-phase wall time, and the
	// cause that stopped the solve. Result.Stats aggregates it across
	// every subproblem of an Optimize pass.
	SolveStats = solve.Stats
	// StopCause reports why a solve stopped (see the Stop* constants).
	StopCause = solve.StopCause
)

// Stop causes reported in SolveStats.Stop.
const (
	StopNone      = solve.None
	StopOptimal   = solve.Optimal
	StopDeadline  = solve.Deadline
	StopCancelled = solve.Cancelled
	StopNodeLimit = solve.NodeLimit
)

// Partitioning strategies (Fig. 6 of the paper).
const (
	Multistage      = core.Multistage
	RandomPartition = core.RandomPartition
	KWayPartition   = core.KWayPartition
	NoPartition     = core.NoPartition
)

// Migration planning (see internal/migrate).
type (
	// MigrationPlan is an ordered list of parallel command sets.
	MigrationPlan = migrate.Plan
	// MigrationStep is one parallel command set.
	MigrationStep = migrate.Step
	// MigrationCommand deletes or creates one container.
	MigrationCommand = migrate.Command
)

// Workload generation (see internal/workload).
type (
	// Preset describes a synthetic cluster to generate.
	Preset = workload.Preset
	// GeneratedCluster is a generated problem plus its initial
	// (pre-RASA) deployment.
	GeneratedCluster = workload.Cluster
)

// Production simulation (see internal/prodsim).
type (
	// Simulation configures the CronJob-driven production simulator.
	Simulation = prodsim.Config
	// SimulationReport is one scenario's time series.
	SimulationReport = prodsim.Report
	// SimulationComparison bundles WITH/WITHOUT/ONLY-COLLOCATED runs.
	SimulationComparison = prodsim.Comparison
)

// NewAssignment returns an empty assignment for n services and m
// machines.
func NewAssignment(n, m int) *Assignment { return cluster.NewAssignment(n, m) }

// NewAffinityGraph returns an empty affinity graph over n services.
func NewAffinityGraph(n int) *AffinityGraph { return graph.New(n) }

// OptimizeContext runs the full RASA algorithm: partition the cluster,
// select a solver per subproblem, solve in parallel under
// Options.Budget, merge, and compute the migration plan from current to
// the optimized mapping.
//
// Every phase of the pipeline observes ctx, and a cancelled pass still
// returns the best mapping assembled so far (solvers hand back their
// incumbents, greedy fallbacks cover the rest) rather than an error.
// Result.Stats reports how far the pass got and why it stopped.
func OptimizeContext(ctx context.Context, p *Problem, current *Assignment, opts Options) (*Result, error) {
	res, err := core.Optimize(ctx, p, current, opts)
	return res, wrapErr(err)
}

// Schedule computes an affinity-oblivious initial placement with the
// ORIGINAL production scheduler (online first-fit with filter/score) —
// useful to bootstrap experiments when no real cluster state exists.
func Schedule(p *Problem, seed int64) (*Assignment, error) {
	a, err := sched.Original(p, seed)
	return a, wrapErr(err)
}

// PlanMigrationContext computes an executable migration path from one
// feasible assignment to another, keeping at least minAlive (default
// 0.75) of every service's containers running and never exceeding
// capacities. A cancelled planning run returns the partial plan built
// so far together with the context's error; a stalled one returns the
// reachable prefix with an error wrapping ErrInfeasible (every plan
// prefix is safe to execute).
func PlanMigrationContext(ctx context.Context, p *Problem, from, to *Assignment, minAlive float64) (*MigrationPlan, error) {
	plan, err := migrate.Compute(ctx, p, from, to, migrate.Options{MinAlive: minAlive})
	return plan, wrapErr(err)
}

// SimulateMigration replays a plan, validating every step, and returns
// the final assignment.
func SimulateMigration(p *Problem, from *Assignment, plan *MigrationPlan, minAlive float64) (*Assignment, error) {
	a, err := migrate.Simulate(p, from, plan, minAlive)
	return a, wrapErr(err)
}

// HeuristicPolicy returns the empirical CG/MIP selection rule of
// Section V-C — the zero-training default.
func HeuristicPolicy() Policy { return selector.Heuristic{} }

// AlwaysCG returns the fixed column-generation selection policy
// (ablation baseline).
func AlwaysCG() Policy { return selector.Fixed{Algorithm: pool.CG} }

// AlwaysMIP returns the fixed MIP selection policy (ablation baseline).
func AlwaysMIP() Policy { return selector.Fixed{Algorithm: pool.MIP} }

// Generate builds a synthetic cluster from a preset, including its
// initial deployment.
func Generate(ps Preset) (*GeneratedCluster, error) { return workload.Generate(ps) }

// EvaluationPresets returns the M1–M4 cluster presets (Table II shapes,
// scaled).
func EvaluationPresets() []Preset { return workload.EvaluationPresets() }

// TrainingPresets returns the T1–T4 presets used to train the GCN
// selector.
func TrainingPresets() []Preset { return workload.TrainingPresets() }

// TrainingConfig configures TrainPolicyContext.
type TrainingConfig struct {
	// Clusters to label; nil generates the paper's T1–T4 training
	// presets.
	Clusters []*GeneratedCluster
	// Kind picks the classifier: "gcn" (default, Section IV-D) or "mlp"
	// (the topology-blind baseline of Fig. 8).
	Kind string
	// LabelBudget is the per-subproblem CG-vs-MIP race budget. Default
	// 200ms.
	LabelBudget time.Duration
	// Rounds partitions each cluster this many times with increasing
	// subproblem sizes, widening the training distribution. Default 3.
	Rounds int
	// MinConfidence is the returned policy's race threshold: serving-
	// path predictions below it race CG-vs-MIP instead of trusting the
	// model (and, for kind "gcn", feed the outcome back into the
	// trainer). Zero never races.
	MinConfidence float64
	// Seed drives partitioning, labelling, and weight init.
	Seed int64
}

func (c TrainingConfig) withDefaults() TrainingConfig {
	if c.Kind == "" {
		c.Kind = "gcn"
	}
	if c.LabelBudget <= 0 {
		c.LabelBudget = 200 * time.Millisecond
	}
	if c.Rounds <= 0 {
		c.Rounds = 3
	}
	return c
}

// TrainedPolicy is a versioned, ready-to-serve selection policy
// returned by TrainPolicyContext.
type TrainedPolicy struct {
	// Policy is the live selection policy. For kind "gcn" it stays
	// online: plugged into Options.Policy, low-confidence subproblems
	// are raced and the outcomes retrain the model in place (versions
	// advance past the Version recorded here).
	Policy
	// Version is the model version right after offline training (1 for
	// a fresh trainer).
	Version int
	// HoldoutAccuracy is predictor-vs-oracle accuracy on the held-out
	// labelled split (ties excluded).
	HoldoutAccuracy float64
	// Examples is the number of labelled races the training consumed.
	Examples int
}

// TrainPolicyContext builds the learned algorithm-selection policy of
// Section IV-D end to end: it partitions each training cluster several
// times with varying subproblem sizes, labels every subproblem by
// racing CG against MIP under cfg.LabelBudget, fits the classifier, and
// returns it as a versioned policy. ctx cancels the labelling races
// (the fit itself is fast and uninterruptible).
//
// For the default kind "gcn" the returned policy wraps an online
// trainer seeded with the offline examples, so serving it keeps
// improving the model; see TrainedPolicy.Policy. It replaces the
// deprecated TrainSelectorContext / TrainMLPSelectorContext /
// LabelSubproblemsContext trio.
func TrainPolicyContext(ctx context.Context, cfg TrainingConfig) (*TrainedPolicy, error) {
	cfg = cfg.withDefaults()
	clusters := cfg.Clusters
	if clusters == nil {
		for _, ps := range TrainingPresets() {
			c, err := Generate(ps)
			if err != nil {
				return nil, wrapErr(err)
			}
			clusters = append(clusters, c)
		}
	}
	labeled, err := labelClusters(ctx, clusters, cfg.LabelBudget, cfg.Rounds, cfg.Seed)
	if err != nil {
		return nil, err
	}
	switch cfg.Kind {
	case "gcn":
		trainer := learn.NewTrainer(learn.Options{
			Capacity: max(256, len(labeled)),
			// One forced fit below instead of cadence-triggered refits
			// mid-feed.
			RetrainEvery: len(labeled) + 1,
			Epochs:       800,
			Seed:         cfg.Seed,
		})
		for _, l := range labeled {
			trainer.Observe(l)
		}
		trainer.Retrain()
		out := &TrainedPolicy{
			Policy:   &learn.Policy{Trainer: trainer, MinConfidence: cfg.MinConfidence},
			Examples: len(labeled),
		}
		if m := trainer.Model(); m != nil {
			out.Version = m.Version
			out.HoldoutAccuracy = m.HoldoutAccuracy
		}
		return out, nil
	case "mlp":
		// Mirror the trainer's every-5th holdout split so the reported
		// accuracy is comparable across kinds.
		var train, holdout []selector.Labeled
		for i, l := range labeled {
			if !l.Tie && (i+1)%5 == 0 {
				holdout = append(holdout, l)
			} else {
				train = append(train, l)
			}
		}
		m := selector.TrainMLP(train, cfg.Seed)
		return &TrainedPolicy{
			Policy:          selector.MLPPolicy{Model: m, MinConfidence: cfg.MinConfidence},
			Version:         1,
			HoldoutAccuracy: m.Accuracy(selector.ToSamples(holdout)),
			Examples:        len(labeled),
		}, nil
	}
	return nil, wrapErr(fmt.Errorf("%w: unknown policy kind %q (want gcn or mlp)", ErrInvalidProblem, cfg.Kind))
}

// labelClusters is the shared labelling loop behind TrainPolicyContext
// and the deprecated label/train trio in compat.go.
func labelClusters(ctx context.Context, clusters []*GeneratedCluster, labelBudget time.Duration, rounds int, seed int64) ([]selector.Labeled, error) {
	var labeled []selector.Labeled
	for ci, c := range clusters {
		for round := 0; round < rounds; round++ {
			pres, err := partition.Multistage(ctx, c.Problem, c.Original, partition.Options{
				TargetSize: 6 + 4*round,
				Seed:       seed + int64(ci*10+round),
			})
			if err != nil {
				return nil, err
			}
			for _, sp := range pres.Subproblems {
				l, err := selector.Label(ctx, sp, labelBudget)
				if err != nil {
					return nil, err
				}
				labeled = append(labeled, l)
			}
		}
	}
	return labeled, nil
}

// SimulateContext runs the production simulator for one scenario; ctx
// cancels between simulated ticks.
func SimulateContext(ctx context.Context, cfg Simulation, scenario prodsim.Scenario) (*SimulationReport, error) {
	return prodsim.Run(ctx, cfg, scenario)
}

// SimulateAllContext runs the WITH RASA / WITHOUT RASA / ONLY
// COLLOCATED scenarios of Section V-F over identical churn; ctx cancels
// between ticks.
func SimulateAllContext(ctx context.Context, cfg Simulation) (*SimulationComparison, error) {
	return prodsim.RunAll(ctx, cfg)
}

// Production-simulation scenarios.
const (
	WithoutRASA    = prodsim.WithoutRASA
	WithRASA       = prodsim.WithRASA
	OnlyCollocated = prodsim.OnlyCollocated
)

// Package rasa is the public API of the RASA library — an implementation
// of "Resource Allocation with Service Affinity in Large-Scale Cloud
// Environments" (ICDE 2024).
//
// RASA computes container-to-machine mappings that maximize *gained
// affinity*: the share of inter-service traffic that can be served
// between collocated containers over IPC instead of crossing the network
// (Definition 1 of the paper). The optimizer follows the paper's
// three-phase algorithm — multi-stage service partitioning, learned
// algorithm selection between MIP and column generation, and migration
// path computation — implemented entirely in Go on a from-scratch
// simplex/branch-and-bound substrate.
//
// Quick start (the API is context-first; the non-context forms in
// compat.go are deprecated wrappers):
//
//	b := rasa.NewClusterBuilder("cpu", "memory")
//	web := b.AddService("web", 4, rasa.Resources{2, 4})
//	cache := b.AddService("cache", 4, rasa.Resources{1, 8})
//	for i := 0; i < 4; i++ {
//		b.AddMachine(fmt.Sprintf("node-%d", i), rasa.Resources{8, 32})
//	}
//	b.SetAffinity(web, cache, 1.0) // traffic volume between the services
//	p, _ := b.Build()
//	current, _ := rasa.Schedule(p, 42) // or your cluster's real state
//	ctx := context.Background()
//	res, _ := rasa.OptimizeContext(ctx, p, current, rasa.Options{Budget: time.Second})
//	fmt.Println(res.GainedAffinity, len(res.Plan.Steps))
//
// Failures are classified by the sentinel errors ErrInvalidProblem,
// ErrInfeasible, and ErrBudgetExceeded (see errors.go) — test with
// errors.Is rather than matching message strings.
//
// See the examples/ directory for complete programs and DESIGN.md for
// the system inventory.
package rasa

import (
	"context"
	"time"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/core"
	"github.com/cloudsched/rasa/internal/graph"
	"github.com/cloudsched/rasa/internal/migrate"
	"github.com/cloudsched/rasa/internal/partition"
	"github.com/cloudsched/rasa/internal/pool"
	"github.com/cloudsched/rasa/internal/prodsim"
	"github.com/cloudsched/rasa/internal/sched"
	"github.com/cloudsched/rasa/internal/selector"
	"github.com/cloudsched/rasa/internal/solve"
	"github.com/cloudsched/rasa/internal/workload"
)

// Core problem model (see internal/cluster).
type (
	// Problem is a full RASA instance: services, machines, constraints
	// and the affinity graph.
	Problem = cluster.Problem
	// Service is a microservice with an SLA replica count and a
	// per-container resource request.
	Service = cluster.Service
	// Machine is a host with multi-dimensional capacity.
	Machine = cluster.Machine
	// Resources is a vector of resource quantities (same ordering as
	// Problem.ResourceNames).
	Resources = cluster.Resources
	// AntiAffinityRule caps containers of a service set per machine.
	AntiAffinityRule = cluster.AntiAffinityRule
	// Assignment is a container-to-machine mapping x[s][m].
	Assignment = cluster.Assignment
	// Violation describes one constraint violation found by
	// Assignment.Check.
	Violation = cluster.Violation
	// AffinityGraph is the weighted service-affinity graph.
	AffinityGraph = graph.Graph
	// PriorityLevel weights a service's traffic in the affinity graph
	// (Section II-B).
	PriorityLevel = cluster.PriorityLevel
)

// Priority levels for SetServicePriority.
const (
	PriorityLow      = cluster.PriorityLow
	PriorityNormal   = cluster.PriorityNormal
	PriorityHigh     = cluster.PriorityHigh
	PriorityCritical = cluster.PriorityCritical
)

// Optimization pipeline (see internal/core).
type (
	// Options tunes an Optimize pass.
	Options = core.Options
	// Result is the outcome of an Optimize pass.
	Result = core.Result
	// Strategy selects the service-partitioning algorithm.
	Strategy = core.Strategy
	// PartitionOptions tunes the partitioning phase (master ratio,
	// subproblem size, sampling).
	PartitionOptions = partition.Options
	// Policy chooses between the MIP and column-generation algorithms
	// for each subproblem.
	Policy = selector.Policy
	// SolveStats reports solver effort: simplex pivots, branch-and-bound
	// nodes, CG columns and pricing rounds, per-phase wall time, and the
	// cause that stopped the solve. Result.Stats aggregates it across
	// every subproblem of an Optimize pass.
	SolveStats = solve.Stats
	// StopCause reports why a solve stopped (see the Stop* constants).
	StopCause = solve.StopCause
)

// Stop causes reported in SolveStats.Stop.
const (
	StopNone      = solve.None
	StopOptimal   = solve.Optimal
	StopDeadline  = solve.Deadline
	StopCancelled = solve.Cancelled
	StopNodeLimit = solve.NodeLimit
)

// Partitioning strategies (Fig. 6 of the paper).
const (
	Multistage      = core.Multistage
	RandomPartition = core.RandomPartition
	KWayPartition   = core.KWayPartition
	NoPartition     = core.NoPartition
)

// Migration planning (see internal/migrate).
type (
	// MigrationPlan is an ordered list of parallel command sets.
	MigrationPlan = migrate.Plan
	// MigrationStep is one parallel command set.
	MigrationStep = migrate.Step
	// MigrationCommand deletes or creates one container.
	MigrationCommand = migrate.Command
)

// Workload generation (see internal/workload).
type (
	// Preset describes a synthetic cluster to generate.
	Preset = workload.Preset
	// GeneratedCluster is a generated problem plus its initial
	// (pre-RASA) deployment.
	GeneratedCluster = workload.Cluster
)

// Production simulation (see internal/prodsim).
type (
	// Simulation configures the CronJob-driven production simulator.
	Simulation = prodsim.Config
	// SimulationReport is one scenario's time series.
	SimulationReport = prodsim.Report
	// SimulationComparison bundles WITH/WITHOUT/ONLY-COLLOCATED runs.
	SimulationComparison = prodsim.Comparison
)

// NewAssignment returns an empty assignment for n services and m
// machines.
func NewAssignment(n, m int) *Assignment { return cluster.NewAssignment(n, m) }

// NewAffinityGraph returns an empty affinity graph over n services.
func NewAffinityGraph(n int) *AffinityGraph { return graph.New(n) }

// OptimizeContext runs the full RASA algorithm: partition the cluster,
// select a solver per subproblem, solve in parallel under
// Options.Budget, merge, and compute the migration plan from current to
// the optimized mapping.
//
// Every phase of the pipeline observes ctx, and a cancelled pass still
// returns the best mapping assembled so far (solvers hand back their
// incumbents, greedy fallbacks cover the rest) rather than an error.
// Result.Stats reports how far the pass got and why it stopped.
func OptimizeContext(ctx context.Context, p *Problem, current *Assignment, opts Options) (*Result, error) {
	res, err := core.Optimize(ctx, p, current, opts)
	return res, wrapErr(err)
}

// Schedule computes an affinity-oblivious initial placement with the
// ORIGINAL production scheduler (online first-fit with filter/score) —
// useful to bootstrap experiments when no real cluster state exists.
func Schedule(p *Problem, seed int64) (*Assignment, error) {
	a, err := sched.Original(p, seed)
	return a, wrapErr(err)
}

// PlanMigrationContext computes an executable migration path from one
// feasible assignment to another, keeping at least minAlive (default
// 0.75) of every service's containers running and never exceeding
// capacities. A cancelled planning run returns the partial plan built
// so far together with the context's error; a stalled one returns the
// reachable prefix with an error wrapping ErrInfeasible (every plan
// prefix is safe to execute).
func PlanMigrationContext(ctx context.Context, p *Problem, from, to *Assignment, minAlive float64) (*MigrationPlan, error) {
	plan, err := migrate.Compute(ctx, p, from, to, migrate.Options{MinAlive: minAlive})
	return plan, wrapErr(err)
}

// SimulateMigration replays a plan, validating every step, and returns
// the final assignment.
func SimulateMigration(p *Problem, from *Assignment, plan *MigrationPlan, minAlive float64) (*Assignment, error) {
	a, err := migrate.Simulate(p, from, plan, minAlive)
	return a, wrapErr(err)
}

// HeuristicPolicy returns the empirical CG/MIP selection rule of
// Section V-C — the zero-training default.
func HeuristicPolicy() Policy { return selector.Heuristic{} }

// AlwaysCG returns the fixed column-generation selection policy
// (ablation baseline).
func AlwaysCG() Policy { return selector.Fixed{Algorithm: pool.CG} }

// AlwaysMIP returns the fixed MIP selection policy (ablation baseline).
func AlwaysMIP() Policy { return selector.Fixed{Algorithm: pool.MIP} }

// Generate builds a synthetic cluster from a preset, including its
// initial deployment.
func Generate(ps Preset) (*GeneratedCluster, error) { return workload.Generate(ps) }

// EvaluationPresets returns the M1–M4 cluster presets (Table II shapes,
// scaled).
func EvaluationPresets() []Preset { return workload.EvaluationPresets() }

// TrainingPresets returns the T1–T4 presets used to train the GCN
// selector.
func TrainingPresets() []Preset { return workload.TrainingPresets() }

// TrainSelectorContext builds the GCN-based algorithm-selection policy
// of Section IV-D: it partitions each training cluster several times
// with varying subproblem sizes, labels every subproblem by racing CG
// against MIP under labelBudget, and trains the graph classifier on the
// result. ctx cancels the labelling races (training itself is fast and
// uninterruptible).
func TrainSelectorContext(ctx context.Context, clusters []*GeneratedCluster, labelBudget time.Duration, seed int64) (Policy, error) {
	labeled, err := LabelSubproblemsContext(ctx, clusters, labelBudget, seed)
	if err != nil {
		return nil, err
	}
	return selector.GCNPolicy{Model: selector.TrainGCN(labeled, seed)}, nil
}

// TrainMLPSelectorContext trains the topology-blind MLP baseline on the
// same labelling procedure (the MLP-BASED row of Fig. 8).
func TrainMLPSelectorContext(ctx context.Context, clusters []*GeneratedCluster, labelBudget time.Duration, seed int64) (Policy, error) {
	labeled, err := LabelSubproblemsContext(ctx, clusters, labelBudget, seed)
	if err != nil {
		return nil, err
	}
	return selector.MLPPolicy{Model: selector.TrainMLP(labeled, seed)}, nil
}

// LabelSubproblemsContext generates the labelled training set used by
// TrainSelectorContext; exposed for experiment harnesses that train
// both models on identical data. Each CG-vs-MIP race observes ctx, and
// the races themselves run the two algorithms concurrently, cancelling
// the MIP arm early once the CG result is provably unbeatable.
func LabelSubproblemsContext(ctx context.Context, clusters []*GeneratedCluster, labelBudget time.Duration, seed int64) ([]selector.Labeled, error) {
	var labeled []selector.Labeled
	for ci, c := range clusters {
		for round := 0; round < 3; round++ {
			pres, err := partition.Multistage(ctx, c.Problem, c.Original, partition.Options{
				TargetSize: 6 + 4*round,
				Seed:       seed + int64(ci*10+round),
			})
			if err != nil {
				return nil, err
			}
			for _, sp := range pres.Subproblems {
				l, err := selector.Label(ctx, sp, labelBudget)
				if err != nil {
					return nil, err
				}
				labeled = append(labeled, l)
			}
		}
	}
	return labeled, nil
}

// SimulateContext runs the production simulator for one scenario; ctx
// cancels between simulated ticks.
func SimulateContext(ctx context.Context, cfg Simulation, scenario prodsim.Scenario) (*SimulationReport, error) {
	return prodsim.Run(ctx, cfg, scenario)
}

// SimulateAllContext runs the WITH RASA / WITHOUT RASA / ONLY
// COLLOCATED scenarios of Section V-F over identical churn; ctx cancels
// between ticks.
func SimulateAllContext(ctx context.Context, cfg Simulation) (*SimulationComparison, error) {
	return prodsim.RunAll(ctx, cfg)
}

// Production-simulation scenarios.
const (
	WithoutRASA    = prodsim.WithoutRASA
	WithRASA       = prodsim.WithRASA
	OnlyCollocated = prodsim.OnlyCollocated
)

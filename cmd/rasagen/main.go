// Command rasagen generates synthetic cluster snapshots (services,
// machines, traffic/affinity data, and an initial deployment from the
// ORIGINAL scheduler) as JSON — the same artifact the paper's data
// collector produces from a live cluster.
//
// Usage:
//
//	rasagen -preset M1 -out m1.json
//	rasagen -services 500 -containers 2500 -machines 100 -out custom.json
//	rasagen -preset T3 -out t3.json -churn 200
//	rasagen -preset T1 -record trace.json -record-fault 0.1 -record-death-tick 1
//
// -record runs a full cluster lifetime — synthetic churn, incremental
// re-optimization, fault-laden plan execution — and captures its event
// log as a rasa-lifetime-trace/1 artifact that rasabench -replay can
// fold back into the identical end state without re-running anything.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/cloudsched/rasa/internal/incr"
	"github.com/cloudsched/rasa/internal/lifetime"
	"github.com/cloudsched/rasa/internal/lifetime/record"
	"github.com/cloudsched/rasa/internal/snapshot"
	"github.com/cloudsched/rasa/internal/workload"
	"github.com/cloudsched/rasa/internal/workload/churn"
)

func main() {
	preset := flag.String("preset", "", "named preset: M1, M2, M3, M4, T1, T2, T3, T4")
	services := flag.Int("services", 200, "number of services (custom preset)")
	containers := flag.Int("containers", 1200, "total containers (custom preset)")
	machines := flag.Int("machines", 50, "number of machines (custom preset)")
	beta := flag.Float64("beta", 1.6, "power-law exponent of total affinity (>1)")
	zones := flag.Int("zones", 1, "compatibility zones")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "-", "output file ('-' for stdout)")
	churnN := flag.Int("churn", 0, "also emit a churn trace with this many events")
	churnOut := flag.String("churn-out", "", "churn trace output (default '<out>.churn.json')")
	churnPerTick := flag.Int("churn-per-tick", 5, "events per re-optimization tick in the churn trace")
	recordOut := flag.String("record", "", "record a full cluster lifetime (churn + re-optimization + execution) to this trace file")
	recordTicks := flag.Int("record-ticks", 6, "lifetime ticks to record")
	recordPerTick := flag.Int("record-per-tick", 4, "churn events per recorded tick")
	recordFault := flag.Float64("record-fault", 0, "per-command fabric failure probability during recording")
	recordDeathTick := flag.Int("record-death-tick", -1, "tick at which the most-loaded machine dies mid-plan (-1: none)")
	recordBudget := flag.Duration("record-budget", 2*time.Second, "per-solve budget during recording")
	flag.Parse()

	ps, err := resolvePreset(*preset, *services, *containers, *machines, *beta, *zones, *seed)
	if err != nil {
		fail(err)
	}
	if *recordOut != "" {
		if err := runRecord(ps, *recordOut, record.Config{
			Preset:    ps,
			Ticks:     *recordTicks,
			PerTick:   *recordPerTick,
			Budget:    *recordBudget,
			FaultRate: *recordFault,
			DeathTick: *recordDeathTick,
			Seed:      *seed,
		}); err != nil {
			fail(err)
		}
		return
	}
	c, err := workload.Generate(ps)
	if err != nil {
		fail(err)
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	if err := snapshot.Write(w, snapshot.FromCluster(c.Problem, c.Original)); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "generated %s: %d services, %d machines, %d affinity edges, gained affinity %.4f\n",
		ps.Name, c.Problem.N(), c.Problem.M(), c.Problem.Affinity.M(),
		c.Original.GainedAffinity(c.Problem)/c.Problem.Affinity.TotalWeight())

	if *churnN > 0 {
		tr, err := churn.Generate(c, churn.Config{
			Events: *churnN, PerTick: *churnPerTick, Seed: *seed,
		})
		if err != nil {
			fail(err)
		}
		path := *churnOut
		if path == "" {
			if *out == "-" {
				path = "churn.json"
			} else {
				path = strings.TrimSuffix(*out, ".json") + ".churn.json"
			}
		}
		f, err := os.Create(path)
		if err != nil {
			fail(err)
		}
		if err := incr.WriteTrace(f, tr); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		last := tr.Events[len(tr.Events)-1]
		fmt.Fprintf(os.Stderr, "churn trace %s: %d events over %d ticks\n", path, len(tr.Events), last.Tick+1)
	}
}

// runRecord captures one lifetime and writes its trace. SIGINT stops
// the recording cleanly (the run so far is discarded — a partial trace
// would replay to a state nothing else ever saw).
func runRecord(ps workload.Preset, path string, cfg record.Config) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	tr, err := record.Record(ctx, cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := lifetime.WriteTrace(f, tr); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"recorded %s lifetime %s: %d events over %d ticks, %d executed, %d replans, %d deaths, fingerprint %s\n",
		ps.Name, path, len(tr.Events), tr.Summary.Ticks, tr.Summary.Executed,
		tr.Summary.Replans, tr.Summary.Deaths, tr.Fingerprint)
	return nil
}

func resolvePreset(name string, services, containers, machines int, beta float64, zones int, seed int64) (workload.Preset, error) {
	if name == "" {
		return workload.Preset{
			Name: "custom", Services: services, Containers: containers, Machines: machines,
			Beta: beta, AffinityFraction: 0.6, Zones: zones, Utilization: 0.55, Seed: seed,
		}, nil
	}
	all := append(workload.EvaluationPresets(), workload.TrainingPresets()...)
	for _, ps := range all {
		if ps.Name == name {
			ps.Seed = seed
			return ps, nil
		}
	}
	return workload.Preset{}, fmt.Errorf("unknown preset %q", name)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "rasagen: %v\n", err)
	os.Exit(1)
}

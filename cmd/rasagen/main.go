// Command rasagen generates synthetic cluster snapshots (services,
// machines, traffic/affinity data, and an initial deployment from the
// ORIGINAL scheduler) as JSON — the same artifact the paper's data
// collector produces from a live cluster.
//
// Usage:
//
//	rasagen -preset M1 -out m1.json
//	rasagen -services 500 -containers 2500 -machines 100 -out custom.json
//	rasagen -preset T3 -out t3.json -churn 200
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/cloudsched/rasa/internal/incr"
	"github.com/cloudsched/rasa/internal/snapshot"
	"github.com/cloudsched/rasa/internal/workload"
	"github.com/cloudsched/rasa/internal/workload/churn"
)

func main() {
	preset := flag.String("preset", "", "named preset: M1, M2, M3, M4, T1, T2, T3, T4")
	services := flag.Int("services", 200, "number of services (custom preset)")
	containers := flag.Int("containers", 1200, "total containers (custom preset)")
	machines := flag.Int("machines", 50, "number of machines (custom preset)")
	beta := flag.Float64("beta", 1.6, "power-law exponent of total affinity (>1)")
	zones := flag.Int("zones", 1, "compatibility zones")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "-", "output file ('-' for stdout)")
	churnN := flag.Int("churn", 0, "also emit a churn trace with this many events")
	churnOut := flag.String("churn-out", "", "churn trace output (default '<out>.churn.json')")
	churnPerTick := flag.Int("churn-per-tick", 5, "events per re-optimization tick in the churn trace")
	flag.Parse()

	ps, err := resolvePreset(*preset, *services, *containers, *machines, *beta, *zones, *seed)
	if err != nil {
		fail(err)
	}
	c, err := workload.Generate(ps)
	if err != nil {
		fail(err)
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	if err := snapshot.Write(w, snapshot.FromCluster(c.Problem, c.Original)); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "generated %s: %d services, %d machines, %d affinity edges, gained affinity %.4f\n",
		ps.Name, c.Problem.N(), c.Problem.M(), c.Problem.Affinity.M(),
		c.Original.GainedAffinity(c.Problem)/c.Problem.Affinity.TotalWeight())

	if *churnN > 0 {
		tr, err := churn.Generate(c, churn.Config{
			Events: *churnN, PerTick: *churnPerTick, Seed: *seed,
		})
		if err != nil {
			fail(err)
		}
		path := *churnOut
		if path == "" {
			if *out == "-" {
				path = "churn.json"
			} else {
				path = strings.TrimSuffix(*out, ".json") + ".churn.json"
			}
		}
		f, err := os.Create(path)
		if err != nil {
			fail(err)
		}
		if err := incr.WriteTrace(f, tr); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		last := tr.Events[len(tr.Events)-1]
		fmt.Fprintf(os.Stderr, "churn trace %s: %d events over %d ticks\n", path, len(tr.Events), last.Tick+1)
	}
}

func resolvePreset(name string, services, containers, machines int, beta float64, zones int, seed int64) (workload.Preset, error) {
	if name == "" {
		return workload.Preset{
			Name: "custom", Services: services, Containers: containers, Machines: machines,
			Beta: beta, AffinityFraction: 0.6, Zones: zones, Utilization: 0.55, Seed: seed,
		}, nil
	}
	all := append(workload.EvaluationPresets(), workload.TrainingPresets()...)
	for _, ps := range all {
		if ps.Name == name {
			ps.Seed = seed
			return ps, nil
		}
	}
	return workload.Preset{}, fmt.Errorf("unknown preset %q", name)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "rasagen: %v\n", err)
	os.Exit(1)
}

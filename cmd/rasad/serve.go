// The -serve mode: rasad as a long-running optimization service. A
// SIGTERM/SIGINT drains the worker pool — in-flight jobs return their
// anytime incumbents, new submissions are rejected — and the process
// exits cleanly once every accepted job has a result.
package main

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"time"

	"github.com/cloudsched/rasa/internal/obs"
	"github.com/cloudsched/rasa/internal/server"
)

// drainTimeout bounds how long rasad waits for in-flight jobs after a
// termination signal. Cancelled solves return their incumbents within
// milliseconds, so this only matters if a solver wedges.
const drainTimeout = 30 * time.Second

func runServe(ctx context.Context, addr string, workers, queueDepth, shards int, budget, maxBudget, maxWait time.Duration, policy string, minConfidence float64) {
	srv := server.New(server.Config{
		Workers:       workers,
		QueueDepth:    queueDepth,
		DefaultBudget: budget,
		MaxBudget:     maxBudget,
		MaxWait:       maxWait,
		Shards:        shards,
		Policy:        policy,
		MinConfidence: minConfidence,
	})
	hs := &http.Server{Addr: addr, Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	if shards >= 2 {
		fmt.Printf("rasad: serving optimization API on %s (%d workers, queue depth %d, default budget %s, policy %s, %d cluster shards)\n",
			addr, workers, queueDepth, budget, policy, shards)
	} else {
		fmt.Printf("rasad: serving optimization API on %s (%d workers, queue depth %d, default budget %s, policy %s)\n",
			addr, workers, queueDepth, budget, policy)
	}

	select {
	case err := <-errCh:
		fail(err)
	case <-ctx.Done():
	}

	fmt.Println("rasad: termination signal, draining in-flight jobs")
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "rasad: drain incomplete: %v\n", err)
		os.Exit(1)
	}
	if err := hs.Shutdown(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "rasad: http shutdown: %v\n", err)
	}
	fmt.Println("rasad: drained, exiting")
}

// serveMetrics exposes a registry at /metrics (plus a trivial /healthz)
// for the -loop mode. With an empty addr it is a no-op. The returned
// stop function shuts the listener down.
func serveMetrics(addr string, reg *obs.Registry) func() {
	if addr == "" {
		return func() {}
	}
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", reg.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	hs := &http.Server{Addr: addr, Handler: mux}
	go hs.ListenAndServe()
	fmt.Printf("rasad: publishing loop metrics on %s\n", addr)
	return func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		hs.Shutdown(ctx)
	}
}

// Command rasad runs the production workflows of Section III: a
// CronJob-style control loop and, with -serve, a long-running
// optimization service. Given a snapshot it runs the workflow once and
// prints the migration plan; with -loop it drives the full production
// simulator and reports the latency/error improvements of Section V-F;
// with -serve it exposes the HTTP job API (POST /v1/jobs, GET
// /v1/jobs/{id}, the /v1/cluster session including its lifetime event
// log at GET /v1/cluster/log, /metrics, /healthz) until SIGTERM
// drains it.
//
// Usage:
//
//	rasad -snapshot m1.json            # one optimization pass + plan
//	rasad -loop -ticks 48              # simulated continuous operation
//	rasad -serve :8080                 # optimization-as-a-service daemon
//	rasad -loop -serve :8080           # simulation + live /metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/core"
	"github.com/cloudsched/rasa/internal/exec"
	"github.com/cloudsched/rasa/internal/obs"
	"github.com/cloudsched/rasa/internal/partition"
	"github.com/cloudsched/rasa/internal/prodsim"
	"github.com/cloudsched/rasa/internal/sched"
	"github.com/cloudsched/rasa/internal/snapshot"
	"github.com/cloudsched/rasa/internal/workload"
)

func main() {
	snapPath := flag.String("snapshot", "", "cluster snapshot JSON (from rasagen or a data collector)")
	budget := flag.Duration("budget", 2*time.Second, "optimization budget per pass (default budget per job with -serve)")
	loop := flag.Bool("loop", false, "run the continuous production simulation instead of one pass")
	ticks := flag.Int("ticks", 48, "half-hour ticks to simulate with -loop")
	seed := flag.Int64("seed", 1, "random seed")
	verbose := flag.Bool("v", false, "print every migration command and per-subproblem solver stats")
	serveAddr := flag.String("serve", "", "serve the optimization HTTP API on this address (e.g. :8080); with -loop, serves live /metrics instead")
	execute := flag.Bool("execute", false, "with -loop, drive each reallocation through the migration executor instead of adopting it atomically")
	faultRate := flag.Float64("fault-rate", 0, "with -loop -execute, per-command failure probability of the simulated fabric")
	workers := flag.Int("workers", 2, "concurrent optimization jobs with -serve")
	queueDepth := flag.Int("queue", 64, "bounded job queue depth with -serve (overload returns 429)")
	maxBudget := flag.Duration("max-budget", 60*time.Second, "upper clamp on per-job budgets with -serve")
	shards := flag.Int("shards", 0, "with -serve, run the /v1/cluster session on this many federated shard workers (>= 2)")
	maxWait := flag.Duration("max-wait", 5*time.Minute, "upper clamp on ?wait= long-poll durations with -serve")
	policy := flag.String("policy", "heuristic", "with -serve, default algorithm-selection policy (heuristic, cg, mip, race, or gcn — the online-trained selector)")
	minConfidence := flag.Float64("min-confidence", 0.8, "with -serve -policy gcn, race CG-vs-MIP when the model's confidence falls below this (the race outcome retrains it)")
	flag.Parse()

	// SIGINT/SIGTERM cancel the context: in-flight solves return their
	// best incumbents and the pass reports what it achieved before dying.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *loop {
		runLoop(ctx, *budget, *ticks, *seed, *serveAddr, *execute, *faultRate)
		return
	}
	if *serveAddr != "" {
		runServe(ctx, *serveAddr, *workers, *queueDepth, *shards, *budget, *maxBudget, *maxWait, *policy, *minConfidence)
		return
	}
	runOnce(ctx, *snapPath, *budget, *seed, *verbose)
}

func runOnce(ctx context.Context, snapPath string, budget time.Duration, seed int64, verbose bool) {
	var (
		p   *snapshotCluster
		err error
	)
	p, err = loadOrGenerate(snapPath, seed)
	if err != nil {
		fail(err)
	}
	fmt.Printf("cluster: %d services, %d machines, %d affinity edges\n",
		p.problem.N(), p.problem.M(), p.problem.Affinity.M())
	total := p.problem.Affinity.TotalWeight()
	fmt.Printf("current gained affinity: %.4f\n", p.current.GainedAffinity(p.problem)/total)

	res, err := core.Optimize(ctx, p.problem, p.current, core.Options{
		Budget:    budget,
		Partition: partition.Options{Seed: seed},
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("optimized gained affinity: %.4f (improvement %.1f%%)\n",
		res.GainedAffinity/total, 100*res.ImprovementRatio())
	fmt.Printf("subproblems: %d (trivial services: %d), elapsed %s\n",
		len(res.Partition.Subproblems), len(res.Partition.Trivial), res.Elapsed.Round(time.Millisecond))
	fmt.Printf("solver effort: %d simplex pivots, %d B&B nodes, %d incumbents, %d columns, stop=%s\n",
		res.Stats.SimplexIters, res.Stats.Nodes, res.Stats.Incumbents, res.Stats.Columns, res.Stats.Stop)
	if res.Plan != nil {
		fmt.Printf("migration plan: %d steps, %d container moves\n", len(res.Plan.Steps), res.Plan.Moves)
	} else {
		fmt.Println("migration plan: skipped (pass interrupted)")
	}
	if verbose {
		for i, sr := range res.SubResults {
			fmt.Printf("  subproblem %d: %s obj=%.4f stop=%s pivots=%d nodes=%d columns=%d pricing-rounds=%d wall=%s\n",
				i, sr.Algorithm, sr.Objective, sr.Stats.Stop, sr.Stats.SimplexIters,
				sr.Stats.Nodes, sr.Stats.Columns, sr.Stats.PricingRounds,
				sr.Stats.Wall.Round(time.Millisecond))
		}
		if res.Plan != nil {
			for i, step := range res.Plan.Steps {
				fmt.Printf("  step %d: %v\n", i, step)
			}
		}
	}
}

func runLoop(ctx context.Context, budget time.Duration, ticks int, seed int64, addr string, execute bool, faultRate float64) {
	// The loop publishes every optimization pass's solver stats through
	// the same registry shape the -serve daemon exposes; with -serve the
	// series are scrapeable live at /metrics while the simulation runs.
	reg := obs.NewRegistry()
	collector := obs.NewSolveCollector(reg, "rasa")
	passes := reg.Counter("rasa_loop_passes_total", "RASA optimization passes run by the control loop.")
	gain := reg.Gauge("rasa_loop_gained_affinity", "Gained affinity after the latest optimization pass.")
	stopMetrics := serveMetrics(addr, reg)
	defer stopMetrics()

	cfg := prodsim.Config{
		Workload: workload.Preset{
			Name: "rasad", Services: 120, Containers: 700, Machines: 30,
			Beta: 1.6, AffinityFraction: 0.6, Zones: 1, Utilization: 0.55, Seed: seed,
		},
		Ticks:         ticks,
		OptimizeEvery: 1,
		Budget:        budget,
		ChurnServices: 3,
		Seed:          seed,
		OnOptimize: func(tick int, res *core.Result) {
			passes.Inc()
			gain.Set(res.GainedAffinity)
			collector.Observe(res.Stats)
		},
	}
	var execRuns, execCommands, execRetries, execReplans, execFloor int
	if execute {
		cfg.Execute = true
		cfg.ExecFaultRate = faultRate
		cfg.OnExecute = func(tick int, rep *exec.Report) {
			execRuns++
			execCommands += rep.Executed
			execRetries += rep.Retries
			execReplans += rep.Replans
			execFloor += rep.FloorViolations
		}
	}
	cmp, err := prodsim.RunAll(ctx, cfg)
	if err != nil {
		fail(err)
	}
	wo, wi, co := cmp.Without.MeanWeighted(), cmp.With.MeanWeighted(), cmp.Collocated.MeanWeighted()
	fmt.Printf("%-16s %12s %12s\n", "scenario", "latency(ms)", "error rate")
	fmt.Printf("%-16s %12.3f %12.5f\n", "WITHOUT RASA", wo.Latency, wo.ErrorRate)
	fmt.Printf("%-16s %12.3f %12.5f\n", "WITH RASA", wi.Latency, wi.ErrorRate)
	fmt.Printf("%-16s %12.3f %12.5f\n", "ONLY COLLOCATED", co.Latency, co.ErrorRate)
	fmt.Printf("latency improvement: %.2f%%, error improvement: %.2f%%\n",
		100*(wo.Latency-wi.Latency)/wo.Latency,
		100*(wo.ErrorRate-wi.ErrorRate)/wo.ErrorRate)
	fmt.Printf("published %d optimization passes to the metrics registry\n", int(passes.Value()))
	if execute {
		fmt.Printf("executor: %d runs, %d commands, %d retries, %d re-plans, %d SLA floor violations (fault rate %.0f%%)\n",
			execRuns, execCommands, execRetries, execReplans, execFloor, 100*faultRate)
	}
}

type snapshotCluster struct {
	problem *cluster.Problem
	current *cluster.Assignment
}

func loadOrGenerate(path string, seed int64) (*snapshotCluster, error) {
	if path == "" {
		c, err := workload.Generate(workload.Preset{
			Name: "default", Services: 200, Containers: 1100, Machines: 45,
			Beta: 1.6, AffinityFraction: 0.6, Zones: 2, Utilization: 0.55, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		return &snapshotCluster{problem: c.Problem, current: c.Original}, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, a, err := snapshot.Load(f)
	if err != nil {
		return nil, err
	}
	if a == nil {
		// No recorded deployment: bootstrap with the ORIGINAL scheduler.
		a, err = sched.Original(p, seed)
		if err != nil {
			return nil, err
		}
	}
	return &snapshotCluster{problem: p, current: a}, nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "rasad: %v\n", err)
	os.Exit(1)
}

// Command rasabench regenerates the tables and figures of the paper's
// evaluation (Section V) on synthetic clusters mirroring Table II.
//
// Usage:
//
//	rasabench [flags] [experiment...]
//
// Experiments: table2, fig5, fig6, fig7, fig8, fig9, fig10, production
// (figs 11-13), supplementary, lemma1, ablations, all (default).
//
// Flags:
//
//	-budget 1.5s       per-optimization time-out (the paper's 60 s scaled)
//	-small             quarter-scale clusters for quick runs
//	-seed 1            random seed
//	-csv DIR           additionally write each figure's data series as CSV
//	-solverbench FILE  run the solver micro-benchmark and write its JSON
//	                   artifact (BENCH_pr3.json schema) to FILE
//	-incrbench FILE    run the incremental re-optimization benchmark and
//	                   write its JSON artifact (BENCH_pr4.json schema) to FILE
//	-execbench FILE    run the migration-execution benchmark and write its
//	                   JSON artifact (BENCH_pr5.json schema) to FILE
//	-lifetimebench FILE  run the event-sourced lifetime benchmark and write
//	                   its JSON artifact (BENCH_pr6.json schema) to FILE
//	-sparsebench FILE  run the sparse-vs-dense LP kernel benchmark and write
//	                   its JSON artifact (BENCH_pr8.json schema) to FILE
//	-shardbench FILE   run the federated shard-pool churn benchmark and write
//	                   its JSON artifact (BENCH_pr9.json schema) to FILE
//	-selectorbench FILE  run the online-GCN selection benchmark through the
//	                   serving path and write its JSON artifact
//	                   (BENCH_pr10.json schema) to FILE
//	-replay FILE       replay a recorded lifetime trace (rasagen -record)
//	                   and print a JSON verdict: whether the pure fold
//	                   reproduces the recorded end-state fingerprint
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"github.com/cloudsched/rasa/internal/experiments"
	"github.com/cloudsched/rasa/internal/lifetime"
)

func main() {
	budget := flag.Duration("budget", 0, "per-optimization time-out (default 1.5s or RASA_BENCH_BUDGET)")
	small := flag.Bool("small", false, "use quarter-scale clusters")
	seed := flag.Int64("seed", 1, "random seed")
	csvDir := flag.String("csv", "", "directory to write CSV data series into")
	solverBench := flag.String("solverbench", "", "run the solver benchmark and write its JSON artifact to this file")
	incrBench := flag.String("incrbench", "", "run the incremental re-optimization benchmark and write its JSON artifact to this file")
	execBench := flag.String("execbench", "", "run the migration-execution benchmark and write its JSON artifact to this file")
	lifetimeBench := flag.String("lifetimebench", "", "run the event-sourced lifetime benchmark and write its JSON artifact to this file")
	sparseBench := flag.String("sparsebench", "", "run the sparse-vs-dense LP kernel benchmark and write its JSON artifact to this file")
	shardBench := flag.String("shardbench", "", "run the federated shard-pool churn benchmark and write its JSON artifact to this file")
	selectorBench := flag.String("selectorbench", "", "run the online-GCN selection benchmark and write its JSON artifact to this file")
	replay := flag.String("replay", "", "replay a recorded lifetime trace and print a JSON verdict")
	flag.Parse()

	cfg := experiments.FromEnv()
	if *budget > 0 {
		cfg.Budget = *budget
	}
	if *small {
		cfg.Presets = experiments.SmallPresets()
	}
	cfg.Seed = *seed
	cfg.Out = os.Stdout

	// SIGINT/SIGTERM stop the run: the current experiment's solves are
	// cancelled (they return incumbents) and no further experiment starts.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg.Ctx = ctx

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fail(err)
		}
	}

	start := time.Now()
	benchOnly := false
	if *solverBench != "" {
		if err := runSolverBench(cfg, *solverBench); err != nil {
			fail(fmt.Errorf("solverbench: %w", err))
		}
		benchOnly = true
	}
	if *incrBench != "" {
		if err := runIncrBench(cfg, *incrBench); err != nil {
			fail(fmt.Errorf("incrbench: %w", err))
		}
		benchOnly = true
	}
	if *execBench != "" {
		if err := runExecBench(cfg, *execBench); err != nil {
			fail(fmt.Errorf("execbench: %w", err))
		}
		benchOnly = true
	}
	if *lifetimeBench != "" {
		if err := runLifetimeBench(cfg, *lifetimeBench); err != nil {
			fail(fmt.Errorf("lifetimebench: %w", err))
		}
		benchOnly = true
	}
	if *sparseBench != "" {
		if err := runSparseBench(cfg, *sparseBench); err != nil {
			fail(fmt.Errorf("sparsebench: %w", err))
		}
		benchOnly = true
	}
	if *shardBench != "" {
		if err := runShardBench(cfg, *shardBench); err != nil {
			fail(fmt.Errorf("shardbench: %w", err))
		}
		benchOnly = true
	}
	if *selectorBench != "" {
		if err := runSelectorBench(cfg, *selectorBench); err != nil {
			fail(fmt.Errorf("selectorbench: %w", err))
		}
		benchOnly = true
	}
	if *replay != "" {
		if err := runReplay(*replay); err != nil {
			fail(fmt.Errorf("replay: %w", err))
		}
		benchOnly = true
	}
	// With no experiments named, the benchmark flags are the whole run.
	if benchOnly && len(flag.Args()) == 0 {
		fmt.Printf("\ncompleted in %s\n", time.Since(start).Round(time.Millisecond))
		return
	}

	which := flag.Args()
	if len(which) == 0 {
		which = []string{"all"}
	}
	for _, name := range which {
		if err := ctx.Err(); err != nil {
			fail(fmt.Errorf("interrupted: %w", err))
		}
		if err := runOne(cfg, name, *csvDir); err != nil {
			fail(fmt.Errorf("%s: %w", name, err))
		}
	}
	fmt.Printf("\ncompleted in %s\n", time.Since(start).Round(time.Millisecond))
}

// runSolverBench runs the PR-3 solver benchmark and writes its JSON
// artifact (ns/solve, allocs/solve, pivots/node, nodes within budget).
func runSolverBench(cfg experiments.Config, path string) error {
	r, err := experiments.SolverBench(cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := experiments.WriteSolverBenchJSON(f, r); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return f.Close()
}

// runIncrBench runs the PR-4 incremental re-optimization benchmark and
// writes its JSON artifact (wall clock, moves, and affinity per tick,
// delta arm vs forced-full arm).
func runIncrBench(cfg experiments.Config, path string) error {
	r, err := experiments.IncrBench(cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := experiments.WriteIncrBenchJSON(f, r); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return f.Close()
}

// runExecBench runs the PR-5 migration-execution benchmark and writes
// its JSON artifact (completion rate, wasted moves, achieved vs planned
// affinity at 0/5/15% fault rates).
func runExecBench(cfg experiments.Config, path string) error {
	r, err := experiments.ExecBench(cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := experiments.WriteExecBenchJSON(f, r); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return f.Close()
}

// runLifetimeBench runs the PR-6 event-sourced lifetime benchmark and
// writes its JSON artifact (record/replay determinism plus the embedded
// incremental and executor benchmarks).
func runLifetimeBench(cfg experiments.Config, path string) error {
	r, err := experiments.LifetimeBench(cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := experiments.WriteLifetimeBenchJSON(f, r); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return f.Close()
}

// runSparseBench runs the PR-8 sparse-kernel benchmark and writes its
// JSON artifact (ns/solve per kernel, speedup, objective parity, and
// presolve shrinkage on T4 subproblem LPs).
func runSparseBench(cfg experiments.Config, path string) error {
	r, err := experiments.SparseBench(cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := experiments.WriteSparseBenchJSON(f, r); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return f.Close()
}

// runShardBench runs the PR-9 federated shard-pool benchmark and writes
// its JSON artifact (per-arm throughput and pass mix under an identical
// churn firehose, quality parity, executed final wave, rebalance).
func runShardBench(cfg experiments.Config, path string) error {
	r, err := experiments.ShardBench(cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := experiments.WriteShardBenchJSON(f, r); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return f.Close()
}

// runSelectorBench runs the PR-10 online-GCN selection benchmark and
// writes its JSON artifact (per-arm quality/wall/race fraction through
// the serving path, predictor-vs-oracle accuracy, trainer state).
func runSelectorBench(cfg experiments.Config, path string) error {
	r, err := experiments.SelectorBench(cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := experiments.WriteSelectorBenchJSON(f, r); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return f.Close()
}

// runReplay folds a recorded lifetime trace back into a cluster state —
// no solves, no fabric — and prints a JSON verdict to stdout: `match`
// is whether the fold landed on the trace's recorded fingerprint,
// `deterministic` whether two independent folds agree with each other.
func runReplay(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	tr, err := lifetime.ReadTrace(f)
	f.Close()
	if err != nil {
		return err
	}
	start := time.Now()
	first, err := lifetime.Replay(tr)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	second, err := lifetime.Replay(tr)
	if err != nil {
		return err
	}
	verdict := map[string]any{
		"schema":              "rasa-replay/1",
		"trace":               path,
		"preset":              tr.Preset,
		"seed":                tr.Seed,
		"entries":             len(tr.Events),
		"ticks":               first.Tick(),
		"recordedFingerprint": tr.Fingerprint,
		"replayedFingerprint": first.Fingerprint(),
		"match":               first.Fingerprint() == tr.Fingerprint,
		"deterministic":       first.Fingerprint() == second.Fingerprint(),
		"deadMachines":        first.DeadMachines(),
		"fullRuns":            first.FullRuns(),
		"replaySeconds":       elapsed.Seconds(),
		"summary":             tr.Summary,
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(verdict); err != nil {
		return err
	}
	if !verdict["match"].(bool) {
		return fmt.Errorf("replayed fingerprint %s does not match recorded %s", first.Fingerprint(), tr.Fingerprint)
	}
	return nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "rasabench: %v\n", err)
	os.Exit(1)
}

// withCSV opens DIR/name.csv and passes it to write, when a CSV
// directory was requested.
func withCSV(csvDir, name string, write func(io.Writer) error) error {
	if csvDir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(csvDir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return write(f)
}

func runOne(cfg experiments.Config, name, csvDir string) error {
	runners := map[string]func() error{
		"table2": func() error {
			_, err := experiments.Table2(cfg)
			return err
		},
		"fig5": func() error {
			r, err := experiments.Fig5(cfg)
			if err != nil {
				return err
			}
			return withCSV(csvDir, "fig5", func(w io.Writer) error { return experiments.WriteFig5CSV(w, r) })
		},
		"fig6": func() error {
			r, err := experiments.Fig6(cfg)
			if err != nil {
				return err
			}
			return withCSV(csvDir, "fig6", func(w io.Writer) error { return experiments.WriteFig6CSV(w, r) })
		},
		"fig7": func() error {
			r, err := experiments.Fig7(cfg)
			if err != nil {
				return err
			}
			return withCSV(csvDir, "fig7", func(w io.Writer) error { return experiments.WriteFig7CSV(w, r) })
		},
		"fig8": func() error {
			r, err := experiments.Fig8(cfg)
			if err != nil {
				return err
			}
			return withCSV(csvDir, "fig8", func(w io.Writer) error { return experiments.WriteFig8CSV(w, r) })
		},
		"fig9": func() error {
			r, err := experiments.Fig9(cfg)
			if err != nil {
				return err
			}
			return withCSV(csvDir, "fig9", func(w io.Writer) error { return experiments.WriteFig9CSV(w, r) })
		},
		"fig10": func() error {
			r, err := experiments.Fig10(cfg)
			if err != nil {
				return err
			}
			return withCSV(csvDir, "fig10", func(w io.Writer) error { return experiments.WriteFig10CSV(w, r) })
		},
		"production": func() error {
			r, err := experiments.Production(cfg)
			if err != nil {
				return err
			}
			return withCSV(csvDir, "production", func(w io.Writer) error { return experiments.WriteProductionCSV(w, r) })
		},
		"supplementary": func() error {
			_, err := experiments.Supplementary(cfg)
			return err
		},
		"lemma1": func() error {
			r, err := experiments.Lemma1(cfg)
			if err != nil {
				return err
			}
			return withCSV(csvDir, "lemma1", func(w io.Writer) error { return experiments.WriteLemma1CSV(w, r) })
		},
		"ablations": func() error {
			for _, f := range []func(experiments.Config) (*experiments.AblationResult, error){
				experiments.AblationMachineGrouping,
				experiments.AblationAnytime,
				experiments.AblationSampleCount,
				experiments.AblationBranching,
			} {
				if _, err := f(cfg); err != nil {
					return err
				}
			}
			return nil
		},
	}
	if name == "all" {
		for _, n := range []string{
			"table2", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
			"production", "supplementary", "lemma1", "ablations",
		} {
			if err := cfg.Ctx.Err(); err != nil {
				return fmt.Errorf("interrupted before %s: %w", n, err)
			}
			if err := runners[n](); err != nil {
				return fmt.Errorf("%s: %w", n, err)
			}
		}
		return nil
	}
	f, ok := runners[name]
	if !ok {
		return fmt.Errorf("unknown experiment (want table2|fig5|fig6|fig7|fig8|fig9|fig10|production|supplementary|lemma1|ablations|all)")
	}
	return f()
}

module github.com/cloudsched/rasa

go 1.22

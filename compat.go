package rasa

// This file is the compatibility block: every pre-context entry point,
// kept as a thin wrapper over its context-first replacement. New code
// should use the *Context forms — these exist so callers written
// against the original API keep compiling, and they will be removed in
// a future major version.

import (
	"context"
	"time"

	"github.com/cloudsched/rasa/internal/prodsim"
	"github.com/cloudsched/rasa/internal/selector"
)

// Optimize runs the full RASA pipeline without cancellation.
//
// Deprecated: use OptimizeContext, which observes ctx in every phase
// and still returns a best-effort Result when cancelled.
func Optimize(p *Problem, current *Assignment, opts Options) (*Result, error) {
	return OptimizeContext(context.Background(), p, current, opts)
}

// PlanMigration computes a migration path without cancellation.
//
// Deprecated: use PlanMigrationContext, which returns the partial plan
// built so far when cancelled (every plan prefix is safe to execute).
func PlanMigration(p *Problem, from, to *Assignment, minAlive float64) (*MigrationPlan, error) {
	return PlanMigrationContext(context.Background(), p, from, to, minAlive)
}

// TrainSelector trains the GCN selection policy without cancellation.
//
// Deprecated: use TrainSelectorContext; the labelling races it runs
// dominate training time and observe ctx.
func TrainSelector(clusters []*GeneratedCluster, labelBudget time.Duration, seed int64) (Policy, error) {
	return TrainSelectorContext(context.Background(), clusters, labelBudget, seed)
}

// TrainMLPSelector trains the MLP baseline policy without cancellation.
//
// Deprecated: use TrainMLPSelectorContext.
func TrainMLPSelector(clusters []*GeneratedCluster, labelBudget time.Duration, seed int64) (Policy, error) {
	return TrainMLPSelectorContext(context.Background(), clusters, labelBudget, seed)
}

// LabelSubproblems generates the labelled training set without
// cancellation.
//
// Deprecated: use LabelSubproblemsContext.
func LabelSubproblems(clusters []*GeneratedCluster, labelBudget time.Duration, seed int64) ([]selector.Labeled, error) {
	return LabelSubproblemsContext(context.Background(), clusters, labelBudget, seed)
}

// Simulate runs one production-simulation scenario without
// cancellation.
//
// Deprecated: use SimulateContext, which can stop between simulated
// ticks.
func Simulate(cfg Simulation, scenario prodsim.Scenario) (*SimulationReport, error) {
	return SimulateContext(context.Background(), cfg, scenario)
}

// SimulateAll runs all three production-simulation scenarios without
// cancellation.
//
// Deprecated: use SimulateAllContext.
func SimulateAll(cfg Simulation) (*SimulationComparison, error) {
	return SimulateAllContext(context.Background(), cfg)
}

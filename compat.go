package rasa

// This file is the compatibility block: every pre-context entry point,
// kept as a thin wrapper over its context-first replacement. New code
// should use the *Context forms — these exist so callers written
// against the original API keep compiling, and they will be removed in
// a future major version.

import (
	"context"
	"time"

	"github.com/cloudsched/rasa/internal/prodsim"
	"github.com/cloudsched/rasa/internal/selector"
)

// Optimize runs the full RASA pipeline without cancellation.
//
// Deprecated: use OptimizeContext, which observes ctx in every phase
// and still returns a best-effort Result when cancelled.
func Optimize(p *Problem, current *Assignment, opts Options) (*Result, error) {
	return OptimizeContext(context.Background(), p, current, opts)
}

// PlanMigration computes a migration path without cancellation.
//
// Deprecated: use PlanMigrationContext, which returns the partial plan
// built so far when cancelled (every plan prefix is safe to execute).
func PlanMigration(p *Problem, from, to *Assignment, minAlive float64) (*MigrationPlan, error) {
	return PlanMigrationContext(context.Background(), p, from, to, minAlive)
}

// TrainSelector trains the GCN selection policy without cancellation.
//
// Deprecated: use TrainPolicyContext; the labelling races dominate
// training time and observe ctx, and the returned policy is versioned
// and keeps learning online.
func TrainSelector(clusters []*GeneratedCluster, labelBudget time.Duration, seed int64) (Policy, error) {
	return TrainSelectorContext(context.Background(), clusters, labelBudget, seed)
}

// TrainMLPSelector trains the MLP baseline policy without cancellation.
//
// Deprecated: use TrainPolicyContext with Kind "mlp".
func TrainMLPSelector(clusters []*GeneratedCluster, labelBudget time.Duration, seed int64) (Policy, error) {
	return TrainMLPSelectorContext(context.Background(), clusters, labelBudget, seed)
}

// LabelSubproblems generates the labelled training set without
// cancellation.
//
// Deprecated: use TrainPolicyContext, which labels and trains in one
// call (or LabelSubproblemsContext to keep the raw examples).
func LabelSubproblems(clusters []*GeneratedCluster, labelBudget time.Duration, seed int64) ([]selector.Labeled, error) {
	return LabelSubproblemsContext(context.Background(), clusters, labelBudget, seed)
}

// TrainSelectorContext trains the GCN selection policy on the labelled
// races of Section IV-D, returning a static (non-learning) policy.
//
// Deprecated: use TrainPolicyContext, which returns a versioned policy
// backed by the online trainer.
func TrainSelectorContext(ctx context.Context, clusters []*GeneratedCluster, labelBudget time.Duration, seed int64) (Policy, error) {
	labeled, err := LabelSubproblemsContext(ctx, clusters, labelBudget, seed)
	if err != nil {
		return nil, err
	}
	return selector.GCNPolicy{Model: selector.TrainGCN(labeled, seed)}, nil
}

// TrainMLPSelectorContext trains the topology-blind MLP baseline on the
// same labelling procedure (the MLP-BASED row of Fig. 8).
//
// Deprecated: use TrainPolicyContext with Kind "mlp".
func TrainMLPSelectorContext(ctx context.Context, clusters []*GeneratedCluster, labelBudget time.Duration, seed int64) (Policy, error) {
	labeled, err := LabelSubproblemsContext(ctx, clusters, labelBudget, seed)
	if err != nil {
		return nil, err
	}
	return selector.MLPPolicy{Model: selector.TrainMLP(labeled, seed)}, nil
}

// LabelSubproblemsContext generates the labelled CG-vs-MIP training set
// by racing both algorithms on every subproblem of every cluster.
//
// Deprecated: use TrainPolicyContext, which consumes the same labelling
// loop and returns the trained policy directly.
func LabelSubproblemsContext(ctx context.Context, clusters []*GeneratedCluster, labelBudget time.Duration, seed int64) ([]selector.Labeled, error) {
	return labelClusters(ctx, clusters, labelBudget, 3, seed)
}

// Simulate runs one production-simulation scenario without
// cancellation.
//
// Deprecated: use SimulateContext, which can stop between simulated
// ticks.
func Simulate(cfg Simulation, scenario prodsim.Scenario) (*SimulationReport, error) {
	return SimulateContext(context.Background(), cfg, scenario)
}

// SimulateAll runs all three production-simulation scenarios without
// cancellation.
//
// Deprecated: use SimulateAllContext.
func SimulateAll(cfg Simulation) (*SimulationComparison, error) {
	return SimulateAllContext(context.Background(), cfg)
}

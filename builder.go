package rasa

import (
	"fmt"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/graph"
)

// ClusterBuilder assembles a Problem incrementally with validation at
// Build time. It is the recommended way to construct problems from real
// cluster inventories.
type ClusterBuilder struct {
	resourceNames []string
	services      []Service
	machines      []Machine
	edges         []affinityEdge
	anti          []AntiAffinityRule
	restrictions  map[int][]int // service -> allowed machines
	priorities    map[int]PriorityLevel
	err           error
}

type affinityEdge struct {
	a, b   int
	weight float64
}

// NewClusterBuilder starts a builder with the given resource-type names
// (e.g. "cpu", "memory"). Every service request and machine capacity
// must use the same ordering.
func NewClusterBuilder(resourceNames ...string) *ClusterBuilder {
	b := &ClusterBuilder{
		resourceNames: append([]string(nil), resourceNames...),
		restrictions:  make(map[int][]int),
	}
	if len(resourceNames) == 0 {
		b.err = fmt.Errorf("%w: at least one resource type is required", ErrInvalidProblem)
	}
	return b
}

func (b *ClusterBuilder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("%w: "+format, append([]any{ErrInvalidProblem}, args...)...)
	}
}

// AddService registers a service and returns its index. replicas is the
// SLA container count d_s; request is the per-container resource vector.
func (b *ClusterBuilder) AddService(name string, replicas int, request Resources) int {
	if replicas <= 0 {
		b.fail("service %q: replicas must be positive, got %d", name, replicas)
	}
	if len(request) != len(b.resourceNames) {
		b.fail("service %q: request has %d resources, want %d", name, len(request), len(b.resourceNames))
	}
	b.services = append(b.services, Service{Name: name, Replicas: replicas, Request: request.Clone()})
	return len(b.services) - 1
}

// AddMachine registers a machine and returns its index.
func (b *ClusterBuilder) AddMachine(name string, capacity Resources) int {
	if len(capacity) != len(b.resourceNames) {
		b.fail("machine %q: capacity has %d resources, want %d", name, len(capacity), len(b.resourceNames))
	}
	b.machines = append(b.machines, Machine{Name: name, Capacity: capacity.Clone()})
	return len(b.machines) - 1
}

// SetAffinity declares the affinity weight between two services —
// typically the traffic volume between them (Section II-B of the
// paper). Repeated calls for the same pair accumulate.
func (b *ClusterBuilder) SetAffinity(s1, s2 int, weight float64) *ClusterBuilder {
	if weight < 0 {
		b.fail("affinity (%d,%d): negative weight %v", s1, s2, weight)
		return b
	}
	b.edges = append(b.edges, affinityEdge{a: s1, b: s2, weight: weight})
	return b
}

// AddAntiAffinity caps the number of containers from the given services
// that may share one machine (constraint (5); h_k in the paper).
func (b *ClusterBuilder) AddAntiAffinity(services []int, maxPerHost int) *ClusterBuilder {
	b.anti = append(b.anti, AntiAffinityRule{
		Services:   append([]int(nil), services...),
		MaxPerHost: maxPerHost,
	})
	return b
}

// RestrictService limits a service to the listed machines (the
// schedulability matrix b of constraint (6)). Unrestricted services may
// run anywhere.
func (b *ClusterBuilder) RestrictService(service int, machines ...int) *ClusterBuilder {
	b.restrictions[service] = append(b.restrictions[service], machines...)
	return b
}

// SetServicePriority declares how much the service's network performance
// matters (Section II-B): the affinity of its edges is scaled by the
// level's multiplier at Build time, steering the optimizer toward
// collocating high-priority services when capacity is contended.
func (b *ClusterBuilder) SetServicePriority(service int, level PriorityLevel) *ClusterBuilder {
	if b.priorities == nil {
		b.priorities = make(map[int]PriorityLevel)
	}
	b.priorities[service] = level
	return b
}

// Build validates and returns the Problem.
func (b *ClusterBuilder) Build() (*Problem, error) {
	if b.err != nil {
		return nil, b.err
	}
	n, m := len(b.services), len(b.machines)
	g := graph.New(n)
	for _, e := range b.edges {
		if e.a < 0 || e.a >= n || e.b < 0 || e.b >= n {
			return nil, fmt.Errorf("%w: affinity edge (%d,%d) references unknown service", ErrInvalidProblem, e.a, e.b)
		}
		g.AddEdge(e.a, e.b, e.weight)
	}
	if len(b.priorities) > 0 {
		scaled, err := cluster.ApplyPriorities(g, b.priorities)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrInvalidProblem, err)
		}
		g = scaled
	}
	p := &Problem{
		ResourceNames: append([]string(nil), b.resourceNames...),
		Services:      append([]Service(nil), b.services...),
		Machines:      append([]Machine(nil), b.machines...),
		Affinity:      g,
		AntiAffinity:  append([]AntiAffinityRule(nil), b.anti...),
	}
	if len(b.restrictions) > 0 {
		p.Schedulable = make([]cluster.Bitmap, n)
		for s, machines := range b.restrictions {
			if s < 0 || s >= n {
				return nil, fmt.Errorf("%w: restriction references unknown service %d", ErrInvalidProblem, s)
			}
			bm := cluster.NewBitmap(m)
			for _, mach := range machines {
				if mach < 0 || mach >= m {
					return nil, fmt.Errorf("%w: restriction for service %d references unknown machine %d", ErrInvalidProblem, s, mach)
				}
				bm.Set(mach)
			}
			p.Schedulable[s] = bm
		}
	}
	if err := p.Validate(); err != nil {
		return nil, wrapErr(err)
	}
	return p, nil
}

// Benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (Section V), plus the ablations called out in
// DESIGN.md. Each benchmark regenerates the artifact through
// internal/experiments — the same code cmd/rasabench runs — and reports
// the headline quantity as custom benchmark metrics so `go test
// -bench=.` output doubles as the experiment record.
//
// Environment knobs:
//
//	RASA_BENCH_BUDGET   per-optimization time-out (default 1.5s)
//	RASA_BENCH_SMALL=1  quarter-scale clusters for quick runs
//
// Absolute timings are substrate-dependent; the shapes (who wins, by
// what factor) are the reproduction target. See EXPERIMENTS.md.
package rasa_test

import (
	"context"
	"io"
	"testing"
	"time"

	"github.com/cloudsched/rasa"
	"github.com/cloudsched/rasa/internal/experiments"
	"github.com/cloudsched/rasa/internal/workload"
)

func benchConfig(b *testing.B) experiments.Config {
	b.Helper()
	cfg := experiments.FromEnv()
	cfg.Out = io.Discard
	if testing.Verbose() {
		cfg.Out = benchWriter{b}
	}
	return cfg
}

type benchWriter struct{ b *testing.B }

func (w benchWriter) Write(p []byte) (int, error) {
	w.b.Log(string(p))
	return len(p), nil
}

// BenchmarkTable2Datasets regenerates Table II (dataset scales).
func BenchmarkTable2Datasets(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var containers int
		for _, r := range rows {
			containers += r.Containers
		}
		b.ReportMetric(float64(containers), "containers")
	}
}

// BenchmarkFig5PowerLaw regenerates Fig. 5 (power-law vs exponential fit
// of the total-affinity distribution).
func BenchmarkFig5PowerLaw(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.PowerLawWins {
			b.Fatalf("power law did not win: PL R2=%v EXP R2=%v", res.PowerLaw.R2, res.Exponential.R2)
		}
		b.ReportMetric(res.PowerLaw.R2, "powerlaw-R2")
		b.ReportMetric(res.PowerLaw.Param, "beta")
	}
}

// BenchmarkFig6Partitioning regenerates Fig. 6 (gained affinity by
// partitioning algorithm).
func BenchmarkFig6Partitioning(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var ms, rd float64
		var n int
		for _, cells := range res {
			ms += cells["MULTI-STAGE-PARTITION"].Gained
			rd += cells["RANDOM-PARTITION"].Gained
			n++
		}
		if n > 0 {
			b.ReportMetric(ms/float64(n), "multistage-gained")
			b.ReportMetric(rd/float64(n), "random-gained")
		}
	}
}

// BenchmarkFig7MasterRatio regenerates Fig. 7 (master-ratio sweep).
func BenchmarkFig7MasterRatio(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		// Report the gained affinity at the production-chosen ratio on
		// the first cluster.
		if len(series) > 0 {
			s := series[0]
			b.ReportMetric(s.Points[s.ChosenIdx].Gained, "gained-at-chosen-alpha")
		}
	}
}

// BenchmarkFig8Selection regenerates Fig. 8 (algorithm-selection
// policies).
func BenchmarkFig8Selection(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var gcn float64
		var n int
		for _, cells := range res {
			gcn += cells["GCN-BASED"]
			n++
		}
		if n > 0 {
			b.ReportMetric(gcn/float64(n), "gcn-gained")
		}
	}
}

// BenchmarkFig9Algorithms regenerates Fig. 9 (RASA vs POP, K8s+,
// APPLSCI19, ORIGINAL) including the headline aggregates.
func BenchmarkFig9Algorithms(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RASAvsOriginal, "rasa-vs-original-x")
		b.ReportMetric(100*res.RASAvsAPPLSCI, "rasa-vs-applsci-pct")
	}
}

// BenchmarkFig10QualityRuntime regenerates Fig. 10 (quality vs runtime
// for the anytime algorithms).
func BenchmarkFig10QualityRuntime(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		// RASA minus POP at the max budget, averaged over clusters.
		var gap float64
		var n int
		for j := 0; j+1 < len(series); j += 2 {
			r := series[j].Points[len(series[j].Points)-1].Gained
			p := series[j+1].Points[len(series[j+1].Points)-1].Gained
			gap += r - p
			n++
		}
		if n > 0 {
			b.ReportMetric(gap/float64(n), "rasa-minus-pop")
		}
	}
}

// BenchmarkFig11Latency, BenchmarkFig12ErrorRate and
// BenchmarkFig13Weighted regenerate the production figures. They share
// one simulation run per iteration (the paper's Figs. 11-13 come from
// one deployment), so each reports its own slice of the result.
func BenchmarkFig11Latency(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Production(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var mean float64
		for _, v := range res.PairLatencyImprovement {
			mean += v
		}
		b.ReportMetric(100*mean/float64(len(res.PairLatencyImprovement)), "pair-latency-improv-pct")
	}
}

// BenchmarkFig12ErrorRate reports the per-pair error-rate improvements.
func BenchmarkFig12ErrorRate(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Production(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var mean float64
		for _, v := range res.PairErrorImprovement {
			mean += v
		}
		b.ReportMetric(100*mean/float64(len(res.PairErrorImprovement)), "pair-error-improv-pct")
	}
}

// BenchmarkFig13Weighted reports the QPS-weighted cluster improvements
// (paper: 23.75% latency, 24.09% errors).
func BenchmarkFig13Weighted(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Production(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.WeightedLatencyImprovement, "latency-improv-pct")
		b.ReportMetric(100*res.WeightedErrorImprovement, "error-improv-pct")
	}
}

// BenchmarkSupplementaryPartitionCost regenerates the supplementary
// partitioning-cost analysis (loss < 12%, overhead < 10%).
func BenchmarkSupplementaryPartitionCost(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Supplementary(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var loss, overhead float64
		for _, r := range rows {
			loss += r.LostAffinity
			overhead += r.Overhead
		}
		n := float64(len(rows))
		b.ReportMetric(100*loss/n, "lost-affinity-pct")
		b.ReportMetric(100*overhead/n, "partition-overhead-pct")
	}
}

// Ablation benches (DESIGN.md section 4).

func BenchmarkAblationMachineGrouping(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationMachineGrouping(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.On, "grouped")
		b.ReportMetric(res.Off, "per-machine")
	}
}

func BenchmarkAblationAnytime(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationAnytime(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.On, "with-rounding")
		b.ReportMetric(res.Off, "exact-only")
	}
}

func BenchmarkAblationSampleCount(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationSampleCount(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.On, "samples-64")
		b.ReportMetric(res.Off, "samples-1")
	}
}

func BenchmarkAblationBranching(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationBranching(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.On, "pseudocost-nodes")
		b.ReportMetric(res.Off, "mostfrac-nodes")
	}
}

// BenchmarkLemma1TailShare verifies the skewness claim of Lemma 1 at
// increasing cluster sizes.
func BenchmarkLemma1TailShare(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Lemma1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[len(pts)-1].TailShare, "tail-share-maxN")
	}
}

// BenchmarkSolverWorkspace regenerates the PR-3 solver benchmark
// (BENCH_pr3.json): LP workspace reuse (allocs/solve, ns/solve) and
// branch-and-bound warm starts (node throughput within a fixed budget,
// pivots/node, completion-objective agreement).
func BenchmarkSolverWorkspace(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.SolverBench(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.MIP.ObjectivesAgree {
			b.Fatalf("warm and cold completion objectives disagree: max delta %g", res.MIP.MaxObjectiveDelta)
		}
		b.ReportMetric(100*res.LP.AllocReduction, "alloc-reduction-pct")
		b.ReportMetric(res.LP.AllocsReused, "allocs/solve")
		b.ReportMetric(res.LP.NsReused, "ns/solve")
		b.ReportMetric(res.MIP.NodeRatio, "warm-node-ratio-x")
		b.ReportMetric(res.MIP.PivotsPerNodeWarm, "pivots/node")
	}
}

// BenchmarkIncrReoptimize regenerates the PR-4 incremental benchmark
// (BENCH_pr4.json): one churn trace replayed through the delta engine
// and through a forced-full baseline, reporting the wall-clock speedup,
// the normalized-affinity loss, and the container-move ratio.
func BenchmarkIncrReoptimize(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.IncrBench(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.MovesDelta >= res.MovesFull {
			b.Fatalf("delta arm moved %d containers, full arm %d — delta must move strictly fewer",
				res.MovesDelta, res.MovesFull)
		}
		b.ReportMetric(res.Speedup, "speedup-x")
		b.ReportMetric(100*res.AffinityLoss, "affinity-loss-pct")
		b.ReportMetric(float64(res.MovesDelta)/float64(res.MovesFull), "move-ratio")
		b.ReportMetric(float64(res.Escalations), "escalations")
	}
}

// BenchmarkCancellationLatency measures the anytime contract's reaction
// time on M1: how long OptimizeContext takes to hand back its incumbent
// after the context is cancelled mid-pass. The acceptance target for
// the solve-contract refactor is under 100ms; reported as cancel-ms.
func BenchmarkCancellationLatency(b *testing.B) {
	c, err := workload.Generate(workload.M1)
	if err != nil {
		b.Fatal(err)
	}
	const settle = 100 * time.Millisecond // let the pass get into its solvers
	b.ResetTimer()
	var total time.Duration
	for i := 0; i < b.N; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		fired := make(chan time.Time, 1)
		go func() {
			time.Sleep(settle)
			fired <- time.Now()
			cancel()
		}()
		res, err := rasa.OptimizeContext(ctx, c.Problem, c.Original, rasa.Options{
			Budget: 30 * time.Second, // must be cut short by the cancel
		})
		returned := time.Now()
		if err != nil {
			b.Fatal(err)
		}
		if res == nil || res.Assignment == nil {
			b.Fatal("cancelled pass returned no result")
		}
		lat := returned.Sub(<-fired)
		if lat < 0 {
			lat = 0 // pass finished before the cancel fired
		}
		total += lat
	}
	b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "cancel-ms")
}

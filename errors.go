package rasa

import (
	"context"
	"errors"
	"fmt"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/core"
	"github.com/cloudsched/rasa/internal/lp"
	"github.com/cloudsched/rasa/internal/migrate"
)

// Public sentinel errors. Every error returned by this package's entry
// points wraps one of these when it belongs to the family, so callers
// classify failures with errors.Is instead of string-matching:
//
//	res, err := rasa.OptimizeContext(ctx, p, cur, opts)
//	switch {
//	case errors.Is(err, rasa.ErrInvalidProblem): // fix the input
//	case errors.Is(err, rasa.ErrInfeasible):     // relax SLA/capacity
//	case errors.Is(err, rasa.ErrBudgetExceeded): // raise the budget
//	}
//
// The detail message of the wrapped internal error is preserved.
var (
	// ErrInvalidProblem reports structurally broken input: a Problem
	// that fails validation, an Options value the pipeline refuses
	// (negative budget, MinAlive outside [0,1]), or a malformed solver
	// model derived from them.
	ErrInvalidProblem = errors.New("rasa: invalid problem")
	// ErrInfeasible reports that no feasible result exists under the
	// SLA and capacity constraints — most commonly a migration path
	// that stalls because no step can keep every service at its
	// MinAlive floor within the machines' capacities. A partial plan
	// may accompany it (every plan prefix is safe to execute).
	ErrInfeasible = errors.New("rasa: infeasible")
	// ErrBudgetExceeded reports that the optimization deadline expired
	// before any result could be produced. (A budget that expires
	// mid-pass does not error: the pipeline is anytime and returns its
	// incumbent with Result.Stats.Stop explaining why it stopped.)
	ErrBudgetExceeded = errors.New("rasa: budget exceeded")
)

// wrapErr maps internal error values onto the public sentinels at the
// API boundary. Errors outside the three families pass through
// unchanged.
func wrapErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrInvalidProblem),
		errors.Is(err, ErrInfeasible),
		errors.Is(err, ErrBudgetExceeded):
		return err
	case errors.Is(err, cluster.ErrInvalidProblem),
		errors.Is(err, core.ErrInvalidOptions),
		errors.Is(err, lp.ErrBadProblem):
		return fmt.Errorf("%w: %w", ErrInvalidProblem, err)
	case errors.Is(err, migrate.ErrStalled):
		return fmt.Errorf("%w: %w", ErrInfeasible, err)
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrBudgetExceeded, err)
	default:
		return err
	}
}

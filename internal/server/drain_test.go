package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/core"
	"github.com/cloudsched/rasa/internal/solve"
)

// blockingOptimize returns a stub that parks until its context is
// cancelled, then returns an "anytime incumbent" (the current
// assignment) — a deterministic stand-in for a long solver pass.
// started receives one value per invocation as it begins.
func blockingOptimize(started chan<- string) func(ctx context.Context, p *cluster.Problem, cur *cluster.Assignment, opts core.Options) (*core.Result, error) {
	return func(ctx context.Context, p *cluster.Problem, cur *cluster.Assignment, opts core.Options) (*core.Result, error) {
		if started != nil {
			started <- "started"
		}
		<-ctx.Done()
		return &core.Result{
			Assignment:       cur.Clone(),
			GainedAffinity:   cur.GainedAffinity(p),
			OriginalAffinity: cur.GainedAffinity(p),
			Stats:            solve.Stats{Stop: solve.Cause(ctx.Err())},
		}, nil
	}
}

func submit(t *testing.T, ts *httptest.Server, body []byte) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

func TestQueueFullReturns429(t *testing.T) {
	started := make(chan string, 4)
	s := New(Config{Workers: 1, QueueDepth: 1})
	s.optimize = blockingOptimize(started)
	ts := httptest.NewServer(s)
	defer ts.Close()

	snap := testSnapshot(t, 30)

	// First job occupies the single worker...
	code, first := submit(t, ts, snap)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d", code)
	}
	<-started
	// ...second fills the queue...
	if code, _ := submit(t, ts, snap); code != http.StatusAccepted {
		t.Fatalf("second submit: %d", code)
	}
	// ...third must bounce with 429.
	code, body := submit(t, ts, snap)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overload submit: %d %v", code, body)
	}

	// Drain: both accepted jobs must still complete.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	_, v := getJob(t, ts.URL, first["id"].(string), "")
	if v.Status != StatusCompleted {
		t.Fatalf("first job after drain: %q", v.Status)
	}
}

func TestGracefulDrain(t *testing.T) {
	started := make(chan string, 4)
	s := New(Config{Workers: 1, QueueDepth: 8})
	s.optimize = blockingOptimize(started)
	ts := httptest.NewServer(s)
	defer ts.Close()

	snap := testSnapshot(t, 31)

	// One in-flight job, one queued behind it.
	_, running := submit(t, ts, snap)
	<-started
	_, queued := submit(t, ts, snap)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Both jobs must have terminal results with their anytime incumbents
	// and a "cancelled" stop cause.
	for _, b := range []map[string]any{running, queued} {
		_, v := getJob(t, ts.URL, b["id"].(string), "")
		if v.Status != StatusCompleted {
			t.Fatalf("job %v after drain: %q (error %q)", b["id"], v.Status, v.Error)
		}
		if v.Result == nil || len(v.Result.Assignment) == 0 {
			t.Fatalf("job %v drained without an incumbent", b["id"])
		}
		if v.Result.Stats.Stop != solve.Cancelled {
			t.Fatalf("job %v stop cause %v, want cancelled", b["id"], v.Result.Stats.Stop)
		}
	}

	// New work is rejected with 503 and healthz reports draining.
	if code, _ := submit(t, ts, snap); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit accepted: %d", code)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d", resp.StatusCode)
	}

	// Shutdown is idempotent.
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

func TestShutdownTimeout(t *testing.T) {
	// A worker stuck in a solve that ignores cancellation must not hang
	// Shutdown past its context.
	block := make(chan struct{})
	s := New(Config{Workers: 1, QueueDepth: 1})
	started := make(chan string, 1)
	s.optimize = func(ctx context.Context, p *cluster.Problem, cur *cluster.Assignment, opts core.Options) (*core.Result, error) {
		started <- "started"
		<-block // ignores ctx: simulates a wedged solver
		return &core.Result{Assignment: cur.Clone()}, nil
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer close(block)

	submit(t, ts, testSnapshot(t, 32))
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("shutdown returned %v, want deadline exceeded", err)
	}
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/cloudsched/rasa/internal/fed"
	"github.com/cloudsched/rasa/internal/incr"
	"github.com/cloudsched/rasa/internal/lifetime"
	"github.com/cloudsched/rasa/internal/sched"
	"github.com/cloudsched/rasa/internal/snapshot"
	"github.com/cloudsched/rasa/internal/solve"
)

// clusterSession is the server's single live cluster: the incremental
// engine (or, with Config.Shards >= 2, the federated shard pool) plus
// the budgets needed to derive request deadlines. One session exists at
// a time; POST /v1/cluster replaces it. Exactly one of eng/pool is set.
//
// The session mutex serializes Reoptimize calls (the engine's own state
// lock would too, but queueing callers at this level keeps request
// deadlines honest: each caller's clock starts when its solve starts).
type clusterSession struct {
	mu     sync.Mutex
	eng    *incr.Engine
	pool   *fed.Pool
	budget time.Duration // full-pipeline budget (per-solve deadline input)
}

// stats returns the session's incr.Stats-shaped summary regardless of
// which backend serves it.
func (sess *clusterSession) stats() incr.Stats {
	if sess.pool != nil {
		return sess.pool.Stats()
	}
	return sess.eng.State().Snapshot()
}

// installRequest is the POST /v1/cluster body: a snapshot (wrapped or
// bare, like POST /v1/jobs) plus incremental-engine options. The
// structured Options object is the current form; the top-level
// Strategy/Policy strings are deprecated (still accepted, answered with
// a Deprecation header).
type installRequest struct {
	Snapshot       *snapshot.Snapshot `json:"snapshot"`
	Options        *optionsJSON       `json:"options,omitempty"`
	Budget         duration           `json:"budget,omitempty"`
	DeltaBudget    duration           `json:"deltaBudget,omitempty"`
	DriftThreshold float64            `json:"driftThreshold,omitempty"`
	MaxDirtyRatio  float64            `json:"maxDirtyRatio,omitempty"`
	Strategy       string             `json:"strategy,omitempty"`
	Policy         string             `json:"policy,omitempty"`
	MinAlive       float64            `json:"minAlive,omitempty"`
	SkipMigration  bool               `json:"skipMigration,omitempty"`
	Parallelism    int                `json:"parallelism,omitempty"`
	Seed           int64              `json:"seed,omitempty"`
	ForceFull      bool               `json:"forceFull,omitempty"`
}

func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge, codeBodyTooLarge, fmt.Sprintf("body exceeds %d bytes", tooBig.Limit))
			return nil, false
		}
		writeErr(w, http.StatusBadRequest, codeInvalidRequest, "reading body: "+err.Error())
		return nil, false
	}
	return raw, true
}

func (s *Server) handleClusterInstall(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeErr(w, http.StatusServiceUnavailable, codeDraining, "server is draining")
		return
	}
	raw, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req installRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		writeErr(w, http.StatusBadRequest, codeInvalidRequest, "malformed JSON: "+err.Error())
		return
	}
	if req.Snapshot == nil {
		var snap snapshot.Snapshot
		if err := json.Unmarshal(raw, &snap); err == nil && (snap.Version != 0 || len(snap.Services) > 0) {
			req.Snapshot = &snap
		}
	}
	if req.Snapshot == nil {
		writeErr(w, http.StatusBadRequest, codeInvalidRequest, `missing snapshot (send {"snapshot": {...}, ...options} or a bare snapshot object)`)
		return
	}
	ro, deprecated, err := s.decodeOptions(req.Options, req.Strategy, req.Policy, optionsJSON{
		Budget:         req.Budget,
		DeltaBudget:    req.DeltaBudget,
		DriftThreshold: req.DriftThreshold,
		MaxDirtyRatio:  req.MaxDirtyRatio,
		MinAlive:       req.MinAlive,
		SkipMigration:  req.SkipMigration,
		Parallelism:    req.Parallelism,
		Seed:           req.Seed,
		ForceFull:      req.ForceFull,
	})
	if deprecated {
		markDeprecated(w)
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, codeInvalidRequest, err.Error())
		return
	}
	p, current, err := req.Snapshot.ToCluster()
	if err != nil {
		writeErr(w, http.StatusBadRequest, codeInvalidProblem, err.Error())
		return
	}
	bootstrap := current == nil
	if bootstrap {
		current, err = sched.Original(p, ro.seed)
		if err != nil {
			writeErr(w, http.StatusBadRequest, codeInvalidProblem, "cannot bootstrap initial assignment: "+err.Error())
			return
		}
	}
	budget := ro.budget
	opts := incr.Options{
		Budget:         budget,
		DeltaBudget:    ro.deltaBudget,
		DriftThreshold: ro.driftThreshold,
		MaxDirtyRatio:  ro.maxDirtyRatio,
		Strategy:       ro.strategy,
		Policy:         ro.policy,
		MinAlive:       ro.minAlive,
		SkipMigration:  ro.skipMigration,
		Parallelism:    ro.parallelism,
		ForceFull:      ro.forceFull,
	}
	opts.Partition.Seed = ro.seed

	sess := &clusterSession{budget: budget}
	if s.cfg.Shards >= 2 {
		pool, err := fed.New(p, current, fed.Options{Shards: s.cfg.Shards, Engine: opts}, s.cfg.Registry)
		if err != nil {
			writeErr(w, http.StatusBadRequest, codeInvalidProblem, err.Error())
			return
		}
		sess.pool = pool
	} else {
		st, err := incr.NewState(p, current)
		if err != nil {
			writeErr(w, http.StatusBadRequest, codeInvalidProblem, err.Error())
			return
		}
		sess.eng = incr.New(st, opts, s.cfg.Registry)
	}

	s.mu.Lock()
	s.cluster = sess
	s.mu.Unlock()

	stats := sess.stats()
	resp := map[string]any{
		"services":  stats.Services,
		"machines":  stats.Machines,
		"bootstrap": bootstrap,
		"stats":     stats,
	}
	if sess.pool != nil {
		resp["shards"] = sess.pool.Shards()
		resp["blocks"] = sess.pool.Blocks()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) session() *clusterSession {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cluster
}

// eventsRequest is the POST /v1/cluster/events body.
type eventsRequest struct {
	Events []incr.EventJSON `json:"events"`
}

func (s *Server) handleClusterEvents(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeErr(w, http.StatusServiceUnavailable, codeDraining, "server is draining")
		return
	}
	sess := s.session()
	if sess == nil {
		writeErr(w, http.StatusConflict, codeNoCluster, "no cluster installed (POST /v1/cluster first)")
		return
	}
	raw, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req eventsRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		writeErr(w, http.StatusBadRequest, codeInvalidRequest, "malformed JSON: "+err.Error())
		return
	}
	if len(req.Events) == 0 {
		writeErr(w, http.StatusBadRequest, codeInvalidRequest, `no events (send {"events": [{"type": ...}, ...]})`)
		return
	}
	events, err := incr.DecodeEvents(req.Events)
	if err != nil {
		writeErr(w, http.StatusBadRequest, codeInvalidRequest, err.Error())
		return
	}
	var applied int
	if sess.pool != nil {
		applied, err = sess.pool.Apply(events...)
	} else {
		applied, err = sess.eng.Apply(events...)
	}
	if err != nil {
		// Events before the invalid one are already part of the state —
		// report how far the batch got alongside the error.
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error":   errorBody{Code: codeInvalidRequest, Message: err.Error()},
			"applied": applied,
			"stats":   sess.stats(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"applied": applied,
		"stats":   sess.stats(),
	})
}

// reoptimizeResponse is the POST /v1/cluster/reoptimize body: the delta
// outcome, the changed placements only, and the migration plan for
// exactly the moved containers.
type reoptimizeResponse struct {
	Mode             string                `json:"mode"`
	Escalated        bool                  `json:"escalated,omitempty"`
	EscalationReason string                `json:"escalationReason,omitempty"`
	DirtySubproblems int                   `json:"dirtySubproblems"`
	TotalSubproblems int                   `json:"totalSubproblems"`
	GainedAffinity   float64               `json:"gainedAffinity"`
	NormalizedGain   float64               `json:"normalizedGain"`
	BaselineGain     float64               `json:"baselineGain"`
	Moves            int                   `json:"moves"`
	Changed          []incr.PlacementDelta `json:"changed,omitempty"`
	Plan             *PlanJSON             `json:"plan,omitempty"`
	PartialMigration bool                  `json:"partialMigration,omitempty"`
	OutOfTime        bool                  `json:"outOfTime,omitempty"`
	Stats            solve.Stats           `json:"stats"`
	Elapsed          string                `json:"elapsed"`

	// Federation extras, present only when the session runs sharded
	// (mode "merge"): per-block pass counts, global floor-check
	// rejections, and the merge-phase latency.
	Shards          int    `json:"shards,omitempty"`
	Noops           int    `json:"noops,omitempty"`
	Deltas          int    `json:"deltas,omitempty"`
	Fulls           int    `json:"fulls,omitempty"`
	FloorRejections int    `json:"floorRejections,omitempty"`
	RejectedBlocks  []int  `json:"rejectedBlocks,omitempty"`
	MergeElapsed    string `json:"mergeElapsed,omitempty"`
}

func (s *Server) handleClusterReoptimize(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeErr(w, http.StatusServiceUnavailable, codeDraining, "server is draining")
		return
	}
	sess := s.session()
	if sess == nil {
		writeErr(w, http.StatusConflict, codeNoCluster, "no cluster installed (POST /v1/cluster first)")
		return
	}
	// Serialize solves; a delta pass may legitimately run the full
	// pipeline after its scoped solve (drift escalation), so the
	// deadline covers both plus grace.
	sess.mu.Lock()
	defer sess.mu.Unlock()
	ctx, cancel := context.WithTimeout(s.baseCtx, 2*sess.budget+budgetGrace)
	defer cancel()
	if sess.pool != nil {
		res, err := sess.pool.Reoptimize(ctx)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, codeInternal, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, reoptimizeResponse{
			Mode:             "merge",
			GainedAffinity:   res.GainedAffinity,
			NormalizedGain:   res.NormalizedGain,
			Moves:            res.Moves,
			Changed:          res.Changed,
			Plan:             planJSON(res.Plan),
			PartialMigration: res.PartialMigration,
			OutOfTime:        res.OutOfTime,
			Elapsed:          res.Elapsed.Round(time.Microsecond).String(),
			Shards:           sess.pool.Shards(),
			Noops:            res.Noops,
			Deltas:           res.Deltas,
			Fulls:            res.Fulls,
			FloorRejections:  res.FloorRejections,
			RejectedBlocks:   res.RejectedBlocks,
			MergeElapsed:     res.MergeElapsed.Round(time.Microsecond).String(),
		})
		return
	}
	res, err := sess.eng.Reoptimize(ctx)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, codeInternal, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, reoptimizeResponse{
		Mode:             res.Mode.String(),
		Escalated:        res.Escalated,
		EscalationReason: res.EscalationReason,
		DirtySubproblems: res.DirtySubproblems,
		TotalSubproblems: res.TotalSubproblems,
		GainedAffinity:   res.GainedAffinity,
		NormalizedGain:   res.NormalizedGain,
		BaselineGain:     res.BaselineGain,
		Moves:            res.Moves,
		Changed:          res.Changed,
		Plan:             planJSON(res.Plan),
		PartialMigration: res.PartialMigration,
		OutOfTime:        res.OutOfTime,
		Stats:            res.Stats,
		Elapsed:          res.Elapsed.Round(time.Microsecond).String(),
	})
}

// maxLogPageSize caps the ?limit= of one GET /v1/cluster/log page.
// Pollers needing more pages iterate on `from`; an uncapped limit would
// let one request serialize (and buffer) the entire log history.
const maxLogPageSize = 10_000

// handleClusterLog serves GET /v1/cluster/log?from=N&limit=K: the
// lifetime event log from sequence number `from` (default 1, 1-based,
// inclusive), at most `limit` entries (default 1000, capped at
// maxLogPageSize), plus the log head and the folded state's fingerprint
// so pollers can detect both how far behind they are and whether their
// replayed state matches. Negative or malformed parameters are rejected
// with the standard error envelope.
func (s *Server) handleClusterLog(w http.ResponseWriter, r *http.Request) {
	sess := s.session()
	if sess == nil {
		writeErr(w, http.StatusNotFound, codeNotFound, "no cluster installed")
		return
	}
	from := uint64(1)
	if v := r.URL.Query().Get("from"); v != "" {
		if strings.HasPrefix(v, "-") {
			writeErr(w, http.StatusBadRequest, codeInvalidRequest, fmt.Sprintf("negative from %s (sequence numbers are 1-based)", v))
			return
		}
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, codeInvalidRequest, "invalid from: "+err.Error())
			return
		}
		from = n
	}
	limit := 1000
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeErr(w, http.StatusBadRequest, codeInvalidRequest, "invalid limit (want a positive integer)")
			return
		}
		limit = n
	}
	if limit > maxLogPageSize {
		limit = maxLogPageSize
	}
	var head uint64
	var fingerprint string
	var entries []lifetime.EntryJSON
	if sess.pool != nil {
		head = sess.pool.Head()
		fingerprint = sess.pool.Stats().Fingerprint
		entries = sess.pool.Entries(from)
	} else {
		log := sess.eng.State().Log()
		head = log.Head()
		fingerprint = log.Fingerprint()
		entries = lifetime.EntriesJSON(log.Entries(from))
	}
	if len(entries) > limit {
		entries = entries[:limit]
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"head":        head,
		"fingerprint": fingerprint,
		"from":        from,
		"count":       len(entries),
		"entries":     entries,
	})
}

func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	sess := s.session()
	if sess == nil {
		writeErr(w, http.StatusNotFound, codeNotFound, "no cluster installed")
		return
	}
	writeJSON(w, http.StatusOK, sess.stats())
}

// handleShards serves GET /v1/shards: the federated session's versioned
// block-to-shard map, per-shard ownership, and per-block log positions.
func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	sess := s.session()
	if sess == nil {
		writeErr(w, http.StatusNotFound, codeNotFound, "no cluster installed")
		return
	}
	if sess.pool == nil {
		writeErr(w, http.StatusNotFound, codeNotFound, "cluster session is unsharded (start the server with shards >= 2)")
		return
	}
	writeJSON(w, http.StatusOK, sess.pool.Status())
}

package server

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/core"
	"github.com/cloudsched/rasa/internal/migrate"
	"github.com/cloudsched/rasa/internal/snapshot"
	"github.com/cloudsched/rasa/internal/solve"
)

// Status is a job's lifecycle state.
type Status string

// Job lifecycle. Queued jobs wait for a worker; a drained server still
// finishes every accepted job (with whatever incumbent the cancelled
// solvers produced), so jobs never end in a "dropped" state.
const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusCompleted Status = "completed"
	StatusFailed    Status = "failed"
)

// Job is one asynchronous optimization request.
type Job struct {
	id        string
	submitted time.Time
	budget    time.Duration
	problem   *cluster.Problem
	current   *cluster.Assignment
	opts      core.Options

	mu       sync.Mutex
	status   Status
	started  time.Time
	finished time.Time
	errMsg   string
	result   *JobResult

	// done is closed when the job reaches a terminal status; GET with
	// ?wait= blocks on it.
	done chan struct{}
}

func newJobID(seq int) string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to the sequence alone; IDs stay unique per process.
		return fmt.Sprintf("job-%06d", seq)
	}
	return fmt.Sprintf("job-%06d-%s", seq, hex.EncodeToString(b[:]))
}

func (j *Job) setRunning() {
	j.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	j.mu.Unlock()
}

func (j *Job) complete(r *JobResult) {
	j.mu.Lock()
	j.status = StatusCompleted
	j.finished = time.Now()
	j.result = r
	j.mu.Unlock()
	close(j.done)
}

func (j *Job) fail(err error) {
	j.mu.Lock()
	j.status = StatusFailed
	j.finished = time.Now()
	j.errMsg = err.Error()
	j.mu.Unlock()
	close(j.done)
}

// JobResult is the serialized outcome of a completed optimization.
type JobResult struct {
	// GainedAffinity is the absolute gained affinity of the optimized
	// assignment; divide by TotalAffinity for the normalized share.
	GainedAffinity   float64 `json:"gainedAffinity"`
	OriginalAffinity float64 `json:"originalAffinity"`
	TotalAffinity    float64 `json:"totalAffinity"`
	// ImprovementRatio is (new-old)/old gained affinity.
	ImprovementRatio float64 `json:"improvementRatio"`
	OutOfTime        bool    `json:"outOfTime,omitempty"`
	PartialMigration bool    `json:"partialMigration,omitempty"`
	Elapsed          string  `json:"elapsed"`
	// Stats aggregates solver effort across the pass; Stats.Stop is the
	// pass-level stop cause.
	Stats solve.Stats `json:"stats"`
	// SubResults reports each subproblem's algorithm, objective, and
	// solve stats (including its stop cause).
	SubResults []SubResultJSON `json:"subResults,omitempty"`
	// Assignment is the optimized placement in snapshot form.
	Assignment []snapshot.PlacementJSON `json:"assignment"`
	// Plan is the migration path from the submitted assignment to
	// Assignment (absent with skipMigration or when interrupted).
	Plan *PlanJSON `json:"plan,omitempty"`
}

// SubResultJSON is one subproblem's outcome.
type SubResultJSON struct {
	// Algorithm is the algorithm that produced the result — for a raced
	// subproblem, the winning arm.
	Algorithm string  `json:"algorithm"`
	Objective float64 `json:"objective"`
	// Raced reports both pool algorithms ran head-to-head on this
	// subproblem (an explicit race policy, or a learned decision below
	// its confidence threshold).
	Raced bool `json:"raced,omitempty"`
	// Source and Confidence echo the policy decision that dispatched
	// this subproblem.
	Source     string      `json:"source,omitempty"`
	Confidence float64     `json:"confidence,omitempty"`
	OutOfTime  bool        `json:"outOfTime,omitempty"`
	Stats      solve.Stats `json:"stats"`
}

// PlanJSON is a migration plan in wire form.
type PlanJSON struct {
	Moves       int             `json:"moves"`
	Relocations int             `json:"relocations,omitempty"`
	Steps       [][]CommandJSON `json:"steps"`
}

// CommandJSON is one migration command.
type CommandJSON struct {
	Op      string `json:"op"`
	Service int    `json:"service"`
	Machine int    `json:"machine"`
}

func planJSON(p *migrate.Plan) *PlanJSON {
	if p == nil {
		return nil
	}
	out := &PlanJSON{Moves: p.Moves, Relocations: p.Relocations, Steps: make([][]CommandJSON, len(p.Steps))}
	for i, step := range p.Steps {
		cmds := make([]CommandJSON, len(step))
		for k, c := range step {
			cmds[k] = CommandJSON{Op: c.Op.String(), Service: c.Service, Machine: c.Machine}
		}
		out.Steps[i] = cmds
	}
	return out
}

// buildResult converts a core.Result into its wire form.
func buildResult(p *cluster.Problem, res *core.Result) *JobResult {
	out := &JobResult{
		GainedAffinity:   res.GainedAffinity,
		OriginalAffinity: res.OriginalAffinity,
		TotalAffinity:    p.Affinity.TotalWeight(),
		ImprovementRatio: res.ImprovementRatio(),
		OutOfTime:        res.OutOfTime,
		PartialMigration: res.PartialMigration,
		Elapsed:          res.Elapsed.Round(time.Microsecond).String(),
		Stats:            res.Stats,
		Plan:             planJSON(res.Plan),
	}
	for i, sr := range res.SubResults {
		srj := SubResultJSON{
			Algorithm: sr.Algorithm.String(),
			Objective: sr.Objective,
			Raced:     sr.Race != nil,
			OutOfTime: sr.OutOfTime,
			Stats:     sr.Stats,
		}
		if i < len(res.Decisions) {
			srj.Source = res.Decisions[i].Source
			srj.Confidence = res.Decisions[i].Confidence
		}
		out.SubResults = append(out.SubResults, srj)
	}
	res.Assignment.EachPlacement(func(s, m, count int) {
		out.Assignment = append(out.Assignment, snapshot.PlacementJSON{Service: s, Machine: m, Count: count})
	})
	return out
}

// jobView is the GET /v1/jobs/{id} response body.
type jobView struct {
	ID        string     `json:"id"`
	Status    Status     `json:"status"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	Budget    string     `json:"budget"`
	Error     string     `json:"error,omitempty"`
	Result    *JobResult `json:"result,omitempty"`
}

func (j *Job) view() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{
		ID:        j.id,
		Status:    j.status,
		Submitted: j.submitted,
		Budget:    j.budget.String(),
		Error:     j.errMsg,
		Result:    j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}

// jobSummary is one entry of the GET /v1/jobs listing.
type jobSummary struct {
	ID        string    `json:"id"`
	Status    Status    `json:"status"`
	Submitted time.Time `json:"submitted"`
}

// duration unmarshals either a Go duration string ("2s", "500ms") or a
// plain JSON number of seconds.
type duration time.Duration

func (d *duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("invalid duration %q: %w", s, err)
		}
		*d = duration(v)
		return nil
	}
	var secs float64
	if err := json.Unmarshal(b, &secs); err != nil {
		return fmt.Errorf("duration must be a string like \"2s\" or a number of seconds: %s", b)
	}
	*d = duration(secs * float64(time.Second))
	return nil
}

package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/exec"
)

// The execute endpoints close the plan→execute gap over HTTP: POST
// /v1/cluster/execute re-optimizes the installed cluster session and
// drives the resulting migration plan through an exec.Executor against
// a simulated fabric, with the same async job semantics as /v1/jobs
// (202 + id, GET with ?wait= long-poll). The request's fault knobs
// select the fabric: all zero means the instant in-memory fabric,
// anything else the fault-injecting one.

// executeRequest is the POST /v1/cluster/execute body.
type executeRequest struct {
	// Fault injection (exec.FaultConfig): per-command failure
	// probability, mean latency ± jitter fraction, scheduled machine
	// deaths, RNG seed.
	FailureProb   float64     `json:"failureProb,omitempty"`
	Latency       duration    `json:"latency,omitempty"`
	LatencyJitter float64     `json:"latencyJitter,omitempty"`
	Deaths        []deathJSON `json:"deaths,omitempty"`
	Seed          int64       `json:"seed,omitempty"`
	// Executor tuning (exec.Options); zero means default.
	MinAlive       float64  `json:"minAlive,omitempty"`
	MaxAttempts    int      `json:"maxAttempts,omitempty"`
	CommandTimeout duration `json:"commandTimeout,omitempty"`
	MaxReplans     int      `json:"maxReplans,omitempty"`
	Parallelism    int      `json:"parallelism,omitempty"`
}

// deathJSON schedules one machine death after n applied commands.
type deathJSON struct {
	Machine       int `json:"machine"`
	AfterCommands int `json:"afterCommands"`
}

// execJob is one asynchronous execution run.
type execJob struct {
	id        string
	submitted time.Time

	mu     sync.Mutex
	status Status
	report *exec.Report
	errMsg string
	done   chan struct{}
}

// execReportJSON is the wire form of exec.Report.
type execReportJSON struct {
	Outcome         string            `json:"outcome"`
	Error           string            `json:"error,omitempty"`
	PlannedMoves    int               `json:"plannedMoves"`
	Steps           int               `json:"steps"`
	Commands        int               `json:"commands"`
	Executed        int               `json:"executed"`
	Failed          int               `json:"failed"`
	Skipped         int               `json:"skipped"`
	Retries         int               `json:"retries"`
	BackoffTotal    string            `json:"backoffTotal"`
	Replans         int               `json:"replans"`
	ReplanReasons   []string          `json:"replanReasons,omitempty"`
	Checkpoints     []exec.Checkpoint `json:"checkpoints,omitempty"`
	DeadMachines    []int             `json:"deadMachines,omitempty"`
	FloorViolations int               `json:"floorViolations"`
	EnvFloorDips    int               `json:"envFloorDips"`
	MinHeadroom     int               `json:"minHeadroom"`
	WastedMoves     int               `json:"wastedMoves"`
	PlannedGain     float64           `json:"plannedGain"`
	AchievedGain    float64           `json:"achievedGain"`
	NormPlanned     float64           `json:"normPlanned"`
	NormAchieved    float64           `json:"normAchieved"`
	Elapsed         string            `json:"elapsed"`
}

func execReportView(rep *exec.Report) *execReportJSON {
	return &execReportJSON{
		Outcome:         string(rep.Outcome),
		Error:           rep.Err,
		PlannedMoves:    rep.PlannedMoves,
		Steps:           rep.Steps,
		Commands:        rep.Commands,
		Executed:        rep.Executed,
		Failed:          rep.Failed,
		Skipped:         rep.Skipped,
		Retries:         rep.Retries,
		BackoffTotal:    rep.BackoffTotal.String(),
		Replans:         rep.Replans,
		ReplanReasons:   rep.ReplanReasons,
		Checkpoints:     rep.Checkpoints,
		DeadMachines:    rep.DeadMachines,
		FloorViolations: rep.FloorViolations,
		EnvFloorDips:    rep.EnvFloorDips,
		MinHeadroom:     rep.MinHeadroom,
		WastedMoves:     rep.WastedMoves,
		PlannedGain:     rep.PlannedGain,
		AchievedGain:    rep.AchievedGain,
		NormPlanned:     rep.NormPlanned,
		NormAchieved:    rep.NormAchieved,
		Elapsed:         rep.Elapsed.String(),
	}
}

// execView is the GET /v1/cluster/execute/{id} body.
type execView struct {
	ID        string          `json:"id"`
	Status    Status          `json:"status"`
	Submitted time.Time       `json:"submitted"`
	Error     string          `json:"error,omitempty"`
	Report    *execReportJSON `json:"report,omitempty"`
}

func (j *execJob) view() execView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := execView{ID: j.id, Status: j.status, Submitted: j.submitted, Error: j.errMsg}
	if j.report != nil {
		v.Report = execReportView(j.report)
	}
	return v
}

func (j *execJob) finish(rep *exec.Report, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case err != nil:
		j.status = StatusFailed
		j.errMsg = err.Error()
	case rep.Outcome == exec.OutcomeCompleted:
		j.status = StatusCompleted
	default:
		// Aborted / cancelled runs completed their lifecycle; the
		// outcome distinction lives in the report.
		j.status = StatusCompleted
	}
	j.report = rep
	close(j.done)
}

func (req *executeRequest) validate() error {
	if req.FailureProb < 0 || req.FailureProb >= 1 {
		return fmt.Errorf("failureProb %v outside [0, 1)", req.FailureProb)
	}
	if req.Latency < 0 {
		return fmt.Errorf("negative latency %v", time.Duration(req.Latency))
	}
	if req.LatencyJitter < 0 || req.LatencyJitter > 1 {
		return fmt.Errorf("latencyJitter %v outside [0, 1]", req.LatencyJitter)
	}
	if req.MinAlive < 0 || req.MinAlive > 1 {
		return fmt.Errorf("minAlive %v outside [0, 1]", req.MinAlive)
	}
	for _, d := range req.Deaths {
		if d.Machine < 0 || d.AfterCommands < 0 {
			return fmt.Errorf("invalid death schedule %+v", d)
		}
	}
	if req.CommandTimeout < 0 {
		return fmt.Errorf("negative commandTimeout")
	}
	return nil
}

func (s *Server) handleExecuteSubmit(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeErr(w, http.StatusServiceUnavailable, codeDraining, "server is draining; not accepting new executions")
		return
	}
	sess := s.session()
	if sess == nil {
		writeErr(w, http.StatusConflict, codeNoCluster, "no cluster installed (POST /v1/cluster first)")
		return
	}
	raw, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req executeRequest
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &req); err != nil {
			writeErr(w, http.StatusBadRequest, codeInvalidRequest, "malformed JSON: "+err.Error())
			return
		}
	}
	if err := req.validate(); err != nil {
		writeErr(w, http.StatusBadRequest, codeInvalidRequest, err.Error())
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, codeDraining, "server is draining; not accepting new executions")
		return
	}
	s.execSeq++
	job := &execJob{
		id:        fmt.Sprintf("exec-%d", s.execSeq),
		submitted: time.Now(),
		status:    StatusQueued,
		done:      make(chan struct{}),
	}
	if s.execJobs == nil {
		s.execJobs = make(map[string]*execJob)
	}
	s.execJobs[job.id] = job
	s.execOrder = append(s.execOrder, job.id)
	s.wg.Add(1)
	s.mu.Unlock()

	go s.runExecute(job, sess, req)
	writeJSON(w, http.StatusAccepted, map[string]any{"id": job.id, "status": StatusQueued})
}

// runExecute performs one execution run. Runs serialize on sess.mu with
// each other and with /v1/cluster/reoptimize — the engine's state is
// one cluster, and only one actor may drive it at a time.
func (s *Server) runExecute(job *execJob, sess *clusterSession, req executeRequest) {
	defer s.wg.Done()
	sess.mu.Lock()
	defer sess.mu.Unlock()

	job.mu.Lock()
	job.status = StatusRunning
	job.mu.Unlock()

	machines := 0
	if sess.pool != nil {
		machines = sess.pool.Stats().Machines
	} else {
		machines = sess.eng.State().Problem().M()
	}
	for _, d := range req.Deaths {
		if d.Machine >= machines {
			job.finish(nil, fmt.Errorf("death schedule references machine %d of %d", d.Machine, machines))
			return
		}
	}

	execOpts := exec.Options{
		MinAlive:       req.MinAlive,
		MaxAttempts:    req.MaxAttempts,
		CommandTimeout: time.Duration(req.CommandTimeout),
		MaxReplans:     req.MaxReplans,
		Parallelism:    req.Parallelism,
		Seed:           req.Seed,
	}
	fabFor := func(req executeRequest) func(start *cluster.Assignment, deaths []exec.MachineDeath, seed int64) exec.Fabric {
		return func(start *cluster.Assignment, deaths []exec.MachineDeath, seed int64) exec.Fabric {
			if req.FailureProb == 0 && req.Latency == 0 && len(deaths) == 0 {
				return exec.NewInstantFabric(start)
			}
			return exec.NewFaultFabric(start, exec.FaultConfig{
				FailureProb:   req.FailureProb,
				Latency:       time.Duration(req.Latency),
				LatencyJitter: req.LatencyJitter,
				Deaths:        deaths,
				Seed:          seed,
			})
		}
	}(req)

	// Deadline: each plan or re-plan gets the session's reoptimize
	// allowance (2×budget + grace), and retried/latent command work is
	// bounded by the executor's own per-command timeouts.
	replans := req.MaxReplans
	if replans <= 0 {
		replans = 3
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, time.Duration(replans+1)*(2*sess.budget+budgetGrace))
	defer cancel()

	if sess.pool != nil {
		// Sharded session: one executor per block. Machine-scoped fault
		// schedules are translated into each block's local index space;
		// per-block seeds are derived from the request seed so runs stay
		// reproducible without every block replaying the same fault tape.
		rep, err := sess.pool.Execute(ctx, func(blockID int, gMach []int, start *cluster.Assignment) exec.Fabric {
			var deaths []exec.MachineDeath
			for _, d := range req.Deaths {
				for lm, gm := range gMach {
					if gm == d.Machine {
						deaths = append(deaths, exec.MachineDeath{Machine: lm, AfterCommands: d.AfterCommands})
					}
				}
			}
			return fabFor(start, deaths, req.Seed+int64(blockID))
		}, execOpts)
		job.finish(rep, err)
		return
	}

	st := sess.eng.State()
	start := st.Assignment().Clone()
	deaths := make([]exec.MachineDeath, 0, len(req.Deaths))
	for _, d := range req.Deaths {
		deaths = append(deaths, exec.MachineDeath{Machine: d.Machine, AfterCommands: d.AfterCommands})
	}
	ex := exec.New(sess.eng, fabFor(start, deaths, req.Seed), execOpts, s.cfg.Registry)
	job.finish(ex.Run(ctx))
}

func (s *Server) handleExecuteGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	job, ok := s.execJobs[id]
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, codeNotFound, fmt.Sprintf("no such execution %q", id))
		return
	}
	if d, present, ok := s.parseWait(w, r); !ok {
		return
	} else if present {
		// Same stopped-timer discipline as the jobs long-poll: a
		// disconnected client must not pin a live timer.
		timer := time.NewTimer(d)
		select {
		case <-job.done:
			timer.Stop()
		case <-timer.C:
		case <-r.Context().Done():
			timer.Stop()
			return
		}
	}
	writeJSON(w, http.StatusOK, job.view())
}

func (s *Server) handleExecuteList(w http.ResponseWriter, r *http.Request) {
	type summary struct {
		ID        string    `json:"id"`
		Status    Status    `json:"status"`
		Submitted time.Time `json:"submitted"`
	}
	s.mu.Lock()
	out := make([]summary, 0, len(s.execOrder))
	for _, id := range s.execOrder {
		j := s.execJobs[id]
		j.mu.Lock()
		out = append(out, summary{ID: j.id, Status: j.status, Submitted: j.submitted})
		j.mu.Unlock()
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"executions": out})
}

package server

import (
	"encoding/json"
	"net/http"

	"github.com/cloudsched/rasa/internal/gnn"
	"github.com/cloudsched/rasa/internal/learn"
)

// policyView is the GET /v1/policy response: the server's default
// policy configuration, the online trainer's state, and (when a model
// is installed) the full model weights — the export half of the
// export/import round trip.
type policyView struct {
	// DefaultKind and DefaultMinConfidence are the server-level policy
	// defaults (rasad -policy / -min-confidence); individual requests
	// override them per job via options.policy.
	DefaultKind          string  `json:"defaultKind"`
	DefaultMinConfidence float64 `json:"defaultMinConfidence"`
	// Trainer is the online learning loop's state: model version,
	// holdout accuracy, buffer fill, retrain/rollback counts.
	Trainer learn.Stats `json:"trainer"`
	// Model is the installed GCN's weights (null before the first
	// retrain or import). PUT the same shape back to restore it.
	Model *gnn.GCN `json:"model,omitempty"`
}

func (s *Server) handlePolicyGet(w http.ResponseWriter, r *http.Request) {
	view := policyView{
		DefaultKind:          s.cfg.Policy,
		DefaultMinConfidence: s.cfg.MinConfidence,
		Trainer:              s.trainer.Stats(),
	}
	if m := s.trainer.Model(); m != nil {
		view.Model = m.GCN
	}
	writeJSON(w, http.StatusOK, view)
}

// policyPutRequest is the PUT /v1/policy body: a trained model to
// install ({"model": {...}}, or the bare GCN weight object itself).
type policyPutRequest struct {
	Model *gnn.GCN `json:"model"`
}

// handlePolicyPut imports a trained model and hot-swaps it in as the
// next version, bypassing the rollback gate — the operator asked for
// exactly this model. Weight-shape validation happens in the GCN
// unmarshaller; a corrupt body never reaches the trainer.
func (s *Server) handlePolicyPut(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeErr(w, http.StatusServiceUnavailable, codeDraining, "server is draining")
		return
	}
	raw, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req policyPutRequest
	if err := json.Unmarshal(raw, &req); err != nil || req.Model == nil {
		// A failed decode can leave a half-populated model behind —
		// discard it before trying the fallback shape.
		req.Model = nil
		// Accept the bare GET /v1/policy "model" object piped back in.
		var g gnn.GCN
		if err2 := json.Unmarshal(raw, &g); err2 == nil && g.InDim > 0 {
			req.Model = &g
		} else if err == nil {
			err = err2
		}
		if req.Model == nil {
			msg := `missing model (send {"model": {...}} or the bare model object from GET /v1/policy)`
			if err != nil {
				msg = "malformed model: " + err.Error()
			}
			writeErr(w, http.StatusBadRequest, codeInvalidRequest, msg)
			return
		}
	}
	m := s.trainer.Install(req.Model)
	writeJSON(w, http.StatusOK, map[string]any{
		"version":         m.Version,
		"holdoutAccuracy": m.HoldoutAccuracy,
	})
}

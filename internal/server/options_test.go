package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/cloudsched/rasa/internal/gnn"
)

// postRaw posts JSON and returns the raw response (for header checks)
// plus the decoded body.
func postRaw(t *testing.T, url string, body []byte) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

// TestOptionsFormsAndDeprecation drives the same submission through the
// legacy top-level strategy/policy fields and the structured options
// object: both must be accepted and solve identically, the legacy form
// must be flagged with `Deprecation: true` (RFC 9745), the new form
// must not be, and mixing the two in one request must be rejected.
func TestOptionsFormsAndDeprecation(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, DefaultBudget: 300 * time.Millisecond})
	snap := testSnapshot(t, 5)

	cases := []struct {
		name       string
		body       string
		wantStatus int
		deprecated bool
		wantErr    string
	}{
		{
			name:       "legacy top-level strategy and policy",
			body:       `{"snapshot": %s, "strategy": "random", "policy": "cg", "skipMigration": true}`,
			wantStatus: http.StatusAccepted,
			deprecated: true,
		},
		{
			name:       "structured options object",
			body:       `{"snapshot": %s, "options": {"partition": "random", "policy": {"kind": "cg"}, "skipMigration": true}}`,
			wantStatus: http.StatusAccepted,
			deprecated: false,
		},
		{
			name:       "options with non-policy legacy siblings",
			body:       `{"snapshot": %s, "budget": "250ms", "options": {"policy": {"kind": "cg"}, "skipMigration": true}}`,
			wantStatus: http.StatusAccepted,
			deprecated: false,
		},
		{
			name:       "mixed legacy strings and options object",
			body:       `{"snapshot": %s, "strategy": "random", "options": {"policy": {"kind": "cg"}}}`,
			wantStatus: http.StatusBadRequest,
			deprecated: true,
			wantErr:    "mixes the deprecated",
		},
		{
			name:       "bad options policy kind",
			body:       `{"snapshot": %s, "options": {"policy": {"kind": "quantum"}}}`,
			wantStatus: http.StatusBadRequest,
			wantErr:    "unknown policy",
		},
		{
			name:       "bad options minConfidence",
			body:       `{"snapshot": %s, "options": {"policy": {"kind": "gcn", "minConfidence": 1.5}}}`,
			wantStatus: http.StatusBadRequest,
			wantErr:    "minConfidence",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postRaw(t, ts.URL+"/v1/jobs", []byte(fmt.Sprintf(tc.body, snap)))
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d: %v", resp.StatusCode, tc.wantStatus, body)
			}
			if got := resp.Header.Get("Deprecation") == "true"; got != tc.deprecated {
				t.Fatalf("Deprecation header %q, want flagged=%v", resp.Header.Get("Deprecation"), tc.deprecated)
			}
			if tc.wantErr != "" {
				if _, msg := errEnvelope(body); !strings.Contains(msg, tc.wantErr) {
					t.Fatalf("error %q does not mention %q", msg, tc.wantErr)
				}
				return
			}
			id, _ := body["id"].(string)
			_, v := getJob(t, ts.URL, id, "?wait=30s")
			if v.Status != StatusCompleted {
				t.Fatalf("job status %q, error %q", v.Status, v.Error)
			}
			for i, sr := range v.Result.SubResults {
				if sr.Algorithm != "CG" {
					t.Fatalf("policy cg ignored: subresult %d solved with %s", i, sr.Algorithm)
				}
			}
		})
	}
}

// TestClusterLegacyFormDeprecated checks the cluster-session endpoint
// flags the legacy form too — both option-carrying endpoints share the
// decoder.
func TestClusterLegacyFormDeprecated(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, DefaultBudget: 300 * time.Millisecond})
	var body bytes.Buffer
	fmt.Fprintf(&body, `{"snapshot": %s, "policy": "cg", "skipMigration": true}`, testSnapshot(t, 6))
	resp, out := postRaw(t, ts.URL+"/v1/cluster", body.Bytes())
	if resp.StatusCode >= 400 {
		t.Fatalf("cluster install status %d: %v", resp.StatusCode, out)
	}
	if resp.Header.Get("Deprecation") != "true" {
		t.Fatal("legacy cluster form not flagged deprecated")
	}
}

// TestPolicyRoundTrip exercises GET /v1/policy (trainer state + model
// export) and PUT /v1/policy (model import, hot-swap, gate bypass),
// including re-importing the exported body.
func TestPolicyRoundTrip(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, Policy: "gcn", MinConfidence: 0.75})

	getPolicy := func() map[string]any {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/policy")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/policy status %d", resp.StatusCode)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	// Fresh server: defaults visible, no model yet.
	st := getPolicy()
	if st["defaultKind"] != "gcn" {
		t.Fatalf("defaultKind %v", st["defaultKind"])
	}
	if st["defaultMinConfidence"] != 0.75 {
		t.Fatalf("defaultMinConfidence %v", st["defaultMinConfidence"])
	}
	if _, ok := st["model"]; ok {
		t.Fatalf("untrained server exported a model: %v", st["model"])
	}

	// Import a model; the operator path bypasses the rollback gate.
	m := gnn.NewGCN(2, 16, 2, rand.New(rand.NewSource(1)))
	body, err := json.Marshal(map[string]any{"model": m})
	if err != nil {
		t.Fatal(err)
	}
	put := func(b []byte) (int, map[string]any) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/policy", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}
	code, out := put(body)
	if code != http.StatusOK || out["version"] != float64(1) {
		t.Fatalf("PUT status %d body %v, want version 1", code, out)
	}

	// Export now carries the model; piping the bare model object back
	// in (the documented round trip) installs the next version.
	st = getPolicy()
	model, ok := st["model"].(map[string]any)
	if !ok {
		t.Fatalf("no model in export: %v", st)
	}
	bare, err := json.Marshal(model)
	if err != nil {
		t.Fatal(err)
	}
	code, out = put(bare)
	if code != http.StatusOK || out["version"] != float64(2) {
		t.Fatalf("bare re-import status %d body %v, want version 2", code, out)
	}

	// Garbage is rejected with the unified envelope.
	code, out = put([]byte(`{"model": "nope"}`))
	if code != http.StatusBadRequest {
		t.Fatalf("garbage import status %d body %v", code, out)
	}
}

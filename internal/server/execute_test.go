package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/cloudsched/rasa/internal/snapshot"
	"github.com/cloudsched/rasa/internal/workload"
)

// installExecCluster installs a session with migration planning on
// (the execute endpoint needs a plan, not just a target).
func installExecCluster(t *testing.T, s *Server, seed int64) {
	t.Helper()
	ps := workload.TrainingPresets()[0]
	ps.Seed = seed
	c, err := workload.Generate(ps)
	if err != nil {
		t.Fatal(err)
	}
	rec := postObj(t, s, "/v1/cluster", map[string]any{
		"snapshot": snapshot.FromCluster(c.Problem, c.Original),
		"budget":   "3s",
		"minAlive": 0.75,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("install: %d %s", rec.Code, rec.Body)
	}
}

func getExec(t *testing.T, s *Server, id, query string) (int, execView) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/v1/cluster/execute/"+id+query, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var v execView
	if rec.Code < 400 {
		if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
			t.Fatalf("decoding exec view: %v\n%s", err, rec.Body)
		}
	}
	return rec.Code, v
}

func submitExec(t *testing.T, s *Server, body any) string {
	t.Helper()
	rec := postObj(t, s, "/v1/cluster/execute", body)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("execute submit: %d %s", rec.Code, rec.Body)
	}
	var resp struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil || resp.ID == "" {
		t.Fatalf("execute submit response: %v %s", err, rec.Body)
	}
	return resp.ID
}

func TestExecuteLifecycle(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(t.Context())
	installExecCluster(t, s, 1)

	id := submitExec(t, s, map[string]any{"seed": 1})
	code, v := getExec(t, s, id, "?wait=60s")
	if code != http.StatusOK {
		t.Fatalf("get: %d", code)
	}
	if v.Status != StatusCompleted {
		t.Fatalf("execution status %q, error %q", v.Status, v.Error)
	}
	if v.Report == nil {
		t.Fatal("completed execution has no report")
	}
	if v.Report.Outcome != "completed" {
		t.Fatalf("outcome %q, error %q", v.Report.Outcome, v.Report.Error)
	}
	if v.Report.FloorViolations != 0 {
		t.Fatalf("executor violated the SLA floor %d times", v.Report.FloorViolations)
	}
	if v.Report.PlannedMoves > 0 && v.Report.Executed == 0 {
		t.Fatalf("plan had %d moves but nothing executed", v.Report.PlannedMoves)
	}

	// The listing shows the run.
	req := httptest.NewRequest(http.MethodGet, "/v1/cluster/execute", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), id) {
		t.Fatalf("listing: %d %s", rec.Code, rec.Body)
	}
}

func TestExecuteWithFaults(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(t.Context())
	installExecCluster(t, s, 2)

	id := submitExec(t, s, map[string]any{
		"failureProb": 0.15,
		"deaths":      []map[string]any{{"machine": 0, "afterCommands": 3}},
		"seed":        7,
		"parallelism": 1,
	})
	code, v := getExec(t, s, id, "?wait=120s")
	if code != http.StatusOK {
		t.Fatalf("get: %d", code)
	}
	if v.Status != StatusCompleted {
		t.Fatalf("execution status %q, error %q", v.Status, v.Error)
	}
	if v.Report.FloorViolations != 0 {
		t.Fatalf("executor violated the SLA floor %d times", v.Report.FloorViolations)
	}
	if v.Report.Outcome == "completed" && len(v.Report.DeadMachines) != 1 {
		t.Fatalf("death not surfaced: %+v", v.Report.DeadMachines)
	}
}

func TestExecuteErrors(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(t.Context())

	// No cluster installed.
	rec := postObj(t, s, "/v1/cluster/execute", nil)
	if rec.Code != http.StatusConflict || !strings.Contains(rec.Body.String(), "no_cluster") {
		t.Fatalf("execute without cluster: %d %s", rec.Code, rec.Body)
	}

	installExecCluster(t, s, 3)

	// Invalid fault knobs use the unified envelope.
	for _, body := range []map[string]any{
		{"failureProb": 1.5},
		{"latencyJitter": 2.0},
		{"minAlive": -0.5},
		{"deaths": []map[string]any{{"machine": -1}}},
	} {
		rec = postObj(t, s, "/v1/cluster/execute", body)
		if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "invalid_request") {
			t.Fatalf("bad request %v: %d %s", body, rec.Code, rec.Body)
		}
	}

	// Unknown id.
	code, _ := getExec(t, s, "exec-999", "")
	if code != http.StatusNotFound {
		t.Fatalf("unknown execution: %d", code)
	}

	// Bad wait duration.
	code, _ = getExec(t, s, "exec-999", "?wait=banana")
	if code != http.StatusNotFound {
		t.Fatalf("unknown id precedence: %d", code)
	}

	// A death schedule referencing a machine outside the cluster fails
	// the job (validated against the session, not the request).
	id := submitExec(t, s, map[string]any{
		"deaths": []map[string]any{{"machine": 9999, "afterCommands": 0}},
	})
	_, v := getExec(t, s, id, "?wait=60s")
	if v.Status != StatusFailed || !strings.Contains(v.Error, "machine 9999") {
		t.Fatalf("out-of-range death: status %q error %q", v.Status, v.Error)
	}
}

// TestExecuteConcurrentStress submits several executions (with and
// without faults) concurrently with a re-optimize; all must reach a
// terminal state without data races. Run under -race -count=2 in CI.
func TestExecuteConcurrentStress(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(t.Context())
	installExecCluster(t, s, 4)

	bodies := []map[string]any{
		{"seed": 1},
		{"failureProb": 0.05, "seed": 2, "parallelism": 1},
		{"seed": 3},
		{"failureProb": 0.1, "seed": 4, "parallelism": 2},
	}
	ids := make([]string, len(bodies))
	var wg sync.WaitGroup
	for i, b := range bodies {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := postObj(t, s, "/v1/cluster/execute", b)
			if rec.Code != http.StatusAccepted {
				t.Errorf("submit %d: %d %s", i, rec.Code, rec.Body)
				return
			}
			var resp struct {
				ID string `json:"id"`
			}
			json.Unmarshal(rec.Body.Bytes(), &resp)
			ids[i] = resp.ID
		}()
	}
	// A concurrent re-optimize serializes with the executions on the
	// session lock.
	wg.Add(1)
	go func() {
		defer wg.Done()
		postObj(t, s, "/v1/cluster/reoptimize", nil)
	}()
	wg.Wait()

	for i, id := range ids {
		if id == "" {
			continue
		}
		code, v := getExec(t, s, id, "?wait=120s")
		if code != http.StatusOK {
			t.Fatalf("get %d: %d", i, code)
		}
		if v.Status != StatusCompleted && v.Status != StatusFailed {
			t.Fatalf("execution %d not terminal: %q", i, v.Status)
		}
		if v.Status == StatusCompleted && v.Report.FloorViolations != 0 {
			t.Fatalf("execution %d violated the SLA floor", i)
		}
	}
}

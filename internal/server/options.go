package server

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"github.com/cloudsched/rasa/internal/core"
	"github.com/cloudsched/rasa/internal/learn"
	"github.com/cloudsched/rasa/internal/pool"
	"github.com/cloudsched/rasa/internal/selector"
)

// optionsJSON is the structured "options" object of POST /v1/jobs and
// POST /v1/cluster:
//
//	{"options": {"partition": "multistage",
//	             "policy": {"kind": "gcn", "minConfidence": 0.8},
//	             "budget": "2s", ...}}
//
// It replaces the legacy stringly top-level "strategy"/"policy" request
// fields; those are still accepted (a request using them gets a
// `Deprecation: true` response header) but cannot be mixed with an
// options object in one request. Fields the object leaves unset fall
// back to the matching top-level field, then to the server defaults.
type optionsJSON struct {
	// Partition picks the partitioner: multistage (default), random,
	// kway, or none.
	Partition string `json:"partition,omitempty"`
	// Policy picks the algorithm-selection policy; see policyJSON.
	Policy *policyJSON `json:"policy,omitempty"`
	// Budget is the per-job (or full-pipeline, for the cluster session)
	// optimization budget.
	Budget        duration `json:"budget,omitempty"`
	MinAlive      float64  `json:"minAlive,omitempty"`
	SkipMigration bool     `json:"skipMigration,omitempty"`
	Parallelism   int      `json:"parallelism,omitempty"`
	Seed          int64    `json:"seed,omitempty"`

	// Incremental-session knobs (POST /v1/cluster only; ignored by
	// /v1/jobs like their legacy top-level counterparts).
	DeltaBudget    duration `json:"deltaBudget,omitempty"`
	DriftThreshold float64  `json:"driftThreshold,omitempty"`
	MaxDirtyRatio  float64  `json:"maxDirtyRatio,omitempty"`
	ForceFull      bool     `json:"forceFull,omitempty"`
}

// policyJSON selects an algorithm-selection policy.
type policyJSON struct {
	// Kind: heuristic (default), cg, mip, race, or gcn (the online-
	// trained classifier; requires nothing to be pre-loaded — an
	// untrained server races and learns).
	Kind string `json:"kind"`
	// MinConfidence overrides the server's race threshold for kind gcn:
	// predictions below it are raced CG-vs-MIP and the outcome feeds the
	// trainer. Unset uses the server default; explicit 0 disables
	// racing.
	MinConfidence *float64 `json:"minConfidence,omitempty"`
}

// reqOptions is the validated, resolved form every option-carrying
// request decodes into.
type reqOptions struct {
	strategy       core.Strategy
	policy         selector.Policy
	policyKind     string
	budget         time.Duration
	minAlive       float64
	skipMigration  bool
	parallelism    int
	seed           int64
	deltaBudget    time.Duration
	driftThreshold float64
	maxDirtyRatio  float64
	forceFull      bool
}

// overlay returns base with every field o sets replaced by o's value.
func (o *optionsJSON) overlay(base optionsJSON) optionsJSON {
	if o == nil {
		return base
	}
	if o.Partition != "" {
		base.Partition = o.Partition
	}
	if o.Policy != nil {
		base.Policy = o.Policy
	}
	if o.Budget != 0 {
		base.Budget = o.Budget
	}
	if o.MinAlive != 0 {
		base.MinAlive = o.MinAlive
	}
	if o.SkipMigration {
		base.SkipMigration = true
	}
	if o.Parallelism != 0 {
		base.Parallelism = o.Parallelism
	}
	if o.Seed != 0 {
		base.Seed = o.Seed
	}
	if o.DeltaBudget != 0 {
		base.DeltaBudget = o.DeltaBudget
	}
	if o.DriftThreshold != 0 {
		base.DriftThreshold = o.DriftThreshold
	}
	if o.MaxDirtyRatio != 0 {
		base.MaxDirtyRatio = o.MaxDirtyRatio
	}
	if o.ForceFull {
		base.ForceFull = true
	}
	return base
}

// decodeOptions is the single validated options decoder behind both
// POST /v1/jobs and POST /v1/cluster. It merges the structured options
// object with the legacy top-level fields (rejecting requests that mix
// the deprecated strategy/policy strings with an options object),
// validates every field, clamps the budget, and reports whether the
// deprecated form was used so handlers can set the Deprecation header.
func (s *Server) decodeOptions(structured *optionsJSON, legacyStrategy, legacyPolicy string, legacy optionsJSON) (reqOptions, bool, error) {
	deprecated := legacyStrategy != "" || legacyPolicy != ""
	if deprecated {
		if structured != nil {
			return reqOptions{}, true, fmt.Errorf(`request mixes the deprecated top-level "strategy"/"policy" fields with an "options" object; move them into options.partition / options.policy`)
		}
		legacy.Partition = legacyStrategy
		if legacyPolicy != "" {
			legacy.Policy = &policyJSON{Kind: legacyPolicy}
		}
	}
	eff := structured.overlay(legacy)

	var out reqOptions
	var err error
	if out.strategy, err = parsePartition(eff.Partition); err != nil {
		return reqOptions{}, deprecated, err
	}
	if out.policy, out.policyKind, err = s.parsePolicy(eff.Policy); err != nil {
		return reqOptions{}, deprecated, err
	}
	if eff.MinAlive < 0 || eff.MinAlive > 1 {
		return reqOptions{}, deprecated, fmt.Errorf("minAlive %v outside [0, 1]", eff.MinAlive)
	}
	out.budget = time.Duration(eff.Budget)
	if out.budget <= 0 {
		out.budget = s.cfg.DefaultBudget
	}
	if out.budget > s.cfg.MaxBudget {
		out.budget = s.cfg.MaxBudget
	}
	out.minAlive = eff.MinAlive
	out.skipMigration = eff.SkipMigration
	out.parallelism = eff.Parallelism
	out.seed = eff.Seed
	if out.seed == 0 {
		out.seed = 1
	}
	out.deltaBudget = time.Duration(eff.DeltaBudget)
	out.driftThreshold = eff.DriftThreshold
	out.maxDirtyRatio = eff.MaxDirtyRatio
	out.forceFull = eff.ForceFull
	return out, deprecated, nil
}

// parsePartition maps the wire partitioner name to a core.Strategy.
func parsePartition(s string) (core.Strategy, error) {
	switch strings.ToLower(s) {
	case "", "multistage", "multi-stage", "multi-stage-partition":
		return core.Multistage, nil
	case "random", "random-partition":
		return core.RandomPartition, nil
	case "kway", "k-way", "kahip":
		return core.KWayPartition, nil
	case "none", "no-partition":
		return core.NoPartition, nil
	}
	return 0, fmt.Errorf("unknown strategy %q (want multistage, random, kway, or none)", s)
}

// parsePolicy builds the selection policy for one request. A nil spec
// uses the server's configured default kind. Kind "gcn" binds the
// request to the server's shared online trainer: every gcn job feeds
// (and benefits from) the same replay buffer and hot-swapped model,
// with the request's minConfidence deciding how eagerly it races.
func (s *Server) parsePolicy(spec *policyJSON) (selector.Policy, string, error) {
	kind := s.cfg.Policy
	minConf := s.cfg.MinConfidence
	if spec != nil {
		if spec.Kind != "" {
			kind = spec.Kind
		}
		if spec.MinConfidence != nil {
			if *spec.MinConfidence < 0 || *spec.MinConfidence > 1 {
				return nil, "", fmt.Errorf("policy minConfidence %v outside [0, 1]", *spec.MinConfidence)
			}
			minConf = *spec.MinConfidence
		}
	}
	switch strings.ToLower(kind) {
	case "", "heuristic":
		return selector.Heuristic{}, "heuristic", nil
	case "cg":
		return selector.Fixed{Algorithm: pool.CG}, "cg", nil
	case "mip":
		return selector.Fixed{Algorithm: pool.MIP}, "mip", nil
	case "race":
		return selector.Race{}, "race", nil
	case "gcn":
		return &learn.Policy{Trainer: s.trainer, MinConfidence: minConf}, "gcn", nil
	}
	return nil, "", fmt.Errorf("unknown policy %q (want heuristic, cg, mip, race, or gcn)", kind)
}

// markDeprecated flags a response to a request that used the legacy
// top-level strategy/policy fields (RFC 9745 Deprecation header).
func markDeprecated(w http.ResponseWriter) {
	w.Header().Set("Deprecation", "true")
}

// Package server is the optimization-as-a-service layer of the
// production deployment (Section III): an HTTP daemon that accepts
// cluster snapshots, queues them onto a bounded worker pool, runs the
// RASA algorithm per job under its own deadline, and exposes results
// and Prometheus-style metrics.
//
// The serving contract mirrors the solve contract one level up:
//
//   - Backpressure, not buffering: the job queue is bounded; an
//     overloaded server answers 429 immediately instead of letting
//     latency grow without bound.
//   - Anytime under drain: SIGTERM (Server.Shutdown) cancels the shared
//     base context — in-flight and still-queued jobs finish quickly
//     with their solvers' anytime incumbents, new submissions get 503,
//     and Shutdown returns once every accepted job has a result.
//   - Observable: every job feeds solve.Stats into the obs registry
//     scraped at GET /metrics.
//
// Endpoints:
//
//	POST /v1/jobs                submit a snapshot (bare, or wrapped with options)
//	GET  /v1/jobs                list jobs
//	GET  /v1/jobs/{id}           job status/result; ?wait=5s long-polls completion
//	POST /v1/cluster             install a live cluster for incremental serving
//	GET  /v1/cluster             live cluster state summary
//	POST /v1/cluster/events      apply a typed event batch to the live cluster
//	POST /v1/cluster/reoptimize  delta re-solve; returns moved containers + plan
//	GET  /v1/cluster/log         lifetime event log (paged; ?from=&limit=)
//	GET  /v1/shards              shard topology of a federated session (-shards >= 2)
//	GET  /v1/policy              selection-policy state + model export
//	PUT  /v1/policy              install (import) a trained selection model
//	GET  /metrics                Prometheus text exposition
//	GET  /healthz                liveness + drain state
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/core"
	"github.com/cloudsched/rasa/internal/learn"
	"github.com/cloudsched/rasa/internal/obs"
	"github.com/cloudsched/rasa/internal/sched"
	"github.com/cloudsched/rasa/internal/snapshot"
)

// Config tunes the service.
type Config struct {
	// Workers is the number of concurrent optimization workers
	// (default 2). Each job already parallelizes its subproblem solves
	// internally, so a small pool saturates the machine.
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs
	// (default 64); submissions beyond it are rejected with 429.
	QueueDepth int
	// DefaultBudget applies when a request omits its budget (default 2s).
	DefaultBudget time.Duration
	// MaxBudget clamps requested budgets (default 60s, the paper's
	// production time-out).
	MaxBudget time.Duration
	// MaxBodyBytes caps request bodies (default snapshot.DefaultMaxBytes,
	// 64 MiB — an M2-scale snapshot is ~3 MiB).
	MaxBodyBytes int64
	// MaxWait clamps ?wait= long-poll durations (default 5m). Requests
	// asking for longer waits are served with this cap instead; negative
	// waits are rejected.
	MaxWait time.Duration
	// Shards >= 2 serves the live cluster session through the federated
	// shard pool (internal/fed): compatibility blocks hashed onto that
	// many shard workers, scatter-gather reoptimization, and the
	// GET /v1/shards topology endpoint. 0 or 1 keeps the single-engine
	// session.
	Shards int
	// Policy is the default algorithm-selection policy kind for requests
	// that don't pick one: heuristic (default), cg, mip, race, or gcn
	// (the online-trained classifier; rasad -serve -policy gcn).
	Policy string
	// MinConfidence is the default race threshold for the gcn policy:
	// predictions whose confidence falls below it run both solvers and
	// feed the outcome back to the trainer. Default 0.8.
	MinConfidence float64
	// Learner tunes the online trainer behind the gcn policy (replay
	// capacity, retrain cadence, holdout split).
	Learner learn.Options
	// Registry receives the service metrics; nil creates a fresh one.
	Registry *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.DefaultBudget <= 0 {
		c.DefaultBudget = 2 * time.Second
	}
	if c.MaxBudget <= 0 {
		c.MaxBudget = 60 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = snapshot.DefaultMaxBytes
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 5 * time.Minute
	}
	if c.Policy == "" {
		c.Policy = "heuristic"
	}
	if c.MinConfidence == 0 {
		c.MinConfidence = 0.8
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	return c
}

// budgetGrace pads a job's context deadline past its optimization
// budget, so the in-band anytime machinery (which returns a merged,
// SLA-reconciled result) finishes before the hard context cut.
const budgetGrace = 5 * time.Second

// Server is the optimization service. It implements http.Handler.
type Server struct {
	cfg Config
	mux *http.ServeMux

	baseCtx context.Context
	cancel  context.CancelFunc

	mu       sync.Mutex
	draining bool
	jobs     map[string]*Job
	order    []string
	seq      int
	// cluster is the live incremental session (POST /v1/cluster); nil
	// until one is installed.
	cluster *clusterSession
	// execution runs against the cluster session (POST /v1/cluster/execute).
	execJobs  map[string]*execJob
	execOrder []string
	execSeq   int

	queue   chan *Job
	drainCh chan struct{}
	wg      sync.WaitGroup

	// optimize is swappable for deterministic tests.
	optimize func(ctx context.Context, p *cluster.Problem, cur *cluster.Assignment, opts core.Options) (*core.Result, error)

	// trainer is the shared online learning loop behind every gcn-policy
	// request: one replay buffer, one hot-swapped model per server.
	trainer *learn.Trainer

	jobsTotal  *obs.CounterVec
	inflight   *obs.Gauge
	jobSecs    *obs.Histogram
	queueSecs  *obs.Histogram
	subStops   *obs.CounterVec
	solver     *obs.SolveCollector
	decisions  *obs.CounterVec
	confidence *obs.Histogram
	races      *obs.Counter
}

// New builds the service and starts its worker pool. Call Shutdown to
// drain it.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		baseCtx:  ctx,
		cancel:   cancel,
		jobs:     make(map[string]*Job),
		queue:    make(chan *Job, cfg.QueueDepth),
		drainCh:  make(chan struct{}),
		optimize: core.Optimize,
	}
	reg := cfg.Registry
	s.jobsTotal = reg.CounterVec("rasa_jobs_total", "Jobs by terminal outcome.", "status")
	s.inflight = reg.Gauge("rasa_jobs_inflight", "Jobs currently being optimized.")
	reg.GaugeFunc("rasa_queue_depth", "Jobs queued and not yet running.", func() float64 { return float64(len(s.queue)) })
	reg.Gauge("rasa_queue_capacity", "Bounded queue capacity.").Set(float64(cfg.QueueDepth))
	reg.Gauge("rasa_workers", "Worker pool size.").Set(float64(cfg.Workers))
	s.jobSecs = reg.Histogram("rasa_job_duration_seconds", "Wall time of completed optimization jobs.", nil)
	s.queueSecs = reg.Histogram("rasa_job_queue_seconds", "Time jobs spent queued before a worker picked them up.", nil)
	s.subStops = reg.CounterVec("rasa_subsolve_stop_total", "Subproblem solves by stop cause.", "cause")
	s.solver = obs.NewSolveCollector(reg, "rasa")

	s.trainer = learn.NewTrainer(cfg.Learner)
	s.decisions = reg.CounterVec("rasa_policy_decisions_total", "Algorithm-selection decisions by source and chosen algorithm.", "source", "algorithm")
	s.confidence = reg.Histogram("rasa_policy_confidence", "Confidence of algorithm-selection decisions.",
		[]float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 1})
	s.races = reg.Counter("rasa_policy_races_total", "Subproblems solved by racing both pool algorithms.")
	reg.GaugeFunc("rasa_policy_model_version", "Version of the installed selection model (0 = untrained).",
		func() float64 { return float64(s.trainer.Stats().Version) })
	reg.GaugeFunc("rasa_policy_holdout_accuracy", "Predictor-vs-oracle accuracy of the installed model on the holdout split.",
		func() float64 { return s.trainer.Stats().HoldoutAccuracy })
	reg.GaugeFunc("rasa_policy_retrains_total", "Online retrains attempted by the policy trainer.",
		func() float64 { return float64(s.trainer.Stats().Retrains) })
	reg.GaugeFunc("rasa_policy_rollbacks_total", "Retrained candidates rejected for regressing holdout accuracy.",
		func() float64 { return float64(s.trainer.Stats().Rollbacks) })
	reg.GaugeFunc("rasa_policy_examples_observed_total", "Race outcomes observed by the policy trainer (ties included).",
		func() float64 { return float64(s.trainer.Stats().Observed) })

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("POST /v1/cluster", s.handleClusterInstall)
	s.mux.HandleFunc("GET /v1/cluster", s.handleClusterStatus)
	s.mux.HandleFunc("POST /v1/cluster/events", s.handleClusterEvents)
	s.mux.HandleFunc("POST /v1/cluster/reoptimize", s.handleClusterReoptimize)
	s.mux.HandleFunc("GET /v1/cluster/log", s.handleClusterLog)
	s.mux.HandleFunc("POST /v1/cluster/execute", s.handleExecuteSubmit)
	s.mux.HandleFunc("GET /v1/cluster/execute", s.handleExecuteList)
	s.mux.HandleFunc("GET /v1/cluster/execute/{id}", s.handleExecuteGet)
	s.mux.HandleFunc("GET /v1/shards", s.handleShards)
	s.mux.HandleFunc("GET /v1/policy", s.handlePolicyGet)
	s.mux.HandleFunc("PUT /v1/policy", s.handlePolicyPut)
	s.mux.Handle("GET /metrics", reg.Handler())
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)

	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Registry returns the metrics registry the server publishes into.
func (s *Server) Registry() *obs.Registry { return s.cfg.Registry }

// ServeHTTP dispatches to the service's routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Shutdown drains the service: new submissions are rejected with 503,
// the shared base context is cancelled so in-flight and queued jobs
// finish promptly with their anytime incumbents, and Shutdown returns
// once every accepted job has reached a terminal status (or ctx
// expires). Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	first := !s.draining
	s.draining = true
	s.mu.Unlock()
	if first {
		s.cancel()
		close(s.drainCh)
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Shutdown has been initiated.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case job := <-s.queue:
			s.runJob(job)
		case <-s.drainCh:
			// Drain: finish whatever is still queued — their contexts
			// are already cancelled, so each solve returns its greedy/
			// incumbent fallback almost immediately — then exit.
			for {
				select {
				case job := <-s.queue:
					s.runJob(job)
				default:
					return
				}
			}
		}
	}
}

func (s *Server) runJob(job *Job) {
	s.queueSecs.Observe(time.Since(job.submitted).Seconds())
	s.inflight.Inc()
	defer s.inflight.Dec()
	job.setRunning()
	ctx, cancel := context.WithTimeout(s.baseCtx, job.budget+budgetGrace)
	defer cancel()
	res, err := s.optimize(ctx, job.problem, job.current, job.opts)
	if err != nil {
		job.fail(err)
		s.jobsTotal.With(string(StatusFailed)).Inc()
		return
	}
	job.complete(buildResult(job.problem, res))
	s.jobsTotal.With(string(StatusCompleted)).Inc()
	s.jobSecs.Observe(time.Since(job.started).Seconds())
	s.solver.Observe(res.Stats)
	for _, sr := range res.SubResults {
		s.subStops.With(sr.Stats.Stop.String()).Inc()
		if sr.Race != nil {
			s.races.Inc()
		}
	}
	for _, d := range res.Decisions {
		// The algorithm label is what the policy asked for — RACE counts
		// as its own arm; the winning side is visible per subResult.
		s.decisions.With(d.Source, d.Algorithm.String()).Inc()
		s.confidence.Observe(d.Confidence)
	}
}

// submitRequest is the wrapped POST /v1/jobs body. A bare snapshot
// (top-level "version"/"services") is also accepted, with every option
// at its default. The structured Options object is the current form;
// the top-level Strategy/Policy strings are the deprecated one (still
// accepted, answered with a Deprecation header).
type submitRequest struct {
	Snapshot      *snapshot.Snapshot `json:"snapshot"`
	Options       *optionsJSON       `json:"options,omitempty"`
	Budget        duration           `json:"budget,omitempty"`
	Strategy      string             `json:"strategy,omitempty"`
	Policy        string             `json:"policy,omitempty"`
	MinAlive      float64            `json:"minAlive,omitempty"`
	SkipMigration bool               `json:"skipMigration,omitempty"`
	Parallelism   int                `json:"parallelism,omitempty"`
	Seed          int64              `json:"seed,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeErr(w, http.StatusServiceUnavailable, codeDraining, "server is draining; not accepting new jobs")
		return
	}
	raw, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req submitRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		writeErr(w, http.StatusBadRequest, codeInvalidRequest, "malformed JSON: "+err.Error())
		return
	}
	if req.Snapshot == nil {
		// Accept a bare snapshot body (rasagen output piped straight in)
		// with every option at its default.
		var snap snapshot.Snapshot
		if err := json.Unmarshal(raw, &snap); err == nil && (snap.Version != 0 || len(snap.Services) > 0) {
			req.Snapshot = &snap
		}
	}
	if req.Snapshot == nil {
		writeErr(w, http.StatusBadRequest, codeInvalidRequest, `missing snapshot (send {"snapshot": {...}, "options": {...}} or a bare snapshot object)`)
		return
	}
	ro, deprecated, err := s.decodeOptions(req.Options, req.Strategy, req.Policy, optionsJSON{
		Budget:        req.Budget,
		MinAlive:      req.MinAlive,
		SkipMigration: req.SkipMigration,
		Parallelism:   req.Parallelism,
		Seed:          req.Seed,
	})
	if deprecated {
		markDeprecated(w)
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, codeInvalidRequest, err.Error())
		return
	}
	p, current, err := req.Snapshot.ToCluster()
	if err != nil {
		writeErr(w, http.StatusBadRequest, codeInvalidProblem, err.Error())
		return
	}
	if current == nil {
		// Snapshot without a recorded deployment: bootstrap with the
		// ORIGINAL scheduler, like the one-shot CLI path.
		current, err = sched.Original(p, ro.seed)
		if err != nil {
			writeErr(w, http.StatusBadRequest, codeInvalidProblem, "cannot bootstrap initial assignment: "+err.Error())
			return
		}
	}
	budget := ro.budget
	job := &Job{
		submitted: time.Now(),
		budget:    budget,
		problem:   p,
		current:   current,
		opts: core.Options{
			Budget:        budget,
			Strategy:      ro.strategy,
			Policy:        ro.policy,
			MinAlive:      ro.minAlive,
			SkipMigration: ro.skipMigration,
			Parallelism:   ro.parallelism,
		},
		done: make(chan struct{}),
	}
	job.opts.Partition.Seed = ro.seed

	// Register and enqueue under the lock so a concurrent Shutdown
	// either sees this job in the queue or rejected it here.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, codeDraining, "server is draining; not accepting new jobs")
		return
	}
	s.seq++
	job.id = newJobID(s.seq)
	job.status = StatusQueued
	select {
	case s.queue <- job:
		s.jobs[job.id] = job
		s.order = append(s.order, job.id)
	default:
		s.mu.Unlock()
		s.jobsTotal.With("rejected").Inc()
		writeErr(w, http.StatusTooManyRequests, codeQueueFull,
			fmt.Sprintf("job queue full (%d queued); retry later", s.cfg.QueueDepth))
		return
	}
	s.mu.Unlock()

	w.Header().Set("Location", "/v1/jobs/"+job.id)
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":     job.id,
		"status": StatusQueued,
		"budget": budget.String(),
	})
}

// parseWait reads the ?wait= long-poll duration. Absent returns (0,
// false, true). Malformed or negative values get an invalid_request
// envelope; durations above Config.MaxWait are clamped, not rejected —
// a patient poller is not an error, but an unbounded one would pin
// request handlers (and their timers) for arbitrary client-chosen
// spans.
func (s *Server) parseWait(w http.ResponseWriter, r *http.Request) (time.Duration, bool, bool) {
	waitStr := r.URL.Query().Get("wait")
	if waitStr == "" {
		return 0, false, true
	}
	d, err := time.ParseDuration(waitStr)
	if err != nil {
		writeErr(w, http.StatusBadRequest, codeInvalidRequest, "invalid wait duration: "+err.Error())
		return 0, false, false
	}
	if d < 0 {
		writeErr(w, http.StatusBadRequest, codeInvalidRequest, fmt.Sprintf("negative wait duration %s", d))
		return 0, false, false
	}
	if d > s.cfg.MaxWait {
		d = s.cfg.MaxWait
	}
	return d, true, true
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, codeNotFound, fmt.Sprintf("no such job %q", id))
		return
	}
	if d, present, ok := s.parseWait(w, r); !ok {
		return
	} else if present {
		// A stopped timer releases its runtime resources immediately;
		// time.After would pin them for the full wait duration even after
		// the client disconnected, so a burst of abandoned long-polls with
		// generous waits would accumulate live timers for minutes.
		timer := time.NewTimer(d)
		select {
		case <-job.done:
			timer.Stop()
		case <-timer.C:
		case <-r.Context().Done():
			timer.Stop()
			return
		}
	}
	writeJSON(w, http.StatusOK, job.view())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]jobSummary, 0, len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		out = append(out, jobSummary{ID: j.id, Status: j.status, Submitted: j.submitted})
		j.mu.Unlock()
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.Draining() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	s.mu.Lock()
	total := len(s.jobs)
	s.mu.Unlock()
	writeJSON(w, code, map[string]any{
		"status":   status,
		"queued":   len(s.queue),
		"inflight": int(s.inflight.Value()),
		"jobs":     total,
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Stable error codes of the unified /v1 error envelope. Every error
// response from every /v1 endpoint has the shape
//
//	{"error": {"code": "<one of these>", "message": "<detail>"}}
//
// so clients dispatch on code and show message; the set is part of the
// API (documented in the README endpoint table) and only ever grows.
const (
	codeInvalidRequest = "invalid_request" // malformed JSON / bad field values
	codeInvalidProblem = "invalid_problem" // snapshot or cluster fails validation
	codeBodyTooLarge   = "body_too_large"  // request exceeded MaxBodyBytes
	codeDraining       = "draining"        // server is shutting down
	codeQueueFull      = "queue_full"      // job queue at capacity, retry later
	codeNotFound       = "not_found"       // unknown job / execution / no cluster yet
	codeNoCluster      = "no_cluster"      // cluster endpoint used before install
	codeConflict       = "conflict"        // resource state rejects the operation
	codeInternal       = "internal"        // unexpected server-side failure
)

// errorBody is the payload of the unified error envelope.
type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeErr(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, map[string]errorBody{"error": {Code: code, Message: msg}})
}

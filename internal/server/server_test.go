package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/cloudsched/rasa/internal/snapshot"
	"github.com/cloudsched/rasa/internal/solve"
	"github.com/cloudsched/rasa/internal/workload"
)

// testSnapshot generates a small cluster snapshot as JSON.
func testSnapshot(t *testing.T, seed int64) []byte {
	t.Helper()
	c, err := workload.Generate(workload.Preset{
		Name: "srv", Services: 30, Containers: 150, Machines: 8,
		Beta: 1.6, AffinityFraction: 0.6, Zones: 1, Utilization: 0.55, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(snapshot.FromCluster(c.Problem, c.Original))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body []byte) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

func getJob(t *testing.T, base, id, query string) (int, jobView) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		// Error responses carry the unified envelope, not a job view.
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, jobView{}
	}
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding job view: %v", err)
	}
	return resp.StatusCode, v
}

func TestSubmitBareSnapshotCompletes(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 2, DefaultBudget: 500 * time.Millisecond})

	code, body := postJSON(t, ts.URL+"/v1/jobs", testSnapshot(t, 1))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %v", code, body)
	}
	id, _ := body["id"].(string)
	if id == "" {
		t.Fatalf("no job id in %v", body)
	}

	code, v := getJob(t, ts.URL, id, "?wait=30s")
	if code != http.StatusOK {
		t.Fatalf("get status %d", code)
	}
	if v.Status != StatusCompleted {
		t.Fatalf("job status %q, error %q", v.Status, v.Error)
	}
	r := v.Result
	if r == nil {
		t.Fatal("completed job has no result")
	}
	if len(r.Assignment) == 0 {
		t.Fatal("result has no assignment")
	}
	if r.GainedAffinity <= 0 || r.TotalAffinity <= 0 {
		t.Fatalf("affinity missing: gained=%v total=%v", r.GainedAffinity, r.TotalAffinity)
	}
	if r.GainedAffinity < r.OriginalAffinity-1e-9 {
		t.Fatalf("optimization regressed: %v -> %v", r.OriginalAffinity, r.GainedAffinity)
	}
	if r.Plan == nil {
		t.Fatal("result has no migration plan")
	}
	if len(r.SubResults) == 0 {
		t.Fatal("result has no per-subproblem stats")
	}
	for i, sr := range r.SubResults {
		if sr.Algorithm != "CG" && sr.Algorithm != "MIP" {
			t.Fatalf("subresult %d has unknown algorithm %q", i, sr.Algorithm)
		}
	}
	if r.Stats.Stop == solve.None {
		t.Fatal("pass-level stop cause missing")
	}

	// The wire form must render stop causes as names, not numbers.
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"stop":"`) {
		t.Fatalf("stop causes not rendered as strings: %s", raw)
	}
}

func TestSubmitWrappedOptions(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1})

	var wrapped bytes.Buffer
	fmt.Fprintf(&wrapped, `{"snapshot": %s, "budget": "300ms", "strategy": "random", "policy": "cg", "skipMigration": true, "seed": 7}`,
		testSnapshot(t, 2))
	code, body := postJSON(t, ts.URL+"/v1/jobs", wrapped.Bytes())
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %v", code, body)
	}
	if got := body["budget"]; got != "300ms" {
		t.Fatalf("budget not honoured: %v", got)
	}
	id := body["id"].(string)
	_, v := getJob(t, ts.URL, id, "?wait=30s")
	if v.Status != StatusCompleted {
		t.Fatalf("job status %q, error %q", v.Status, v.Error)
	}
	if v.Result.Plan != nil {
		t.Fatal("skipMigration ignored: plan present")
	}
	for i, sr := range v.Result.SubResults {
		if sr.Algorithm != "CG" {
			t.Fatalf("policy=cg ignored: subresult %d solved with %s", i, sr.Algorithm)
		}
	}
}

// errEnvelope unpacks the unified {"error":{"code","message"}} envelope.
func errEnvelope(body map[string]any) (code, msg string) {
	env, _ := body["error"].(map[string]any)
	code, _ = env["code"].(string)
	msg, _ = env["message"].(string)
	return code, msg
}

func TestSubmitErrors(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1})

	// Malformed JSON.
	code, body := postJSON(t, ts.URL+"/v1/jobs", []byte("{nope"))
	if code != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d %v", code, body)
	}

	// Valid JSON, no snapshot.
	code, _ = postJSON(t, ts.URL+"/v1/jobs", []byte(`{"budget": "1s"}`))
	if code != http.StatusBadRequest {
		t.Fatalf("missing snapshot: status %d", code)
	}

	// Invalid snapshot: the validation error must name the entry.
	code, body = postJSON(t, ts.URL+"/v1/jobs",
		[]byte(`{"version":1,"resourceNames":["cpu"],"services":[{"name":"web","replicas":0,"request":[1]}],"machines":[{"name":"m0","capacity":[4]}]}`))
	if code != http.StatusBadRequest {
		t.Fatalf("invalid snapshot: status %d", code)
	}
	if code, msg := errEnvelope(body); code != "invalid_problem" || !strings.Contains(msg, `service 0 ("web") has non-positive replicas`) {
		t.Fatalf("validation error not descriptive: %v", body)
	}

	// Unknown strategy.
	var wrapped bytes.Buffer
	fmt.Fprintf(&wrapped, `{"snapshot": %s, "strategy": "quantum"}`, testSnapshot(t, 3))
	code, body = postJSON(t, ts.URL+"/v1/jobs", wrapped.Bytes())
	if ec, msg := errEnvelope(body); code != http.StatusBadRequest || ec != "invalid_request" || !strings.Contains(msg, "unknown strategy") {
		t.Fatalf("unknown strategy: status %d %v", code, body)
	}

	// Unknown job id.
	code, _ = getJob(t, ts.URL, "job-does-not-exist", "")
	if code != http.StatusNotFound {
		t.Fatalf("unknown job: status %d", code)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, DefaultBudget: 300 * time.Millisecond})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	scrape := func() string {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}

	counterValue := func(out, name string) float64 {
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, name+" ") {
				var v float64
				fmt.Sscanf(strings.TrimPrefix(line, name+" "), "%g", &v)
				return v
			}
		}
		return 0
	}

	runOne := func(seed int64) {
		_, body := postJSON(t, ts.URL+"/v1/jobs", testSnapshot(t, seed))
		id := body["id"].(string)
		_, v := getJob(t, ts.URL, id, "?wait=30s")
		if v.Status != StatusCompleted {
			t.Fatalf("job status %q, error %q", v.Status, v.Error)
		}
	}

	runOne(10)
	first := scrape()
	if counterValue(first, `rasa_jobs_total{status="completed"}`) != 1 {
		t.Fatalf("jobs_total after one job:\n%s", first)
	}
	pivots1 := counterValue(first, "rasa_solver_simplex_pivots_total")
	if pivots1 <= 0 {
		t.Fatalf("no simplex pivots recorded:\n%s", first)
	}
	if !strings.Contains(first, `rasa_solve_stop_total{cause="`) {
		t.Fatalf("no stop causes recorded:\n%s", first)
	}

	// Counters must increase across a second job.
	runOne(11)
	second := scrape()
	if counterValue(second, `rasa_jobs_total{status="completed"}`) != 2 {
		t.Fatalf("jobs_total did not increase:\n%s", second)
	}
	if p2 := counterValue(second, "rasa_solver_simplex_pivots_total"); p2 <= pivots1 {
		t.Fatalf("solver pivots did not increase: %v -> %v", pivots1, p2)
	}
	if counterValue(second, "rasa_job_duration_seconds_count") != 2 {
		t.Fatalf("job duration histogram count:\n%s", second)
	}
}

func TestListJobs(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, DefaultBudget: 200 * time.Millisecond})
	_, body := postJSON(t, ts.URL+"/v1/jobs", testSnapshot(t, 20))
	id := body["id"].(string)
	getJob(t, ts.URL, id, "?wait=30s")

	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Jobs []jobSummary `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Jobs) != 1 || out.Jobs[0].ID != id {
		t.Fatalf("listing: %+v", out.Jobs)
	}
}

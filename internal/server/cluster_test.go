package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/cloudsched/rasa/internal/snapshot"
	"github.com/cloudsched/rasa/internal/workload"
)

func postObj(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(http.MethodPost, path, &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func installTestCluster(t *testing.T, s *Server) {
	t.Helper()
	c, err := workload.Generate(workload.TrainingPresets()[2]) // T3
	if err != nil {
		t.Fatal(err)
	}
	snap := snapshot.FromCluster(c.Problem, c.Original)
	rec := postObj(t, s, "/v1/cluster", map[string]any{
		"snapshot":      snap,
		"budget":        "3s",
		"skipMigration": true,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("install: %d %s", rec.Code, rec.Body)
	}
	var resp struct {
		Services  int  `json:"services"`
		Machines  int  `json:"machines"`
		Bootstrap bool `json:"bootstrap"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Services == 0 || resp.Machines == 0 {
		t.Fatalf("empty install response: %s", rec.Body)
	}
	if resp.Bootstrap {
		t.Fatal("bootstrap reported for a snapshot with placements")
	}
}

func TestClusterLifecycle(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(t.Context())

	// Events and reoptimize require an installed cluster.
	rec := postObj(t, s, "/v1/cluster/events", map[string]any{
		"events": []map[string]any{{"type": "drainMachine", "machine": 0}},
	})
	if rec.Code != http.StatusConflict {
		t.Fatalf("events without cluster: %d", rec.Code)
	}
	rec = postObj(t, s, "/v1/cluster/reoptimize", nil)
	if rec.Code != http.StatusConflict {
		t.Fatalf("reoptimize without cluster: %d", rec.Code)
	}

	installTestCluster(t, s)

	// Status endpoint reflects the installed state.
	req := httptest.NewRequest(http.MethodGet, "/v1/cluster", nil)
	st := httptest.NewRecorder()
	s.ServeHTTP(st, req)
	if st.Code != http.StatusOK {
		t.Fatalf("status: %d %s", st.Code, st.Body)
	}

	// First reoptimize bootstraps the partition: full pipeline.
	rec = postObj(t, s, "/v1/cluster/reoptimize", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("reoptimize: %d %s", rec.Code, rec.Body)
	}
	var full reoptimizeResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &full); err != nil {
		t.Fatal(err)
	}
	if full.Mode != "full" || full.EscalationReason != "bootstrap" {
		t.Fatalf("first reoptimize mode=%q reason=%q", full.Mode, full.EscalationReason)
	}

	// Apply an event batch and re-optimize: a scoped delta whose
	// response carries only moved containers.
	rec = postObj(t, s, "/v1/cluster/events", map[string]any{
		"events": []map[string]any{
			{"type": "scaleService", "service": 0, "replicas": 9},
			{"type": "updateAffinity", "a": 1, "b": 2, "weight": 0.001},
		},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("events: %d %s", rec.Code, rec.Body)
	}
	var evResp struct {
		Applied int `json:"applied"`
		Stats   struct {
			DirtySubproblems int `json:"dirtySubproblems"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &evResp); err != nil {
		t.Fatal(err)
	}
	if evResp.Applied != 2 {
		t.Fatalf("applied = %d, want 2", evResp.Applied)
	}

	rec = postObj(t, s, "/v1/cluster/reoptimize", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("reoptimize: %d %s", rec.Code, rec.Body)
	}
	var delta reoptimizeResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &delta); err != nil {
		t.Fatal(err)
	}
	if delta.Mode != "delta" && delta.Mode != "full" {
		t.Fatalf("second reoptimize mode=%q", delta.Mode)
	}
	if delta.Mode == "delta" {
		// The changed set must cover the scaled service: its placement
		// grew to meet the new SLA.
		found := false
		for _, d := range delta.Changed {
			if d.Service == 0 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("scaled service absent from changed set: %+v", delta.Changed)
		}
	}

	// The event log records everything that happened: churn events plus
	// the engine's plan commits, pageable via ?from=.
	req = httptest.NewRequest(http.MethodGet, "/v1/cluster/log", nil)
	lg := httptest.NewRecorder()
	s.ServeHTTP(lg, req)
	if lg.Code != http.StatusOK {
		t.Fatalf("log: %d %s", lg.Code, lg.Body)
	}
	var logResp struct {
		Head        uint64 `json:"head"`
		Fingerprint string `json:"fingerprint"`
		Count       int    `json:"count"`
		Entries     []struct {
			Seq  uint64 `json:"seq"`
			Type string `json:"type"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(lg.Body.Bytes(), &logResp); err != nil {
		t.Fatal(err)
	}
	if logResp.Head < 3 || logResp.Count != int(logResp.Head) || logResp.Fingerprint == "" {
		t.Fatalf("log response underpopulated: head=%d count=%d fp=%q", logResp.Head, logResp.Count, logResp.Fingerprint)
	}
	kinds := map[string]bool{}
	for i, en := range logResp.Entries {
		if en.Seq != uint64(i+1) {
			t.Fatalf("entry %d has seq %d", i, en.Seq)
		}
		kinds[en.Type] = true
	}
	for _, want := range []string{"scaleService", "updateAffinity", "planCommitted"} {
		if !kinds[want] {
			t.Fatalf("event kind %q missing from log: %v", want, kinds)
		}
	}
	// Paging from a mid-log offset returns only the tail.
	req = httptest.NewRequest(http.MethodGet, "/v1/cluster/log?from=3", nil)
	lg = httptest.NewRecorder()
	s.ServeHTTP(lg, req)
	var tail struct {
		Count int `json:"count"`
	}
	if err := json.Unmarshal(lg.Body.Bytes(), &tail); err != nil {
		t.Fatal(err)
	}
	if want := int(logResp.Head) - 2; tail.Count != want {
		t.Fatalf("log from=3 count=%d, want %d", tail.Count, want)
	}

	// Metrics from the incr engine are exported through the server
	// registry.
	var buf bytes.Buffer
	if _, err := s.Registry().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rasa_incr_events_total", "rasa_incr_reoptimize_total"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("metric %s missing from exposition", want)
		}
	}
}

func TestClusterEventErrors(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(t.Context())
	installTestCluster(t, s)

	// Unknown event type.
	rec := postObj(t, s, "/v1/cluster/events", map[string]any{
		"events": []map[string]any{{"type": "explode"}},
	})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown type: %d %s", rec.Code, rec.Body)
	}
	// Invalid event mid-batch: earlier events stick, response reports
	// how far the batch got.
	rec = postObj(t, s, "/v1/cluster/events", map[string]any{
		"events": []map[string]any{
			{"type": "scaleService", "service": 1, "replicas": 4},
			{"type": "scaleService", "service": 10_000, "replicas": 4},
		},
	})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("invalid event: %d %s", rec.Code, rec.Body)
	}
	var resp struct {
		Applied int `json:"applied"`
		Error   struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Applied != 1 || resp.Error.Code != "invalid_request" || resp.Error.Message == "" {
		t.Fatalf("partial batch response: %+v", resp)
	}
	// Empty batch.
	rec = postObj(t, s, "/v1/cluster/events", map[string]any{"events": []map[string]any{}})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("empty batch: %d", rec.Code)
	}
}

func TestClusterInstallLimits(t *testing.T) {
	s := New(Config{Workers: 1, MaxBodyBytes: 256})
	defer s.Shutdown(t.Context())
	big := bytes.Repeat([]byte("x"), 1024)
	req := httptest.NewRequest(http.MethodPost, "/v1/cluster", bytes.NewReader(big))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized install body: %d", rec.Code)
	}
	// Same guard on the events endpoint once a cluster exists (the
	// conflict check runs first, so install a tiny cluster via a fresh
	// server with a normal limit is not needed here — conflict wins).
	rec = postObj(t, s, "/v1/cluster/events", map[string]any{"events": []map[string]any{}})
	if rec.Code != http.StatusConflict {
		t.Fatalf("events without cluster: %d", rec.Code)
	}
}

func TestClusterDrainRejects(t *testing.T) {
	s := New(Config{Workers: 1})
	installTestCluster(t, s)
	if err := s.Shutdown(t.Context()); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/v1/cluster", "/v1/cluster/events", "/v1/cluster/reoptimize"} {
		rec := postObj(t, s, path, map[string]any{})
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s during drain: %d", path, rec.Code)
		}
	}
}

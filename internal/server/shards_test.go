package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/cloudsched/rasa/internal/snapshot"
	"github.com/cloudsched/rasa/internal/workload"
)

func getPath(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// installShardedCluster installs a two-zone cluster on a server with
// Shards: 2 and returns the reported block count.
func installShardedCluster(t *testing.T, s *Server) int {
	t.Helper()
	c, err := workload.Generate(workload.Preset{
		Name: "shardtest", Services: 24, Containers: 160, Machines: 8,
		Beta: 1.7, AffinityFraction: 0.6, Zones: 2, CommunitySize: 6,
		Utilization: 0.5, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := snapshot.FromCluster(c.Problem, c.Original)
	rec := postObj(t, s, "/v1/cluster", map[string]any{
		"snapshot":      snap,
		"budget":        "3s",
		"skipMigration": true,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("install: %d %s", rec.Code, rec.Body)
	}
	var resp struct {
		Shards int `json:"shards"`
		Blocks int `json:"blocks"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Shards != 2 || resp.Blocks < 2 {
		t.Fatalf("install reported shards=%d blocks=%d", resp.Shards, resp.Blocks)
	}
	return resp.Blocks
}

// TestShardedSessionLifecycle drives the federated session through the
// unchanged /v1/cluster endpoints plus the new GET /v1/shards.
func TestShardedSessionLifecycle(t *testing.T) {
	s := New(Config{Workers: 1, Shards: 2})
	defer s.Shutdown(t.Context())

	// No cluster yet: /v1/shards is a 404.
	if rec := getPath(t, s, "/v1/shards"); rec.Code != http.StatusNotFound {
		t.Fatalf("shards without cluster: %d", rec.Code)
	}

	blocks := installShardedCluster(t, s)

	// Topology endpoint: versioned map covering every block.
	rec := getPath(t, s, "/v1/shards")
	if rec.Code != http.StatusOK {
		t.Fatalf("shards: %d %s", rec.Code, rec.Body)
	}
	var topo struct {
		Version int `json:"version"`
		Shards  []struct {
			ID     int   `json:"id"`
			Blocks []int `json:"blocks"`
		} `json:"shards"`
		Blocks []struct {
			ID          int    `json:"id"`
			Shard       int    `json:"shard"`
			Fingerprint string `json:"fingerprint"`
		} `json:"blocks"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &topo); err != nil {
		t.Fatal(err)
	}
	if topo.Version != 1 || len(topo.Shards) != 2 || len(topo.Blocks) != blocks {
		t.Fatalf("topology %s", rec.Body)
	}

	// Events route through the pool; stats keep the single-engine shape.
	rec = postObj(t, s, "/v1/cluster/events", map[string]any{
		"events": []map[string]any{
			{"type": "scaleService", "service": 0, "replicas": 9},
			{"type": "drainMachine", "machine": 1},
		},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("events: %d %s", rec.Code, rec.Body)
	}
	var evResp struct {
		Applied int `json:"applied"`
		Stats   struct {
			EventsApplied int    `json:"eventsApplied"`
			LogHead       uint64 `json:"logHead"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &evResp); err != nil {
		t.Fatal(err)
	}
	if evResp.Applied != 2 || evResp.Stats.LogHead != 2 {
		t.Fatalf("events response %s", rec.Body)
	}

	// Reoptimize is the scatter-gather merge pass.
	rec = postObj(t, s, "/v1/cluster/reoptimize", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("reoptimize: %d %s", rec.Code, rec.Body)
	}
	var reResp struct {
		Mode            string `json:"mode"`
		Shards          int    `json:"shards"`
		Fulls           int    `json:"fulls"`
		FloorRejections int    `json:"floorRejections"`
		Moves           int    `json:"moves"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &reResp); err != nil {
		t.Fatal(err)
	}
	if reResp.Mode != "merge" || reResp.Shards != 2 {
		t.Fatalf("reoptimize response %s", rec.Body)
	}
	if reResp.Fulls != blocks {
		t.Fatalf("bootstrap pass ran %d fulls, want %d", reResp.Fulls, blocks)
	}
	if reResp.FloorRejections != 0 {
		t.Fatalf("floor rejections on bootstrap: %s", rec.Body)
	}

	// The journal serves the routed global-index stream.
	rec = getPath(t, s, "/v1/cluster/log?from=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("log: %d %s", rec.Code, rec.Body)
	}
	var logResp struct {
		Head    uint64 `json:"head"`
		Count   int    `json:"count"`
		Entries []struct {
			Seq  uint64 `json:"seq"`
			Type string `json:"type"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &logResp); err != nil {
		t.Fatal(err)
	}
	// Two routed events plus the merge pass marker.
	if logResp.Head != 3 || logResp.Count != 3 {
		t.Fatalf("log response %s", rec.Body)
	}
	if logResp.Entries[0].Type != "scaleService" || logResp.Entries[2].Type != "planCommitted" {
		t.Fatalf("journal entries %s", rec.Body)
	}

	// Sharded execution against the instant fabric.
	rec = postObj(t, s, "/v1/cluster/execute", map[string]any{})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("execute submit: %d %s", rec.Code, rec.Body)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil {
		t.Fatal(err)
	}
	rec = getPath(t, s, "/v1/cluster/execute/"+sub.ID+"?wait=30s")
	if rec.Code != http.StatusOK {
		t.Fatalf("execute get: %d %s", rec.Code, rec.Body)
	}
	var view struct {
		Status string `json:"status"`
		Report *struct {
			Outcome         string `json:"outcome"`
			FloorViolations int    `json:"floorViolations"`
		} `json:"report"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	if view.Status != "completed" || view.Report == nil {
		t.Fatalf("execution %s", rec.Body)
	}
	if view.Report.Outcome != "completed" || view.Report.FloorViolations != 0 {
		t.Fatalf("execution report %s", rec.Body)
	}
}

func TestWaitClamp(t *testing.T) {
	// MaxWait far below the requested wait: the long-poll returns at the
	// clamp instead of hanging for the asked-for hour.
	s := New(Config{Workers: 1, MaxWait: 50 * time.Millisecond})
	defer s.Shutdown(t.Context())
	installTestCluster(t, s)

	rec := postObj(t, s, "/v1/cluster/execute", map[string]any{
		// A visible latency so the run outlives the clamp.
		"latency": "200ms",
	})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	rec = getPath(t, s, "/v1/cluster/execute/"+sub.ID+"?wait=1h")
	if rec.Code != http.StatusOK {
		t.Fatalf("get: %d %s", rec.Code, rec.Body)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("wait=1h returned after %v; clamp did not apply", elapsed)
	}

	// Negative and malformed waits are rejected.
	if rec := getPath(t, s, "/v1/cluster/execute/"+sub.ID+"?wait=-5s"); rec.Code != http.StatusBadRequest {
		t.Fatalf("negative wait: %d", rec.Code)
	}
	if rec := getPath(t, s, "/v1/cluster/execute/"+sub.ID+"?wait=bogus"); rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed wait: %d", rec.Code)
	}
}

func TestLogParamValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(t.Context())
	installTestCluster(t, s)

	for _, path := range []string{
		"/v1/cluster/log?from=-1",
		"/v1/cluster/log?from=abc",
		"/v1/cluster/log?limit=-3",
		"/v1/cluster/log?limit=0",
		"/v1/cluster/log?limit=abc",
	} {
		rec := getPath(t, s, path)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: code %d, want 400", path, rec.Code)
		}
		var env struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
			t.Fatalf("%s: non-envelope body %s", path, rec.Body)
		}
		if env.Error.Code != "invalid_request" || env.Error.Message == "" {
			t.Fatalf("%s: envelope %s", path, rec.Body)
		}
	}

	// An oversized limit is clamped, not rejected.
	rec := getPath(t, s, "/v1/cluster/log?limit=999999999")
	if rec.Code != http.StatusOK {
		t.Fatalf("huge limit: %d %s", rec.Code, rec.Body)
	}

	// Unsharded sessions do not expose shard topology.
	if rec := getPath(t, s, "/v1/shards"); rec.Code != http.StatusNotFound {
		t.Fatalf("shards on unsharded session: %d", rec.Code)
	}
}

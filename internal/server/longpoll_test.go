package server

import (
	"context"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"
)

// stuckJob registers a job that never reaches a terminal state, so a
// long-poll on it can only end via its wait timer or client disconnect.
func stuckJob(s *Server, id string) {
	s.mu.Lock()
	s.jobs[id] = &Job{id: id, submitted: time.Now(), status: StatusQueued, done: make(chan struct{})}
	s.order = append(s.order, id)
	s.mu.Unlock()
}

// TestLongPollClientDisconnect: an abandoned GET /v1/jobs/{id}?wait=
// must return as soon as the client goes away, not sit out the full
// wait duration.
func TestLongPollClientDisconnect(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	stuckJob(s, "stuck")

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("GET", "/v1/jobs/stuck?wait=10m", nil).WithContext(ctx)
	returned := make(chan struct{})
	go func() {
		s.ServeHTTP(httptest.NewRecorder(), req)
		close(returned)
	}()

	// The handler must actually be waiting (job incomplete, wait huge).
	select {
	case <-returned:
		t.Fatal("long-poll returned before disconnect or completion")
	case <-time.After(100 * time.Millisecond):
	}

	cancel() // client disconnect
	select {
	case <-returned:
	case <-time.After(2 * time.Second):
		t.Fatal("handler still blocked 2s after client disconnect; leaks a goroutine per abandoned poll")
	}
}

// TestLongPollAbandonedReleasesTimers: each abandoned long-poll must
// release its wait timer immediately. With time.After the timer (and
// its channel) stay live until the full wait elapses, so a burst of
// abandoned polls with generous waits retains memory for minutes; with
// an explicitly stopped timer the retained heap stays flat.
func TestLongPollAbandonedReleasesTimers(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	stuckJob(s, "stuck")

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // every poll is abandoned on arrival

	const polls = 3000
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < polls; i++ {
		req := httptest.NewRequest("GET", "/v1/jobs/stuck?wait=10m", nil).WithContext(ctx)
		s.ServeHTTP(httptest.NewRecorder(), req)
	}
	runtime.GC()
	runtime.ReadMemStats(&after)

	// 3000 leaked 10-minute timers retain ~1 MB (timer + channel each);
	// with timers stopped on disconnect the growth is only test noise.
	growth := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if growth > 512*1024 {
		t.Fatalf("heap grew %d bytes across %d abandoned long-polls; wait timers are not being released",
			growth, polls)
	}
}

// TestLongPollTimerFires: the wait timer still works — a poll shorter
// than the job returns the non-terminal status after the wait elapses.
func TestLongPollTimerFires(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	stuckJob(s, "stuck")

	start := time.Now()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/jobs/stuck?wait=50ms", nil))
	if el := time.Since(start); el < 40*time.Millisecond {
		t.Fatalf("poll returned after %v, before the wait elapsed", el)
	}
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
}

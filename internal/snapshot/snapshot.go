// Package snapshot serializes cluster states — the problem inventory
// plus the current container-to-machine assignment — to JSON. This is
// the interchange format of the data-collector component (Section
// III-A): cmd/rasagen writes snapshots, cmd/rasad and user tooling read
// them.
package snapshot

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/graph"
)

// Snapshot is the on-disk cluster state.
type Snapshot struct {
	// Version guards the schema.
	Version int `json:"version"`
	// ResourceNames orders every resource vector.
	ResourceNames []string      `json:"resourceNames"`
	Services      []ServiceJSON `json:"services"`
	Machines      []MachineJSON `json:"machines"`
	// Affinity lists weighted service pairs (traffic volumes).
	Affinity []EdgeJSON `json:"affinity"`
	// AntiAffinity lists per-machine concentration caps.
	AntiAffinity []AntiJSON `json:"antiAffinity,omitempty"`
	// Assignment lists current placements.
	Assignment []PlacementJSON `json:"assignment,omitempty"`
}

// ServiceJSON is one service.
type ServiceJSON struct {
	Name     string    `json:"name"`
	Replicas int       `json:"replicas"`
	Request  []float64 `json:"request"`
	// Machines optionally restricts the service to these machine
	// indices (schedulability); empty means unrestricted.
	Machines []int `json:"machines,omitempty"`
}

// MachineJSON is one machine.
type MachineJSON struct {
	Name     string    `json:"name"`
	Capacity []float64 `json:"capacity"`
	Spec     int       `json:"spec,omitempty"`
}

// EdgeJSON is one affinity relation.
type EdgeJSON struct {
	A      int     `json:"a"`
	B      int     `json:"b"`
	Weight float64 `json:"weight"`
}

// AntiJSON is one anti-affinity rule.
type AntiJSON struct {
	Services   []int `json:"services"`
	MaxPerHost int   `json:"maxPerHost"`
}

// PlacementJSON is one assignment entry.
type PlacementJSON struct {
	Service int `json:"service"`
	Machine int `json:"machine"`
	Count   int `json:"count"`
}

// CurrentVersion is the schema version this package writes.
const CurrentVersion = 1

// FromCluster builds a snapshot from a problem and (optionally) its
// assignment.
func FromCluster(p *cluster.Problem, a *cluster.Assignment) *Snapshot {
	s := &Snapshot{Version: CurrentVersion, ResourceNames: p.ResourceNames}
	for si, svc := range p.Services {
		sj := ServiceJSON{Name: svc.Name, Replicas: svc.Replicas, Request: svc.Request}
		if p.Schedulable != nil && p.Schedulable[si] != nil {
			for m := 0; m < p.M(); m++ {
				if p.Schedulable[si].Get(m) {
					sj.Machines = append(sj.Machines, m)
				}
			}
		}
		s.Services = append(s.Services, sj)
	}
	for _, m := range p.Machines {
		s.Machines = append(s.Machines, MachineJSON{Name: m.Name, Capacity: m.Capacity, Spec: m.Spec})
	}
	for _, e := range p.Affinity.Edges() {
		s.Affinity = append(s.Affinity, EdgeJSON{A: e.U, B: e.V, Weight: e.Weight})
	}
	for _, r := range p.AntiAffinity {
		s.AntiAffinity = append(s.AntiAffinity, AntiJSON{Services: r.Services, MaxPerHost: r.MaxPerHost})
	}
	if a != nil {
		a.EachPlacement(func(svc, m, count int) {
			s.Assignment = append(s.Assignment, PlacementJSON{Service: svc, Machine: m, Count: count})
		})
	}
	return s
}

// svcLabel names a service in errors: index plus name when present.
func svcLabel(i int, name string) string {
	if name == "" {
		return fmt.Sprintf("service %d", i)
	}
	return fmt.Sprintf("service %d (%q)", i, name)
}

func machLabel(i int, name string) string {
	if name == "" {
		return fmt.Sprintf("machine %d", i)
	}
	return fmt.Sprintf("machine %d (%q)", i, name)
}

func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// Validate checks the snapshot against the schema invariants before
// any cluster structures are built, so malformed input — hand-edited
// files, truncated collector output, hostile API bodies — surfaces as
// a descriptive error naming the offending entry instead of a panic or
// garbage deep in the solver.
func (s *Snapshot) Validate() error {
	if s.Version != CurrentVersion {
		return fmt.Errorf("snapshot: unsupported version %d (this build reads version %d)", s.Version, CurrentVersion)
	}
	nr := len(s.ResourceNames)
	if nr == 0 {
		return fmt.Errorf("snapshot: resourceNames is empty")
	}
	n, m := len(s.Services), len(s.Machines)
	for i, sj := range s.Services {
		if sj.Replicas <= 0 {
			return fmt.Errorf("snapshot: %s has non-positive replicas %d", svcLabel(i, sj.Name), sj.Replicas)
		}
		if len(sj.Request) != nr {
			return fmt.Errorf("snapshot: %s request has %d entries, want %d (one per resourceNames entry)",
				svcLabel(i, sj.Name), len(sj.Request), nr)
		}
		for r, v := range sj.Request {
			if v < 0 || !finite(v) {
				return fmt.Errorf("snapshot: %s has invalid %s request %v", svcLabel(i, sj.Name), s.ResourceNames[r], v)
			}
		}
		for _, mi := range sj.Machines {
			if mi < 0 || mi >= m {
				return fmt.Errorf("snapshot: %s restricted to machine %d, outside [0,%d)", svcLabel(i, sj.Name), mi, m)
			}
		}
	}
	for i, mj := range s.Machines {
		if len(mj.Capacity) != nr {
			return fmt.Errorf("snapshot: %s capacity has %d entries, want %d (one per resourceNames entry)",
				machLabel(i, mj.Name), len(mj.Capacity), nr)
		}
		for r, v := range mj.Capacity {
			if v < 0 || !finite(v) {
				return fmt.Errorf("snapshot: %s has invalid %s capacity %v", machLabel(i, mj.Name), s.ResourceNames[r], v)
			}
		}
	}
	for i, e := range s.Affinity {
		if e.A < 0 || e.A >= n || e.B < 0 || e.B >= n {
			return fmt.Errorf("snapshot: affinity edge %d references services (%d,%d), outside [0,%d)", i, e.A, e.B, n)
		}
		if e.A == e.B {
			return fmt.Errorf("snapshot: affinity edge %d is a self-loop on service %d", i, e.A)
		}
		if e.Weight < 0 || !finite(e.Weight) {
			return fmt.Errorf("snapshot: affinity edge %d (%d,%d) has invalid weight %v", i, e.A, e.B, e.Weight)
		}
	}
	for i, r := range s.AntiAffinity {
		if r.MaxPerHost < 0 {
			return fmt.Errorf("snapshot: anti-affinity rule %d has negative maxPerHost %d", i, r.MaxPerHost)
		}
		for _, svc := range r.Services {
			if svc < 0 || svc >= n {
				return fmt.Errorf("snapshot: anti-affinity rule %d references service %d, outside [0,%d)", i, svc, n)
			}
		}
	}
	placed := make([]int, n)
	for i, pl := range s.Assignment {
		if pl.Service < 0 || pl.Service >= n {
			return fmt.Errorf("snapshot: assignment entry %d places unknown service %d, outside [0,%d)", i, pl.Service, n)
		}
		if pl.Machine < 0 || pl.Machine >= m {
			return fmt.Errorf("snapshot: assignment entry %d places %s on unknown machine %d, outside [0,%d)",
				i, svcLabel(pl.Service, s.Services[pl.Service].Name), pl.Machine, m)
		}
		if pl.Count <= 0 {
			return fmt.Errorf("snapshot: assignment entry %d has non-positive count %d", i, pl.Count)
		}
		placed[pl.Service] += pl.Count
		if repl := s.Services[pl.Service].Replicas; placed[pl.Service] > repl {
			return fmt.Errorf("snapshot: assignment places %d containers of %s, more than its %d replicas",
				placed[pl.Service], svcLabel(pl.Service, s.Services[pl.Service].Name), repl)
		}
	}
	return nil
}

// ToCluster validates the snapshot and reconstructs the problem and
// assignment (nil if the snapshot has no placements).
func (s *Snapshot) ToCluster() (*cluster.Problem, *cluster.Assignment, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	p := &cluster.Problem{ResourceNames: s.ResourceNames}
	n, m := len(s.Services), len(s.Machines)
	restricted := false
	for _, sj := range s.Services {
		p.Services = append(p.Services, cluster.Service{
			Name: sj.Name, Replicas: sj.Replicas, Request: sj.Request,
		})
		if len(sj.Machines) > 0 {
			restricted = true
		}
	}
	for _, mj := range s.Machines {
		p.Machines = append(p.Machines, cluster.Machine{Name: mj.Name, Capacity: mj.Capacity, Spec: mj.Spec})
	}
	g := graph.New(n)
	for _, e := range s.Affinity {
		g.AddEdge(e.A, e.B, e.Weight)
	}
	p.Affinity = g
	for _, r := range s.AntiAffinity {
		p.AntiAffinity = append(p.AntiAffinity, cluster.AntiAffinityRule{
			Services: r.Services, MaxPerHost: r.MaxPerHost,
		})
	}
	if restricted {
		p.Schedulable = make([]cluster.Bitmap, n)
		for si, sj := range s.Services {
			if len(sj.Machines) == 0 {
				continue
			}
			bm := cluster.NewBitmap(m)
			for _, mi := range sj.Machines {
				bm.Set(mi)
			}
			p.Schedulable[si] = bm
		}
	}
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	var a *cluster.Assignment
	if len(s.Assignment) > 0 {
		a = cluster.NewAssignment(n, m)
		for _, pl := range s.Assignment {
			a.Add(pl.Service, pl.Machine, pl.Count)
		}
	}
	return p, a, nil
}

// DefaultMaxBytes is the input-size guard Load applies: far above any
// legitimate snapshot (an M2-scale snapshot is ~3 MiB) but low enough
// that a malformed or hostile input cannot balloon the decoder.
const DefaultMaxBytes = 64 << 20

// Load reads, validates, and reconstructs a cluster from r in one
// step — the entry point for anything consuming collector output
// (rasad, the optimization service). Inputs beyond DefaultMaxBytes are
// rejected; use LoadLimited to choose a different bound.
func Load(r io.Reader) (*cluster.Problem, *cluster.Assignment, error) {
	return LoadLimited(r, DefaultMaxBytes)
}

// LoadLimited is Load with a configurable input-size cap: reading stops
// at maxBytes and anything larger fails with an explicit error instead
// of feeding the JSON decoder without bound. maxBytes <= 0 means
// DefaultMaxBytes.
func LoadLimited(r io.Reader, maxBytes int64) (*cluster.Problem, *cluster.Assignment, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	// One byte of slack distinguishes "exactly at the limit" from
	// "truncated by it": if the decoder consumed past the cap, the
	// input was too large regardless of whether the prefix happened to
	// parse.
	lr := &io.LimitedReader{R: r, N: maxBytes + 1}
	s, err := Read(lr)
	if lr.N <= 0 {
		return nil, nil, fmt.Errorf("snapshot: input exceeds %d bytes", maxBytes)
	}
	if err != nil {
		return nil, nil, err
	}
	return s.ToCluster()
}

// Write encodes the snapshot as indented JSON.
func Write(w io.Writer, s *Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Read decodes a snapshot.
func Read(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("snapshot: decode: %w", err)
	}
	return &s, nil
}

// Package snapshot serializes cluster states — the problem inventory
// plus the current container-to-machine assignment — to JSON. This is
// the interchange format of the data-collector component (Section
// III-A): cmd/rasagen writes snapshots, cmd/rasad and user tooling read
// them.
package snapshot

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/graph"
)

// Snapshot is the on-disk cluster state.
type Snapshot struct {
	// Version guards the schema.
	Version int `json:"version"`
	// ResourceNames orders every resource vector.
	ResourceNames []string      `json:"resourceNames"`
	Services      []ServiceJSON `json:"services"`
	Machines      []MachineJSON `json:"machines"`
	// Affinity lists weighted service pairs (traffic volumes).
	Affinity []EdgeJSON `json:"affinity"`
	// AntiAffinity lists per-machine concentration caps.
	AntiAffinity []AntiJSON `json:"antiAffinity,omitempty"`
	// Assignment lists current placements.
	Assignment []PlacementJSON `json:"assignment,omitempty"`
}

// ServiceJSON is one service.
type ServiceJSON struct {
	Name     string    `json:"name"`
	Replicas int       `json:"replicas"`
	Request  []float64 `json:"request"`
	// Machines optionally restricts the service to these machine
	// indices (schedulability); empty means unrestricted.
	Machines []int `json:"machines,omitempty"`
}

// MachineJSON is one machine.
type MachineJSON struct {
	Name     string    `json:"name"`
	Capacity []float64 `json:"capacity"`
	Spec     int       `json:"spec,omitempty"`
}

// EdgeJSON is one affinity relation.
type EdgeJSON struct {
	A      int     `json:"a"`
	B      int     `json:"b"`
	Weight float64 `json:"weight"`
}

// AntiJSON is one anti-affinity rule.
type AntiJSON struct {
	Services   []int `json:"services"`
	MaxPerHost int   `json:"maxPerHost"`
}

// PlacementJSON is one assignment entry.
type PlacementJSON struct {
	Service int `json:"service"`
	Machine int `json:"machine"`
	Count   int `json:"count"`
}

// CurrentVersion is the schema version this package writes.
const CurrentVersion = 1

// FromCluster builds a snapshot from a problem and (optionally) its
// assignment.
func FromCluster(p *cluster.Problem, a *cluster.Assignment) *Snapshot {
	s := &Snapshot{Version: CurrentVersion, ResourceNames: p.ResourceNames}
	for si, svc := range p.Services {
		sj := ServiceJSON{Name: svc.Name, Replicas: svc.Replicas, Request: svc.Request}
		if p.Schedulable != nil && p.Schedulable[si] != nil {
			for m := 0; m < p.M(); m++ {
				if p.Schedulable[si].Get(m) {
					sj.Machines = append(sj.Machines, m)
				}
			}
		}
		s.Services = append(s.Services, sj)
	}
	for _, m := range p.Machines {
		s.Machines = append(s.Machines, MachineJSON{Name: m.Name, Capacity: m.Capacity, Spec: m.Spec})
	}
	for _, e := range p.Affinity.Edges() {
		s.Affinity = append(s.Affinity, EdgeJSON{A: e.U, B: e.V, Weight: e.Weight})
	}
	for _, r := range p.AntiAffinity {
		s.AntiAffinity = append(s.AntiAffinity, AntiJSON{Services: r.Services, MaxPerHost: r.MaxPerHost})
	}
	if a != nil {
		a.EachPlacement(func(svc, m, count int) {
			s.Assignment = append(s.Assignment, PlacementJSON{Service: svc, Machine: m, Count: count})
		})
	}
	return s
}

// ToCluster reconstructs the problem and assignment (nil if the
// snapshot has no placements).
func (s *Snapshot) ToCluster() (*cluster.Problem, *cluster.Assignment, error) {
	if s.Version != CurrentVersion {
		return nil, nil, fmt.Errorf("snapshot: unsupported version %d", s.Version)
	}
	p := &cluster.Problem{ResourceNames: s.ResourceNames}
	n, m := len(s.Services), len(s.Machines)
	restricted := false
	for _, sj := range s.Services {
		p.Services = append(p.Services, cluster.Service{
			Name: sj.Name, Replicas: sj.Replicas, Request: sj.Request,
		})
		if len(sj.Machines) > 0 {
			restricted = true
		}
	}
	for _, mj := range s.Machines {
		p.Machines = append(p.Machines, cluster.Machine{Name: mj.Name, Capacity: mj.Capacity, Spec: mj.Spec})
	}
	g := graph.New(n)
	for _, e := range s.Affinity {
		if e.A < 0 || e.A >= n || e.B < 0 || e.B >= n {
			return nil, nil, fmt.Errorf("snapshot: affinity edge (%d,%d) out of range", e.A, e.B)
		}
		g.AddEdge(e.A, e.B, e.Weight)
	}
	p.Affinity = g
	for _, r := range s.AntiAffinity {
		p.AntiAffinity = append(p.AntiAffinity, cluster.AntiAffinityRule{
			Services: r.Services, MaxPerHost: r.MaxPerHost,
		})
	}
	if restricted {
		p.Schedulable = make([]cluster.Bitmap, n)
		for si, sj := range s.Services {
			if len(sj.Machines) == 0 {
				continue
			}
			bm := cluster.NewBitmap(m)
			for _, mi := range sj.Machines {
				if mi < 0 || mi >= m {
					return nil, nil, fmt.Errorf("snapshot: service %d restricted to unknown machine %d", si, mi)
				}
				bm.Set(mi)
			}
			p.Schedulable[si] = bm
		}
	}
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	var a *cluster.Assignment
	if len(s.Assignment) > 0 {
		a = cluster.NewAssignment(n, m)
		for _, pl := range s.Assignment {
			if pl.Service < 0 || pl.Service >= n || pl.Machine < 0 || pl.Machine >= m || pl.Count < 0 {
				return nil, nil, fmt.Errorf("snapshot: invalid placement %+v", pl)
			}
			a.Add(pl.Service, pl.Machine, pl.Count)
		}
	}
	return p, a, nil
}

// Write encodes the snapshot as indented JSON.
func Write(w io.Writer, s *Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Read decodes a snapshot.
func Read(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("snapshot: decode: %w", err)
	}
	return &s, nil
}

package snapshot

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"github.com/cloudsched/rasa/internal/workload"
)

// FuzzLoadSave feeds arbitrary bytes through the full decode → validate
// → rebuild → re-encode path. The invariants: malformed input returns
// an error (never panics), and any input that passes validation must
// survive a save/load round trip without drift.
func FuzzLoadSave(f *testing.F) {
	seed := minimal()
	b, err := json.Marshal(seed)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(b)
	c, err := workload.Generate(workload.Preset{
		Name: "fuzz", Services: 12, Containers: 50, Machines: 5,
		Beta: 1.6, AffinityFraction: 0.6, Zones: 2, Utilization: 0.5, Seed: 3,
	})
	if err != nil {
		f.Fatal(err)
	}
	gen, err := json.Marshal(FromCluster(c.Problem, c.Original))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(gen)
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":1,"resourceNames":["cpu"],"services":[{"replicas":-1,"request":[1]}]}`))
	f.Add([]byte(`{"version":1,"resourceNames":["cpu"],"services":[{"replicas":1,"request":[1]}],"machines":[{"capacity":[1]}],"affinity":[{"a":0,"b":0,"weight":1}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Read(bytes.NewReader(data))
		if err != nil {
			return // not JSON at all: fine, as long as we did not panic
		}
		p, a, err := s.ToCluster()
		if err != nil {
			return // rejected with a descriptive error: fine
		}
		// Accepted: the rebuilt cluster must round-trip cleanly.
		s2 := FromCluster(p, a)
		var buf bytes.Buffer
		if err := Write(&buf, s2); err != nil {
			t.Fatalf("save of accepted snapshot failed: %v", err)
		}
		p2, a2, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reload of accepted snapshot failed: %v", err)
		}
		if p2.N() != p.N() || p2.M() != p.M() {
			t.Fatalf("shape drifted: %d/%d -> %d/%d", p.N(), p.M(), p2.N(), p2.M())
		}
		if math.Abs(p2.Affinity.TotalWeight()-p.Affinity.TotalWeight()) > 1e-9 {
			t.Fatalf("affinity weight drifted: %v -> %v", p.Affinity.TotalWeight(), p2.Affinity.TotalWeight())
		}
		if (a == nil) != (a2 == nil) {
			t.Fatalf("assignment presence drifted")
		}
		if a != nil && math.Abs(a.GainedAffinity(p)-a2.GainedAffinity(p2)) > 1e-9 {
			t.Fatalf("gained affinity drifted")
		}
	})
}

package snapshot

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/cloudsched/rasa/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	c, err := workload.Generate(workload.Preset{
		Name: "snap", Services: 40, Containers: 200, Machines: 10,
		Beta: 1.6, AffinityFraction: 0.6, Zones: 2, Utilization: 0.55, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := FromCluster(c.Problem, c.Original)
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	s2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p2, a2, err := s2.ToCluster()
	if err != nil {
		t.Fatal(err)
	}
	if p2.N() != c.Problem.N() || p2.M() != c.Problem.M() {
		t.Fatalf("shape mismatch %d/%d", p2.N(), p2.M())
	}
	if math.Abs(p2.Affinity.TotalWeight()-c.Problem.Affinity.TotalWeight()) > 1e-9 {
		t.Fatal("affinity weight mismatch")
	}
	if a2 == nil {
		t.Fatal("assignment lost")
	}
	g1 := c.Original.GainedAffinity(c.Problem)
	g2 := a2.GainedAffinity(p2)
	if math.Abs(g1-g2) > 1e-9 {
		t.Fatalf("gained affinity drifted: %v vs %v", g1, g2)
	}
	// Schedulability restrictions must survive the round trip.
	for s := 0; s < p2.N(); s++ {
		for m := 0; m < p2.M(); m++ {
			if p2.CanHost(s, m) != c.Problem.CanHost(s, m) {
				t.Fatalf("schedulability drifted at (%d,%d)", s, m)
			}
		}
	}
}

func TestToClusterRejectsBadData(t *testing.T) {
	bad := []Snapshot{
		{Version: 99},
		{Version: 1, ResourceNames: []string{"cpu"},
			Services: []ServiceJSON{{Name: "a", Replicas: 1, Request: []float64{1}}},
			Machines: []MachineJSON{{Name: "m", Capacity: []float64{1}}},
			Affinity: []EdgeJSON{{A: 0, B: 9, Weight: 1}}},
		{Version: 1, ResourceNames: []string{"cpu"},
			Services:   []ServiceJSON{{Name: "a", Replicas: 1, Request: []float64{1}}},
			Machines:   []MachineJSON{{Name: "m", Capacity: []float64{1}}},
			Assignment: []PlacementJSON{{Service: 0, Machine: 5, Count: 1}}},
		{Version: 1, ResourceNames: []string{"cpu"},
			Services: []ServiceJSON{{Name: "a", Replicas: 1, Request: []float64{1}, Machines: []int{9}}},
			Machines: []MachineJSON{{Name: "m", Capacity: []float64{1}}}},
	}
	for i, s := range bad {
		s := s
		if _, _, err := s.ToCluster(); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestNoAssignment(t *testing.T) {
	c, err := workload.Generate(workload.Preset{
		Name: "snap2", Services: 10, Containers: 40, Machines: 4,
		Beta: 1.6, AffinityFraction: 0.6, Zones: 1, Utilization: 0.5, Seed: 78,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := FromCluster(c.Problem, nil)
	_, a, err := s.ToCluster()
	if err != nil {
		t.Fatal(err)
	}
	if a != nil {
		t.Fatal("expected nil assignment")
	}
}

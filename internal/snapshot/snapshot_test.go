package snapshot

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/cloudsched/rasa/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	c, err := workload.Generate(workload.Preset{
		Name: "snap", Services: 40, Containers: 200, Machines: 10,
		Beta: 1.6, AffinityFraction: 0.6, Zones: 2, Utilization: 0.55, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := FromCluster(c.Problem, c.Original)
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	s2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p2, a2, err := s2.ToCluster()
	if err != nil {
		t.Fatal(err)
	}
	if p2.N() != c.Problem.N() || p2.M() != c.Problem.M() {
		t.Fatalf("shape mismatch %d/%d", p2.N(), p2.M())
	}
	if math.Abs(p2.Affinity.TotalWeight()-c.Problem.Affinity.TotalWeight()) > 1e-9 {
		t.Fatal("affinity weight mismatch")
	}
	if a2 == nil {
		t.Fatal("assignment lost")
	}
	g1 := c.Original.GainedAffinity(c.Problem)
	g2 := a2.GainedAffinity(p2)
	if math.Abs(g1-g2) > 1e-9 {
		t.Fatalf("gained affinity drifted: %v vs %v", g1, g2)
	}
	// Schedulability restrictions must survive the round trip.
	for s := 0; s < p2.N(); s++ {
		for m := 0; m < p2.M(); m++ {
			if p2.CanHost(s, m) != c.Problem.CanHost(s, m) {
				t.Fatalf("schedulability drifted at (%d,%d)", s, m)
			}
		}
	}
}

// minimal returns a small well-formed snapshot for mutation tests.
func minimal() Snapshot {
	return Snapshot{
		Version:       CurrentVersion,
		ResourceNames: []string{"cpu", "mem"},
		Services: []ServiceJSON{
			{Name: "web", Replicas: 2, Request: []float64{1, 2}},
			{Name: "db", Replicas: 1, Request: []float64{2, 4}},
		},
		Machines: []MachineJSON{
			{Name: "m0", Capacity: []float64{8, 16}},
			{Name: "m1", Capacity: []float64{8, 16}},
		},
		Affinity:   []EdgeJSON{{A: 0, B: 1, Weight: 1}},
		Assignment: []PlacementJSON{{Service: 0, Machine: 0, Count: 2}, {Service: 1, Machine: 1, Count: 1}},
	}
}

func TestValidateAcceptsMinimal(t *testing.T) {
	s := minimal()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.ToCluster(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Snapshot)
		wantErr string
	}{
		{"unsupported version", func(s *Snapshot) { s.Version = 99 }, "unsupported version 99"},
		{"no resources", func(s *Snapshot) { s.ResourceNames = nil }, "resourceNames is empty"},
		{"short request", func(s *Snapshot) { s.Services[1].Request = []float64{1} },
			`service 1 ("db") request has 1 entries, want 2`},
		{"negative request", func(s *Snapshot) { s.Services[0].Request[1] = -3 },
			`service 0 ("web") has invalid mem request -3`},
		{"non-positive replicas", func(s *Snapshot) { s.Services[0].Replicas = 0 },
			`service 0 ("web") has non-positive replicas 0`},
		{"restriction out of range", func(s *Snapshot) { s.Services[1].Machines = []int{7} },
			`service 1 ("db") restricted to machine 7, outside [0,2)`},
		{"short capacity", func(s *Snapshot) { s.Machines[0].Capacity = []float64{8} },
			`machine 0 ("m0") capacity has 1 entries, want 2`},
		{"negative capacity", func(s *Snapshot) { s.Machines[1].Capacity[0] = -1 },
			`machine 1 ("m1") has invalid cpu capacity -1`},
		{"affinity out of range", func(s *Snapshot) { s.Affinity[0].B = 9 },
			"affinity edge 0 references services (0,9), outside [0,2)"},
		{"affinity self-loop", func(s *Snapshot) { s.Affinity[0].B = 0 },
			"affinity edge 0 is a self-loop on service 0"},
		{"affinity negative weight", func(s *Snapshot) { s.Affinity[0].Weight = -2 },
			"affinity edge 0 (0,1) has invalid weight -2"},
		{"anti-affinity out of range", func(s *Snapshot) {
			s.AntiAffinity = []AntiJSON{{Services: []int{0, 5}, MaxPerHost: 1}}
		}, "anti-affinity rule 0 references service 5, outside [0,2)"},
		{"anti-affinity negative cap", func(s *Snapshot) {
			s.AntiAffinity = []AntiJSON{{Services: []int{0}, MaxPerHost: -1}}
		}, "anti-affinity rule 0 has negative maxPerHost -1"},
		{"assignment unknown service", func(s *Snapshot) { s.Assignment[0].Service = 4 },
			"assignment entry 0 places unknown service 4, outside [0,2)"},
		{"assignment unknown machine", func(s *Snapshot) { s.Assignment[1].Machine = 3 },
			`assignment entry 1 places service 1 ("db") on unknown machine 3, outside [0,2)`},
		{"assignment non-positive count", func(s *Snapshot) { s.Assignment[0].Count = 0 },
			"assignment entry 0 has non-positive count 0"},
		{"assignment overplaced", func(s *Snapshot) { s.Assignment[1].Count = 5 },
			`assignment places 5 containers of service 1 ("db"), more than its 1 replicas`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := minimal()
			tc.mutate(&s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("malformed snapshot accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name the offending entry (want substring %q)", err, tc.wantErr)
			}
			// ToCluster must reject identically (it validates first).
			if _, _, err2 := s.ToCluster(); err2 == nil {
				t.Fatal("ToCluster accepted what Validate rejected")
			}
		})
	}
}

func TestLoad(t *testing.T) {
	s := minimal()
	var buf bytes.Buffer
	if err := Write(&buf, &s); err != nil {
		t.Fatal(err)
	}
	p, a, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 2 || p.M() != 2 || a == nil || a.Placed(0) != 2 {
		t.Fatalf("load drifted: %d services, %d machines", p.N(), p.M())
	}
	if _, _, err := Load(strings.NewReader(`{"version":99}`)); err == nil {
		t.Fatal("Load accepted unsupported version")
	}
	if _, _, err := Load(strings.NewReader(`not json`)); err == nil {
		t.Fatal("Load accepted garbage")
	}
}

func TestLoadLimited(t *testing.T) {
	s := minimal()
	var buf bytes.Buffer
	if err := Write(&buf, &s); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// A limit above the payload admits it.
	if _, _, err := LoadLimited(bytes.NewReader(data), int64(len(data))); err != nil {
		t.Fatalf("at-limit input rejected: %v", err)
	}
	// A limit below the payload rejects it with the size error, not a
	// bare JSON truncation error.
	_, _, err := LoadLimited(bytes.NewReader(data), int64(len(data))-1)
	if err == nil {
		t.Fatal("over-limit input accepted")
	}
	if !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("over-limit error = %v, want size-limit error", err)
	}
	// maxBytes <= 0 falls back to the default cap.
	if _, _, err := LoadLimited(bytes.NewReader(data), 0); err != nil {
		t.Fatalf("default-cap input rejected: %v", err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestNoAssignment(t *testing.T) {
	c, err := workload.Generate(workload.Preset{
		Name: "snap2", Services: 10, Containers: 40, Machines: 4,
		Beta: 1.6, AffinityFraction: 0.6, Zones: 1, Utilization: 0.5, Seed: 78,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := FromCluster(c.Problem, nil)
	_, a, err := s.ToCluster()
	if err != nil {
		t.Fatal(err)
	}
	if a != nil {
		t.Fatal("expected nil assignment")
	}
}

package gnn

import (
	"math"
	"math/rand"
)

// MLP is the topology-blind baseline of Section V-C: node features are
// mean-pooled first, then classified by a two-hidden-layer perceptron.
// Because pooling happens before any learnable layer, the model cannot
// see the affinity-graph structure — exactly the handicap the ablation
// measures.
type MLP struct {
	InDim, Hidden, Classes int
	W0, W1, WOut           *Mat
	B0, B1, BOut           []float64

	opt struct {
		w0, w1, wOut, b0, b1, bOut *adam
	}
}

// NewMLP builds an MLP with Xavier-initialized weights.
func NewMLP(inDim, hidden, classes int, rng *rand.Rand) *MLP {
	m := &MLP{
		InDim: inDim, Hidden: hidden, Classes: classes,
		W0:   NewMat(inDim, hidden),
		W1:   NewMat(hidden, hidden),
		WOut: NewMat(hidden, classes),
		B0:   make([]float64, hidden),
		B1:   make([]float64, hidden),
		BOut: make([]float64, classes),
	}
	xavierInit(m.W0, rng)
	xavierInit(m.W1, rng)
	xavierInit(m.WOut, rng)
	m.opt.w0 = newAdam(len(m.W0.V))
	m.opt.w1 = newAdam(len(m.W1.V))
	m.opt.wOut = newAdam(len(m.WOut.V))
	m.opt.b0 = newAdam(len(m.B0))
	m.opt.b1 = newAdam(len(m.B1))
	m.opt.bOut = newAdam(len(m.BOut))
	return m
}

type mlpCache struct {
	in, z0, h0, z1, h1 []float64
	probs              []float64
}

func (m *MLP) forward(in []float64) *mlpCache {
	c := &mlpCache{in: in}
	c.z0 = make([]float64, m.Hidden)
	for k := 0; k < m.Hidden; k++ {
		c.z0[k] = m.B0[k]
		for i := 0; i < m.InDim; i++ {
			c.z0[k] += in[i] * m.W0.At(i, k)
		}
	}
	c.h0 = reluVec(c.z0)
	c.z1 = make([]float64, m.Hidden)
	for k := 0; k < m.Hidden; k++ {
		c.z1[k] = m.B1[k]
		for i := 0; i < m.Hidden; i++ {
			c.z1[k] += c.h0[i] * m.W1.At(i, k)
		}
	}
	c.h1 = reluVec(c.z1)
	logits := make([]float64, m.Classes)
	copy(logits, m.BOut)
	for j := 0; j < m.Classes; j++ {
		for k := 0; k < m.Hidden; k++ {
			logits[j] += c.h1[k] * m.WOut.At(k, j)
		}
	}
	c.probs = Softmax(logits)
	return c
}

func reluVec(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		if x > 0 {
			out[i] = x
		} else {
			out[i] = x * leakySlope
		}
	}
	return out
}

// Predict returns class probabilities for mean-pooled features.
func (m *MLP) Predict(x *Mat) []float64 { return m.forward(MeanRows(x)).probs }

// PredictLabel returns the argmax class for mean-pooled features.
func (m *MLP) PredictLabel(x *Mat) int {
	p := m.Predict(x)
	best := 0
	for i := range p {
		if p[i] > p[best] {
			best = i
		}
	}
	return best
}

// Fit trains on mean-pooled samples (AHat is ignored) and returns the
// final mean training loss.
func (m *MLP) Fit(samples []Sample, cfg TrainConfig) float64 {
	if cfg.Epochs <= 0 {
		cfg.Epochs = 60
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.01
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var lastLoss float64
	for ep := 0; ep < cfg.Epochs; ep++ {
		perm := rng.Perm(len(samples))
		var total float64
		for _, i := range perm {
			s := samples[i]
			w := s.effectiveWeight()
			if w == 0 {
				continue
			}
			in := MeanRows(s.X)
			c := m.forward(in)
			total += w * -math.Log(math.Max(c.probs[s.Label], 1e-12))

			dLogits := append([]float64(nil), c.probs...)
			dLogits[s.Label] -= 1

			gWOut := NewMat(m.Hidden, m.Classes)
			dh1 := make([]float64, m.Hidden)
			for k := 0; k < m.Hidden; k++ {
				for j := 0; j < m.Classes; j++ {
					gWOut.Set(k, j, c.h1[k]*dLogits[j])
					dh1[k] += m.WOut.At(k, j) * dLogits[j]
				}
			}
			dz1 := maskVec(dh1, c.z1)
			gW1 := NewMat(m.Hidden, m.Hidden)
			dh0 := make([]float64, m.Hidden)
			for i2 := 0; i2 < m.Hidden; i2++ {
				for k := 0; k < m.Hidden; k++ {
					gW1.Set(i2, k, c.h0[i2]*dz1[k])
					dh0[i2] += m.W1.At(i2, k) * dz1[k]
				}
			}
			dz0 := maskVec(dh0, c.z0)
			gW0 := NewMat(m.InDim, m.Hidden)
			for i2 := 0; i2 < m.InDim; i2++ {
				for k := 0; k < m.Hidden; k++ {
					gW0.Set(i2, k, in[i2]*dz0[k])
				}
			}
			scaleGrads(w, gW0.V, gW1.V, gWOut.V, dz0, dz1, dLogits)
			m.opt.w0.step(m.W0.V, gW0.V, cfg.LR)
			m.opt.w1.step(m.W1.V, gW1.V, cfg.LR)
			m.opt.wOut.step(m.WOut.V, gWOut.V, cfg.LR)
			m.opt.b0.step(m.B0, dz0, cfg.LR)
			m.opt.b1.step(m.B1, dz1, cfg.LR)
			m.opt.bOut.step(m.BOut, dLogits, cfg.LR)
		}
		if len(samples) > 0 {
			lastLoss = total / float64(len(samples))
		}
	}
	return lastLoss
}

func maskVec(g, z []float64) []float64 {
	out := make([]float64, len(g))
	for i := range g {
		if z[i] > 0 {
			out[i] = g[i]
		} else {
			out[i] = g[i] * leakySlope
		}
	}
	return out
}

// Accuracy returns the fraction of samples classified correctly.
func (m *MLP) Accuracy(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	var hit int
	for _, s := range samples {
		if m.PredictLabel(s.X) == s.Label {
			hit++
		}
	}
	return float64(hit) / float64(len(samples))
}

// Package gnn implements the graph-learning substrate for the paper's
// algorithm-selection phase (Section IV-D): a two-layer graph
// convolutional network (GCN) classifier over subproblem feature graphs,
// trained with hand-derived backpropagation and Adam, plus the MLP
// baseline used in the Section V-C ablation. It replaces the GNN
// ecosystem the paper relies on, which has no Go equivalent.
package gnn

import (
	"fmt"
	"math"
	"math/rand"
)

// Mat is a dense row-major matrix.
type Mat struct {
	R, C int
	V    []float64
}

// NewMat returns a zero matrix of the given shape.
func NewMat(r, c int) *Mat {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("gnn: negative matrix shape %dx%d", r, c))
	}
	return &Mat{R: r, C: c, V: make([]float64, r*c)}
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.V[i*m.C+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.V[i*m.C+j] = v }

// Add increments element (i, j).
func (m *Mat) Add(i, j int, v float64) { m.V[i*m.C+j] += v }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	out := NewMat(m.R, m.C)
	copy(out.V, m.V)
	return out
}

// MatMul returns a*b.
func MatMul(a, b *Mat) *Mat {
	if a.C != b.R {
		panic(fmt.Sprintf("gnn: matmul shape mismatch %dx%d * %dx%d", a.R, a.C, b.R, b.C))
	}
	out := NewMat(a.R, b.C)
	for i := 0; i < a.R; i++ {
		for k := 0; k < a.C; k++ {
			av := a.V[i*a.C+k]
			if av == 0 {
				continue
			}
			row := b.V[k*b.C:]
			orow := out.V[i*out.C:]
			for j := 0; j < b.C; j++ {
				orow[j] += av * row[j]
			}
		}
	}
	return out
}

// MatMulT returns aᵀ*b.
func MatMulT(a, b *Mat) *Mat {
	if a.R != b.R {
		panic(fmt.Sprintf("gnn: matmulT shape mismatch %dx%d, %dx%d", a.R, a.C, b.R, b.C))
	}
	out := NewMat(a.C, b.C)
	for k := 0; k < a.R; k++ {
		for i := 0; i < a.C; i++ {
			av := a.V[k*a.C+i]
			if av == 0 {
				continue
			}
			row := b.V[k*b.C:]
			orow := out.V[i*out.C:]
			for j := 0; j < b.C; j++ {
				orow[j] += av * row[j]
			}
		}
	}
	return out
}

// leakySlope is the negative-side slope of the (leaky) ReLU activation.
// A strictly-zero ReLU collapses these tiny 2-feature networks into dead
// units under Adam; the leaky variant keeps gradients alive while
// remaining the ReLU activation the paper specifies.
const leakySlope = 0.01

// ReLU returns the (leaky) rectified linear activation elementwise.
func ReLU(m *Mat) *Mat {
	out := m.Clone()
	for i, v := range out.V {
		if v < 0 {
			out.V[i] = v * leakySlope
		}
	}
	return out
}

// reluMask applies the (leaky) ReLU derivative at z to g, in place.
func reluMask(g, z *Mat) {
	for i := range g.V {
		if z.V[i] <= 0 {
			g.V[i] *= leakySlope
		}
	}
}

// MeanRows returns the column means (graph readout).
func MeanRows(m *Mat) []float64 {
	out := make([]float64, m.C)
	if m.R == 0 {
		return out
	}
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			out[j] += m.V[i*m.C+j]
		}
	}
	for j := range out {
		out[j] /= float64(m.R)
	}
	return out
}

// Softmax returns the softmax of v (numerically stabilized).
func Softmax(v []float64) []float64 {
	out := make([]float64, len(v))
	if len(v) == 0 {
		return out
	}
	mx := v[0]
	for _, x := range v[1:] {
		if x > mx {
			mx = x
		}
	}
	var sum float64
	for i, x := range v {
		out[i] = math.Exp(x - mx)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// xavierInit fills m with Xavier/Glorot uniform values.
func xavierInit(m *Mat, rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(m.R+m.C))
	for i := range m.V {
		m.V[i] = (rng.Float64()*2 - 1) * limit
	}
}

// adam is one Adam-optimized parameter tensor.
type adam struct {
	m, v []float64
	t    int
}

func newAdam(n int) *adam { return &adam{m: make([]float64, n), v: make([]float64, n)} }

// step applies one Adam update to params given grads.
func (a *adam) step(params, grads []float64, lr float64) {
	const (
		beta1 = 0.9
		beta2 = 0.999
		eps   = 1e-8
	)
	a.t++
	bc1 := 1 - math.Pow(beta1, float64(a.t))
	bc2 := 1 - math.Pow(beta2, float64(a.t))
	for i := range params {
		g := grads[i]
		a.m[i] = beta1*a.m[i] + (1-beta1)*g
		a.v[i] = beta2*a.v[i] + (1-beta2)*g*g
		mHat := a.m[i] / bc1
		vHat := a.v[i] / bc2
		params[i] -= lr * mHat / (math.Sqrt(vHat) + eps)
	}
}

package gnn

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/graph"
)

// Sample is one labelled training example: a feature graph and its
// class index.
type Sample struct {
	AHat  *Mat // normalized adjacency D^-1/2 (A+I) D^-1/2
	X     *Mat // node features, n x inDim
	Label int
	// Weight scales this sample's loss gradient. Zero means 1 (the
	// pre-weighting default); race ties labelled by solver timing noise
	// are handed in with small weights so they stop teaching a false
	// preference. Samples with negative weight are skipped entirely.
	Weight float64
}

// effectiveWeight maps the Weight field to a gradient scale: zero is
// the unweighted default, negatives mean "skip".
func (s Sample) effectiveWeight() float64 {
	if s.Weight == 0 {
		return 1
	}
	if s.Weight < 0 {
		return 0
	}
	return s.Weight
}

// GCN is the two-layer graph convolutional network of Section IV-D:
//
//	H1 = ReLU(Â X  W0)
//	H2 = ReLU(Â H1 W1)
//	r  = mean-row readout of H2
//	o  = r WOut + b,  p = softmax(o)
type GCN struct {
	InDim, Hidden, Classes int
	W0, W1, WOut           *Mat
	B0, B1, B              []float64 // conv-layer biases and output bias

	opt struct {
		w0, w1, wOut, b0, b1, b *adam
	}
}

// NewGCN builds a GCN with Xavier-initialized weights.
func NewGCN(inDim, hidden, classes int, rng *rand.Rand) *GCN {
	g := &GCN{
		InDim: inDim, Hidden: hidden, Classes: classes,
		W0:   NewMat(inDim, hidden),
		W1:   NewMat(hidden, hidden),
		WOut: NewMat(hidden, classes),
		B0:   make([]float64, hidden),
		B1:   make([]float64, hidden),
		B:    make([]float64, classes),
	}
	xavierInit(g.W0, rng)
	xavierInit(g.W1, rng)
	xavierInit(g.WOut, rng)
	g.opt.w0 = newAdam(len(g.W0.V))
	g.opt.w1 = newAdam(len(g.W1.V))
	g.opt.wOut = newAdam(len(g.WOut.V))
	g.opt.b0 = newAdam(len(g.B0))
	g.opt.b1 = newAdam(len(g.B1))
	g.opt.b = newAdam(len(g.B))
	return g
}

// forwardCache holds intermediates for backprop.
type forwardCache struct {
	aX, z1, h1, aH1, z2, h2 *Mat
	readout                 []float64
	probs                   []float64
}

func (g *GCN) forward(aHat, x *Mat) *forwardCache {
	c := &forwardCache{}
	c.aX = MatMul(aHat, x)
	c.z1 = MatMul(c.aX, g.W0)
	addRowBias(c.z1, g.B0)
	c.h1 = ReLU(c.z1)
	c.aH1 = MatMul(aHat, c.h1)
	c.z2 = MatMul(c.aH1, g.W1)
	addRowBias(c.z2, g.B1)
	c.h2 = ReLU(c.z2)
	c.readout = MeanRows(c.h2)
	logits := make([]float64, g.Classes)
	copy(logits, g.B)
	for j := 0; j < g.Classes; j++ {
		for k := 0; k < g.Hidden; k++ {
			logits[j] += c.readout[k] * g.WOut.At(k, j)
		}
	}
	c.probs = Softmax(logits)
	return c
}

// Predict returns class probabilities for a feature graph.
func (g *GCN) Predict(aHat, x *Mat) []float64 {
	return g.forward(aHat, x).probs
}

// PredictLabel returns the argmax class.
func (g *GCN) PredictLabel(aHat, x *Mat) int {
	p := g.Predict(aHat, x)
	best := 0
	for i := range p {
		if p[i] > p[best] {
			best = i
		}
	}
	return best
}

// Grads holds parameter gradients for one sample.
type grads struct {
	w0, w1, wOut *Mat
	b0, b1, b    []float64
	loss         float64
}

// addRowBias adds bias b to every row of m.
func addRowBias(m *Mat, b []float64) {
	for i := 0; i < m.R; i++ {
		row := m.V[i*m.C : (i+1)*m.C]
		for j := range row {
			row[j] += b[j]
		}
	}
}

// colSums returns the column sums of m.
func colSums(m *Mat) []float64 {
	out := make([]float64, m.C)
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			out[j] += m.V[i*m.C+j]
		}
	}
	return out
}

// backward computes cross-entropy loss gradients for one sample.
func (g *GCN) backward(s Sample, c *forwardCache) grads {
	n := s.X.R
	gr := grads{
		w0:   NewMat(g.InDim, g.Hidden),
		w1:   NewMat(g.Hidden, g.Hidden),
		wOut: NewMat(g.Hidden, g.Classes),
		b:    make([]float64, g.Classes),
	}
	gr.loss = -math.Log(math.Max(c.probs[s.Label], 1e-12))

	// dL/dlogits = p - onehot.
	dLogits := append([]float64(nil), c.probs...)
	dLogits[s.Label] -= 1

	// WOut and bias.
	for k := 0; k < g.Hidden; k++ {
		for j := 0; j < g.Classes; j++ {
			gr.wOut.Set(k, j, c.readout[k]*dLogits[j])
		}
	}
	copy(gr.b, dLogits)

	// dr = WOut dLogits; dH2 rows = dr / n.
	dr := make([]float64, g.Hidden)
	for k := 0; k < g.Hidden; k++ {
		for j := 0; j < g.Classes; j++ {
			dr[k] += g.WOut.At(k, j) * dLogits[j]
		}
	}
	dH2 := NewMat(n, g.Hidden)
	inv := 1.0 / math.Max(float64(n), 1)
	for i := 0; i < n; i++ {
		for k := 0; k < g.Hidden; k++ {
			dH2.Set(i, k, dr[k]*inv)
		}
	}
	// dZ2 = dH2 ∘ relu'(z2); dW1 = (Â H1)ᵀ dZ2.
	reluMask(dH2, c.z2)
	gr.w1 = MatMulT(c.aH1, dH2)
	gr.b1 = colSums(dH2)
	// dH1 = Âᵀ dZ2 W1ᵀ = Â dZ2 W1ᵀ (Â symmetric).
	aDZ2 := MatMul(s.AHat, dH2)
	dH1 := NewMat(n, g.Hidden)
	for i := 0; i < n; i++ {
		for k := 0; k < g.Hidden; k++ {
			var v float64
			for j := 0; j < g.Hidden; j++ {
				v += aDZ2.At(i, j) * g.W1.At(k, j)
			}
			dH1.Set(i, k, v)
		}
	}
	reluMask(dH1, c.z1)
	gr.w0 = MatMulT(c.aX, dH1)
	gr.b0 = colSums(dH1)
	return gr
}

// TrainConfig tunes Fit.
type TrainConfig struct {
	Epochs int     // default 60
	LR     float64 // default 0.01
	Seed   int64   // shuffling seed
}

// Fit trains the GCN with per-sample Adam steps and returns the final
// mean training loss.
func (g *GCN) Fit(samples []Sample, cfg TrainConfig) float64 {
	if cfg.Epochs <= 0 {
		cfg.Epochs = 60
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.01
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var lastLoss float64
	for ep := 0; ep < cfg.Epochs; ep++ {
		perm := rng.Perm(len(samples))
		var total float64
		for _, i := range perm {
			s := samples[i]
			w := s.effectiveWeight()
			if w == 0 {
				continue
			}
			c := g.forward(s.AHat, s.X)
			gr := g.backward(s, c)
			total += w * gr.loss
			scaleGrads(w, gr.w0.V, gr.w1.V, gr.wOut.V, gr.b0, gr.b1, gr.b)
			g.opt.w0.step(g.W0.V, gr.w0.V, cfg.LR)
			g.opt.w1.step(g.W1.V, gr.w1.V, cfg.LR)
			g.opt.wOut.step(g.WOut.V, gr.wOut.V, cfg.LR)
			g.opt.b0.step(g.B0, gr.b0, cfg.LR)
			g.opt.b1.step(g.B1, gr.b1, cfg.LR)
			g.opt.b.step(g.B, gr.b, cfg.LR)
		}
		if len(samples) > 0 {
			lastLoss = total / float64(len(samples))
		}
	}
	return lastLoss
}

// scaleGrads multiplies every gradient slice by w (no-op at w == 1).
func scaleGrads(w float64, grads ...[]float64) {
	if w == 1 {
		return
	}
	for _, g := range grads {
		for i := range g {
			g[i] *= w
		}
	}
}

// Accuracy returns the fraction of samples whose argmax prediction
// matches the label.
func (g *GCN) Accuracy(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	var hit int
	for _, s := range samples {
		if g.PredictLabel(s.AHat, s.X) == s.Label {
			hit++
		}
	}
	return float64(hit) / float64(len(samples))
}

// gcnJSON is the persistence schema for trained weights.
type gcnJSON struct {
	InDim, Hidden, Classes int
	W0, W1, WOut           []float64
	B0, B1, B              []float64
}

// MarshalJSON serializes the trained weights.
func (g *GCN) MarshalJSON() ([]byte, error) {
	return json.Marshal(gcnJSON{
		InDim: g.InDim, Hidden: g.Hidden, Classes: g.Classes,
		W0: g.W0.V, W1: g.W1.V, WOut: g.WOut.V,
		B0: g.B0, B1: g.B1, B: g.B,
	})
}

// UnmarshalJSON restores trained weights.
func (g *GCN) UnmarshalJSON(data []byte) error {
	var j gcnJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if len(j.W0) != j.InDim*j.Hidden || len(j.W1) != j.Hidden*j.Hidden ||
		len(j.WOut) != j.Hidden*j.Classes || len(j.B) != j.Classes ||
		len(j.B0) != j.Hidden || len(j.B1) != j.Hidden {
		return fmt.Errorf("gnn: corrupt GCN weight shapes")
	}
	*g = GCN{
		InDim: j.InDim, Hidden: j.Hidden, Classes: j.Classes,
		W0:   &Mat{R: j.InDim, C: j.Hidden, V: j.W0},
		W1:   &Mat{R: j.Hidden, C: j.Hidden, V: j.W1},
		WOut: &Mat{R: j.Hidden, C: j.Classes, V: j.WOut},
		B0:   j.B0, B1: j.B1, B: j.B,
	}
	g.opt.w0 = newAdam(len(g.W0.V))
	g.opt.w1 = newAdam(len(g.W1.V))
	g.opt.wOut = newAdam(len(g.WOut.V))
	g.opt.b0 = newAdam(len(g.B0))
	g.opt.b1 = newAdam(len(g.B1))
	g.opt.b = newAdam(len(g.B))
	return nil
}

// FeatureGraph builds the GCN input for a subproblem (Definition 2):
// the normalized adjacency of the induced affinity subgraph with
// self-loops, and the N x 2 feature matrix [r_s, d_s] where r_s is the
// primary-resource demand of one container and d_s its replica count.
// Both features are log-compressed: replica counts follow a power law
// (Assumption 4.1), so raw values at production scale would dwarf the
// training range and break generalization from the T1–T4 clusters to
// the larger evaluation clusters.
func FeatureGraph(sp *cluster.Subproblem) (*Mat, *Mat) {
	sub, orig := sp.P.Affinity.Subgraph(sp.Services)
	n := len(sp.Services)
	aHat := NormalizedAdjacency(sub)
	x := NewMat(n, 2)
	for i := 0; i < n; i++ {
		svc := sp.P.Services[orig[i]]
		x.Set(i, 0, math.Log1p(svc.Request[0])/3.0)
		x.Set(i, 1, math.Log1p(float64(svc.Replicas))/5.0)
	}
	return aHat, x
}

// NormalizedAdjacency returns Â = D^-1/2 (A + I) D^-1/2 over the
// weighted adjacency of g.
func NormalizedAdjacency(g *graph.Graph) *Mat {
	n := g.N()
	a := NewMat(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1) // self-loop
	}
	for _, e := range g.Edges() {
		a.Set(e.U, e.V, e.Weight)
		a.Set(e.V, e.U, e.Weight)
	}
	deg := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			deg[i] += a.At(i, j)
		}
	}
	for i := 0; i < n; i++ {
		di := 1 / math.Sqrt(math.Max(deg[i], 1e-12))
		for j := 0; j < n; j++ {
			if v := a.At(i, j); v != 0 {
				dj := 1 / math.Sqrt(math.Max(deg[j], 1e-12))
				a.Set(i, j, v*di*dj)
			}
		}
	}
	return a
}

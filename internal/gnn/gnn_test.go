package gnn

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/cloudsched/rasa/internal/graph"
)

func TestMatMul(t *testing.T) {
	a := &Mat{R: 2, C: 3, V: []float64{1, 2, 3, 4, 5, 6}}
	b := &Mat{R: 3, C: 2, V: []float64{7, 8, 9, 10, 11, 12}}
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i := range want {
		if math.Abs(c.V[i]-want[i]) > 1e-12 {
			t.Fatalf("matmul = %v, want %v", c.V, want)
		}
	}
}

func TestMatMulT(t *testing.T) {
	a := &Mat{R: 2, C: 2, V: []float64{1, 2, 3, 4}}
	b := &Mat{R: 2, C: 1, V: []float64{5, 6}}
	c := MatMulT(a, b) // aᵀ b = [[1,3],[2,4]]·[5,6] = [23, 34]
	if math.Abs(c.V[0]-23) > 1e-12 || math.Abs(c.V[1]-34) > 1e-12 {
		t.Fatalf("matmulT = %v", c.V)
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	MatMul(NewMat(2, 3), NewMat(2, 3))
}

func TestSoftmax(t *testing.T) {
	p := Softmax([]float64{1, 1})
	if math.Abs(p[0]-0.5) > 1e-12 || math.Abs(p[1]-0.5) > 1e-12 {
		t.Fatalf("softmax = %v", p)
	}
	// Large values must not overflow.
	p = Softmax([]float64{1000, 1001})
	if math.IsNaN(p[0]) || p[1] < p[0] {
		t.Fatalf("softmax overflow: %v", p)
	}
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("softmax sum = %v", sum)
	}
}

func TestMeanRows(t *testing.T) {
	m := &Mat{R: 2, C: 2, V: []float64{1, 2, 3, 4}}
	r := MeanRows(m)
	if math.Abs(r[0]-2) > 1e-12 || math.Abs(r[1]-3) > 1e-12 {
		t.Fatalf("mean rows = %v", r)
	}
	if r := MeanRows(NewMat(0, 3)); len(r) != 3 {
		t.Fatalf("empty mean rows = %v", r)
	}
}

func TestNormalizedAdjacency(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 1)
	a := NormalizedAdjacency(g)
	// Symmetric with self-loops: deg = 2 for both, Â = [[.5,.5],[.5,.5]].
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(a.At(i, j)-0.5) > 1e-12 {
				t.Fatalf("Â = %v", a.V)
			}
		}
	}
}

// Property: normalized adjacency is symmetric with non-negative entries
// for any random graph.
func TestPropertyNormalizedAdjacencySymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		g := graph.New(n)
		for i := 0; i < 2*n; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), rng.Float64()+0.01)
		}
		a := NormalizedAdjacency(g)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if a.At(i, j) < 0 {
					return false
				}
				if math.Abs(a.At(i, j)-a.At(j, i)) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// randomSample builds a random feature graph sample.
func randomSample(rng *rand.Rand, label int) Sample {
	n := 3 + rng.Intn(5)
	g := graph.New(n)
	for i := 0; i < 2*n; i++ {
		g.AddEdge(rng.Intn(n), rng.Intn(n), rng.Float64()+0.1)
	}
	x := NewMat(n, 2)
	for i := 0; i < n; i++ {
		x.Set(i, 0, rng.Float64())
		x.Set(i, 1, rng.Float64())
	}
	return Sample{AHat: NormalizedAdjacency(g), X: x, Label: label}
}

// TestGCNGradientCheck verifies the hand-derived backprop against
// central finite differences on every parameter tensor.
func TestGCNGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := NewGCN(2, 5, 2, rng)
	s := randomSample(rng, 1)

	c := g.forward(s.AHat, s.X)
	gr := g.backward(s, c)

	loss := func() float64 {
		c := g.forward(s.AHat, s.X)
		return -math.Log(math.Max(c.probs[s.Label], 1e-12))
	}
	const h = 1e-5
	check := func(name string, params []float64, grads []float64) {
		for i := range params {
			orig := params[i]
			params[i] = orig + h
			up := loss()
			params[i] = orig - h
			down := loss()
			params[i] = orig
			numeric := (up - down) / (2 * h)
			if math.Abs(numeric-grads[i]) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", name, i, grads[i], numeric)
			}
		}
	}
	check("W0", g.W0.V, gr.w0.V)
	check("W1", g.W1.V, gr.w1.V)
	check("WOut", g.WOut.V, gr.wOut.V)
	check("B0", g.B0, gr.b0)
	check("B1", g.B1, gr.b1)
	check("B", g.B, gr.b)
}

// TestGCNLearnsSeparableTask: label depends on mean feature magnitude —
// trivially learnable.
func TestGCNLearnsSeparableTask(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var samples []Sample
	for i := 0; i < 60; i++ {
		s := randomSample(rng, 0)
		label := 0
		if rng.Float64() < 0.5 {
			label = 1
			for j := range s.X.V {
				s.X.V[j] += 2 // shift class-1 features
			}
		}
		s.Label = label
		samples = append(samples, s)
	}
	g := NewGCN(2, 8, 2, rng)
	g.Fit(samples, TrainConfig{Epochs: 40, LR: 0.02, Seed: 2})
	if acc := g.Accuracy(samples); acc < 0.95 {
		t.Fatalf("train accuracy = %v, want >= 0.95", acc)
	}
}

// TestGCNSeesTopologyMLPCannot: classes share identical feature
// matrices and differ only in graph structure (star vs chain). The GCN
// must separate them; the mean-pooled MLP cannot beat chance by design.
func TestGCNSeesTopologyMLPCannot(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	makeTopo := func(star bool) Sample {
		n := 8
		g := graph.New(n)
		if star {
			for i := 1; i < n; i++ {
				g.AddEdge(0, i, 1)
			}
		} else {
			for i := 0; i < n-1; i++ {
				g.AddEdge(i, i+1, 1)
			}
		}
		x := NewMat(n, 2)
		for i := 0; i < n; i++ {
			x.Set(i, 0, 0.5)
			x.Set(i, 1, 0.5)
		}
		label := 0
		if star {
			label = 1
		}
		return Sample{AHat: NormalizedAdjacency(g), X: x, Label: label}
	}
	var samples []Sample
	for i := 0; i < 40; i++ {
		samples = append(samples, makeTopo(i%2 == 0))
	}
	// The topology signal is subtle (readouts differ by a few percent),
	// so the GCN needs a couple hundred epochs on this synthetic task.
	gcn := NewGCN(2, 8, 2, rng)
	gcn.Fit(samples, TrainConfig{Epochs: 200, LR: 0.02, Seed: 4})
	if acc := gcn.Accuracy(samples); acc < 0.95 {
		t.Fatalf("GCN accuracy on topology task = %v, want >= 0.95", acc)
	}
	mlp := NewMLP(2, 8, 2, rng)
	mlp.Fit(samples, TrainConfig{Epochs: 200, LR: 0.02, Seed: 4})
	if acc := mlp.Accuracy(samples); acc > 0.65 {
		t.Fatalf("MLP accuracy on topology task = %v; identical pooled features should cap it near 0.5", acc)
	}
}

func TestMLPLearnsPooledTask(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var samples []Sample
	for i := 0; i < 60; i++ {
		s := randomSample(rng, 0)
		if rng.Float64() < 0.5 {
			s.Label = 1
			for j := range s.X.V {
				s.X.V[j] += 1.5
			}
		}
		samples = append(samples, s)
	}
	m := NewMLP(2, 8, 2, rng)
	m.Fit(samples, TrainConfig{Epochs: 50, LR: 0.02, Seed: 6})
	if acc := m.Accuracy(samples); acc < 0.9 {
		t.Fatalf("MLP accuracy = %v, want >= 0.9", acc)
	}
}

func TestGCNJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := NewGCN(2, 4, 2, rng)
	s := randomSample(rng, 0)
	want := g.Predict(s.AHat, s.X)

	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var g2 GCN
	if err := json.Unmarshal(data, &g2); err != nil {
		t.Fatal(err)
	}
	got := g2.Predict(s.AHat, s.X)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("round trip prediction %v vs %v", got, want)
		}
	}
}

func TestGCNJSONRejectsCorrupt(t *testing.T) {
	var g GCN
	if err := json.Unmarshal([]byte(`{"InDim":2,"Hidden":4,"Classes":2,"W0":[1,2]}`), &g); err == nil {
		t.Fatal("expected corrupt-shape error")
	}
}

// Property: predictions are valid probability distributions.
func TestPropertyPredictionsAreDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := NewGCN(2, 6, 2, rng)
	f := func(seed int64) bool {
		s := randomSample(rand.New(rand.NewSource(seed)), 0)
		p := g.Predict(s.AHat, s.X)
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGCNForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := NewGCN(2, 16, 2, rng)
	s := randomSample(rng, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Predict(s.AHat, s.X)
	}
}

func BenchmarkGCNFitEpoch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var samples []Sample
	for i := 0; i < 32; i++ {
		samples = append(samples, randomSample(rng, i%2))
	}
	g := NewGCN(2, 16, 2, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Fit(samples, TrainConfig{Epochs: 1, LR: 0.01, Seed: int64(i)})
	}
}

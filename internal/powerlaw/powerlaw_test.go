package powerlaw

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitPowerLawExact(t *testing.T) {
	ys := make([]float64, 40)
	for i := range ys {
		ys[i] = 3.5 / math.Pow(float64(i+1), 1.7)
	}
	fit, err := FitPowerLaw(ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Param-1.7) > 1e-9 || math.Abs(fit.C-3.5) > 1e-9 {
		t.Fatalf("fit = %+v, want beta=1.7 C=3.5", fit)
	}
	if fit.R2 < 0.999999 {
		t.Fatalf("R2 = %v on exact data", fit.R2)
	}
}

func TestFitExponentialExact(t *testing.T) {
	ys := make([]float64, 40)
	for i := range ys {
		ys[i] = 2.0 * math.Exp(-0.3*float64(i+1))
	}
	fit, err := FitExponential(ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Param-0.3) > 1e-9 || math.Abs(fit.C-2.0) > 1e-9 {
		t.Fatalf("fit = %+v, want lambda=0.3 C=2.0", fit)
	}
}

func TestCompareSelectsPowerLawOnPowerData(t *testing.T) {
	ys := make([]float64, 40)
	for i := range ys {
		ys[i] = 1.0 / math.Pow(float64(i+1), 1.5)
	}
	best, other, err := Compare(ys)
	if err != nil {
		t.Fatal(err)
	}
	if best.Model != "power-law" {
		t.Fatalf("best = %v (R2 %v vs %v)", best.Model, best.R2, other.R2)
	}
}

func TestCompareSelectsExponentialOnExpData(t *testing.T) {
	ys := make([]float64, 40)
	for i := range ys {
		ys[i] = math.Exp(-0.5 * float64(i+1))
	}
	best, _, err := Compare(ys)
	if err != nil {
		t.Fatal(err)
	}
	if best.Model != "exponential" {
		t.Fatalf("best = %v", best.Model)
	}
}

func TestEval(t *testing.T) {
	f := Fit{Model: "power-law", C: 2, Param: 1}
	if math.Abs(f.Eval(2)-1) > 1e-12 {
		t.Fatalf("Eval = %v", f.Eval(2))
	}
	f = Fit{Model: "exponential", C: 1, Param: 0}
	if math.Abs(f.Eval(5)-1) > 1e-12 {
		t.Fatalf("Eval = %v", f.Eval(5))
	}
	if !math.IsNaN(Fit{Model: "bogus"}.Eval(1)) {
		t.Fatal("unknown model should eval NaN")
	}
}

func TestTooFewPoints(t *testing.T) {
	if _, err := FitPowerLaw([]float64{1, 2}); err == nil {
		t.Fatal("expected error")
	}
	// Non-positive values are skipped and may starve the fit.
	if _, err := FitPowerLaw([]float64{1, 0, 0, 0}); err == nil {
		t.Fatal("expected error after skipping zeros")
	}
}

func TestZerosSkipped(t *testing.T) {
	ys := []float64{4, 0, 4.0 / 9, 4.0 / 16, 0, 4.0 / 36}
	// Values follow 4/rank^2 where present.
	fit, err := FitPowerLaw(ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Param-2) > 1e-9 {
		t.Fatalf("fit = %+v", fit)
	}
}

// Property: noisy power-law data fits power law better than exponential
// in the vast majority of draws, and R2 stays in [0, 1].
func TestPropertyNoisyPowerLaw(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ys := make([]float64, 60)
		beta := 1.2 + rng.Float64()
		for i := range ys {
			noise := math.Exp(rng.NormFloat64() * 0.1)
			ys[i] = noise / math.Pow(float64(i+1), beta)
		}
		pl, err := FitPowerLaw(ys)
		if err != nil {
			return false
		}
		if pl.R2 < 0 || pl.R2 > 1 {
			return false
		}
		return math.Abs(pl.Param-beta) < 0.2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

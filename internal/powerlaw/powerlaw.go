// Package powerlaw fits power-law and exponential models to ranked
// total-affinity data, reproducing the Fig. 5 analysis that justifies
// Assumption 4.1 (the skewness the master-affinity partitioning stage
// exploits).
package powerlaw

import (
	"errors"
	"math"
)

// Fit is one fitted model y = C * f(rank).
type Fit struct {
	Model string  // "power-law" or "exponential"
	C     float64 // scale
	Param float64 // beta (power law) or lambda (exponential)
	R2    float64 // coefficient of determination in the fitted log space
}

// ErrTooFewPoints reports insufficient data for a fit.
var ErrTooFewPoints = errors.New("powerlaw: need at least 3 positive data points")

// FitPowerLaw fits y = C / rank^beta by least squares in log-log space.
// The input is ranked data: ys[i] is the value at rank i+1.
func FitPowerLaw(ys []float64) (Fit, error) {
	xs, ls, err := logRanks(ys, true)
	if err != nil {
		return Fit{}, err
	}
	slope, intercept, r2 := linreg(xs, ls)
	return Fit{Model: "power-law", C: math.Exp(intercept), Param: -slope, R2: r2}, nil
}

// FitExponential fits y = C * exp(-lambda * rank) by least squares in
// log-linear space.
func FitExponential(ys []float64) (Fit, error) {
	xs, ls, err := logRanks(ys, false)
	if err != nil {
		return Fit{}, err
	}
	slope, intercept, r2 := linreg(xs, ls)
	return Fit{Model: "exponential", C: math.Exp(intercept), Param: -slope, R2: r2}, nil
}

// Compare fits both models and returns them with the better one first
// (by R2).
func Compare(ys []float64) (best, other Fit, err error) {
	pl, err := FitPowerLaw(ys)
	if err != nil {
		return Fit{}, Fit{}, err
	}
	ex, err := FitExponential(ys)
	if err != nil {
		return Fit{}, Fit{}, err
	}
	if pl.R2 >= ex.R2 {
		return pl, ex, nil
	}
	return ex, pl, nil
}

// Eval returns the fitted value at the given rank (1-based).
func (f Fit) Eval(rank int) float64 {
	switch f.Model {
	case "power-law":
		return f.C / math.Pow(float64(rank), f.Param)
	case "exponential":
		return f.C * math.Exp(-f.Param*float64(rank))
	}
	return math.NaN()
}

// logRanks builds the regression inputs: x = log(rank) for power law or
// rank for exponential, y = log(value). Non-positive values are skipped.
func logRanks(ys []float64, logX bool) (xs, ls []float64, err error) {
	for i, y := range ys {
		if y <= 0 {
			continue
		}
		rank := float64(i + 1)
		if logX {
			xs = append(xs, math.Log(rank))
		} else {
			xs = append(xs, rank)
		}
		ls = append(ls, math.Log(y))
	}
	if len(xs) < 3 {
		return nil, nil, ErrTooFewPoints
	}
	return xs, ls, nil
}

// linreg is ordinary least squares returning slope, intercept and R2.
func linreg(xs, ys []float64) (slope, intercept, r2 float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n, 0
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range xs {
		pred := slope*xs[i] + intercept
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	if ssTot == 0 {
		return slope, intercept, 1
	}
	return slope, intercept, 1 - ssRes/ssTot
}

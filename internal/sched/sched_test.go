package sched_test

import (
	"context"
	"testing"
	"time"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/graph"
	. "github.com/cloudsched/rasa/internal/sched"
	"github.com/cloudsched/rasa/internal/workload"
)

func testCluster(t *testing.T, seed int64) *workload.Cluster {
	t.Helper()
	c, err := workload.Generate(workload.Preset{
		Name: "t", Services: 50, Containers: 260, Machines: 12,
		Beta: 1.6, AffinityFraction: 0.6, Zones: 1, Utilization: 0.55, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestOriginalSchedulesEverything(t *testing.T) {
	c := testCluster(t, 1)
	a, err := Original(c.Problem, 9)
	if err != nil {
		t.Fatal(err)
	}
	if vs := a.Check(c.Problem, true); len(vs) != 0 {
		t.Fatalf("violations: %v", vs[0])
	}
}

func TestK8sPlusSchedulesEverythingAndBeatsOriginal(t *testing.T) {
	c := testCluster(t, 2)
	orig, err := Original(c.Problem, 9)
	if err != nil {
		t.Fatal(err)
	}
	kp, err := K8sPlus(c.Problem, 9)
	if err != nil {
		t.Fatal(err)
	}
	if vs := kp.Check(c.Problem, true); len(vs) != 0 {
		t.Fatalf("violations: %v", vs[0])
	}
	go1 := orig.GainedAffinity(c.Problem)
	go2 := kp.GainedAffinity(c.Problem)
	if go2 <= go1 {
		t.Fatalf("K8s+ gained %v should beat ORIGINAL %v", go2, go1)
	}
}

func TestCompleteFillsShortfall(t *testing.T) {
	c := testCluster(t, 3)
	empty := cluster.NewAssignment(c.Problem.N(), c.Problem.M())
	full := Complete(c.Problem, empty)
	if vs := full.Check(c.Problem, true); len(vs) != 0 {
		t.Fatalf("violations: %v", vs[0])
	}
	// Complete must not disturb existing placements.
	partial := cluster.NewAssignment(c.Problem.N(), c.Problem.M())
	partial.Set(0, 0, 1)
	filled := Complete(c.Problem, partial)
	if filled.Get(0, 0) < 1 {
		t.Fatal("existing placement removed")
	}
}

func TestPOPFeasibleAndBeatsOriginal(t *testing.T) {
	c := testCluster(t, 4)
	a, err := POP(context.Background(), c.Problem, c.Original, Options{Deadline: 2 * time.Second, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if vs := a.Check(c.Problem, true); len(vs) != 0 {
		t.Fatalf("violations: %v", vs[0])
	}
	if got, orig := a.GainedAffinity(c.Problem), c.Original.GainedAffinity(c.Problem); got <= orig {
		t.Fatalf("POP gained %v should beat ORIGINAL %v", got, orig)
	}
}

func TestAPPLSCI19Feasible(t *testing.T) {
	c := testCluster(t, 5)
	a, err := APPLSCI19(c.Problem, c.Original, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if vs := a.Check(c.Problem, true); len(vs) != 0 {
		t.Fatalf("violations: %v", vs[0])
	}
	if got, orig := a.GainedAffinity(c.Problem), c.Original.GainedAffinity(c.Problem); got <= orig {
		t.Fatalf("APPLSCI19 gained %v should beat ORIGINAL %v", got, orig)
	}
}

func TestAPPLSCI19HurtByHeterogeneousMachines(t *testing.T) {
	// Hand-built cluster: two big services with strong affinity and very
	// heterogeneous machines. The single-machine-size assumption wastes
	// the large machines, so K8s+ (which sees real capacities) wins.
	g := graph.New(4)
	g.AddEdge(0, 1, 0.6)
	g.AddEdge(2, 3, 0.4)
	p := &cluster.Problem{
		ResourceNames: []string{"cpu"},
		Affinity:      g,
		Services: []cluster.Service{
			{Name: "a", Replicas: 6, Request: cluster.Resources{1}},
			{Name: "b", Replicas: 6, Request: cluster.Resources{1}},
			{Name: "c", Replicas: 4, Request: cluster.Resources{1}},
			{Name: "d", Replicas: 4, Request: cluster.Resources{1}},
		},
		Machines: []cluster.Machine{
			{Name: "tiny", Capacity: cluster.Resources{2}},
			{Name: "big0", Capacity: cluster.Resources{12}},
			{Name: "big1", Capacity: cluster.Resources{12}},
		},
	}
	ap, err := APPLSCI19(p, nil, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	kp, err := K8sPlus(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ap.GainedAffinity(p) > kp.GainedAffinity(p) {
		t.Fatalf("APPLSCI19 %v should not beat K8s+ %v here", ap.GainedAffinity(p), kp.GainedAffinity(p))
	}
}

func TestOriginalDeterministic(t *testing.T) {
	c := testCluster(t, 6)
	a1, _ := Original(c.Problem, 42)
	a2, _ := Original(c.Problem, 42)
	if a1.GainedAffinity(c.Problem) != a2.GainedAffinity(c.Problem) {
		t.Fatal("ORIGINAL non-deterministic for fixed seed")
	}
}

func BenchmarkOriginal(b *testing.B) {
	c, err := workload.Generate(workload.Preset{
		Name: "b", Services: 100, Containers: 600, Machines: 25,
		Beta: 1.6, AffinityFraction: 0.6, Zones: 1, Utilization: 0.55, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Original(c.Problem, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkK8sPlus(b *testing.B) {
	c, err := workload.Generate(workload.Preset{
		Name: "b", Services: 100, Containers: 600, Machines: 25,
		Beta: 1.6, AffinityFraction: 0.6, Zones: 1, Utilization: 0.55, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := K8sPlus(c.Problem, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// Package sched implements the baseline scheduling algorithms the paper
// evaluates against in Section V (Fig. 9/10):
//
//   - ORIGINAL — the pre-RASA production scheduler: online first-fit with
//     the Kubernetes filter/score process and no affinity awareness.
//   - K8s+ — the online Kubernetes-style scheduler with an
//     affinity-aware scoring function ([14] in the paper).
//   - POP — random partitioning of services and machines into identical
//     subproblems, each solved with the MIP solver ([23]).
//   - APPLSCI19 — min-weight graph partitioning followed by heuristic
//     packing that assumes a single machine size ([46]).
//
// It also provides Complete, the "default scheduler" used to place
// containers that a solver-based schedule left unassigned.
package sched

import (
	"context"
	"math/rand"
	"sort"
	"time"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/partition"
	"github.com/cloudsched/rasa/internal/pool"
)

// state tracks incremental placement bookkeeping for online schedulers.
type state struct {
	p        *cluster.Problem
	a        *cluster.Assignment
	used     []cluster.Resources
	antiUsed [][]int // [rule][machine]
	memberOf [][]int // [service] -> rule indices
}

func newState(p *cluster.Problem, a *cluster.Assignment) *state {
	st := &state{p: p, a: a}
	st.used = a.UsedResources(p)
	st.antiUsed = make([][]int, len(p.AntiAffinity))
	st.memberOf = make([][]int, p.N())
	for k, rule := range p.AntiAffinity {
		st.antiUsed[k] = make([]int, p.M())
		for _, s := range rule.Services {
			st.memberOf[s] = append(st.memberOf[s], k)
		}
	}
	a.EachPlacement(func(s, m, count int) {
		for _, k := range st.memberOf[s] {
			st.antiUsed[k][m] += count
		}
	})
	return st
}

// feasible reports whether one more container of s fits on machine m
// (the Kubernetes "filter" step).
func (st *state) feasible(s, m int) bool {
	if !st.p.CanHost(s, m) {
		return false
	}
	if !st.used[m].Add(st.p.Services[s].Request).Fits(st.p.Machines[m].Capacity) {
		return false
	}
	for _, k := range st.memberOf[s] {
		if st.antiUsed[k][m]+1 > st.p.AntiAffinity[k].MaxPerHost {
			return false
		}
	}
	return true
}

// place commits one container of s to machine m.
func (st *state) place(s, m int) {
	st.a.Add(s, m, 1)
	st.used[m] = st.used[m].Add(st.p.Services[s].Request)
	for _, k := range st.memberOf[s] {
		st.antiUsed[k][m]++
	}
}

// leastAllocatedScore is the Kubernetes default balance score: the
// average remaining capacity fraction after placing the container.
func (st *state) leastAllocatedScore(s, m int) float64 {
	var score float64
	req := st.p.Services[s].Request
	cap := st.p.Machines[m].Capacity
	for r := range cap {
		if cap[r] <= 0 {
			continue
		}
		free := (cap[r] - st.used[m][r] - req[r]) / cap[r]
		score += free
	}
	return score / float64(len(cap))
}

// affinityGain is the marginal gained affinity of adding one container
// of s to machine m.
func (st *state) affinityGain(s, m int) float64 {
	ds := float64(st.p.Services[s].Replicas)
	xs := float64(st.a.Get(s, m))
	var gain float64
	for _, h := range st.p.Affinity.Neighbors(s) {
		cnt := st.a.Get(h.To, m)
		if cnt == 0 {
			continue
		}
		dn := float64(st.p.Services[h.To].Replicas)
		before := minF(xs/ds, float64(cnt)/dn)
		after := minF((xs+1)/ds, float64(cnt)/dn)
		gain += h.Weight * (after - before)
	}
	return gain
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Original computes the pre-RASA production schedule: containers arrive
// in randomized order (as they do over the lifetime of a real cluster)
// and are placed by filter + least-allocated score, ties broken first-fit
// by machine index. Affinity plays no role, so collocation is
// incidental — the behaviour the WITHOUT RASA curves of Section V-F show.
func Original(p *cluster.Problem, seed int64) (*cluster.Assignment, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	st := newState(p, cluster.NewAssignment(p.N(), p.M()))
	rng := rand.New(rand.NewSource(seed))
	var arrivals []int
	for s := range p.Services {
		for c := 0; c < p.Services[s].Replicas; c++ {
			arrivals = append(arrivals, s)
		}
	}
	rng.Shuffle(len(arrivals), func(i, j int) { arrivals[i], arrivals[j] = arrivals[j], arrivals[i] })
	for _, s := range arrivals {
		best, bestScore := -1, -1.0
		for m := 0; m < p.M(); m++ {
			if !st.feasible(s, m) {
				continue
			}
			if score := st.leastAllocatedScore(s, m); score > bestScore {
				best, bestScore = m, score
			}
		}
		if best >= 0 {
			st.place(s, best)
		}
	}
	return st.a, nil
}

// K8sPlus simulates the Kubernetes filter-and-score pipeline with an
// affinity-aware scoring function ([14] in the paper). Like the real
// scheduler it is online: containers arrive in deployment order (a
// seeded shuffle, exactly as for ORIGINAL) and each is placed greedily
// on the feasible machine with the best combined score — the normalized
// affinity gain weighted against the default least-allocated balance
// score, mirroring how Kubernetes sums weighted plugin scores. Being
// online and balance-pressured is what limits it against the global
// optimizer (Section V-D: "online heuristic algorithms with limited
// ability to optimize schedules").
func K8sPlus(p *cluster.Problem, seed int64) (*cluster.Assignment, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	st := newState(p, cluster.NewAssignment(p.N(), p.M()))
	rng := rand.New(rand.NewSource(seed))
	var arrivals []int
	for s := range p.Services {
		for c := 0; c < p.Services[s].Replicas; c++ {
			arrivals = append(arrivals, s)
		}
	}
	rng.Shuffle(len(arrivals), func(i, j int) { arrivals[i], arrivals[j] = arrivals[j], arrivals[i] })
	ts := p.Affinity.TotalAffinities()
	const (
		affinityWeight = 2.0
		balanceWeight  = 1.0
	)
	for _, s := range arrivals {
		best, bestScore := -1, 0.0
		for m := 0; m < p.M(); m++ {
			if !st.feasible(s, m) {
				continue
			}
			// Kubernetes inter-pod affinity is presence-based: the node
			// scores by the (weighted) affine services already present,
			// with no awareness of the ratio-balanced min(x/d) objective
			// the global optimizer maximizes — which is precisely why an
			// online filter/score scheduler leaves gained affinity on
			// the table (Section V-D).
			affinityScore := 0.0
			if ts[s] > 0 {
				var present float64
				for _, h := range p.Affinity.Neighbors(s) {
					if st.a.Get(h.To, m) > 0 {
						present += h.Weight
					}
				}
				affinityScore = present / ts[s]
			}
			score := affinityWeight*affinityScore + balanceWeight*st.leastAllocatedScore(s, m)
			if best < 0 || score > bestScore {
				best, bestScore = m, score
			}
		}
		if best >= 0 {
			st.place(s, best)
		}
	}
	return st.a, nil
}

// Complete places any unplaced replicas of every service with the
// default filter/score scheduler on top of an existing assignment — the
// paper's fallback for containers a subproblem failed to deploy.
// Services with the fewest compatible machines are placed first so that
// zone-restricted services are not crowded out of their only machines.
func Complete(p *cluster.Problem, a *cluster.Assignment) *cluster.Assignment {
	st := newState(p, a.Clone())
	order := make([]int, p.N())
	for i := range order {
		order[i] = i
	}
	if p.Schedulable != nil {
		compat := make([]int, p.N())
		for s := range compat {
			if p.Schedulable[s] == nil {
				compat[s] = p.M()
				continue
			}
			for m := 0; m < p.M(); m++ {
				if p.Schedulable[s].Get(m) {
					compat[s]++
				}
			}
		}
		sort.SliceStable(order, func(i, j int) bool { return compat[order[i]] < compat[order[j]] })
	}
	for _, s := range order {
		missing := p.Services[s].Replicas - st.a.Placed(s)
		for c := 0; c < missing; c++ {
			best, bestScore := -1, -1.0
			for m := 0; m < p.M(); m++ {
				if !st.feasible(s, m) {
					continue
				}
				if score := st.leastAllocatedScore(s, m); score > bestScore {
					best, bestScore = m, score
				}
			}
			if best < 0 {
				break // genuinely unplaceable; leave to SLA reporting
			}
			st.place(s, best)
		}
	}
	return st.a
}

// POP implements the baseline of [23]: randomly split services and
// machines into k identical subproblems, solve each with the MIP solver
// under the shared deadline, and merge. Random partitioning is cheap but
// severs affinity edges indiscriminately — the weakness Fig. 9
// quantifies.
func POP(ctx context.Context, p *cluster.Problem, current *cluster.Assignment, opts Options) (*cluster.Assignment, error) {
	res, err := partition.Random(ctx, p, current, partition.Options{
		TargetSize: opts.targetSize(),
		Seed:       opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	results := pool.SolveAll(ctx, res.Subproblems, func(int) pool.Algorithm { return pool.MIP }, opts.Deadline, opts.parallelism())
	return merge(p, current, res, results), nil
}

// APPLSCI19 implements the extended baseline of [46]: min-weight graph
// partitioning (the same multilevel partitioner as the KaHIP stand-in)
// followed by heuristic packing that assumes one machine size. On
// heterogeneous machines the packing under-uses large machines — the
// failure mode the paper observes.
func APPLSCI19(p *cluster.Problem, current *cluster.Assignment, opts Options) (*cluster.Assignment, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	withAff, _ := affinityServices(p)
	sub, orig := p.Affinity.Subgraph(withAff)
	k := (len(withAff) + opts.targetSize() - 1) / opts.targetSize()
	if k < 1 {
		k = 1
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	part := partition.KWayCut(sub, k, 0.10, rng)
	groups := make([][]int, k)
	for v, pt := range part {
		groups[pt] = append(groups[pt], orig[v])
	}
	// Sort groups by internal affinity, heaviest first.
	type gw struct {
		services []int
		weight   float64
	}
	var gws []gw
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		in := make(map[int]bool)
		for _, s := range g {
			in[s] = true
		}
		var w float64
		for _, e := range p.Affinity.Edges() {
			if in[e.U] && in[e.V] {
				w += e.Weight
			}
		}
		gws = append(gws, gw{services: g, weight: w})
	}
	sort.Slice(gws, func(i, j int) bool { return gws[i].weight > gws[j].weight })

	// Heuristic packing with a single assumed machine size: the minimum
	// machine capacity (the original algorithm cannot model multiple
	// sizes). A group is packed onto consecutive virtual bins; bins map
	// to real machines in index order and packing fails whenever the
	// assumed size misjudges the real machine.
	assumed := p.Machines[0].Capacity.Clone()
	for _, m := range p.Machines[1:] {
		for r := range assumed {
			if m.Capacity[r] < assumed[r] {
				assumed[r] = m.Capacity[r]
			}
		}
	}
	a := cluster.NewAssignment(p.N(), p.M())
	st := newState(p, a)
	nextMachine := 0
	for _, g := range gws {
		// Pack this group's containers together on consecutive machines,
		// budgeting by the assumed (minimum) size.
		var binUsed cluster.Resources = make(cluster.Resources, len(p.ResourceNames))
		for _, s := range g.services {
			for c := 0; c < p.Services[s].Replicas; c++ {
				if nextMachine >= p.M() {
					break
				}
				req := p.Services[s].Request
				if !binUsed.Add(req).Fits(assumed) {
					nextMachine++
					binUsed = make(cluster.Resources, len(p.ResourceNames))
					if nextMachine >= p.M() {
						break
					}
				}
				if st.feasible(s, nextMachine) {
					st.place(s, nextMachine)
					binUsed = binUsed.Add(req)
				}
				// Infeasible real placements are simply skipped — the
				// container is left for the default scheduler, exactly
				// the frequent packing failure the paper reports.
			}
		}
		nextMachine++
	}
	return Complete(p, st.a), nil
}

// Options tune the solver-based baselines.
type Options struct {
	Deadline    time.Duration // total optimization budget
	TargetSize  int           // services per subproblem; default 15
	Seed        int64
	Parallelism int // concurrent subproblem solves; default GOMAXPROCS
}

func (o Options) targetSize() int {
	if o.TargetSize <= 0 {
		return 15
	}
	return o.TargetSize
}

func (o Options) parallelism() int { return o.Parallelism }

// affinityServices mirrors partition.affinityServices (unexported there).
func affinityServices(p *cluster.Problem) (withAffinity, without []int) {
	ts := p.Affinity.TotalAffinities()
	for s := 0; s < p.N(); s++ {
		if ts[s] > 0 {
			withAffinity = append(withAffinity, s)
		} else {
			without = append(without, s)
		}
	}
	return
}

// merge overlays subproblem solutions on the current assignment: crucial
// services move to their solved placements, trivial services stay, and
// any SLA shortfall is completed by the default scheduler.
func merge(p *cluster.Problem, current *cluster.Assignment, pres *partition.Result, results []pool.Result) *cluster.Assignment {
	out := cluster.NewAssignment(p.N(), p.M())
	crucial := make([]bool, p.N())
	for _, sp := range pres.Subproblems {
		for _, s := range sp.Services {
			crucial[s] = true
		}
	}
	if current != nil {
		current.EachPlacement(func(s, m, count int) {
			if !crucial[s] {
				out.Add(s, m, count)
			}
		})
	}
	for _, r := range results {
		for _, pl := range r.Placements {
			out.Add(pl.Service, pl.Machine, pl.Count)
		}
	}
	return Complete(p, out)
}

// Merge is the exported form used by the core pipeline.
func Merge(p *cluster.Problem, current *cluster.Assignment, pres *partition.Result, results []pool.Result) *cluster.Assignment {
	return merge(p, current, pres, results)
}

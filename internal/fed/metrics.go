package fed

import (
	"strconv"
	"time"

	"github.com/cloudsched/rasa/internal/obs"
)

// metrics instruments the shard pool. A nil *metrics is valid and drops
// every observation, so the pool works without a registry.
type metrics struct {
	routed     *obs.CounterVec // rasa_fed_events_routed_total{shard}
	reopts     *obs.CounterVec // rasa_fed_reoptimize_total{shard,mode}
	mergeSecs  *obs.Histogram  // rasa_fed_merge_seconds
	rejections *obs.Counter    // rasa_fed_floor_rejections_total
	shards     *obs.Gauge      // rasa_fed_shards
	blocks     *obs.Gauge      // rasa_fed_blocks
	mapVersion *obs.Gauge      // rasa_fed_map_version
}

func newMetrics(reg *obs.Registry) *metrics {
	if reg == nil {
		return nil
	}
	return &metrics{
		routed: reg.CounterVec("rasa_fed_events_routed_total",
			"Churn events routed to shard workers, by owning shard.", "shard"),
		reopts: reg.CounterVec("rasa_fed_reoptimize_total",
			"Per-block re-optimization passes, by owning shard and path taken.", "shard", "mode"),
		mergeSecs: reg.Histogram("rasa_fed_merge_seconds",
			"Wall time of the scatter-gather merge step (plan recombination plus the global SLA-floor check).",
			nil),
		rejections: reg.Counter("rasa_fed_floor_rejections_total",
			"Per-block plans rejected by the global SLA-floor check."),
		shards: reg.Gauge("rasa_fed_shards",
			"Shard workers in the pool."),
		blocks: reg.Gauge("rasa_fed_blocks",
			"Compatibility blocks owned by the pool."),
		mapVersion: reg.Gauge("rasa_fed_map_version",
			"Version of the block-to-shard assignment map."),
	}
}

func shardLabel(s int) string { return strconv.Itoa(s) }

func (m *metrics) event(shard int) {
	if m == nil {
		return
	}
	m.routed.With(shardLabel(shard)).Inc()
}

func (m *metrics) reoptimize(shard int, mode string) {
	if m == nil {
		return
	}
	m.reopts.With(shardLabel(shard), mode).Inc()
}

func (m *metrics) merge(d time.Duration) {
	if m == nil {
		return
	}
	m.mergeSecs.Observe(d.Seconds())
}

func (m *metrics) rejection(n int) {
	if m == nil {
		return
	}
	m.rejections.Add(float64(n))
}

func (m *metrics) topology(shards, blocks, version int) {
	if m == nil {
		return
	}
	m.shards.Set(float64(shards))
	m.blocks.Set(float64(blocks))
	m.mapVersion.Set(float64(version))
}

package fed

import (
	"fmt"

	"github.com/cloudsched/rasa/internal/incr"
	"github.com/cloudsched/rasa/internal/lifetime"
)

// Rebalance reports one shard-map resize: which blocks changed owner
// and whether every reassigned block's log replay reproduced its
// fingerprint.
type Rebalance struct {
	Version     int   `json:"version"`
	FromShards  int   `json:"fromShards"`
	ToShards    int   `json:"toShards"`
	MovedBlocks []int `json:"movedBlocks"`
	// ReplayedEvents is the total log length replayed into new owners.
	ReplayedEvents int `json:"replayedEvents"`
	// FingerprintsPreserved is true when every moved block's replayed
	// state hashed identically to the original (Resize fails otherwise,
	// so a returned report always has it true; the field exists for the
	// bench artifact).
	FingerprintsPreserved bool `json:"fingerprintsPreserved"`
}

// Resize changes the shard count: the versioned block-to-shard map is
// recomputed by rendezvous hashing (so only blocks whose argmax shard
// changed move), and each moved block is handed to its new owner by
// exporting its log segment and replaying it from the block's initial
// snapshot — the new owner's engine is rebuilt purely from the log,
// exactly as a remote shard joining the federation would bootstrap. A
// replay that does not reproduce the block's live fingerprint aborts
// the resize with the old map intact.
//
// The rebuilt engine state has no partition baseline (partitions are
// derived, not logged), so a moved block's next Propose escalates to a
// full pass — the same bootstrap contract as incr.FromLog.
func (pl *Pool) Resize(shards int) (*Rebalance, error) {
	if shards < 1 {
		return nil, fmt.Errorf("fed: shard count %d must be positive", shards)
	}
	pl.solveMu.Lock()
	defer pl.solveMu.Unlock()
	pl.mu.Lock()
	defer pl.mu.Unlock()

	old := pl.shardMap
	next := newShardMap(old.version+1, shards, len(pl.blocks))
	rep := &Rebalance{
		Version:               next.version,
		FromShards:            old.shards,
		ToShards:              shards,
		FingerprintsPreserved: true,
	}

	type swap struct {
		b   *block
		eng *incr.Engine
	}
	var swaps []swap
	for id, b := range pl.blocks {
		if old.owner[id] == next.owner[id] {
			continue
		}
		b.mu.Lock()
		live := b.log().Fingerprint()
		tr := b.log().Export(b.init, 0, "", nil)
		nl, err := lifetime.Replay(tr)
		b.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("fed: rebalance block %d: replay: %w", id, err)
		}
		if got := nl.Fingerprint(); got != live {
			return nil, fmt.Errorf("fed: rebalance block %d: replayed fingerprint %s != live %s", id, got, live)
		}
		rep.MovedBlocks = append(rep.MovedBlocks, id)
		rep.ReplayedEvents += len(tr.Events)
		swaps = append(swaps, swap{b: b, eng: incr.New(incr.FromLog(nl), pl.opts.Engine, nil)})
	}
	// Every moved block replayed cleanly: install the new engines and
	// the new map atomically with respect to event routing.
	for _, sw := range swaps {
		sw.b.mu.Lock()
		sw.b.eng = sw.eng
		sw.b.mu.Unlock()
	}
	pl.shardMap = next
	pl.m.topology(shards, len(pl.blocks), next.version)
	return rep, nil
}

package fed

import (
	"context"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/exec"
)

// Execute drives one migration executor per block: each block proposes
// its own plan and actuates it against the fabric fabFor builds for it
// (the fabric sees local indices; gMach lets the caller translate
// machine-scoped fault schedules). Blocks run sequentially in id order
// — the executor's make-before-break waves already exploit intra-plan
// parallelism, and per-block floors are the same floors the global
// check enforces, so sequencing blocks loses no safety and keeps the
// fault-injection schedule deterministic.
//
// The aggregate report sums every counter; Outcome is completed only
// when every block completed. Final is the assembled global assignment.
func (pl *Pool) Execute(ctx context.Context, fabFor func(blockID int, gMach []int, start *cluster.Assignment) exec.Fabric, opts exec.Options) (*exec.Report, error) {
	pl.solveMu.Lock()
	defer pl.solveMu.Unlock()

	pl.mu.RLock()
	blocks := append([]*block(nil), pl.blocks...)
	crossTotal := pl.crossTotal
	pl.mu.RUnlock()

	agg := &exec.Report{Outcome: exec.OutcomeCompleted, MinHeadroom: -1}
	var totalAffinity float64
	for _, b := range blocks {
		b.mu.Lock()
		start := b.eng.State().Assignment().Clone()
		fab := fabFor(b.id, append([]int(nil), b.gMach...), start)
		ex := exec.New(b.eng, fab, opts, nil)
		rep, err := ex.Run(ctx)
		if err != nil {
			b.mu.Unlock()
			return nil, err
		}
		bp := b.eng.State().Problem()
		totalAffinity += bp.Affinity.TotalWeight()
		agg.PlannedMoves += rep.PlannedMoves
		agg.Steps += rep.Steps
		agg.Commands += rep.Commands
		agg.Executed += rep.Executed
		agg.Failed += rep.Failed
		agg.Skipped += rep.Skipped
		agg.Retries += rep.Retries
		agg.BackoffTotal += rep.BackoffTotal
		agg.Replans += rep.Replans
		agg.ReplanReasons = append(agg.ReplanReasons, rep.ReplanReasons...)
		agg.FloorViolations += rep.FloorViolations
		agg.EnvFloorDips += rep.EnvFloorDips
		agg.WastedMoves += rep.WastedMoves
		agg.PlannedGain += rep.PlannedGain
		agg.AchievedGain += rep.AchievedGain
		agg.Elapsed += rep.Elapsed
		for _, lm := range rep.DeadMachines {
			agg.DeadMachines = append(agg.DeadMachines, b.gMach[lm])
		}
		if rep.MinHeadroom >= 0 && (agg.MinHeadroom < 0 || rep.MinHeadroom < agg.MinHeadroom) {
			agg.MinHeadroom = rep.MinHeadroom
		}
		switch rep.Outcome {
		case exec.OutcomeAborted:
			agg.Outcome = exec.OutcomeAborted
			if agg.Err == "" {
				agg.Err = rep.Err
			}
		case exec.OutcomeCancelled:
			if agg.Outcome != exec.OutcomeAborted {
				agg.Outcome = exec.OutcomeCancelled
			}
		}
		b.mu.Unlock()
	}
	if denom := totalAffinity + crossTotal; denom > 0 {
		agg.NormPlanned = agg.PlannedGain / denom
		agg.NormAchieved = agg.AchievedGain / denom
	}
	agg.Final = pl.Assignment()
	return agg, nil
}

// Package fed is the federation layer: a shard router that
// consistent-hashes compatibility blocks onto N shard workers, each
// owning its own incremental engine and lifetime log segment, with
// scatter-gather delta re-optimization and a merge step that recombines
// per-shard migration plans under one global SLA-floor check before
// commit.
//
// The load-bearing invariant is the paper's stage-3 decomposition
// (Section IV-B3): no service of one compatibility block can ever be
// placed on a machine of another, so blocks re-optimize independently
// and their plans union into a valid global plan. partition.Blocks
// computes the block structure; the pool owns the routing tables from
// global service/machine indices to (block, local index) and keeps them
// consistent across index-shifting events like RemoveService.
package fed

import (
	"fmt"
	"sync"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/graph"
	"github.com/cloudsched/rasa/internal/incr"
	"github.com/cloudsched/rasa/internal/lifetime"
	"github.com/cloudsched/rasa/internal/partition"
	"github.com/cloudsched/rasa/internal/snapshot"
)

// block is one compatibility block hosted by the pool: a self-contained
// sub-cluster with its own engine and log segment. The mutex serializes
// event routing against the scatter-gather pass; the pool's table lock
// orders strictly before any block lock.
type block struct {
	id int
	mu sync.Mutex
	// gSvc / gMach map local indices back to global ones. The pool's
	// svcOwner/svcLocal (and machine twins) are the inverse maps.
	gSvc  []int
	gMach []int
	eng   *incr.Engine
	// init is the block's initial snapshot, captured before the first
	// event: Export(init) + Replay reconstructs the block state from its
	// log segment alone, which is how rebalancing hands a block to a new
	// owner.
	init   *snapshot.Snapshot
	events uint64 // events routed to this block
}

func (b *block) log() *lifetime.Log { return b.eng.State().Log() }

// sliceBlocks cuts the global problem and assignment into one
// self-contained sub-cluster per compatibility block. Capacities and
// requests are deep-copied so per-block lifetime events (drains, scale)
// never alias the caller's slices. Cross-block affinity edges cannot be
// gained (their endpoints never share a machine) and are excluded from
// every block graph; their total weight is returned so the pool can
// report normalized gain against the true global denominator.
func sliceBlocks(p *cluster.Problem, a *cluster.Assignment, blocks []partition.Block, opts incr.Options) ([]*block, float64, error) {
	n, m := p.N(), p.M()
	svcOwner := make([]int, n)
	svcLocal := make([]int, n)
	machOwner := make([]int, m)
	machLocal := make([]int, m)
	for i := range svcOwner {
		svcOwner[i] = -1
	}
	for i := range machOwner {
		machOwner[i] = -1
	}
	for id, blk := range blocks {
		for ls, gs := range blk.Services {
			svcOwner[gs] = id
			svcLocal[gs] = ls
		}
		for lm, gm := range blk.Machines {
			machOwner[gm] = id
			machLocal[gm] = lm
		}
	}

	probs := make([]*cluster.Problem, len(blocks))
	assigns := make([]*cluster.Assignment, len(blocks))
	for id, blk := range blocks {
		bp := &cluster.Problem{ResourceNames: p.ResourceNames}
		for _, gs := range blk.Services {
			s := p.Services[gs]
			bp.Services = append(bp.Services, cluster.Service{
				Name: s.Name, Replicas: s.Replicas, Request: s.Request.Clone(),
			})
		}
		for _, gm := range blk.Machines {
			mach := p.Machines[gm]
			bp.Machines = append(bp.Machines, cluster.Machine{
				Name: mach.Name, Capacity: mach.Capacity.Clone(), Spec: mach.Spec,
			})
		}
		bp.Affinity = graph.New(len(blk.Services))
		for _, rule := range p.AntiAffinity {
			var local []int
			for _, gs := range rule.Services {
				if svcOwner[gs] == id {
					local = append(local, svcLocal[gs])
				}
			}
			if len(local) > 0 {
				bp.AntiAffinity = append(bp.AntiAffinity, cluster.AntiAffinityRule{
					Services: local, MaxPerHost: rule.MaxPerHost,
				})
			}
		}
		// Preserve nil-ness of schedulability rows: an unrestricted
		// service must stay unrestricted so it gains future AddMachine
		// capacity exactly as it would under a single engine.
		if p.Schedulable != nil {
			rows := make([]cluster.Bitmap, len(blk.Services))
			any := false
			for ls, gs := range blk.Services {
				if p.Schedulable[gs] == nil {
					continue
				}
				bm := cluster.NewBitmap(len(blk.Machines))
				for lm, gm := range blk.Machines {
					if p.Schedulable[gs].Get(gm) {
						bm.Set(lm)
					}
				}
				rows[ls] = bm
				any = true
			}
			if any {
				bp.Schedulable = rows
			}
		}
		probs[id] = bp
		assigns[id] = cluster.NewAssignment(len(blk.Services), len(blk.Machines))
	}

	// One pass over the affinity graph: intra-block edges project into
	// the owner's local graph, cross-block weight accumulates.
	var crossTotal float64
	for _, e := range p.Affinity.Edges() {
		if svcOwner[e.U] == svcOwner[e.V] && svcOwner[e.U] >= 0 {
			probs[svcOwner[e.U]].Affinity.AddEdge(svcLocal[e.U], svcLocal[e.V], e.Weight)
		} else {
			crossTotal += e.Weight
		}
	}

	var sliceErr error
	if a != nil {
		a.EachPlacement(func(s, mach, count int) {
			if sliceErr != nil {
				return
			}
			bs, bm := svcOwner[s], machOwner[mach]
			if bs != bm {
				sliceErr = fmt.Errorf("fed: placement of service %d on machine %d crosses blocks %d and %d", s, mach, bs, bm)
				return
			}
			assigns[bs].Set(svcLocal[s], machLocal[mach], count)
		})
	}
	if sliceErr != nil {
		return nil, 0, sliceErr
	}

	out := make([]*block, len(blocks))
	for id := range blocks {
		init := snapshot.FromCluster(probs[id], assigns[id])
		st, err := incr.NewState(probs[id], assigns[id])
		if err != nil {
			return nil, 0, fmt.Errorf("fed: block %d: %w", id, err)
		}
		out[id] = &block{
			id:    id,
			gSvc:  append([]int(nil), blocks[id].Services...),
			gMach: append([]int(nil), blocks[id].Machines...),
			eng:   incr.New(st, opts, nil),
			init:  init,
		}
	}
	return out, crossTotal, nil
}

package fed

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/incr"
	"github.com/cloudsched/rasa/internal/lifetime"
	"github.com/cloudsched/rasa/internal/migrate"
	"github.com/cloudsched/rasa/internal/obs"
	"github.com/cloudsched/rasa/internal/partition"
)

// Options tune the shard pool.
type Options struct {
	// Shards is the number of shard workers blocks are hashed onto;
	// default 2 (a pool with one shard is valid but the single-engine
	// session is the better fit — the server only builds a pool for
	// -shards >= 2).
	Shards int
	// Engine configures every block's incremental engine. A single
	// Engine.Policy value is shared by all blocks, so a learned policy
	// (selector.Observer) aggregates race outcomes from every shard into
	// one trainer — the federated session feeds the same learning loop
	// as a single-engine one.
	Engine incr.Options
}

func (o Options) withDefaults() Options {
	if o.Shards < 1 {
		o.Shards = 2
	}
	return o
}

// shardMap is the versioned block-to-shard assignment: rendezvous
// hashing picks, per block, the live shard with the highest keyed hash,
// so resizing moves only the blocks whose argmax changed.
type shardMap struct {
	version int
	shards  int
	owner   []int // block id -> shard
}

func newShardMap(version, shards, blocks int) *shardMap {
	sm := &shardMap{version: version, shards: shards, owner: make([]int, blocks)}
	for b := range sm.owner {
		sm.owner[b] = rendezvousOwner(b, shards)
	}
	return sm
}

// rendezvousOwner returns argmax over shards of FNV-1a(block, shard).
func rendezvousOwner(blockID, shards int) int {
	best, bestH := 0, uint64(0)
	for s := 0; s < shards; s++ {
		h := fnv.New64a()
		var buf [16]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(uint64(blockID) >> (8 * i))
			buf[8+i] = byte(uint64(s) >> (8 * i))
		}
		h.Write(buf[:])
		if v := h.Sum64(); s == 0 || v > bestH {
			best, bestH = s, v
		}
	}
	return best
}

// Pool is the embedded shard federation: compatibility blocks sliced
// into self-contained sub-clusters, hashed onto shard workers, with
// global-index routing of churn events and a scatter-gather Reoptimize.
//
// Lock order: mu (tables) before any block.mu; journal's own lock is
// leaf-only. The scatter-gather pass holds solveMu for its duration and
// never touches mu while holding a block lock, so event routing
// (mu -> block.mu) cannot deadlock against it.
type Pool struct {
	opts Options
	m    *metrics

	// mu guards the routing tables, the block list, the shard map, and
	// the cross-edge ledger.
	mu       sync.RWMutex
	blocks   []*block
	shardMap *shardMap
	// svcOwner/svcLocal map a global service index to (block, local
	// index); machOwner/machLocal are the machine twins.
	svcOwner, svcLocal   []int
	machOwner, machLocal []int
	// cross holds affinity edges whose endpoints live in different
	// blocks, keyed by (min,max) global index. They can never be gained
	// — the endpoints never share a machine — but their weight belongs
	// in the normalized-gain denominator.
	cross      map[[2]int]float64
	crossTotal float64
	addRR      int // round-robin cursor for AddMachine placement

	// solveMu serializes scatter-gather passes and rebalances.
	solveMu sync.Mutex

	// jmu guards the journal: the pool-level event history serving
	// GET /v1/cluster/log. Block logs hold the authoritative per-block
	// segments; the journal records the global-index stream in arrival
	// order.
	jmu     sync.Mutex
	journal []lifetime.EntryJSON
}

// New slices the problem into compatibility blocks, builds one engine
// per block, and hashes blocks onto opts.Shards shard workers. The pool
// takes ownership of p and a.
func New(p *cluster.Problem, a *cluster.Assignment, opts Options, reg *obs.Registry) (*Pool, error) {
	opts = opts.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	blks := partition.Blocks(p)
	bs, crossTotal, err := sliceBlocks(p, a, blks, opts.Engine)
	if err != nil {
		return nil, err
	}
	pl := &Pool{
		opts:       opts,
		m:          newMetrics(reg),
		blocks:     bs,
		shardMap:   newShardMap(1, opts.Shards, len(bs)),
		svcOwner:   make([]int, p.N()),
		svcLocal:   make([]int, p.N()),
		machOwner:  make([]int, p.M()),
		machLocal:  make([]int, p.M()),
		cross:      make(map[[2]int]float64),
		crossTotal: crossTotal,
	}
	for id, blk := range blks {
		for ls, gs := range blk.Services {
			pl.svcOwner[gs] = id
			pl.svcLocal[gs] = ls
		}
		for lm, gm := range blk.Machines {
			pl.machOwner[gm] = id
			pl.machLocal[gm] = lm
		}
	}
	for _, e := range p.Affinity.Edges() {
		if pl.svcOwner[e.U] != pl.svcOwner[e.V] {
			pl.cross[edgeKey(e.U, e.V)] = e.Weight
		}
	}
	pl.m.topology(opts.Shards, len(bs), 1)
	return pl, nil
}

func edgeKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// Shards returns the current shard count.
func (pl *Pool) Shards() int {
	pl.mu.RLock()
	defer pl.mu.RUnlock()
	return pl.shardMap.shards
}

// Blocks returns the number of compatibility blocks.
func (pl *Pool) Blocks() int {
	pl.mu.RLock()
	defer pl.mu.RUnlock()
	return len(pl.blocks)
}

// Version returns the shard map version.
func (pl *Pool) Version() int {
	pl.mu.RLock()
	defer pl.mu.RUnlock()
	return pl.shardMap.version
}

// Apply routes events to their owning blocks in order, stopping at the
// first invalid one. It returns how many events were applied, matching
// the incr.State.Apply contract.
func (pl *Pool) Apply(events ...lifetime.Event) (int, error) {
	for i, ev := range events {
		if err := pl.apply(ev); err != nil {
			return i, err
		}
		pl.jmu.Lock()
		pl.journal = append(pl.journal, lifetime.EntryJSON{
			Seq: uint64(len(pl.journal) + 1), EventJSON: lifetime.ToJSON(ev),
		})
		pl.jmu.Unlock()
	}
	return len(events), nil
}

// apply routes one global-index event. Service-scoped events go to the
// service's owner, machine-scoped events to the machine's owner (with
// one engine per block there is exactly one interested party, so the
// "broadcast" of machine events degenerates to owner routing);
// ReplanRequested fans out to every block. Index-shifting events
// (AddMachine, RemoveService) also rewrite the routing tables.
func (pl *Pool) apply(ev lifetime.Event) error {
	switch e := ev.(type) {
	case lifetime.ScaleService:
		return pl.toService(e.Service, func(b *block, ls int) lifetime.Event {
			return lifetime.ScaleService{Service: ls, Replicas: e.Replicas}
		})
	case lifetime.UpdateAffinity:
		return pl.updateAffinity(e)
	case lifetime.DrainMachine:
		return pl.toMachine(e.Machine, func(b *block, lm int) lifetime.Event {
			return lifetime.DrainMachine{Machine: lm}
		})
	case lifetime.MachineDied:
		return pl.toMachine(e.Machine, func(b *block, lm int) lifetime.Event {
			return lifetime.MachineDied{Machine: lm}
		})
	case lifetime.AddMachine:
		return pl.addMachine(e)
	case lifetime.RemoveService:
		return pl.removeService(e)
	case lifetime.MoveStarted:
		return pl.toMove(e.Service, e.Machine, func(ls, lm int) lifetime.Event {
			return lifetime.MoveStarted{Op: e.Op, Service: ls, Machine: lm}
		})
	case lifetime.MoveApplied:
		return pl.toMove(e.Service, e.Machine, func(ls, lm int) lifetime.Event {
			return lifetime.MoveApplied{Op: e.Op, Service: ls, Machine: lm}
		})
	case lifetime.MoveFailed:
		return pl.toMove(e.Service, e.Machine, func(ls, lm int) lifetime.Event {
			return lifetime.MoveFailed{Op: e.Op, Service: ls, Machine: lm, Reason: e.Reason}
		})
	case lifetime.ReplanRequested:
		pl.mu.RLock()
		blocks := append([]*block(nil), pl.blocks...)
		pl.mu.RUnlock()
		for _, b := range blocks {
			b.mu.Lock()
			_, err := b.eng.Apply(lifetime.ReplanRequested{Reason: e.Reason})
			b.mu.Unlock()
			if err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("fed: %s events are engine-internal and cannot be routed", ev.Kind())
	}
}

// toService routes a service-scoped event to its owner block.
func (pl *Pool) toService(g int, mk func(b *block, ls int) lifetime.Event) error {
	pl.mu.RLock()
	if g < 0 || g >= len(pl.svcOwner) {
		pl.mu.RUnlock()
		return fmt.Errorf("fed: service %d out of range [0,%d)", g, len(pl.svcOwner))
	}
	b, ls := pl.blocks[pl.svcOwner[g]], pl.svcLocal[g]
	shard := pl.shardMap.owner[b.id]
	pl.mu.RUnlock()
	return pl.applyTo(b, shard, mk(b, ls))
}

// toMachine routes a machine-scoped event to its owner block.
func (pl *Pool) toMachine(g int, mk func(b *block, lm int) lifetime.Event) error {
	pl.mu.RLock()
	if g < 0 || g >= len(pl.machOwner) {
		pl.mu.RUnlock()
		return fmt.Errorf("fed: machine %d out of range [0,%d)", g, len(pl.machOwner))
	}
	b, lm := pl.blocks[pl.machOwner[g]], pl.machLocal[g]
	shard := pl.shardMap.owner[b.id]
	pl.mu.RUnlock()
	return pl.applyTo(b, shard, mk(b, lm))
}

// toMove routes an execution move event; service and machine must share
// a block, which for any move a block planner emitted they do.
func (pl *Pool) toMove(gs, gm int, mk func(ls, lm int) lifetime.Event) error {
	pl.mu.RLock()
	if gs < 0 || gs >= len(pl.svcOwner) || gm < 0 || gm >= len(pl.machOwner) {
		pl.mu.RUnlock()
		return fmt.Errorf("fed: move (%d,%d) out of range", gs, gm)
	}
	if pl.svcOwner[gs] != pl.machOwner[gm] {
		pl.mu.RUnlock()
		return fmt.Errorf("fed: move of service %d to machine %d crosses blocks %d and %d",
			gs, gm, pl.svcOwner[gs], pl.machOwner[gm])
	}
	b, ls, lm := pl.blocks[pl.svcOwner[gs]], pl.svcLocal[gs], pl.machLocal[gm]
	shard := pl.shardMap.owner[b.id]
	pl.mu.RUnlock()
	return pl.applyTo(b, shard, mk(ls, lm))
}

func (pl *Pool) applyTo(b *block, shard int, ev lifetime.Event) error {
	b.mu.Lock()
	_, err := b.eng.Apply(ev)
	if err == nil {
		b.events++
	}
	b.mu.Unlock()
	if err != nil {
		return err
	}
	pl.m.event(shard)
	return nil
}

// updateAffinity forwards intra-block edges to the owner; cross-block
// edges only move weight in the pool's ledger — they are structurally
// ungainable, exactly as under a single engine where the two services
// can never share a machine.
func (pl *Pool) updateAffinity(e lifetime.UpdateAffinity) error {
	pl.mu.Lock()
	n := len(pl.svcOwner)
	if e.A < 0 || e.A >= n || e.B < 0 || e.B >= n {
		pl.mu.Unlock()
		return fmt.Errorf("fed: services (%d,%d) out of range [0,%d)", e.A, e.B, n)
	}
	if e.A == e.B {
		pl.mu.Unlock()
		return fmt.Errorf("fed: self-affinity on service %d", e.A)
	}
	if e.Weight < 0 {
		pl.mu.Unlock()
		return fmt.Errorf("fed: negative affinity weight %v", e.Weight)
	}
	if pl.svcOwner[e.A] == pl.svcOwner[e.B] {
		b, la, lb := pl.blocks[pl.svcOwner[e.A]], pl.svcLocal[e.A], pl.svcLocal[e.B]
		shard := pl.shardMap.owner[b.id]
		pl.mu.Unlock()
		return pl.applyTo(b, shard, lifetime.UpdateAffinity{A: la, B: lb, Weight: e.Weight})
	}
	k := edgeKey(e.A, e.B)
	pl.crossTotal += e.Weight - pl.cross[k]
	if e.Weight == 0 {
		delete(pl.cross, k)
	} else {
		pl.cross[k] = e.Weight
	}
	shard := pl.shardMap.owner[pl.svcOwner[e.A]]
	pl.mu.Unlock()
	pl.m.event(shard)
	return nil
}

// addMachine grows the fleet: the new machine is assigned round-robin
// across blocks. Restricted services of the owner block do not gain it
// (the lifetime AddMachine contract), so any block is semantically as
// good as any other; round-robin keeps growth balanced.
func (pl *Pool) addMachine(e lifetime.AddMachine) error {
	pl.mu.Lock()
	b := pl.blocks[pl.addRR%len(pl.blocks)]
	shard := pl.shardMap.owner[b.id]
	b.mu.Lock()
	_, err := b.eng.Apply(lifetime.AddMachine{Name: e.Name, Capacity: e.Capacity.Clone(), Spec: e.Spec})
	if err != nil {
		b.mu.Unlock()
		pl.mu.Unlock()
		return err
	}
	pl.addRR++
	g := len(pl.machOwner)
	pl.machOwner = append(pl.machOwner, b.id)
	pl.machLocal = append(pl.machLocal, len(b.gMach))
	b.gMach = append(b.gMach, g)
	b.events++
	b.mu.Unlock()
	pl.mu.Unlock()
	pl.m.event(shard)
	return nil
}

// removeService retires a service, shifting every higher global index
// down by one — in the routing tables, in every block's reverse map,
// and in the cross-edge ledger — mirroring the single-engine
// RemoveService index contract.
func (pl *Pool) removeService(e lifetime.RemoveService) error {
	pl.mu.Lock()
	g := e.Service
	if g < 0 || g >= len(pl.svcOwner) {
		pl.mu.Unlock()
		return fmt.Errorf("fed: service %d out of range [0,%d)", g, len(pl.svcOwner))
	}
	b, ls := pl.blocks[pl.svcOwner[g]], pl.svcLocal[g]
	shard := pl.shardMap.owner[b.id]
	if len(b.gSvc) < 2 {
		pl.mu.Unlock()
		return fmt.Errorf("fed: cannot remove service %d: it is the last service of compatibility block %d", g, b.id)
	}
	b.mu.Lock()
	_, err := b.eng.Apply(lifetime.RemoveService{Service: ls})
	if err != nil {
		b.mu.Unlock()
		pl.mu.Unlock()
		return err
	}
	b.gSvc = append(b.gSvc[:ls], b.gSvc[ls+1:]...)
	b.events++
	b.mu.Unlock()

	pl.svcOwner = append(pl.svcOwner[:g], pl.svcOwner[g+1:]...)
	pl.svcLocal = append(pl.svcLocal[:g], pl.svcLocal[g+1:]...)
	for i, owner := range pl.svcOwner {
		if owner == b.id && pl.svcLocal[i] > ls {
			pl.svcLocal[i]--
		}
	}
	for _, blk := range pl.blocks {
		blk.mu.Lock()
		for i, gs := range blk.gSvc {
			if gs > g {
				blk.gSvc[i] = gs - 1
			}
		}
		blk.mu.Unlock()
	}
	if len(pl.cross) > 0 {
		next := make(map[[2]int]float64, len(pl.cross))
		for k, w := range pl.cross {
			if k[0] == g || k[1] == g {
				pl.crossTotal -= w
				continue
			}
			a, bb := k[0], k[1]
			if a > g {
				a--
			}
			if bb > g {
				bb--
			}
			next[edgeKey(a, bb)] = w
		}
		pl.cross = next
	}
	pl.mu.Unlock()
	pl.m.event(shard)
	return nil
}

// pass is one block's Propose outcome inside a scatter-gather round.
type pass struct {
	b     *block
	shard int
	res   *incr.Result
}

// Result aggregates one scatter-gather re-optimization across every
// block.
type Result struct {
	// Noops/Deltas/Fulls count per-block passes by path taken.
	Noops, Deltas, Fulls int
	// EventsApplied sums the blocks' cumulative event counts.
	EventsApplied int
	// GainedAffinity sums per-block gains after commit; NormalizedGain
	// divides by the global denominator (block totals plus cross-block
	// weight).
	GainedAffinity float64
	NormalizedGain float64
	// Moves and Changed are the merged global diff; Plan is the merged
	// global migration plan (step i is the union of every accepted
	// block plan's step i — valid because blocks share no machines).
	Moves   int
	Changed []lifetime.PlacementDelta
	Plan    *migrate.Plan
	// FloorRejections counts block plans the global SLA-floor check
	// refused to commit (their blocks stay dirty and retry next pass);
	// RejectedBlocks lists them.
	FloorRejections  int
	RejectedBlocks   []int
	PartialMigration bool
	OutOfTime        bool
	// MergeElapsed is the gather+merge+floor-check portion of Elapsed.
	MergeElapsed time.Duration
	Elapsed      time.Duration
}

// Reoptimize runs one scatter-gather pass: every shard worker proposes
// per-block re-optimizations concurrently (noop blocks return
// immediately), the merge step recombines the per-block migration plans
// into one global plan, a single global SLA-floor check walks that plan
// against floors and capacities, and only then are the surviving block
// proposals committed. Block locks are held from Propose to commit, so
// no event can slip between a proposal and its adoption.
func (pl *Pool) Reoptimize(ctx context.Context) (*Result, error) {
	pl.solveMu.Lock()
	defer pl.solveMu.Unlock()
	start := time.Now()

	pl.mu.RLock()
	blocks := append([]*block(nil), pl.blocks...)
	shardOf := append([]int(nil), pl.shardMap.owner...)
	shards := pl.shardMap.shards
	crossTotal := pl.crossTotal
	pl.mu.RUnlock()

	// Scatter: each shard worker walks its blocks in id order. Block
	// locks are acquired here and released only after the commit phase.
	byShard := make([][]*block, shards)
	for _, b := range blocks {
		byShard[shardOf[b.id]] = append(byShard[shardOf[b.id]], b)
	}
	passes := make([]*pass, len(blocks))
	locked := make([]bool, len(blocks))
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for s, list := range byShard {
		if len(list) == 0 {
			continue
		}
		wg.Add(1)
		go func(shard int, list []*block) {
			defer wg.Done()
			for _, b := range list {
				b.mu.Lock()
				locked[b.id] = true
				res, err := b.eng.Propose(ctx)
				if err != nil {
					errs[shard] = fmt.Errorf("fed: block %d propose: %w", b.id, err)
					return
				}
				passes[b.id] = &pass{b: b, shard: shard, res: res}
				pl.m.reoptimize(shard, res.Mode.String())
			}
		}(s, list)
	}
	wg.Wait()
	unlockAll := func() {
		for i, b := range blocks {
			if locked[i] {
				b.mu.Unlock()
			}
		}
	}
	for _, err := range errs {
		if err != nil {
			unlockAll()
			return nil, err
		}
	}

	// Gather: merge plans and run the global floor check, then commit
	// the survivors.
	mergeStart := time.Now()
	rejected := pl.floorCheck(passes)
	res := &Result{RejectedBlocks: rejected, FloorRejections: len(rejected)}
	pl.m.rejection(len(rejected))
	isRejected := make(map[int]bool, len(rejected))
	for _, id := range rejected {
		isRejected[id] = true
	}
	var mergedSteps []migrate.Step
	var relocations int
	for _, pa := range passes {
		if pa == nil {
			continue
		}
		switch pa.res.Mode {
		case incr.ModeNoop:
			res.Noops++
		case incr.ModeDelta:
			res.Deltas++
		case incr.ModeFull:
			res.Fulls++
		}
		if pa.res.Mode == incr.ModeNoop || isRejected[pa.b.id] {
			continue
		}
		if err := pa.b.eng.CommitProposal(pa.res); err != nil {
			unlockAll()
			return nil, fmt.Errorf("fed: block %d commit: %w", pa.b.id, err)
		}
		res.Moves += pa.res.Moves
		for _, d := range pa.res.Changed {
			res.Changed = append(res.Changed, lifetime.PlacementDelta{
				Service: pa.b.gSvc[d.Service], Machine: pa.b.gMach[d.Machine],
				Before: d.Before, After: d.After,
			})
		}
		if pa.res.PartialMigration {
			res.PartialMigration = true
		}
		if pa.res.OutOfTime {
			res.OutOfTime = true
		}
		if pa.res.Plan != nil {
			relocations += pa.res.Plan.Relocations
			for i, step := range pa.res.Plan.Steps {
				for len(mergedSteps) <= i {
					mergedSteps = append(mergedSteps, nil)
				}
				for _, c := range step {
					mergedSteps[i] = append(mergedSteps[i], migrate.Command{
						Op: c.Op, Service: pa.b.gSvc[c.Service], Machine: pa.b.gMach[c.Machine],
					})
				}
			}
		}
	}
	if len(mergedSteps) > 0 {
		res.Plan = &migrate.Plan{Steps: mergedSteps, Moves: res.Moves, Relocations: relocations}
	}

	// Tally gains from the live (post-commit) block states.
	var gained, total float64
	for _, pa := range passes {
		if pa == nil {
			continue
		}
		st := pa.b.eng.State()
		bp := st.Problem()
		gained += st.Assignment().GainedAffinity(bp)
		total += bp.Affinity.TotalWeight()
		res.EventsApplied += pa.res.EventsApplied
	}
	unlockAll()

	res.GainedAffinity = gained
	if denom := total + crossTotal; denom > 0 {
		res.NormalizedGain = gained / denom
	}
	res.MergeElapsed = time.Since(mergeStart)
	res.Elapsed = time.Since(start)
	pl.m.merge(res.MergeElapsed)

	pl.jmu.Lock()
	pl.journal = append(pl.journal, lifetime.EntryJSON{
		Seq: uint64(len(pl.journal) + 1),
		EventJSON: lifetime.ToJSON(lifetime.PlanCommitted{
			Origin: "fed", Mode: "merge", Applied: true, Moves: res.Moves,
		}),
	})
	pl.jmu.Unlock()
	return res, nil
}

// floorCheck is the thin global invariant between local autonomy and
// commit: it walks the union of the proposed block plans step by step
// over the pooled cluster, tracking per-service alive counts against
// the SLA floor and per-machine load against capacity, and returns the
// ids of blocks whose plans would breach either. With disjoint blocks
// each already Simulate-verified by its planner this returns nothing —
// it exists to stop a miscomputed or stale plan from reaching the
// fabric, the same zero-by-construction stance the executor takes.
//
// Called with every block lock held, so block problems and assignments
// are stable; attribution is per block because commands only ever touch
// their own block's services and machines.
func (pl *Pool) floorCheck(passes []*pass) []int {
	minAlive := pl.opts.Engine.MinAlive
	if minAlive == 0 {
		minAlive = 0.75 // incr.Options default
	}
	type track struct {
		alive map[int]int         // local service -> alive count
		floor map[int]int         // local service -> min alive
		used  []cluster.Resources // local machine -> load
		bp    *cluster.Problem
	}
	tracks := make(map[int]*track)
	bad := make(map[int]bool)
	for _, pa := range passes {
		if pa == nil || pa.res.Plan == nil || pa.res.Mode == incr.ModeNoop {
			continue
		}
		st := pa.b.eng.State()
		bp, a := st.Problem(), st.Assignment()
		t := &track{
			alive: make(map[int]int, bp.N()),
			floor: make(map[int]int, bp.N()),
			used:  a.UsedResources(bp),
			bp:    bp,
		}
		target := make(map[int]int, bp.N())
		for s := 0; s < bp.N(); s++ {
			t.alive[s] = a.Placed(s)
			target[s] = t.alive[s]
		}
		for _, d := range pa.res.Changed {
			target[d.Service] += d.After - d.Before
		}
		for s := 0; s < bp.N(); s++ {
			f := int(minAlive * float64(bp.Services[s].Replicas))
			if target[s] < f {
				f = target[s]
			}
			if t.alive[s] < f {
				f = t.alive[s]
			}
			t.floor[s] = f
		}
		tracks[pa.b.id] = t
	}

	maxSteps := 0
	for _, pa := range passes {
		if pa != nil && pa.res.Plan != nil && len(pa.res.Plan.Steps) > maxSteps {
			maxSteps = len(pa.res.Plan.Steps)
		}
	}
	for i := 0; i < maxSteps; i++ {
		for _, pa := range passes {
			if pa == nil || pa.res.Plan == nil || bad[pa.b.id] || i >= len(pa.res.Plan.Steps) {
				continue
			}
			t := tracks[pa.b.id]
			for _, c := range pa.res.Plan.Steps[i] {
				req := t.bp.Services[c.Service].Request
				switch c.Op {
				case migrate.Delete:
					t.alive[c.Service]--
					t.used[c.Machine] = t.used[c.Machine].Sub(req)
				case migrate.Create:
					t.alive[c.Service]++
					t.used[c.Machine] = t.used[c.Machine].Add(req)
				}
			}
			// Verify after the whole step (commands within a step are
			// concurrent, matching migrate.Simulate).
			for _, c := range pa.res.Plan.Steps[i] {
				if t.alive[c.Service] < t.floor[c.Service] {
					bad[pa.b.id] = true
					break
				}
				if c.Op == migrate.Create && !t.used[c.Machine].Fits(t.bp.Machines[c.Machine].Capacity) {
					bad[pa.b.id] = true
					break
				}
			}
		}
	}
	if len(bad) == 0 {
		return nil
	}
	out := make([]int, 0, len(bad))
	for id := range bad {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

package fed

import (
	"context"
	"testing"
	"time"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/exec"
	"github.com/cloudsched/rasa/internal/graph"
	"github.com/cloudsched/rasa/internal/incr"
	"github.com/cloudsched/rasa/internal/lifetime"
	"github.com/cloudsched/rasa/internal/migrate"
	"github.com/cloudsched/rasa/internal/partition"
)

// twoBlockProblem hand-builds a cluster with exactly two compatibility
// blocks: services 0,1 pinned to machines 0,1 and services 2,3 pinned
// to machines 2,3, with intra-block affinity in both blocks plus one
// cross-block edge (1,2) of weight 2.
func twoBlockProblem() (*cluster.Problem, *cluster.Assignment) {
	p := &cluster.Problem{
		ResourceNames: []string{"cpu", "mem"},
		Services: []cluster.Service{
			{Name: "a0", Replicas: 2, Request: cluster.Resources{1, 1}},
			{Name: "a1", Replicas: 2, Request: cluster.Resources{1, 1}},
			{Name: "b0", Replicas: 2, Request: cluster.Resources{1, 1}},
			{Name: "b1", Replicas: 2, Request: cluster.Resources{1, 1}},
		},
		Machines: []cluster.Machine{
			{Name: "m0", Capacity: cluster.Resources{10, 10}},
			{Name: "m1", Capacity: cluster.Resources{10, 10}},
			{Name: "m2", Capacity: cluster.Resources{10, 10}},
			{Name: "m3", Capacity: cluster.Resources{10, 10}},
		},
	}
	p.Affinity = graph.New(4)
	p.Affinity.AddEdge(0, 1, 5)
	p.Affinity.AddEdge(2, 3, 3)
	p.Affinity.AddEdge(1, 2, 2)
	pin := func(machines ...int) cluster.Bitmap {
		bm := cluster.NewBitmap(4)
		for _, m := range machines {
			bm.Set(m)
		}
		return bm
	}
	p.Schedulable = []cluster.Bitmap{pin(0, 1), pin(0, 1), pin(2, 3), pin(2, 3)}

	a := cluster.NewAssignment(4, 4)
	a.Set(0, 0, 2)
	a.Set(1, 1, 2)
	a.Set(2, 2, 2)
	a.Set(3, 3, 2)
	return p, a
}

func testEngineOpts() incr.Options {
	return incr.Options{
		Budget:        5 * time.Second,
		SkipMigration: true,
		Parallelism:   1,
	}
}

func newTestPool(t *testing.T, shards int) *Pool {
	t.Helper()
	p, a := twoBlockProblem()
	pl, err := New(p, a, Options{Shards: shards, Engine: testEngineOpts()}, nil)
	if err != nil {
		t.Fatalf("new pool: %v", err)
	}
	return pl
}

func TestPoolTopology(t *testing.T) {
	pl := newTestPool(t, 2)
	if pl.Blocks() != 2 {
		t.Fatalf("blocks = %d, want 2", pl.Blocks())
	}
	if pl.Shards() != 2 || pl.Version() != 1 {
		t.Fatalf("shards=%d version=%d, want 2/1", pl.Shards(), pl.Version())
	}
	if pl.crossTotal != 2 {
		t.Fatalf("crossTotal = %v, want 2", pl.crossTotal)
	}
	st := pl.Stats()
	if st.Services != 4 || st.Machines != 4 {
		t.Fatalf("stats services=%d machines=%d, want 4/4", st.Services, st.Machines)
	}
	// Global denominator: 5 + 3 intra plus 2 cross.
	if st.TotalAffinity != 10 {
		t.Fatalf("total affinity = %v, want 10", st.TotalAffinity)
	}

	status := pl.Status()
	if status.Version != 1 || len(status.Blocks) != 2 || len(status.Shards) != 2 {
		t.Fatalf("status %+v", status)
	}
	blockSeen := 0
	for _, sh := range status.Shards {
		blockSeen += len(sh.Blocks)
	}
	if blockSeen != 2 {
		t.Fatalf("shard block lists cover %d blocks, want 2", blockSeen)
	}

	// The full assignment round-trips through the per-block states.
	got := pl.Assignment()
	for s := 0; s < 4; s++ {
		if got.Placed(s) != 2 {
			t.Fatalf("service %d placed %d, want 2", s, got.Placed(s))
		}
	}
}

func TestEventRoutingAndJournal(t *testing.T) {
	pl := newTestPool(t, 2)
	n, err := pl.Apply(
		lifetime.ScaleService{Service: 2, Replicas: 3},
		lifetime.DrainMachine{Machine: 0},
	)
	if err != nil || n != 2 {
		t.Fatalf("apply: n=%d err=%v", n, err)
	}
	if pl.Head() != 2 {
		t.Fatalf("journal head = %d, want 2", pl.Head())
	}
	entries := pl.Entries(1)
	if len(entries) != 2 || entries[0].Seq != 1 || entries[1].Seq != 2 {
		t.Fatalf("entries %+v", entries)
	}
	if got := pl.Entries(3); got != nil {
		t.Fatalf("entries past head = %+v, want nil", got)
	}

	// Scale of global service 2 must land in block 1 as local service 0.
	b1 := pl.blocks[1]
	if b1.eng.State().Problem().Services[0].Replicas != 3 {
		t.Fatal("scale event did not reach owner block")
	}
	if b1.events != 1 || pl.blocks[0].events != 1 {
		t.Fatalf("routed counts = %d/%d, want 1/1", pl.blocks[0].events, b1.events)
	}

	// A bad event stops the batch and reports how many applied.
	n, err = pl.Apply(lifetime.ScaleService{Service: 1, Replicas: 3}, lifetime.ScaleService{Service: 99, Replicas: 1})
	if err == nil || n != 1 {
		t.Fatalf("bad batch: n=%d err=%v", n, err)
	}
	if pl.Head() != 3 {
		t.Fatalf("journal head = %d after failed batch, want 3", pl.Head())
	}

	// Engine-internal events cannot be routed.
	if _, err := pl.Apply(lifetime.PlanCommitted{}); err == nil {
		t.Fatal("PlanCommitted accepted by router")
	}
}

func TestCrossEdgeLedger(t *testing.T) {
	pl := newTestPool(t, 2)
	// Reweight the existing cross edge (1,2): ledger only, no block log.
	if _, err := pl.Apply(lifetime.UpdateAffinity{A: 2, B: 1, Weight: 7}); err != nil {
		t.Fatalf("cross update: %v", err)
	}
	if pl.crossTotal != 7 {
		t.Fatalf("crossTotal = %v, want 7", pl.crossTotal)
	}
	if h := pl.blocks[0].log().Head(); h != 0 {
		t.Fatalf("cross edge leaked into block log (head %d)", h)
	}
	// New cross edge and deletion.
	if _, err := pl.Apply(lifetime.UpdateAffinity{A: 0, B: 3, Weight: 1}); err != nil {
		t.Fatalf("new cross edge: %v", err)
	}
	if pl.crossTotal != 8 || len(pl.cross) != 2 {
		t.Fatalf("crossTotal=%v edges=%d, want 8/2", pl.crossTotal, len(pl.cross))
	}
	if _, err := pl.Apply(lifetime.UpdateAffinity{A: 0, B: 3, Weight: 0}); err != nil {
		t.Fatalf("delete cross edge: %v", err)
	}
	if pl.crossTotal != 7 || len(pl.cross) != 1 {
		t.Fatalf("after delete crossTotal=%v edges=%d, want 7/1", pl.crossTotal, len(pl.cross))
	}

	// Intra-block updates forward to the owner's graph.
	if _, err := pl.Apply(lifetime.UpdateAffinity{A: 0, B: 1, Weight: 9}); err != nil {
		t.Fatalf("intra update: %v", err)
	}
	if w := pl.blocks[0].eng.State().Problem().Affinity.Weight(0, 1); w != 9 {
		t.Fatalf("block edge weight = %v, want 9", w)
	}

	// Invalid updates are rejected with the tables intact.
	for _, ev := range []lifetime.Event{
		lifetime.UpdateAffinity{A: 0, B: 0, Weight: 1},
		lifetime.UpdateAffinity{A: -1, B: 1, Weight: 1},
		lifetime.UpdateAffinity{A: 0, B: 1, Weight: -2},
	} {
		if _, err := pl.Apply(ev); err == nil {
			t.Fatalf("invalid %+v accepted", ev)
		}
	}
}

func TestAddMachineAndRemoveService(t *testing.T) {
	pl := newTestPool(t, 2)
	cap := cluster.Resources{10, 10}
	// Two AddMachines round-robin onto blocks 0 then 1.
	if _, err := pl.Apply(
		lifetime.AddMachine{Name: "n0", Capacity: cap},
		lifetime.AddMachine{Name: "n1", Capacity: cap},
	); err != nil {
		t.Fatalf("add machines: %v", err)
	}
	if len(pl.machOwner) != 6 {
		t.Fatalf("machOwner len = %d, want 6", len(pl.machOwner))
	}
	if pl.machOwner[4] != 0 || pl.machOwner[5] != 1 {
		t.Fatalf("owners of new machines = %d,%d, want 0,1", pl.machOwner[4], pl.machOwner[5])
	}
	if got := pl.blocks[0].gMach; len(got) != 3 || got[2] != 4 {
		t.Fatalf("block 0 gMach = %v", got)
	}
	if pl.blocks[0].eng.State().Problem().M() != 3 {
		t.Fatal("block 0 engine did not grow")
	}

	// Remove global service 1 (block 0 local 1): indices above shift.
	if _, err := pl.Apply(lifetime.RemoveService{Service: 1}); err != nil {
		t.Fatalf("remove service: %v", err)
	}
	if len(pl.svcOwner) != 3 {
		t.Fatalf("svcOwner len = %d, want 3", len(pl.svcOwner))
	}
	// Old services 2,3 are now 1,2, still owned by block 1.
	if pl.svcOwner[1] != 1 || pl.svcOwner[2] != 1 || pl.svcLocal[1] != 0 || pl.svcLocal[2] != 1 {
		t.Fatalf("tables after remove: owner=%v local=%v", pl.svcOwner, pl.svcLocal)
	}
	if got := pl.blocks[1].gSvc; got[0] != 1 || got[1] != 2 {
		t.Fatalf("block 1 gSvc = %v, want [1 2]", got)
	}
	// The cross edge (1,2) lost its endpoint: ledger drops its weight.
	if pl.crossTotal != 0 || len(pl.cross) != 0 {
		t.Fatalf("cross ledger after remove: total=%v edges=%d", pl.crossTotal, len(pl.cross))
	}
	// Events to the shifted indices land in the right block.
	if _, err := pl.Apply(lifetime.ScaleService{Service: 1, Replicas: 4}); err != nil {
		t.Fatalf("scale shifted service: %v", err)
	}
	if pl.blocks[1].eng.State().Problem().Services[0].Replicas != 4 {
		t.Fatal("scale of shifted index missed its block")
	}

	// Block 0 is down to one service: removing it would orphan the block.
	if _, err := pl.Apply(lifetime.RemoveService{Service: 0}); err == nil {
		t.Fatal("removed last service of a block")
	}
}

func TestMoveEventsCrossBlockRejected(t *testing.T) {
	pl := newTestPool(t, 2)
	if _, err := pl.Apply(lifetime.MoveStarted{Op: lifetime.OpCreate, Service: 0, Machine: 2}); err == nil {
		t.Fatal("cross-block move event accepted")
	}
	// Same-block move events route through.
	evs := []lifetime.Event{
		lifetime.MoveStarted{Op: lifetime.OpCreate, Service: 0, Machine: 1},
		lifetime.MoveApplied{Op: lifetime.OpCreate, Service: 0, Machine: 1},
	}
	if _, err := pl.Apply(evs...); err != nil {
		t.Fatalf("intra-block move events: %v", err)
	}
	if got := pl.blocks[0].eng.State().Assignment().Get(0, 1); got != 1 {
		t.Fatalf("move not applied to block state: got %d", got)
	}
}

func TestReoptimizeScatterGather(t *testing.T) {
	pl := newTestPool(t, 2)
	ctx := context.Background()

	// Bootstrap: both blocks run the full pipeline.
	res, err := pl.Reoptimize(ctx)
	if err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	if res.Fulls != 2 || res.FloorRejections != 0 {
		t.Fatalf("bootstrap fulls=%d rejections=%d", res.Fulls, res.FloorRejections)
	}
	if res.NormalizedGain < 0 || res.NormalizedGain > 1 {
		t.Fatalf("normalized gain %v out of range", res.NormalizedGain)
	}

	// Nothing dirty: both blocks noop, no journal growth from commits.
	res, err = pl.Reoptimize(ctx)
	if err != nil {
		t.Fatalf("noop pass: %v", err)
	}
	if res.Noops != 2 || res.Moves != 0 {
		t.Fatalf("noop pass: noops=%d moves=%d", res.Noops, res.Moves)
	}

	// Dirty one block only: the other stays noop.
	if _, err := pl.Apply(lifetime.ScaleService{Service: 3, Replicas: 3}); err != nil {
		t.Fatalf("scale: %v", err)
	}
	res, err = pl.Reoptimize(ctx)
	if err != nil {
		t.Fatalf("delta pass: %v", err)
	}
	if res.Noops != 1 || res.Noops+res.Deltas+res.Fulls != 2 {
		t.Fatalf("delta pass: noops=%d deltas=%d fulls=%d", res.Noops, res.Deltas, res.Fulls)
	}
	a := pl.Assignment()
	if a.Placed(3) != 3 {
		t.Fatalf("service 3 placed %d, want 3", a.Placed(3))
	}
	// Merged deltas are in global indices.
	for _, d := range res.Changed {
		if d.Service < 0 || d.Service >= 4 || d.Machine < 0 || d.Machine >= 4 {
			t.Fatalf("delta out of global range: %+v", d)
		}
		if d.Service < 2 {
			t.Fatalf("clean block produced delta %+v", d)
		}
	}
}

func TestMergedPlanGlobalIndices(t *testing.T) {
	p, a := twoBlockProblem()
	opts := testEngineOpts()
	opts.SkipMigration = false
	pl, err := New(p, a, Options{Shards: 2, Engine: opts}, nil)
	if err != nil {
		t.Fatalf("new pool: %v", err)
	}
	ctx := context.Background()
	res, err := pl.Reoptimize(ctx)
	if err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	if res.Plan == nil {
		// Nothing needed moving; force churn in both blocks and retry.
		if _, err := pl.Apply(
			lifetime.ScaleService{Service: 0, Replicas: 4},
			lifetime.ScaleService{Service: 2, Replicas: 4},
		); err != nil {
			t.Fatalf("churn: %v", err)
		}
		if res, err = pl.Reoptimize(ctx); err != nil {
			t.Fatalf("churn pass: %v", err)
		}
	}
	if res.Plan == nil {
		t.Skip("no migration plan produced")
	}
	moves := 0
	for _, step := range res.Plan.Steps {
		for _, c := range step {
			// Every command must stay inside its service's block.
			bs := pl.svcOwner[c.Service]
			if pl.machOwner[c.Machine] != bs {
				t.Fatalf("merged command crosses blocks: %+v", c)
			}
			moves++
		}
	}
	if moves == 0 {
		t.Fatal("plan with no commands")
	}
}

// TestFloorCheckRejectsBadPlan feeds the gather phase a hand-made plan
// that deletes a service below its floor and checks the global check
// refuses that block.
func TestFloorCheckRejectsBadPlan(t *testing.T) {
	pl := newTestPool(t, 2)
	b := pl.blocks[0]
	// Delete both replicas of local service 0 in one step, create none:
	// alive falls to 0, far below floor(0.75*2)=1.
	bad := &incr.Result{
		Mode: incr.ModeDelta,
		Plan: &migrate.Plan{Steps: []migrate.Step{{
			{Op: migrate.Delete, Service: 0, Machine: 0},
			{Op: migrate.Delete, Service: 0, Machine: 0},
		}}, Moves: 2},
		Changed: []lifetime.PlacementDelta{{Service: 0, Machine: 0, Before: 2, After: 2}},
	}
	rejected := pl.floorCheck([]*pass{{b: b, shard: 0, res: bad}})
	if len(rejected) != 1 || rejected[0] != 0 {
		t.Fatalf("rejected = %v, want [0]", rejected)
	}

	// A plan that respects the floor passes.
	good := &incr.Result{
		Mode: incr.ModeDelta,
		Plan: &migrate.Plan{Steps: []migrate.Step{
			{{Op: migrate.Delete, Service: 0, Machine: 0}},
			{{Op: migrate.Create, Service: 0, Machine: 1}},
		}, Moves: 1},
	}
	if rejected := pl.floorCheck([]*pass{{b: b, shard: 0, res: good}}); rejected != nil {
		t.Fatalf("good plan rejected: %v", rejected)
	}

	// A create that overflows machine capacity is caught too.
	over := &incr.Result{
		Mode: incr.ModeDelta,
		Plan: &migrate.Plan{Steps: []migrate.Step{func() migrate.Step {
			var step migrate.Step
			for i := 0; i < 12; i++ {
				step = append(step, migrate.Command{Op: migrate.Create, Service: 0, Machine: 0})
			}
			return step
		}()}, Moves: 12},
		Changed: []lifetime.PlacementDelta{{Service: 0, Machine: 0, Before: 2, After: 14}},
	}
	if rejected := pl.floorCheck([]*pass{{b: b, shard: 0, res: over}}); len(rejected) != 1 {
		t.Fatalf("overflow plan not rejected: %v", rejected)
	}
}

func TestResizePreservesFingerprints(t *testing.T) {
	pl := newTestPool(t, 1)
	ctx := context.Background()
	if _, err := pl.Reoptimize(ctx); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	// Put history in both block logs so the replay is non-trivial.
	if _, err := pl.Apply(
		lifetime.ScaleService{Service: 0, Replicas: 3},
		lifetime.ScaleService{Service: 2, Replicas: 3},
		lifetime.DrainMachine{Machine: 1},
	); err != nil {
		t.Fatalf("events: %v", err)
	}
	if _, err := pl.Reoptimize(ctx); err != nil {
		t.Fatalf("pass: %v", err)
	}

	before := make(map[int]string)
	for _, b := range pl.blocks {
		before[b.id] = b.log().Fingerprint()
	}
	beforeAssign := pl.Assignment()

	rep, err := pl.Resize(4)
	if err != nil {
		t.Fatalf("resize: %v", err)
	}
	if rep.Version != 2 || rep.FromShards != 1 || rep.ToShards != 4 || !rep.FingerprintsPreserved {
		t.Fatalf("rebalance report %+v", rep)
	}
	if pl.Shards() != 4 || pl.Version() != 2 {
		t.Fatalf("pool shards=%d version=%d", pl.Shards(), pl.Version())
	}
	// Growing 1 -> 4 must move at least one block off shard 0.
	if len(rep.MovedBlocks) == 0 {
		t.Fatal("no blocks moved on 1 -> 4 resize")
	}
	for _, id := range rep.MovedBlocks {
		if got := pl.blocks[id].log().Fingerprint(); got != before[id] {
			t.Fatalf("block %d fingerprint %s != %s after rebalance", id, got, before[id])
		}
	}
	// The replayed engines carry the same placements.
	afterAssign := pl.Assignment()
	for s := 0; s < 4; s++ {
		for m := 0; m < 4; m++ {
			if beforeAssign.Get(s, m) != afterAssign.Get(s, m) {
				t.Fatalf("assignment changed at (%d,%d) across rebalance", s, m)
			}
		}
	}
	// Moved blocks bootstrap again (no partition survives the replay)
	// and the pool keeps optimizing.
	if _, err := pl.Reoptimize(ctx); err != nil {
		t.Fatalf("post-resize pass: %v", err)
	}

	if _, err := pl.Resize(0); err == nil {
		t.Fatal("resize to 0 shards accepted")
	}
}

func TestExecuteAggregatesBlocks(t *testing.T) {
	p, a := twoBlockProblem()
	opts := testEngineOpts()
	opts.SkipMigration = false
	pl, err := New(p, a, Options{Shards: 2, Engine: opts}, nil)
	if err != nil {
		t.Fatalf("new pool: %v", err)
	}
	ctx := context.Background()
	if _, err := pl.Reoptimize(ctx); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	if _, err := pl.Apply(
		lifetime.ScaleService{Service: 1, Replicas: 4},
		lifetime.ScaleService{Service: 3, Replicas: 4},
	); err != nil {
		t.Fatalf("churn: %v", err)
	}
	rep, err := pl.Execute(ctx, func(blockID int, gMach []int, start *cluster.Assignment) exec.Fabric {
		return exec.NewInstantFabric(start)
	}, exec.Options{})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if rep.Outcome != exec.OutcomeCompleted {
		t.Fatalf("outcome = %v err=%q", rep.Outcome, rep.Err)
	}
	if rep.FloorViolations != 0 {
		t.Fatalf("floor violations = %d, want 0", rep.FloorViolations)
	}
	got := rep.Final
	if got.Placed(1) != 4 || got.Placed(3) != 4 {
		t.Fatalf("final placements %d/%d, want 4/4", got.Placed(1), got.Placed(3))
	}
}

func TestBlocksPartitionCoversCluster(t *testing.T) {
	p, _ := twoBlockProblem()
	blocks := partition.Blocks(p)
	if len(blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(blocks))
	}
	seenS, seenM := map[int]bool{}, map[int]bool{}
	for _, b := range blocks {
		for _, s := range b.Services {
			if seenS[s] {
				t.Fatalf("service %d in two blocks", s)
			}
			seenS[s] = true
		}
		for _, m := range b.Machines {
			if seenM[m] {
				t.Fatalf("machine %d in two blocks", m)
			}
			seenM[m] = true
		}
	}
	if len(seenS) != p.N() || len(seenM) != p.M() {
		t.Fatalf("coverage %d/%d services, %d/%d machines", len(seenS), p.N(), len(seenM), p.M())
	}
}

func TestRendezvousStability(t *testing.T) {
	// Growing the shard count must never move a block between two shards
	// that both survive: the argmax over a superset either keeps the old
	// winner or picks a new shard.
	for blocks := 1; blocks <= 64; blocks *= 4 {
		for s := 1; s < 8; s++ {
			for b := 0; b < blocks; b++ {
				old := rendezvousOwner(b, s)
				next := rendezvousOwner(b, s+1)
				if next != old && next != s {
					t.Fatalf("block %d moved %d -> %d when adding shard %d", b, old, next, s)
				}
			}
		}
	}
}

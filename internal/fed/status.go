package fed

import (
	"hash/fnv"
	"sort"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/incr"
	"github.com/cloudsched/rasa/internal/lifetime"
)

// ShardInfo summarizes one shard worker for GET /v1/shards.
type ShardInfo struct {
	ID           int    `json:"id"`
	Blocks       []int  `json:"blocks"`
	Services     int    `json:"services"`
	Machines     int    `json:"machines"`
	EventsRouted uint64 `json:"eventsRouted"`
}

// BlockInfo summarizes one compatibility block for GET /v1/shards.
type BlockInfo struct {
	ID          int    `json:"id"`
	Shard       int    `json:"shard"`
	Services    int    `json:"services"`
	Machines    int    `json:"machines"`
	LogHead     uint64 `json:"logHead"`
	Fingerprint string `json:"fingerprint"`
}

// Status is the GET /v1/shards response body.
type Status struct {
	Version int         `json:"version"`
	Shards  []ShardInfo `json:"shards"`
	Blocks  []BlockInfo `json:"blocks"`
}

// Status reports the shard topology: the versioned block-to-shard map,
// per-shard ownership and routing volume, and per-block log positions.
func (pl *Pool) Status() *Status {
	pl.mu.RLock()
	defer pl.mu.RUnlock()
	st := &Status{Version: pl.shardMap.version}
	shards := make([]ShardInfo, pl.shardMap.shards)
	for i := range shards {
		shards[i].ID = i
	}
	for _, b := range pl.blocks {
		b.mu.Lock()
		info := BlockInfo{
			ID:          b.id,
			Shard:       pl.shardMap.owner[b.id],
			Services:    len(b.gSvc),
			Machines:    len(b.gMach),
			LogHead:     b.log().Head(),
			Fingerprint: b.log().Fingerprint(),
		}
		events := b.events
		b.mu.Unlock()
		st.Blocks = append(st.Blocks, info)
		sh := &shards[info.Shard]
		sh.Blocks = append(sh.Blocks, b.id)
		sh.Services += info.Services
		sh.Machines += info.Machines
		sh.EventsRouted += events
	}
	for i := range shards {
		sort.Ints(shards[i].Blocks)
	}
	st.Shards = shards
	return st
}

// Stats aggregates the per-block engine states into the same shape the
// single-engine session reports from GET /v1/cluster: sums where the
// fields are counts, the global denominator for normalized gain, and a
// combined fingerprint (order-independent FNV-1a over the sorted block
// fingerprints — it differs from a single engine's fingerprint of the
// same cluster, since each block hashes its own index space). LogHead
// is the pool journal's head: the global event stream position.
func (pl *Pool) Stats() incr.Stats {
	pl.mu.RLock()
	blocks := append([]*block(nil), pl.blocks...)
	crossTotal := pl.crossTotal
	pl.mu.RUnlock()

	var out incr.Stats
	var fps []string
	havePartition := true
	baseWeighted := 0.0
	for _, b := range blocks {
		b.mu.Lock()
		s := b.eng.State().Snapshot()
		b.mu.Unlock()
		out.Services += s.Services
		out.Machines += s.Machines
		out.EventsApplied += s.EventsApplied
		out.TotalSubproblems += s.TotalSubproblems
		out.DirtySubproblems += s.DirtySubproblems
		out.DirtyTrivial = out.DirtyTrivial || s.DirtyTrivial
		out.GainedAffinity += s.GainedAffinity
		out.TotalAffinity += s.TotalAffinity
		baseWeighted += s.BaselineGain * s.TotalAffinity
		havePartition = havePartition && s.HavePartition
		fps = append(fps, s.Fingerprint)
	}
	out.HavePartition = havePartition
	out.TotalAffinity += crossTotal
	if out.TotalAffinity > 0 {
		out.NormalizedGain = out.GainedAffinity / out.TotalAffinity
		out.BaselineGain = baseWeighted / out.TotalAffinity
	}
	sort.Strings(fps)
	h := fnv.New64a()
	for _, fp := range fps {
		h.Write([]byte(fp))
		h.Write([]byte{0})
	}
	out.Fingerprint = "fed-" + hex16(h.Sum64())
	pl.jmu.Lock()
	out.LogHead = uint64(len(pl.journal))
	pl.jmu.Unlock()
	return out
}

func hex16(v uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// Head returns the pool journal's newest sequence number.
func (pl *Pool) Head() uint64 {
	pl.jmu.Lock()
	defer pl.jmu.Unlock()
	return uint64(len(pl.journal))
}

// Entries returns a copy of the journal entries with sequence >= from
// (1-based), mirroring lifetime.Log.Entries for GET /v1/cluster/log.
func (pl *Pool) Entries(from uint64) []lifetime.EntryJSON {
	pl.jmu.Lock()
	defer pl.jmu.Unlock()
	if from < 1 {
		from = 1
	}
	if from > uint64(len(pl.journal)) {
		return nil
	}
	return append([]lifetime.EntryJSON(nil), pl.journal[from-1:]...)
}

// Assignment assembles the global assignment from the per-block live
// states: the pool-wide view of where every container is, in global
// indices.
func (pl *Pool) Assignment() *cluster.Assignment {
	pl.mu.RLock()
	defer pl.mu.RUnlock()
	out := cluster.NewAssignment(len(pl.svcOwner), len(pl.machOwner))
	for _, b := range pl.blocks {
		b.mu.Lock()
		b.eng.State().Assignment().EachPlacement(func(ls, lm, count int) {
			out.Set(b.gSvc[ls], b.gMach[lm], count)
		})
		b.mu.Unlock()
	}
	return out
}

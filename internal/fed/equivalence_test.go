package fed

import (
	"context"
	"math"
	"testing"
	"time"

	"github.com/cloudsched/rasa/internal/incr"
	"github.com/cloudsched/rasa/internal/lifetime"
	"github.com/cloudsched/rasa/internal/partition"
	"github.com/cloudsched/rasa/internal/workload"
)

// equivalencePreset is a deliberately small three-zone cluster: the
// solvers are anytime (deadline-bounded branch and bound), so exact
// arm-for-arm equality requires every subproblem to reach proven
// optimality well inside the budget — which only small blocks
// guarantee.
func equivalencePreset() workload.Preset {
	return workload.Preset{
		Name: "EQ", Services: 36, Containers: 240, Machines: 12,
		Beta: 1.7, AffinityFraction: 0.6, Zones: 3, CommunitySize: 6,
		Utilization: 0.5, Seed: 77,
	}
}

// equivalenceOpts pins every source of solver nondeterminism so the
// single-engine and federated arms perform bit-identical work:
// Parallelism 1 (ordered subproblem solves), MasterRatio 1 (no sampled
// master sets), TargetSize >= any block (stage 4 never consumes its
// rng, which the arms would otherwise consume in different orders),
// ForceFull (no per-arm escalation divergence) and a generous budget so
// no solve is cut off mid-search.
func equivalenceOpts(n int) incr.Options {
	return incr.Options{
		Budget:        60 * time.Second,
		ForceFull:     true,
		SkipMigration: true,
		Parallelism:   1,
		Partition:     partition.Options{MasterRatio: 1, TargetSize: n + 1, Seed: 11},
	}
}

// TestBlockIsolationEquivalence is the federation's correctness
// property: re-optimizing each compatibility block in isolation and
// merging the results yields the same assignment and the same gained
// affinity as running one engine over the whole cluster on the same
// event stream. This is the paper's stage-3 independence argument made
// executable.
func TestBlockIsolationEquivalence(t *testing.T) {
	preset := equivalencePreset()
	c, err := workload.Generate(preset)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	n := c.Problem.N()
	opts := equivalenceOpts(n)

	// Arm A: one engine over the global cluster.
	cSingle, err := workload.Generate(preset)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	st, err := incr.NewState(cSingle.Problem, cSingle.Original)
	if err != nil {
		t.Fatalf("state: %v", err)
	}
	single := incr.New(st, opts, nil)

	// Arm B: the federated pool over an identical copy.
	pl, err := New(c.Problem, c.Original, Options{Shards: 3, Engine: opts}, nil)
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	if pl.Blocks() < 2 {
		t.Fatalf("preset produced %d blocks; equivalence needs >= 2", pl.Blocks())
	}

	ctx := context.Background()
	compare := func(stage string) {
		t.Helper()
		sa := st.Assignment()
		fa := pl.Assignment()
		for s := 0; s < st.Problem().N(); s++ {
			for m := 0; m < st.Problem().M(); m++ {
				if sa.Get(s, m) != fa.Get(s, m) {
					t.Fatalf("%s: assignment differs at (%d,%d): single=%d fed=%d",
						stage, s, m, sa.Get(s, m), fa.Get(s, m))
				}
			}
		}
		sst := st.Snapshot()
		fst := pl.Stats()
		if math.Abs(sst.GainedAffinity-fst.GainedAffinity) > 1e-6 {
			t.Fatalf("%s: gained affinity single=%v fed=%v", stage, sst.GainedAffinity, fst.GainedAffinity)
		}
		if math.Abs(sst.TotalAffinity-fst.TotalAffinity) > 1e-6 {
			t.Fatalf("%s: total affinity single=%v fed=%v", stage, sst.TotalAffinity, fst.TotalAffinity)
		}
		if math.Abs(sst.NormalizedGain-fst.NormalizedGain) > 1e-9 {
			t.Fatalf("%s: normalized gain single=%v fed=%v", stage, sst.NormalizedGain, fst.NormalizedGain)
		}
	}

	reoptBoth := func(stage string) {
		t.Helper()
		if _, err := single.Reoptimize(ctx); err != nil {
			t.Fatalf("%s: single reoptimize: %v", stage, err)
		}
		if _, err := pl.Reoptimize(ctx); err != nil {
			t.Fatalf("%s: fed reoptimize: %v", stage, err)
		}
		compare(stage)
	}

	reoptBoth("bootstrap")

	// A churn batch touching both blocks: scales, an intra-block and a
	// cross-block affinity change, one drain. Identical global-index
	// events feed both arms.
	p := st.Problem()
	var batch []lifetime.Event
	for s := 0; s < p.N() && len(batch) < 6; s += p.N() / 6 {
		batch = append(batch, lifetime.ScaleService{Service: s, Replicas: p.Services[s].Replicas + 1})
	}
	// First affinity edge: reweight (intra-block by construction — the
	// generator only wires edges within a zone).
	if edges := p.Affinity.Edges(); len(edges) > 0 {
		e := edges[0]
		batch = append(batch, lifetime.UpdateAffinity{A: e.U, B: e.V, Weight: e.Weight * 2})
	}
	// A cross-block pair: one service per zone (the pool books it in the
	// ledger; the single engine adds an edge that can never be gained).
	var za, zb = -1, -1
	for s := 0; s < p.N(); s++ {
		switch pl.svcOwner[s] {
		case 0:
			if za < 0 {
				za = s
			}
		case 1:
			if zb < 0 {
				zb = s
			}
		}
	}
	if za >= 0 && zb >= 0 {
		batch = append(batch, lifetime.UpdateAffinity{A: za, B: zb, Weight: 4})
	}
	batch = append(batch, lifetime.DrainMachine{Machine: 1})

	for i, ev := range batch {
		if _, err := st.Apply(ev); err != nil {
			t.Fatalf("single apply %d (%T): %v", i, ev, err)
		}
	}
	if nApplied, err := pl.Apply(batch...); err != nil || nApplied != len(batch) {
		t.Fatalf("fed apply: n=%d err=%v", nApplied, err)
	}
	reoptBoth("after churn")

	// Second wave on the already-optimized state.
	var wave2 []lifetime.Event
	for s := 2; s < p.N() && len(wave2) < 4; s += p.N() / 4 {
		r := st.Problem().Services[s].Replicas
		if r > 1 {
			wave2 = append(wave2, lifetime.ScaleService{Service: s, Replicas: r - 1})
		}
	}
	wave2 = append(wave2, lifetime.ReplanRequested{Reason: "test"})
	for i, ev := range wave2 {
		if _, err := st.Apply(ev); err != nil {
			t.Fatalf("single apply wave2 %d: %v", i, ev)
		}
	}
	if _, err := pl.Apply(wave2...); err != nil {
		t.Fatalf("fed apply wave2: %v", err)
	}
	reoptBoth("after wave 2")
}

// TestEquivalenceWithMigration repeats the property with migration
// planning enabled: the adopted targets and the executed placements
// must still coincide.
func TestEquivalenceWithMigration(t *testing.T) {
	preset := equivalencePreset()
	cs, err := workload.Generate(preset)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	cf, err := workload.Generate(preset)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	opts := equivalenceOpts(cs.Problem.N())
	opts.SkipMigration = false

	st, err := incr.NewState(cs.Problem, cs.Original)
	if err != nil {
		t.Fatalf("state: %v", err)
	}
	single := incr.New(st, opts, nil)
	pl, err := New(cf.Problem, cf.Original, Options{Shards: 3, Engine: opts}, nil)
	if err != nil {
		t.Fatalf("pool: %v", err)
	}

	ctx := context.Background()
	sres, err := single.Reoptimize(ctx)
	if err != nil {
		t.Fatalf("single: %v", err)
	}
	fres, err := pl.Reoptimize(ctx)
	if err != nil {
		t.Fatalf("fed: %v", err)
	}
	if sres.Moves != fres.Moves {
		t.Fatalf("moves single=%d fed=%d", sres.Moves, fres.Moves)
	}
	sa, fa := st.Assignment(), pl.Assignment()
	for s := 0; s < st.Problem().N(); s++ {
		for m := 0; m < st.Problem().M(); m++ {
			if sa.Get(s, m) != fa.Get(s, m) {
				t.Fatalf("assignment differs at (%d,%d): single=%d fed=%d", s, m, sa.Get(s, m), fa.Get(s, m))
			}
		}
	}
	// The merged plan relocates the same containers the single plan does.
	if (sres.Plan == nil) != (fres.Plan == nil) {
		t.Fatalf("plan presence differs: single=%v fed=%v", sres.Plan != nil, fres.Plan != nil)
	}
	if sres.Plan != nil && sres.Plan.Moves != fres.Plan.Moves {
		t.Fatalf("plan moves single=%d fed=%d", sres.Plan.Moves, fres.Plan.Moves)
	}
}

package learn_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/cloudsched/rasa/internal/cluster"
	. "github.com/cloudsched/rasa/internal/learn"
	"github.com/cloudsched/rasa/internal/partition"
	"github.com/cloudsched/rasa/internal/pool"
	"github.com/cloudsched/rasa/internal/selector"
	"github.com/cloudsched/rasa/internal/workload"
)

// benchSubproblems partitions a small synthetic cluster into real
// subproblems so trainer examples carry genuine feature graphs.
func benchSubproblems(t *testing.T, seed int64) []*cluster.Subproblem {
	t.Helper()
	c, err := workload.Generate(workload.Preset{
		Name: "learn", Services: 60, Containers: 320, Machines: 16,
		Beta: 1.6, AffinityFraction: 0.6, Zones: 1, Utilization: 0.55, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	var subs []*cluster.Subproblem
	for r := 0; r < 3; r++ {
		pres, err := partition.Multistage(context.Background(), c.Problem, c.Original, partition.Options{
			TargetSize: 6 + 2*r, Seed: seed + int64(r),
		})
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, pres.Subproblems...)
	}
	return subs
}

// heuristicLabel fabricates a deterministic, learnable oracle: label
// with the heuristic rule (which depends only on subproblem shape).
func heuristicLabel(sp *cluster.Subproblem) selector.Labeled {
	return selector.Labeled{Sub: sp, Winner: selector.Heuristic{}.Select(sp)}
}

// flippedLabel is the same oracle with every label inverted.
func flippedLabel(sp *cluster.Subproblem) selector.Labeled {
	w := pool.CG
	if (selector.Heuristic{}).Select(sp) == pool.CG {
		w = pool.MIP
	}
	return selector.Labeled{Sub: sp, Winner: w}
}

func TestUntrainedPolicyRaces(t *testing.T) {
	subs := benchSubproblems(t, 7)
	p := &Policy{Trainer: NewTrainer(Options{}), MinConfidence: 0.8}
	d := p.Decide(subs[0])
	if d.Algorithm != pool.Race || d.Source != "race-untrained" {
		t.Fatalf("untrained decision %+v, want Race/race-untrained", d)
	}
	if p.Name() != "LEARNED-GCN" {
		t.Fatalf("policy name %q", p.Name())
	}
}

// TestTrainerRetrainsAndServes feeds a consistent oracle and checks the
// trainer installs a model, the policy starts trusting it, and holdout
// accuracy on the learnable rule is high.
func TestTrainerRetrainsAndServes(t *testing.T) {
	subs := benchSubproblems(t, 11)
	tr := NewTrainer(Options{RetrainEvery: 16, MinExamples: 12, Epochs: 400, Seed: 1})
	for _, sp := range subs {
		tr.Observe(heuristicLabel(sp))
	}
	tr.Retrain()
	m := tr.Model()
	if m == nil {
		t.Fatalf("no model after %d examples", len(subs))
	}
	if m.Version < 1 {
		t.Fatalf("version %d", m.Version)
	}
	st := tr.Stats()
	if st.Observed != int64(len(subs)) || st.Retrains < 1 {
		t.Fatalf("stats %+v", st)
	}
	// The heuristic oracle is a function of the feature graph's shape, so
	// the GCN should fit it well.
	if m.HoldoutAccuracy < 0.6 {
		t.Fatalf("holdout accuracy %v", m.HoldoutAccuracy)
	}
	p := &Policy{Trainer: tr, MinConfidence: 0}
	d := p.Decide(subs[0])
	if d.Source != "gcn" && d.Source != "tractability-guard" {
		t.Fatalf("trained decision source %q", d.Source)
	}
}

// TestRollbackGate trains a good model, then floods the buffer with
// label-flipped examples: the retrained candidate regresses on the
// surviving holdout and must be rejected, leaving the incumbent
// installed.
func TestRollbackGate(t *testing.T) {
	subs := benchSubproblems(t, 13)
	tr := NewTrainer(Options{
		// Large capacity and manual retrains: the test controls cadence.
		Capacity: 4 * len(subs), RetrainEvery: 1 << 30, MinExamples: 12,
		Epochs: 400, Seed: 1,
	})
	for _, sp := range subs {
		tr.Observe(heuristicLabel(sp))
	}
	if !tr.Retrain() {
		t.Fatal("initial retrain did not install")
	}
	v1 := tr.Model().Version

	// Flood the training ring with label-flipped examples while steering
	// the every-5th holdout slots back to the true oracle: the holdout
	// keeps measuring the real rule, the candidate fits the inverse one
	// and must score near zero against it.
	for round := 0; round < 6; round++ {
		for _, sp := range subs {
			if (tr.Stats().Observed+1)%5 == 0 {
				tr.Observe(heuristicLabel(sp))
			} else {
				tr.Observe(flippedLabel(sp))
			}
		}
	}
	if tr.Retrain() {
		t.Fatal("regressed candidate was installed")
	}
	st := tr.Stats()
	if st.Rollbacks < 1 {
		t.Fatalf("no rollback recorded: %+v", st)
	}
	if got := tr.Model().Version; got != v1 {
		t.Fatalf("version moved %d -> %d across a rollback", v1, got)
	}
}

// TestHotSwapUnderConcurrentDecides hammers Decide from many goroutines
// while the trainer retrains and hot-swaps underneath (run under
// -race). Every decision must stay valid mid-swap.
func TestHotSwapUnderConcurrentDecides(t *testing.T) {
	subs := benchSubproblems(t, 17)
	tr := NewTrainer(Options{RetrainEvery: 8, MinExamples: 8, Epochs: 60, Seed: 1})
	p := &Policy{Trainer: tr, MinConfidence: 0.5}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				d := p.Decide(subs[(i+g)%len(subs)])
				switch d.Algorithm {
				case pool.CG, pool.MIP, pool.Race:
				default:
					t.Errorf("invalid algorithm %v", d.Algorithm)
					return
				}
			}
		}(g)
	}
	// Feed examples (triggering synchronous retrains + hot-swaps) and an
	// occasional direct install, concurrently with the deciders.
	for round := 0; round < 3; round++ {
		for _, sp := range subs {
			p.ObserveRace(heuristicLabel(sp))
		}
	}
	stop.Store(true)
	wg.Wait()

	st := tr.Stats()
	if st.Retrains < 2 {
		t.Fatalf("expected repeated hot-swaps, got %+v", st)
	}
	if m := tr.Model(); m == nil || m.Version < 1 {
		t.Fatalf("no model installed after concurrent run")
	}
}

// TestInstallBypassesGate checks operator-supplied models install
// unconditionally and bump the version.
func TestInstallBypassesGate(t *testing.T) {
	subs := benchSubproblems(t, 19)
	tr := NewTrainer(Options{RetrainEvery: 1 << 30, MinExamples: 12, Epochs: 200, Seed: 1})
	for _, sp := range subs {
		tr.Observe(heuristicLabel(sp))
	}
	tr.Retrain()
	v := tr.Model().Version
	m := tr.Install(tr.Model().GCN)
	if m.Version != v+1 {
		t.Fatalf("install version %d, want %d", m.Version, v+1)
	}
}

// TestTieExamplesDownWeighted checks ties enter the buffer down-
// weighted and never the holdout.
func TestTieExamplesDownWeighted(t *testing.T) {
	subs := benchSubproblems(t, 23)
	tr := NewTrainer(Options{RetrainEvery: 1 << 30, MinExamples: 1 << 30})
	for _, sp := range subs {
		l := heuristicLabel(sp)
		l.Tie = true
		tr.Observe(l)
	}
	st := tr.Stats()
	if st.Ties != int64(len(subs)) {
		t.Fatalf("ties %d, want %d", st.Ties, len(subs))
	}
	if st.HoldoutSize != 0 {
		t.Fatalf("ties leaked into holdout: %+v", st)
	}
	if st.Buffered != len(subs) {
		t.Fatalf("ties not buffered: %+v", st)
	}
}

// Package learn closes the paper's learning loop online: race outcomes
// observed in the serving path (core passes, incr delta re-optimizations,
// fed blocks) stream into a bounded replay buffer, a trainer
// periodically refits the Section IV-D GCN classifier on the buffer, and
// the refreshed model is hot-swapped atomically under running decisions
// — with a rollback gate that refuses any candidate whose holdout
// accuracy regresses. The learned policy races only where the current
// model is unsure, so the 2x labelling cost of Section IV-D's offline
// procedure is paid only on the shrinking low-confidence region.
package learn

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/gnn"
	"github.com/cloudsched/rasa/internal/pool"
	"github.com/cloudsched/rasa/internal/selector"
)

// Options tunes a Trainer.
type Options struct {
	// Capacity bounds the replay buffer (oldest examples evicted first).
	// Default 256.
	Capacity int
	// HoldoutEvery reserves every k-th observed example for the holdout
	// split that gates hot-swaps; those examples are never trained on.
	// Default 5 (20% holdout).
	HoldoutEvery int
	// RetrainEvery triggers a retrain after this many fresh non-tie
	// examples. Default 32.
	RetrainEvery int
	// MinExamples is the smallest training split a retrain will fit on.
	// Default 24.
	MinExamples int
	// Epochs and LR parameterize each refit. Defaults 300 and 0.002
	// (see selector.TrainGCN for why the rate is small).
	Epochs int
	LR     float64
	// Hidden is the GCN hidden width. Default 16.
	Hidden int
	// Seed drives weight init and shuffling; the model version is mixed
	// in so successive refits explore different initializations.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Capacity <= 0 {
		o.Capacity = 256
	}
	if o.HoldoutEvery <= 1 {
		o.HoldoutEvery = 5
	}
	if o.RetrainEvery <= 0 {
		o.RetrainEvery = 32
	}
	if o.MinExamples <= 0 {
		o.MinExamples = 24
	}
	if o.Epochs <= 0 {
		o.Epochs = 300
	}
	if o.LR <= 0 {
		o.LR = 0.002
	}
	if o.Hidden <= 0 {
		o.Hidden = 16
	}
	return o
}

// Model is one immutable trained-model version. Decisions load it with
// a single atomic pointer read; retraining installs a fresh value, so a
// model observed mid-decision stays valid for that decision's lifetime.
type Model struct {
	GCN *gnn.GCN
	// Version counts installed models (imports included), starting at 1.
	Version int
	// HoldoutAccuracy is the model's accuracy on the holdout split at
	// install time (predictor-vs-oracle, ties excluded).
	HoldoutAccuracy float64
}

// Stats is a point-in-time snapshot of the trainer for /v1/policy and
// the rasa_policy_* metrics.
type Stats struct {
	Version         int     `json:"version"`
	HoldoutAccuracy float64 `json:"holdoutAccuracy"`
	Observed        int64   `json:"observed"`
	Ties            int64   `json:"ties"`
	Buffered        int     `json:"buffered"`
	HoldoutSize     int     `json:"holdoutSize"`
	Retrains        int64   `json:"retrains"`
	Rollbacks       int64   `json:"rollbacks"`
}

// Trainer is the online learning loop: a bounded replay buffer of race
// outcomes plus a versioned, atomically hot-swapped GCN. All methods
// are safe for concurrent use; Model is wait-free.
type Trainer struct {
	opts  Options
	model atomic.Pointer[Model]

	mu         sync.Mutex
	train      []gnn.Sample // replay ring, training split
	trainNext  int
	holdout    []gnn.Sample // replay ring, holdout split
	holdNext   int
	observed   int64
	ties       int64
	sinceTrain int
	retrains   int64
	rollbacks  int64
	version    int
}

// NewTrainer builds a trainer with no model: a Policy on top of it
// races everything until the first retrain installs one.
func NewTrainer(opts Options) *Trainer {
	return &Trainer{opts: opts.withDefaults()}
}

// Model returns the current model version, or nil before the first
// install. The returned value is immutable.
func (t *Trainer) Model() *Model { return t.model.Load() }

// Stats snapshots the trainer state.
func (t *Trainer) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Stats{
		Observed:    t.observed,
		Ties:        t.ties,
		Buffered:    len(t.train),
		HoldoutSize: len(t.holdout),
		Retrains:    t.retrains,
		Rollbacks:   t.rollbacks,
	}
	if m := t.model.Load(); m != nil {
		s.Version = m.Version
		s.HoldoutAccuracy = m.HoldoutAccuracy
	}
	return s
}

// Observe feeds one labelled race outcome into the replay buffer and
// retrains when enough fresh examples accumulated. Tied races carry a
// mostly-noise winner label (see selector.Labeled.Tie): they train at
// selector.TieWeight, never land in the holdout split (which scores
// predictor-vs-oracle on decisive labels only), and do not advance the
// retrain cadence. Retraining happens synchronously on the calling
// goroutine; concurrent observers queue on the trainer lock while
// decisions keep reading the old model lock-free.
func (t *Trainer) Observe(l selector.Labeled) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.observed++
	aHat, x := gnn.FeatureGraph(l.Sub)
	s := gnn.Sample{AHat: aHat, X: x, Label: labelClass(l.Winner)}
	if l.Tie {
		t.ties++
		s.Weight = selector.TieWeight
		pushRing(&t.train, &t.trainNext, s, t.opts.Capacity)
		return
	}
	if t.opts.HoldoutEvery > 1 && t.observed%int64(t.opts.HoldoutEvery) == 0 {
		pushRing(&t.holdout, &t.holdNext, s, t.opts.Capacity/t.opts.HoldoutEvery+1)
	} else {
		pushRing(&t.train, &t.trainNext, s, t.opts.Capacity)
	}
	t.sinceTrain++
	if t.sinceTrain >= t.opts.RetrainEvery && len(t.train) >= t.opts.MinExamples {
		t.retrainLocked()
	}
}

// ObserveRace implements selector.Observer, so a bare Trainer can be
// handed anywhere an observing policy is expected.
func (t *Trainer) ObserveRace(l selector.Labeled) { t.Observe(l) }

// Retrain forces a refit on the current buffer regardless of cadence
// (warmup and tests). It reports whether a new model was installed —
// false when the buffer is still short or the candidate was rolled
// back.
func (t *Trainer) Retrain() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.train) < t.opts.MinExamples {
		return false
	}
	return t.retrainLocked()
}

// retrainLocked fits a candidate on the training split and installs it
// only if its holdout accuracy does not regress the incumbent's. Called
// with t.mu held.
func (t *Trainer) retrainLocked() bool {
	t.sinceTrain = 0
	t.retrains++
	seed := t.opts.Seed + int64(t.version)*7919
	rng := rand.New(rand.NewSource(seed))
	cand := gnn.NewGCN(2, t.opts.Hidden, 2, rng)
	cand.Fit(t.train, gnn.TrainConfig{Epochs: t.opts.Epochs, LR: t.opts.LR, Seed: seed})

	candAcc := cand.Accuracy(t.holdout)
	if cur := t.model.Load(); cur != nil && len(t.holdout) > 0 {
		// Re-score the incumbent on today's holdout: its install-time
		// accuracy may be stale after buffer churn.
		if curAcc := cur.GCN.Accuracy(t.holdout); candAcc < curAcc {
			t.rollbacks++
			return false
		}
	}
	t.installLocked(cand, candAcc)
	return true
}

// Install hot-swaps an externally supplied model (PUT /v1/policy),
// bypassing the rollback gate — the operator asked for exactly this
// model. Its holdout accuracy is scored on the current holdout split.
func (t *Trainer) Install(g *gnn.GCN) *Model {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.installLocked(g, g.Accuracy(t.holdout))
	return t.model.Load()
}

func (t *Trainer) installLocked(g *gnn.GCN, holdoutAcc float64) {
	t.version++
	t.model.Store(&Model{GCN: g, Version: t.version, HoldoutAccuracy: holdoutAcc})
}

// pushRing appends s to a capacity-bounded ring, evicting oldest-first.
func pushRing(buf *[]gnn.Sample, next *int, s gnn.Sample, capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	if len(*buf) < capacity {
		*buf = append(*buf, s)
		return
	}
	(*buf)[*next] = s
	*next = (*next + 1) % capacity
}

func labelClass(a pool.Algorithm) int {
	if a == pool.MIP {
		return 1
	}
	return 0
}

// Policy is the learned serving policy: GCN-first with the trainer's
// current model, racing only when the model is missing or unsure. It
// implements selector.Policy and selector.Observer, so any solve path
// it is plugged into both consults it and feeds raced outcomes back —
// one Policy value (or several sharing a Trainer) closes the loop.
type Policy struct {
	Trainer *Trainer
	// MinConfidence is the race threshold: predictions whose winning-
	// class probability falls below it are raced instead of trusted.
	// Zero disables the gate (never race once a model exists).
	MinConfidence float64
}

// Decide implements selector.Policy.
func (p *Policy) Decide(sp *cluster.Subproblem) selector.Decision {
	if !selector.MIPTractable(sp) {
		// Racing an intractable formulation would burn the MIP arm's CPU
		// for a foregone conclusion; don't even when untrained.
		return selector.Decision{Algorithm: pool.CG, Confidence: 1, Source: "tractability-guard"}
	}
	m := p.Trainer.Model()
	if m == nil {
		return selector.Decision{Algorithm: pool.Race, Confidence: 0, Source: "race-untrained"}
	}
	return selector.GCNPolicy{Model: m.GCN, MinConfidence: p.MinConfidence}.Decide(sp)
}

// ObserveRace implements selector.Observer.
func (p *Policy) ObserveRace(l selector.Labeled) { p.Trainer.Observe(l) }

// Name implements selector.Policy.
func (p *Policy) Name() string { return "LEARNED-GCN" }

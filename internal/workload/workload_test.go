package workload

import (
	"math"
	"testing"

	"github.com/cloudsched/rasa/internal/powerlaw"
)

// smallPreset is a quick-to-generate cluster for unit tests.
func smallPreset(seed int64) Preset {
	return Preset{
		Name: "small", Services: 60, Containers: 320, Machines: 14,
		Beta: 1.6, AffinityFraction: 0.6, Zones: 2, Utilization: 0.55, Seed: seed,
	}
}

func TestGenerateSmall(t *testing.T) {
	c, err := Generate(smallPreset(1))
	if err != nil {
		t.Fatal(err)
	}
	p := c.Problem
	if p.N() != 60 || p.M() != 14 {
		t.Fatalf("shape: %d services, %d machines", p.N(), p.M())
	}
	var containers int
	for _, s := range p.Services {
		if s.Replicas < 1 {
			t.Fatalf("service with %d replicas", s.Replicas)
		}
		containers += s.Replicas
	}
	if containers != 320 {
		t.Fatalf("containers = %d, want exactly 320", containers)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateNormalizedAffinity(t *testing.T) {
	c, err := Generate(smallPreset(2))
	if err != nil {
		t.Fatal(err)
	}
	if tw := c.Problem.Affinity.TotalWeight(); math.Abs(tw-1.0) > 1e-9 {
		t.Fatalf("total affinity = %v, want 1.0", tw)
	}
}

func TestGenerateOriginalDeploymentFeasible(t *testing.T) {
	c, err := Generate(smallPreset(3))
	if err != nil {
		t.Fatal(err)
	}
	vs := c.Original.Check(c.Problem, true)
	if len(vs) != 0 {
		t.Fatalf("ORIGINAL deployment violations: %v", vs[:minInt(3, len(vs))])
	}
}

func TestGenerateZoneCompatibility(t *testing.T) {
	c, err := Generate(smallPreset(4))
	if err != nil {
		t.Fatal(err)
	}
	p := c.Problem
	if p.Schedulable == nil {
		t.Fatal("zoned preset must produce a schedulability matrix")
	}
	// Affinity edges never cross zones: both endpoints share at least
	// one compatible machine.
	for _, e := range p.Affinity.Edges() {
		share := false
		for m := 0; m < p.M(); m++ {
			if p.CanHost(e.U, m) && p.CanHost(e.V, m) {
				share = true
				break
			}
		}
		if !share {
			t.Fatalf("edge (%d,%d) crosses zones", e.U, e.V)
		}
	}
}

func TestGenerateSingleZoneHasNoMatrix(t *testing.T) {
	ps := smallPreset(5)
	ps.Zones = 1
	c, err := Generate(ps)
	if err != nil {
		t.Fatal(err)
	}
	if c.Problem.Schedulable != nil {
		t.Fatal("single-zone cluster should not pin services")
	}
}

// TestAffinityIsPowerLaw verifies the Fig. 5 property: ranked total
// affinity fits a power law better than an exponential, with beta > 1.
func TestAffinityIsPowerLaw(t *testing.T) {
	ps := smallPreset(6)
	ps.Services = 200
	ps.Containers = 900
	ps.Machines = 40
	c, err := Generate(ps)
	if err != nil {
		t.Fatal(err)
	}
	ts := c.Problem.Affinity.TotalAffinities()
	var ranked []float64
	for _, s := range c.Problem.Affinity.RankByTotalAffinity() {
		if ts[s] > 0 {
			ranked = append(ranked, ts[s])
		}
	}
	if len(ranked) < 40 {
		t.Fatalf("only %d affinity services", len(ranked))
	}
	ranked = ranked[:40] // Fig. 5 uses the top 40 services
	best, other, err := powerlaw.Compare(ranked)
	if err != nil {
		t.Fatal(err)
	}
	if best.Model != "power-law" {
		t.Fatalf("best fit = %v (R2 %.3f) vs %v (R2 %.3f)", best.Model, best.R2, other.Model, other.R2)
	}
	if best.Param <= 1 {
		t.Fatalf("fitted beta = %v, want > 1 (Assumption 4.1)", best.Param)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallPreset(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallPreset(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Problem.Affinity.M() != b.Problem.Affinity.M() {
		t.Fatal("non-deterministic edge count")
	}
	for s := range a.Problem.Services {
		if a.Problem.Services[s].Replicas != b.Problem.Services[s].Replicas {
			t.Fatal("non-deterministic replicas")
		}
	}
	ga := a.Original.GainedAffinity(a.Problem)
	gb := b.Original.GainedAffinity(b.Problem)
	if math.Abs(ga-gb) > 1e-12 {
		t.Fatal("non-deterministic original deployment")
	}
}

func TestGenerateRejectsBadPresets(t *testing.T) {
	bad := []Preset{
		{Services: 0, Containers: 10, Machines: 5, Beta: 1.5},
		{Services: 10, Containers: 5, Machines: 5, Beta: 1.5},  // containers < services
		{Services: 10, Containers: 20, Machines: 0, Beta: 1.5}, // no machines
		{Services: 10, Containers: 20, Machines: 5, Beta: 1.0}, // beta must exceed 1
	}
	for i, ps := range bad {
		if _, err := Generate(ps); err == nil {
			t.Fatalf("preset %d accepted", i)
		}
	}
}

func TestTableIIPresetShapes(t *testing.T) {
	// The relative ordering of Table II must hold in the scaled presets:
	// M2 largest, then M4, M1, M3.
	sizes := map[string]int{}
	for _, ps := range EvaluationPresets() {
		sizes[ps.Name] = ps.Containers
	}
	if !(sizes["M2"] > sizes["M4"] && sizes["M4"] > sizes["M1"] && sizes["M1"] > sizes["M3"]) {
		t.Fatalf("preset ordering broken: %v", sizes)
	}
	if len(TrainingPresets()) != 4 {
		t.Fatal("want 4 training presets (T1-T4)")
	}
}

func TestGenerateM3FullPreset(t *testing.T) {
	// M3 is the small evaluation cluster; generate it end to end.
	c, err := Generate(M3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Problem.N() != M3.Services {
		t.Fatalf("M3 services = %d", c.Problem.N())
	}
	if vs := c.Original.Check(c.Problem, true); len(vs) != 0 {
		t.Fatalf("M3 original deployment violations: %v", vs[:minInt(3, len(vs))])
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkGenerateSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate(smallPreset(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

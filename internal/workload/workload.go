// Package workload generates synthetic microservice clusters that
// reproduce the statistical structure of the paper's production traces:
// power-law total-affinity distributions (Assumption 4.1, validated in
// Fig. 5), heterogeneous machine specifications, compatibility zones,
// anti-affinity rules, and an initial deployment computed by the
// ORIGINAL production scheduler.
//
// The M1–M4 presets mirror the shapes of Table II scaled roughly 10x
// down (the substrate here is a from-scratch pure-Go solver rather than
// Gurobi on a production fleet); T1–T4 are the smaller training clusters
// used to label the GCN classifier (Section IV-D).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/graph"
	"github.com/cloudsched/rasa/internal/sched"
)

// Preset describes a synthetic cluster.
type Preset struct {
	Name       string
	Services   int
	Containers int     // total container target across all services
	Machines   int     // machine count; capacities scale to fit demand
	Beta       float64 // power-law exponent of total affinity (>1)
	// AffinityFraction is the share of services that participate in the
	// affinity graph at all; the rest form the non-affinity set.
	AffinityFraction float64
	// Zones is the number of disjoint compatibility zones (machines and
	// zoned services are pinned); 1 disables compatibility structure.
	Zones int
	// CommunitySize is the mean size of affinity communities — the
	// independent applications a production cluster hosts. Affinity
	// edges only form within a community, which is what keeps the
	// loss-minimization partitioning loss low (supplementary material:
	// <12%). Default 14.
	CommunitySize int
	// Utilization is the target requested/capacity ratio; capacities are
	// scaled so the ORIGINAL scheduler can always place everything.
	Utilization float64
	Seed        int64
}

// Presets mirroring Table II (scaled ~10x down, same ordering of
// relative sizes: M2 > M4 > M1 > M3).
var (
	M1 = Preset{Name: "M1", Services: 590, Containers: 2564, Machines: 98, Beta: 1.6, AffinityFraction: 0.55, Zones: 2, Utilization: 0.55, Seed: 101}
	M2 = Preset{Name: "M2", Services: 1018, Containers: 15283, Machines: 528, Beta: 1.5, AffinityFraction: 0.6, Zones: 3, Utilization: 0.6, Seed: 102}
	M3 = Preset{Name: "M3", Services: 55, Containers: 349, Machines: 10, Beta: 1.8, AffinityFraction: 0.7, Zones: 1, Utilization: 0.5, Seed: 103}
	M4 = Preset{Name: "M4", Services: 1068, Containers: 11326, Machines: 437, Beta: 1.45, AffinityFraction: 0.5, Zones: 3, Utilization: 0.6, Seed: 104}
)

// TrainingPresets returns the T1–T4 clusters used to label and train the
// GCN algorithm selector. They are distinct from (and smaller than) the
// M1–M4 evaluation clusters, as in the paper.
func TrainingPresets() []Preset {
	return []Preset{
		{Name: "T1", Services: 120, Containers: 700, Machines: 30, Beta: 1.7, AffinityFraction: 0.6, Zones: 1, Utilization: 0.5, Seed: 201},
		{Name: "T2", Services: 200, Containers: 3000, Machines: 100, Beta: 1.5, AffinityFraction: 0.55, Zones: 2, Utilization: 0.55, Seed: 202},
		{Name: "T3", Services: 80, Containers: 400, Machines: 16, Beta: 1.9, AffinityFraction: 0.7, Zones: 1, Utilization: 0.5, Seed: 203},
		{Name: "T4", Services: 260, Containers: 4400, Machines: 160, Beta: 1.45, AffinityFraction: 0.5, Zones: 2, Utilization: 0.6, Seed: 204},
	}
}

// EvaluationPresets returns M1–M4 in Table II order.
func EvaluationPresets() []Preset { return []Preset{M1, M2, M3, M4} }

// Cluster is a generated problem instance plus its initial deployment.
type Cluster struct {
	Preset  Preset
	Problem *cluster.Problem
	// Original is the initial deployment computed by the ORIGINAL
	// scheduler — the "current container deployments" of the data
	// collector (Section III-A) and the WITHOUT-RASA baseline placement.
	Original *cluster.Assignment
}

// machine specification mix: capacity in CPU units (memory is 2x CPU).
var specMix = []struct {
	cpu  float64
	frac float64
}{
	{cpu: 16, frac: 0.45},
	{cpu: 32, frac: 0.35},
	{cpu: 64, frac: 0.20},
}

// Generate builds a cluster from a preset.
func Generate(ps Preset) (*Cluster, error) {
	if ps.Services <= 0 || ps.Machines <= 0 || ps.Containers < ps.Services {
		return nil, fmt.Errorf("workload: invalid preset %+v", ps)
	}
	if ps.Beta <= 1 {
		return nil, fmt.Errorf("workload: Beta must exceed 1 (Assumption 4.1), got %v", ps.Beta)
	}
	if ps.Zones <= 0 {
		ps.Zones = 1
	}
	if ps.Utilization <= 0 || ps.Utilization > 0.95 {
		ps.Utilization = 0.55
	}
	rng := rand.New(rand.NewSource(ps.Seed))
	n, m := ps.Services, ps.Machines

	// Replica counts: Pareto-ish draws normalized to the container
	// target, minimum 1 per service.
	replicas := drawReplicas(rng, n, ps.Containers)

	// Container resource requests: mixture of t-shirt sizes.
	requests := make([]cluster.Resources, n)
	for s := 0; s < n; s++ {
		cpu := []float64{0.5, 1, 2, 4}[weightedPick(rng, []float64{0.35, 0.4, 0.2, 0.05})]
		mem := cpu * (1.5 + rng.Float64())
		requests[s] = cluster.Resources{cpu, mem}
	}

	// Zones: machines split proportionally; every service pinned to one
	// zone (zone share drawn by machine share) so compatibility blocks
	// are exactly the zones.
	machineZone := make([]int, m)
	for j := 0; j < m; j++ {
		machineZone[j] = j % ps.Zones
	}
	serviceZone := make([]int, n)
	for s := 0; s < n; s++ {
		serviceZone[s] = rng.Intn(ps.Zones)
	}

	// Affinity graph: the top AffinityFraction of services (after a
	// random shuffle) participate; total affinity targets follow
	// T(rank) ~ 1/rank^Beta within each zone.
	g := buildAffinity(rng, n, serviceZone, ps)

	// Machines: spec mix, scaled so that total capacity =
	// requested / utilization.
	totalReq := make(cluster.Resources, 2)
	for s := 0; s < n; s++ {
		totalReq = totalReq.Add(requests[s].Scale(float64(replicas[s])))
	}
	machines := buildMachines(rng, m, totalReq, ps.Utilization)
	for j := 0; j < m; j++ {
		machines[j].Name = fmt.Sprintf("m-%04d", j)
	}

	p := &cluster.Problem{
		ResourceNames: []string{"cpu", "memory"},
		Affinity:      g,
	}
	for s := 0; s < n; s++ {
		p.Services = append(p.Services, cluster.Service{
			Name:     fmt.Sprintf("svc-%04d", s),
			Replicas: replicas[s],
			Request:  requests[s],
		})
	}
	p.Machines = machines

	// Schedulability: zone pinning.
	if ps.Zones > 1 {
		p.Schedulable = make([]cluster.Bitmap, n)
		for s := 0; s < n; s++ {
			bm := cluster.NewBitmap(m)
			for j := 0; j < m; j++ {
				if machineZone[j] == serviceZone[s] {
					bm.Set(j)
				}
			}
			p.Schedulable[s] = bm
		}
	}

	// Anti-affinity: production clusters spread almost every replicated
	// service across machines for fault tolerance (service-to-machine
	// anti-affinity, Section II-C), capping per-machine concentration at
	// roughly a sixth of the replicas. A few cross-service isolation
	// sets are added on top. Caps are kept generous enough that the
	// ORIGINAL scheduler can always place everything.
	for s := 0; s < n; s++ {
		if replicas[s] >= 4 && rng.Float64() < 0.4 {
			h := (replicas[s] + 2) / 3
			if h < 2 {
				h = 2
			}
			p.AntiAffinity = append(p.AntiAffinity, cluster.AntiAffinityRule{
				Services: []int{s}, MaxPerHost: h,
			})
		}
	}
	for k := 0; k < n/50; k++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		cap := (replicas[a]+replicas[b])/2 + 2
		p.AntiAffinity = append(p.AntiAffinity, cluster.AntiAffinityRule{
			Services: []int{a, b}, MaxPerHost: cap,
		})
	}

	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated invalid problem: %w", err)
	}
	orig, err := sched.Original(p, ps.Seed+1)
	if err != nil {
		return nil, err
	}
	return &Cluster{Preset: ps, Problem: p, Original: orig}, nil
}

// drawReplicas draws n positive replica counts summing to total using
// Pareto weights and largest-remainder rounding.
func drawReplicas(rng *rand.Rand, n, total int) []int {
	weights := make([]float64, n)
	var sum float64
	for i := range weights {
		// Pareto(alpha=1.3): many small services, a few very large ones.
		weights[i] = math.Pow(rng.Float64(), -1/1.3)
		sum += weights[i]
	}
	out := make([]int, n)
	remaining := total - n // reserve 1 per service
	type frac struct {
		i int
		f float64
	}
	var fracs []frac
	used := 0
	for i := range out {
		exact := float64(remaining) * weights[i] / sum
		out[i] = 1 + int(exact)
		used += int(exact)
		fracs = append(fracs, frac{i: i, f: exact - math.Floor(exact)})
	}
	sort.Slice(fracs, func(a, b int) bool {
		if fracs[a].f != fracs[b].f {
			return fracs[a].f > fracs[b].f
		}
		return fracs[a].i < fracs[b].i
	})
	for k := 0; k < remaining-used && k < len(fracs); k++ {
		out[fracs[k].i]++
	}
	return out
}

func weightedPick(rng *rand.Rand, probs []float64) int {
	r := rng.Float64()
	var acc float64
	for i, p := range probs {
		acc += p
		if r < acc {
			return i
		}
	}
	return len(probs) - 1
}

// buildAffinity constructs a power-law affinity graph organized into
// communities: the services of each zone are split into independent
// applications of ~CommunitySize services, and affinity edges only form
// within a community (hub-and-spoke microservice topology). The service
// at global affinity rank k receives total affinity proportional to
// 1/k^Beta, so the cluster-wide distribution remains the power law of
// Assumption 4.1 while the community structure keeps partition cuts
// small. Total weight normalizes to 1.
func buildAffinity(rng *rand.Rand, n int, serviceZone []int, ps Preset) *graph.Graph {
	g := graph.New(n)
	commSize := ps.CommunitySize
	if commSize <= 0 {
		commSize = 14
	}
	perZone := make(map[int][]int)
	// Shuffle so the affinity participants are arbitrary services.
	perm := rng.Perm(n)
	nAff := int(float64(n) * ps.AffinityFraction)
	for _, s := range perm[:nAff] {
		z := serviceZone[s]
		perZone[z] = append(perZone[z], s)
	}
	zones := make([]int, 0, len(perZone))
	for z := range perZone {
		zones = append(zones, z)
	}
	sort.Ints(zones)
	globalRank := 0
	for _, z := range zones {
		members := perZone[z]
		// Split the zone's services into communities of 8..2*commSize.
		for start := 0; start < len(members); {
			size := commSize/2 + rng.Intn(commSize+1)
			if size < 3 {
				size = 3
			}
			end := start + size
			if end > len(members) {
				end = len(members)
			}
			comm := members[start:end]
			start = end
			for k, s := range comm {
				if k == 0 {
					globalRank++
					continue
				}
				globalRank++
				target := 1.0 / math.Pow(float64(globalRank), ps.Beta)
				// 1-3 partners among higher-ranked community members,
				// preferring the community hub (preferential attachment).
				partners := 1 + rng.Intn(3)
				if partners > k {
					partners = k
				}
				for e := 0; e < partners; e++ {
					// Bias toward low indices: square the uniform draw.
					j := int(math.Pow(rng.Float64(), 2) * float64(k))
					if j >= k {
						j = k - 1
					}
					g.AddEdge(s, comm[j], target/float64(partners))
				}
			}
		}
	}
	// Normalize total affinity to 1.0 (Section II-B).
	total := g.TotalWeight()
	if total == 0 {
		return g
	}
	norm := graph.New(n)
	for _, e := range g.Edges() {
		norm.AddEdge(e.U, e.V, e.Weight/total)
	}
	return norm
}

// buildMachines creates m machines from the spec mix, scaled so total
// capacity = totalReq / utilization in every resource dimension.
func buildMachines(rng *rand.Rand, m int, totalReq cluster.Resources, utilization float64) []cluster.Machine {
	specs := make([]int, m)
	idx := 0
	for si, spec := range specMix {
		count := int(spec.frac * float64(m))
		for k := 0; k < count && idx < m; k++ {
			specs[idx] = si
			idx++
		}
	}
	for ; idx < m; idx++ {
		specs[idx] = 0
	}
	rng.Shuffle(m, func(i, j int) { specs[i], specs[j] = specs[j], specs[i] })

	var rawCPU float64
	for _, si := range specs {
		rawCPU += specMix[si].cpu
	}
	// Scale CPU so total = requested/utilization; memory gets its own
	// scale from the same spec shape (memory spec = 2x CPU).
	cpuScale := (totalReq[0] / utilization) / rawCPU
	memScale := (totalReq[1] / utilization) / (rawCPU * 2)
	out := make([]cluster.Machine, m)
	for j, si := range specs {
		out[j] = cluster.Machine{
			Capacity: cluster.Resources{
				specMix[si].cpu * cpuScale,
				specMix[si].cpu * 2 * memScale,
			},
			Spec: si,
		}
	}
	return out
}

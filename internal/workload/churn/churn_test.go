package churn

import (
	"bytes"
	"testing"

	"github.com/cloudsched/rasa/internal/incr"
	"github.com/cloudsched/rasa/internal/workload"
)

// TestGenerateChurnReplays is the generator's validity contract: every
// event of the trace applies cleanly in order against the cluster it
// was generated for, and the churned state remains structurally valid
// and schedulable.
func TestGenerateChurnReplays(t *testing.T) {
	preset := workload.TrainingPresets()[2] // T3
	c, err := workload.Generate(preset)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Generate(c, Config{Events: 120, PerTick: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 120 {
		t.Fatalf("events = %d, want 120", len(tr.Events))
	}
	kinds := map[string]int{}
	for _, te := range tr.Events {
		kinds[te.Type]++
	}
	if kinds["scaleService"] == 0 || kinds["updateAffinity"] == 0 {
		t.Fatalf("degenerate event mix: %v", kinds)
	}

	// Round-trip through the wire format, then replay tick by tick.
	var buf bytes.Buffer
	if err := incr.WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	tr2, err := incr.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ticks, err := tr2.Ticks()
	if err != nil {
		t.Fatal(err)
	}
	if len(ticks) != 30 {
		t.Fatalf("ticks = %d, want 30", len(ticks))
	}

	st, err := incr.NewState(c.Problem, c.Original)
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range ticks {
		if _, err := st.Apply(tb.Events...); err != nil {
			t.Fatalf("tick %d: %v", tb.Tick, err)
		}
		if err := st.Problem().Validate(); err != nil {
			t.Fatalf("tick %d: problem invalid: %v", tb.Tick, err)
		}
	}
	// After settling deficits the churned cluster must still satisfy
	// every SLA: the generator's capacity headroom guarantee.
	st.Settle()
	if viol := st.Assignment().Check(st.Problem(), true); len(viol) > 0 {
		t.Fatalf("churned cluster unschedulable: %v", viol[0])
	}
}

// TestGenerateChurnDeterministic: same seed, same trace.
func TestGenerateChurnDeterministic(t *testing.T) {
	c, err := workload.Generate(workload.TrainingPresets()[2])
	if err != nil {
		t.Fatal(err)
	}
	a, err := Generate(c, Config{Events: 40, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(c, Config{Events: 40, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatal("lengths differ")
	}
	for i := range a.Events {
		aj, bj := a.Events[i], b.Events[i]
		if aj.Tick != bj.Tick || aj.Type != bj.Type || aj.Service != bj.Service ||
			aj.Replicas != bj.Replicas || aj.Machine != bj.Machine ||
			aj.A != bj.A || aj.B != bj.B || aj.Weight != bj.Weight {
			t.Fatalf("event %d differs: %+v vs %+v", i, aj, bj)
		}
	}
	if _, err := Generate(c, Config{Events: 0}); err == nil {
		t.Fatal("zero events accepted")
	}
}

// Package churn generates replayable event traces against generated
// workload clusters — the synthetic stand-in for the live region's
// deploy/scale/drain stream that the incremental engine consumes.
package churn

import (
	"fmt"
	"math/rand"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/incr"
	"github.com/cloudsched/rasa/internal/workload"
)

// Config tunes Generate.
type Config struct {
	// Events is the total number of events to emit (required).
	Events int
	// PerTick groups events into re-optimization ticks (default 5): all
	// events of one tick form one Apply batch between Reoptimize calls.
	PerTick int
	// Seed drives the event sampling; default the cluster's own seed.
	Seed int64
	// ServiceOnly drops machine-level events (drain/add) from the mix,
	// redistributing their weight onto replica scaling. On benchmark-
	// scale clusters one drain touches services in most subproblems, so
	// machine events measure full-pipeline escalation rather than the
	// scoped delta path; the incremental benchmark sets this.
	ServiceOnly bool
}

// RedeployConfig tunes Redeploy.
type RedeployConfig struct {
	// Ticks is how many driver ticks to cover; PerTick is how many
	// services are redeployed per tick.
	Ticks   int
	PerTick int
	// Seed drives the service sampling (required for reproducibility —
	// there is no cluster to default from).
	Seed int64
}

// Redeploy emits the production simulator's churn schedule as a
// replayable trace: each tick, PerTick services are drawn and
// scale-bounced — halved, then restored to their SLA target — which
// strips half their containers and leaves a deficit the default
// scheduler refills wherever it likes, eroding collocation exactly
// like an owner-driven rolling redeploy.
//
// The schedule is part of prodsim's like-for-like contract between
// scenarios: exactly one rng draw is consumed per churned service,
// including single-replica services that cannot bounce (their draw
// emits nothing). Bounces always restore the original target, so the
// shadow replica counts never drift from the live cluster's.
func Redeploy(p *cluster.Problem, cfg RedeployConfig) *incr.Trace {
	rng := rand.New(rand.NewSource(cfg.Seed))
	replicas := make([]int, p.N())
	for s := range p.Services {
		replicas[s] = p.Services[s].Replicas
	}
	tr := &incr.Trace{Version: incr.TraceVersion, Seed: cfg.Seed}
	for tick := 0; tick < cfg.Ticks; tick++ {
		for c := 0; c < cfg.PerTick; c++ {
			s := rng.Intn(len(replicas))
			d := replicas[s]
			bounce := d / 2
			if bounce < 1 {
				continue
			}
			tr.Events = append(tr.Events,
				incr.TraceEvent{Tick: tick, EventJSON: incr.ToJSON(incr.ScaleService{Service: s, Replicas: bounce})},
				incr.TraceEvent{Tick: tick, EventJSON: incr.ToJSON(incr.ScaleService{Service: s, Replicas: d})},
			)
		}
	}
	return tr
}

// Churn event mix: mostly replica scaling (owner redeploys), some
// affinity drift, occasional machine drains and inventory adds, rare
// service retirement — the event profile of Section III's live region
// between CronJob runs.
const (
	churnFracScale    = 0.70
	churnFracAffinity = 0.15
	churnFracDrain    = 0.08
	churnFracAdd      = 0.05
	// remainder: removeService
)

// Generate emits a replayable churn trace against the generated
// cluster. The generator tracks a shadow of the evolving state (replica
// targets, live service/machine counts, remaining capacity) so every
// event in the trace is valid when applied in order — including index
// shifts after service removals — without mutating the cluster itself.
// Drains are capped so remaining capacity always covers total demand
// with headroom, keeping the churned cluster solvable.
func Generate(c *workload.Cluster, cfg Config) (*incr.Trace, error) {
	if cfg.Events <= 0 {
		return nil, fmt.Errorf("workload: churn event count must be positive")
	}
	if cfg.PerTick <= 0 {
		cfg.PerTick = 5
	}
	if cfg.Seed == 0 {
		cfg.Seed = c.Preset.Seed*31 + 17
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := c.Problem

	// Shadow state.
	replicas := make([]int, p.N())
	requests := make([]float64, p.N()) // primary-resource request per container
	demand := 0.0
	for s := range p.Services {
		replicas[s] = p.Services[s].Replicas
		requests[s] = p.Services[s].Request[0]
		demand += float64(replicas[s]) * requests[s]
	}
	machCap := make([]float64, p.M()) // primary-resource capacity; 0 = drained
	capacity := 0.0
	fullCaps := make([]cluster.Resources, p.M())
	for m := range p.Machines {
		machCap[m] = p.Machines[m].Capacity[0]
		capacity += machCap[m]
		fullCaps[m] = p.Machines[m].Capacity
	}
	minServices := p.N() * 4 / 5
	if minServices < 2 {
		minServices = 2
	}
	avgWeight := 1.0
	if m := p.Affinity.M(); m > 0 {
		avgWeight = p.Affinity.TotalWeight() / float64(m)
	}

	fracScale, fracAffinity := churnFracScale, churnFracAffinity
	fracDrain, fracAdd := churnFracDrain, churnFracAdd
	if cfg.ServiceOnly {
		fracScale += fracDrain + fracAdd
		fracDrain, fracAdd = 0, 0
	}

	tr := &incr.Trace{Version: incr.TraceVersion, Seed: cfg.Seed}
	added := 0
	for i := 0; i < cfg.Events; i++ {
		tick := i / cfg.PerTick
		n := len(replicas)
		var ev incr.Event
		switch r := rng.Float64(); {
		case r < fracScale:
			s := rng.Intn(n)
			d := replicas[s]
			target := int(float64(d) * (0.7 + 0.6*rng.Float64()))
			if target == d {
				target = d + 1
			}
			if target < 1 {
				target = 1
			}
			// Keep demand inside remaining capacity headroom.
			if nd := demand + float64(target-d)*requests[s]; nd > 0.85*capacity {
				target = d
				if d > 1 {
					target = d - 1
				}
			}
			demand += float64(target-replicas[s]) * requests[s]
			replicas[s] = target
			ev = incr.ScaleService{Service: s, Replicas: target}
		case r < fracScale+fracAffinity:
			a := rng.Intn(n)
			b := rng.Intn(n)
			if a == b {
				b = (b + 1) % n
			}
			w := avgWeight * (0.25 + 1.5*rng.Float64())
			ev = incr.UpdateAffinity{A: a, B: b, Weight: w}
		case r < fracScale+fracAffinity+fracDrain:
			// Drain only while the remaining fleet keeps ~20% headroom
			// over demand; otherwise fall back to a scale-down.
			m := rng.Intn(len(machCap))
			if machCap[m] > 0 && capacity-machCap[m] > 1.2*demand {
				capacity -= machCap[m]
				machCap[m] = 0
				ev = incr.DrainMachine{Machine: m}
			} else {
				s := rng.Intn(n)
				if replicas[s] > 1 {
					replicas[s]--
					demand -= requests[s]
				}
				ev = incr.ScaleService{Service: s, Replicas: replicas[s]}
			}
		case r < fracScale+fracAffinity+fracDrain+fracAdd:
			// Clone a random original machine spec for the new capacity.
			src := fullCaps[rng.Intn(len(fullCaps))]
			machCap = append(machCap, src[0])
			fullCaps = append(fullCaps, src)
			capacity += src[0]
			added++
			ev = incr.AddMachine{
				Name:     fmt.Sprintf("churn-m%d", added),
				Capacity: src.Clone(),
				Spec:     -1,
			}
		default:
			if n <= minServices {
				// Fleet floor reached: scale something instead.
				s := rng.Intn(n)
				replicas[s]++
				demand += requests[s]
				ev = incr.ScaleService{Service: s, Replicas: replicas[s]}
				break
			}
			s := rng.Intn(n)
			demand -= float64(replicas[s]) * requests[s]
			replicas = append(replicas[:s], replicas[s+1:]...)
			requests = append(requests[:s], requests[s+1:]...)
			ev = incr.RemoveService{Service: s}
		}
		tr.Events = append(tr.Events, incr.TraceEvent{Tick: tick, EventJSON: incr.ToJSON(ev)})
	}
	return tr, nil
}

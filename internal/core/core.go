// Package core implements the full three-phase RASA algorithm of
// Section IV: service partitioning, algorithm selection, parallel
// subproblem solving, solution merging, and migration-path computation.
// It is the paper's primary contribution; everything else under
// internal/ is substrate.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/migrate"
	"github.com/cloudsched/rasa/internal/partition"
	"github.com/cloudsched/rasa/internal/pool"
	"github.com/cloudsched/rasa/internal/sched"
	"github.com/cloudsched/rasa/internal/selector"
	"github.com/cloudsched/rasa/internal/solve"
)

// Strategy selects the service-partitioning algorithm (the Fig. 6
// comparison).
type Strategy int

// Partitioning strategies.
const (
	// Multistage is the paper's four-stage partitioner (default).
	Multistage Strategy = iota
	// RandomPartition splits affinity services uniformly at random.
	RandomPartition
	// KWayPartition uses the multilevel min-cut partitioner (KaHIP
	// stand-in).
	KWayPartition
	// NoPartition solves the whole cluster as one subproblem with the
	// direct MIP solver; expected to go out-of-time beyond small
	// clusters.
	NoPartition
)

func (s Strategy) String() string {
	switch s {
	case Multistage:
		return "MULTI-STAGE-PARTITION"
	case RandomPartition:
		return "RANDOM-PARTITION"
	case KWayPartition:
		return "KAHIP"
	case NoPartition:
		return "NO-PARTITION"
	}
	return "unknown"
}

// Options tune an optimization pass.
type Options struct {
	// Budget is the end-to-end optimization budget (the paper evaluates
	// under a one-minute time-out; scaled budgets reproduce the same
	// shapes on this substrate). Default 2s.
	Budget time.Duration
	// Strategy picks the partitioner; default Multistage.
	Strategy Strategy
	// Partition forwards partitioner tuning (master ratio, target size,
	// sampling, seed).
	Partition partition.Options
	// Policy selects the pool algorithm per subproblem; default the
	// empirical Heuristic. Pass a trained selector.GCNPolicy for the
	// full paper configuration.
	Policy selector.Policy
	// Parallelism bounds concurrent subproblem solves; 0 = GOMAXPROCS.
	Parallelism int
	// MinAlive is the migration SLA floor; default 0.75.
	MinAlive float64
	// SkipMigration skips migration-path computation (pure quality
	// benchmarks).
	SkipMigration bool
}

// ErrInvalidOptions is the sentinel every Normalize rejection wraps:
// errors.Is(err, ErrInvalidOptions) identifies an Options value the
// pipeline refuses to run with.
var ErrInvalidOptions = errors.New("core: invalid options")

// maxParallelism caps caller-requested solver concurrency: beyond this
// the goroutine and deadline bookkeeping costs dominate any speedup.
const maxParallelism = 256

// Normalize validates o and fills defaults, returning the normalized
// copy. It is the single options gate: every public entry point —
// Optimize, the incr engine's full and delta passes, the server's job
// and cluster-session handlers — runs its Options through here instead
// of scattering ad-hoc checks. Negative budgets are rejected (a zero
// budget means "default", a negative one is a caller bug), MinAlive
// must stay within [0, 1] (zero means the migration default), and
// worker counts are clamped to [0, 256] (zero means GOMAXPROCS).
func (o Options) Normalize() (Options, error) {
	if o.Budget < 0 {
		return o, fmt.Errorf("%w: negative budget %v", ErrInvalidOptions, o.Budget)
	}
	if o.Budget == 0 {
		o.Budget = 2 * time.Second
	}
	if o.MinAlive < 0 || o.MinAlive > 1 {
		return o, fmt.Errorf("%w: MinAlive %v outside [0, 1]", ErrInvalidOptions, o.MinAlive)
	}
	if o.Parallelism < 0 {
		o.Parallelism = 0
	} else if o.Parallelism > maxParallelism {
		o.Parallelism = maxParallelism
	}
	if o.Policy == nil {
		o.Policy = selector.Heuristic{}
	}
	return o, nil
}

// Result is the outcome of one optimization pass.
type Result struct {
	// Assignment is the optimized container-to-machine mapping.
	Assignment *cluster.Assignment
	// Plan transitions the cluster from the input assignment to
	// Assignment (nil when SkipMigration).
	Plan *migrate.Plan
	// GainedAffinity of Assignment and of the input mapping, in affinity
	// units (workload-generated clusters normalize total affinity to 1).
	GainedAffinity   float64
	OriginalAffinity float64
	// Partition reports the partitioning phase.
	Partition *partition.Result
	// SubResults holds the per-subproblem solver outcomes, aligned with
	// Partition.Subproblems. A raced subproblem's entry reports the
	// winning arm as Algorithm and the head-to-head in Race.
	SubResults []pool.Result
	// Selected records the algorithm chosen per subproblem (pool.Race
	// when the policy asked for a head-to-head).
	Selected []pool.Algorithm
	// Decisions records each subproblem's confidence-aware policy
	// decision, aligned with Selected.
	Decisions []selector.Decision
	// OutOfTime reports that the solver phase produced nothing: every
	// subproblem exhausted the budget without placements (the paper's
	// OOT outcome — e.g. NO-PARTITION beyond small clusters). Individual
	// failed subproblems merely fall back to the default scheduler.
	OutOfTime bool
	// PartialMigration reports that the migration planner hit a
	// resource-ordering deadlock and Assignment was adjusted to the
	// reachable state (Plan transitions exactly to it).
	PartialMigration bool
	// Elapsed is the total wall time of the pass.
	Elapsed time.Duration
	// Stats aggregates solver effort across every subproblem solve:
	// simplex pivots, branch-and-bound nodes, CG columns, per-phase wall
	// time, and the stop cause of the pass as a whole.
	Stats solve.Stats
}

// ReconcileSLA keeps under-placed services' surplus containers at their
// current machines where capacity (and constraints) allow. The optimizer
// tolerates failed deployments, but a target that places fewer
// containers than currently run would force the migration to scale a
// service down; keeping those containers in place is strictly better.
// Exported for the incremental engine, whose delta solves merge through
// the same pipeline outside Optimize.
func ReconcileSLA(p *cluster.Problem, current, next *cluster.Assignment) {
	used := next.UsedResources(p)
	antiUsed := make([][]int, len(p.AntiAffinity))
	for k := range antiUsed {
		antiUsed[k] = make([]int, p.M())
	}
	memberOf := make([][]int, p.N())
	for k, rule := range p.AntiAffinity {
		for _, s := range rule.Services {
			memberOf[s] = append(memberOf[s], k)
		}
	}
	next.EachPlacement(func(s, m, count int) {
		for _, k := range memberOf[s] {
			antiUsed[k][m] += count
		}
	})
	for s := 0; s < p.N(); s++ {
		deficit := current.Placed(s) - next.Placed(s)
		if deficit <= 0 {
			continue
		}
		req := p.Services[s].Request
		for _, m := range current.MachinesOf(s) {
			for deficit > 0 && next.Get(s, m) < current.Get(s, m) {
				if !used[m].Add(req).Fits(p.Machines[m].Capacity) {
					break
				}
				blocked := false
				for _, k := range memberOf[s] {
					if antiUsed[k][m]+1 > p.AntiAffinity[k].MaxPerHost {
						blocked = true
						break
					}
				}
				if blocked {
					break
				}
				next.Add(s, m, 1)
				used[m] = used[m].Add(req)
				for _, k := range memberOf[s] {
					antiUsed[k][m]++
				}
				deficit--
			}
			if deficit == 0 {
				break
			}
		}
	}
}

// EvictForSLA makes room for under-placed compatibility-restricted
// services by evicting containers of unrestricted services (which can
// run anywhere) from the restricted services' compatible machines.
// Returns true if any eviction happened; callers must re-run the default
// scheduler to re-place the evicted containers. Exported alongside
// ReconcileSLA for the incremental engine's merge path.
func EvictForSLA(p *cluster.Problem, next *cluster.Assignment) bool {
	if p.Schedulable == nil {
		return false
	}
	evicted := false
	used := next.UsedResources(p)
	for s := 0; s < p.N(); s++ {
		if p.Schedulable[s] == nil {
			continue
		}
		deficit := p.Services[s].Replicas - next.Placed(s)
		if deficit <= 0 {
			continue
		}
		req := p.Services[s].Request
		for m := 0; m < p.M() && deficit > 0; m++ {
			if !p.CanHost(s, m) {
				continue
			}
			for deficit > 0 {
				if used[m].Add(req).Fits(p.Machines[m].Capacity) {
					next.Add(s, m, 1)
					used[m] = used[m].Add(req)
					deficit--
					continue
				}
				// Evict one container of the unrestricted service with
				// the largest per-container request on this machine.
				victim := -1
				var victimReq float64
				for cand := 0; cand < p.N(); cand++ {
					if cand == s || next.Get(cand, m) == 0 {
						continue
					}
					if p.Schedulable[cand] != nil {
						continue // never evict another restricted service
					}
					if r := p.Services[cand].Request[0]; victim < 0 || r > victimReq {
						victim, victimReq = cand, r
					}
				}
				if victim < 0 {
					break // nothing evictable here; try the next machine
				}
				next.Add(victim, m, -1)
				used[m] = used[m].Sub(p.Services[victim].Request)
				evicted = true
			}
		}
	}
	return evicted
}

// ImprovementRatio returns (new - old) / old gained affinity; +Inf when
// the original affinity is zero and the new one positive.
func (r *Result) ImprovementRatio() float64 {
	if r.OriginalAffinity <= 0 {
		if r.GainedAffinity > 0 {
			return 1e18
		}
		return 0
	}
	return (r.GainedAffinity - r.OriginalAffinity) / r.OriginalAffinity
}

// minSolveBudget is the floor handed to the solver phase when the
// partitioning phase consumed (almost) the whole budget. A negative or
// zero remaining budget would put the solvers' shared deadline in the
// past before they even start; the floor guarantees they at least get
// to emit their greedy fallback schedules.
const minSolveBudget = 25 * time.Millisecond

// Optimize runs the full RASA algorithm on the cluster: compute a new
// mapping that maximizes overall gained affinity under the given budget
// and the migration plan that realizes it.
//
// Cancelling the context interrupts whichever phase is running:
// partitioning falls back to its best sampled split, the subproblem
// solvers return their incumbents, and migration planning is skipped —
// so a cancelled Optimize still returns a usable best-effort Result
// rather than an error. Result.Stats records why the pass stopped.
func Optimize(ctx context.Context, p *cluster.Problem, current *cluster.Assignment, opts Options) (*Result, error) {
	start := time.Now()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if current == nil {
		return nil, fmt.Errorf("core: nil current assignment")
	}
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}

	// Phase 1: service partitioning.
	var pres *partition.Result
	switch opts.Strategy {
	case Multistage:
		pres, err = partition.Multistage(ctx, p, current, opts.Partition)
	case RandomPartition:
		pres, err = partition.Random(ctx, p, current, opts.Partition)
	case KWayPartition:
		pres, err = partition.KWay(ctx, p, current, opts.Partition)
	case NoPartition:
		pres, err = partition.None(ctx, p)
	default:
		err = fmt.Errorf("core: unknown strategy %d", opts.Strategy)
	}
	if err != nil {
		return nil, err
	}

	// Phase 2: algorithm selection + parallel solving under the
	// remaining budget. Policies decide per subproblem; a decision of
	// pool.Race (a learned policy below its confidence threshold, or the
	// explicit always-race policy) makes the solve layer run both
	// algorithms head to head.
	decisions := make([]selector.Decision, len(pres.Subproblems))
	selected := make([]pool.Algorithm, len(pres.Subproblems))
	for i, sp := range pres.Subproblems {
		if opts.Strategy == NoPartition {
			// NO-PARTITION is defined as handing the whole problem to
			// the solver (Section V-B).
			decisions[i] = selector.Decision{Algorithm: pool.MIP, Confidence: 1, Source: "no-partition"}
			selected[i] = pool.MIP
			continue
		}
		decisions[i] = opts.Policy.Decide(sp)
		selected[i] = decisions[i].Algorithm
	}
	remaining := opts.Budget - time.Since(start)
	if remaining < minSolveBudget {
		// Partitioning overran the budget: keep the solvers' shared
		// deadline slightly in the future instead of already expired, so
		// their anytime greedy fallbacks still produce placements.
		remaining = minSolveBudget
	}
	results := pool.SolveAll(ctx, pres.Subproblems, func(i int) pool.Algorithm { return selected[i] }, remaining, opts.Parallelism)

	// Raced subproblems produced oracle labels; feed them back to a
	// learning policy so low-confidence regions shrink over time.
	if learner, ok := opts.Policy.(selector.Observer); ok {
		for i, r := range results {
			if r.Race != nil {
				learner.ObserveRace(selector.FromRace(pres.Subproblems[i], r.Race))
			}
		}
	}

	// Phase 3: merge and migration path.
	newAssign := sched.Merge(p, current, pres, results)
	ReconcileSLA(p, current, newAssign)
	if EvictForSLA(p, newAssign) {
		// Evicted containers need re-placing; reconcile again so nothing
		// regresses below the current deployment.
		newAssign = sched.Complete(p, newAssign)
		ReconcileSLA(p, current, newAssign)
	}
	res := &Result{
		Assignment:       newAssign,
		GainedAffinity:   newAssign.GainedAffinity(p),
		OriginalAffinity: current.GainedAffinity(p),
		Partition:        pres,
		SubResults:       results,
		Selected:         selected,
		Decisions:        decisions,
	}
	if len(results) > 0 {
		res.OutOfTime = true
		for _, r := range results {
			if !r.OutOfTime {
				res.OutOfTime = false
				break
			}
		}
	}
	for _, r := range results {
		res.Stats.Merge(r.Stats)
	}
	switch {
	case ctx.Err() != nil:
		res.Stats.Stop = solve.Cause(ctx.Err())
	case res.OutOfTime:
		res.Stats.Stop = solve.Deadline
	default:
		res.Stats.Stop = solve.Optimal
	}
	if !opts.SkipMigration && ctx.Err() == nil {
		plan, err := migrate.Compute(ctx, p, current, newAssign, migrate.Options{MinAlive: opts.MinAlive})
		switch {
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			// Cancelled mid-planning: drop the partial plan and report the
			// optimized assignment without a migration path, like
			// SkipMigration — the caller asked the whole pass to stop.
			res.Stats.Stop = solve.Cause(err)
		case err == nil:
			res.Plan = plan
			if plan.Relocations > 0 {
				// Deadlock-breaking bounces steered some containers to
				// different machines than planned; the replayed state is
				// the authoritative new mapping.
				reached, simErr := migrate.Simulate(p, current, plan, opts.MinAlive)
				if simErr != nil {
					return nil, fmt.Errorf("core: migration replay: %w", simErr)
				}
				res.Assignment = reached
				res.GainedAffinity = reached.GainedAffinity(p)
			}
		case errors.Is(err, migrate.ErrStalled):
			// A resource-ordering deadlock keeps part of the target out of
			// reach (rare, but possible when the cluster is tight). The
			// returned plan is still valid up to the stall point: adopt
			// the reachable state as the result instead of failing.
			reached, simErr := migrate.Simulate(p, current, plan, opts.MinAlive)
			if simErr != nil {
				return nil, fmt.Errorf("core: partial migration replay: %w", simErr)
			}
			// Re-place still-offline containers with the default
			// scheduler and append those creations as a final step, so
			// the plan still transitions exactly to the result.
			completed := sched.Complete(p, reached)
			var finalStep migrate.Step
			completed.EachPlacement(func(s, m, count int) {
				for extra := count - reached.Get(s, m); extra > 0; extra-- {
					finalStep = append(finalStep, migrate.Command{Op: migrate.Create, Service: s, Machine: m})
				}
			})
			if len(finalStep) > 0 {
				plan.Steps = append(plan.Steps, finalStep)
			}
			res.Plan = plan
			res.PartialMigration = true
			res.Assignment = completed
			res.GainedAffinity = completed.GainedAffinity(p)
		default:
			return nil, fmt.Errorf("core: migration planning: %w", err)
		}
	}
	res.Elapsed = time.Since(start)
	res.Stats.Wall = res.Elapsed
	return res, nil
}

package core_test

import (
	"context"
	"testing"
	"time"

	. "github.com/cloudsched/rasa/internal/core"
	"github.com/cloudsched/rasa/internal/partition"
	"github.com/cloudsched/rasa/internal/solve"
)

// TestOptimizeImmediateCancel is the acceptance check for the anytime
// contract at the top of the stack: cancelling before the pass starts
// must still return a non-nil, feasible Result (greedy fallbacks all
// the way down) tagged Cancelled, and must do so quickly — no solver
// may sneak in real work under a dead context.
func TestOptimizeImmediateCancel(t *testing.T) {
	c := testCluster(t, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := Optimize(ctx, c.Problem, c.Original, Options{
		Budget:    3 * time.Second,
		Partition: partition.Options{TargetSize: 10, Seed: 7},
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("cancelled Optimize returned nil Result")
	}
	if res.Stats.Stop != solve.Cancelled {
		t.Fatalf("stop cause = %v, want Cancelled", res.Stats.Stop)
	}
	if res.Assignment == nil {
		t.Fatal("cancelled Optimize returned no assignment")
	}
	if vs := res.Assignment.Check(c.Problem, true); len(vs) != 0 {
		t.Fatalf("fallback assignment violates constraints: %v", vs[0])
	}
	if res.Plan != nil {
		t.Fatal("cancelled Optimize still planned migrations")
	}
	// Generous CI bound; the interactive target is <100ms (see
	// BenchmarkCancellationLatency for the measured figure).
	if elapsed > 2*time.Second {
		t.Fatalf("cancelled Optimize took %s", elapsed)
	}
}

// TestOptimizeCancelMidPass cancels partway through the solve phase;
// the pass must wrap up with its incumbents rather than run out the
// full budget.
func TestOptimizeCancelMidPass(t *testing.T) {
	c := testCluster(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := Optimize(ctx, c.Problem, c.Original, Options{
		Budget:    30 * time.Second, // would be far exceeded without the cancel
		Partition: partition.Options{TargetSize: 10, Seed: 8},
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancelled pass took %s, budget should not have been run out", elapsed)
	}
	if res.Assignment == nil {
		t.Fatal("no assignment after mid-pass cancel")
	}
	if vs := res.Assignment.Check(c.Problem, true); len(vs) != 0 {
		t.Fatalf("violations after mid-pass cancel: %v", vs[0])
	}
}

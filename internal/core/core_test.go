package core_test

import (
	"context"
	"testing"
	"time"

	"github.com/cloudsched/rasa/internal/cluster"
	. "github.com/cloudsched/rasa/internal/core"
	"github.com/cloudsched/rasa/internal/migrate"
	"github.com/cloudsched/rasa/internal/partition"
	"github.com/cloudsched/rasa/internal/sched"
	"github.com/cloudsched/rasa/internal/workload"
)

// schedOriginal aliases the baseline scheduler for test bootstrap.
var schedOriginal = sched.Original

func testCluster(t testing.TB, seed int64) *workload.Cluster {
	t.Helper()
	c, err := workload.Generate(workload.Preset{
		Name: "core-test", Services: 70, Containers: 380, Machines: 16,
		Beta: 1.6, AffinityFraction: 0.6, Zones: 2, Utilization: 0.55, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestOptimizeImprovesAffinity(t *testing.T) {
	c := testCluster(t, 1)
	res, err := Optimize(context.Background(), c.Problem, c.Original, Options{
		Budget:    3 * time.Second,
		Partition: partition.Options{TargetSize: 10, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.GainedAffinity <= res.OriginalAffinity {
		t.Fatalf("no improvement: %v -> %v", res.OriginalAffinity, res.GainedAffinity)
	}
	if res.ImprovementRatio() <= 0 {
		t.Fatalf("improvement ratio = %v", res.ImprovementRatio())
	}
	// The new assignment must satisfy every constraint including SLA.
	if vs := res.Assignment.Check(c.Problem, true); len(vs) != 0 {
		t.Fatalf("violations: %v", vs[0])
	}
}

func TestOptimizeMigrationPlanReachesTarget(t *testing.T) {
	c := testCluster(t, 2)
	res, err := Optimize(context.Background(), c.Problem, c.Original, Options{
		Budget:    2 * time.Second,
		Partition: partition.Options{TargetSize: 10, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil {
		t.Fatal("no migration plan")
	}
	final, err := migrate.Simulate(c.Problem, c.Original, res.Plan, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if !migrate.Equal(final, res.Assignment) {
		t.Fatal("plan does not reach the optimized mapping")
	}
}

func TestOptimizeSkipMigration(t *testing.T) {
	c := testCluster(t, 3)
	res, err := Optimize(context.Background(), c.Problem, c.Original, Options{
		Budget:        time.Second,
		SkipMigration: true,
		Partition:     partition.Options{TargetSize: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan != nil {
		t.Fatal("plan computed despite SkipMigration")
	}
}

func TestOptimizeStrategies(t *testing.T) {
	c := testCluster(t, 4)
	gains := map[Strategy]float64{}
	for _, st := range []Strategy{Multistage, RandomPartition, KWayPartition} {
		res, err := Optimize(context.Background(), c.Problem, c.Original, Options{
			Budget:        2 * time.Second,
			Strategy:      st,
			SkipMigration: true,
			Partition:     partition.Options{TargetSize: 10, Seed: 4},
		})
		if err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		if vs := res.Assignment.Check(c.Problem, true); len(vs) != 0 {
			t.Fatalf("%v violations: %v", st, vs[0])
		}
		gains[st] = res.GainedAffinity
	}
	if gains[Multistage] < gains[RandomPartition] {
		t.Fatalf("multistage %v below random %v", gains[Multistage], gains[RandomPartition])
	}
}

func TestOptimizeNoPartitionSmall(t *testing.T) {
	// A tiny cluster should be solvable even without partitioning.
	c, err := workload.Generate(workload.Preset{
		Name: "tiny", Services: 12, Containers: 60, Machines: 5,
		Beta: 1.7, AffinityFraction: 0.8, Zones: 1, Utilization: 0.5, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(context.Background(), c.Problem, c.Original, Options{
		Budget:        3 * time.Second,
		Strategy:      NoPartition,
		SkipMigration: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OutOfTime {
		t.Fatal("tiny NO-PARTITION went OOT")
	}
	if res.GainedAffinity <= 0 {
		t.Fatalf("gained = %v", res.GainedAffinity)
	}
}

func TestOptimizeNoPartitionLargeGoesOOT(t *testing.T) {
	c, err := workload.Generate(workload.Preset{
		Name: "large", Services: 400, Containers: 2400, Machines: 110,
		Beta: 1.5, AffinityFraction: 0.7, Zones: 1, Utilization: 0.55, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(context.Background(), c.Problem, c.Original, Options{
		Budget:        300 * time.Millisecond,
		Strategy:      NoPartition,
		SkipMigration: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Either OOT or (if somehow solved) feasible — but on this size the
	// MIP formulation must exceed the tractable-cell bound.
	if !res.OutOfTime {
		t.Fatalf("expected OOT; gained=%v", res.GainedAffinity)
	}
	// The fallback (current placement + default completion) still yields
	// a valid assignment.
	if vs := res.Assignment.Check(c.Problem, true); len(vs) != 0 {
		t.Fatalf("violations: %v", vs[0])
	}
}

func TestOptimizeValidation(t *testing.T) {
	c := testCluster(t, 7)
	if _, err := Optimize(context.Background(), c.Problem, nil, Options{}); err == nil {
		t.Fatal("nil current accepted")
	}
	bad := *c.Problem
	bad.Services = nil
	if _, err := Optimize(context.Background(), &bad, c.Original, Options{}); err == nil {
		t.Fatal("invalid problem accepted")
	}
	if _, err := Optimize(context.Background(), c.Problem, c.Original, Options{Strategy: Strategy(42)}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

// TestRestrictedServiceNeverStranded reproduces the zone-pinning
// failure: a low-affinity service restricted to a few machines must
// never end the optimization under-placed, even when the solver would
// rather fill its zone with high-affinity containers (the eviction
// repair guarantees this).
func TestRestrictedServiceNeverStranded(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		c, err := workload.Generate(workload.Preset{
			Name: "pin", Services: 60, Containers: 340, Machines: 14,
			Beta: 1.6, AffinityFraction: 0.7, Zones: 1, Utilization: 0.6, Seed: 400 + seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		p := c.Problem
		// Pin the last (low-affinity) service to two machines only, and
		// drop any spread rule on it (two machines cannot satisfy both a
		// pin and a spread cap — that combination is infeasible by
		// construction, not a scheduling failure).
		pinned := p.N() - 1
		p.Schedulable = make([]cluster.Bitmap, p.N())
		bm := cluster.NewBitmap(p.M())
		bm.Set(0)
		bm.Set(1)
		p.Schedulable[pinned] = bm
		var rules []cluster.AntiAffinityRule
		for _, r := range p.AntiAffinity {
			keep := true
			for _, s := range r.Services {
				if s == pinned {
					keep = false
				}
			}
			if keep {
				rules = append(rules, r)
			}
		}
		p.AntiAffinity = rules
		cur, err := Optimize(context.Background(), p, mustSchedule(t, p, seed), Options{
			Budget:    time.Second,
			Partition: partition.Options{Seed: seed},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := cur.Assignment.Placed(pinned); got != p.Services[pinned].Replicas {
			t.Fatalf("seed %d: pinned service placed %d of %d", seed, got, p.Services[pinned].Replicas)
		}
		if vs := cur.Assignment.Check(p, true); len(vs) != 0 {
			t.Fatalf("seed %d: violations: %v", seed, vs[0])
		}
	}
}

func mustSchedule(t *testing.T, p *cluster.Problem, seed int64) *cluster.Assignment {
	t.Helper()
	a, err := schedOriginal(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestStrategyString(t *testing.T) {
	names := map[Strategy]string{
		Multistage:      "MULTI-STAGE-PARTITION",
		RandomPartition: "RANDOM-PARTITION",
		KWayPartition:   "KAHIP",
		NoPartition:     "NO-PARTITION",
		Strategy(9):     "unknown",
	}
	for s, want := range names {
		if s.String() != want {
			t.Fatalf("%d.String() = %v", s, s.String())
		}
	}
}

func TestOptimizeDeterministicPartitioning(t *testing.T) {
	// With a fixed seed the partitioning and selection are deterministic;
	// solver timing can vary, so compare the partition structure only.
	c := testCluster(t, 8)
	opts := Options{
		Budget:        time.Second,
		SkipMigration: true,
		Partition:     partition.Options{TargetSize: 10, Seed: 9},
	}
	r1, err := Optimize(context.Background(), c.Problem, c.Original, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Optimize(context.Background(), c.Problem, c.Original, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Partition.Subproblems) != len(r2.Partition.Subproblems) {
		t.Fatal("non-deterministic partitioning")
	}
	for i := range r1.Selected {
		if r1.Selected[i] != r2.Selected[i] {
			t.Fatal("non-deterministic selection")
		}
	}
}

func BenchmarkOptimizeSmallCluster(b *testing.B) {
	c := testCluster(b, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(context.Background(), c.Problem, c.Original, Options{
			Budget:        500 * time.Millisecond,
			SkipMigration: true,
			Partition:     partition.Options{TargetSize: 10, Seed: int64(i)},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

package lifetime

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/snapshot"
)

// TraceVersion identifies the lifetime-trace JSON schema.
const TraceVersion = "rasa-lifetime-trace/1"

// EventJSON is the wire form of an Event: a type discriminator plus
// the union of all event fields. Zero values round-trip (service 0 is
// a valid index, weight 0 zeroes an edge), so omitted fields decode to
// the same event they encoded from. Churn-only traces use none of the
// execution fields, so their wire form is unchanged from the original
// churn-trace schema.
type EventJSON struct {
	Type     string    `json:"type"`
	Service  int       `json:"service,omitempty"`
	Replicas int       `json:"replicas,omitempty"`
	Machine  int       `json:"machine,omitempty"`
	Name     string    `json:"name,omitempty"`
	Capacity []float64 `json:"capacity,omitempty"`
	Spec     int       `json:"spec,omitempty"`
	A        int       `json:"a,omitempty"`
	B        int       `json:"b,omitempty"`
	Weight   float64   `json:"weight,omitempty"`

	// Execution-event fields.
	Op      string           `json:"op,omitempty"`
	Reason  string           `json:"reason,omitempty"`
	Origin  string           `json:"origin,omitempty"`
	Mode    string           `json:"mode,omitempty"`
	Applied bool             `json:"applied,omitempty"`
	Moves   int              `json:"moves,omitempty"`
	Changed []PlacementDelta `json:"changed,omitempty"`
}

// Event decodes the wire form into a typed event.
func (e EventJSON) Event() (Event, error) {
	switch e.Type {
	case "scaleService":
		return ScaleService{Service: e.Service, Replicas: e.Replicas}, nil
	case "addMachine":
		return AddMachine{Name: e.Name, Capacity: cluster.Resources(e.Capacity), Spec: e.Spec}, nil
	case "drainMachine":
		return DrainMachine{Machine: e.Machine}, nil
	case "updateAffinity":
		return UpdateAffinity{A: e.A, B: e.B, Weight: e.Weight}, nil
	case "removeService":
		return RemoveService{Service: e.Service}, nil
	case "moveStarted":
		return MoveStarted{Op: e.Op, Service: e.Service, Machine: e.Machine}, nil
	case "moveApplied":
		return MoveApplied{Op: e.Op, Service: e.Service, Machine: e.Machine}, nil
	case "moveFailed":
		return MoveFailed{Op: e.Op, Service: e.Service, Machine: e.Machine, Reason: e.Reason}, nil
	case "machineDied":
		return MachineDied{Machine: e.Machine}, nil
	case "replanRequested":
		return ReplanRequested{Reason: e.Reason}, nil
	case "planCommitted":
		return PlanCommitted{
			Origin: e.Origin, Mode: e.Mode, Reason: e.Reason,
			Applied: e.Applied, Moves: e.Moves, Changed: e.Changed,
		}, nil
	}
	return nil, fmt.Errorf("lifetime: unknown event type %q", e.Type)
}

// ToJSON encodes a typed event into its wire form.
func ToJSON(ev Event) EventJSON {
	switch e := ev.(type) {
	case ScaleService:
		return EventJSON{Type: e.Kind(), Service: e.Service, Replicas: e.Replicas}
	case AddMachine:
		return EventJSON{Type: e.Kind(), Name: e.Name, Capacity: e.Capacity, Spec: e.Spec}
	case DrainMachine:
		return EventJSON{Type: e.Kind(), Machine: e.Machine}
	case UpdateAffinity:
		return EventJSON{Type: e.Kind(), A: e.A, B: e.B, Weight: e.Weight}
	case RemoveService:
		return EventJSON{Type: e.Kind(), Service: e.Service}
	case MoveStarted:
		return EventJSON{Type: e.Kind(), Op: e.Op, Service: e.Service, Machine: e.Machine}
	case MoveApplied:
		return EventJSON{Type: e.Kind(), Op: e.Op, Service: e.Service, Machine: e.Machine}
	case MoveFailed:
		return EventJSON{Type: e.Kind(), Op: e.Op, Service: e.Service, Machine: e.Machine, Reason: e.Reason}
	case MachineDied:
		return EventJSON{Type: e.Kind(), Machine: e.Machine}
	case ReplanRequested:
		return EventJSON{Type: e.Kind(), Reason: e.Reason}
	case PlanCommitted:
		return EventJSON{
			Type: e.Kind(), Origin: e.Origin, Mode: e.Mode, Reason: e.Reason,
			Applied: e.Applied, Moves: e.Moves, Changed: e.Changed,
		}
	}
	panic(fmt.Sprintf("lifetime: unknown event %T", ev))
}

// DecodeEvents decodes a batch of wire events, failing on the first
// unknown type.
func DecodeEvents(batch []EventJSON) ([]Event, error) {
	out := make([]Event, len(batch))
	for i, ej := range batch {
		ev, err := ej.Event()
		if err != nil {
			return nil, fmt.Errorf("event %d: %w", i, err)
		}
		out[i] = ev
	}
	return out, nil
}

// EntryJSON is the wire form of a log entry.
type EntryJSON struct {
	Seq  uint64 `json:"seq"`
	Tick int    `json:"tick"`
	EventJSON
}

// EntriesJSON encodes log entries for the wire (the /v1/cluster/log
// endpoint and the trace file).
func EntriesJSON(entries []Entry) []EntryJSON {
	out := make([]EntryJSON, len(entries))
	for i, e := range entries {
		out[i] = EntryJSON{Seq: e.Seq, Tick: e.Tick, EventJSON: ToJSON(e.Event)}
	}
	return out
}

// Summary aggregates what happened over a recorded lifetime — enough
// for CI to assert the executor's invariants without re-deriving them
// from the event stream.
type Summary struct {
	Ticks           int `json:"ticks"`
	Events          int `json:"events"`
	Reoptimizes     int `json:"reoptimizes"`
	Replans         int `json:"replans"`
	Executed        int `json:"executed"`
	Failed          int `json:"failed"`
	Skipped         int `json:"skipped"`
	FloorViolations int `json:"floorViolations"`
	EnvFloorDips    int `json:"envFloorDips"`
	Deaths          int `json:"deaths"`
}

// Trace is a complete recorded lifetime: the initial snapshot, every
// log entry in order, and the end-state fingerprint the replay must
// reproduce.
type Trace struct {
	Version     string             `json:"version"`
	Seed        int64              `json:"seed,omitempty"`
	Preset      string             `json:"preset,omitempty"`
	Snapshot    *snapshot.Snapshot `json:"snapshot"`
	Fingerprint string             `json:"fingerprint"`
	Summary     *Summary           `json:"summary,omitempty"`
	Events      []EntryJSON        `json:"events"`
}

// Export packages the log as a trace against the given initial
// snapshot (captured before the first append).
func (l *Log) Export(snap *snapshot.Snapshot, seed int64, preset string, sum *Summary) *Trace {
	l.mu.Lock()
	defer l.mu.Unlock()
	return &Trace{
		Version:     TraceVersion,
		Seed:        seed,
		Preset:      preset,
		Snapshot:    snap,
		Fingerprint: l.st.Fingerprint(),
		Summary:     sum,
		Events:      EntriesJSON(l.entries),
	}
}

// WriteTrace writes the trace as indented JSON.
func WriteTrace(w io.Writer, t *Trace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ReadTrace parses a lifetime trace and checks its schema version.
func ReadTrace(r io.Reader) (*Trace, error) {
	var t Trace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("lifetime: parse trace: %w", err)
	}
	if t.Version != TraceVersion {
		return nil, fmt.Errorf("lifetime: unsupported trace version %q (want %q)", t.Version, TraceVersion)
	}
	return &t, nil
}

// Replay reconstructs a log by folding the trace's events — in order,
// no solver involved — over its initial snapshot. The replay contract:
// because every state mutation was recorded in the order it succeeded
// live, the returned log's fingerprint equals the trace's for any
// faithfully recorded trace. Callers compare against tr.Fingerprint.
//
// Replaying a prefix (entries up to a checkpoint offset) reconstructs
// the exact mid-run state, which is how checkpoint/resume restores an
// interrupted executor in a fresh process.
func Replay(tr *Trace) (*Log, error) {
	if tr.Snapshot == nil {
		return nil, fmt.Errorf("lifetime: trace has no snapshot")
	}
	p, assign, err := tr.Snapshot.ToCluster()
	if err != nil {
		return nil, fmt.Errorf("lifetime: trace snapshot: %w", err)
	}
	if assign == nil {
		return nil, fmt.Errorf("lifetime: trace snapshot has no placements")
	}
	l, err := NewLog(p, assign)
	if err != nil {
		return nil, err
	}
	for i, ej := range tr.Events {
		if ej.Seq != uint64(i+1) {
			return nil, fmt.Errorf("lifetime: trace entry %d has seq %d, want %d (gap or reorder)", i, ej.Seq, i+1)
		}
		ev, err := ej.Event()
		if err != nil {
			return nil, fmt.Errorf("lifetime: trace entry %d: %w", i, err)
		}
		l.tick = ej.Tick
		if err := l.appendLocked(ev); err != nil {
			return nil, fmt.Errorf("lifetime: trace entry %d (%s): %w", i, ev.Kind(), err)
		}
	}
	return l, nil
}

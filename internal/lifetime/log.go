package lifetime

import (
	"fmt"
	"sync"

	"github.com/cloudsched/rasa/internal/cluster"
)

// Entry is one committed log record: a 1-based sequence number, the
// driver tick it was appended on, the event, and the services whose
// placements the event disturbed (evictions — drains and deaths).
type Entry struct {
	Seq     uint64
	Tick    int
	Event   Event
	Touched []int
}

// Log is the append-only event log plus its folded State. Append is
// atomic per event: the event either applies cleanly and is recorded,
// or the state is unchanged and the error names the offender. All
// methods lock internally; the accessors hand out live pointers, so
// callers that inspect them must not do so concurrently with Append.
type Log struct {
	mu      sync.Mutex
	st      *State
	entries []Entry
	tick    int
}

// NewLog takes ownership of p and assign: the fold mutates both in
// place as events append. Callers that need the originals intact must
// clone before constructing the log.
func NewLog(p *cluster.Problem, assign *cluster.Assignment) (*Log, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if assign == nil {
		return nil, fmt.Errorf("lifetime: nil assignment")
	}
	if assign.N != p.N() || assign.M != p.M() {
		return nil, fmt.Errorf("lifetime: assignment shape %dx%d does not match problem %dx%d",
			assign.N, assign.M, p.N(), p.M())
	}
	return &Log{st: &State{p: p, assign: assign, dead: make(map[int]bool)}}, nil
}

// Append applies and records the events in order, stopping at the
// first invalid one. It returns how many were appended; on error the
// returned count is the index of the offending event and every earlier
// event remains applied (events are not transactional — they model a
// feed of things that already happened).
func (l *Log) Append(events ...Event) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i, ev := range events {
		if err := l.appendLocked(ev); err != nil {
			return i, fmt.Errorf("lifetime: event %d (%s): %w", i, ev.Kind(), err)
		}
	}
	return len(events), nil
}

func (l *Log) appendLocked(ev Event) error {
	touched, err := ev.apply(l.st)
	if err != nil {
		return err
	}
	l.entries = append(l.entries, Entry{
		Seq:     uint64(len(l.entries) + 1),
		Tick:    l.tick,
		Event:   ev,
		Touched: touched,
	})
	return nil
}

// Head returns the sequence number of the newest entry (0 when empty).
func (l *Log) Head() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return uint64(len(l.entries))
}

// Entries returns a copy of every entry with Seq >= from (1-based).
func (l *Log) Entries(from uint64) []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < 1 {
		from = 1
	}
	if from > uint64(len(l.entries)) {
		return nil
	}
	return append([]Entry(nil), l.entries[from-1:]...)
}

// Tick returns the current driver tick stamped onto new entries.
func (l *Log) Tick() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tick
}

// AdvanceTick increments the driver tick and returns the new value.
func (l *Log) AdvanceTick() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.tick++
	return l.tick
}

// Problem returns the live problem. See the Log doc for aliasing rules.
func (l *Log) Problem() *cluster.Problem {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.st.p
}

// Assignment returns the live assignment. See the Log doc for aliasing
// rules. The pointer is stable across appends except RemoveService,
// which rebuilds the matrix with the service's row dropped.
func (l *Log) Assignment() *cluster.Assignment {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.st.assign
}

// Fingerprint hashes the folded state; see State.Fingerprint.
func (l *Log) Fingerprint() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.st.Fingerprint()
}

// DeadMachines lists every machine written off so far, ascending.
func (l *Log) DeadMachines() []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.st.DeadMachines()
}

// FullRuns counts the full-pipeline planner passes committed so far.
func (l *Log) FullRuns() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.st.fullRuns
}

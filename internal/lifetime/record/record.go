// Package record captures a cluster lifetime — synthetic churn, the
// incremental engine's plan proposals, and the executor's fault-laden
// actuation of them — as a rasa-lifetime-trace/1 artifact. The trace
// carries the starting snapshot and every event the lifetime log
// accumulated, so lifetime.Replay can rebuild the exact end state
// without re-running a single solve or fabric command: recording is
// the expensive run, replay is a pure fold.
package record

import (
	"context"
	"fmt"
	"time"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/exec"
	"github.com/cloudsched/rasa/internal/incr"
	"github.com/cloudsched/rasa/internal/lifetime"
	"github.com/cloudsched/rasa/internal/snapshot"
	"github.com/cloudsched/rasa/internal/workload"
	"github.com/cloudsched/rasa/internal/workload/churn"
)

// Config tunes one recorded lifetime.
type Config struct {
	// Preset is the workload to generate (required).
	Preset workload.Preset
	// Ticks is the number of churn → propose → execute rounds (default
	// 6); PerTick is the churn events applied per round (default 4).
	Ticks   int
	PerTick int
	// Budget bounds each engine solve (default 2s — ample for the
	// training presets, so solves converge before the deadline and the
	// recording is deterministic for a given Seed).
	Budget time.Duration
	// FaultRate is the fabric's per-command failure probability.
	FaultRate float64
	// DeathTick, when non-negative, kills the most-loaded machine
	// halfway through that tick's plan (default -1: no death).
	DeathTick int
	// Seed drives churn sampling, fabric faults, and backoff jitter.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Ticks <= 0 {
		c.Ticks = 6
	}
	if c.PerTick <= 0 {
		c.PerTick = 4
	}
	if c.Budget <= 0 {
		c.Budget = 2 * time.Second
	}
	if c.DeathTick == 0 {
		// The zero value means "unset"; explicit tick-0 deaths are not
		// expressible, which no caller needs — tick 0 is the bootstrap.
		c.DeathTick = -1
	}
	return c
}

// Record runs one cluster lifetime and exports its event log. All
// moving parts are seeded and single-threaded (Parallelism 1), so two
// Record calls with equal configs produce byte-identical traces.
func Record(ctx context.Context, cfg Config) (*lifetime.Trace, error) {
	cfg = cfg.withDefaults()
	c, err := workload.Generate(cfg.Preset)
	if err != nil {
		return nil, fmt.Errorf("record: generate: %w", err)
	}
	// Round-trip the starting state through the snapshot that ships in
	// the trace, so the recording folds from bit-identical ground truth
	// to what Replay will reconstruct.
	snap := snapshot.FromCluster(c.Problem, c.Original)
	p, a, err := snap.ToCluster()
	if err != nil {
		return nil, fmt.Errorf("record: snapshot round-trip: %w", err)
	}
	st, err := incr.NewState(p, a)
	if err != nil {
		return nil, fmt.Errorf("record: state: %w", err)
	}
	eng := incr.New(st, incr.Options{
		Budget:      cfg.Budget,
		MinAlive:    0.75,
		Parallelism: 1,
	}, nil)
	log := st.Log()

	tr, err := churn.Generate(c, churn.Config{
		Events:      cfg.Ticks * cfg.PerTick,
		PerTick:     cfg.PerTick,
		Seed:        cfg.Seed*31 + 7,
		ServiceOnly: true,
	})
	if err != nil {
		return nil, fmt.Errorf("record: churn: %w", err)
	}
	batches, err := tr.Ticks()
	if err != nil {
		return nil, fmt.Errorf("record: churn trace: %w", err)
	}
	churnAt := make(map[int][]incr.Event, len(batches))
	for _, b := range batches {
		churnAt[b.Tick] = b.Events
	}

	sum := &lifetime.Summary{Ticks: cfg.Ticks}
	for tick := 0; tick < cfg.Ticks; tick++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		log.AdvanceTick()
		if batch := churnAt[tick]; len(batch) > 0 {
			if _, err := st.Apply(batch...); err != nil {
				return nil, fmt.Errorf("record: tick %d churn: %w", tick, err)
			}
			sum.Events += len(batch)
		}

		rres, err := eng.Propose(ctx)
		if err != nil {
			return nil, fmt.Errorf("record: tick %d propose: %w", tick, err)
		}
		sum.Reoptimizes++
		if rres.Plan == nil || len(rres.Plan.Steps) == 0 {
			continue
		}

		from := st.Assignment().Clone()
		var fab exec.Fabric
		if cfg.FaultRate == 0 && tick != cfg.DeathTick {
			fab = exec.NewInstantFabric(from.Clone())
		} else {
			fc := exec.FaultConfig{
				FailureProb: cfg.FaultRate,
				Seed:        cfg.Seed*131 + int64(tick)*17,
			}
			if tick == cfg.DeathTick {
				commands := 0
				for _, s := range rres.Plan.Steps {
					commands += len(s)
				}
				fc.Deaths = []exec.MachineDeath{{
					Machine:       mostLoadedMachine(from),
					AfterCommands: commands / 2,
				}}
			}
			fab = exec.NewFaultFabric(from.Clone(), fc)
		}
		ex := exec.New(eng, fab, exec.Options{
			MinAlive:    0.75,
			Parallelism: 1,
			Seed:        cfg.Seed + int64(tick)*613,
		}, nil)
		rep, err := ex.Execute(ctx, from, rres.Plan)
		if err != nil {
			return nil, fmt.Errorf("record: tick %d execute: %w", tick, err)
		}
		sum.Replans += rep.Replans
		sum.Executed += rep.Executed
		sum.Failed += rep.Failed
		sum.Skipped += rep.Skipped
		sum.FloorViolations += rep.FloorViolations
		sum.EnvFloorDips += rep.EnvFloorDips
		sum.Deaths += len(rep.DeadMachines)
	}
	return log.Export(snap, cfg.Seed, cfg.Preset.Name, sum), nil
}

// mostLoadedMachine picks the machine hosting the most containers —
// the death target that maximizes mid-plan divergence.
func mostLoadedMachine(a *cluster.Assignment) int {
	best, bestC := 0, -1
	for m, scs := range a.PerMachine() {
		total := 0
		for _, sc := range scs {
			total += sc.Count
		}
		if total > bestC {
			best, bestC = m, total
		}
	}
	return best
}

package record

import (
	"encoding/json"
	"testing"
	"time"

	"github.com/cloudsched/rasa/internal/lifetime"
	"github.com/cloudsched/rasa/internal/workload"
)

// testConfig records over the small T3 preset with a budget far above
// what its solves need: recording is only deterministic when every
// solve converges before the deadline, and the race detector slows
// solves by an order of magnitude.
func testConfig() Config {
	return Config{
		Preset:    workload.TrainingPresets()[2],
		Ticks:     3,
		PerTick:   3,
		Budget:    10 * time.Second,
		FaultRate: 0.1,
		DeathTick: 1,
		Seed:      7,
	}
}

// Recording the same config twice must produce byte-identical traces,
// and replaying either must land on the recorded fingerprint — the
// determinism contract behind rasagen -record / rasabench -replay.
func TestRecordDeterministicAndReplayable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full recorded lifetimes")
	}
	first, err := Record(t.Context(), testConfig())
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	second, err := Record(t.Context(), testConfig())
	if err != nil {
		t.Fatalf("record again: %v", err)
	}
	if first.Fingerprint != second.Fingerprint {
		t.Fatalf("recording nondeterministic: %s vs %s", first.Fingerprint, second.Fingerprint)
	}
	b1, _ := json.Marshal(first)
	b2, _ := json.Marshal(second)
	if string(b1) != string(b2) {
		t.Fatal("recorded traces differ beyond the fingerprint")
	}

	if first.Summary == nil || first.Summary.Events == 0 || first.Summary.Reoptimizes != 3 {
		t.Fatalf("summary underpopulated: %+v", first.Summary)
	}
	if first.Summary.FloorViolations != 0 {
		t.Fatalf("executor issued %d SLA floor violations", first.Summary.FloorViolations)
	}
	if first.Summary.Deaths == 0 {
		t.Fatal("death tick recorded no machine death")
	}

	replayed, err := lifetime.Replay(first)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if replayed.Fingerprint() != first.Fingerprint {
		t.Fatalf("replay fingerprint %s, want %s", replayed.Fingerprint(), first.Fingerprint)
	}
	if len(replayed.DeadMachines()) == 0 {
		t.Fatal("replay lost the machine death")
	}
}

package lifetime

import (
	"bytes"
	"strings"
	"testing"

	"github.com/cloudsched/rasa/internal/snapshot"
	"github.com/cloudsched/rasa/internal/workload"
)

// newTestLog builds two independent logs over identical copies of a
// generated cluster (snapshot round-trip per copy, so no aliasing).
func newTestLogs(t *testing.T, n int) []*Log {
	t.Helper()
	c, err := workload.Generate(workload.TrainingPresets()[2])
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	snap := snapshot.FromCluster(c.Problem, c.Original)
	out := make([]*Log, n)
	for i := range out {
		p, a, err := snap.ToCluster()
		if err != nil {
			t.Fatalf("to cluster: %v", err)
		}
		l, err := NewLog(p, a)
		if err != nil {
			t.Fatalf("new log: %v", err)
		}
		out[i] = l
	}
	return out
}

func mustAppend(t *testing.T, l *Log, events ...Event) {
	t.Helper()
	if _, err := l.Append(events...); err != nil {
		t.Fatalf("append: %v", err)
	}
}

// hostOf finds a machine hosting service s.
func hostOf(l *Log, s int) int {
	ms := l.Assignment().MachinesOf(s)
	if len(ms) == 0 {
		return -1
	}
	return ms[0]
}

func TestExecutionEventsFold(t *testing.T) {
	l := newTestLogs(t, 1)[0]
	p := l.Problem()
	s := 0
	src := hostOf(l, s)
	if src < 0 {
		t.Fatal("service 0 has no containers")
	}
	dst := (src + 1) % p.M()
	before := l.Assignment().Get(s, dst)

	// MoveStarted/MoveFailed are bookkeeping-only: no state change.
	fp0 := l.Fingerprint()
	mustAppend(t, l,
		MoveStarted{Op: OpCreate, Service: s, Machine: dst},
		MoveFailed{Op: OpCreate, Service: s, Machine: dst, Reason: "test"},
	)
	if l.Fingerprint() != fp0 {
		t.Fatal("MoveStarted/MoveFailed changed the folded state")
	}

	// MoveApplied mutates the placement cell by cell.
	mustAppend(t, l,
		MoveApplied{Op: OpCreate, Service: s, Machine: dst},
		MoveApplied{Op: OpDelete, Service: s, Machine: src},
	)
	if got := l.Assignment().Get(s, dst); got != before+1 {
		t.Fatalf("create landed %d, want %d", got, before+1)
	}

	// Deleting an absent container is an invalid event.
	empty := -1
	for m := 0; m < p.M(); m++ {
		if l.Assignment().Get(s, m) == 0 {
			empty = m
			break
		}
	}
	if empty >= 0 {
		if _, err := l.Append(MoveApplied{Op: OpDelete, Service: s, Machine: empty}); err == nil {
			t.Fatal("delete of absent container accepted")
		}
	}

	// MachineDied zeroes the machine and reports the evicted services.
	head := l.Head()
	mustAppend(t, l, MachineDied{Machine: dst})
	ents := l.Entries(head + 1)
	if len(ents) != 1 || len(ents[0].Touched) == 0 {
		t.Fatalf("death entry touched=%v", ents)
	}
	if l.Assignment().Get(s, dst) != 0 {
		t.Fatal("dead machine still hosts containers")
	}
	for _, v := range p.Machines[dst].Capacity {
		if v != 0 {
			t.Fatal("dead machine kept capacity")
		}
	}
	if d := l.DeadMachines(); len(d) != 1 || d[0] != dst {
		t.Fatalf("dead machines = %v", d)
	}
	// Idempotent: a second report of the same death is a no-op.
	mustAppend(t, l, MachineDied{Machine: dst})

	// Creating on a dead machine is invalid.
	if _, err := l.Append(MoveApplied{Op: OpCreate, Service: s, Machine: dst}); err == nil {
		t.Fatal("create on dead machine accepted")
	}
}

func TestPlanCommittedFold(t *testing.T) {
	l := newTestLogs(t, 1)[0]
	s := 0
	src := hostOf(l, s)
	dst := (src + 1) % l.Problem().M()
	b1, b2 := l.Assignment().Get(s, src), l.Assignment().Get(s, dst)

	// A proposed commit (Applied=false) leaves the state untouched but
	// counts toward fullRuns when it ran the full pipeline.
	fp := l.Fingerprint()
	mustAppend(t, l, PlanCommitted{Origin: "propose", Mode: "full", Moves: 3})
	if l.Fingerprint() != fp {
		t.Fatal("proposed commit mutated state")
	}
	if l.FullRuns() != 1 {
		t.Fatalf("fullRuns = %d, want 1", l.FullRuns())
	}

	// An applied commit verifies its Before cells and then applies.
	mustAppend(t, l, PlanCommitted{
		Origin: "reoptimize", Mode: "delta", Applied: true, Moves: 1,
		Changed: []PlacementDelta{
			{Service: s, Machine: src, Before: b1, After: b1 - 1},
			{Service: s, Machine: dst, Before: b2, After: b2 + 1},
		},
	})
	if got := l.Assignment().Get(s, dst); got != b2+1 {
		t.Fatalf("applied commit landed %d, want %d", got, b2+1)
	}
	if l.FullRuns() != 1 {
		t.Fatalf("delta commit bumped fullRuns to %d", l.FullRuns())
	}

	// Stale Before cells are refused (the state moved under the plan).
	_, err := l.Append(PlanCommitted{
		Origin: "reoptimize", Applied: true,
		Changed: []PlacementDelta{{Service: s, Machine: dst, Before: b2 + 99, After: 0}},
	})
	if err == nil || !strings.Contains(err.Error(), "commit expected") {
		t.Fatalf("stale commit error = %v", err)
	}
}

func TestFingerprintOrderIndependence(t *testing.T) {
	ls := newTestLogs(t, 3)
	a, b, c := ls[0], ls[1], ls[2]
	s := 0
	src := hostOf(a, s)
	dst := (src + 1) % a.Problem().M()

	// Same content via different event orders.
	mustAppend(t, a,
		UpdateAffinity{A: 0, B: 1, Weight: 2.5},
		UpdateAffinity{A: 2, B: 3, Weight: 1.25},
		MoveApplied{Op: OpCreate, Service: s, Machine: dst},
		MoveApplied{Op: OpCreate, Service: s, Machine: src},
	)
	mustAppend(t, b,
		MoveApplied{Op: OpCreate, Service: s, Machine: src},
		UpdateAffinity{A: 2, B: 3, Weight: 1.25},
		MoveApplied{Op: OpCreate, Service: s, Machine: dst},
		UpdateAffinity{A: 0, B: 1, Weight: 2.5},
	)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical content, different fingerprints")
	}

	// Different content must differ.
	mustAppend(t, c,
		UpdateAffinity{A: 0, B: 1, Weight: 2.5},
		UpdateAffinity{A: 2, B: 3, Weight: 1.25},
		MoveApplied{Op: OpCreate, Service: s, Machine: dst},
	)
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different content, same fingerprint")
	}
	// Replica-target changes are content too, even with placements equal.
	fp := a.Fingerprint()
	mustAppend(t, a, ScaleService{Service: s, Replicas: a.Problem().Services[s].Replicas + 1})
	if a.Fingerprint() == fp {
		t.Fatal("replica target change did not move the fingerprint")
	}
}

func TestTraceReplayDeterminism(t *testing.T) {
	c, err := workload.Generate(workload.TrainingPresets()[2])
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	snap := snapshot.FromCluster(c.Problem, c.Original)
	p, a, err := snap.ToCluster()
	if err != nil {
		t.Fatalf("to cluster: %v", err)
	}
	l, err := NewLog(p, a)
	if err != nil {
		t.Fatalf("new log: %v", err)
	}
	s := 0
	src := hostOf(l, s)
	dst := (src + 1) % p.M()
	mustAppend(t, l, ScaleService{Service: s, Replicas: p.Services[s].Replicas + 2})
	l.AdvanceTick()
	mustAppend(t, l,
		PlanCommitted{Origin: "propose", Mode: "full", Moves: 2},
		MoveStarted{Op: OpCreate, Service: s, Machine: dst},
		MoveApplied{Op: OpCreate, Service: s, Machine: dst},
		MachineDied{Machine: src},
		ReplanRequested{Reason: "machine-down"},
	)

	tr := l.Export(snap, 42, "T3", &Summary{Ticks: 2, Events: int(l.Head())})
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.Fingerprint != l.Fingerprint() {
		t.Fatal("trace fingerprint diverged from live log")
	}

	// Replay is a pure fold: fingerprint, head, tick stamps, and
	// fullRuns all reproduce.
	rl, err := Replay(got)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rl.Fingerprint() != got.Fingerprint {
		t.Fatalf("replayed fingerprint %s, want %s", rl.Fingerprint(), got.Fingerprint)
	}
	if rl.Head() != l.Head() || rl.Tick() != l.Tick() || rl.FullRuns() != l.FullRuns() {
		t.Fatalf("replayed head/tick/fullRuns = %d/%d/%d, want %d/%d/%d",
			rl.Head(), rl.Tick(), rl.FullRuns(), l.Head(), l.Tick(), l.FullRuns())
	}
	// Replaying a prefix reconstructs the mid-run state (checkpoint
	// resume): cut before the death.
	prefix := *got
	prefix.Events = prefix.Events[:len(prefix.Events)-2]
	pl, err := Replay(&prefix)
	if err != nil {
		t.Fatalf("prefix replay: %v", err)
	}
	if len(pl.DeadMachines()) != 0 {
		t.Fatal("prefix replay saw the death it was cut before")
	}

	// A gap in the sequence numbers is refused.
	gap := *got
	gap.Events = append([]EntryJSON(nil), got.Events...)
	gap.Events[2].Seq = 99
	if _, err := Replay(&gap); err == nil || !strings.Contains(err.Error(), "gap or reorder") {
		t.Fatalf("seq gap error = %v", err)
	}
	// Version mismatch is refused at read time.
	bad := bytes.NewBufferString(`{"version":"rasa-lifetime-trace/9","events":[]}`)
	if _, err := ReadTrace(bad); err == nil {
		t.Fatal("unknown trace version accepted")
	}
	// A trace without a snapshot cannot replay.
	nosnap := *got
	nosnap.Snapshot = nil
	if _, err := Replay(&nosnap); err == nil {
		t.Fatal("snapshot-less trace replayed")
	}
}

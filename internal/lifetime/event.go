// Package lifetime is the event-sourced cluster state machine: a single
// append-only, versioned event log whose fold is the one authoritative
// live cluster state. The event vocabulary is the superset of the
// incremental engine's churn stream (scale, drain, affinity drift,
// inventory, retirement) and the execution layer's actuation stream
// (move started/applied/failed, machine deaths, re-plan requests, plan
// commits), so planners (incr), executors (exec), and drivers (prodsim,
// record) all read and write one truth.
//
// Every state mutation is an event append: the log replays to an
// identical state, byte for byte, which is what makes record/replay and
// checkpoint/resume-by-offset possible. Consumers track their own
// cursors (log sequence numbers) into the stream — the incremental
// engine folds entries into dirty-subproblem tracking, the executor
// expresses reserved-vs-applied as the sequence numbers of its last
// MoveStarted and last MoveApplied.
package lifetime

import (
	"fmt"
	"math"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/graph"
)

// Event is one mutation of the live cluster state. Events are applied
// in order; indices (service, machine) always refer to the state at
// apply time — a RemoveService shifts every higher index down by one
// for all subsequent events.
type Event interface {
	// Kind names the event type (the wire discriminator and the metrics
	// label).
	Kind() string
	// apply mutates the state, returning the services whose placements
	// it disturbed (evictions); the interface is closed over this
	// package.
	apply(st *State) (touched []int, err error)
}

// Move operations (the Op field of the execution events), mirroring
// migrate.Command ops on the wire.
const (
	OpCreate = "create"
	OpDelete = "delete"
)

// ScaleService sets a service's SLA replica target. Scaling down strips
// the surplus containers immediately (most-loaded machines first);
// scaling up leaves a deficit for the next Reoptimize to place.
type ScaleService struct {
	Service  int
	Replicas int
}

// Kind implements Event.
func (ScaleService) Kind() string { return "scaleService" }

func (e ScaleService) apply(st *State) ([]int, error) {
	if e.Service < 0 || e.Service >= st.p.N() {
		return nil, fmt.Errorf("service %d out of range [0,%d)", e.Service, st.p.N())
	}
	if e.Replicas < 1 {
		return nil, fmt.Errorf("replicas %d < 1 (use removeService to retire a service)", e.Replicas)
	}
	st.p.Services[e.Service].Replicas = e.Replicas
	// Strip surplus deterministically: repeatedly evict one container
	// from the machine currently hosting the most (ties to the lowest
	// machine index), preserving the service's spread.
	for st.assign.Placed(e.Service) > e.Replicas {
		best, bestCount := -1, 0
		for _, m := range st.assign.MachinesOf(e.Service) {
			if c := st.assign.Get(e.Service, m); c > bestCount {
				best, bestCount = m, c
			}
		}
		if best < 0 {
			break
		}
		st.assign.Add(e.Service, best, -1)
	}
	return []int{e.Service}, nil
}

// AddMachine appends a machine to the inventory. Existing
// compatibility-restricted services do not gain the new machine;
// unrestricted services may use it.
type AddMachine struct {
	Name     string
	Capacity cluster.Resources
	Spec     int
}

// Kind implements Event.
func (AddMachine) Kind() string { return "addMachine" }

func (e AddMachine) apply(st *State) ([]int, error) {
	if len(e.Capacity) != len(st.p.ResourceNames) {
		return nil, fmt.Errorf("capacity has %d resources, want %d", len(e.Capacity), len(st.p.ResourceNames))
	}
	for r, v := range e.Capacity {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("invalid %s capacity %v", st.p.ResourceNames[r], v)
		}
	}
	st.p.Machines = append(st.p.Machines, cluster.Machine{
		Name: e.Name, Capacity: e.Capacity.Clone(), Spec: e.Spec,
	})
	newM := st.p.M()
	for s := range st.p.Schedulable {
		if st.p.Schedulable[s] != nil {
			st.p.Schedulable[s] = st.p.Schedulable[s].Grow(newM)
		}
	}
	st.assign.M = newM
	return nil, nil
}

// DrainMachine evicts every container from a machine and zeroes its
// capacity, so no solver or scheduler path places anything back on it
// (decommissioning, maintenance). The evicted services are the entry's
// Touched set; the containers are re-placed by the next Reoptimize.
type DrainMachine struct {
	Machine int
}

// Kind implements Event.
func (DrainMachine) Kind() string { return "drainMachine" }

func (e DrainMachine) apply(st *State) ([]int, error) {
	if e.Machine < 0 || e.Machine >= st.p.M() {
		return nil, fmt.Errorf("machine %d out of range [0,%d)", e.Machine, st.p.M())
	}
	var touched []int
	for s := 0; s < st.p.N(); s++ {
		if st.assign.Get(s, e.Machine) > 0 {
			st.assign.Set(s, e.Machine, 0)
			touched = append(touched, s)
		}
	}
	cap := st.p.Machines[e.Machine].Capacity
	for r := range cap {
		cap[r] = 0
	}
	return touched, nil
}

// UpdateAffinity sets the affinity weight between two services to an
// absolute value (traffic drift observed by the collector).
type UpdateAffinity struct {
	A, B   int
	Weight float64
}

// Kind implements Event.
func (UpdateAffinity) Kind() string { return "updateAffinity" }

func (e UpdateAffinity) apply(st *State) ([]int, error) {
	n := st.p.N()
	if e.A < 0 || e.A >= n || e.B < 0 || e.B >= n {
		return nil, fmt.Errorf("services (%d,%d) out of range [0,%d)", e.A, e.B, n)
	}
	if e.A == e.B {
		return nil, fmt.Errorf("self-affinity on service %d", e.A)
	}
	if e.Weight < 0 || math.IsNaN(e.Weight) || math.IsInf(e.Weight, 0) {
		return nil, fmt.Errorf("invalid weight %v", e.Weight)
	}
	st.p.Affinity.SetEdge(e.A, e.B, e.Weight)
	return []int{e.A, e.B}, nil
}

// RemoveService retires a service entirely: its containers are
// deleted, its affinity edges and anti-affinity memberships disappear,
// and every service above it shifts down one index. The heaviest event
// — the problem and assignment are rebuilt with remapped indices.
type RemoveService struct {
	Service int
}

// Kind implements Event.
func (RemoveService) Kind() string { return "removeService" }

func (e RemoveService) apply(st *State) ([]int, error) {
	if e.Service < 0 || e.Service >= st.p.N() {
		return nil, fmt.Errorf("service %d out of range [0,%d)", e.Service, st.p.N())
	}
	if st.p.N() < 2 {
		return nil, fmt.Errorf("cannot remove the last service")
	}
	st.removeService(e.Service)
	return nil, nil
}

// MoveStarted records that the executor reserved one container move
// (create or delete) and dispatched it to the fabric. It does not
// change the state — reservations are executor-local — but its
// sequence number is the executor's reserved cursor.
type MoveStarted struct {
	Op      string
	Service int
	Machine int
}

// Kind implements Event.
func (MoveStarted) Kind() string { return "moveStarted" }

func (e MoveStarted) apply(st *State) ([]int, error) {
	if err := st.checkMove(e.Op, e.Service, e.Machine); err != nil {
		return nil, err
	}
	return nil, nil
}

// MoveApplied records that the fabric confirmed a move: the container
// is created or deleted in the authoritative state. Its sequence
// number is the executor's applied cursor.
type MoveApplied struct {
	Op      string
	Service int
	Machine int
}

// Kind implements Event.
func (MoveApplied) Kind() string { return "moveApplied" }

func (e MoveApplied) apply(st *State) ([]int, error) {
	if err := st.checkMove(e.Op, e.Service, e.Machine); err != nil {
		return nil, err
	}
	switch e.Op {
	case OpCreate:
		if st.dead[e.Machine] {
			return nil, fmt.Errorf("create on dead machine %d", e.Machine)
		}
		st.assign.Add(e.Service, e.Machine, 1)
	case OpDelete:
		if st.assign.Get(e.Service, e.Machine) <= 0 {
			return nil, fmt.Errorf("delete of absent container (service %d, machine %d)", e.Service, e.Machine)
		}
		st.assign.Add(e.Service, e.Machine, -1)
	}
	return nil, nil
}

// MoveFailed records that a reserved move did not take effect (command
// failure, cancellation, machine death, or a released reservation).
// The state is unchanged — the reservation never reached the fabric's
// truth — but the service's placement will not reach the committed
// plan's target, which is what downstream dirty tracking folds.
type MoveFailed struct {
	Op      string
	Service int
	Machine int
	Reason  string
}

// Kind implements Event.
func (MoveFailed) Kind() string { return "moveFailed" }

func (e MoveFailed) apply(st *State) ([]int, error) {
	if err := st.checkMove(e.Op, e.Service, e.Machine); err != nil {
		return nil, err
	}
	return nil, nil
}

// MachineDied writes a machine off: its containers are gone, its
// capacity is zero, and nothing places there again. Idempotent — a
// second death of the same machine is a no-op, since fabrics may
// report a death both in-band (a failed command) and out of band.
type MachineDied struct {
	Machine int
}

// Kind implements Event.
func (MachineDied) Kind() string { return "machineDied" }

func (e MachineDied) apply(st *State) ([]int, error) {
	if e.Machine < 0 || e.Machine >= st.p.M() {
		return nil, fmt.Errorf("machine %d out of range [0,%d)", e.Machine, st.p.M())
	}
	if st.dead[e.Machine] {
		return nil, nil
	}
	st.dead[e.Machine] = true
	var touched []int
	for s := 0; s < st.p.N(); s++ {
		if st.assign.Get(s, e.Machine) > 0 {
			st.assign.Set(s, e.Machine, 0)
			touched = append(touched, s)
		}
	}
	cap := st.p.Machines[e.Machine].Capacity
	for r := range cap {
		cap[r] = 0
	}
	return touched, nil
}

// ReplanRequested marks that a consumer observed divergence (or a
// terminal outcome) and asked the planner for a fresh plan. No state
// change; planners fold it as "re-validate everything".
type ReplanRequested struct {
	Reason string
}

// Kind implements Event.
func (ReplanRequested) Kind() string { return "replanRequested" }

func (ReplanRequested) apply(st *State) ([]int, error) { return nil, nil }

// PlacementDelta is one changed placement cell: service s went from
// Before to After containers on machine m.
type PlacementDelta struct {
	Service int `json:"service"`
	Machine int `json:"machine"`
	Before  int `json:"before"`
	After   int `json:"after"`
}

// PlanCommitted records the outcome of a planner pass. Applied plans
// (Reoptimize, restores, settles) carry their placement deltas and
// mutate the state to the committed target cell by cell — each Before
// is verified against the live state, so a diverged commit fails loudly
// instead of silently corrupting the fold. Proposed plans (Applied
// false) are bookkeeping only: the executor actuates them move by move
// through MoveApplied events. Full-pipeline passes (Mode "full") count
// toward the state's fullRuns either way — the partition-seed
// exploration schedule must survive a replay.
type PlanCommitted struct {
	Origin  string // "reoptimize", "propose", "restore", "settle"
	Mode    string // "delta" or "full" for planner passes, "" otherwise
	Reason  string // escalation reason of a full pass
	Applied bool
	Moves   int
	Changed []PlacementDelta
}

// Kind implements Event.
func (PlanCommitted) Kind() string { return "planCommitted" }

func (e PlanCommitted) apply(st *State) ([]int, error) {
	if e.Mode == "full" {
		st.fullRuns++
	}
	if !e.Applied {
		return nil, nil
	}
	for _, d := range e.Changed {
		if d.Service < 0 || d.Service >= st.p.N() || d.Machine < 0 || d.Machine >= st.p.M() {
			return nil, fmt.Errorf("delta (%d,%d) out of range %dx%d", d.Service, d.Machine, st.p.N(), st.p.M())
		}
		if got := st.assign.Get(d.Service, d.Machine); got != d.Before {
			return nil, fmt.Errorf("delta (%d,%d): state has %d containers, commit expected %d",
				d.Service, d.Machine, got, d.Before)
		}
	}
	for _, d := range e.Changed {
		st.assign.Set(d.Service, d.Machine, d.After)
	}
	return nil, nil
}

// checkMove validates the shared fields of the move events.
func (st *State) checkMove(op string, s, m int) error {
	if op != OpCreate && op != OpDelete {
		return fmt.Errorf("unknown op %q", op)
	}
	if s < 0 || s >= st.p.N() {
		return fmt.Errorf("service %d out of range [0,%d)", s, st.p.N())
	}
	if m < 0 || m >= st.p.M() {
		return fmt.Errorf("machine %d out of range [0,%d)", m, st.p.M())
	}
	return nil
}

// removeService rebuilds the problem and assignment with service s
// removed and every higher index shifted down by one.
func (st *State) removeService(s int) {
	p := st.p
	n := p.N()

	remap := make([]int, n) // old -> new; -1 for s
	for i := 0; i < n; i++ {
		switch {
		case i < s:
			remap[i] = i
		case i == s:
			remap[i] = -1
		default:
			remap[i] = i - 1
		}
	}
	p.Services = append(p.Services[:s:s], p.Services[s+1:]...)
	g := graph.New(n - 1)
	for _, e := range p.Affinity.Edges() {
		if e.U != s && e.V != s {
			g.AddEdge(remap[e.U], remap[e.V], e.Weight)
		}
	}
	p.Affinity = g
	var rules []cluster.AntiAffinityRule
	for _, rule := range p.AntiAffinity {
		var svcs []int
		for _, v := range rule.Services {
			if v != s {
				svcs = append(svcs, remap[v])
			}
		}
		if len(svcs) > 0 {
			rules = append(rules, cluster.AntiAffinityRule{Services: svcs, MaxPerHost: rule.MaxPerHost})
		}
	}
	p.AntiAffinity = rules
	if p.Schedulable != nil {
		p.Schedulable = append(p.Schedulable[:s:s], p.Schedulable[s+1:]...)
	}
	st.assign = st.assign.DropService(s)
}

package lifetime

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"github.com/cloudsched/rasa/internal/cluster"
)

// State is the deterministic fold of the event log: the live problem,
// the live assignment, and the set of dead machines. It has no lock of
// its own — the owning Log serializes all access.
type State struct {
	p      *cluster.Problem
	assign *cluster.Assignment
	dead   map[int]bool
	// fullRuns counts full-pipeline PlanCommitted entries; the
	// incremental engine derives its partition-seed exploration bump
	// from it so a resumed-from-log run re-solves with the same seeds
	// an uninterrupted run would have used.
	fullRuns int
}

// Problem returns the live problem (aliased, not a copy).
func (st *State) Problem() *cluster.Problem { return st.p }

// Assignment returns the live assignment (aliased, not a copy).
func (st *State) Assignment() *cluster.Assignment { return st.assign }

// DeadMachines lists every machine written off so far, ascending.
func (st *State) DeadMachines() []int {
	out := make([]int, 0, len(st.dead))
	for m := range st.dead {
		out = append(out, m)
	}
	sort.Ints(out)
	return out
}

// FullRuns counts the full-pipeline planner passes committed so far.
func (st *State) FullRuns() int { return st.fullRuns }

// Fingerprint is an order-independent FNV-1a hash of the state's
// observable content: shape, replica targets, placements, machine
// capacities, and the affinity graph. Two states with identical
// content fingerprint identically regardless of the event order that
// produced them or the iteration order of internal maps — the equality
// check behind replay-determinism and checkpoint/resume assertions.
func (st *State) Fingerprint() string {
	h := fnv.New64a()
	word := func(v uint64) {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	p, a := st.p, st.assign
	word(uint64(p.N()))
	word(uint64(p.M()))
	for s := 0; s < p.N(); s++ {
		word(uint64(p.Services[s].Replicas))
		ms := append([]int(nil), a.MachinesOf(s)...)
		sort.Ints(ms)
		for _, m := range ms {
			if c := a.Get(s, m); c > 0 {
				word(uint64(m))
				word(uint64(c))
			}
		}
		word(^uint64(0)) // service separator
	}
	for m := 0; m < p.M(); m++ {
		for _, v := range p.Machines[m].Capacity {
			word(math.Float64bits(v))
		}
	}
	// Affinity edges normalized (u < v) and merged, then sorted: the
	// graph's internal edge order is construction-dependent, the hash
	// must not be.
	type edge struct{ u, v int }
	merged := make(map[edge]float64)
	for _, e := range p.Affinity.Edges() {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		merged[edge{u, v}] = e.Weight
	}
	keys := make([]edge, 0, len(merged))
	for k, w := range merged {
		if w > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].u != keys[j].u {
			return keys[i].u < keys[j].u
		}
		return keys[i].v < keys[j].v
	})
	for _, k := range keys {
		word(uint64(k.u))
		word(uint64(k.v))
		word(math.Float64bits(merged[k]))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

package prodsim

import (
	"context"
	"math"
	"testing"
	"time"

	"github.com/cloudsched/rasa/internal/exec"
	"github.com/cloudsched/rasa/internal/partition"
	"github.com/cloudsched/rasa/internal/workload"
)

func testConfig(seed int64) Config {
	return Config{
		Workload: workload.Preset{
			Name: "prod-test", Services: 60, Containers: 320, Machines: 14,
			Beta: 1.6, AffinityFraction: 0.6, Zones: 1, Utilization: 0.55, Seed: seed,
		},
		Ticks:         8,
		OptimizeEvery: 2,
		Budget:        400 * time.Millisecond,
		ChurnServices: 2,
		TrackedPairs:  4,
		Partition:     partition.Options{TargetSize: 10},
		Seed:          seed,
	}
}

func TestRunWithoutRASA(t *testing.T) {
	rep, err := Run(context.Background(), testConfig(1), WithoutRASA)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Ticks) != 8 {
		t.Fatalf("ticks = %d", len(rep.Ticks))
	}
	if len(rep.TrackedPairs) != 4 {
		t.Fatalf("tracked pairs = %d", len(rep.TrackedPairs))
	}
	for _, tm := range rep.Ticks {
		if tm.Applied || tm.Moves > 0 {
			t.Fatal("WITHOUT RASA must never reallocate")
		}
		if tm.Weighted.Latency <= 0 {
			t.Fatal("non-positive latency")
		}
	}
}

func TestRunAllOrdering(t *testing.T) {
	cmp, err := RunAll(context.Background(), testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	with := cmp.With.MeanWeighted()
	without := cmp.Without.MeanWeighted()
	col := cmp.Collocated.MeanWeighted()

	// The Section V-F ordering: collocated <= with RASA <= without RASA
	// for both latency and error rate (allowing a little noise slack).
	if !(col.Latency < with.Latency*1.02) {
		t.Fatalf("collocated latency %v should lower-bound WITH RASA %v", col.Latency, with.Latency)
	}
	if !(with.Latency < without.Latency) {
		t.Fatalf("WITH RASA latency %v should beat WITHOUT %v", with.Latency, without.Latency)
	}
	if !(with.ErrorRate < without.ErrorRate) {
		t.Fatalf("WITH RASA error %v should beat WITHOUT %v", with.ErrorRate, without.ErrorRate)
	}
	if !(col.ErrorRate <= with.ErrorRate*1.02) {
		t.Fatalf("collocated error %v should lower-bound WITH RASA %v", col.ErrorRate, with.ErrorRate)
	}
}

func TestWithRASAAppliesReallocations(t *testing.T) {
	rep, err := Run(context.Background(), testConfig(3), WithRASA)
	if err != nil {
		t.Fatal(err)
	}
	var applied int
	for _, tm := range rep.Ticks {
		if tm.Applied {
			applied++
			if tm.Moves <= 0 {
				t.Fatal("applied reallocation with zero moves")
			}
		}
	}
	if applied == 0 {
		t.Fatal("RASA never passed the dry-run gate")
	}
}

func TestDryRunGateSuppressesTinyImprovements(t *testing.T) {
	cfg := testConfig(4)
	cfg.MinImprovement = 1e9 // nothing can pass
	rep, err := Run(context.Background(), cfg, WithRASA)
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range rep.Ticks {
		if tm.Applied {
			t.Fatal("gate must suppress all reallocations")
		}
	}
}

func TestRollbackMechanism(t *testing.T) {
	cfg := testConfig(5)
	cfg.RollbackUtilization = 0.01 // every reallocation looks imbalanced
	cfg.UnschedulableTicks = 100
	rep, err := Run(context.Background(), cfg, WithRASA)
	if err != nil {
		t.Fatal(err)
	}
	var rolled, applied int
	for _, tm := range rep.Ticks {
		if tm.RolledBack {
			rolled++
		}
		if tm.Applied {
			applied++
		}
	}
	if rolled == 0 {
		t.Fatal("rollback never fired at threshold 0.01")
	}
	if applied != 0 {
		t.Fatal("reallocations applied despite rollback threshold")
	}
}

func TestOnlyCollocatedIsFullyLocal(t *testing.T) {
	rep, err := Run(context.Background(), testConfig(6), OnlyCollocated)
	if err != nil {
		t.Fatal(err)
	}
	lm := DefaultLatencyModel()
	for _, tm := range rep.Ticks {
		for _, pm := range tm.Pairs {
			// Fully localized: latency near IPC, far from RPC.
			if pm.Latency > lm.RPCMillis/2 {
				t.Fatalf("collocated pair latency %v too high", pm.Latency)
			}
		}
	}
}

func TestScenarioString(t *testing.T) {
	if WithRASA.String() != "WITH RASA" || WithoutRASA.String() != "WITHOUT RASA" ||
		OnlyCollocated.String() != "ONLY COLLOCATED" || Scenario(9).String() != "unknown" {
		t.Fatal("scenario names")
	}
}

func TestMeanHelpers(t *testing.T) {
	rep := &Report{
		TrackedPairs: [][2]int{{0, 1}},
		Ticks: []TickMetrics{
			{Pairs: []PairMetrics{{Latency: 2, ErrorRate: 0.2}}, Weighted: PairMetrics{Latency: 4, ErrorRate: 0.4}},
			{Pairs: []PairMetrics{{Latency: 4, ErrorRate: 0.4}}, Weighted: PairMetrics{Latency: 8, ErrorRate: 0.8}},
		},
	}
	if m := rep.MeanPair(0); m.Latency != 3 || m.ErrorRate != 0.30000000000000004 && m.ErrorRate != 0.3 {
		t.Fatalf("MeanPair = %+v", m)
	}
	if m := rep.MeanWeighted(); m.Latency != 6 {
		t.Fatalf("MeanWeighted = %+v", m)
	}
	empty := &Report{}
	if m := empty.MeanWeighted(); m.Latency != 0 {
		t.Fatal("empty report mean")
	}
}

func TestChurnErodesAffinityWithoutRASA(t *testing.T) {
	cfg := testConfig(7)
	cfg.Ticks = 12
	cfg.ChurnServices = 5
	rep, err := Run(context.Background(), cfg, WithoutRASA)
	if err != nil {
		t.Fatal(err)
	}
	first, last := rep.Ticks[0].GainedAffinity, rep.Ticks[len(rep.Ticks)-1].GainedAffinity
	// Without optimization churn should not increase collocation
	// systematically (tolerate small noise).
	if last > first*1.5+0.05 {
		t.Fatalf("affinity grew under churn without RASA: %v -> %v", first, last)
	}
}

func TestUnschedulableTaggingFreezesServices(t *testing.T) {
	// Force every reallocation to roll back; tagged services must then
	// keep their placement across subsequent ticks (they are frozen for
	// UnschedulableTicks), so gained affinity only drifts through churn.
	cfg := testConfig(8)
	cfg.Ticks = 6
	cfg.ChurnServices = 0 // isolate the tagging effect
	cfg.RollbackUtilization = 0.01
	cfg.UnschedulableTicks = 1000
	rep, err := Run(context.Background(), cfg, WithRASA)
	if err != nil {
		t.Fatal(err)
	}
	var rolled int
	for _, tm := range rep.Ticks {
		if tm.Applied {
			t.Fatal("reallocation applied despite universal rollback")
		}
		if tm.RolledBack {
			rolled++
		}
	}
	if rolled == 0 {
		t.Fatal("rollback never fired")
	}
	// With no churn and everything frozen, the placement is static: the
	// gained affinity must be identical at every tick.
	first := rep.Ticks[0].GainedAffinity
	for i, tm := range rep.Ticks {
		if math.Abs(tm.GainedAffinity-first) > 1e-9 {
			t.Fatalf("tick %d affinity %v drifted from %v despite frozen cluster", i, tm.GainedAffinity, first)
		}
	}
}

func TestOptimizeEveryRespected(t *testing.T) {
	cfg := testConfig(9)
	cfg.Ticks = 9
	cfg.OptimizeEvery = 3
	rep, err := Run(context.Background(), cfg, WithRASA)
	if err != nil {
		t.Fatal(err)
	}
	for i, tm := range rep.Ticks {
		if i%3 != 0 && (tm.Applied || tm.RolledBack) {
			t.Fatalf("tick %d acted outside the CronJob schedule", i)
		}
	}
}

func TestExecuteHookDrivesMigrations(t *testing.T) {
	cfg := testConfig(10)
	cfg.Ticks = 6
	cfg.Execute = true
	cfg.ExecFaultRate = 0.1
	var reports []struct {
		tick            int
		executed        int
		floorViolations int
		outcome         string
	}
	cfg.OnExecute = func(tick int, rep *exec.Report) {
		reports = append(reports, struct {
			tick            int
			executed        int
			floorViolations int
			outcome         string
		}{tick, rep.Executed, rep.FloorViolations, string(rep.Outcome)})
	}
	rep, err := Run(context.Background(), cfg, WithRASA)
	if err != nil {
		t.Fatal(err)
	}
	var applied int
	for _, tm := range rep.Ticks {
		if tm.Applied {
			applied++
		}
	}
	if applied == 0 || len(reports) != applied {
		t.Fatalf("applied=%d but %d executor reports", applied, len(reports))
	}
	for _, r := range reports {
		if r.floorViolations != 0 {
			t.Fatalf("tick %d: executor violated the SLA floor", r.tick)
		}
		if r.executed == 0 {
			t.Fatalf("tick %d: applied tick executed nothing", r.tick)
		}
	}
}

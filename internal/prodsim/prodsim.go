// Package prodsim simulates the production deployment of Section III
// and Section V-F: a CronJob-driven control loop that collects the
// cluster state every half-hour tick, runs the RASA algorithm, applies
// the migration plan when the dry-run gate passes, and guards against
// load-balance regressions with rollback plus unschedulable tagging.
//
// On top of the control loop sits a request-level latency/error model:
// traffic between an affinity pair is served over IPC when the calling
// and called containers are collocated and over RPC otherwise, so a
// pair's average latency and error rate are mixtures weighted by its
// localized-traffic share — the quantity RASA optimizes. This is the
// substitution for the paper's altered RPC framework and production
// metrics (see DESIGN.md): Figures 11–13 compare WITH RASA, WITHOUT
// RASA, and ONLY COLLOCATED *relative* to each other, which the mixture
// model preserves by construction.
package prodsim

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/core"
	"github.com/cloudsched/rasa/internal/exec"
	"github.com/cloudsched/rasa/internal/incr"
	"github.com/cloudsched/rasa/internal/migrate"
	"github.com/cloudsched/rasa/internal/partition"
	"github.com/cloudsched/rasa/internal/sched"
	"github.com/cloudsched/rasa/internal/workload"
	"github.com/cloudsched/rasa/internal/workload/churn"
)

// LatencyModel parameterizes the request-level performance model.
type LatencyModel struct {
	IPCMillis  float64 // mean latency of a collocated (IPC) call
	RPCMillis  float64 // mean latency of a remote (RPC) call
	Jitter     float64 // multiplicative lognormal-ish noise amplitude on RPC
	ErrLocal   float64 // error probability of a local call
	ErrRemote  float64 // error probability of a remote call
	Congestion float64 // extra RPC latency factor per unit of cluster remote-traffic share
}

// DefaultLatencyModel reflects the order-of-magnitude gap between IPC
// and intra-datacenter RPC.
func DefaultLatencyModel() LatencyModel {
	return LatencyModel{
		IPCMillis:  0.9,
		RPCMillis:  3.6,
		Jitter:     0.18,
		ErrLocal:   0.0004,
		ErrRemote:  0.0041,
		Congestion: 0.55,
	}
}

// Config drives a simulation.
type Config struct {
	Workload       workload.Preset
	Ticks          int           // half-hour ticks to simulate
	OptimizeEvery  int           // CronJob period in ticks (default 1)
	Budget         time.Duration // RASA budget per run (default 1s)
	MinImprovement float64       // dry-run gate (default 0.03, Section III-B)
	// ChurnServices is how many services are redeployed (scaled/updated)
	// per tick by causes outside RASA's control.
	ChurnServices int
	// TrackedPairs is how many top-affinity service pairs are reported
	// individually (the paper tracks 4 critical pairs).
	TrackedPairs int
	// RollbackUtilization triggers the rollback mechanism when any
	// machine's primary-resource utilization exceeds it after applying a
	// reallocation. The default of 1.0 effectively disables the guard:
	// capacity constraints already cap utilization at 1.0, and affinity
	// packing legitimately fills machines, so this is an extreme-case
	// protection to be tuned per deployment (Section III-B), not a
	// steady-state gate.
	RollbackUtilization float64
	// UnschedulableTicks is how long rolled-back services are tagged
	// unschedulable (default 144 ticks = 3 days of half-hour ticks).
	UnschedulableTicks int
	Latency            LatencyModel
	Partition          partition.Options
	Seed               int64
	// OnOptimize, when non-nil, receives every RASA optimization pass of
	// the WithRASA scenario (tick index plus the full pass result) as it
	// completes. rasad -loop uses it to publish per-tick solver stats
	// through its metrics registry; the hook must not retain res.
	OnOptimize func(tick int, res *core.Result)
	// Execute drives each gated WithRASA reallocation through an
	// exec.Executor against a simulated fabric instead of adopting the
	// target atomically. The state the cluster actually ends up in is
	// whatever the executor achieved — under faults that can differ from
	// the plan's target.
	Execute bool
	// ExecFaultRate is the fabric's per-command failure probability when
	// Execute is on; zero selects the instant, fault-free fabric.
	ExecFaultRate float64
	// MinAlive is the SLA floor fraction held during plan execution
	// (default 0.75).
	MinAlive float64
	// OnExecute, when non-nil, receives every executor report of the
	// WithRASA scenario; the hook must not retain rep.
	OnExecute func(tick int, rep *exec.Report)
}

func (c Config) withDefaults() Config {
	if c.Ticks <= 0 {
		c.Ticks = 48
	}
	if c.OptimizeEvery <= 0 {
		c.OptimizeEvery = 1
	}
	if c.Budget <= 0 {
		c.Budget = time.Second
	}
	if c.MinImprovement == 0 {
		c.MinImprovement = 0.03
	}
	if c.TrackedPairs <= 0 {
		c.TrackedPairs = 4
	}
	if c.RollbackUtilization == 0 {
		c.RollbackUtilization = 1.0
	}
	if c.UnschedulableTicks <= 0 {
		c.UnschedulableTicks = 144
	}
	if c.Latency == (LatencyModel{}) {
		c.Latency = DefaultLatencyModel()
	}
	if c.MinAlive == 0 {
		c.MinAlive = 0.75
	}
	return c
}

// Scenario selects the placement policy being measured.
type Scenario int

// Scenarios of Section V-F.
const (
	WithoutRASA    Scenario = iota // ORIGINAL placement, churn only
	WithRASA                       // CronJob + RASA optimizing continuously
	OnlyCollocated                 // upper bound: every pair fully localized
)

func (s Scenario) String() string {
	switch s {
	case WithoutRASA:
		return "WITHOUT RASA"
	case WithRASA:
		return "WITH RASA"
	case OnlyCollocated:
		return "ONLY COLLOCATED"
	}
	return "unknown"
}

// PairMetrics is the per-tick performance of one service pair.
type PairMetrics struct {
	Latency   float64 // mean end-to-end latency, ms
	ErrorRate float64 // request error probability
}

// TickMetrics is the state of one simulated half-hour.
type TickMetrics struct {
	Pairs          []PairMetrics // tracked pairs, aligned with Report.TrackedPairs
	Weighted       PairMetrics   // QPS-weighted over every affinity pair
	GainedAffinity float64
	Moves          int  // containers relocated by RASA this tick
	Applied        bool // did a reallocation pass the dry-run gate
	RolledBack     bool // did the rollback mechanism fire
}

// Report is the outcome of one scenario run.
type Report struct {
	Scenario     Scenario
	TrackedPairs [][2]int
	Ticks        []TickMetrics
}

// MeanWeighted returns the time-averaged weighted latency and error.
func (r *Report) MeanWeighted() PairMetrics {
	var out PairMetrics
	if len(r.Ticks) == 0 {
		return out
	}
	for _, t := range r.Ticks {
		out.Latency += t.Weighted.Latency
		out.ErrorRate += t.Weighted.ErrorRate
	}
	out.Latency /= float64(len(r.Ticks))
	out.ErrorRate /= float64(len(r.Ticks))
	return out
}

// MeanPair returns the time-averaged metrics of tracked pair i.
func (r *Report) MeanPair(i int) PairMetrics {
	var out PairMetrics
	if len(r.Ticks) == 0 {
		return out
	}
	for _, t := range r.Ticks {
		out.Latency += t.Pairs[i].Latency
		out.ErrorRate += t.Pairs[i].ErrorRate
	}
	out.Latency /= float64(len(r.Ticks))
	out.ErrorRate /= float64(len(r.Ticks))
	return out
}

// Comparison bundles the three scenario runs over identical churn.
type Comparison struct {
	Without, With, Collocated *Report
}

// Run simulates one scenario. Cancelling the context stops the
// simulation between ticks and returns the context's error.
func Run(ctx context.Context, cfg Config, scenario Scenario) (*Report, error) {
	cfg = cfg.withDefaults()
	w, err := workload.Generate(cfg.Workload)
	if err != nil {
		return nil, err
	}
	return run(ctx, cfg, scenario, w)
}

// RunAll simulates all three scenarios over the same generated cluster
// and identical churn schedules, as required for a like-for-like
// comparison.
func RunAll(ctx context.Context, cfg Config) (*Comparison, error) {
	cfg = cfg.withDefaults()
	w, err := workload.Generate(cfg.Workload)
	if err != nil {
		return nil, err
	}
	without, err := run(ctx, cfg, WithoutRASA, w)
	if err != nil {
		return nil, err
	}
	with, err := run(ctx, cfg, WithRASA, w)
	if err != nil {
		return nil, err
	}
	col, err := run(ctx, cfg, OnlyCollocated, w)
	if err != nil {
		return nil, err
	}
	return &Comparison{Without: without, With: with, Collocated: col}, nil
}

func run(ctx context.Context, cfg Config, scenario Scenario, w *workload.Cluster) (*Report, error) {
	p := w.Problem
	assign := w.Original.Clone()
	// The live cluster state: churn flows through the incremental event
	// log (the same vocabulary the serving layer speaks), and the gated
	// RASA reallocations are pushed back into it.
	st, err := incr.NewState(p, assign)
	if err != nil {
		return nil, fmt.Errorf("prodsim: %w", err)
	}
	rep := &Report{Scenario: scenario, TrackedPairs: topPairs(p, cfg.TrackedPairs)}
	// Churn schedule must be identical across scenarios: derive from the
	// config seed only. The schedule is generated up front by the shared
	// churn generator — the same replayable trace vocabulary the serving
	// layer and the benchmarks consume.
	redeploys, err := churn.Redeploy(p, churn.RedeployConfig{
		Ticks:   cfg.Ticks,
		PerTick: cfg.ChurnServices,
		Seed:    cfg.Seed*7919 + 13,
	}).Ticks()
	if err != nil {
		return nil, fmt.Errorf("prodsim: churn schedule: %w", err)
	}
	churnAt := make(map[int][]incr.Event, len(redeploys))
	for _, b := range redeploys {
		churnAt[b.Tick] = b.Events
	}
	noiseRng := rand.New(rand.NewSource(cfg.Seed*104729 + 29))
	unschedulableUntil := make([]int, p.N())

	for tick := 0; tick < cfg.Ticks; tick++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("prodsim: stopped at tick %d: %w", tick, err)
		}
		tm := TickMetrics{}

		// 1. Cluster churn: some services get redeployed by their owners
		// (updates, scaling); their containers land wherever the default
		// scheduler puts them, eroding collocation. Events flow through
		// the lifetime event log; Settle re-places the stripped
		// containers with the default scheduler.
		if batch := churnAt[tick]; len(batch) > 0 {
			if _, err := st.Apply(batch...); err != nil {
				return nil, fmt.Errorf("prodsim: tick %d: %w", tick, err)
			}
		}
		st.Settle()
		assign = st.Assignment()

		// 2. CronJob: trigger the RASA workflow on schedule.
		if scenario == WithRASA && tick%cfg.OptimizeEvery == 0 {
			res, err := core.Optimize(ctx, p, assign, core.Options{
				Budget:        cfg.Budget,
				Partition:     withSeed(cfg.Partition, cfg.Seed+int64(tick)),
				SkipMigration: true,
			})
			if err != nil {
				return nil, fmt.Errorf("prodsim: tick %d: %w", tick, err)
			}
			if cfg.OnOptimize != nil {
				cfg.OnOptimize(tick, res)
			}
			// Respect unschedulable tags: tagged services stay put.
			candidate := res.Assignment.Clone()
			for s := 0; s < p.N(); s++ {
				if unschedulableUntil[s] > tick {
					restoreService(candidate, assign, s)
				}
			}
			candidate = sched.Complete(p, candidate)
			newGain := candidate.GainedAffinity(p)
			curGain := assign.GainedAffinity(p)
			improvement := math.Inf(1)
			if curGain > 0 {
				improvement = (newGain - curGain) / curGain
			}
			// Dry-run gate: only execute when improvement > 3%.
			if improvement > cfg.MinImprovement {
				moves := cluster.MoveCount(assign, candidate)
				if overUtilized(p, candidate, cfg.RollbackUtilization) {
					// Rollback: revert the reallocation and tag the
					// moved services unschedulable for three days.
					tm.RolledBack = true
					for s := 0; s < p.N(); s++ {
						if movedService(assign, candidate, s) {
							unschedulableUntil[s] = tick + cfg.UnschedulableTicks
						}
					}
				} else if cfg.Execute {
					rep, err := executeCandidate(ctx, cfg, st, assign, candidate, tick)
					if err != nil {
						return nil, fmt.Errorf("prodsim: tick %d: %w", tick, err)
					}
					// The cluster lands wherever execution landed, not
					// necessarily on the plan's target.
					assign = st.Assignment()
					tm.Applied = true
					tm.Moves = rep.Executed
					if cfg.OnExecute != nil {
						cfg.OnExecute(tick, rep)
					}
				} else {
					if err := st.SetAssignment(candidate); err != nil {
						return nil, fmt.Errorf("prodsim: tick %d: %w", tick, err)
					}
					// The adoption is committed to the event log, which
					// mutates the live assignment in place; re-read it
					// rather than aliasing the detached candidate.
					assign = st.Assignment()
					tm.Applied = true
					tm.Moves = moves
				}
			}
		}

		// 3. Measure.
		tm.GainedAffinity = assign.GainedAffinity(p)
		tm.Pairs = make([]PairMetrics, len(rep.TrackedPairs))
		remoteShare := clusterRemoteShare(p, assign)
		for i, pair := range rep.TrackedPairs {
			f := localizedFraction(p, assign, pair, scenario)
			tm.Pairs[i] = cfg.Latency.measure(f, remoteShare, noiseRng)
		}
		tm.Weighted = weightedMetrics(p, assign, scenario, cfg.Latency, remoteShare, noiseRng)
		rep.Ticks = append(rep.Ticks, tm)
	}
	return rep, nil
}

func withSeed(o partition.Options, seed int64) partition.Options {
	o.Seed = seed
	return o
}

// executeCandidate runs the gated reallocation through the migration
// executor: the plan from→candidate is computed under the SLA floor and
// driven command by command against the (possibly faulty) fabric. On
// return the state's assignment is the executor's believed final state.
func executeCandidate(ctx context.Context, cfg Config, st *incr.State, from, candidate *cluster.Assignment, tick int) (*exec.Report, error) {
	p := st.Problem()
	plan, err := migrate.Compute(ctx, p, from, candidate, migrate.Options{MinAlive: cfg.MinAlive})
	if err != nil {
		return nil, fmt.Errorf("planning migration: %w", err)
	}
	seed := cfg.Seed*6151 + int64(tick)*13 + 7
	var fab exec.Fabric
	if cfg.ExecFaultRate > 0 {
		fab = exec.NewFaultFabric(from.Clone(), exec.FaultConfig{FailureProb: cfg.ExecFaultRate, Seed: seed})
	} else {
		fab = exec.NewInstantFabric(from.Clone())
	}
	// The executor escalates re-plans through an engine over the live
	// state, so a faulty execution converges on a fresh target instead
	// of retrying a stale plan forever.
	eng := incr.New(st, incr.Options{Budget: cfg.Budget, MinAlive: cfg.MinAlive, Parallelism: 1}, nil)
	ex := exec.New(eng, fab, exec.Options{MinAlive: cfg.MinAlive, Parallelism: 1, Seed: seed}, nil)
	return ex.Execute(ctx, from, plan)
}

// topPairs returns the k heaviest affinity edges (the critical business
// service pairs of Figs. 11/12).
func topPairs(p *cluster.Problem, k int) [][2]int {
	es := p.Affinity.Edges()
	idx := make([]int, len(es))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return es[idx[a]].Weight > es[idx[b]].Weight })
	var out [][2]int
	for _, i := range idx {
		if len(out) == k {
			break
		}
		out = append(out, [2]int{es[i].U, es[i].V})
	}
	return out
}

func restoreService(dst, src *cluster.Assignment, s int) {
	for _, m := range dst.MachinesOf(s) {
		dst.Set(s, m, 0)
	}
	for _, m := range src.MachinesOf(s) {
		dst.Set(s, m, src.Get(s, m))
	}
}

func movedService(a, b *cluster.Assignment, s int) bool {
	for _, m := range a.MachinesOf(s) {
		if a.Get(s, m) != b.Get(s, m) {
			return true
		}
	}
	for _, m := range b.MachinesOf(s) {
		if a.Get(s, m) != b.Get(s, m) {
			return true
		}
	}
	return false
}

func overUtilized(p *cluster.Problem, a *cluster.Assignment, threshold float64) bool {
	used := a.UsedResources(p)
	for m := range p.Machines {
		cap := p.Machines[m].Capacity[0]
		if cap > 0 && used[m][0]/cap > threshold {
			return true
		}
	}
	return false
}

// localizedFraction is the share of a pair's traffic served locally.
func localizedFraction(p *cluster.Problem, a *cluster.Assignment, pair [2]int, scenario Scenario) float64 {
	if scenario == OnlyCollocated {
		return 1
	}
	return a.PairGainedAffinity(p, pair[0], pair[1])
}

// measure converts a localized fraction into latency and error rate.
func (lm LatencyModel) measure(localized, remoteShare float64, rng *rand.Rand) PairMetrics {
	rpc := lm.RPCMillis * (1 + lm.Congestion*remoteShare)
	rpc *= 1 + lm.Jitter*rng.NormFloat64()*0.5
	if rpc < lm.IPCMillis {
		rpc = lm.IPCMillis
	}
	ipc := lm.IPCMillis * (1 + 0.05*rng.NormFloat64())
	if ipc < 0.01 {
		ipc = 0.01
	}
	errRemote := lm.ErrRemote * (1 + 0.2*rng.NormFloat64())
	if errRemote < 0 {
		errRemote = 0
	}
	return PairMetrics{
		Latency:   localized*ipc + (1-localized)*rpc,
		ErrorRate: localized*lm.ErrLocal + (1-localized)*errRemote,
	}
}

// clusterRemoteShare is the fraction of total affinity traffic that
// crosses machines — the congestion driver.
func clusterRemoteShare(p *cluster.Problem, a *cluster.Assignment) float64 {
	total := p.Affinity.TotalWeight()
	if total == 0 {
		return 0
	}
	return 1 - a.GainedAffinity(p)/total
}

// weightedMetrics computes the QPS-weighted cluster metric of Fig. 13:
// each pair weighted by its traffic share.
func weightedMetrics(p *cluster.Problem, a *cluster.Assignment, scenario Scenario, lm LatencyModel, remoteShare float64, rng *rand.Rand) PairMetrics {
	var out PairMetrics
	total := p.Affinity.TotalWeight()
	if total == 0 {
		return out
	}
	for _, e := range p.Affinity.Edges() {
		f := 1.0
		if scenario != OnlyCollocated {
			f = a.PairGainedAffinity(p, e.U, e.V)
		}
		m := lm.measure(f, remoteShare, rng)
		w := e.Weight / total
		out.Latency += w * m.Latency
		out.ErrorRate += w * m.ErrorRate
	}
	return out
}

package migrate

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/graph"
)

// problemWith builds n services with the given replica counts (1 cpu
// per container) and m machines of the given capacity.
func problemWith(replicas []int, m int, capacity float64) *cluster.Problem {
	p := &cluster.Problem{
		ResourceNames: []string{"cpu"},
		Affinity:      graph.New(len(replicas)),
	}
	for _, d := range replicas {
		p.Services = append(p.Services, cluster.Service{
			Name: "s", Replicas: d, Request: cluster.Resources{1},
		})
	}
	for j := 0; j < m; j++ {
		p.Machines = append(p.Machines, cluster.Machine{Name: "m", Capacity: cluster.Resources{capacity}})
	}
	return p
}

func TestNoOpPlan(t *testing.T) {
	p := problemWith([]int{2}, 2, 4)
	a := cluster.NewAssignment(1, 2)
	a.Set(0, 0, 2)
	plan, err := Compute(context.Background(), p, a, a.Clone(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 0 || plan.Moves != 0 {
		t.Fatalf("no-op plan has %d steps, %d moves", len(plan.Steps), plan.Moves)
	}
}

func TestSimpleMove(t *testing.T) {
	// Move one of two containers from m0 to m1.
	p := problemWith([]int{2}, 2, 4)
	from := cluster.NewAssignment(1, 2)
	from.Set(0, 0, 2)
	to := cluster.NewAssignment(1, 2)
	to.Set(0, 0, 1)
	to.Set(0, 1, 1)
	plan, err := Compute(context.Background(), p, from, to, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Moves != 1 {
		t.Fatalf("moves = %d, want 1", plan.Moves)
	}
	final, err := Simulate(p, from, plan, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(final, to) {
		t.Fatal("plan does not reach target")
	}
}

func TestSingleReplicaCanMove(t *testing.T) {
	// d=1: floor(0.75*1)=0, so the single container may be offline
	// briefly — otherwise single-replica services could never migrate.
	p := problemWith([]int{1}, 2, 4)
	from := cluster.NewAssignment(1, 2)
	from.Set(0, 0, 1)
	to := cluster.NewAssignment(1, 2)
	to.Set(0, 1, 1)
	plan, err := Compute(context.Background(), p, from, to, Options{})
	if err != nil {
		t.Fatal(err)
	}
	final, err := Simulate(p, from, plan, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(final, to) {
		t.Fatal("plan does not reach target")
	}
}

func TestSLAFloorRespected(t *testing.T) {
	// Service with 4 replicas moving all 4: the floor of 3 alive forces
	// the plan to move at most one at a time.
	p := problemWith([]int{4}, 2, 8)
	from := cluster.NewAssignment(1, 2)
	from.Set(0, 0, 4)
	to := cluster.NewAssignment(1, 2)
	to.Set(0, 1, 4)
	plan, err := Compute(context.Background(), p, from, to, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate enforces the floor at every step and fails if violated.
	final, err := Simulate(p, from, plan, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(final, to) {
		t.Fatal("plan does not reach target")
	}
	// With floor 3 and 4 moves each needing delete+create, there must be
	// at least 4 delete steps interleaved with creates.
	if len(plan.Steps) < 8 {
		t.Fatalf("steps = %d; expected one-at-a-time interleaving (>= 8)", len(plan.Steps))
	}
}

func TestResourceConstrainedSwap(t *testing.T) {
	// Two services swap machines; each machine has one unit of slack, so
	// a delete must precede the opposite create.
	p := problemWith([]int{2, 2}, 2, 3)
	from := cluster.NewAssignment(2, 2)
	from.Set(0, 0, 2) // m0: 2 cpu used of 3
	from.Set(1, 1, 2) // m1: 2 cpu used of 3
	to := cluster.NewAssignment(2, 2)
	to.Set(0, 1, 2)
	to.Set(1, 0, 2)
	plan, err := Compute(context.Background(), p, from, to, Options{MinAlive: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	final, err := Simulate(p, from, plan, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(final, to) {
		t.Fatal("plan does not reach target")
	}
}

func TestStalledDeadlock(t *testing.T) {
	// Full machines with zero slack and MinAlive=1.0: nothing can move.
	p := problemWith([]int{1, 1}, 2, 1)
	from := cluster.NewAssignment(2, 2)
	from.Set(0, 0, 1)
	from.Set(1, 1, 1)
	to := cluster.NewAssignment(2, 2)
	to.Set(0, 1, 1)
	to.Set(1, 0, 1)
	_, err := Compute(context.Background(), p, from, to, Options{MinAlive: 1.0})
	if err == nil {
		t.Fatal("expected stall error")
	}
}

func TestFullSwapWithZeroFloorSucceeds(t *testing.T) {
	// Same zero-slack swap but default MinAlive: single-replica services
	// have floor 0, so delete-then-create works.
	p := problemWith([]int{1, 1}, 2, 1)
	from := cluster.NewAssignment(2, 2)
	from.Set(0, 0, 1)
	from.Set(1, 1, 1)
	to := cluster.NewAssignment(2, 2)
	to.Set(0, 1, 1)
	to.Set(1, 0, 1)
	plan, err := Compute(context.Background(), p, from, to, Options{})
	if err != nil {
		t.Fatal(err)
	}
	final, err := Simulate(p, from, plan, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(final, to) {
		t.Fatal("plan does not reach target")
	}
}

func TestBadShapes(t *testing.T) {
	p := problemWith([]int{1}, 2, 4)
	a := cluster.NewAssignment(1, 2)
	b := cluster.NewAssignment(2, 2)
	if _, err := Compute(context.Background(), p, a, b, Options{}); err == nil {
		t.Fatal("expected shape error")
	}
	if _, err := Compute(context.Background(), p, a, a, Options{MinAlive: 1.5}); err == nil {
		t.Fatal("expected MinAlive validation error")
	}
}

func TestSimulateCatchesBadPlan(t *testing.T) {
	p := problemWith([]int{2}, 2, 4)
	from := cluster.NewAssignment(1, 2)
	from.Set(0, 0, 2)
	bad := &Plan{Steps: []Step{{Command{Op: Delete, Service: 0, Machine: 1}}}}
	if _, err := Simulate(p, from, bad, 0.75); err == nil {
		t.Fatal("expected error deleting absent container")
	}
}

// randomScenario builds a feasible random (problem, from, to) triple by
// placing containers twice with a first-fit under capacity.
func randomScenario(rng *rand.Rand) (*cluster.Problem, *cluster.Assignment, *cluster.Assignment, bool) {
	n := 1 + rng.Intn(6)
	m := 2 + rng.Intn(5)
	replicas := make([]int, n)
	var total int
	for i := range replicas {
		replicas[i] = 1 + rng.Intn(4)
		total += replicas[i]
	}
	// Enough headroom that random placements are feasible and migration
	// has slack to work with.
	capacity := float64(total/m + 3)
	p := problemWith(replicas, m, capacity)

	place := func(seed int64) (*cluster.Assignment, bool) {
		r := rand.New(rand.NewSource(seed))
		a := cluster.NewAssignment(n, m)
		used := make([]float64, m)
		for s := 0; s < n; s++ {
			for c := 0; c < replicas[s]; c++ {
				placed := false
				for try := 0; try < 3*m; try++ {
					mi := r.Intn(m)
					if used[mi]+1 <= capacity {
						a.Add(s, mi, 1)
						used[mi]++
						placed = true
						break
					}
				}
				if !placed {
					return nil, false
				}
			}
		}
		return a, true
	}
	from, ok1 := place(rng.Int63())
	to, ok2 := place(rng.Int63())
	return p, from, to, ok1 && ok2
}

// Property: computed plans always reach the target exactly (when no
// deadlock-breaking relocation was needed) or an equivalent state with
// the same per-service placement counts, respecting SLA floors and
// capacities at every step.
func TestPropertyPlansReachTarget(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, from, to, ok := randomScenario(rng)
		if !ok {
			return true // skip infeasible random draws
		}
		plan, err := Compute(context.Background(), p, from, to, Options{})
		if err != nil {
			return false
		}
		final, err := Simulate(p, from, plan, 0.75)
		if err != nil {
			return false
		}
		if plan.Relocations == 0 {
			return Equal(final, to)
		}
		for s := 0; s < p.N(); s++ {
			if final.Placed(s) != to.Placed(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: the number of delete commands equals the number of create
// commands equals Moves.
func TestPropertyMoveAccounting(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, from, to, ok := randomScenario(rng)
		if !ok {
			return true
		}
		plan, err := Compute(context.Background(), p, from, to, Options{})
		if err != nil {
			return false
		}
		var dels, creates int
		for _, step := range plan.Steps {
			for _, c := range step {
				if c.Op == Delete {
					dels++
				} else {
					creates++
				}
			}
		}
		return dels == plan.Moves && creates == plan.Moves
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestRelocationBreaksDeadlock: the zero-slack swap with a high SLA
// floor used to stall; with d_s = 2 the floor permits one container
// offline, and victim relocation must find the free third machine.
func TestRelocationBreaksDeadlock(t *testing.T) {
	p := problemWith([]int{2, 2}, 3, 2)
	from := cluster.NewAssignment(2, 3)
	from.Set(0, 0, 2)
	from.Set(1, 1, 2)
	to := cluster.NewAssignment(2, 3)
	to.Set(0, 1, 2)
	to.Set(1, 0, 2)
	plan, err := Compute(context.Background(), p, from, to, Options{MinAlive: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	final, err := Simulate(p, from, plan, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 2; s++ {
		if final.Placed(s) != 2 {
			t.Fatalf("service %d placed %d, want 2", s, final.Placed(s))
		}
	}
}

func BenchmarkComputePlan(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	p, from, to, ok := randomScenario(rng)
	if !ok {
		b.Skip("infeasible draw")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(context.Background(), p, from, to, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

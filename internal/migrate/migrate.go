// Package migrate implements the migration-path algorithm of Section
// IV-E (Algorithm 2): given the current and the optimized
// container-to-machine mappings, compute an ordered list of command sets
// (container deletions and creations) that transitions the cluster while
//
//   - keeping at least 75% of every service's containers alive
//     (temporarily relaxed SLA), and
//   - never exceeding machine resource capacities.
//
// Commands within one set may execute in parallel on different machines;
// set i+1 starts only after set i completes.
//
// The selection heuristics follow the paper: SelectDelete removes, per
// machine, the migrating container whose service has the lowest offline
// ratio; SelectCreate adds, per machine, a deleted-but-not-recreated
// container whose service has the highest offline ratio and whose
// resources fit. These offline-ratio rules are what keep the relaxed SLA
// satisfied throughout the reallocation.
package migrate

import (
	"context"
	"errors"
	"fmt"

	"github.com/cloudsched/rasa/internal/cluster"
)

// Op is a migration command kind.
type Op int

// Command kinds.
const (
	Delete Op = iota
	Create
)

func (o Op) String() string {
	if o == Delete {
		return "delete"
	}
	return "create"
}

// Command deletes or creates one container of a service on a machine.
type Command struct {
	Op      Op
	Service int
	Machine int
}

func (c Command) String() string {
	return fmt.Sprintf("(%s, s%d, m%d)", c.Op, c.Service, c.Machine)
}

// Step is a set of commands that may run in parallel.
type Step []Command

// Plan is an executable migration path.
type Plan struct {
	Steps []Step
	// Moves is the total number of container relocations (delete+create
	// pairs) the plan performs.
	Moves int
	// Relocations counts deadlock-breaking bounces: containers moved to
	// a machine other than the one the target mapping requested. When
	// non-zero the plan converges to a state that differs from `to` in
	// exactly those containers' machines; replay the plan with Simulate
	// to obtain it.
	Relocations int
}

// Options tune plan computation.
type Options struct {
	// MinAlive is the fraction of each service's containers that must
	// stay alive throughout the migration; default 0.75 (Section IV-E).
	// The per-service floor is floor(MinAlive * d_s), so single-replica
	// services can still move.
	MinAlive float64
	// MaxIters guards against pathological deadlocks; 0 derives a bound
	// from the move count.
	MaxIters int
}

// ErrStalled reports that the planner could not make progress — e.g. a
// resource-deadlocked swap with no free capacity anywhere.
var ErrStalled = errors.New("migrate: no progress possible under SLA and resource constraints")

// Compute builds a migration plan from assignment `from` to `to`.
// Both assignments must satisfy resource constraints; `to` additionally
// is the target the plan converges to exactly. Cancelling the context
// stops the planning loop between iterations; the partial plan built so
// far is returned alongside the context's error (every prefix of a plan
// is safe to execute, so callers may run or discard it).
func Compute(ctx context.Context, p *cluster.Problem, from, to *cluster.Assignment, opts Options) (*Plan, error) {
	if opts.MinAlive <= 0 {
		opts.MinAlive = 0.75
	}
	if opts.MinAlive > 1 {
		return nil, fmt.Errorf("migrate: MinAlive %v > 1", opts.MinAlive)
	}
	n, m := p.N(), p.M()
	if from.N != n || to.N != n || from.M != m || to.M != m {
		return nil, fmt.Errorf("migrate: assignment shape mismatch")
	}

	cur := from.Clone()
	// Pending work per (machine, service).
	toDelete := make([]map[int]int, m) // [machine][service] -> count
	toCreate := make([]map[int]int, m)
	var totalMoves int
	for mi := 0; mi < m; mi++ {
		toDelete[mi] = make(map[int]int)
		toCreate[mi] = make(map[int]int)
	}
	createTotal := make([]int, n)
	deleteTotal := make([]int, n)
	for s := 0; s < n; s++ {
		for mi := 0; mi < m; mi++ {
			f, t := from.Get(s, mi), to.Get(s, mi)
			switch {
			case f > t:
				toDelete[mi][s] = f - t
				totalMoves += f - t
				deleteTotal[s] += f - t
			case t > f:
				toCreate[mi][s] = t - f
				createTotal[s] += t - f
			}
		}
	}

	alive := make([]int, n) // currently running containers per service
	minAlive := make([]int, n)
	deletedNotCreated := make([]int, n)
	for s := 0; s < n; s++ {
		alive[s] = cur.Placed(s)
		minAlive[s] = int(opts.MinAlive * float64(p.Services[s].Replicas))
		// The floor cannot demand more containers than the target state
		// provides: when the optimizer under-places a service (failed
		// deployments are tolerated and handed to the default
		// scheduler), the migration must still be able to reach it.
		if t := to.Placed(s); minAlive[s] > t {
			minAlive[s] = t
		}
		// Nor more than exist at entry: a service scaled up between
		// solves starts below its nominal floor (the deficit is what the
		// migration will create), and the plan must not be blocked by a
		// shortfall it did not cause.
		if minAlive[s] > alive[s] {
			minAlive[s] = alive[s]
		}
	}
	used := cur.UsedResources(p)

	// When `to` places more containers of a service than `from` does, the
	// surplus creations have no matching delete inside this plan: the
	// containers are already offline at entry (a machine death destroyed
	// them, or an interrupted earlier migration deleted them and never
	// recreated). Seed the offline budget with that deficit so
	// SelectCreate treats restoring them as the most urgent work —
	// without it the planner would stall with the creations forever
	// ineligible.
	netCreates := 0
	for s := 0; s < n; s++ {
		if d := createTotal[s] - deleteTotal[s]; d > 0 {
			deletedNotCreated[s] = d
			netCreates += d
		}
	}

	offline := func(s int) float64 {
		return float64(deletedNotCreated[s]) / float64(p.Services[s].Replicas)
	}

	maxIters := opts.MaxIters
	if maxIters <= 0 {
		maxIters = 2*(totalMoves+netCreates) + 16
	}
	bounces := 0
	maxBounces := totalMoves/2 + 4

	plan := &Plan{Moves: totalMoves}
	for iter := 0; iter < maxIters; iter++ {
		if err := ctx.Err(); err != nil {
			return plan, err
		}
		// SelectDelete: one container per machine, lowest offline ratio,
		// respecting the SLA floor. Selections apply to the working state
		// immediately so that parallel deletions of the same service
		// within the step cannot jointly breach the floor.
		var delStep Step
		for mi := 0; mi < m; mi++ {
			best := -1
			for s := range toDelete[mi] {
				if toDelete[mi][s] <= 0 {
					continue
				}
				if alive[s]-1 < minAlive[s] {
					continue
				}
				if best < 0 || offline(s) < offline(best) || (offline(s) == offline(best) && s < best) {
					best = s
				}
			}
			if best < 0 {
				continue
			}
			delStep = append(delStep, Command{Op: Delete, Service: best, Machine: mi})
			toDelete[mi][best]--
			if toDelete[mi][best] == 0 {
				delete(toDelete[mi], best)
			}
			cur.Add(best, mi, -1)
			alive[best]--
			deletedNotCreated[best]++
			used[mi] = used[mi].Sub(p.Services[best].Request)
		}

		// SelectCreate: one container per machine, highest offline ratio
		// among deleted-but-not-recreated services that fit. Selections
		// again apply immediately so the deleted-not-recreated budget is
		// not over-committed across machines within the step.
		var createStep Step
		for mi := 0; mi < m; mi++ {
			best := -1
			for s := range toCreate[mi] {
				if toCreate[mi][s] <= 0 || deletedNotCreated[s] <= 0 {
					continue
				}
				if !used[mi].Add(p.Services[s].Request).Fits(p.Machines[mi].Capacity) {
					continue
				}
				if best < 0 || offline(s) > offline(best) || (offline(s) == offline(best) && s < best) {
					best = s
				}
			}
			if best < 0 {
				continue
			}
			createStep = append(createStep, Command{Op: Create, Service: best, Machine: mi})
			toCreate[mi][best]--
			if toCreate[mi][best] == 0 {
				delete(toCreate[mi], best)
			}
			cur.Add(best, mi, 1)
			alive[best]++
			deletedNotCreated[best]--
			used[mi] = used[mi].Add(p.Services[best].Request)
		}

		if len(delStep) > 0 {
			plan.Steps = append(plan.Steps, delStep)
		}
		if len(createStep) > 0 {
			plan.Steps = append(plan.Steps, createStep)
		}
		if len(delStep) == 0 && len(createStep) == 0 {
			if donePending(toDelete) && donePending(toCreate) {
				return plan, nil
			}
			// Resource-ordering deadlock: relocate a victim container
			// off a blocked machine to free capacity (a "bounce", the
			// move a descheduler would perform). The relocated container
			// diverges from `to`; callers obtain the achieved state by
			// replaying the plan with Simulate.
			if bounces < maxBounces {
				if cmd, ok := relocateVictim(p, cur, used, toDelete, toCreate, alive, minAlive, deletedNotCreated); ok {
					bounces++
					plan.Moves++
					plan.Relocations++
					plan.Steps = append(plan.Steps, Step{cmd})
					continue
				}
			}
			return plan, ErrStalled
		}
		if donePending(toDelete) && donePending(toCreate) {
			return plan, nil
		}
	}
	return plan, ErrStalled
}

// relocateVictim breaks a capacity deadlock: it finds a machine whose
// pending creations are capacity-blocked, deletes one resident victim
// container that can live elsewhere, and queues the victim's re-creation
// on a machine with free capacity. Returns the delete command executed.
func relocateVictim(
	p *cluster.Problem,
	cur *cluster.Assignment,
	used []cluster.Resources,
	toDelete, toCreate []map[int]int,
	alive, minAlive, deletedNotCreated []int,
) (Command, bool) {
	m := p.M()
	for mi := 0; mi < m; mi++ {
		blocked := false
		for s, cnt := range toCreate[mi] {
			if cnt > 0 && deletedNotCreated[s] > 0 {
				blocked = true
				break
			}
		}
		if !blocked {
			continue
		}
		// Victim: a resident container whose service stays above its SLA
		// floor and that fits on some other machine right now.
		for v := 0; v < p.N(); v++ {
			if cur.Get(v, mi) <= 0 {
				continue
			}
			if alive[v]-1 < minAlive[v] {
				continue
			}
			req := p.Services[v].Request
			target := -1
			for mv := 0; mv < m; mv++ {
				if mv == mi || !p.CanHost(v, mv) {
					continue
				}
				if used[mv].Add(req).Fits(p.Machines[mv].Capacity) {
					target = mv
					break
				}
			}
			if target < 0 {
				continue
			}
			// Execute the delete; queue the re-creation on the target.
			if toDelete[mi][v] > 0 {
				toDelete[mi][v]--
				if toDelete[mi][v] == 0 {
					delete(toDelete[mi], v)
				}
			} else {
				// Not a planned migration: the victim will be recreated
				// on the chosen machine instead of where `to` had it.
				toCreate[target][v]++
			}
			cur.Add(v, mi, -1)
			alive[v]--
			deletedNotCreated[v]++
			used[mi] = used[mi].Sub(req)
			return Command{Op: Delete, Service: v, Machine: mi}, true
		}
	}
	return Command{}, false
}

func donePending(pending []map[int]int) bool {
	for _, m := range pending {
		if len(m) > 0 {
			return false
		}
	}
	return true
}

// Simulate replays a plan from the given starting assignment, verifying
// at every step that resource capacities hold and that no service drops
// below the SLA floor. It returns the final assignment.
func Simulate(p *cluster.Problem, from *cluster.Assignment, plan *Plan, minAlive float64) (*cluster.Assignment, error) {
	if minAlive <= 0 {
		minAlive = 0.75
	}
	cur := from.Clone()
	used := cur.UsedResources(p)
	alive := make([]int, p.N())
	floor := make([]int, p.N())
	// The plan's own end state stands in for Compute's `to` argument:
	// replaying the command counts gives each service's final container
	// count without needing the target assignment.
	final := make([]int, p.N())
	for s := 0; s < p.N(); s++ {
		final[s] = cur.Placed(s)
	}
	for _, step := range plan.Steps {
		for _, c := range step {
			switch c.Op {
			case Delete:
				final[c.Service]--
			case Create:
				final[c.Service]++
			}
		}
	}
	for s := 0; s < p.N(); s++ {
		alive[s] = cur.Placed(s)
		floor[s] = int(minAlive * float64(p.Services[s].Replicas))
		// Mirror Compute's two clamps: the availability floor is relative
		// to what the plan started with (an entry-state deficit is not a
		// violation) and to where it ends (when the optimizer under-places
		// a service, deletes down to that target are planned work, not
		// violations).
		if floor[s] > alive[s] {
			floor[s] = alive[s]
		}
		if floor[s] > final[s] {
			floor[s] = final[s]
		}
	}
	for si, step := range plan.Steps {
		for _, c := range step {
			switch c.Op {
			case Delete:
				if cur.Get(c.Service, c.Machine) <= 0 {
					return nil, fmt.Errorf("migrate: step %d deletes absent container %v", si, c)
				}
				cur.Add(c.Service, c.Machine, -1)
				alive[c.Service]--
				used[c.Machine] = used[c.Machine].Sub(p.Services[c.Service].Request)
			case Create:
				cur.Add(c.Service, c.Machine, 1)
				alive[c.Service]++
				used[c.Machine] = used[c.Machine].Add(p.Services[c.Service].Request)
			}
		}
		// Invariants hold between steps (within a step commands are
		// parallel but homogeneous: all deletes or all creates).
		for s := 0; s < p.N(); s++ {
			if alive[s] < floor[s] {
				return nil, fmt.Errorf("migrate: step %d drops service %d below SLA floor (%d < %d)", si, s, alive[s], floor[s])
			}
		}
		for mi := 0; mi < p.M(); mi++ {
			if !used[mi].Fits(p.Machines[mi].Capacity) {
				return nil, fmt.Errorf("migrate: step %d overloads machine %d", si, mi)
			}
		}
	}
	return cur, nil
}

// Equal reports whether two assignments are identical.
func Equal(a, b *cluster.Assignment) bool {
	if a.N != b.N || a.M != b.M {
		return false
	}
	for s := 0; s < a.N; s++ {
		for _, m := range a.MachinesOf(s) {
			if a.Get(s, m) != b.Get(s, m) {
				return false
			}
		}
		for _, m := range b.MachinesOf(s) {
			if a.Get(s, m) != b.Get(s, m) {
				return false
			}
		}
	}
	return true
}

package incr

import (
	"bytes"
	"math"
	"testing"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/workload"
)

// newTestState generates a T-scale cluster and wraps it in a State.
func newTestState(t *testing.T, preset workload.Preset) *State {
	t.Helper()
	c, err := workload.Generate(preset)
	if err != nil {
		t.Fatalf("generate %s: %v", preset.Name, err)
	}
	st, err := NewState(c.Problem, c.Original)
	if err != nil {
		t.Fatalf("new state: %v", err)
	}
	return st
}

func t3() workload.Preset { return workload.TrainingPresets()[2] }

func TestScaleServiceEvent(t *testing.T) {
	st := newTestState(t, t3())
	p := st.Problem()
	s := 0
	orig := p.Services[s].Replicas

	// Scale up: replicas target moves, placed count unchanged (deficit
	// awaits Reoptimize).
	placed := st.Assignment().Placed(s)
	if _, err := st.Apply(ScaleService{Service: s, Replicas: orig + 3}); err != nil {
		t.Fatalf("scale up: %v", err)
	}
	if p.Services[s].Replicas != orig+3 {
		t.Fatalf("replicas = %d, want %d", p.Services[s].Replicas, orig+3)
	}
	if got := st.Assignment().Placed(s); got != placed {
		t.Fatalf("scale up moved containers: placed %d, want %d", got, placed)
	}

	// Scale down strips surplus immediately.
	if _, err := st.Apply(ScaleService{Service: s, Replicas: 1}); err != nil {
		t.Fatalf("scale down: %v", err)
	}
	if got := st.Assignment().Placed(s); got != 1 {
		t.Fatalf("placed after scale down = %d, want 1", got)
	}

	// Invalid events are rejected.
	if _, err := st.Apply(ScaleService{Service: s, Replicas: 0}); err == nil {
		t.Fatal("zero replicas accepted")
	}
	if _, err := st.Apply(ScaleService{Service: p.N(), Replicas: 1}); err == nil {
		t.Fatal("out-of-range service accepted")
	}
}

func TestDrainMachineEvent(t *testing.T) {
	st := newTestState(t, t3())
	p := st.Problem()
	// Pick a machine that hosts something.
	target := -1
	for m := 0; m < p.M() && target < 0; m++ {
		for s := 0; s < p.N(); s++ {
			if st.Assignment().Get(s, m) > 0 {
				target = m
				break
			}
		}
	}
	if target < 0 {
		t.Fatal("no hosting machine in generated cluster")
	}
	if _, err := st.Apply(DrainMachine{Machine: target}); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for s := 0; s < p.N(); s++ {
		if st.Assignment().Get(s, target) != 0 {
			t.Fatalf("service %d still on drained machine", s)
		}
	}
	for r, v := range p.Machines[target].Capacity {
		if v != 0 {
			t.Fatalf("resource %d capacity %v after drain, want 0", r, v)
		}
	}
	// The default scheduler must not re-place anything there.
	st.Settle()
	for s := 0; s < p.N(); s++ {
		if st.Assignment().Get(s, target) != 0 {
			t.Fatalf("Settle re-placed service %d on drained machine", s)
		}
	}
}

func TestUpdateAffinityEvent(t *testing.T) {
	st := newTestState(t, t3())
	p := st.Problem()
	if _, err := st.Apply(UpdateAffinity{A: 0, B: 1, Weight: 7.5}); err != nil {
		t.Fatalf("update: %v", err)
	}
	if w := p.Affinity.Weight(0, 1); w != 7.5 {
		t.Fatalf("weight = %v, want 7.5", w)
	}
	// Absolute semantics: setting again replaces, not accumulates.
	if _, err := st.Apply(UpdateAffinity{A: 0, B: 1, Weight: 2}); err != nil {
		t.Fatalf("update: %v", err)
	}
	if w := p.Affinity.Weight(0, 1); w != 2 {
		t.Fatalf("weight = %v, want 2", w)
	}
	if _, err := st.Apply(UpdateAffinity{A: 0, B: 0, Weight: 1}); err == nil {
		t.Fatal("self-affinity accepted")
	}
	if _, err := st.Apply(UpdateAffinity{A: 0, B: 1, Weight: math.NaN()}); err == nil {
		t.Fatal("NaN weight accepted")
	}
}

func TestAddMachineEvent(t *testing.T) {
	st := newTestState(t, t3())
	p := st.Problem()
	m0 := p.M()
	capRes := make(cluster.Resources, len(p.ResourceNames))
	for r := range capRes {
		capRes[r] = 64
	}
	if _, err := st.Apply(AddMachine{Name: "new-0", Capacity: capRes, Spec: 1}); err != nil {
		t.Fatalf("add machine: %v", err)
	}
	if p.M() != m0+1 {
		t.Fatalf("M = %d, want %d", p.M(), m0+1)
	}
	if st.Assignment().M != m0+1 {
		t.Fatalf("assignment M = %d, want %d", st.Assignment().M, m0+1)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("problem invalid after add: %v", err)
	}
	if _, err := st.Apply(AddMachine{Capacity: cluster.Resources{1}}); err == nil {
		t.Fatal("wrong resource arity accepted")
	}
}

func TestRemoveServiceEvent(t *testing.T) {
	st := newTestState(t, t3())
	p := st.Problem()
	n0 := p.N()
	victim := 3
	// Record facts about a service above the victim to verify remapping.
	probe := victim + 2
	probeName := p.Services[probe].Name
	probePlaced := st.Assignment().Placed(probe)

	if _, err := st.Apply(RemoveService{Service: victim}); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if p.N() != n0-1 {
		t.Fatalf("N = %d, want %d", p.N(), n0-1)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("problem invalid after remove: %v", err)
	}
	shifted := probe - 1
	if p.Services[shifted].Name != probeName {
		t.Fatalf("service %d name %q, want %q", shifted, p.Services[shifted].Name, probeName)
	}
	if got := st.Assignment().Placed(shifted); got != probePlaced {
		t.Fatalf("shifted service placed = %d, want %d", got, probePlaced)
	}
	if viol := st.Assignment().Check(p, false); len(viol) > 0 {
		t.Fatalf("assignment violates constraints after remove: %v", viol[0])
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := &Trace{
		Version: TraceVersion,
		Seed:    42,
		Events: []TraceEvent{
			{Tick: 0, EventJSON: ToJSON(ScaleService{Service: 0, Replicas: 4})},
			{Tick: 0, EventJSON: ToJSON(UpdateAffinity{A: 1, B: 2, Weight: 0.5})},
			{Tick: 1, EventJSON: ToJSON(DrainMachine{Machine: 7})},
			{Tick: 2, EventJSON: ToJSON(AddMachine{Name: "x", Capacity: cluster.Resources{8, 16}, Spec: 2})},
			{Tick: 2, EventJSON: ToJSON(RemoveService{Service: 0})},
		},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	ticks, err := got.Ticks()
	if err != nil {
		t.Fatalf("ticks: %v", err)
	}
	if len(ticks) != 3 || len(ticks[0].Events) != 2 || len(ticks[1].Events) != 1 || len(ticks[2].Events) != 2 {
		t.Fatalf("tick grouping wrong: %+v", ticks)
	}
	if ev, ok := ticks[0].Events[0].(ScaleService); !ok || ev.Service != 0 || ev.Replicas != 4 {
		t.Fatalf("decoded event = %#v", ticks[0].Events[0])
	}
	if ev, ok := ticks[2].Events[0].(AddMachine); !ok || len(ev.Capacity) != 2 || ev.Capacity[1] != 16 {
		t.Fatalf("decoded add machine = %#v", ticks[2].Events[0])
	}

	// Version check.
	bad := bytes.NewBufferString(`{"version":"other/9","events":[]}`)
	if _, err := ReadTrace(bad); err == nil {
		t.Fatal("unknown version accepted")
	}
	// Unknown event type fails decode.
	tr2 := &Trace{Version: TraceVersion, Events: []TraceEvent{{EventJSON: EventJSON{Type: "nope"}}}}
	if _, err := tr2.Ticks(); err == nil {
		t.Fatal("unknown event type accepted")
	}
}

package incr

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/core"
	"github.com/cloudsched/rasa/internal/lifetime"
	"github.com/cloudsched/rasa/internal/migrate"
	"github.com/cloudsched/rasa/internal/obs"
	"github.com/cloudsched/rasa/internal/partition"
	"github.com/cloudsched/rasa/internal/pool"
	"github.com/cloudsched/rasa/internal/sched"
	"github.com/cloudsched/rasa/internal/selector"
	"github.com/cloudsched/rasa/internal/solve"
)

// Options tune the incremental engine.
type Options struct {
	// Budget bounds a full pipeline pass (escalations and the
	// bootstrap); default 2s.
	Budget time.Duration
	// DeltaBudget bounds the solver phase of a delta pass; default
	// Budget. Delta passes normally finish far inside it — the bound
	// exists so a pathological subproblem cannot stall the event loop.
	DeltaBudget time.Duration
	// DriftThreshold is the maximum tolerated loss of normalized gained
	// affinity relative to the last full solve before a delta pass
	// escalates to the full pipeline; default 0.05 (five points of
	// normalized affinity).
	DriftThreshold float64
	// MaxDirtyRatio escalates straight to a full solve when more than
	// this fraction of subproblems is dirty — at that point scoped
	// re-solves approach full-pipeline cost without its re-partitioning
	// benefit; default 0.5.
	MaxDirtyRatio float64
	// ForceFull makes every Reoptimize run the full pipeline (the
	// benchmark's baseline arm and an operational escape hatch).
	ForceFull bool

	// The remaining fields forward to core.Optimize for full passes and
	// to the selector/pool machinery for delta passes.
	Strategy      core.Strategy
	Partition     partition.Options
	Policy        selector.Policy
	Parallelism   int
	MinAlive      float64
	SkipMigration bool
}

func (o Options) withDefaults() Options {
	if o.Budget <= 0 {
		o.Budget = 2 * time.Second
	}
	if o.DeltaBudget <= 0 {
		o.DeltaBudget = o.Budget
	}
	if o.DriftThreshold <= 0 {
		o.DriftThreshold = 0.05
	}
	if o.MaxDirtyRatio <= 0 {
		o.MaxDirtyRatio = 0.5
	}
	if o.Policy == nil {
		o.Policy = selector.Heuristic{}
	}
	if o.MinAlive == 0 {
		o.MinAlive = 0.75
	}
	// The same worker-count clamp core.Options.Normalize applies: the
	// delta path hands Parallelism straight to pool.SolveAll without
	// passing through core.Optimize.
	if no, err := (core.Options{Budget: o.Budget, Parallelism: o.Parallelism, Policy: o.Policy}).Normalize(); err == nil {
		o.Parallelism = no.Parallelism
	}
	return o
}

// Mode is the path a Reoptimize call took.
type Mode int

// Reoptimize paths.
const (
	// ModeNoop: nothing dirty, nothing solved.
	ModeNoop Mode = iota
	// ModeDelta: only dirty subproblems re-solved.
	ModeDelta
	// ModeFull: the full pipeline ran (bootstrap or escalation).
	ModeFull
)

func (m Mode) String() string {
	switch m {
	case ModeNoop:
		return "noop"
	case ModeDelta:
		return "delta"
	case ModeFull:
		return "full"
	}
	return "unknown"
}

// Escalation reasons (EscalationReason values and the obs counter
// label).
const (
	ReasonBootstrap  = "bootstrap"   // no full solve yet
	ReasonForced     = "force-full"  // Options.ForceFull
	ReasonDirtyRatio = "dirty-ratio" // dirty set beyond MaxDirtyRatio
	ReasonDrift      = "drift"       // delta result lost too much affinity
	ReasonPartition  = "partition-error"
)

// PlacementDelta is one changed placement cell: service s went from
// Before to After containers on machine m.
type PlacementDelta = lifetime.PlacementDelta

// Result is the outcome of one Reoptimize or Propose call.
type Result struct {
	Mode Mode
	// Escalated reports that a full pass ran for any reason;
	// EscalationReason says which (empty for noop/delta).
	Escalated        bool
	EscalationReason string
	// DirtySubproblems / TotalSubproblems as seen at entry.
	DirtySubproblems int
	TotalSubproblems int
	// EventsApplied is the state's cumulative event count.
	EventsApplied int
	// GainedAffinity is the absolute gain of the adopted (or, for
	// Propose, the proposed) assignment; NormalizedGain divides by the
	// affinity graph's total weight; BaselineGain is the normalized
	// gain of the last full solve.
	GainedAffinity float64
	NormalizedGain float64
	BaselineGain   float64
	// Moves counts containers whose machine changed versus the
	// assignment at entry; Changed lists the differing cells.
	Moves   int
	Changed []PlacementDelta
	// Plan transitions the entry assignment to the adopted (Reoptimize)
	// or proposed (Propose) target (nil for noop, or when
	// SkipMigration).
	Plan             *migrate.Plan
	PartialMigration bool
	OutOfTime        bool
	Stats            solve.Stats
	Elapsed          time.Duration

	// head is the log head right after this pass committed; a later
	// CommitProposal refuses to apply the result if the log advanced.
	head uint64
}

// Engine drives incremental re-optimization over a State.
type Engine struct {
	st   *State
	opts Options
	m    *metrics
}

// New wraps st in an engine. reg may be nil (no metrics).
func New(st *State, opts Options, reg *obs.Registry) *Engine {
	return &Engine{st: st, opts: opts.withDefaults(), m: newMetrics(reg)}
}

// State returns the engine's state.
func (e *Engine) State() *State { return e.st }

// Apply forwards events to the state and counts them in the metrics.
func (e *Engine) Apply(events ...Event) (int, error) {
	applied, err := e.st.Apply(events...)
	for i := 0; i < applied; i++ {
		e.m.event(events[i].Kind())
	}
	return applied, err
}

// Reoptimize brings the assignment back to optimized quality after a
// batch of events. It decides between three paths: nothing dirty —
// noop; a bounded dirty set — re-solve only the dirty subproblems
// (warm-started where the formulation shape survived) and merge with
// the untouched remainder; otherwise, or when the delta result drifted
// too far below the last full solve's gained affinity, the full
// pipeline. The chosen target is adopted: committed to the event log
// as an applied plan, mutating the live assignment.
func (e *Engine) Reoptimize(ctx context.Context) (*Result, error) {
	return e.reoptimize(ctx, true)
}

// Propose runs the same decision pipeline as Reoptimize but does not
// adopt the target: the live assignment stays at its entry value and
// the pass is committed to the log as a proposal (Applied false). The
// returned Plan transitions the entry assignment to the proposed
// target; an executor actuates it move by move, each confirmed move
// landing in the log as a MoveApplied event — so the state converges
// on the target exactly as far as the fabric actually got.
func (e *Engine) Propose(ctx context.Context) (*Result, error) {
	return e.reoptimize(ctx, false)
}

// ErrStaleProposal is returned by CommitProposal when the log advanced
// after the proposal: the proposal's placement deltas and the dirty-set
// bookkeeping may no longer describe the live state.
var ErrStaleProposal = errors.New("incr: log advanced since proposal")

// CommitProposal adopts a previously Proposed result wholesale: the
// proposal's placement deltas are committed to the log as an applied
// plan, mutating the live assignment to the proposed target — the
// atomic alternative to executing the proposal's migration plan move by
// move. The federation merge step (internal/fed) uses it to commit
// per-block plans that passed the global SLA-floor check.
//
// The committed event carries Mode "" (the proposal already recorded
// its own Mode, and a "full" proposal already counted toward the log's
// full-run total), so the partition-seed exploration schedule matches a
// Reoptimize-adopted run exactly. Noop proposals commit trivially.
func (e *Engine) CommitProposal(res *Result) error {
	st := e.st
	st.mu.Lock()
	defer st.mu.Unlock()
	if res.Mode == ModeNoop {
		return nil
	}
	if st.log.Head() != res.head {
		return ErrStaleProposal
	}
	pc := lifetime.PlanCommitted{
		Origin:  "commit",
		Applied: true,
		Moves:   res.Moves,
		Changed: res.Changed,
	}
	if err := st.commitLocked(pc); err != nil {
		return err
	}
	st.dirty = make(map[int]bool)
	st.dirtyTrivial = false
	return nil
}

func (e *Engine) reoptimize(ctx context.Context, adopt bool) (*Result, error) {
	st := e.st
	st.mu.Lock()
	defer st.mu.Unlock()
	st.catchUpLocked()
	start := time.Now()
	p := st.log.Problem()
	cur := st.log.Assignment()

	dirtyCount := len(st.dirty)
	totalGroups := len(st.groups)

	reason := ""
	switch {
	case e.opts.ForceFull:
		reason = ReasonForced
	case !st.havePartition:
		reason = ReasonBootstrap
	case dirtyCount == 0 && !st.dirtyTrivial:
		res := &Result{
			Mode:             ModeNoop,
			TotalSubproblems: totalGroups,
			EventsApplied:    st.eventsApplied,
			BaselineGain:     st.baseGain,
			Elapsed:          time.Since(start),
		}
		res.GainedAffinity = cur.GainedAffinity(p)
		if total := p.Affinity.TotalWeight(); total > 0 {
			res.NormalizedGain = res.GainedAffinity / total
		}
		res.head = st.log.Head()
		e.m.reoptimize(res.Mode)
		return res, nil
	case float64(dirtyCount) > e.opts.MaxDirtyRatio*float64(totalGroups):
		reason = ReasonDirtyRatio
	}
	if reason != "" {
		return e.full(ctx, start, reason, dirtyCount, totalGroups, adopt)
	}

	ratio := 0.0
	if totalGroups > 0 {
		ratio = float64(dirtyCount) / float64(totalGroups)
	}
	e.m.dirtyRatio(ratio)

	// Delta pass. Collect dirty groups in index order (determinism),
	// build their subproblems against the untouched remainder's
	// residual capacities, and re-solve only those.
	old := cur.Clone()
	var dirtyIdx []int
	var dirtyGroups [][]int
	inDirty := make([]bool, p.N())
	for g := 0; g < totalGroups; g++ {
		if !st.dirty[g] {
			continue
		}
		dirtyIdx = append(dirtyIdx, g)
		dirtyGroups = append(dirtyGroups, st.groups[g])
		for _, s := range st.groups[g] {
			inDirty[s] = true
		}
	}
	stay := make([]int, 0, p.N())
	for s := 0; s < p.N(); s++ {
		if !inDirty[s] {
			stay = append(stay, s)
		}
	}

	subs, err := partition.AssignMachines(p, cur, dirtyGroups, stay)
	if err != nil {
		// Delta subproblem construction failed (should not happen on a
		// valid state); the full pipeline re-partitions from scratch.
		return e.full(ctx, start, ReasonPartition, dirtyCount, totalGroups, adopt)
	}
	selected := make([]pool.Algorithm, len(subs))
	for i, sp := range subs {
		selected[i] = e.opts.Policy.Decide(sp).Algorithm
	}
	results := pool.SolveAllWarm(ctx, subs,
		func(i int) pool.Algorithm { return selected[i] },
		func(i int) *pool.WarmStart { return st.warmFor(dirtyIdx[i]) },
		e.opts.DeltaBudget, e.opts.Parallelism)

	// Low-confidence decisions raced both arms; the outcomes are oracle
	// labels for a learning policy (shared across every engine — and, in
	// the federated pool, every block — that holds the same Policy).
	if learner, ok := e.opts.Policy.(selector.Observer); ok {
		for i, r := range results {
			if r.Race != nil {
				learner.ObserveRace(selector.FromRace(subs[i], r.Race))
			}
		}
	}

	next := sched.Merge(p, cur, &partition.Result{Subproblems: subs}, results)
	core.ReconcileSLA(p, cur, next)
	if core.EvictForSLA(p, next) {
		next = sched.Complete(p, next)
		core.ReconcileSLA(p, cur, next)
	}

	total := p.Affinity.TotalWeight()
	gain := next.GainedAffinity(p)
	norm := 0.0
	if total > 0 {
		norm = gain / total
	}
	if st.baseGain-norm > e.opts.DriftThreshold {
		// The scoped solve cannot recover enough of the affinity the
		// events destroyed (typically cross-subproblem edges the current
		// partition cannot collocate): re-partition with the full
		// pipeline. The delta result is discarded; the live assignment
		// is still the entry assignment.
		return e.full(ctx, start, ReasonDrift, dirtyCount, totalGroups, adopt)
	}

	res := &Result{
		Mode:             ModeDelta,
		DirtySubproblems: dirtyCount,
		TotalSubproblems: totalGroups,
		EventsApplied:    st.eventsApplied,
		GainedAffinity:   gain,
		NormalizedGain:   norm,
		BaselineGain:     st.baseGain,
	}
	for _, r := range results {
		res.Stats.Merge(r.Stats)
	}
	res.OutOfTime = true
	for _, r := range results {
		if !r.OutOfTime {
			res.OutOfTime = false
			break
		}
	}
	if len(results) == 0 {
		res.OutOfTime = false
	}

	target := next
	if !e.opts.SkipMigration && ctx.Err() == nil {
		plan, reached, partial, perr := planMigration(ctx, p, old, next, e.opts.MinAlive)
		if perr != nil {
			return nil, perr
		}
		res.Plan = plan
		res.PartialMigration = partial
		if reached != nil {
			target = reached
			res.GainedAffinity = target.GainedAffinity(p)
			if total > 0 {
				res.NormalizedGain = res.GainedAffinity / total
			}
		}
	}
	// Moves/Changed diff against the entry assignment — computed before
	// the commit, which (when adopting) mutates the live assignment in
	// place to the target.
	res.Moves = cluster.MoveCount(old, target)
	res.Changed = diffPlacements(old, target)
	pc := lifetime.PlanCommitted{Origin: "propose", Mode: "delta", Moves: res.Moves}
	if adopt {
		pc.Origin = "reoptimize"
		pc.Applied = true
		pc.Changed = res.Changed
	}
	if err := st.commitLocked(pc); err != nil {
		return nil, err
	}
	res.head = st.log.Head()
	if adopt {
		st.dirty = make(map[int]bool)
		st.dirtyTrivial = false
	}

	res.Elapsed = time.Since(start)
	e.m.reoptimize(res.Mode)
	e.m.deltaSolve(res.Elapsed)
	e.m.addMoves(res.Moves)
	return res, nil
}

// full runs the complete pipeline under the state lock and installs the
// fresh partition as the new delta baseline.
func (e *Engine) full(ctx context.Context, start time.Time, reason string, dirtyCount, totalGroups int, adopt bool) (*Result, error) {
	st := e.st
	p := st.log.Problem()
	cur := st.log.Assignment()
	copts := core.Options{
		Budget:        e.opts.Budget,
		Strategy:      e.opts.Strategy,
		Partition:     e.opts.Partition,
		Policy:        e.opts.Policy,
		Parallelism:   e.opts.Parallelism,
		MinAlive:      e.opts.MinAlive,
		SkipMigration: e.opts.SkipMigration,
	}
	// Vary the sampling seed across runs so repeated escalations explore
	// different partitions instead of replaying one. The count comes
	// from the log's fold (full-pipeline commits), so a state resumed
	// from a replayed log re-solves with the same seed schedule an
	// uninterrupted run would have used.
	copts.Partition.Seed += int64(st.log.FullRuns() + 1)
	cres, err := core.Optimize(ctx, p, cur, copts)
	if err != nil {
		return nil, fmt.Errorf("incr: full pipeline: %w", err)
	}

	moves := cluster.MoveCount(cur, cres.Assignment)
	changed := diffPlacements(cur, cres.Assignment)
	pc := lifetime.PlanCommitted{Origin: "propose", Mode: "full", Reason: reason, Moves: moves}
	if adopt {
		pc.Origin = "reoptimize"
		pc.Applied = true
		pc.Changed = changed
	}
	if err := st.commitLocked(pc); err != nil {
		return nil, err
	}

	groups := make([][]int, 0, len(cres.Partition.Subproblems))
	for _, sp := range cres.Partition.Subproblems {
		groups = append(groups, append([]int(nil), sp.Services...))
	}
	st.setPartition(groups)

	total := p.Affinity.TotalWeight()
	norm := 0.0
	if total > 0 {
		norm = cres.GainedAffinity / total
	}
	st.baseGain = norm

	res := &Result{
		Mode:             ModeFull,
		Escalated:        true,
		EscalationReason: reason,
		DirtySubproblems: dirtyCount,
		TotalSubproblems: totalGroups,
		EventsApplied:    st.eventsApplied,
		GainedAffinity:   cres.GainedAffinity,
		NormalizedGain:   norm,
		BaselineGain:     norm,
		Moves:            moves,
		Changed:          changed,
		Plan:             cres.Plan,
		PartialMigration: cres.PartialMigration,
		OutOfTime:        cres.OutOfTime,
		Stats:            cres.Stats,
		Elapsed:          time.Since(start),
		head:             st.log.Head(),
	}
	e.m.reoptimize(res.Mode)
	e.m.escalation(reason)
	e.m.addMoves(res.Moves)
	return res, nil
}

// planMigration computes the migration plan from old to next, handling
// the same edge cases as core.Optimize: deadlock-breaking relocations
// make the replayed state authoritative, and a stalled plan adopts the
// reachable state completed by the default scheduler (with the plan
// extended to transition exactly there). reached is nil when next is
// already authoritative.
func planMigration(ctx context.Context, p *cluster.Problem, old, next *cluster.Assignment, minAlive float64) (plan *migrate.Plan, reached *cluster.Assignment, partial bool, err error) {
	plan, err = migrate.Compute(ctx, p, old, next, migrate.Options{MinAlive: minAlive})
	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return nil, nil, false, nil
	case err == nil:
		if plan.Relocations > 0 {
			r, simErr := migrate.Simulate(p, old, plan, minAlive)
			if simErr != nil {
				return nil, nil, false, fmt.Errorf("incr: migration replay: %w", simErr)
			}
			return plan, r, false, nil
		}
		return plan, nil, false, nil
	case errors.Is(err, migrate.ErrStalled):
		r, simErr := migrate.Simulate(p, old, plan, minAlive)
		if simErr != nil {
			return nil, nil, false, fmt.Errorf("incr: partial migration replay: %w", simErr)
		}
		completed := sched.Complete(p, r)
		var finalStep migrate.Step
		completed.EachPlacement(func(s, m, count int) {
			for extra := count - r.Get(s, m); extra > 0; extra-- {
				finalStep = append(finalStep, migrate.Command{Op: migrate.Create, Service: s, Machine: m})
			}
		})
		if len(finalStep) > 0 {
			plan.Steps = append(plan.Steps, finalStep)
		}
		return plan, completed, true, nil
	default:
		return nil, nil, false, fmt.Errorf("incr: migration planning: %w", err)
	}
}

// diffPlacements lists every (service, machine) cell where old and next
// differ.
func diffPlacements(old, next *cluster.Assignment) []PlacementDelta {
	var out []PlacementDelta
	for s := 0; s < next.N; s++ {
		seen := make(map[int]bool)
		for _, m := range old.MachinesOf(s) {
			seen[m] = true
			if b, a := old.Get(s, m), next.Get(s, m); b != a {
				out = append(out, PlacementDelta{Service: s, Machine: m, Before: b, After: a})
			}
		}
		for _, m := range next.MachinesOf(s) {
			if !seen[m] {
				out = append(out, PlacementDelta{Service: s, Machine: m, Before: 0, After: next.Get(s, m)})
			}
		}
	}
	return out
}

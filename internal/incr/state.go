package incr

import (
	"fmt"
	"sync"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/graph"
	"github.com/cloudsched/rasa/internal/pool"
	"github.com/cloudsched/rasa/internal/sched"
)

// State is the live cluster state the incremental engine owns: the
// mutable problem, the current assignment, the partition of the last
// full solve, and the dirty-tracking bookkeeping that maps applied
// events to affected subproblems.
//
// State methods lock internally, so Apply can race an HTTP handler; but
// the Problem/Assignment accessors hand out live pointers, so callers
// that inspect them must not do so concurrently with Apply or
// Reoptimize.
type State struct {
	mu     sync.Mutex
	p      *cluster.Problem
	assign *cluster.Assignment

	// Partition bookkeeping from the last full solve. groups[g] lists
	// the service indices of subproblem g; subOf[s] is the group of
	// service s, or -1 when s is trivial (left in place by the
	// partitioner). havePartition is false until the first full solve —
	// before that every event escalates, since there is nothing to
	// scope a delta against.
	groups        [][]int
	subOf         []int
	havePartition bool

	// dirty marks groups whose subproblem must be re-solved;
	// dirtyTrivial marks that some trivial service changed (it only
	// needs a default-scheduler completion pass, not a solver).
	dirty        map[int]bool
	dirtyTrivial bool

	// baseGain is the normalized gained affinity achieved by the last
	// full solve — the drift baseline.
	baseGain float64

	// warm caches per-group MIP root bases, keyed by group index. The
	// bases are starting hints only (validated and possibly discarded
	// downstream), so staleness can never corrupt a solve.
	warm map[int]*pool.WarmStart

	eventsApplied int
}

// NewState takes ownership of p and assign: the engine mutates both in
// place as events apply. Callers that need the originals intact must
// clone before constructing the state.
func NewState(p *cluster.Problem, assign *cluster.Assignment) (*State, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if assign == nil {
		return nil, fmt.Errorf("incr: nil assignment")
	}
	if assign.N != p.N() || assign.M != p.M() {
		return nil, fmt.Errorf("incr: assignment shape %dx%d does not match problem %dx%d",
			assign.N, assign.M, p.N(), p.M())
	}
	return &State{
		p:      p,
		assign: assign,
		dirty:  make(map[int]bool),
		warm:   make(map[int]*pool.WarmStart),
	}, nil
}

// Apply applies the events in order, stopping at the first invalid one.
// It returns how many were applied; on error the returned count is the
// index of the offending event and every earlier event remains applied
// (events are not transactional — they model an external feed that has
// already happened).
func (st *State) Apply(events ...Event) (int, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for i, ev := range events {
		if err := ev.apply(st); err != nil {
			return i, fmt.Errorf("incr: event %d (%s): %w", i, ev.Kind(), err)
		}
		st.eventsApplied++
	}
	return len(events), nil
}

// Problem returns the live problem. See the State doc for aliasing
// rules.
func (st *State) Problem() *cluster.Problem {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.p
}

// Assignment returns the live assignment. See the State doc for
// aliasing rules.
func (st *State) Assignment() *cluster.Assignment {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.assign
}

// SetAssignment replaces the current assignment (e.g. after an external
// rollback or a gated deployment that applied only part of a plan). The
// partition bookkeeping is kept; all groups are conservatively marked
// dirty, since the externally imposed placements may differ anywhere.
func (st *State) SetAssignment(a *cluster.Assignment) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if a == nil || a.N != st.p.N() || a.M != st.p.M() {
		return fmt.Errorf("incr: assignment shape mismatch")
	}
	st.assign = a
	for g := range st.groups {
		st.dirty[g] = true
	}
	st.dirtyTrivial = true
	return nil
}

// Settle fills SLA deficits with the default scheduler without running
// any solver, leaving the dirty set untouched: a cheap stop-gap between
// an event batch and the next Reoptimize, mirroring how production
// keeps the fleet serving while the optimizer is between runs.
func (st *State) Settle() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.assign = sched.Complete(st.p, st.assign)
}

// Stats is a point-in-time summary of the state.
type Stats struct {
	Services         int     `json:"services"`
	Machines         int     `json:"machines"`
	EventsApplied    int     `json:"eventsApplied"`
	TotalSubproblems int     `json:"totalSubproblems"`
	DirtySubproblems int     `json:"dirtySubproblems"`
	DirtyTrivial     bool    `json:"dirtyTrivial"`
	HavePartition    bool    `json:"havePartition"`
	NormalizedGain   float64 `json:"normalizedGain"`
	BaselineGain     float64 `json:"baselineGain"`
	GainedAffinity   float64 `json:"gainedAffinity"`
	TotalAffinity    float64 `json:"totalAffinity"`
}

// Snapshot returns current state statistics.
func (st *State) Snapshot() Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	gain := st.assign.GainedAffinity(st.p)
	total := st.p.Affinity.TotalWeight()
	s := Stats{
		Services:         st.p.N(),
		Machines:         st.p.M(),
		EventsApplied:    st.eventsApplied,
		TotalSubproblems: len(st.groups),
		DirtySubproblems: len(st.dirty),
		DirtyTrivial:     st.dirtyTrivial,
		HavePartition:    st.havePartition,
		BaselineGain:     st.baseGain,
		GainedAffinity:   gain,
		TotalAffinity:    total,
	}
	if total > 0 {
		s.NormalizedGain = gain / total
	}
	return s
}

// markDirty flags the subproblem owning service s. Before the first
// full solve there is no partition to scope against, so nothing is
// tracked — Reoptimize escalates unconditionally.
func (st *State) markDirty(s int) {
	if !st.havePartition {
		return
	}
	if g := st.subOf[s]; g >= 0 {
		st.dirty[g] = true
	} else {
		st.dirtyTrivial = true
	}
}

// setPartition installs a fresh partition (after a full solve): all
// dirty tracking resets and the warm-start caches are dropped, since
// group indices no longer mean what they meant.
func (st *State) setPartition(groups [][]int) {
	st.groups = groups
	st.subOf = make([]int, st.p.N())
	for s := range st.subOf {
		st.subOf[s] = -1
	}
	for g, svcs := range groups {
		for _, s := range svcs {
			st.subOf[s] = g
		}
	}
	st.dirty = make(map[int]bool)
	st.dirtyTrivial = false
	st.havePartition = true
	st.warm = make(map[int]*pool.WarmStart)
}

// warmFor returns the (possibly fresh) warm-start cache of group g.
func (st *State) warmFor(g int) *pool.WarmStart {
	w, ok := st.warm[g]
	if !ok {
		w = &pool.WarmStart{}
		st.warm[g] = w
	}
	return w
}

// removeService rebuilds problem, assignment, and partition
// bookkeeping with service s removed and every higher index shifted
// down by one.
func (st *State) removeService(s int) {
	p := st.p
	n := p.N()

	// Problem: services, affinity graph, anti-affinity rules,
	// schedulability rows.
	remap := make([]int, n) // old -> new; -1 for s
	for i := 0; i < n; i++ {
		switch {
		case i < s:
			remap[i] = i
		case i == s:
			remap[i] = -1
		default:
			remap[i] = i - 1
		}
	}
	p.Services = append(p.Services[:s:s], p.Services[s+1:]...)
	g := graph.New(n - 1)
	for _, e := range p.Affinity.Edges() {
		if e.U != s && e.V != s {
			g.AddEdge(remap[e.U], remap[e.V], e.Weight)
		}
	}
	p.Affinity = g
	var rules []cluster.AntiAffinityRule
	for _, rule := range p.AntiAffinity {
		var svcs []int
		for _, v := range rule.Services {
			if v != s {
				svcs = append(svcs, remap[v])
			}
		}
		if len(svcs) > 0 {
			rules = append(rules, cluster.AntiAffinityRule{Services: svcs, MaxPerHost: rule.MaxPerHost})
		}
	}
	p.AntiAffinity = rules
	if p.Schedulable != nil {
		p.Schedulable = append(p.Schedulable[:s:s], p.Schedulable[s+1:]...)
	}

	st.assign = st.assign.DropService(s)

	if !st.havePartition {
		return
	}
	// Partition bookkeeping: remap groups, drop emptied ones, carry the
	// dirty set across the group renumbering, and mark the departed
	// service's group dirty — its subproblem's affinity structure and
	// freed capacity both changed.
	oldGroup := st.subOf[s]
	var groups [][]int
	groupRemap := make(map[int]int, len(st.groups))
	for gi, svcs := range st.groups {
		var ns []int
		for _, v := range svcs {
			if v != s {
				ns = append(ns, remap[v])
			}
		}
		if len(ns) > 0 {
			groupRemap[gi] = len(groups)
			groups = append(groups, ns)
		}
	}
	dirty := make(map[int]bool, len(st.dirty))
	for gi := range st.dirty {
		if ni, ok := groupRemap[gi]; ok {
			dirty[ni] = true
		}
	}
	if oldGroup >= 0 {
		if ni, ok := groupRemap[oldGroup]; ok {
			dirty[ni] = true
		}
	}
	st.groups = groups
	st.subOf = make([]int, p.N())
	for i := range st.subOf {
		st.subOf[i] = -1
	}
	for gi, svcs := range groups {
		for _, v := range svcs {
			st.subOf[v] = gi
		}
	}
	st.dirty = dirty
	// Warm bases are keyed by group index and shaped by the old service
	// set; drop them all rather than chase the renumbering.
	st.warm = make(map[int]*pool.WarmStart)
}

package incr

import (
	"fmt"
	"sync"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/lifetime"
	"github.com/cloudsched/rasa/internal/pool"
	"github.com/cloudsched/rasa/internal/sched"
)

// State is the incremental engine's view over the lifetime event log:
// a cursor into the log plus the dirty-tracking bookkeeping that maps
// folded entries to affected partition subproblems. The log's folded
// state (problem + assignment) is the one source of truth — State owns
// no cluster data of its own.
//
// State methods lock internally, so Apply can race an HTTP handler;
// but the Problem/Assignment accessors hand out the log's live
// pointers, so callers that inspect them must not do so concurrently
// with Apply or Reoptimize.
type State struct {
	mu  sync.Mutex
	log *lifetime.Log
	// cursor is the sequence number of the last log entry folded into
	// the dirty tracking. Entries the engine appends itself (plan
	// commits) advance the cursor without folding — the engine already
	// knows what it did.
	cursor uint64

	// Partition bookkeeping from the last full solve. groups[g] lists
	// the service indices of subproblem g; subOf[s] is the group of
	// service s, or -1 when s is trivial (left in place by the
	// partitioner). havePartition is false until the first full solve —
	// before that every event escalates, since there is nothing to
	// scope a delta against.
	groups        [][]int
	subOf         []int
	havePartition bool

	// dirty marks groups whose subproblem must be re-solved;
	// dirtyTrivial marks that some trivial service changed (it only
	// needs a default-scheduler completion pass, not a solver).
	dirty        map[int]bool
	dirtyTrivial bool

	// baseGain is the normalized gained affinity achieved by the last
	// full solve — the drift baseline.
	baseGain float64

	// warm caches per-group MIP root bases, keyed by group index. The
	// bases are starting hints only (validated and possibly discarded
	// downstream), so staleness can never corrupt a solve.
	warm map[int]*pool.WarmStart

	eventsApplied int
}

// NewState builds a fresh event log over p and assign and wraps it.
// The log takes ownership: the fold mutates both in place as events
// append. Callers that need the originals intact must clone first.
func NewState(p *cluster.Problem, assign *cluster.Assignment) (*State, error) {
	l, err := lifetime.NewLog(p, assign)
	if err != nil {
		return nil, err
	}
	return FromLog(l), nil
}

// FromLog wraps an existing log — a replayed trace, a resumed
// checkpoint — folding every entry already in it. The partition is
// not reconstructible from the log (solver results are not events), so
// a state built this way escalates its first Reoptimize to the full
// pipeline, exactly like a bootstrap.
func FromLog(l *lifetime.Log) *State {
	st := &State{
		log:   l,
		dirty: make(map[int]bool),
		warm:  make(map[int]*pool.WarmStart),
	}
	st.mu.Lock()
	st.catchUpLocked()
	st.mu.Unlock()
	return st
}

// Log exposes the underlying event log (for executors appending
// actuation events and for serving the log over the wire).
func (st *State) Log() *lifetime.Log { return st.log }

// Apply appends the events to the log in order, stopping at the first
// invalid one, and folds them into the dirty tracking. It returns how
// many were applied; on error the returned count is the index of the
// offending event and every earlier event remains applied (events are
// not transactional — they model an external feed that has already
// happened).
func (st *State) Apply(events ...Event) (int, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	applied, err := st.log.Append(events...)
	st.eventsApplied += applied
	st.catchUpLocked()
	return applied, err
}

// catchUpLocked folds every log entry past the cursor — events the
// engine did not append itself (executor actuation, external feeds) as
// well as its own churn appends.
func (st *State) catchUpLocked() {
	ents := st.log.Entries(st.cursor + 1)
	for _, en := range ents {
		st.fold(en)
	}
	if n := len(ents); n > 0 {
		st.cursor = ents[n-1].Seq
	}
}

// fold maps one log entry onto the dirty tracking.
func (st *State) fold(en lifetime.Entry) {
	switch ev := en.Event.(type) {
	case lifetime.ScaleService:
		st.markDirty(ev.Service)
	case lifetime.UpdateAffinity:
		st.markDirty(ev.A)
		st.markDirty(ev.B)
	case lifetime.DrainMachine:
		for _, s := range en.Touched {
			st.markDirty(s)
		}
	case lifetime.MachineDied:
		for _, s := range en.Touched {
			st.markDirty(s)
		}
	case lifetime.MoveFailed:
		// The committed plan expected this move: the service will not
		// reach its target placement.
		st.markDirty(ev.Service)
	case lifetime.RemoveService:
		st.remapAfterRemove(ev.Service)
	case lifetime.ReplanRequested:
		// A consumer observed divergence: re-validate everything.
		st.markAllDirty()
	case lifetime.PlanCommitted:
		if ev.Applied {
			// Someone else's applied commit (a restore, an external
			// planner): the placements may differ anywhere.
			st.markAllDirty()
		}
	}
	// AddMachine, MoveStarted, MoveApplied: no dirty impact — new
	// capacity is picked up by the next solve, reservations are
	// executor-local, and applied moves converge on a committed target.
}

// commitLocked appends the engine's own plan commit and advances the
// cursor past it: the engine manages its dirty set directly for its
// own passes.
func (st *State) commitLocked(pc lifetime.PlanCommitted) error {
	if _, err := st.log.Append(pc); err != nil {
		return fmt.Errorf("incr: commit: %w", err)
	}
	st.cursor = st.log.Head()
	return nil
}

// adoptLocked commits target as an applied plan: the log's live
// assignment mutates cell by cell to match. No-op when target equals
// the live assignment.
func (st *State) adoptLocked(target *cluster.Assignment, origin string) error {
	cur := st.log.Assignment()
	changed := diffPlacements(cur, target)
	if len(changed) == 0 {
		return nil
	}
	return st.commitLocked(lifetime.PlanCommitted{
		Origin:  origin,
		Applied: true,
		Moves:   cluster.MoveCount(cur, target),
		Changed: changed,
	})
}

// Problem returns the live problem. See the State doc for aliasing
// rules.
func (st *State) Problem() *cluster.Problem {
	return st.log.Problem()
}

// Assignment returns the live assignment. See the State doc for
// aliasing rules.
func (st *State) Assignment() *cluster.Assignment {
	return st.log.Assignment()
}

// SetAssignment replaces the current assignment (e.g. after an external
// rollback or a gated deployment that applied only part of a plan),
// committed to the log as an applied "restore" plan. The partition
// bookkeeping is kept; all groups are conservatively marked dirty,
// since the externally imposed placements may differ anywhere.
func (st *State) SetAssignment(a *cluster.Assignment) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.catchUpLocked()
	p := st.log.Problem()
	if a == nil || a.N != p.N() || a.M != p.M() {
		return fmt.Errorf("incr: assignment shape mismatch")
	}
	if err := st.adoptLocked(a, "restore"); err != nil {
		return err
	}
	st.markAllDirty()
	return nil
}

// Settle fills SLA deficits with the default scheduler without running
// any solver, leaving the dirty set untouched: a cheap stop-gap between
// an event batch and the next Reoptimize, mirroring how production
// keeps the fleet serving while the optimizer is between runs. The
// re-placements are committed to the log as an applied "settle" plan.
func (st *State) Settle() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.catchUpLocked()
	p := st.log.Problem()
	completed := sched.Complete(p, st.log.Assignment())
	// The diff's Before cells come from the live assignment, so the
	// commit cannot fail verification.
	_ = st.adoptLocked(completed, "settle")
}

// Stats is a point-in-time summary of the state.
type Stats struct {
	Services         int     `json:"services"`
	Machines         int     `json:"machines"`
	EventsApplied    int     `json:"eventsApplied"`
	TotalSubproblems int     `json:"totalSubproblems"`
	DirtySubproblems int     `json:"dirtySubproblems"`
	DirtyTrivial     bool    `json:"dirtyTrivial"`
	HavePartition    bool    `json:"havePartition"`
	NormalizedGain   float64 `json:"normalizedGain"`
	BaselineGain     float64 `json:"baselineGain"`
	GainedAffinity   float64 `json:"gainedAffinity"`
	TotalAffinity    float64 `json:"totalAffinity"`
	// LogHead is the event log's newest sequence number; Fingerprint is
	// the folded state's order-independent hash.
	LogHead     uint64 `json:"logHead"`
	Fingerprint string `json:"fingerprint"`
}

// Snapshot returns current state statistics.
func (st *State) Snapshot() Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.catchUpLocked()
	p := st.log.Problem()
	assign := st.log.Assignment()
	gain := assign.GainedAffinity(p)
	total := p.Affinity.TotalWeight()
	s := Stats{
		Services:         p.N(),
		Machines:         p.M(),
		EventsApplied:    st.eventsApplied,
		TotalSubproblems: len(st.groups),
		DirtySubproblems: len(st.dirty),
		DirtyTrivial:     st.dirtyTrivial,
		HavePartition:    st.havePartition,
		BaselineGain:     st.baseGain,
		GainedAffinity:   gain,
		TotalAffinity:    total,
		LogHead:          st.log.Head(),
		Fingerprint:      st.log.Fingerprint(),
	}
	if total > 0 {
		s.NormalizedGain = gain / total
	}
	return s
}

// markDirty flags the subproblem owning service s. Before the first
// full solve there is no partition to scope against, so nothing is
// tracked — Reoptimize escalates unconditionally.
func (st *State) markDirty(s int) {
	if !st.havePartition {
		return
	}
	if s < 0 || s >= len(st.subOf) {
		// Index drift across a removal fold; conservative.
		st.dirtyTrivial = true
		return
	}
	if g := st.subOf[s]; g >= 0 {
		st.dirty[g] = true
	} else {
		st.dirtyTrivial = true
	}
}

// markAllDirty flags every subproblem and the trivial remainder.
func (st *State) markAllDirty() {
	for g := range st.groups {
		st.dirty[g] = true
	}
	st.dirtyTrivial = true
}

// setPartition installs a fresh partition (after a full solve): all
// dirty tracking resets and the warm-start caches are dropped, since
// group indices no longer mean what they meant.
func (st *State) setPartition(groups [][]int) {
	st.groups = groups
	st.subOf = make([]int, st.log.Problem().N())
	for s := range st.subOf {
		st.subOf[s] = -1
	}
	for g, svcs := range groups {
		for _, s := range svcs {
			st.subOf[s] = g
		}
	}
	st.dirty = make(map[int]bool)
	st.dirtyTrivial = false
	st.havePartition = true
	st.warm = make(map[int]*pool.WarmStart)
}

// warmFor returns the (possibly fresh) warm-start cache of group g.
func (st *State) warmFor(g int) *pool.WarmStart {
	w, ok := st.warm[g]
	if !ok {
		w = &pool.WarmStart{}
		st.warm[g] = w
	}
	return w
}

// remapAfterRemove rebuilds the partition bookkeeping after the log
// folded a RemoveService of s: groups remap, emptied ones drop, the
// dirty set carries across the renumbering, and the departed service's
// group is marked dirty — its subproblem's affinity structure and
// freed capacity both changed.
func (st *State) remapAfterRemove(s int) {
	if !st.havePartition {
		return
	}
	n := len(st.subOf) // pre-removal service count
	if s < 0 || s >= n {
		st.markAllDirty()
		return
	}
	remap := make([]int, n) // old -> new; -1 for s
	for i := 0; i < n; i++ {
		switch {
		case i < s:
			remap[i] = i
		case i == s:
			remap[i] = -1
		default:
			remap[i] = i - 1
		}
	}
	oldGroup := st.subOf[s]
	var groups [][]int
	groupRemap := make(map[int]int, len(st.groups))
	for gi, svcs := range st.groups {
		var ns []int
		for _, v := range svcs {
			if v != s {
				ns = append(ns, remap[v])
			}
		}
		if len(ns) > 0 {
			groupRemap[gi] = len(groups)
			groups = append(groups, ns)
		}
	}
	dirty := make(map[int]bool, len(st.dirty))
	for gi := range st.dirty {
		if ni, ok := groupRemap[gi]; ok {
			dirty[ni] = true
		}
	}
	if oldGroup >= 0 {
		if ni, ok := groupRemap[oldGroup]; ok {
			dirty[ni] = true
		}
	}
	st.groups = groups
	st.subOf = make([]int, n-1)
	for i := range st.subOf {
		st.subOf[i] = -1
	}
	for gi, svcs := range groups {
		for _, v := range svcs {
			st.subOf[v] = gi
		}
	}
	st.dirty = dirty
	// Warm bases are keyed by group index and shaped by the old service
	// set; drop them all rather than chase the renumbering.
	st.warm = make(map[int]*pool.WarmStart)
}

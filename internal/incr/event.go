// Package incr is the incremental re-optimization engine: the subsystem
// that turns the batch RASA pipeline into an online controller. It sits
// on the lifetime event log (package lifetime) as the one source of
// cluster truth, ingests a typed event stream (replica scale-ups,
// machine drains, affinity drift, inventory changes, executor
// actuation), tracks which partition subproblems each logged event
// dirties via a cursor into the log, and answers Reoptimize with a
// scoped delta solve — only the dirty subproblems go back through the
// selector/pool machinery, warm-started from cached root bases where
// the formulation shape survived — escalating to the full pipeline when
// the dirty set or the gained-affinity drift crosses a threshold.
//
// The paper runs RASA as a periodic CronJob that re-solves everything
// (Section III); region-wide deployments answer continuous deltas with
// online re-optimization instead. This package is that layer for this
// reproduction: events in, bounded warm scoped re-solves out.
package incr

import (
	"github.com/cloudsched/rasa/internal/lifetime"
)

// Event is one mutation of the live cluster state — an alias for the
// lifetime log's event type. Events are applied in order; indices
// (service, machine) always refer to the state at apply time — a
// RemoveService shifts every higher index down by one for all
// subsequent events.
type Event = lifetime.Event

// The churn event vocabulary, re-exported from the lifetime layer so
// existing callers (workload generators, the server's event endpoint,
// traces) keep compiling against incr. See the lifetime package for the
// apply semantics of each.
type (
	// ScaleService sets a service's SLA replica target.
	ScaleService = lifetime.ScaleService
	// AddMachine appends a machine to the inventory.
	AddMachine = lifetime.AddMachine
	// DrainMachine evicts a machine and zeroes its capacity.
	DrainMachine = lifetime.DrainMachine
	// UpdateAffinity sets the affinity weight between two services.
	UpdateAffinity = lifetime.UpdateAffinity
	// RemoveService retires a service entirely, remapping indices.
	RemoveService = lifetime.RemoveService
)

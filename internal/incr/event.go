// Package incr is the incremental re-optimization engine: the subsystem
// that turns the batch RASA pipeline into an online controller. It owns
// a mutable cluster state (problem + current assignment + the partition
// of the last full solve), ingests a typed event stream (replica
// scale-ups, machine drains, affinity drift, inventory changes), tracks
// which partition subproblems each event dirties, and answers
// Reoptimize with a scoped delta solve — only the dirty subproblems go
// back through the selector/pool machinery, warm-started from cached
// root bases where the formulation shape survived — escalating to the
// full pipeline when the dirty set or the gained-affinity drift crosses
// a threshold.
//
// The paper runs RASA as a periodic CronJob that re-solves everything
// (Section III); region-wide deployments answer continuous deltas with
// online re-optimization instead. This package is that layer for this
// reproduction: events in, bounded warm scoped re-solves out.
package incr

import (
	"fmt"
	"math"

	"github.com/cloudsched/rasa/internal/cluster"
)

// Event is one mutation of the live cluster state. Events are applied
// in order; indices (service, machine) always refer to the state at
// apply time — a RemoveService shifts every higher index down by one
// for all subsequent events.
type Event interface {
	// Kind names the event type (the wire discriminator and the metrics
	// label).
	Kind() string
	// apply mutates the state; the interface is closed over this package.
	apply(st *State) error
}

// ScaleService sets a service's SLA replica target. Scaling down strips
// the surplus containers immediately (most-loaded machines first);
// scaling up leaves a deficit for the next Reoptimize to place. Either
// way the service's subproblem is marked dirty: its demand changed.
type ScaleService struct {
	Service  int
	Replicas int
}

// Kind implements Event.
func (ScaleService) Kind() string { return "scaleService" }

func (e ScaleService) apply(st *State) error {
	if e.Service < 0 || e.Service >= st.p.N() {
		return fmt.Errorf("service %d out of range [0,%d)", e.Service, st.p.N())
	}
	if e.Replicas < 1 {
		return fmt.Errorf("replicas %d < 1 (use removeService to retire a service)", e.Replicas)
	}
	st.p.Services[e.Service].Replicas = e.Replicas
	// Strip surplus deterministically: repeatedly evict one container
	// from the machine currently hosting the most (ties to the lowest
	// machine index), preserving the service's spread.
	for st.assign.Placed(e.Service) > e.Replicas {
		best, bestCount := -1, 0
		for _, m := range st.assign.MachinesOf(e.Service) {
			if c := st.assign.Get(e.Service, m); c > bestCount {
				best, bestCount = m, c
			}
		}
		if best < 0 {
			break
		}
		st.assign.Add(e.Service, best, -1)
	}
	st.markDirty(e.Service)
	return nil
}

// AddMachine appends a machine to the inventory. Existing
// compatibility-restricted services do not gain the new machine;
// unrestricted services may use it. No subproblem is dirtied: the new
// capacity is picked up by the next solve that re-distributes machines
// (any delta or full pass).
type AddMachine struct {
	Name     string
	Capacity cluster.Resources
	Spec     int
}

// Kind implements Event.
func (AddMachine) Kind() string { return "addMachine" }

func (e AddMachine) apply(st *State) error {
	if len(e.Capacity) != len(st.p.ResourceNames) {
		return fmt.Errorf("capacity has %d resources, want %d", len(e.Capacity), len(st.p.ResourceNames))
	}
	for r, v := range e.Capacity {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("invalid %s capacity %v", st.p.ResourceNames[r], v)
		}
	}
	st.p.Machines = append(st.p.Machines, cluster.Machine{
		Name: e.Name, Capacity: e.Capacity.Clone(), Spec: e.Spec,
	})
	newM := st.p.M()
	for s := range st.p.Schedulable {
		if st.p.Schedulable[s] != nil {
			st.p.Schedulable[s] = st.p.Schedulable[s].Grow(newM)
		}
	}
	st.assign.M = newM
	return nil
}

// DrainMachine evicts every container from a machine and zeroes its
// capacity, so no solver or scheduler path places anything back on it
// (decommissioning, maintenance). Every service it hosted is marked
// dirty; the evicted containers are re-placed by the next Reoptimize.
type DrainMachine struct {
	Machine int
}

// Kind implements Event.
func (DrainMachine) Kind() string { return "drainMachine" }

func (e DrainMachine) apply(st *State) error {
	if e.Machine < 0 || e.Machine >= st.p.M() {
		return fmt.Errorf("machine %d out of range [0,%d)", e.Machine, st.p.M())
	}
	for s := 0; s < st.p.N(); s++ {
		if st.assign.Get(s, e.Machine) > 0 {
			st.assign.Set(s, e.Machine, 0)
			st.markDirty(s)
		}
	}
	cap := st.p.Machines[e.Machine].Capacity
	for r := range cap {
		cap[r] = 0
	}
	return nil
}

// UpdateAffinity sets the affinity weight between two services to an
// absolute value (traffic drift observed by the collector). Both
// endpoints' subproblems are marked dirty. When the pair spans two
// subproblems, the delta solves cannot collocate them — the
// gained-affinity drift check catches the accumulated loss and
// escalates to a full re-partition.
type UpdateAffinity struct {
	A, B   int
	Weight float64
}

// Kind implements Event.
func (UpdateAffinity) Kind() string { return "updateAffinity" }

func (e UpdateAffinity) apply(st *State) error {
	n := st.p.N()
	if e.A < 0 || e.A >= n || e.B < 0 || e.B >= n {
		return fmt.Errorf("services (%d,%d) out of range [0,%d)", e.A, e.B, n)
	}
	if e.A == e.B {
		return fmt.Errorf("self-affinity on service %d", e.A)
	}
	if e.Weight < 0 || math.IsNaN(e.Weight) || math.IsInf(e.Weight, 0) {
		return fmt.Errorf("invalid weight %v", e.Weight)
	}
	st.p.Affinity.SetEdge(e.A, e.B, e.Weight)
	st.markDirty(e.A)
	st.markDirty(e.B)
	return nil
}

// RemoveService retires a service entirely: its containers are
// deleted, its affinity edges and anti-affinity memberships disappear,
// and every service above it shifts down one index. The heaviest event
// — the problem, assignment, and partition bookkeeping are all
// rebuilt with remapped indices.
type RemoveService struct {
	Service int
}

// Kind implements Event.
func (RemoveService) Kind() string { return "removeService" }

func (e RemoveService) apply(st *State) error {
	if e.Service < 0 || e.Service >= st.p.N() {
		return fmt.Errorf("service %d out of range [0,%d)", e.Service, st.p.N())
	}
	if st.p.N() < 2 {
		return fmt.Errorf("cannot remove the last service")
	}
	st.removeService(e.Service)
	return nil
}

package incr

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/cloudsched/rasa/internal/lifetime"
)

// TraceVersion identifies the churn-trace JSON schema.
const TraceVersion = "rasa-churn-trace/1"

// EventJSON is the wire form of an Event — the lifetime layer's union
// encoding. Churn traces use only the churn fields, so files written by
// earlier versions of this schema parse unchanged.
type EventJSON = lifetime.EventJSON

// ToJSON encodes a typed event into its wire form.
func ToJSON(ev Event) EventJSON { return lifetime.ToJSON(ev) }

// DecodeEvents decodes a batch of wire events, failing on the first
// unknown type.
func DecodeEvents(batch []EventJSON) ([]Event, error) {
	return lifetime.DecodeEvents(batch)
}

// TraceEvent is one trace entry: an event stamped with the tick it
// fires on. Ticks are non-decreasing; all events of one tick form one
// Apply batch. Indices refer to the state after every earlier trace
// event has been applied (a removeService shifts later indices).
type TraceEvent struct {
	Tick int `json:"tick"`
	EventJSON
}

// Trace is a replayable churn trace against a specific snapshot: the
// workload generator emits one alongside the cluster it churns.
type Trace struct {
	Version string       `json:"version"`
	Seed    int64        `json:"seed,omitempty"`
	Events  []TraceEvent `json:"events"`
}

// Ticks returns the trace's events grouped and decoded per tick, as a
// sorted list of (tick, batch) pairs in file order.
func (t *Trace) Ticks() ([]TickBatch, error) {
	var out []TickBatch
	for i, te := range t.Events {
		ev, err := te.Event()
		if err != nil {
			return nil, fmt.Errorf("incr: trace event %d: %w", i, err)
		}
		if len(out) == 0 || out[len(out)-1].Tick != te.Tick {
			out = append(out, TickBatch{Tick: te.Tick})
		}
		out[len(out)-1].Events = append(out[len(out)-1].Events, ev)
	}
	return out, nil
}

// TickBatch is one tick's decoded event batch.
type TickBatch struct {
	Tick   int
	Events []Event
}

// WriteTrace writes the trace as indented JSON.
func WriteTrace(w io.Writer, t *Trace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ReadTrace parses a churn trace and checks its schema version.
func ReadTrace(r io.Reader) (*Trace, error) {
	var t Trace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("incr: parse trace: %w", err)
	}
	if t.Version != TraceVersion {
		return nil, fmt.Errorf("incr: unsupported trace version %q (want %q)", t.Version, TraceVersion)
	}
	return &t, nil
}

package incr

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/cloudsched/rasa/internal/cluster"
)

// TraceVersion identifies the churn-trace JSON schema.
const TraceVersion = "rasa-churn-trace/1"

// EventJSON is the wire form of an Event: a type discriminator plus the
// union of all event fields. Zero values round-trip (service 0 is a
// valid index, weight 0 zeroes an edge), so omitted fields decode to
// the same event they encoded from.
type EventJSON struct {
	Type     string    `json:"type"`
	Service  int       `json:"service,omitempty"`
	Replicas int       `json:"replicas,omitempty"`
	Machine  int       `json:"machine,omitempty"`
	Name     string    `json:"name,omitempty"`
	Capacity []float64 `json:"capacity,omitempty"`
	Spec     int       `json:"spec,omitempty"`
	A        int       `json:"a,omitempty"`
	B        int       `json:"b,omitempty"`
	Weight   float64   `json:"weight,omitempty"`
}

// Event decodes the wire form into a typed event.
func (e EventJSON) Event() (Event, error) {
	switch e.Type {
	case "scaleService":
		return ScaleService{Service: e.Service, Replicas: e.Replicas}, nil
	case "addMachine":
		return AddMachine{Name: e.Name, Capacity: cluster.Resources(e.Capacity), Spec: e.Spec}, nil
	case "drainMachine":
		return DrainMachine{Machine: e.Machine}, nil
	case "updateAffinity":
		return UpdateAffinity{A: e.A, B: e.B, Weight: e.Weight}, nil
	case "removeService":
		return RemoveService{Service: e.Service}, nil
	}
	return nil, fmt.Errorf("incr: unknown event type %q", e.Type)
}

// ToJSON encodes a typed event into its wire form.
func ToJSON(ev Event) EventJSON {
	switch e := ev.(type) {
	case ScaleService:
		return EventJSON{Type: e.Kind(), Service: e.Service, Replicas: e.Replicas}
	case AddMachine:
		return EventJSON{Type: e.Kind(), Name: e.Name, Capacity: e.Capacity, Spec: e.Spec}
	case DrainMachine:
		return EventJSON{Type: e.Kind(), Machine: e.Machine}
	case UpdateAffinity:
		return EventJSON{Type: e.Kind(), A: e.A, B: e.B, Weight: e.Weight}
	case RemoveService:
		return EventJSON{Type: e.Kind(), Service: e.Service}
	}
	panic(fmt.Sprintf("incr: unknown event %T", ev))
}

// DecodeEvents decodes a batch of wire events, failing on the first
// unknown type.
func DecodeEvents(batch []EventJSON) ([]Event, error) {
	out := make([]Event, len(batch))
	for i, ej := range batch {
		ev, err := ej.Event()
		if err != nil {
			return nil, fmt.Errorf("event %d: %w", i, err)
		}
		out[i] = ev
	}
	return out, nil
}

// TraceEvent is one trace entry: an event stamped with the tick it
// fires on. Ticks are non-decreasing; all events of one tick form one
// Apply batch. Indices refer to the state after every earlier trace
// event has been applied (a removeService shifts later indices).
type TraceEvent struct {
	Tick int `json:"tick"`
	EventJSON
}

// Trace is a replayable churn trace against a specific snapshot: the
// workload generator emits one alongside the cluster it churns.
type Trace struct {
	Version string       `json:"version"`
	Seed    int64        `json:"seed,omitempty"`
	Events  []TraceEvent `json:"events"`
}

// Ticks returns the trace's events grouped and decoded per tick, as a
// sorted list of (tick, batch) pairs in file order.
func (t *Trace) Ticks() ([]TickBatch, error) {
	var out []TickBatch
	for i, te := range t.Events {
		ev, err := te.Event()
		if err != nil {
			return nil, fmt.Errorf("incr: trace event %d: %w", i, err)
		}
		if len(out) == 0 || out[len(out)-1].Tick != te.Tick {
			out = append(out, TickBatch{Tick: te.Tick})
		}
		out[len(out)-1].Events = append(out[len(out)-1].Events, ev)
	}
	return out, nil
}

// TickBatch is one tick's decoded event batch.
type TickBatch struct {
	Tick   int
	Events []Event
}

// WriteTrace writes the trace as indented JSON.
func WriteTrace(w io.Writer, t *Trace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ReadTrace parses a churn trace and checks its schema version.
func ReadTrace(r io.Reader) (*Trace, error) {
	var t Trace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("incr: parse trace: %w", err)
	}
	if t.Version != TraceVersion {
		return nil, fmt.Errorf("incr: unsupported trace version %q (want %q)", t.Version, TraceVersion)
	}
	return &t, nil
}

package incr

import (
	"time"

	"github.com/cloudsched/rasa/internal/obs"
)

// metrics instruments the incremental engine. A nil *metrics is valid
// and drops every observation, so the engine works without a registry.
type metrics struct {
	events      *obs.CounterVec // rasa_incr_events_total{type}
	reopts      *obs.CounterVec // rasa_incr_reoptimize_total{mode}
	escalations *obs.CounterVec // rasa_incr_escalations_total{reason}
	ratio       *obs.Histogram  // rasa_incr_dirty_ratio
	deltaSecs   *obs.Histogram  // rasa_incr_delta_solve_seconds
	moves       *obs.Counter    // rasa_incr_moves_total
}

func newMetrics(reg *obs.Registry) *metrics {
	if reg == nil {
		return nil
	}
	return &metrics{
		events: reg.CounterVec("rasa_incr_events_total",
			"Cluster state events applied, by event type.", "type"),
		reopts: reg.CounterVec("rasa_incr_reoptimize_total",
			"Reoptimize calls, by path taken (noop, delta, full).", "mode"),
		escalations: reg.CounterVec("rasa_incr_escalations_total",
			"Full-pipeline runs, by the reason a delta pass was not enough.", "reason"),
		ratio: reg.Histogram("rasa_incr_dirty_ratio",
			"Fraction of partition subproblems dirty at each delta pass.",
			[]float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.75, 1}),
		deltaSecs: reg.Histogram("rasa_incr_delta_solve_seconds",
			"Wall time of adopted delta passes.",
			nil),
		moves: reg.Counter("rasa_incr_moves_total",
			"Containers moved by adopted re-optimizations."),
	}
}

func (m *metrics) event(kind string) {
	if m == nil {
		return
	}
	m.events.With(kind).Inc()
}

func (m *metrics) reoptimize(mode Mode) {
	if m == nil {
		return
	}
	m.reopts.With(mode.String()).Inc()
}

func (m *metrics) escalation(reason string) {
	if m == nil {
		return
	}
	m.escalations.With(reason).Inc()
}

func (m *metrics) dirtyRatio(r float64) {
	if m == nil {
		return
	}
	m.ratio.Observe(r)
}

func (m *metrics) deltaSolve(d time.Duration) {
	if m == nil {
		return
	}
	m.deltaSecs.Observe(d.Seconds())
}

func (m *metrics) addMoves(n int) {
	if m == nil {
		return
	}
	m.moves.Add(float64(n))
}

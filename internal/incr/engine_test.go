package incr

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/core"
	"github.com/cloudsched/rasa/internal/obs"
	"github.com/cloudsched/rasa/internal/workload"
)

func testOptions() Options {
	return Options{
		Budget:        3 * time.Second,
		SkipMigration: true,
		Parallelism:   2,
	}
}

func TestBootstrapNoopDelta(t *testing.T) {
	st := newTestState(t, t3())
	eng := New(st, testOptions(), nil)
	ctx := context.Background()

	// First call has no partition to scope against: full pipeline.
	res, err := eng.Reoptimize(ctx)
	if err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	if res.Mode != ModeFull || res.EscalationReason != ReasonBootstrap {
		t.Fatalf("bootstrap mode=%v reason=%q", res.Mode, res.EscalationReason)
	}
	if viol := st.Assignment().Check(st.Problem(), true); len(viol) > 0 {
		t.Fatalf("bootstrap assignment invalid: %v", viol[0])
	}
	if len(st.groups) == 0 {
		t.Fatal("no partition installed after full solve")
	}

	// Nothing dirty: noop.
	res, err = eng.Reoptimize(ctx)
	if err != nil {
		t.Fatalf("noop: %v", err)
	}
	if res.Mode != ModeNoop || res.Moves != 0 {
		t.Fatalf("noop mode=%v moves=%d", res.Mode, res.Moves)
	}

	// One scaled service: delta over exactly one dirty subproblem.
	var target int
	for s, g := range st.subOf {
		if g >= 0 {
			target = s
			break
		}
	}
	d := st.Problem().Services[target].Replicas
	if _, err := eng.Apply(ScaleService{Service: target, Replicas: d + 2}); err != nil {
		t.Fatalf("apply: %v", err)
	}
	res, err = eng.Reoptimize(ctx)
	if err != nil {
		t.Fatalf("delta: %v", err)
	}
	if res.Mode != ModeDelta {
		t.Fatalf("mode=%v reason=%q, want delta", res.Mode, res.EscalationReason)
	}
	if res.DirtySubproblems != 1 {
		t.Fatalf("dirty=%d, want 1", res.DirtySubproblems)
	}
	if viol := st.Assignment().Check(st.Problem(), true); len(viol) > 0 {
		t.Fatalf("delta assignment invalid: %v", viol[0])
	}
	if got := st.Assignment().Placed(target); got != d+2 {
		t.Fatalf("scaled service placed=%d, want %d", got, d+2)
	}
	if len(st.dirty) != 0 || st.dirtyTrivial {
		t.Fatal("dirty set not cleared after adopted delta")
	}
}

// TestDeltaQualityVsFull is the headline correctness property: after an
// event sequence, the combined delta assignment passes Check and its
// normalized gained affinity stays within the drift threshold of what a
// fresh full re-solve achieves on the same state.
func TestDeltaQualityVsFull(t *testing.T) {
	st := newTestState(t, t3())
	opts := testOptions()
	eng := New(st, opts, nil)
	ctx := context.Background()
	if _, err := eng.Reoptimize(ctx); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}

	// A modest event batch: scale two services, drain one machine.
	rng := rand.New(rand.NewSource(7))
	p := st.Problem()
	var events []Event
	picked := map[int]bool{}
	for len(events) < 2 {
		s := rng.Intn(p.N())
		if picked[s] || st.subOf[s] < 0 {
			continue
		}
		picked[s] = true
		events = append(events, ScaleService{Service: s, Replicas: p.Services[s].Replicas + 1 + rng.Intn(2)})
	}
	events = append(events, DrainMachine{Machine: rng.Intn(p.M())})
	if _, err := eng.Apply(events...); err != nil {
		t.Fatalf("apply: %v", err)
	}

	// Full re-solve on a snapshot of the same post-event state for
	// comparison (clone first: the engine owns the live objects).
	cmpAssign := st.Assignment().Clone()
	cmpRes, err := core.Optimize(ctx, p, cmpAssign, core.Options{
		Budget: opts.Budget, SkipMigration: true, Parallelism: opts.Parallelism,
	})
	if err != nil {
		t.Fatalf("reference full solve: %v", err)
	}

	res, err := eng.Reoptimize(ctx)
	if err != nil {
		t.Fatalf("reoptimize: %v", err)
	}
	if viol := st.Assignment().Check(p, true); len(viol) > 0 {
		t.Fatalf("combined assignment invalid: %v", viol[0])
	}
	total := p.Affinity.TotalWeight()
	fullNorm := cmpRes.GainedAffinity / total
	if res.NormalizedGain < fullNorm-eng.opts.DriftThreshold {
		t.Fatalf("delta gain %.4f more than %.2f below full re-solve %.4f",
			res.NormalizedGain, eng.opts.DriftThreshold, fullNorm)
	}
}

func TestDriftEscalation(t *testing.T) {
	st := newTestState(t, t3())
	reg := obs.NewRegistry()
	eng := New(st, testOptions(), reg)
	ctx := context.Background()
	if _, err := eng.Reoptimize(ctx); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	if len(st.groups) < 2 {
		t.Skipf("need >=2 subproblems, got %d", len(st.groups))
	}

	// A new affinity edge between two different subproblems, heavier
	// than the whole existing graph: no scoped solve can collocate the
	// pair, so normalized gain collapses and the engine must escalate.
	u, v := st.groups[0][0], st.groups[1][0]
	w := 2 * st.Problem().Affinity.TotalWeight()
	if _, err := eng.Apply(UpdateAffinity{A: u, B: v, Weight: w}); err != nil {
		t.Fatalf("apply: %v", err)
	}
	res, err := eng.Reoptimize(ctx)
	if err != nil {
		t.Fatalf("reoptimize: %v", err)
	}
	if res.Mode != ModeFull || res.EscalationReason != ReasonDrift {
		t.Fatalf("mode=%v reason=%q, want full/drift", res.Mode, res.EscalationReason)
	}
	if !res.Escalated {
		t.Fatal("Escalated not set")
	}
	if got := reg.CounterVec("rasa_incr_escalations_total",
		"Full-pipeline runs, by the reason a delta pass was not enough.", "reason").
		With(ReasonDrift).Value(); got != 1 {
		t.Fatalf("escalation counter = %v, want 1", got)
	}
	if viol := st.Assignment().Check(st.Problem(), true); len(viol) > 0 {
		t.Fatalf("escalated assignment invalid: %v", viol[0])
	}
}

func TestDirtyRatioEscalation(t *testing.T) {
	st := newTestState(t, t3())
	eng := New(st, testOptions(), nil)
	ctx := context.Background()
	if _, err := eng.Reoptimize(ctx); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}

	// Dirty every subproblem: scale one service from each group.
	p := st.Problem()
	var events []Event
	for _, g := range st.groups {
		s := g[0]
		events = append(events, ScaleService{Service: s, Replicas: p.Services[s].Replicas + 1})
	}
	if _, err := eng.Apply(events...); err != nil {
		t.Fatalf("apply: %v", err)
	}
	res, err := eng.Reoptimize(ctx)
	if err != nil {
		t.Fatalf("reoptimize: %v", err)
	}
	if res.Mode != ModeFull || res.EscalationReason != ReasonDirtyRatio {
		t.Fatalf("mode=%v reason=%q, want full/dirty-ratio", res.Mode, res.EscalationReason)
	}
}

func TestForceFull(t *testing.T) {
	st := newTestState(t, t3())
	opts := testOptions()
	opts.ForceFull = true
	eng := New(st, opts, nil)
	res, err := eng.Reoptimize(context.Background())
	if err != nil {
		t.Fatalf("reoptimize: %v", err)
	}
	if res.Mode != ModeFull || res.EscalationReason != ReasonForced {
		t.Fatalf("mode=%v reason=%q, want full/force-full", res.Mode, res.EscalationReason)
	}
}

// TestDeltaMigrationPlan exercises the migration-path branch of a delta
// pass: the plan must transition exactly from the pre-event assignment
// to the adopted one, and only moved containers appear in Changed.
func TestDeltaMigrationPlan(t *testing.T) {
	st := newTestState(t, t3())
	opts := testOptions()
	opts.SkipMigration = false
	eng := New(st, opts, nil)
	ctx := context.Background()
	if _, err := eng.Reoptimize(ctx); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}

	var target int
	for s, g := range st.subOf {
		if g >= 0 {
			target = s
			break
		}
	}
	old := st.Assignment().Clone()
	if _, err := eng.Apply(ScaleService{Service: target, Replicas: st.Problem().Services[target].Replicas + 2}); err != nil {
		t.Fatalf("apply: %v", err)
	}
	res, err := eng.Reoptimize(ctx)
	if err != nil {
		t.Fatalf("reoptimize: %v", err)
	}
	if res.Mode != ModeDelta {
		t.Skipf("delta not taken (mode=%v reason=%q)", res.Mode, res.EscalationReason)
	}
	if res.Plan == nil {
		t.Fatal("no migration plan on delta pass")
	}
	// Changed lists exactly the cells that differ from the pre-event
	// assignment's event-adjusted form; verify against a direct diff of
	// old vs adopted, ignoring cells the event itself stripped (none
	// here: pure scale-up).
	adopted := st.Assignment()
	for _, d := range res.Changed {
		if old.Get(d.Service, d.Machine) == adopted.Get(d.Service, d.Machine) {
			t.Fatalf("Changed reports unchanged cell %+v", d)
		}
	}
	if viol := adopted.Check(st.Problem(), true); len(viol) > 0 {
		t.Fatalf("adopted assignment invalid: %v", viol[0])
	}
}

func TestRemoveServiceThenReoptimize(t *testing.T) {
	st := newTestState(t, t3())
	eng := New(st, testOptions(), nil)
	ctx := context.Background()
	if _, err := eng.Reoptimize(ctx); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	// Remove a partitioned (non-trivial) service so group bookkeeping
	// must remap, then re-optimize and validate end state.
	victim := -1
	for s, g := range st.subOf {
		if g >= 0 {
			victim = s
			break
		}
	}
	if victim < 0 {
		t.Skip("no partitioned service")
	}
	if _, err := eng.Apply(RemoveService{Service: victim}); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if len(st.subOf) != st.Problem().N() {
		t.Fatalf("subOf len %d, want %d", len(st.subOf), st.Problem().N())
	}
	res, err := eng.Reoptimize(ctx)
	if err != nil {
		t.Fatalf("reoptimize: %v", err)
	}
	if res.Mode == ModeNoop {
		t.Fatal("remove of partitioned service did not dirty anything")
	}
	if viol := st.Assignment().Check(st.Problem(), true); len(viol) > 0 {
		t.Fatalf("assignment invalid after remove+reoptimize: %v", viol[0])
	}
}

func TestStateValidation(t *testing.T) {
	c, err := workload.Generate(t3())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewState(c.Problem, nil); err == nil {
		t.Fatal("nil assignment accepted")
	}
	if _, err := NewState(c.Problem, cluster.NewAssignment(1, 1)); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

package incr

import (
	"context"
	"errors"
	"testing"
)

// TestProposeCommitAdopt covers the two-phase path the federation layer
// drives: Propose computes without adopting, CommitProposal adopts, and
// a log that advanced in between invalidates the proposal.
func TestProposeCommitAdopt(t *testing.T) {
	st := newTestState(t, t3())
	eng := New(st, testOptions(), nil)
	ctx := context.Background()

	// Propose the bootstrap full pass: the log records the proposal but
	// the live assignment must not change.
	before := st.Assignment().Clone()
	res, err := eng.Propose(ctx)
	if err != nil {
		t.Fatalf("propose: %v", err)
	}
	if res.Mode != ModeFull {
		t.Fatalf("bootstrap propose mode = %v", res.Mode)
	}
	if res.Moves == 0 {
		t.Fatal("bootstrap proposal moved nothing")
	}
	p := st.Problem()
	for s := 0; s < p.N(); s++ {
		for m := 0; m < p.M(); m++ {
			if st.Assignment().Get(s, m) != before.Get(s, m) {
				t.Fatalf("propose mutated live assignment at (%d,%d)", s, m)
			}
		}
	}

	// Commit adopts the proposed deltas.
	if err := eng.CommitProposal(res); err != nil {
		t.Fatalf("commit: %v", err)
	}
	for _, d := range res.Changed {
		if got := st.Assignment().Get(d.Service, d.Machine); got != d.After {
			t.Fatalf("cell (%d,%d) = %d after commit, want %d", d.Service, d.Machine, got, d.After)
		}
	}
	// The proposal's full pass counts exactly once toward the seed
	// schedule, as if Reoptimize had run it.
	if got := st.Log().FullRuns(); got != 1 {
		t.Fatalf("full runs = %d after propose+commit, want 1", got)
	}

	// With a clean state, a second propose is a noop and committing it
	// is a no-op too.
	res, err = eng.Propose(ctx)
	if err != nil {
		t.Fatalf("noop propose: %v", err)
	}
	if res.Mode != ModeNoop {
		t.Fatalf("mode = %v, want noop", res.Mode)
	}
	if err := eng.CommitProposal(res); err != nil {
		t.Fatalf("noop commit: %v", err)
	}
}

func TestCommitProposalStale(t *testing.T) {
	st := newTestState(t, t3())
	eng := New(st, testOptions(), nil)
	ctx := context.Background()

	res, err := eng.Propose(ctx)
	if err != nil {
		t.Fatalf("propose: %v", err)
	}
	// An event lands between the proposal and its commit: the proposal
	// was computed against a state that no longer exists.
	r := st.Problem().Services[0].Replicas
	if _, err := eng.Apply(ScaleService{Service: 0, Replicas: r + 1}); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if err := eng.CommitProposal(res); !errors.Is(err, ErrStaleProposal) {
		t.Fatalf("commit after event: err = %v, want ErrStaleProposal", err)
	}
	// The next propose sees the event and produces a committable result.
	res, err = eng.Propose(ctx)
	if err != nil {
		t.Fatalf("re-propose: %v", err)
	}
	if err := eng.CommitProposal(res); err != nil {
		t.Fatalf("re-commit: %v", err)
	}
	if got := st.Assignment().Placed(0); got != r+1 {
		t.Fatalf("service 0 placed %d, want %d", got, r+1)
	}
}

// Package obs is a small, dependency-free observability layer: a
// metrics registry of counters, gauges, and histograms (optionally
// labelled) with Prometheus text exposition. It backs the optimization
// service's GET /metrics endpoint (internal/server) and the rasad -loop
// production simulation, turning per-solve solve.Stats into scrapeable
// time series without pulling a client library into the module.
package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// kind is the exposition TYPE of a metric family.
type kind string

const (
	counterKind   kind = "counter"
	gaugeKind     kind = "gauge"
	histogramKind kind = "histogram"
)

// Registry holds metric families and renders them in Prometheus text
// exposition format. All methods are safe for concurrent use. Metrics
// are rendered in registration order; series within a family in
// creation order — deterministic output for tests and diffing scrapes.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

type family struct {
	name    string
	help    string
	kind    kind
	labels  []string
	buckets []float64 // histograms only

	mu     sync.Mutex
	order  []string
	series map[string]*series
}

type series struct {
	labelValues []string

	mu    sync.Mutex
	val   float64        // counter / gauge value
	fn    func() float64 // gauge callback (overrides val when non-nil)
	count uint64         // histogram observation count
	sum   float64        // histogram observation sum
	hist  []uint64       // histogram per-bucket (non-cumulative) counts
}

// register fetches or creates a family, panicking on a conflicting
// re-registration (same name, different shape) — a programming error.
func (r *Registry) register(name, help string, k kind, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != k || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: conflicting registration of %q", name))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: conflicting labels for %q", name))
			}
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: k,
		labels: append([]string(nil), labels...), buckets: buckets,
		series: make(map[string]*series),
	}
	r.fams = append(r.fams, f)
	r.byName[name] = f
	return f
}

func (f *family) get(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labelValues: append([]string(nil), values...)}
		if f.kind == histogramKind {
			s.hist = make([]uint64, len(f.buckets))
		}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Counter is a monotonically increasing value.
type Counter struct{ s *series }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v; negative deltas are ignored (counters never go down).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	c.s.mu.Lock()
	c.s.val += v
	c.s.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	return c.s.val
}

// Gauge is a value that can go up and down.
type Gauge struct{ s *series }

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	g.s.mu.Lock()
	g.s.val = v
	g.s.mu.Unlock()
}

// Add adds v (may be negative).
func (g *Gauge) Add(v float64) {
	g.s.mu.Lock()
	g.s.val += v
	g.s.mu.Unlock()
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (consulting the callback for
// GaugeFunc gauges).
func (g *Gauge) Value() float64 {
	g.s.mu.Lock()
	defer g.s.mu.Unlock()
	if g.s.fn != nil {
		return g.s.fn()
	}
	return g.s.val
}

// Histogram accumulates observations into cumulative buckets.
type Histogram struct {
	f *family
	s *series
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	h.s.count++
	h.s.sum += v
	for i, ub := range h.f.buckets {
		if v <= ub {
			h.s.hist[i]++
			return
		}
	}
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	return h.s.count
}

// Counter registers (or fetches) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, counterKind, nil, nil)
	return &Counter{s: f.get(nil)}
}

// Gauge registers (or fetches) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, gaugeKind, nil, nil)
	return &Gauge{s: f.get(nil)}
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time — e.g. a queue depth read from len(chan).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, gaugeKind, nil, nil)
	s := f.get(nil)
	s.mu.Lock()
	s.fn = fn
	s.mu.Unlock()
}

// Histogram registers an unlabelled histogram with the given upper
// bounds (ascending; +Inf is implicit). Nil buckets use DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.register(name, help, histogramKind, nil, buckets)
	return &Histogram{f: f, s: f.get(nil)}
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ f *family }

// CounterVec registers a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, counterKind, labels, nil)}
}

// With returns the counter for the given label values (created on
// first use).
func (v *CounterVec) With(values ...string) *Counter {
	return &Counter{s: v.f.get(values)}
}

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct{ f *family }

// GaugeVec registers a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, gaugeKind, labels, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return &Gauge{s: v.f.get(values)}
}

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct{ f *family }

// HistogramVec registers a labelled histogram family. Nil buckets use
// DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{f: r.register(name, help, histogramKind, labels, buckets)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return &Histogram{f: v.f, s: v.f.get(values)}
}

// DefBuckets spans 1ms–60s, the range of solve and job latencies on
// this substrate (seconds).
var DefBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// WriteTo renders the registry in Prometheus text exposition format
// (version 0.0.4). It implements io.WriterTo.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		f.expose(&b)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func (f *family) expose(b *strings.Builder) {
	f.mu.Lock()
	order := append([]string(nil), f.order...)
	series := make([]*series, len(order))
	for i, key := range order {
		series[i] = f.series[key]
	}
	f.mu.Unlock()
	if len(series) == 0 {
		return
	}
	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	for _, s := range series {
		s.mu.Lock()
		switch f.kind {
		case histogramKind:
			cum := uint64(0)
			for i, ub := range f.buckets {
				cum += s.hist[i]
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(f.labels, s.labelValues, "le", formatBound(ub)), cum)
			}
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(f.labels, s.labelValues, "le", "+Inf"), s.count)
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labelString(f.labels, s.labelValues, "", ""), formatValue(s.sum))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, labelString(f.labels, s.labelValues, "", ""), s.count)
		default:
			v := s.val
			if s.fn != nil {
				v = s.fn()
			}
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, s.labelValues, "", ""), formatValue(v))
		}
		s.mu.Unlock()
	}
}

// labelString renders {k="v",...}, appending the optional extra pair
// (used for histogram "le"), or "" when there are no labels at all.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry at scrape time.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteTo(w)
	})
}

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start and growing by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	sort.Float64s(out)
	return out
}

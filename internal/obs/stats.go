// Solve-stats bridge: a pre-registered bundle of solver metrics fed
// from solve.Stats, shared by the optimization service (per job) and
// the rasad -loop production simulation (per tick).
package obs

import (
	"github.com/cloudsched/rasa/internal/solve"
)

// SolveCollector publishes solve.Stats into a Registry: cumulative
// iteration counters, stop-cause counts, and per-phase latency
// histograms.
type SolveCollector struct {
	pivots     *Counter
	warmPivots *Counter
	coldPivots *Counter
	nodes      *Counter
	incumbents *Counter
	columns    *Counter
	rounds     *Counter
	stops      *CounterVec
	phase      *HistogramVec
	wall       *Histogram
}

// NewSolveCollector registers the solver metric families under the
// given prefix (e.g. "rasa") and returns the collector.
func NewSolveCollector(r *Registry, prefix string) *SolveCollector {
	p := prefix
	if p != "" {
		p += "_"
	}
	return &SolveCollector{
		pivots:     r.Counter(p+"solver_simplex_pivots_total", "Simplex pivots across all LP solves."),
		warmPivots: r.Counter(p+"solver_warm_pivots_total", "Simplex pivots on warm-started (basis-reuse) solves."),
		coldPivots: r.Counter(p+"solver_cold_pivots_total", "Simplex pivots on cold two-phase solves."),
		nodes:      r.Counter(p+"solver_bb_nodes_total", "Branch-and-bound nodes explored."),
		incumbents: r.Counter(p+"solver_incumbents_total", "Integer-feasible incumbents accepted."),
		columns:    r.Counter(p+"solver_columns_total", "Column-generation patterns generated."),
		rounds:     r.Counter(p+"solver_pricing_rounds_total", "CG master/pricing iterations."),
		stops:      r.CounterVec(p+"solve_stop_total", "Solves by stop cause.", "cause"),
		phase:      r.HistogramVec(p+"solve_phase_seconds", "Per-phase solve wall time.", nil, "phase"),
		wall:       r.Histogram(p+"solve_wall_seconds", "Total solve wall time.", nil),
	}
}

// Observe records one solve's stats. Zero-valued phase times (layers
// where the phase does not apply) are not observed, so histograms
// reflect only solves that actually ran the phase.
func (c *SolveCollector) Observe(st solve.Stats) {
	c.pivots.Add(float64(st.SimplexIters))
	c.warmPivots.Add(float64(st.WarmPivots))
	c.coldPivots.Add(float64(st.ColdPivots))
	c.nodes.Add(float64(st.Nodes))
	c.incumbents.Add(float64(st.Incumbents))
	c.columns.Add(float64(st.Columns))
	c.rounds.Add(float64(st.PricingRounds))
	c.stops.With(st.Stop.String()).Inc()
	if st.MasterTime > 0 {
		c.phase.With("master").Observe(st.MasterTime.Seconds())
	}
	if st.PricingTime > 0 {
		c.phase.With("pricing").Observe(st.PricingTime.Seconds())
	}
	if st.RoundingTime > 0 {
		c.phase.With("rounding").Observe(st.RoundingTime.Seconds())
	}
	if st.Wall > 0 {
		c.wall.Observe(st.Wall.Seconds())
	}
}

package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/cloudsched/rasa/internal/solve"
)

func expose(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs processed.")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotonic
	g := r.Gauge("inflight", "Jobs in flight.")
	g.Set(3)
	g.Dec()
	r.GaugeFunc("queue_depth", "Queued jobs.", func() float64 { return 7 })

	out := expose(t, r)
	for _, want := range []string{
		"# HELP jobs_total Jobs processed.",
		"# TYPE jobs_total counter",
		"jobs_total 3",
		"# TYPE inflight gauge",
		"inflight 2",
		"queue_depth 7",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if c.Value() != 3 || g.Value() != 2 {
		t.Fatalf("value accessors: counter=%v gauge=%v", c.Value(), g.Value())
	}
}

func TestLabelledCounter(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("stop_total", "Stops by cause.", "cause")
	v.With("deadline").Add(2)
	v.With("optimal").Inc()
	v.With("deadline").Inc()

	out := expose(t, r)
	if !strings.Contains(out, `stop_total{cause="deadline"} 3`) {
		t.Fatalf("missing deadline series:\n%s", out)
	}
	if !strings.Contains(out, `stop_total{cause="optimal"} 1`) {
		t.Fatalf("missing optimal series:\n%s", out)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	out := expose(t, r)
	for _, want := range []string{
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="10"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		`latency_seconds_sum 56.05`,
		`latency_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("weird", "", "name").With("a\"b\\c\nd").Inc()
	out := expose(t, r)
	if !strings.Contains(out, `weird{name="a\"b\\c\nd"} 1`) {
		t.Fatalf("bad escaping:\n%s", out)
	}
}

func TestReRegistrationReturnsSameSeries(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "help").Inc()
	r.Counter("c", "help").Inc()
	if got := r.Counter("c", "help").Value(); got != 2 {
		t.Fatalf("re-registered counter = %v, want 2", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting re-registration did not panic")
		}
	}()
	r.Gauge("c", "help")
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n", "")
	v := r.CounterVec("m", "", "k")
	h := r.Histogram("h", "", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				v.With("x").Inc()
				h.Observe(float64(j) / 100)
			}
		}(i)
	}
	// Scrape concurrently with the writers.
	for i := 0; i < 10; i++ {
		var b strings.Builder
		if _, err := r.WriteTo(&b); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %v, want 8000", c.Value())
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Fatalf("body:\n%s", rec.Body.String())
	}
}

func TestSolveCollector(t *testing.T) {
	r := NewRegistry()
	c := NewSolveCollector(r, "rasa")
	c.Observe(solve.Stats{
		SimplexIters: 100, Nodes: 10, Incumbents: 2, Columns: 5, PricingRounds: 3,
		MasterTime: 10 * time.Millisecond, PricingTime: 5 * time.Millisecond,
		Wall: 20 * time.Millisecond, Stop: solve.Deadline,
	})
	c.Observe(solve.Stats{SimplexIters: 50, Stop: solve.Optimal, Wall: time.Millisecond})
	out := expose(t, r)
	for _, want := range []string{
		"rasa_solver_simplex_pivots_total 150",
		"rasa_solver_bb_nodes_total 10",
		`rasa_solve_stop_total{cause="deadline"} 1`,
		`rasa_solve_stop_total{cause="optimal"} 1`,
		`rasa_solve_phase_seconds_count{phase="master"} 1`,
		"rasa_solve_wall_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
}

package mip

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/cloudsched/rasa/internal/lp"
)

func dense(vals ...float64) []lp.Coef {
	var out []lp.Coef
	for i, v := range vals {
		if v != 0 {
			out = append(out, lp.Coef{Var: i, Val: v})
		}
	}
	return out
}

func allInt(n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = true
	}
	return out
}

func TestKnapsack(t *testing.T) {
	// max 10a + 13b + 7c, 3a + 4b + 2c <= 6, binary-ish (vars <= 1).
	// Best: a=0,b=1,c=1 -> 20.
	p := &Problem{
		LP:      lp.Problem{NumVars: 3, Objective: dense(10, 13, 7)},
		Integer: allInt(3),
	}
	p.LP.AddRow(dense(3, 4, 2), lp.LE, 6)
	for j := 0; j < 3; j++ {
		p.LP.AddRow([]lp.Coef{{Var: j, Val: 1}}, lp.LE, 1)
	}
	s, err := Solve(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || math.Abs(s.Objective-20) > 1e-6 {
		t.Fatalf("status %v obj %v x %v", s.Status, s.Objective, s.X)
	}
}

func TestPureLPPassthrough(t *testing.T) {
	// No integer variables: one LP solve should be optimal.
	p := &Problem{LP: lp.Problem{NumVars: 2, Objective: dense(1, 1)}}
	p.LP.AddRow(dense(1, 2), lp.LE, 4)
	p.LP.AddRow(dense(2, 1), lp.LE, 4)
	s, err := Solve(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || math.Abs(s.Objective-8.0/3) > 1e-6 {
		t.Fatalf("status %v obj %v", s.Status, s.Objective)
	}
	if s.Nodes != 1 {
		t.Fatalf("nodes = %d, want 1", s.Nodes)
	}
}

func TestFractionalLPIntegerGap(t *testing.T) {
	// max x s.t. 2x <= 3, x integer -> LP gives 1.5, MIP must give 1.
	p := &Problem{
		LP:      lp.Problem{NumVars: 1, Objective: dense(1)},
		Integer: allInt(1),
	}
	p.LP.AddRow(dense(2), lp.LE, 3)
	s, err := Solve(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || math.Abs(s.Objective-1) > 1e-6 {
		t.Fatalf("status %v obj %v", s.Status, s.Objective)
	}
}

func TestInfeasibleMIP(t *testing.T) {
	// 2x == 1 with x integer: LP feasible, no integer point.
	p := &Problem{
		LP:      lp.Problem{NumVars: 1},
		Integer: allInt(1),
	}
	p.LP.AddRow(dense(2), lp.EQ, 1)
	p.LP.AddRow(dense(1), lp.LE, 10)
	s, err := Solve(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestInfeasibleLP(t *testing.T) {
	p := &Problem{LP: lp.Problem{NumVars: 1, Objective: dense(1)}, Integer: allInt(1)}
	p.LP.AddRow(dense(1), lp.GE, 5)
	p.LP.AddRow(dense(1), lp.LE, 1)
	s, err := Solve(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// max 2x + y, x integer, y continuous; x + y <= 2.5, x <= 1.7.
	// x=1, y=1.5 -> 3.5.
	p := &Problem{
		LP:      lp.Problem{NumVars: 2, Objective: dense(2, 1)},
		Integer: []bool{true, false},
	}
	p.LP.AddRow(dense(1, 1), lp.LE, 2.5)
	p.LP.AddRow(dense(1, 0), lp.LE, 1.7)
	s, err := Solve(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || math.Abs(s.Objective-3.5) > 1e-6 {
		t.Fatalf("status %v obj %v x %v", s.Status, s.Objective, s.X)
	}
}

func TestAnytimeDeadline(t *testing.T) {
	// With an expired deadline the solver must return promptly; any of
	// the non-optimal statuses is acceptable, but it must not hang or
	// fabricate an incumbent.
	rng := rand.New(rand.NewSource(3))
	p := randomIP(rng, 12, 10)
	s, err := Solve(context.Background(), p, Options{Deadline: time.Now().Add(-time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status == Optimal {
		// Possible only if the root LP was already integral; verify.
		if s.X == nil {
			t.Fatalf("optimal without solution")
		}
	}
}

func TestNodeBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := randomIP(rng, 14, 12)
	s, err := Solve(context.Background(), p, Options{MaxNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Nodes > 4 { // root + budget slack of one pop
		t.Fatalf("nodes = %d exceeds budget", s.Nodes)
	}
}

func TestCustomRounder(t *testing.T) {
	// A rounder that always returns a known feasible point must seed the
	// incumbent even under a tiny node budget.
	p := &Problem{
		LP:      lp.Problem{NumVars: 1, Objective: dense(1)},
		Integer: allInt(1),
	}
	p.LP.AddRow(dense(2), lp.LE, 3)
	called := false
	opts := Options{
		MaxNodes: 1,
		Rounder: func(x []float64) ([]float64, float64, bool) {
			called = true
			return []float64{1}, 1, true
		},
		RoundEvery: 1,
	}
	s, err := Solve(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("rounder not invoked")
	}
	if s.X == nil || math.Abs(s.Objective-1) > 1e-9 {
		t.Fatalf("incumbent not adopted: %+v", s)
	}
}

func TestRoundingDisabled(t *testing.T) {
	p := &Problem{
		LP:      lp.Problem{NumVars: 1, Objective: dense(1)},
		Integer: allInt(1),
	}
	p.LP.AddRow(dense(2), lp.LE, 3)
	s, err := Solve(context.Background(), p, Options{RoundEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Still solved exactly via branching.
	if s.Status != Optimal || math.Abs(s.Objective-1) > 1e-6 {
		t.Fatalf("status %v obj %v", s.Status, s.Objective)
	}
}

// randomIP builds a bounded random pure-integer program with n vars and
// m cover constraints; x=0 is always feasible.
func randomIP(rng *rand.Rand, n, m int) *Problem {
	p := &Problem{
		LP:      lp.Problem{NumVars: n},
		Integer: allInt(n),
	}
	for j := 0; j < n; j++ {
		p.LP.Objective = append(p.LP.Objective, lp.Coef{Var: j, Val: 1 + rng.Float64()*9})
		p.LP.AddRow([]lp.Coef{{Var: j, Val: 1}}, lp.LE, float64(1+rng.Intn(3)))
	}
	for i := 0; i < m; i++ {
		var cs []lp.Coef
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.5 {
				cs = append(cs, lp.Coef{Var: j, Val: 1 + rng.Float64()*4})
			}
		}
		if len(cs) == 0 {
			continue
		}
		p.LP.AddRow(cs, lp.LE, 2+rng.Float64()*10)
	}
	return p
}

// bruteForce enumerates all integer points within the box constraints
// (assumed to be the first n rows: x_j <= ub_j) and returns the best
// feasible objective, or -inf if none.
func bruteForce(p *Problem) float64 {
	n := p.LP.NumVars
	ub := make([]int, n)
	for j := 0; j < n; j++ {
		ub[j] = int(p.LP.Rows[j].RHS)
	}
	best := math.Inf(-1)
	x := make([]float64, n)
	var rec func(j int)
	rec = func(j int) {
		if j == n {
			for _, r := range p.LP.Rows {
				var lhs float64
				for _, c := range r.Coefs {
					lhs += c.Val * x[c.Var]
				}
				if r.Sense == lp.LE && lhs > r.RHS+1e-9 {
					return
				}
			}
			var obj float64
			for _, c := range p.LP.Objective {
				obj += c.Val * x[c.Var]
			}
			if obj > best {
				best = obj
			}
			return
		}
		for v := 0; v <= ub[j]; v++ {
			x[j] = float64(v)
			rec(j + 1)
		}
	}
	rec(0)
	return best
}

// Property: branch-and-bound matches exhaustive enumeration on small
// random integer programs, for both branching rules.
func TestPropertyMatchesBruteForce(t *testing.T) {
	for _, rule := range []BranchRule{Pseudocost, MostFractional} {
		rule := rule
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			n := 2 + rng.Intn(5)
			m := 1 + rng.Intn(5)
			p := randomIP(rng, n, m)
			want := bruteForce(p)
			s, err := Solve(context.Background(), p, Options{Branching: rule})
			if err != nil || s.Status != Optimal {
				return false
			}
			return math.Abs(s.Objective-want) <= 1e-5*(1+math.Abs(want))
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatalf("rule %v: %v", rule, err)
		}
	}
}

// Property: the reported bound is always >= the incumbent objective, and
// the incumbent is feasible.
func TestPropertyBoundDominatesIncumbent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomIP(rng, 2+rng.Intn(6), 1+rng.Intn(6))
		s, err := Solve(context.Background(), p, Options{})
		if err != nil || s.X == nil {
			return false
		}
		if s.Bound < s.Objective-1e-6 {
			return false
		}
		// Verify feasibility of the incumbent.
		for _, r := range p.LP.Rows {
			var lhs float64
			for _, c := range r.Coefs {
				lhs += c.Val * s.X[c.Var]
			}
			if r.Sense == lp.LE && lhs > r.RHS+1e-6 {
				return false
			}
		}
		for _, v := range s.X {
			if v < -1e-9 || math.Abs(v-math.Round(v)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSolveSmallIP(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	p := randomIP(rng, 10, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(context.Background(), p, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

package mip

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"github.com/cloudsched/rasa/internal/lp"
	"github.com/cloudsched/rasa/internal/solve"
)

// TestCancellation checks the anytime contract for branch-and-bound:
// an interrupted solve returns promptly with the interrupt cause in
// Stats.Stop, and any incumbent it reports is feasible.
func TestCancellation(t *testing.T) {
	cancelled := func() context.Context {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		return ctx
	}
	cases := []struct {
		name     string
		ctx      func() context.Context
		deadline func() time.Time
		want     solve.StopCause
	}{
		{"pre-cancelled context", cancelled, func() time.Time { return time.Time{} }, solve.Cancelled},
		{"expired deadline", context.Background, func() time.Time { return time.Now().Add(-time.Second) }, solve.Deadline},
		{"cancellation wins over expired deadline", cancelled, func() time.Time { return time.Now().Add(-time.Second) }, solve.Cancelled},
	}
	rng := rand.New(rand.NewSource(21))
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := randomIP(rng, 14, 12)
			start := time.Now()
			s, err := Solve(tc.ctx(), p, Options{Deadline: tc.deadline()})
			if err != nil {
				t.Fatal(err)
			}
			if el := time.Since(start); el > time.Second {
				t.Fatalf("interrupted solve took %s", el)
			}
			if s.Status == Optimal {
				t.Fatalf("status = Optimal for a solve interrupted before the root LP")
			}
			if s.Stats.Stop != tc.want {
				t.Fatalf("stop cause = %v, want %v", s.Stats.Stop, tc.want)
			}
			if s.X != nil && !feasible(p, s.X) {
				t.Fatalf("interrupted solve reported an infeasible incumbent")
			}
		})
	}
}

// TestCancelMidSearch cancels during the B&B loop: the best incumbent
// found so far must come back feasible, never a half-explored node.
func TestCancelMidSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	p := randomIP(rng, 16, 14)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(time.Millisecond)
		cancel()
	}()
	s, err := Solve(ctx, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	switch s.Stats.Stop {
	case solve.Cancelled, solve.Optimal:
	default:
		t.Fatalf("stop cause = %v, want Cancelled or Optimal", s.Stats.Stop)
	}
	if s.X != nil && !feasible(p, s.X) {
		t.Fatalf("incumbent after cancellation violates constraints")
	}
}

// feasible checks x against every row of the LP within a small tolerance
// plus integrality of the integer-marked variables.
func feasible(p *Problem, x []float64) bool {
	const tol = 1e-6
	for j, isInt := range p.Integer {
		if !isInt {
			continue
		}
		if d := x[j] - float64(int(x[j]+0.5)); d > tol || d < -tol {
			return false
		}
	}
	for _, row := range p.LP.Rows {
		lhs := 0.0
		for _, c := range row.Coefs {
			lhs += c.Val * x[c.Var]
		}
		switch row.Sense {
		case lp.LE:
			if lhs > row.RHS+tol {
				return false
			}
		case lp.GE:
			if lhs < row.RHS-tol {
				return false
			}
		default:
			if lhs > row.RHS+tol || lhs < row.RHS-tol {
				return false
			}
		}
	}
	return true
}

// Package mip implements a branch-and-bound mixed-integer programming
// solver on top of the simplex LP solver in internal/lp. It stands in
// for the off-the-shelf solver (Gurobi 9.5) used by the paper's
// MIP-based algorithm (Section IV-C1).
//
// The solver preserves the contract the RASA algorithm depends on:
//
//   - exact within a configurable relative gap on small instances,
//   - anytime: interrupting via deadline returns the best incumbent
//     found so far together with a valid upper bound, which is what lets
//     the paper (Section V-E) trade solution quality against runtime by
//     adjusting a single time-out parameter.
//
// Branching supports most-fractional and pseudocost rules (the latter is
// the default; the choice is an ablation target, see DESIGN.md).
package mip

import (
	"container/heap"
	"context"
	"math"
	"time"

	"github.com/cloudsched/rasa/internal/lp"
	"github.com/cloudsched/rasa/internal/solve"
)

// BranchRule selects how the branching variable is chosen.
type BranchRule int

// Branching rules.
const (
	// Pseudocost branching estimates per-variable objective degradation
	// from observed branchings and picks the variable with the largest
	// expected impact; falls back to most-fractional until history
	// accumulates.
	Pseudocost BranchRule = iota
	// MostFractional picks the integer variable whose LP value is
	// closest to 0.5 away from integrality.
	MostFractional
)

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	// Optimal: incumbent proven optimal within the gap tolerance.
	Optimal Status = iota
	// Feasible: an incumbent exists but optimality was not proven before
	// the budget expired (anytime result).
	Feasible
	// Infeasible: no integer-feasible point exists.
	Infeasible
	// NoSolution: budget expired before any incumbent was found.
	NoSolution
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case NoSolution:
		return "no-solution"
	}
	return "unknown"
}

// Problem is a MIP: an LP plus integrality flags per variable.
type Problem struct {
	LP      lp.Problem
	Integer []bool // len == LP.NumVars; true marks an integer variable
}

// Rounder attempts to turn a fractional LP point into an integer-feasible
// solution. It returns the repaired point, its objective, and whether it
// succeeded. Model builders provide problem-specific rounders; a nil
// rounder falls back to naive nearest-integer rounding with a full
// feasibility check.
type Rounder func(x []float64) ([]float64, float64, bool)

// Options tune a solve.
type Options struct {
	Deadline  time.Time  // zero = no deadline
	Gap       float64    // relative optimality gap tolerance; default 1e-6
	MaxNodes  int        // node budget; 0 = default (1<<20)
	Branching BranchRule // default Pseudocost
	Rounder   Rounder    // optional incumbent heuristic
	// RoundEvery applies the rounding heuristic at every k-th node
	// (default 8). Set negative to disable heuristic rounding entirely
	// (ablation: BenchmarkAblationAnytime).
	RoundEvery int
	// Cutoff, when non-nil, is an external objective cutoff polled at
	// every node pop: once it reports (c, true) and the proven global
	// upper bound is <= c, the solve stops early with stop cause
	// solve.Cancelled — this MIP provably cannot beat c, so racing it
	// further is wasted budget (used by selector.Label to cancel the
	// loser of the CG-vs-MIP race).
	Cutoff func() (float64, bool)
	// DisableWarmStart forces every node LP to a cold two-phase solve
	// instead of the default dual-simplex warm start from the parent's
	// basis. Ablation/benchmark knob (BENCH_pr3.json compares node
	// throughput with and without it); production solves leave it false.
	DisableWarmStart bool
	// RootBasis, when non-nil, seeds the root relaxation's simplex from a
	// basis captured in an earlier solve of a same-shaped problem (the
	// incremental engine re-solving a subproblem whose formulation shape
	// survived a delta). The workspace validates the basis and falls back
	// to a cold solve when it is stale or mismatched, so a wrong guess
	// costs nothing but the check. Ignored under DisableWarmStart.
	RootBasis *lp.Basis
	// LPKernel selects the simplex engine for node LPs (lp.KernelAuto
	// by default: size-routed, sparse revised simplex on large
	// relaxations with a dense-tableau fallback). lp.KernelDense /
	// lp.KernelSparse force one — the ablation knob behind
	// experiments.SparseBench.
	LPKernel lp.Kernel
}

// Solution is the result of a solve.
type Solution struct {
	Status    Status
	X         []float64 // best integer-feasible point (nil if none)
	Objective float64   // objective at X
	Bound     float64   // proven upper bound on the optimum
	Nodes     int       // branch-and-bound nodes explored
	// RootBasis is the optimal basis of the root relaxation (nil when the
	// root LP did not reach optimality). Callers re-solving the same
	// formulation shape after a data-only change can feed it back through
	// Options.RootBasis to skip most of the root's simplex work.
	RootBasis *lp.Basis
	// Stats aggregates B&B nodes, incumbents, simplex pivots across all
	// node LPs, and why the solve stopped.
	Stats solve.Stats
}

const intEps = 1e-6

// node is a branch-and-bound node: a persistent chain of bound rows
// added on top of the root LP.
type node struct {
	parent *node
	branch lp.Constraint // the bound added at this node (unused at root)
	depth  int
	bound  float64 // LP relaxation objective (upper bound for subtree)

	// Pseudocost bookkeeping: which variable/direction created this node
	// and the parent's LP bound and fractional part at branching time.
	pcVar         int
	pcFrac        float64
	pcUp          bool
	pcParentBound float64

	// basis is the optimal LP basis of this node, captured when its
	// relaxation solves to optimality; children warm-start from it (their
	// problem is this node's problem plus one appended bound row).
	basis *lp.Basis
}

func (n *node) rows() []lp.Constraint {
	var chain []lp.Constraint
	for cur := n; cur != nil && cur.parent != nil; cur = cur.parent {
		chain = append(chain, cur.branch)
	}
	// Reverse for readability/determinism (oldest first).
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}

// nodeHeap is a max-heap on LP bound (best-bound-first search).
type nodeHeap []*node

func (h nodeHeap) Len() int           { return len(h) }
func (h nodeHeap) Less(i, j int) bool { return h[i].bound > h[j].bound }
func (h nodeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)        { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type solver struct {
	ctx  context.Context
	prob *Problem
	opts Options
	// ws is the pooled LP workspace shared by every node LP of this
	// solve: tableau storage is allocated once and reused, and node
	// solves warm-start in it from their parent's captured basis.
	ws *lp.Workspace
	// pseudocost state: sums of per-unit objective degradation and
	// observation counts, for down and up branches.
	pcDownSum, pcUpSum []float64
	pcDownN, pcUpN     []int

	incumbent    []float64
	incumbentObj float64
	haveInc      bool
	nodes        int
	stats        solve.Stats
	// rootBasis is the root relaxation's optimal basis, surfaced on the
	// Solution for cross-solve warm starting.
	rootBasis *lp.Basis
}

// Solve runs branch and bound. The zero Options value gives exact solves
// with pseudocost branching and heuristic rounding enabled. The context
// interrupts the solve at node granularity (and, within a node LP, at
// pivot granularity); an interrupted solve returns the best incumbent
// found so far with stop cause solve.Cancelled or solve.Deadline.
func Solve(ctx context.Context, p *Problem, opts Options) (Solution, error) {
	if len(p.Integer) != p.LP.NumVars {
		p2 := *p
		flags := make([]bool, p.LP.NumVars)
		copy(flags, p.Integer)
		p2.Integer = flags
		p = &p2
	}
	if opts.Gap <= 0 {
		opts.Gap = 1e-6
	}
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = 1 << 20
	}
	if opts.RoundEvery == 0 {
		opts.RoundEvery = 8
	}
	s := &solver{
		ctx:          ctx,
		prob:         p,
		opts:         opts,
		ws:           lp.AcquireWorkspace(),
		pcDownSum:    make([]float64, p.LP.NumVars),
		pcUpSum:      make([]float64, p.LP.NumVars),
		pcDownN:      make([]int, p.LP.NumVars),
		pcUpN:        make([]int, p.LP.NumVars),
		incumbentObj: math.Inf(-1),
	}
	start := time.Now()
	sol, err := s.run()
	s.ws.Release()
	sol.Stats.Wall = time.Since(start)
	return sol, err
}

// solveLP solves the root LP plus the node's branch rows, warm-started
// from the parent's captured basis when available (the node's problem
// extends the parent's by exactly one appended bound row, which is the
// dual-simplex sweet spot). On an optimal solve the node's own basis is
// captured for its future children before the shared workspace moves on
// to the next node.
func (s *solver) solveLP(n *node) (lp.Solution, error) {
	extra := n.rows()
	prob := lp.Problem{
		NumVars:   s.prob.LP.NumVars,
		Objective: s.prob.LP.Objective,
		Rows:      make([]lp.Constraint, 0, len(s.prob.LP.Rows)+len(extra)),
	}
	prob.Rows = append(prob.Rows, s.prob.LP.Rows...)
	prob.Rows = append(prob.Rows, extra...)
	opts := lp.Options{Deadline: s.opts.Deadline, Kernel: s.opts.LPKernel}
	var from *lp.Basis
	if !s.opts.DisableWarmStart {
		if n.parent != nil {
			from = n.parent.basis // nil when the parent's LP didn't reach optimality
		} else {
			from = s.opts.RootBasis // cross-solve seed for the root relaxation
		}
	}
	sol, err := s.ws.SolveFrom(s.ctx, &prob, opts, from)
	if err == nil && sol.Status == lp.Optimal {
		n.basis = s.ws.CaptureBasis(nil)
		if n.parent == nil {
			s.rootBasis = n.basis
		}
	}
	s.stats.Merge(sol.Stats)
	return sol, err
}

func (s *solver) isIntegral(x []float64) bool {
	for j, isInt := range s.prob.Integer {
		if !isInt {
			continue
		}
		if math.Abs(x[j]-math.Round(x[j])) > intEps {
			return false
		}
	}
	return true
}

func (s *solver) objective(x []float64) float64 {
	var obj float64
	for _, c := range s.prob.LP.Objective {
		obj += c.Val * x[c.Var]
	}
	return obj
}

// feasible checks all original rows and non-negativity for a candidate
// incumbent produced by a rounder.
func (s *solver) feasible(x []float64) bool {
	const tol = 1e-6
	for j := range x {
		if x[j] < -tol {
			return false
		}
	}
	for _, r := range s.prob.LP.Rows {
		var lhs float64
		for _, c := range r.Coefs {
			lhs += c.Val * x[c.Var]
		}
		switch r.Sense {
		case lp.LE:
			if lhs > r.RHS+tol {
				return false
			}
		case lp.GE:
			if lhs < r.RHS-tol {
				return false
			}
		case lp.EQ:
			if math.Abs(lhs-r.RHS) > tol {
				return false
			}
		}
	}
	return s.isIntegral(x)
}

func (s *solver) tryIncumbent(x []float64, obj float64) {
	if obj > s.incumbentObj+1e-12 {
		s.incumbent = append([]float64(nil), x...)
		s.incumbentObj = obj
		s.haveInc = true
		s.stats.Incumbents++
	}
}

// tryRound applies the rounding heuristic to a fractional LP point.
func (s *solver) tryRound(x []float64) {
	if s.opts.RoundEvery < 0 {
		return
	}
	if s.opts.Rounder != nil {
		if rx, obj, ok := s.opts.Rounder(x); ok {
			s.tryIncumbent(rx, obj)
		}
		return
	}
	rx := make([]float64, len(x))
	copy(rx, x)
	for j, isInt := range s.prob.Integer {
		if isInt {
			rx[j] = math.Round(rx[j])
		}
	}
	if s.feasible(rx) {
		s.tryIncumbent(rx, s.objective(rx))
	}
}

// branchVar picks the branching variable among fractional integers.
func (s *solver) branchVar(x []float64) int {
	best := -1
	bestScore := -1.0
	for j, isInt := range s.prob.Integer {
		if !isInt {
			continue
		}
		frac := x[j] - math.Floor(x[j])
		if frac < intEps || frac > 1-intEps {
			continue
		}
		var score float64
		if s.opts.Branching == Pseudocost && s.pcDownN[j]+s.pcUpN[j] > 0 {
			down := avg(s.pcDownSum[j], s.pcDownN[j])
			up := avg(s.pcUpSum[j], s.pcUpN[j])
			// Product rule with fractional distances.
			score = math.Max(down*frac, 1e-9) * math.Max(up*(1-frac), 1e-9)
		} else {
			score = math.Min(frac, 1-frac)
		}
		if score > bestScore {
			best, bestScore = j, score
		}
	}
	return best
}

func avg(sum float64, n int) float64 {
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

func (s *solver) recordPseudocost(j int, parentBound, childBound, frac float64, up bool) {
	loss := parentBound - childBound
	if loss < 0 {
		loss = 0
	}
	if up {
		dist := 1 - frac
		if dist > intEps {
			s.pcUpSum[j] += loss / dist
			s.pcUpN[j]++
		}
	} else if frac > intEps {
		s.pcDownSum[j] += loss / frac
		s.pcDownN[j]++
	}
}

func (s *solver) run() (Solution, error) {
	finish := func(sol Solution) (Solution, error) {
		s.stats.Nodes = s.nodes
		sol.Stats = s.stats
		sol.RootBasis = s.rootBasis
		return sol, nil
	}
	root := &node{}
	rootSol, err := s.solveLP(root)
	if err != nil {
		return Solution{}, err
	}
	switch rootSol.Status {
	case lp.Infeasible:
		return finish(Solution{Status: Infeasible, Bound: math.Inf(-1)})
	case lp.Unbounded:
		// An unbounded relaxation of a RASA model indicates a modelling
		// bug; surface it as unbounded bound with no solution.
		s.nodes = 1
		return finish(Solution{Status: NoSolution, Bound: math.Inf(1), Nodes: 1})
	case lp.IterLimit:
		if rootSol.X == nil {
			s.nodes = 1
			s.stats.Stop = rootSol.Stats.Stop
			return finish(Solution{Status: NoSolution, Bound: math.Inf(1), Nodes: 1})
		}
	}
	root.bound = rootSol.Objective

	open := &nodeHeap{}
	heap.Init(open)
	// Children inherit their parent's bound until their own LP is solved
	// at pop time. The root is special-cased: its LP is already solved.
	root.pcVar = -1
	s.nodes = 1
	s.processLP(root, rootSol, open)

	stop := solve.Optimal // the loop draining the heap proves optimality
	for open.Len() > 0 {
		if cause, done := solve.Interrupted(s.ctx, s.opts.Deadline); done {
			stop = cause
			break
		}
		if s.nodes >= s.opts.MaxNodes {
			stop = solve.NodeLimit
			break
		}
		// globalBound is the proven upper bound right now: the best open
		// node (best-bound-first heap top) or the incumbent.
		globalBound := (*open)[0].bound
		if s.haveInc && s.incumbentObj > globalBound {
			globalBound = s.incumbentObj
		}
		if s.opts.Cutoff != nil {
			if c, ok := s.opts.Cutoff(); ok && globalBound <= c {
				// This solve provably cannot beat the external cutoff:
				// it lost the race, stop spending budget on it.
				stop = solve.Cancelled
				break
			}
		}
		n := heap.Pop(open).(*node)
		if s.haveInc && n.bound <= s.incumbentObj+s.gapSlack() {
			continue // pruned by bound
		}
		sol, err := s.solveLP(n)
		if err != nil {
			return Solution{}, err
		}
		s.nodes++
		if sol.Status == lp.Infeasible || sol.Status == lp.Unbounded {
			continue
		}
		if sol.Status == lp.IterLimit && sol.X == nil {
			continue
		}
		n.bound = sol.Objective
		if n.pcVar >= 0 {
			s.recordPseudocost(n.pcVar, n.pcParentBound, sol.Objective, n.pcFrac, n.pcUp)
		}
		s.processLP(n, sol, open)
	}

	bound := math.Inf(-1)
	if s.haveInc {
		bound = s.incumbentObj
	}
	for _, n := range *open {
		if n.bound > bound {
			bound = n.bound
		}
	}
	out := Solution{Nodes: s.nodes, Bound: bound}
	s.stats.Stop = stop
	switch {
	case s.haveInc && (open.Len() == 0 || bound <= s.incumbentObj+s.gapSlack()):
		out.Status = Optimal
		out.X = s.incumbent
		out.Objective = s.incumbentObj
		out.Bound = math.Max(bound, s.incumbentObj)
		s.stats.Stop = solve.Optimal
	case s.haveInc:
		out.Status = Feasible
		out.X = s.incumbent
		out.Objective = s.incumbentObj
	case open.Len() == 0:
		out.Status = Infeasible
		out.Bound = math.Inf(-1)
		s.stats.Stop = solve.None
	default:
		out.Status = NoSolution
	}
	return finish(out)
}

func (s *solver) gapSlack() float64 {
	return s.opts.Gap * math.Max(1, math.Abs(s.incumbentObj))
}

// processLP handles a node whose LP relaxation is solved: fathom by
// integrality, try rounding, or branch.
func (s *solver) processLP(n *node, sol lp.Solution, open *nodeHeap) {
	if s.haveInc && sol.Objective <= s.incumbentObj+s.gapSlack() {
		return // dominated
	}
	if s.isIntegral(sol.X) {
		s.tryIncumbent(sol.X, sol.Objective)
		return
	}
	if s.opts.RoundEvery > 0 && (s.nodes-1)%s.opts.RoundEvery == 0 {
		s.tryRound(sol.X)
	}
	j := s.branchVar(sol.X)
	if j < 0 {
		// Numerically integral after all.
		s.tryIncumbent(sol.X, sol.Objective)
		return
	}
	frac := sol.X[j] - math.Floor(sol.X[j])
	floorV := math.Floor(sol.X[j])
	down := &node{
		parent: n,
		depth:  n.depth + 1,
		branch: lp.Constraint{Coefs: []lp.Coef{{Var: j, Val: 1}}, Sense: lp.LE, RHS: floorV},
		bound:  sol.Objective, // parent bound until solved
	}
	up := &node{
		parent: n,
		depth:  n.depth + 1,
		branch: lp.Constraint{Coefs: []lp.Coef{{Var: j, Val: 1}}, Sense: lp.GE, RHS: floorV + 1},
		bound:  sol.Objective,
	}
	down.pcVar, down.pcFrac, down.pcUp, down.pcParentBound = j, frac, false, sol.Objective
	up.pcVar, up.pcFrac, up.pcUp, up.pcParentBound = j, frac, true, sol.Objective
	heap.Push(open, down)
	heap.Push(open, up)
}

package cg

import (
	"context"
	"testing"
	"time"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/solve"
)

// TestCancellation checks the anytime contract for column generation:
// an interrupted solve skips master/pricing/rounding entirely, returns
// the greedy first-fit fallback, and the fallback is a complete,
// feasible schedule.
func TestCancellation(t *testing.T) {
	cancelled := func() context.Context {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		return ctx
	}
	cases := []struct {
		name     string
		ctx      func() context.Context
		deadline func() time.Time
		want     solve.StopCause
	}{
		{"pre-cancelled context", cancelled, func() time.Time { return time.Time{} }, solve.Cancelled},
		{"expired deadline", context.Background, func() time.Time { return time.Now().Add(-time.Second) }, solve.Deadline},
		{"cancellation wins over expired deadline", cancelled, func() time.Time { return time.Now().Add(-time.Second) }, solve.Cancelled},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := pairProblem(4)
			start := time.Now()
			res, err := Solve(tc.ctx(), cluster.FullSubproblem(p), Options{Deadline: tc.deadline()})
			if err != nil {
				t.Fatal(err)
			}
			if el := time.Since(start); el > time.Second {
				t.Fatalf("interrupted solve took %s", el)
			}
			if res.Stats.Stop != tc.want {
				t.Fatalf("stop cause = %v, want %v", res.Stats.Stop, tc.want)
			}
			if res.Stats.PricingRounds != 0 {
				t.Fatalf("interrupted solve still ran %d pricing rounds", res.Stats.PricingRounds)
			}
			a := toAssignment(p, res.Placements)
			if vs := a.Check(p, true); len(vs) != 0 {
				t.Fatalf("greedy fallback violates constraints: %v", vs)
			}
			placed := 0
			for _, pl := range res.Placements {
				placed += pl.Count
			}
			if want := 4; placed != want {
				t.Fatalf("fallback placed %d containers, want %d", placed, want)
			}
		})
	}
}

// TestCancelMidGeneration cancels while columns are being generated;
// whatever schedule came out must still be feasible.
func TestCancelMidGeneration(t *testing.T) {
	p := pairProblem(2)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(time.Millisecond)
		cancel()
	}()
	res, err := Solve(ctx, cluster.FullSubproblem(p), Options{})
	if err != nil {
		t.Fatal(err)
	}
	switch res.Stats.Stop {
	case solve.Cancelled, solve.Optimal, solve.NodeLimit:
	default:
		t.Fatalf("stop cause = %v", res.Stats.Stop)
	}
	a := toAssignment(p, res.Placements)
	if vs := a.Check(p, true); len(vs) != 0 {
		t.Fatalf("violations after cancellation: %v", vs)
	}
}

// Package cg implements the column-generation algorithm of the paper's
// scheduling algorithm pool (Section IV-C2, Algorithm 1).
//
// The cutting-stock reformulation of RASA assigns each machine a
// *pattern* — a feasible container placement for one machine — and the
// master problem picks how many machines of each group use each pattern.
// The algorithm alternates between solving the relaxed restricted master
// problem (SolveCuttingStock) and generating new patterns with positive
// reduced cost (GenPattern) until no improving pattern exists or the
// time budget expires (IsTerminate), then rounds the fractional master
// solution to an integral schedule (Round).
//
// Pattern pricing is solved exactly as a small MIP per machine group,
// with a greedy fallback when the budget is too tight. The final
// rounding solves the integer master over the generated columns and
// first-fits any spilled containers.
package cg

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/lp"
	"github.com/cloudsched/rasa/internal/mip"
	"github.com/cloudsched/rasa/internal/model"
	"github.com/cloudsched/rasa/internal/solve"
)

// Options tune a column-generation solve.
type Options struct {
	Deadline time.Time // t_max of Algorithm 1; zero = no limit
	MaxIters int       // master/pricing round budget; 0 = default 60
	// DisableGrouping treats every machine as its own group, ablating
	// the machine-grouping model reduction (DESIGN.md ablation A1). Only
	// for experiments; never faster.
	DisableGrouping bool
	// LPKernel selects the simplex engine for the restricted master LP
	// (lp.KernelAuto by default; lp.KernelDense / lp.KernelSparse force
	// one). The master grows a column per generated pattern, so large
	// instances route to the sparse revised-simplex kernel under Auto.
	LPKernel lp.Kernel
}

// Result is the outcome of a solve.
type Result struct {
	Placements []model.Placement
	Objective  float64 // gained affinity of the integral solution
	Iters      int     // column-generation iterations performed
	Patterns   int     // total columns generated
	// Stats breaks the solve down: columns generated, pricing rounds,
	// wall time per phase (master / pricing / rounding), simplex and B&B
	// effort of the sub-solves, and why the loop stopped.
	Stats solve.Stats
}

const rcEps = 1e-7

// pattern is a generated column.
type pattern struct {
	counts []int   // per local service
	group  int     // machine-group index
	value  float64 // affinity value + placement bonus
}

type state struct {
	ctx    context.Context
	sp     *cluster.Subproblem
	groups []model.MachineGroup
	opts   Options

	// loopDeadline bounds the master/pricing loop; the gap to
	// opts.Deadline is reserved for the final rounding step so a
	// non-converging pricing loop cannot starve Round of budget.
	loopDeadline time.Time

	edges []edge // local affinity edges
	bonus float64
	pats  []pattern
	seen  map[string]bool
	stats solve.Stats

	// masterWS and masterBasis warm-start each restricted-master LP from
	// the previous round's optimal basis: the master's rows are fixed
	// (one per group + one per service) and only columns are appended, so
	// the old vertex stays primal feasible and the re-solve prices the
	// new columns in with a handful of warm pivots instead of a full
	// two-phase solve.
	masterWS    *lp.Workspace
	masterBasis *lp.Basis
}

type edge struct {
	i, j int
	w    float64
}

// Solve runs Algorithm 1 on a subproblem. The context interrupts the
// master/pricing loop between rounds (and the sub-solves within them at
// pivot/node granularity); an interrupted solve still rounds whatever
// columns exist, or falls back to the greedy first-fit schedule when the
// budget expired before the loop started — the anytime contract.
func Solve(ctx context.Context, sp *cluster.Subproblem, opts Options) (Result, error) {
	start := time.Now()
	if err := sp.Validate(); err != nil {
		return Result{}, err
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = 60
	}
	groups := model.GroupMachines(sp)
	if opts.DisableGrouping {
		var split []model.MachineGroup
		for _, g := range groups {
			for _, mi := range g.Machines {
				split = append(split, model.MachineGroup{
					Machines: []int{mi},
					Capacity: g.Capacity,
					AntiCap:  g.AntiCap,
					CanHost:  g.CanHost,
				})
			}
		}
		groups = split
	}
	st := &state{
		ctx:      ctx,
		sp:       sp,
		groups:   groups,
		opts:     opts,
		seen:     make(map[string]bool),
		masterWS: lp.AcquireWorkspace(),
	}
	defer st.masterWS.Release()

	// An already-expired budget (or cancelled context) gets no master,
	// pricing, or rounding MIP at all: go straight to the greedy
	// first-fit fallback, which is the best schedule a zero budget buys.
	// (Previously a negative remaining budget fell through the
	// rounding-reserve split below with loopDeadline in the past, and
	// each stage discovered the expiry separately.)
	if cause, stop := solve.Interrupted(ctx, opts.Deadline); stop {
		placements := st.greedyFallback()
		st.stats.Stop = cause
		st.stats.Wall = time.Since(start)
		return Result{
			Placements: placements,
			Objective:  evaluate(sp, placements),
			Stats:      st.stats,
		}, nil
	}

	st.buildEdges()
	totalW := 0.0
	for _, e := range st.edges {
		totalW += e.w
	}
	if tc := sp.TotalContainers(); tc > 0 {
		st.bonus = 1e-4 * (totalW + 1) / float64(tc)
	}
	st.seedPatterns()

	// Reserve ~30% of the remaining budget for the rounding step.
	if !opts.Deadline.IsZero() {
		st.loopDeadline = time.Now().Add(time.Until(opts.Deadline) * 7 / 10)
	}

	// Degenerate master duals can price "new" patterns forever without
	// moving the bound; stop after a few stalled iterations (the
	// IsTerminate condition of Algorithm 1 covers both cases).
	const stallLimit = 3
	var (
		iters   int
		lastObj = math.Inf(-1)
		stall   int
	)
	stop := solve.NodeLimit // MaxIters exhausted unless a break says otherwise
	for iters = 0; iters < opts.MaxIters; iters++ {
		if cause, done := st.interrupted(); done {
			stop = cause
			break
		}
		masterStart := time.Now()
		sol, ok := st.solveMaster(false)
		st.stats.MasterTime += time.Since(masterStart)
		if !ok {
			stop = solve.None // degenerate master; Status-level outcome
			break
		}
		if sol.Objective <= lastObj+1e-9 {
			stall++
			if stall >= stallLimit {
				stop = solve.Optimal // converged (IsTerminate: no bound movement)
				break
			}
		} else {
			stall = 0
			lastObj = sol.Objective
		}
		pricingStart := time.Now()
		improved := st.price(sol.Duals)
		st.stats.PricingTime += time.Since(pricingStart)
		st.stats.PricingRounds++
		if !improved {
			stop = solve.Optimal // no positive-reduced-cost column exists
			break
		}
	}
	// A deadline or cancellation noticed inside price() surfaces on the
	// next loop check; make sure the recorded cause reflects it.
	if cause, done := st.interrupted(); done && (stop == solve.NodeLimit || stop == solve.Optimal) {
		stop = cause
	}
	roundStart := time.Now()
	placements := st.round()
	st.stats.RoundingTime += time.Since(roundStart)
	obj := evaluate(sp, placements)
	st.stats.Stop = stop
	st.stats.Columns = len(st.pats)
	st.stats.Wall = time.Since(start)
	return Result{
		Placements: placements,
		Objective:  obj,
		Iters:      iters,
		Patterns:   len(st.pats),
		Stats:      st.stats,
	}, nil
}

func (st *state) interrupted() (solve.StopCause, bool) {
	return solve.Interrupted(st.ctx, st.loopDeadline)
}

func (st *state) expired() bool {
	_, done := st.interrupted()
	return done
}

// greedyFallback is the zero-budget schedule: first-fit every container
// into residual capacity, with no master problem at all.
func (st *state) greedyFallback() []model.Placement {
	nS := len(st.sp.Services)
	placedPerMachine := make([][]int, len(st.sp.Machines))
	for i := range placedPerMachine {
		placedPerMachine[i] = make([]int, nS)
	}
	remaining := make([]int, nS)
	for si, s := range st.sp.Services {
		remaining[si] = st.sp.P.Services[s].Replicas
	}
	st.spillFill(placedPerMachine, remaining)
	var out []model.Placement
	for mi := range placedPerMachine {
		for si, c := range placedPerMachine[mi] {
			if c > 0 {
				out = append(out, model.Placement{
					Service: st.sp.Services[si],
					Machine: st.sp.Machines[mi],
					Count:   c,
				})
			}
		}
	}
	return out
}

func (st *state) buildEdges() {
	local := make(map[int]int, len(st.sp.Services))
	for si, s := range st.sp.Services {
		local[s] = si
	}
	for _, e := range st.sp.P.Affinity.Edges() {
		i, okI := local[e.U]
		j, okJ := local[e.V]
		if !okI || !okJ {
			continue
		}
		if i > j {
			i, j = j, i
		}
		st.edges = append(st.edges, edge{i: i, j: j, w: e.Weight})
	}
	sort.Slice(st.edges, func(a, b int) bool {
		if st.edges[a].i != st.edges[b].i {
			return st.edges[a].i < st.edges[b].i
		}
		return st.edges[a].j < st.edges[b].j
	})
}

func (st *state) patternValue(counts []int) float64 {
	p := st.sp.P
	var v float64
	for _, e := range st.edges {
		if counts[e.i] == 0 || counts[e.j] == 0 {
			continue
		}
		di := float64(p.Services[st.sp.Services[e.i]].Replicas)
		dj := float64(p.Services[st.sp.Services[e.j]].Replicas)
		v += e.w * math.Min(float64(counts[e.i])/di, float64(counts[e.j])/dj)
	}
	for _, c := range counts {
		v += st.bonus * float64(c)
	}
	return v
}

func (st *state) addPattern(counts []int, group int) bool {
	key := fmt.Sprintf("%d:%v", group, counts)
	if st.seen[key] {
		return false
	}
	st.seen[key] = true
	st.pats = append(st.pats, pattern{
		counts: append([]int(nil), counts...),
		group:  group,
		value:  st.patternValue(counts),
	})
	return true
}

// seedPatterns provides the initial restricted master columns: the empty
// pattern per group plus greedy affinity-packed patterns, so the master
// is feasible and warm from the first iteration.
func (st *state) seedPatterns() {
	nS := len(st.sp.Services)
	for g := range st.groups {
		st.addPattern(make([]int, nS), g)
	}
	// Greedy packing: walk machines in group-major order, filling each
	// machine with the container that gains the most marginal value.
	remaining := make([]int, nS)
	for si, s := range st.sp.Services {
		remaining[si] = st.sp.P.Services[s].Replicas
	}
	for gi := range st.groups {
		g := &st.groups[gi]
		for k := 0; k < g.Count(); k++ {
			counts := make([]int, nS)
			used := make(cluster.Resources, len(st.sp.P.ResourceNames))
			for {
				best, bestGain := -1, 0.0
				for si := 0; si < nS; si++ {
					if remaining[si] == 0 || !g.CanHost[si] {
						continue
					}
					req := st.sp.P.Services[st.sp.Services[si]].Request
					if !used.Add(req).Fits(g.Capacity) {
						continue
					}
					counts[si]++
					if !model.PatternFeasible(st.sp, g, counts) {
						counts[si]--
						continue
					}
					gain := st.marginalGain(counts, si)
					counts[si]--
					if gain > bestGain {
						best, bestGain = si, gain
					}
				}
				if best < 0 {
					break
				}
				counts[best]++
				remaining[best]--
				used = used.Add(st.sp.P.Services[st.sp.Services[best]].Request)
			}
			st.addPattern(counts, gi)
		}
	}
}

// marginalGain returns the value increase achieved by the most recent
// (hypothetical) increment of service si given counts already includes
// that increment.
func (st *state) marginalGain(counts []int, si int) float64 {
	p := st.sp.P
	gain := st.bonus
	ci := float64(counts[si])
	di := float64(p.Services[st.sp.Services[si]].Replicas)
	for _, e := range st.edges {
		var sj int
		switch {
		case e.i == si:
			sj = e.j
		case e.j == si:
			sj = e.i
		default:
			continue
		}
		if counts[sj] == 0 {
			continue
		}
		dj := float64(p.Services[st.sp.Services[sj]].Replicas)
		before := math.Min((ci-1)/di, float64(counts[sj])/dj)
		after := math.Min(ci/di, float64(counts[sj])/dj)
		gain += e.w * (after - before)
	}
	return gain
}

// solveMaster solves the restricted master problem. With integral=false
// it returns the LP relaxation (duals used for pricing); with
// integral=true it solves the integer master for rounding.
func (st *state) solveMaster(integral bool) (lp.Solution, bool) {
	nS := len(st.sp.Services)
	prob := lp.Problem{NumVars: len(st.pats)}
	for pi, pat := range st.pats {
		if pat.value != 0 {
			prob.Objective = append(prob.Objective, lp.Coef{Var: pi, Val: pat.value})
		}
	}
	// Group capacity rows (order: one per group).
	for gi := range st.groups {
		var row []lp.Coef
		for pi, pat := range st.pats {
			if pat.group == gi {
				row = append(row, lp.Coef{Var: pi, Val: 1})
			}
		}
		prob.AddRow(row, lp.LE, float64(st.groups[gi].Count()))
	}
	// SLA rows (order: one per local service).
	for si := 0; si < nS; si++ {
		var row []lp.Coef
		for pi, pat := range st.pats {
			if pat.counts[si] > 0 {
				row = append(row, lp.Coef{Var: pi, Val: float64(pat.counts[si])})
			}
		}
		d := float64(st.sp.P.Services[st.sp.Services[si]].Replicas)
		if len(row) > 0 {
			prob.AddRow(row, lp.LE, d)
		} else {
			// Keep row indexing stable for dual extraction.
			prob.AddRow([]lp.Coef{}, lp.LE, d)
		}
	}
	if !integral {
		sol, err := st.masterWS.SolveFrom(st.ctx, &prob, lp.Options{Deadline: st.loopDeadline, Kernel: st.opts.LPKernel}, st.masterBasis)
		st.stats.Merge(sol.Stats)
		if err != nil || sol.Status == lp.Infeasible || sol.Status == lp.Unbounded || sol.X == nil {
			return lp.Solution{}, false
		}
		if sol.Status == lp.Optimal {
			st.masterBasis = st.masterWS.CaptureBasis(st.masterBasis)
		}
		return sol, true
	}
	ip := mip.Problem{LP: prob, Integer: make([]bool, prob.NumVars)}
	for i := range ip.Integer {
		ip.Integer[i] = true
	}
	msol, err := mip.Solve(st.ctx, &ip, mip.Options{Deadline: st.opts.Deadline, MaxNodes: 4096})
	st.stats.Merge(msol.Stats)
	if err != nil || msol.X == nil {
		return lp.Solution{}, false
	}
	return lp.Solution{X: msol.X, Objective: msol.Objective}, true
}

// price generates new patterns with positive reduced cost using the
// master duals. Returns true if any pattern was added.
func (st *state) price(duals []float64) bool {
	nG := len(st.groups)
	mu := duals[:nG]
	lambda := duals[nG:]
	improved := false
	for gi := range st.groups {
		if st.expired() {
			break
		}
		counts, rc := st.priceGroupMIP(gi, lambda)
		if counts == nil {
			counts, rc = st.priceGroupGreedy(gi, lambda)
		}
		if counts != nil && rc > mu[gi]+rcEps {
			if st.addPattern(counts, gi) {
				improved = true
			}
		}
	}
	return improved
}

// priceGroupMIP solves the pattern-generation subproblem for a group
// exactly: maximize pattern value minus lambda'p over feasible patterns.
func (st *state) priceGroupMIP(gi int, lambda []float64) ([]int, float64) {
	g := &st.groups[gi]
	p := st.sp.P
	nS := len(st.sp.Services)

	pIdx := make([]int, nS)
	for i := range pIdx {
		pIdx[i] = -1
	}
	var nv int
	for si := 0; si < nS; si++ {
		if g.CanHost[si] {
			pIdx[si] = nv
			nv++
		}
	}
	type edgeVar struct {
		e  int
		av int
	}
	var evs []edgeVar
	for ei, e := range st.edges {
		if pIdx[e.i] >= 0 && pIdx[e.j] >= 0 {
			evs = append(evs, edgeVar{e: ei, av: nv})
			nv++
		}
	}
	prob := mip.Problem{LP: lp.Problem{NumVars: nv}, Integer: make([]bool, nv)}
	for si := 0; si < nS; si++ {
		if v := pIdx[si]; v >= 0 {
			prob.Integer[v] = true
			coef := st.bonus - lambda[si]
			if coef != 0 {
				prob.LP.Objective = append(prob.LP.Objective, lp.Coef{Var: v, Val: coef})
			}
			// p_s <= d_s
			prob.LP.AddRow([]lp.Coef{{Var: v, Val: 1}}, lp.LE, float64(p.Services[st.sp.Services[si]].Replicas))
		}
	}
	for _, ev := range evs {
		prob.LP.Objective = append(prob.LP.Objective, lp.Coef{Var: ev.av, Val: st.edges[ev.e].w})
		e := st.edges[ev.e]
		di := float64(p.Services[st.sp.Services[e.i]].Replicas)
		dj := float64(p.Services[st.sp.Services[e.j]].Replicas)
		// a_e <= p_i/d_i and a_e <= p_j/d_j; objective carries w_e.
		prob.LP.AddRow([]lp.Coef{{Var: ev.av, Val: 1}, {Var: pIdx[e.i], Val: -1 / di}}, lp.LE, 0)
		prob.LP.AddRow([]lp.Coef{{Var: ev.av, Val: 1}, {Var: pIdx[e.j], Val: -1 / dj}}, lp.LE, 0)
	}
	for r := range p.ResourceNames {
		var row []lp.Coef
		for si := 0; si < nS; si++ {
			if v := pIdx[si]; v >= 0 {
				if req := p.Services[st.sp.Services[si]].Request[r]; req > 0 {
					row = append(row, lp.Coef{Var: v, Val: req})
				}
			}
		}
		if len(row) > 0 {
			prob.LP.AddRow(row, lp.LE, g.Capacity[r])
		}
	}
	for k, rule := range st.sp.Anti {
		var row []lp.Coef
		for _, s := range rule.Services {
			for si, os := range st.sp.Services {
				if os == s && pIdx[si] >= 0 {
					row = append(row, lp.Coef{Var: pIdx[si], Val: 1})
				}
			}
		}
		if len(row) > 0 {
			prob.LP.AddRow(row, lp.LE, float64(g.AntiCap[k]))
		}
	}
	sol, err := mip.Solve(st.ctx, &prob, mip.Options{Deadline: st.loopDeadline, MaxNodes: 2000})
	st.stats.Merge(sol.Stats)
	if err != nil || sol.X == nil {
		return nil, 0
	}
	counts := make([]int, nS)
	for si := 0; si < nS; si++ {
		if v := pIdx[si]; v >= 0 {
			counts[si] = int(math.Round(sol.X[v]))
		}
	}
	if !model.PatternFeasible(st.sp, g, counts) {
		return nil, 0
	}
	// Recompute the reduced-cost numerator from the integral pattern.
	rc := st.patternValue(counts)
	for si := 0; si < nS; si++ {
		rc -= lambda[si] * float64(counts[si])
	}
	return counts, rc
}

// priceGroupGreedy is the fallback pricer: greedily add the container
// with the best marginal (value - lambda) gain.
func (st *state) priceGroupGreedy(gi int, lambda []float64) ([]int, float64) {
	g := &st.groups[gi]
	nS := len(st.sp.Services)
	counts := make([]int, nS)
	used := make(cluster.Resources, len(st.sp.P.ResourceNames))
	for {
		best, bestGain := -1, rcEps
		for si := 0; si < nS; si++ {
			if !g.CanHost[si] {
				continue
			}
			if counts[si] >= st.sp.P.Services[st.sp.Services[si]].Replicas {
				continue
			}
			req := st.sp.P.Services[st.sp.Services[si]].Request
			if !used.Add(req).Fits(g.Capacity) {
				continue
			}
			counts[si]++
			ok := model.PatternFeasible(st.sp, g, counts)
			gain := st.marginalGain(counts, si) - lambda[si]
			counts[si]--
			if !ok {
				continue
			}
			if gain > bestGain {
				best, bestGain = si, gain
			}
		}
		if best < 0 {
			break
		}
		counts[best]++
		used = used.Add(st.sp.P.Services[st.sp.Services[best]].Request)
	}
	rc := st.patternValue(counts)
	for si := 0; si < nS; si++ {
		rc -= lambda[si] * float64(counts[si])
	}
	return counts, rc
}

// round produces the integral schedule: solve the integer master over
// generated columns, expand chosen patterns onto concrete machines, then
// first-fit any remaining containers into leftover capacity.
func (st *state) round() []model.Placement {
	sol, ok := st.solveMaster(true)
	nS := len(st.sp.Services)
	placedPerMachine := make([][]int, len(st.sp.Machines))
	for i := range placedPerMachine {
		placedPerMachine[i] = make([]int, nS)
	}
	remaining := make([]int, nS)
	for si, s := range st.sp.Services {
		remaining[si] = st.sp.P.Services[s].Replicas
	}
	if ok {
		// Expand pattern multiplicities onto the machines of each group.
		next := make([]int, len(st.groups)) // next machine slot per group
		for pi, pat := range st.pats {
			mult := int(math.Round(sol.X[pi]))
			for k := 0; k < mult; k++ {
				g := &st.groups[pat.group]
				if next[pat.group] >= g.Count() {
					break
				}
				mi := g.Machines[next[pat.group]]
				next[pat.group]++
				for si, c := range pat.counts {
					take := c
					if take > remaining[si] {
						take = remaining[si]
					}
					placedPerMachine[mi][si] += take
					remaining[si] -= take
				}
			}
		}
	}
	st.spillFill(placedPerMachine, remaining)

	var out []model.Placement
	for mi := range placedPerMachine {
		for si, c := range placedPerMachine[mi] {
			if c > 0 {
				out = append(out, model.Placement{
					Service: st.sp.Services[si],
					Machine: st.sp.Machines[mi],
					Count:   c,
				})
			}
		}
	}
	return out
}

// spillFill first-fits containers that the integer master did not place.
func (st *state) spillFill(placed [][]int, remaining []int) {
	p := st.sp.P
	nM := len(st.sp.Machines)
	used := make([]cluster.Resources, nM)
	antiUsed := make([][]int, len(st.sp.Anti))
	for k := range antiUsed {
		antiUsed[k] = make([]int, nM)
	}
	for mi := 0; mi < nM; mi++ {
		used[mi] = make(cluster.Resources, len(p.ResourceNames))
		for si, c := range placed[mi] {
			if c == 0 {
				continue
			}
			req := p.Services[st.sp.Services[si]].Request
			used[mi] = used[mi].Add(req.Scale(float64(c)))
			for k, rule := range st.sp.Anti {
				for _, s := range rule.Services {
					if s == st.sp.Services[si] {
						antiUsed[k][mi] += c
					}
				}
			}
		}
	}
	for si := range remaining {
		s := st.sp.Services[si]
		req := p.Services[s].Request
		for mi := 0; mi < nM && remaining[si] > 0; mi++ {
			if !p.CanHost(s, st.sp.Machines[mi]) {
				continue
			}
			for remaining[si] > 0 {
				if !used[mi].Add(req).Fits(st.sp.Capacity[mi]) {
					break
				}
				blocked := false
				for k, rule := range st.sp.Anti {
					member := false
					for _, rs := range rule.Services {
						if rs == s {
							member = true
							break
						}
					}
					if member && antiUsed[k][mi]+1 > rule.Cap[mi] {
						blocked = true
						break
					}
				}
				if blocked {
					break
				}
				used[mi] = used[mi].Add(req)
				placed[mi][si]++
				remaining[si]--
				for k, rule := range st.sp.Anti {
					for _, rs := range rule.Services {
						if rs == s {
							antiUsed[k][mi]++
						}
					}
				}
			}
		}
	}
}

// evaluate computes the gained affinity of a placement list.
func evaluate(sp *cluster.Subproblem, pls []model.Placement) float64 {
	a := cluster.NewAssignment(sp.P.N(), sp.P.M())
	for _, pl := range pls {
		a.Add(pl.Service, pl.Machine, pl.Count)
	}
	return a.GainedAffinity(sp.P)
}

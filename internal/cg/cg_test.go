package cg

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/graph"
	"github.com/cloudsched/rasa/internal/mip"
	"github.com/cloudsched/rasa/internal/model"
)

func pairProblem(capacity float64) *cluster.Problem {
	g := graph.New(2)
	g.AddEdge(0, 1, 1.0)
	return &cluster.Problem{
		ResourceNames: []string{"cpu"},
		Services: []cluster.Service{
			{Name: "A", Replicas: 2, Request: cluster.Resources{1}},
			{Name: "B", Replicas: 2, Request: cluster.Resources{1}},
		},
		Machines: []cluster.Machine{
			{Name: "m0", Capacity: cluster.Resources{capacity}},
			{Name: "m1", Capacity: cluster.Resources{capacity}},
			{Name: "m2", Capacity: cluster.Resources{capacity}},
		},
		Affinity: g,
	}
}

func toAssignment(p *cluster.Problem, pls []model.Placement) *cluster.Assignment {
	a := cluster.NewAssignment(p.N(), p.M())
	for _, pl := range pls {
		a.Add(pl.Service, pl.Machine, pl.Count)
	}
	return a
}

func TestCGFullCollocation(t *testing.T) {
	p := pairProblem(4)
	res, err := Solve(context.Background(), cluster.FullSubproblem(p), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Objective-1.0) > 1e-6 {
		t.Fatalf("objective = %v, want 1.0", res.Objective)
	}
	a := toAssignment(p, res.Placements)
	if vs := a.Check(p, true); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
}

func TestCGPairedPacking(t *testing.T) {
	// Capacity 2: optimum still 1.0 via two (A,B) pairs.
	p := pairProblem(2)
	res, err := Solve(context.Background(), cluster.FullSubproblem(p), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Objective-1.0) > 1e-6 {
		t.Fatalf("objective = %v, want 1.0", res.Objective)
	}
}

func TestCGPlacesAllContainersWhenPossible(t *testing.T) {
	p := pairProblem(2)
	res, err := Solve(context.Background(), cluster.FullSubproblem(p), Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := toAssignment(p, res.Placements)
	if a.Placed(0) != 2 || a.Placed(1) != 2 {
		t.Fatalf("placed %d/%d, want 2/2", a.Placed(0), a.Placed(1))
	}
}

func TestCGAntiAffinity(t *testing.T) {
	p := pairProblem(10)
	p.AntiAffinity = []cluster.AntiAffinityRule{{Services: []int{0, 1}, MaxPerHost: 1}}
	res, err := Solve(context.Background(), cluster.FullSubproblem(p), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective > 1e-9 {
		t.Fatalf("objective = %v, want 0", res.Objective)
	}
	a := toAssignment(p, res.Placements)
	if vs := a.Check(p, false); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
}

func TestCGDeadlineAnytime(t *testing.T) {
	// An expired deadline must still return a feasible (possibly greedy)
	// schedule without error.
	p := pairProblem(4)
	res, err := Solve(context.Background(), cluster.FullSubproblem(p), Options{Deadline: time.Now().Add(-time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	a := toAssignment(p, res.Placements)
	if vs := a.Check(p, false); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
}

func TestCGMatchesMIPOnSmallInstances(t *testing.T) {
	// On small instances CG should match the exact MIP optimum: the
	// sub-optimality the GCN classifier learns about appears only at
	// scale, not on toy problems.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		sp := randomSubproblem(rng)
		mm, err := model.BuildMIP(sp)
		if err != nil {
			t.Fatal(err)
		}
		msol, err := mip.Solve(context.Background(), &mm.Prob, mip.Options{Rounder: mm.Rounder()})
		if err != nil || msol.X == nil {
			t.Fatalf("mip failed: %v %v", err, msol.Status)
		}
		exact := mm.AffinityValue(msol.X)

		res, err := Solve(context.Background(), sp, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Objective < exact-0.15*(exact+1e-9)-1e-6 {
			t.Fatalf("trial %d: cg %v far below mip %v", trial, res.Objective, exact)
		}
	}
}

func randomSubproblem(rng *rand.Rand) *cluster.Subproblem {
	n := 2 + rng.Intn(4)
	mN := 2 + rng.Intn(3)
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(rng.Intn(n), rng.Intn(n), rng.Float64()+0.1)
	}
	p := &cluster.Problem{ResourceNames: []string{"cpu"}, Affinity: g}
	for s := 0; s < n; s++ {
		p.Services = append(p.Services, cluster.Service{
			Name: "s", Replicas: 1 + rng.Intn(3), Request: cluster.Resources{1},
		})
	}
	for j := 0; j < mN; j++ {
		p.Machines = append(p.Machines, cluster.Machine{
			Name: "m", Capacity: cluster.Resources{float64(2 + rng.Intn(6))},
		})
	}
	return cluster.FullSubproblem(p)
}

// Property: CG schedules are always feasible and never over-place.
func TestPropertyCGFeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sp := randomSubproblem(rng)
		res, err := Solve(context.Background(), sp, Options{MaxIters: 10})
		if err != nil {
			return false
		}
		a := toAssignment(sp.P, res.Placements)
		for s := range sp.P.Services {
			if a.Placed(s) > sp.P.Services[s].Replicas {
				return false
			}
		}
		return len(a.Check(sp.P, false)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the reported objective matches an independent evaluation of
// the returned placements.
func TestPropertyCGObjectiveConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sp := randomSubproblem(rng)
		res, err := Solve(context.Background(), sp, Options{MaxIters: 10})
		if err != nil {
			return false
		}
		a := toAssignment(sp.P, res.Placements)
		return math.Abs(a.GainedAffinity(sp.P)-res.Objective) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCGSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	sp := randomSubproblem(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(context.Background(), sp, Options{MaxIters: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// Sparse-kernel benchmark (BENCH_pr8.json): compares the sparse
// revised-simplex kernel (PR 8) against the dense tableau on the root
// relaxations of T4-sized subproblems — the MIP formulations the
// production solve path feeds to internal/mip, where assignment-style
// singleton rows dominate and presolve plus CSC storage should pay.
// Correctness is part of the artifact: both kernels must agree on
// status and objective (<= 1e-6) on every case.
package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/cloudsched/rasa/internal/lp"
	"github.com/cloudsched/rasa/internal/model"
	"github.com/cloudsched/rasa/internal/partition"
	"github.com/cloudsched/rasa/internal/workload"
)

// SparseBenchResult is the schema of BENCH_pr8.json.
type SparseBenchResult struct {
	Schema string `json:"schema"`
	Seed   int64  `json:"seed"`
	// LPSolves is how many repeated cold solves each case averages over.
	LPSolves int `json:"lpSolvesPerCase"`

	Cases []SparseBenchCase `json:"cases"`

	// Means across cases (per solve), and the aggregate speedup
	// (mean dense ns / mean sparse ns).
	NsDense  float64 `json:"nsPerSolveDense"`
	NsSparse float64 `json:"nsPerSolveSparse"`
	Speedup  float64 `json:"speedup"`
	// Correctness gates: every case must match on status, and on
	// objective within 1e-6 (relative).
	StatusesAgree     bool    `json:"statusesAgree"`
	ObjectivesAgree   bool    `json:"objectivesAgree"`
	MaxObjectiveDelta float64 `json:"maxObjectiveDelta"`
	// Mean presolve shrinkage of the sparse arm (fractions of the
	// original dimensions removed before the kernel ran).
	MeanRowReduction float64 `json:"meanRowReduction"`
	MeanColReduction float64 `json:"meanColReduction"`
}

// SparseBenchCase is one subproblem's root-relaxation LP.
type SparseBenchCase struct {
	Name string `json:"name"`
	Vars int    `json:"vars"`
	Rows int    `json:"rows"`

	NsDense  float64 `json:"nsPerSolveDense"`
	NsSparse float64 `json:"nsPerSolveSparse"`
	Speedup  float64 `json:"speedup"`

	StatusDense  string  `json:"statusDense"`
	StatusSparse string  `json:"statusSparse"`
	ObjDense     float64 `json:"objectiveDense"`
	ObjSparse    float64 `json:"objectiveSparse"`
	ObjDelta     float64 `json:"objectiveDelta"`

	PivotsDense  int `json:"pivotsDense"`
	PivotsSparse int `json:"pivotsSparse"`
	// Presolve shrinkage (rows/columns removed from the original LP
	// before the sparse kernel saw it).
	RowsRemoved int `json:"rowsRemoved"`
	ColsRemoved int `json:"colsRemoved"`
}

// sparseBenchCases selects root-relaxation LPs from multistage
// partitions of the T4 training cluster — large enough that the dense
// tableau's O(m·n) pivot actually hurts.
func sparseBenchCases(cfg Config) ([]benchCase, error) {
	const (
		minCells = 20_000 // below this the dense kernel's constant wins; not the regime PR 8 targets
		// maxCells keeps the DENSE arm tractable: objective parity needs
		// both kernels to reach Optimal, and above this the dense
		// tableau's per-pivot cost turns one cold solve into minutes
		// (the sparse kernel finishes the same LPs in under a second).
		maxCells  = 150_000
		totalCap  = 6
		seedCount = 3
	)
	t4 := workload.TrainingPresets()[3]
	c, err := getCluster(t4)
	if err != nil {
		return nil, err
	}
	var out []benchCase
	for seed := int64(0); seed < seedCount && len(out) < totalCap; seed++ {
		pres, err := partition.Multistage(cfg.Ctx, c.Problem, c.Original, partition.Options{
			TargetSize: 14, Seed: cfg.Seed + seed,
		})
		if err != nil {
			return nil, err
		}
		for _, sp := range pres.Subproblems {
			if len(out) >= totalCap {
				break
			}
			m, err := model.BuildMIP(sp)
			if err != nil {
				continue
			}
			cells := int64(m.NumVars()) * int64(m.NumRows())
			if cells < minCells || cells > maxCells {
				continue
			}
			out = append(out, benchCase{
				name: fmt.Sprintf("%s/seed%d/%dv%dr", t4.Name, cfg.Seed+seed, m.NumVars(), m.NumRows()),
				m:    m,
			})
		}
	}
	return out, nil
}

// measureKernel times `solves` cold solves of prob on one kernel in a
// reused workspace and returns the mean ns/solve plus a representative
// solution and the presolve shrinkage of the last solve.
func measureKernel(ctx context.Context, prob *lp.Problem, solves int, k lp.Kernel) (nsPerSolve float64, sol lp.Solution, rowsRem, colsRem int, err error) {
	ws := lp.AcquireWorkspace()
	defer ws.Release()
	opts := lp.Options{Kernel: k}
	if sol, err = ws.Solve(ctx, prob, opts); err != nil { // warm-up + representative answer
		return 0, sol, 0, 0, err
	}
	rowsRem, colsRem = ws.Reduction()
	start := time.Now()
	for i := 0; i < solves; i++ {
		if _, err = ws.Solve(ctx, prob, opts); err != nil {
			return 0, sol, 0, 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(solves), sol, rowsRem, colsRem, nil
}

// SparseBench runs the sparse-vs-dense kernel benchmark and prints a
// summary table to cfg.Out. Serialize with WriteSparseBenchJSON.
func SparseBench(cfg Config) (*SparseBenchResult, error) {
	cfg = cfg.withDefaults()
	const lpSolves = 20

	cases, err := sparseBenchCases(cfg)
	if err != nil {
		return nil, err
	}
	if len(cases) == 0 {
		return nil, fmt.Errorf("sparsebench: no benchmark cases survived selection")
	}

	res := &SparseBenchResult{
		Schema:          "rasa-sparse-bench/1",
		Seed:            cfg.Seed,
		LPSolves:        lpSolves,
		StatusesAgree:   true,
		ObjectivesAgree: true,
	}

	header(cfg.Out, "SPARSE-BENCH", "sparse revised simplex vs dense tableau on T4 subproblem LPs (BENCH_pr8.json)")
	row(cfg.Out, "case", "vars", "rows", "ns/solve dense", "ns/solve sparse", "speedup", "obj delta", "rows-/cols- removed")
	var rowRed, colRed float64
	for _, bc := range cases {
		if err := cfg.Ctx.Err(); err != nil {
			return nil, err
		}
		prob := &bc.m.Prob.LP
		nsD, solD, _, _, err := measureKernel(cfg.Ctx, prob, lpSolves, lp.KernelDense)
		if err != nil {
			return nil, fmt.Errorf("sparsebench %s (dense): %w", bc.name, err)
		}
		nsS, solS, rr, cr, err := measureKernel(cfg.Ctx, prob, lpSolves, lp.KernelSparse)
		if err != nil {
			return nil, fmt.Errorf("sparsebench %s (sparse): %w", bc.name, err)
		}
		sc := SparseBenchCase{
			Name: bc.name, Vars: bc.m.NumVars(), Rows: bc.m.NumRows(),
			NsDense: nsD, NsSparse: nsS,
			StatusDense: solD.Status.String(), StatusSparse: solS.Status.String(),
			ObjDense: solD.Objective, ObjSparse: solS.Objective,
			PivotsDense: solD.Stats.SimplexIters, PivotsSparse: solS.Stats.SimplexIters,
			RowsRemoved: rr, ColsRemoved: cr,
		}
		if nsS > 0 {
			sc.Speedup = nsD / nsS
		}
		if solD.Status != solS.Status {
			res.StatusesAgree = false
		}
		if solD.Status == lp.Optimal && solS.Status == lp.Optimal {
			sc.ObjDelta = abs(solD.Objective - solS.Objective)
			if sc.ObjDelta > res.MaxObjectiveDelta {
				res.MaxObjectiveDelta = sc.ObjDelta
			}
			if sc.ObjDelta > 1e-6*(1+abs(solD.Objective)) {
				res.ObjectivesAgree = false
			}
		}
		rowRed += float64(rr) / float64(max(1, sc.Rows))
		colRed += float64(cr) / float64(max(1, sc.Vars))
		res.Cases = append(res.Cases, sc)
		res.NsDense += nsD
		res.NsSparse += nsS
		row(cfg.Out, bc.name, sc.Vars, sc.Rows, sc.NsDense, sc.NsSparse, sc.Speedup, sc.ObjDelta,
			fmt.Sprintf("%d/%d", rr, cr))
	}
	n := float64(len(res.Cases))
	res.NsDense /= n
	res.NsSparse /= n
	if res.NsSparse > 0 {
		res.Speedup = res.NsDense / res.NsSparse
	}
	res.MeanRowReduction = rowRed / n
	res.MeanColReduction = colRed / n
	fmt.Fprintf(cfg.Out, "aggregate speedup: %.2fx; statuses agree: %v; max obj delta: %.2g; presolve removed %.0f%% rows, %.0f%% cols (mean)\n",
		res.Speedup, res.StatusesAgree, res.MaxObjectiveDelta, 100*res.MeanRowReduction, 100*res.MeanColReduction)
	return res, nil
}

// WriteSparseBenchJSON writes the BENCH_pr8.json artifact.
func WriteSparseBenchJSON(w io.Writer, r *SparseBenchResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

package experiments

import (
	"fmt"

	"github.com/cloudsched/rasa/internal/powerlaw"
)

// Table2Row reports one generated dataset's realized scale.
type Table2Row struct {
	Name       string
	Services   int
	Containers int
	Machines   int
	Edges      int
}

// Table2 regenerates Table II: the scales of the experimental datasets.
func Table2(cfg Config) ([]Table2Row, error) {
	cfg = cfg.withDefaults()
	header(cfg.Out, "Table II", "Scales of Experimental Datasets")
	row(cfg.Out, "Cluster", "#Service", "#Container", "#Machine", "#AffinityEdge")
	var out []Table2Row
	for _, ps := range cfg.Presets {
		if err := cfg.Ctx.Err(); err != nil {
			return nil, fmt.Errorf("interrupted: %w", err)
		}
		c, err := getCluster(ps)
		if err != nil {
			return nil, err
		}
		var containers int
		for _, s := range c.Problem.Services {
			containers += s.Replicas
		}
		r := Table2Row{
			Name:       ps.Name,
			Services:   c.Problem.N(),
			Containers: containers,
			Machines:   c.Problem.M(),
			Edges:      c.Problem.Affinity.M(),
		}
		out = append(out, r)
		row(cfg.Out, r.Name, r.Services, r.Containers, r.Machines, r.Edges)
	}
	return out, nil
}

// Fig5Result reports the distribution-fit comparison.
type Fig5Result struct {
	Top          []float64 // ranked total affinity of the top services
	PowerLaw     powerlaw.Fit
	Exponential  powerlaw.Fit
	PowerLawWins bool
}

// Fig5 regenerates Fig. 5: fitting exponential and power-law
// distributions to the total-affinity distribution of the top 40
// services of a production-like cluster.
func Fig5(cfg Config) (*Fig5Result, error) {
	cfg = cfg.withDefaults()
	c, err := getCluster(cfg.Presets[0])
	if err != nil {
		return nil, err
	}
	p := c.Problem
	ts := p.Affinity.TotalAffinities()
	var ranked []float64
	for _, s := range p.Affinity.RankByTotalAffinity() {
		if ts[s] > 0 {
			ranked = append(ranked, ts[s])
		}
		if len(ranked) == 40 {
			break
		}
	}
	pl, err := powerlaw.FitPowerLaw(ranked)
	if err != nil {
		return nil, err
	}
	ex, err := powerlaw.FitExponential(ranked)
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{Top: ranked, PowerLaw: pl, Exponential: ex, PowerLawWins: pl.R2 >= ex.R2}

	header(cfg.Out, "Fig. 5", "Total affinity distribution of top-40 services: power law vs exponential")
	row(cfg.Out, "rank", "T(s)", "power-law fit", "exponential fit")
	for i, y := range ranked {
		row(cfg.Out, i+1, y, pl.Eval(i+1), ex.Eval(i+1))
	}
	fmt.Fprintf(cfg.Out, "power-law:   beta=%.3f  R2=%.4f\n", pl.Param, pl.R2)
	fmt.Fprintf(cfg.Out, "exponential: lambda=%.3f  R2=%.4f\n", ex.Param, ex.R2)
	fmt.Fprintf(cfg.Out, "better fit: %s (paper: power law, supporting Assumption 4.1)\n",
		map[bool]string{true: "power-law", false: "exponential"}[res.PowerLawWins])
	return res, nil
}

// Shard federation benchmark (BENCH_pr9.json): the PR-9 scatter-gather
// pool against the single incremental engine under a sustained churn
// firehose. Hundreds of scripted sessions — each owning a disjoint
// slice of one compatibility block's services, so concurrent batches
// commute — fire zone-concentrated event waves; after each wave one
// event-to-plan pass runs (Reoptimize with migration planning on). The
// single-engine arm pays cluster-scoped pass costs for every wave; the
// federated arms re-solve only the blocks the wave dirtied. The
// artifact records per-arm throughput, pass-mode mix, final normalized
// gain (the arms must agree within 1%), an executed final wave with
// zero SLA-floor violations, and a shard rebalance whose replayed
// blocks preserve their log fingerprints.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/exec"
	"github.com/cloudsched/rasa/internal/fed"
	"github.com/cloudsched/rasa/internal/incr"
	"github.com/cloudsched/rasa/internal/lifetime"
	"github.com/cloudsched/rasa/internal/partition"
	"github.com/cloudsched/rasa/internal/snapshot"
	"github.com/cloudsched/rasa/internal/workload"
)

// ShardBenchResult is the schema of BENCH_pr9.json.
type ShardBenchResult struct {
	Schema string `json:"schema"`
	Seed   int64  `json:"seed"`
	Preset string `json:"preset"`

	Services int `json:"services"`
	Machines int `json:"machines"`
	// Blocks is the compatibility-block count (= zones: every service
	// is zone-pinned); Sessions is the concurrent scripted submitters.
	Blocks   int `json:"blocks"`
	Sessions int `json:"sessions"`
	// Rounds churn waves were fired; each wave touches BlocksPerRound
	// rotating blocks and is followed by one event-to-plan pass.
	Rounds         int    `json:"rounds"`
	BlocksPerRound int    `json:"blocksPerRound"`
	Events         int    `json:"events"`
	Budget         string `json:"budget"`

	Arms []ShardBenchArm `json:"arms"`

	// ThroughputSpeedup4x is eventsPerSec(fed-4) / eventsPerSec(single)
	// — the PR-9 acceptance floor is 2.5. AffinityDeltaPercent is the
	// relative gap between the 4-shard arm's and the single engine's
	// final normalized gain (ceiling 1%).
	ThroughputSpeedup4x  float64 `json:"throughputSpeedup4x"`
	AffinityDeltaPercent float64 `json:"affinityDeltaPercent"`

	// Rebalance resizes the 4-shard pool after the firehose; the
	// replayed blocks must preserve their log fingerprints.
	Rebalance *fed.Rebalance `json:"rebalance"`
}

// ShardBenchArm is one engine configuration driven through the
// identical firehose.
type ShardBenchArm struct {
	// Name is "single" or "fed-N"; Shards is 0 for the single engine.
	Name   string `json:"name"`
	Shards int    `json:"shards"`

	Events       int     `json:"events"`
	WallSeconds  float64 `json:"wallSeconds"`
	EventsPerSec float64 `json:"eventsPerSec"`

	// Pass-mode mix over the firehose waves. For the single engine a
	// wave is one pass; for a pool each dirty block contributes one.
	Noops  int `json:"noops"`
	Deltas int `json:"deltas"`
	Fulls  int `json:"fulls"`
	Moves  int `json:"moves"`
	// FloorRejections counts merged block plans the pool's global
	// SLA-floor check refused (single engine: always 0).
	FloorRejections int `json:"floorRejections"`

	FinalNormalizedGain float64 `json:"finalNormalizedGain"`
	FinalGained         float64 `json:"finalGainedAffinity"`

	// The post-firehose wave executed through the migration executor
	// against an instant fabric.
	ExecOutcome         string `json:"execOutcome"`
	ExecMoves           int    `json:"execPlannedMoves"`
	ExecFloorViolations int    `json:"execFloorViolations"`
}

// shardScript is the pre-generated firehose: batches[worker][round] is
// the event batch session `worker` submits in round `round`. Sessions
// own disjoint service sets within one block, so every round's
// concurrent batches commute — all arms reach the identical state at
// each round boundary regardless of goroutine interleaving.
type shardScript struct {
	batches  [][][]incr.Event
	active   [][]int // round -> active worker ids
	finale   [][]incr.Event
	perRound []int
	events   int
}

const (
	shardBenchSessions  = 200
	shardBenchRounds    = 24
	shardBlocksPerRound = 1
	eventsPerSession    = 2
)

// buildShardScript assigns every session a block and a disjoint slice
// of its services, then scripts bounce-scales and intra-slice affinity
// reweights per round. Affinity pairs stay inside one session's slice
// (hence inside one block), so no script event creates a cross-block
// edge and both arms optimize the same edge set.
func buildShardScript(p *cluster.Problem, blocks []partition.Block, seed int64) *shardScript {
	nb := len(blocks)
	owner := make([][]int, shardBenchSessions) // session -> owned services
	for bi, b := range blocks {
		var workers []int
		for w := bi; w < shardBenchSessions; w += nb {
			workers = append(workers, w)
		}
		for j, s := range b.Services {
			w := workers[j%len(workers)]
			owner[w] = append(owner[w], s)
		}
	}
	orig := make([]int, p.N())
	shadow := make([]int, p.N())
	for s := range p.Services {
		orig[s] = p.Services[s].Replicas
		shadow[s] = orig[s]
	}
	avgWeight := 1.0
	if m := p.Affinity.M(); m > 0 {
		avgWeight = p.Affinity.TotalWeight() / float64(m)
	}

	sc := &shardScript{
		batches: make([][][]incr.Event, shardBenchSessions),
		active:  make([][]int, shardBenchRounds),
	}
	emit := func(w int, rng *rand.Rand) []incr.Event {
		var batch []incr.Event
		for e := 0; e < eventsPerSession; e++ {
			if e%2 == 1 && len(owner[w]) >= 2 {
				i := rng.Intn(len(owner[w]))
				j := rng.Intn(len(owner[w]) - 1)
				if j >= i {
					j++
				}
				batch = append(batch, incr.UpdateAffinity{
					A: owner[w][i], B: owner[w][j],
					Weight: avgWeight * (0.5 + rng.Float64()),
				})
				continue
			}
			s := owner[w][rng.Intn(len(owner[w]))]
			// Bounce above the original target: scale up one replica, then
			// restore. Upward bounces keep every entry state at or under
			// its replica target, so migration plans never need the
			// deadlock-breaking stall path; the generated cluster's 0.5
			// utilization covers the extra replica.
			target := shadow[s] + 1
			if shadow[s] > orig[s] {
				target = orig[s]
			}
			shadow[s] = target
			batch = append(batch, incr.ScaleService{Service: s, Replicas: target})
		}
		return batch
	}
	rngs := make([]*rand.Rand, shardBenchSessions)
	for w := range rngs {
		rngs[w] = rand.New(rand.NewSource(seed*7919 + int64(w)))
	}
	for w := 0; w < shardBenchSessions; w++ {
		sc.batches[w] = make([][]incr.Event, shardBenchRounds)
	}
	for r := 0; r < shardBenchRounds; r++ {
		hot := map[int]bool{}
		for k := 0; k < shardBlocksPerRound; k++ {
			hot[(r*shardBlocksPerRound+k)%nb] = true
		}
		count := 0
		for w := 0; w < shardBenchSessions; w++ {
			if len(owner[w]) == 0 || !hot[w%nb] {
				continue
			}
			b := emit(w, rngs[w])
			sc.batches[w][r] = b
			sc.active[r] = append(sc.active[r], w)
			count += len(b)
		}
		sc.perRound = append(sc.perRound, count)
		sc.events += count
	}
	// The finale touches every session once; it is applied but not
	// re-optimized, leaving real work for the executor phase.
	for w := 0; w < shardBenchSessions; w++ {
		if len(owner[w]) == 0 {
			continue
		}
		sc.finale = append(sc.finale, emit(w, rngs[w]))
	}
	return sc
}

// shardArm abstracts the two backends behind the firehose driver.
type shardArm struct {
	name   string
	shards int
	apply  func([]incr.Event) error
	reopt  func() (noops, deltas, fulls, moves, rejections int, err error)
	stats  func() incr.Stats
	exec   func() (*exec.Report, error)
	pool   *fed.Pool
}

func shardEngineOpts(cfg Config) incr.Options {
	// Floor the pass budget well above the block solve times: the
	// anytime solvers prove per-block optimality in tens of
	// milliseconds, so the floor never pads the wall clock — it only
	// keeps the single engine's cluster-wide full passes from being
	// truncated to incomparable incumbents (lifetimebench pins its
	// embedded budget for the same reason).
	budget := cfg.Budget
	if budget < 4*time.Second {
		budget = 4 * time.Second
	}
	return incr.Options{
		Budget:      budget,
		Parallelism: 1,
		MinAlive:    0.75,
		// Both arms tolerate at most one point of drift before
		// escalating, so their final gains are comparable: the default
		// 5% would let the single engine coast on stale partitions while
		// the pool's block-scoped passes stay near-optimal.
		DriftThreshold: 0.01,
		// One subproblem per compatibility block and unsampled master
		// sets: the single engine then solves exactly the subproblems
		// the pool's blocks solve, so the arms' final gains differ only
		// by budget pressure, not partition shape.
		Partition: partition.Options{Seed: cfg.Seed, MasterRatio: 1, TargetSize: 16},
	}
}

func newSingleArm(cfg Config, c *workload.Cluster) (*shardArm, error) {
	p, a, err := snapshot.FromCluster(c.Problem, c.Original).ToCluster()
	if err != nil {
		return nil, err
	}
	st, err := incr.NewState(p, a)
	if err != nil {
		return nil, err
	}
	eng := incr.New(st, shardEngineOpts(cfg), nil)
	// One session mutex, exactly as the server serializes the shared
	// engine: concurrent sessions queue on it.
	var mu sync.Mutex
	return &shardArm{
		name: "single",
		apply: func(evs []incr.Event) error {
			mu.Lock()
			defer mu.Unlock()
			_, err := eng.Apply(evs...)
			return err
		},
		reopt: func() (int, int, int, int, int, error) {
			res, err := eng.Reoptimize(cfg.Ctx)
			if err != nil {
				return 0, 0, 0, 0, 0, err
			}
			var no, de, fu int
			switch res.Mode {
			case incr.ModeNoop:
				no = 1
			case incr.ModeDelta:
				de = 1
			default:
				fu = 1
			}
			return no, de, fu, res.Moves, 0, nil
		},
		stats: func() incr.Stats { return st.Snapshot() },
		exec: func() (*exec.Report, error) {
			fab := exec.NewInstantFabric(st.Assignment().Clone())
			return exec.New(eng, fab, exec.Options{MinAlive: 0.75, Parallelism: 1, Seed: cfg.Seed}, nil).Run(cfg.Ctx)
		},
	}, nil
}

func newFedArm(cfg Config, c *workload.Cluster, shards int) (*shardArm, error) {
	p, a, err := snapshot.FromCluster(c.Problem, c.Original).ToCluster()
	if err != nil {
		return nil, err
	}
	pool, err := fed.New(p, a, fed.Options{Shards: shards, Engine: shardEngineOpts(cfg)}, nil)
	if err != nil {
		return nil, err
	}
	return &shardArm{
		name:   fmt.Sprintf("fed-%d", shards),
		shards: shards,
		pool:   pool,
		apply: func(evs []incr.Event) error {
			_, err := pool.Apply(evs...)
			return err
		},
		reopt: func() (int, int, int, int, int, error) {
			res, err := pool.Reoptimize(cfg.Ctx)
			if err != nil {
				return 0, 0, 0, 0, 0, err
			}
			return res.Noops, res.Deltas, res.Fulls, res.Moves, res.FloorRejections, nil
		},
		stats: func() incr.Stats { return pool.Stats() },
		exec: func() (*exec.Report, error) {
			fabFor := func(blockID int, gMach []int, start *cluster.Assignment) exec.Fabric {
				return exec.NewInstantFabric(start.Clone())
			}
			return pool.Execute(cfg.Ctx, fabFor, exec.Options{MinAlive: 0.75, Parallelism: 1, Seed: cfg.Seed})
		},
	}, nil
}

// runFirehose drives the scripted waves through one arm: per round, the
// active sessions submit concurrently, then one event-to-plan pass
// runs. The measured wall clock covers both.
func runFirehose(cfg Config, arm *shardArm, sc *shardScript) (*ShardBenchArm, error) {
	out := &ShardBenchArm{Name: arm.name, Shards: arm.shards, Events: sc.events}
	start := time.Now()
	for r := 0; r < shardBenchRounds; r++ {
		if err := cfg.Ctx.Err(); err != nil {
			return nil, err
		}
		var wg sync.WaitGroup
		errs := make([]error, len(sc.active[r]))
		for i, w := range sc.active[r] {
			wg.Add(1)
			go func(i, w int) {
				defer wg.Done()
				errs[i] = arm.apply(sc.batches[w][r])
			}(i, w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("shardbench: %s apply: %w", arm.name, err)
			}
		}
		no, de, fu, moves, rej, err := arm.reopt()
		if err != nil {
			return nil, fmt.Errorf("shardbench: %s reoptimize: %w", arm.name, err)
		}
		out.Noops += no
		out.Deltas += de
		out.Fulls += fu
		out.Moves += moves
		out.FloorRejections += rej
	}
	out.WallSeconds = time.Since(start).Seconds()
	if out.WallSeconds > 0 {
		out.EventsPerSec = float64(out.Events) / out.WallSeconds
	}
	// Settle (untimed): force one clean pass over everything so the
	// quality comparison measures each arm's converged state, not the
	// residue of whichever waves happened to run under budget pressure.
	if err := arm.apply([]incr.Event{lifetime.ReplanRequested{Reason: "shardbench-settle"}}); err != nil {
		return nil, fmt.Errorf("shardbench: %s settle apply: %w", arm.name, err)
	}
	if _, _, _, _, _, err := arm.reopt(); err != nil {
		return nil, fmt.Errorf("shardbench: %s settle: %w", arm.name, err)
	}
	st := arm.stats()
	out.FinalNormalizedGain = st.NormalizedGain
	out.FinalGained = st.GainedAffinity

	// Final wave: applied concurrently, then executed (not adopted) so
	// the executor phase converges real pending work.
	var wg sync.WaitGroup
	errs := make([]error, len(sc.finale))
	for i := range sc.finale {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = arm.apply(sc.finale[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shardbench: %s finale: %w", arm.name, err)
		}
	}
	rep, err := arm.exec()
	if err != nil {
		return nil, fmt.Errorf("shardbench: %s execute: %w", arm.name, err)
	}
	out.ExecOutcome = string(rep.Outcome)
	out.ExecMoves = rep.PlannedMoves
	out.ExecFloorViolations = rep.FloorViolations
	return out, nil
}

// ShardBench runs the identical scripted firehose through the single
// incremental engine and through 2/4/8-shard federated pools, then
// rebalances the 4-shard pool. The container runs on one core, so the
// federated arms' throughput edge measures pass-scoped work avoided —
// only dirtied blocks re-solve, and their pass overhead is block-sized
// — not CPU parallelism; shard counts beyond the dirty-block count per
// wave add routing capacity, not speed.
func ShardBench(cfg Config) (*ShardBenchResult, error) {
	cfg = cfg.withDefaults()
	ps := workload.Preset{
		Name: "SHARD", Services: 240, Containers: 1200, Machines: 96,
		Beta: 1.7, AffinityFraction: 0.6, Zones: 24, CommunitySize: 5,
		Utilization: 0.5, Seed: cfg.Seed + 5,
	}
	c, err := getCluster(ps)
	if err != nil {
		return nil, err
	}
	blocks := partition.Blocks(c.Problem)
	sc := buildShardScript(c.Problem, blocks, cfg.Seed)

	res := &ShardBenchResult{
		Schema:   "rasa-shard-bench/1",
		Seed:     cfg.Seed,
		Preset:   ps.Name,
		Services: c.Problem.N(),
		Machines: c.Problem.M(),
		Blocks:   len(blocks),
		Sessions: shardBenchSessions,
		Rounds:   shardBenchRounds,

		BlocksPerRound: shardBlocksPerRound,
		Events:         sc.events,
		Budget:         cfg.Budget.String(),
	}

	header(cfg.Out, "SHARD-BENCH", "federated pool vs single engine under a scripted churn firehose (BENCH_pr9.json)")
	row(cfg.Out, "arm", "events", "wall s", "ev/s", "noop", "delta", "full", "moves", "norm gain", "exec", "floor")

	arms := []func() (*shardArm, error){
		func() (*shardArm, error) { return newSingleArm(cfg, c) },
		func() (*shardArm, error) { return newFedArm(cfg, c, 2) },
		func() (*shardArm, error) { return newFedArm(cfg, c, 4) },
		func() (*shardArm, error) { return newFedArm(cfg, c, 8) },
	}
	var fed4 *fed.Pool
	for _, mk := range arms {
		arm, err := mk()
		if err != nil {
			return nil, err
		}
		ar, err := runFirehose(cfg, arm, sc)
		if err != nil {
			return nil, err
		}
		if arm.shards == 4 {
			fed4 = arm.pool
		}
		res.Arms = append(res.Arms, *ar)
		row(cfg.Out, ar.Name, ar.Events, ar.WallSeconds, ar.EventsPerSec, ar.Noops, ar.Deltas,
			ar.Fulls, ar.Moves, ar.FinalNormalizedGain, ar.ExecOutcome, ar.ExecFloorViolations)
	}

	single, four := res.Arms[0], res.Arms[2]
	if single.EventsPerSec > 0 {
		res.ThroughputSpeedup4x = four.EventsPerSec / single.EventsPerSec
	}
	if single.FinalNormalizedGain > 0 {
		res.AffinityDeltaPercent = 100 * abs(four.FinalNormalizedGain-single.FinalNormalizedGain) / single.FinalNormalizedGain
	}
	for _, ar := range res.Arms {
		if ar.ExecFloorViolations != 0 {
			return nil, fmt.Errorf("shardbench: %s issued %d SLA-floor violations", ar.Name, ar.ExecFloorViolations)
		}
		if ar.ExecOutcome != string(exec.OutcomeCompleted) {
			return nil, fmt.Errorf("shardbench: %s execution outcome %s", ar.Name, ar.ExecOutcome)
		}
	}
	if res.AffinityDeltaPercent > 1 {
		return nil, fmt.Errorf("shardbench: 4-shard final gain diverges %.2f%% from single engine",
			res.AffinityDeltaPercent)
	}

	// Rebalance the 4-shard pool: the moved blocks replay their log
	// segments into the new owners and must hash identically.
	reb, err := fed4.Resize(6)
	if err != nil {
		return nil, fmt.Errorf("shardbench: rebalance: %w", err)
	}
	res.Rebalance = reb
	if !reb.FingerprintsPreserved {
		return nil, fmt.Errorf("shardbench: rebalance lost block fingerprints")
	}
	fmt.Fprintf(cfg.Out, "throughput speedup fed-4/single %.2fx; affinity delta %.3f%%; rebalance moved %d blocks (%d events replayed, fingerprints preserved)\n",
		res.ThroughputSpeedup4x, res.AffinityDeltaPercent, len(reb.MovedBlocks), reb.ReplayedEvents)
	return res, nil
}

// WriteShardBenchJSON writes the BENCH_pr9.json artifact.
func WriteShardBenchJSON(w io.Writer, r *ShardBenchResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

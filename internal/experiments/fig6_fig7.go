package experiments

import (
	"fmt"
	"math"

	"github.com/cloudsched/rasa/internal/core"
	"github.com/cloudsched/rasa/internal/partition"
)

// Fig6Cell is one (cluster, strategy) measurement.
type Fig6Cell struct {
	Gained float64 // normalized gained affinity
	OOT    bool
}

// Fig6Result maps cluster name -> strategy name -> cell.
type Fig6Result map[string]map[string]Fig6Cell

// Fig6 regenerates Fig. 6: gained affinity of different partitioning
// algorithms under the time-out budget. Expected shape: MULTI-STAGE >
// KAHIP > RANDOM, and NO-PARTITION OOT on all but the small cluster.
func Fig6(cfg Config) (Fig6Result, error) {
	cfg = cfg.withDefaults()
	strategies := []core.Strategy{core.NoPartition, core.RandomPartition, core.KWayPartition, core.Multistage}
	out := make(Fig6Result)

	header(cfg.Out, "Fig. 6", "Gained affinity by partitioning algorithm (time-out "+cfg.Budget.String()+")")
	row(cfg.Out, "Cluster", "NO-PARTITION", "RANDOM-PARTITION", "KAHIP", "MULTI-STAGE-PARTITION")
	for _, ps := range cfg.Presets {
		if err := cfg.Ctx.Err(); err != nil {
			return out, fmt.Errorf("interrupted: %w", err)
		}
		c, err := getCluster(ps)
		if err != nil {
			return nil, err
		}
		cells := make(map[string]Fig6Cell)
		for _, st := range strategies {
			res, err := core.Optimize(cfg.Ctx, c.Problem, c.Original, core.Options{
				Budget:        cfg.Budget,
				Strategy:      st,
				SkipMigration: true,
				Partition:     partition.Options{Seed: cfg.Seed},
			})
			if err != nil {
				return nil, fmt.Errorf("fig6 %s/%s: %w", ps.Name, st, err)
			}
			cell := Fig6Cell{Gained: normalized(c.Problem, res.GainedAffinity), OOT: res.OutOfTime}
			cells[st.String()] = cell
		}
		out[ps.Name] = cells
		row(cfg.Out, ps.Name,
			cellString(cells["NO-PARTITION"]),
			cellString(cells["RANDOM-PARTITION"]),
			cellString(cells["KAHIP"]),
			cellString(cells["MULTI-STAGE-PARTITION"]))
	}
	return out, nil
}

func cellString(c Fig6Cell) string {
	if c.OOT {
		return "OOT"
	}
	return fmt.Sprintf("%.4f", c.Gained)
}

// Fig7Point is one master-ratio measurement for one cluster.
type Fig7Point struct {
	Ratio          float64
	Gained         float64 // normalized gained affinity
	MasterAffinity float64 // share of total affinity held by master services
}

// Fig7Series is the sweep for one cluster plus its chosen ratio.
type Fig7Series struct {
	Cluster     string
	Points      []Fig7Point
	ChosenRatio float64 // alpha = 45 ln^0.66(N) / N
	ChosenIdx   int     // index of the sweep point nearest the chosen ratio
}

// Fig7 regenerates Fig. 7: gained affinity and master total affinity as
// the master ratio varies, with the production-formula ratio marked.
// Expected shape: master affinity saturates quickly; gained affinity
// rises to a peak near the chosen ratio, then plateaus (small clusters)
// or falls (large clusters, where the budget runs out).
func Fig7(cfg Config) ([]Fig7Series, error) {
	cfg = cfg.withDefaults()
	ratios := []float64{0.02, 0.05, 0.10, 0.20, 0.35, 0.50, 0.75, 1.0}
	var out []Fig7Series
	header(cfg.Out, "Fig. 7", "Gained affinity and master total affinity vs master ratio")
	for _, ps := range cfg.Presets {
		if err := cfg.Ctx.Err(); err != nil {
			return nil, fmt.Errorf("interrupted: %w", err)
		}
		c, err := getCluster(ps)
		if err != nil {
			return nil, err
		}
		p := c.Problem
		total := p.Affinity.TotalWeight()
		rank := p.Affinity.RankByTotalAffinity()

		series := Fig7Series{Cluster: ps.Name, ChosenRatio: partition.Options{}.Alpha(p.N())}
		fmt.Fprintf(cfg.Out, "-- %s (chosen alpha = %.4f)\n", ps.Name, series.ChosenRatio)
		row(cfg.Out, "ratio", "gained", "master-total-affinity")
		for _, r := range ratios {
			res, err := core.Optimize(cfg.Ctx, p, c.Original, core.Options{
				Budget:        cfg.Budget,
				SkipMigration: true,
				Partition:     partition.Options{MasterRatio: r, Seed: cfg.Seed},
			})
			if err != nil {
				return nil, err
			}
			// Master total affinity: the share of total affinity on
			// edges with both endpoints among the top ceil(r*N) services
			// — the affinity the master subproblem can still gain.
			quota := int(math.Ceil(r * float64(p.N())))
			inMaster := make(map[int]bool, quota)
			for i := 0; i < quota && i < len(rank); i++ {
				inMaster[rank[i]] = true
			}
			var masterAff float64
			for _, e := range p.Affinity.Edges() {
				if inMaster[e.U] && inMaster[e.V] {
					masterAff += e.Weight
				}
			}
			pt := Fig7Point{
				Ratio:          r,
				Gained:         normalized(p, res.GainedAffinity),
				MasterAffinity: masterAff / total,
			}
			series.Points = append(series.Points, pt)
			row(cfg.Out, pt.Ratio, pt.Gained, pt.MasterAffinity)
		}
		best := 0
		for i, pt := range series.Points {
			if math.Abs(pt.Ratio-series.ChosenRatio) < math.Abs(series.Points[best].Ratio-series.ChosenRatio) {
				best = i
			}
		}
		series.ChosenIdx = best
		out = append(out, series)
	}
	return out, nil
}

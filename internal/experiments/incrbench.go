// Incremental re-optimization benchmark (BENCH_pr4.json): the PR-4
// delta-solve layer against the full pipeline on an identical churn
// trace. Both arms start from the same bootstrapped cluster and replay
// the same generated event stream tick by tick; the delta arm lets the
// engine choose scoped re-solves (escalating when drift or the dirty
// ratio demands it) while the baseline arm forces the complete
// partition–select–solve–merge pipeline every tick. The artifact
// records wall clock, container moves, and normalized gained affinity
// per tick plus aggregate ratios.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/cloudsched/rasa/internal/incr"
	"github.com/cloudsched/rasa/internal/partition"
	"github.com/cloudsched/rasa/internal/snapshot"
	"github.com/cloudsched/rasa/internal/workload"
	"github.com/cloudsched/rasa/internal/workload/churn"
)

// IncrBenchResult is the schema of BENCH_pr4.json.
type IncrBenchResult struct {
	Schema string `json:"schema"`
	Seed   int64  `json:"seed"`
	Preset string `json:"preset"`
	// EventsPerTick is the churn batch size between Reoptimize calls;
	// ChurnPercent is the mean fraction of services touched per tick.
	EventsPerTick int     `json:"eventsPerTick"`
	ChurnPercent  float64 `json:"churnPercent"`
	Budget        string  `json:"budget"`

	Ticks []IncrBenchTick `json:"ticks"`

	// Aggregates over the replayed ticks (bootstrap excluded).
	WallDeltaMs float64 `json:"wallDeltaMs"`
	WallFullMs  float64 `json:"wallFullMs"`
	// Speedup = WallFullMs / WallDeltaMs; the PR-4 acceptance floor is 5.
	Speedup float64 `json:"speedup"`
	// Mean normalized gained affinity per arm; AffinityLoss is
	// full - delta (the acceptance ceiling is 0.02).
	MeanNormDelta float64 `json:"meanNormDelta"`
	MeanNormFull  float64 `json:"meanNormFull"`
	AffinityLoss  float64 `json:"affinityLoss"`
	// Total container moves per arm; the delta arm must move strictly
	// fewer.
	MovesDelta int `json:"movesDelta"`
	MovesFull  int `json:"movesFull"`
	// Escalations counts delta-arm ticks that ran the full pipeline.
	Escalations int `json:"escalations"`
}

// IncrBenchTick is one replayed churn tick, measured on both arms.
type IncrBenchTick struct {
	Tick   int    `json:"tick"`
	Events int    `json:"events"`
	Mode   string `json:"mode"`
	// Reason is the escalation reason when Mode is "full".
	Reason  string  `json:"reason,omitempty"`
	Dirty   int     `json:"dirtySubproblems"`
	Total   int     `json:"totalSubproblems"`
	DeltaMs float64 `json:"deltaMs"`
	FullMs  float64 `json:"fullMs"`
	// Moves and normalized gain after the tick, per arm.
	MovesDelta int     `json:"movesDelta"`
	MovesFull  int     `json:"movesFull"`
	NormDelta  float64 `json:"normDelta"`
	NormFull   float64 `json:"normFull"`
}

// IncrBench replays a generated churn trace through the incremental
// engine (delta arm) and through a ForceFull engine (baseline arm) and
// reports per-tick and aggregate comparisons. Both arms run with
// Parallelism 1 so the wall-clock ratio reflects solver work, not
// scheduling luck.
func IncrBench(cfg Config) (*IncrBenchResult, error) {
	cfg = cfg.withDefaults()
	// T1 scale: large enough that a full pipeline pass costs real time,
	// small enough that every subproblem solves to completion inside the
	// budget on one core — the regime the incremental layer targets,
	// where wall-clock differences measure work avoided rather than
	// budget exhaustion.
	ps := workload.TrainingPresets()[0]
	ps.Seed = cfg.Seed + ps.Seed
	c, err := getCluster(ps)
	if err != nil {
		return nil, err
	}
	const (
		ticks   = 10
		perTick = 4
	)
	// Service-level events only: on a benchmark-scale cluster one machine
	// drain touches most subproblems and correctly escalates to the full
	// pipeline — demonstrated by the escalation tests — while this
	// benchmark measures what the scoped delta path saves under the
	// paper's dominant churn (replica scaling and affinity drift).
	tr, err := churn.Generate(c, churn.Config{
		Events: ticks * perTick, PerTick: perTick, Seed: cfg.Seed, ServiceOnly: true,
	})
	if err != nil {
		return nil, err
	}
	batches, err := tr.Ticks()
	if err != nil {
		return nil, err
	}

	// Each arm owns its cluster state (events mutate the Problem), so
	// deep-copy through the snapshot round-trip.
	newArm := func(force bool) (*incr.Engine, error) {
		p, a, err := snapshot.FromCluster(c.Problem, c.Original).ToCluster()
		if err != nil {
			return nil, err
		}
		st, err := incr.NewState(p, a)
		if err != nil {
			return nil, err
		}
		return incr.New(st, incr.Options{
			Budget:    cfg.Budget,
			ForceFull: force,
			// A finer partition than the pipeline default: more, smaller
			// subproblems keep the dirty set a small fraction of the total,
			// which is precisely the regime where scoped re-solves pay off.
			Partition:     partition.Options{Seed: cfg.Seed, TargetSize: 12},
			Parallelism:   1,
			SkipMigration: true,
		}, nil), nil
	}
	deltaArm, err := newArm(false)
	if err != nil {
		return nil, err
	}
	fullArm, err := newArm(true)
	if err != nil {
		return nil, err
	}
	// Bootstrap both arms outside the measured loop: the delta arm's
	// first pass is necessarily full (it has no partition yet), and the
	// baseline deserves the same optimized starting point.
	if _, err := deltaArm.Reoptimize(cfg.Ctx); err != nil {
		return nil, err
	}
	if _, err := fullArm.Reoptimize(cfg.Ctx); err != nil {
		return nil, err
	}

	res := &IncrBenchResult{
		Schema:        "rasa-incr-bench/1",
		Seed:          cfg.Seed,
		Preset:        ps.Name,
		EventsPerTick: perTick,
		ChurnPercent:  100 * float64(perTick) / float64(c.Problem.N()),
		Budget:        cfg.Budget.String(),
	}

	header(cfg.Out, "INCR-BENCH", "delta re-optimization vs full pipeline on one churn trace (BENCH_pr4.json)")
	row(cfg.Out, "tick", "events", "mode", "dirty", "delta ms", "full ms", "moves d", "moves f", "norm d", "norm f")
	var normDeltaSum, normFullSum float64
	for _, tb := range batches {
		if err := cfg.Ctx.Err(); err != nil {
			return nil, err
		}
		events := tb.Events
		if _, err := deltaArm.Apply(events...); err != nil {
			return nil, fmt.Errorf("incrbench: delta arm tick %d: %w", tb.Tick, err)
		}
		if _, err := fullArm.Apply(events...); err != nil {
			return nil, fmt.Errorf("incrbench: full arm tick %d: %w", tb.Tick, err)
		}
		dStart := time.Now()
		dRes, err := deltaArm.Reoptimize(cfg.Ctx)
		if err != nil {
			return nil, err
		}
		dMs := float64(time.Since(dStart).Microseconds()) / 1000
		fStart := time.Now()
		fRes, err := fullArm.Reoptimize(cfg.Ctx)
		if err != nil {
			return nil, err
		}
		fMs := float64(time.Since(fStart).Microseconds()) / 1000

		bt := IncrBenchTick{
			Tick: tb.Tick, Events: len(events),
			Mode: dRes.Mode.String(), Reason: dRes.EscalationReason,
			Dirty: dRes.DirtySubproblems, Total: dRes.TotalSubproblems,
			DeltaMs: dMs, FullMs: fMs,
			MovesDelta: dRes.Moves, MovesFull: fRes.Moves,
			NormDelta: dRes.NormalizedGain, NormFull: fRes.NormalizedGain,
		}
		res.Ticks = append(res.Ticks, bt)
		res.WallDeltaMs += dMs
		res.WallFullMs += fMs
		res.MovesDelta += dRes.Moves
		res.MovesFull += fRes.Moves
		if dRes.Escalated {
			res.Escalations++
		}
		normDeltaSum += dRes.NormalizedGain
		normFullSum += fRes.NormalizedGain
		row(cfg.Out, bt.Tick, bt.Events, bt.Mode, bt.Dirty, bt.DeltaMs, bt.FullMs,
			bt.MovesDelta, bt.MovesFull, bt.NormDelta, bt.NormFull)
	}
	n := float64(len(res.Ticks))
	if n > 0 {
		res.MeanNormDelta = normDeltaSum / n
		res.MeanNormFull = normFullSum / n
	}
	res.AffinityLoss = res.MeanNormFull - res.MeanNormDelta
	if res.WallDeltaMs > 0 {
		res.Speedup = res.WallFullMs / res.WallDeltaMs
	}
	fmt.Fprintf(cfg.Out, "speedup %.1fx (%.0f ms vs %.0f ms); affinity loss %.4f; moves %d vs %d; %d escalations\n",
		res.Speedup, res.WallDeltaMs, res.WallFullMs, res.AffinityLoss,
		res.MovesDelta, res.MovesFull, res.Escalations)
	return res, nil
}

// WriteIncrBenchJSON writes the BENCH_pr4.json artifact.
func WriteIncrBenchJSON(w io.Writer, r *IncrBenchResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/cloudsched/rasa/internal/workload"
)

// quickConfig is a fast configuration for CI: tiny clusters and tight
// budgets. It still exercises every experiment end to end.
func quickConfig(out *bytes.Buffer) Config {
	return Config{
		Budget:      400 * time.Millisecond,
		LabelBudget: 60 * time.Millisecond,
		Seed:        1,
		Out:         out,
		Presets: []workload.Preset{
			{Name: "Q1", Services: 60, Containers: 300, Machines: 14, Beta: 1.6, AffinityFraction: 0.6, Zones: 1, Utilization: 0.55, Seed: 301},
			{Name: "Q2", Services: 90, Containers: 500, Machines: 22, Beta: 1.5, AffinityFraction: 0.55, Zones: 2, Utilization: 0.55, Seed: 302},
		},
	}
}

func TestTable2(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Table2(quickConfig(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Services == 0 || r.Containers == 0 || r.Machines == 0 || r.Edges == 0 {
			t.Fatalf("empty row: %+v", r)
		}
	}
	if !strings.Contains(buf.String(), "Table II") {
		t.Fatal("missing banner")
	}
}

func TestFig5(t *testing.T) {
	var buf bytes.Buffer
	res, err := Fig5(quickConfig(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if !res.PowerLawWins {
		t.Fatalf("power law should fit better: PL R2=%v EXP R2=%v", res.PowerLaw.R2, res.Exponential.R2)
	}
	if res.PowerLaw.Param <= 1 {
		t.Fatalf("beta = %v, want > 1", res.PowerLaw.Param)
	}
}

func TestFig6Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := Fig6(quickConfig(&buf))
	if err != nil {
		t.Fatal(err)
	}
	for name, cells := range res {
		ms := cells["MULTI-STAGE-PARTITION"]
		rd := cells["RANDOM-PARTITION"]
		if ms.OOT {
			t.Fatalf("%s: multistage OOT", name)
		}
		if !rd.OOT && ms.Gained < rd.Gained*0.9 {
			t.Fatalf("%s: multistage %.4f well below random %.4f", name, ms.Gained, rd.Gained)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	var buf bytes.Buffer
	series, err := Fig7(quickConfig(&buf))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		if len(s.Points) == 0 {
			t.Fatalf("%s: empty sweep", s.Cluster)
		}
		// Master affinity must be monotone non-decreasing in the ratio.
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].MasterAffinity < s.Points[i-1].MasterAffinity-1e-9 {
				t.Fatalf("%s: master affinity not monotone", s.Cluster)
			}
		}
		last := s.Points[len(s.Points)-1]
		if last.MasterAffinity < 0.99 {
			t.Fatalf("%s: master affinity at ratio 1.0 = %v", s.Cluster, last.MasterAffinity)
		}
	}
}

func TestFig8AndFig9AndFig10(t *testing.T) {
	// These share the trained selector (sync.Once), so run in sequence
	// within one test to keep the cache warm and the test budget bounded.
	var buf bytes.Buffer
	cfg := quickConfig(&buf)

	f8, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, cells := range f8 {
		if len(cells) != 5 {
			t.Fatalf("%s: %d policies", name, len(cells))
		}
		gcn := cells["GCN-BASED"]
		best := 0.0
		for _, v := range cells {
			if v > best {
				best = v
			}
		}
		if gcn < 0.75*best {
			t.Fatalf("%s: GCN %.4f far below best policy %.4f", name, gcn, best)
		}
	}

	f9, err := Fig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, cells := range f9.Cells {
		if cells["RASA"] <= cells["ORIGINAL"] {
			t.Fatalf("%s: RASA %.4f <= ORIGINAL %.4f", name, cells["RASA"], cells["ORIGINAL"])
		}
	}
	if f9.RASAvsOriginal < 1.5 {
		t.Fatalf("RASA vs ORIGINAL = %.2fx, want clear multiple", f9.RASAvsOriginal)
	}

	var csvBuf bytes.Buffer
	if err := WriteFig8CSV(&csvBuf, f8); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csvBuf.String(), "GCN-BASED") {
		t.Fatal("fig8 csv missing policy column")
	}
	csvBuf.Reset()
	if err := WriteFig9CSV(&csvBuf, f9); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csvBuf.String(), "RASA") {
		t.Fatal("fig9 csv missing algorithm column")
	}

	f10, err := Fig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(f10) != 2*len(cfg.Presets) {
		t.Fatalf("series = %d", len(f10))
	}
	csvBuf.Reset()
	if err := WriteFig10CSV(&csvBuf, f10); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csvBuf.String(), "\n"); lines != len(f10)*5+1 {
		t.Fatalf("fig10 csv lines = %d", lines)
	}
	// RASA should beat POP at the largest budget on every cluster.
	for i := 0; i < len(f10); i += 2 {
		r := f10[i].Points[len(f10[i].Points)-1]
		p := f10[i+1].Points[len(f10[i+1].Points)-1]
		if r.Gained < p.Gained {
			t.Fatalf("%s: RASA %.4f below POP %.4f at max budget", f10[i].Cluster, r.Gained, p.Gained)
		}
	}
}

func TestProduction(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickConfig(&buf)
	res, err := Production(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WeightedLatencyImprovement <= 0 {
		t.Fatalf("weighted latency improvement = %v", res.WeightedLatencyImprovement)
	}
	if res.WeightedErrorImprovement <= 0 {
		t.Fatalf("weighted error improvement = %v", res.WeightedErrorImprovement)
	}
	if len(res.PairLatencyImprovement) != 4 {
		t.Fatalf("tracked pairs = %d", len(res.PairLatencyImprovement))
	}
	var csvBuf bytes.Buffer
	if err := WriteProductionCSV(&csvBuf, res); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"WITHOUT_RASA", "WITH_RASA", "ONLY_COLLOCATED"} {
		if !strings.Contains(csvBuf.String(), want) {
			t.Fatalf("production csv missing scenario %s", want)
		}
	}
}

func TestSupplementaryAndAblations(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickConfig(&buf)
	rows, err := Supplementary(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Overhead < 0 || r.Overhead > 1 {
			t.Fatalf("overhead = %v", r.Overhead)
		}
		if r.LostAffinity < 0 || r.LostAffinity > 1 {
			t.Fatalf("lost affinity = %v", r.LostAffinity)
		}
	}

	if _, err := AblationMachineGrouping(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := AblationAnytime(cfg); err != nil {
		t.Fatal(err)
	}
	sc, err := AblationSampleCount(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sc.On < 0 || sc.On > 1 || sc.Off < 0 || sc.Off > 1 {
		t.Fatalf("sample-count ablation out of range: %v vs %v", sc.On, sc.Off)
	}
	if _, err := AblationBranching(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSmallPresets(t *testing.T) {
	sp := SmallPresets()
	if len(sp) != 4 {
		t.Fatalf("small presets = %d", len(sp))
	}
	for _, ps := range sp {
		if ps.Containers < ps.Services {
			t.Fatalf("invalid small preset %+v", ps)
		}
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv("RASA_BENCH_BUDGET", "250ms")
	t.Setenv("RASA_BENCH_SMALL", "1")
	cfg := FromEnv()
	if cfg.Budget != 250*time.Millisecond {
		t.Fatalf("budget = %v", cfg.Budget)
	}
	if len(cfg.Presets) != 4 {
		t.Fatalf("presets = %d", len(cfg.Presets))
	}
}

func TestLemma1TailDecays(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickConfig(&buf)
	pts, err := Lemma1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// At these (pre-asymptotic) sizes the tail share converges to a few
	// percent rather than visibly decaying; the operative claim of
	// Lemma 1 — that the ignored tail carries a negligible share of the
	// total affinity under the production alpha — must hold at every N.
	for _, pt := range pts {
		if pt.TailShare > 0.10 {
			t.Fatalf("N=%d: tail share %v exceeds 10%%", pt.N, pt.TailShare)
		}
	}
	for _, pt := range pts {
		if pt.TailShare < 0 || pt.TailShare > 1 {
			t.Fatalf("tail share out of range: %+v", pt)
		}
	}
}

func TestCSVWriters(t *testing.T) {
	var out bytes.Buffer
	cfg := quickConfig(&out)

	f5, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFig5CSV(&buf, f5); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(f5.Top)+1 {
		t.Fatalf("fig5 csv lines = %d, want %d", lines, len(f5.Top)+1)
	}

	l1, err := Lemma1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteLemma1CSV(&buf, l1); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "n,alpha,masters,tail_share") {
		t.Fatalf("lemma1 csv header: %q", buf.String()[:40])
	}

	// Fig6/7 reuse cached clusters, so they are cheap here.
	f6, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteFig6CSV(&buf, f6); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "MULTI-STAGE-PARTITION") {
		t.Fatal("fig6 csv missing strategy column")
	}

	f7, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteFig7CSV(&buf, f7); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines < 2 {
		t.Fatal("fig7 csv empty")
	}
}

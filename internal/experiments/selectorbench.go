// Selector benchmark (BENCH_pr10.json): the online-learned GCN-first
// policy against the always-race and heuristic arms, end to end through
// the HTTP serving path. Every arm drives the identical job stream
// through its own server instance (POST /v1/jobs with a structured
// options object, long-poll to completion); the gcn arm starts with an
// empty trainer, races everything during the warmup jobs, and serves
// the measured jobs with whatever model those races taught it. The
// artifact records per-arm affinity quality, wall/solver seconds over
// the measured window, the gcn arm's race fraction and decision-source
// mix, and per-arm predictor accuracy against a sequentially-labelled
// holdout the serving path never saw.
package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/gnn"
	"github.com/cloudsched/rasa/internal/learn"
	"github.com/cloudsched/rasa/internal/partition"
	"github.com/cloudsched/rasa/internal/pool"
	"github.com/cloudsched/rasa/internal/selector"
	"github.com/cloudsched/rasa/internal/server"
	"github.com/cloudsched/rasa/internal/snapshot"
	"github.com/cloudsched/rasa/internal/workload"
)

// SelectorBenchResult is the schema of BENCH_pr10.json.
type SelectorBenchResult struct {
	Schema string `json:"schema"`
	Seed   int64  `json:"seed"`
	Budget string `json:"budget"`

	// WarmupJobs are submitted first and untimed (the gcn arm learns on
	// them); MeasuredJobs is the per-arm measurement window. Every arm
	// sees the identical job stream.
	WarmupJobs   int `json:"warmupJobs"`
	MeasuredJobs int `json:"measuredJobs"`
	// HoldoutExamples is the decisively-labelled (non-tie) holdout size
	// behind the predictor-accuracy columns; HoldoutTies were raced but
	// excluded as oracle-ambiguous.
	HoldoutExamples int `json:"holdoutExamples"`
	HoldoutTies     int `json:"holdoutTies"`

	Arms []SelectorBenchArm `json:"arms"`

	// GCNRaceFraction is the gcn arm's raced share of measured
	// subproblems (acceptance ceiling 0.5); SpeedupVsRace its measured-
	// window wall-clock speedup over the always-race arm (floor 1.0);
	// QualityDeltaPercent the relative gap between the gcn and race
	// arms' mean normalized gains (positive = gcn ahead).
	GCNRaceFraction     float64 `json:"gcnRaceFraction"`
	SpeedupVsRace       float64 `json:"speedupVsRace"`
	QualityDeltaPercent float64 `json:"qualityDeltaPercent"`

	// Final online-trainer state of the gcn arm (GET /v1/policy).
	FinalModelVersion    int     `json:"finalModelVersion"`
	FinalHoldoutAccuracy float64 `json:"finalHoldoutAccuracy"`
	Retrains             int64   `json:"retrains"`
	Rollbacks            int64   `json:"rollbacks"`
}

// SelectorBenchArm is one policy kind driven through the job stream.
type SelectorBenchArm struct {
	// Name is the options.policy.kind the arm submits with.
	Name string `json:"name"`

	// Measured-window aggregates.
	Jobs        int `json:"jobs"`
	Subproblems int `json:"subproblems"`
	Raced       int `json:"raced"`
	// RaceFraction is Raced/Subproblems over the measured window.
	RaceFraction float64 `json:"raceFraction"`
	// WallSeconds is client-observed submit-to-completion time over the
	// measured window; SolverSeconds sums the winning solvers' in-solver
	// wall across its subproblems.
	WallSeconds   float64 `json:"wallSeconds"`
	SolverSeconds float64 `json:"solverSeconds"`
	// MeanNormalizedGain averages gainedAffinity/totalAffinity over the
	// measured jobs.
	MeanNormalizedGain float64 `json:"meanNormalizedGain"`
	// PredictorAccuracy scores the arm's selection rule against the
	// sequentially-labelled holdout: the final online model for gcn, the
	// containers-vs-machines rule for heuristic, and 1.0 by construction
	// for the race arm (it always runs both arms and keeps the winner).
	PredictorAccuracy float64 `json:"predictorAccuracy"`
	// DecisionSources counts the policy decision sources over the
	// measured window (e.g. gcn, gcn-lowconf, heuristic, race).
	DecisionSources map[string]int `json:"decisionSources"`
}

// selectorBenchShape scales one synthetic job shape.
type selectorBenchShape struct {
	services, containers, machines int
}

// selectorBenchJob is one pre-serialized POST /v1/jobs body.
type selectorBenchJob struct {
	body  []byte
	total float64 // total affinity weight, for normalization
}

func selectorBenchShapes(small bool) []selectorBenchShape {
	if small {
		return []selectorBenchShape{
			{40, 220, 12},
			{48, 260, 14},
		}
	}
	return []selectorBenchShape{
		{64, 360, 18},
		{80, 420, 20},
		{96, 520, 24},
	}
}

// selectorMinConfidence is the gcn arm's request-level race threshold
// (options.policy.minConfidence) over the measured window. The
// CG-vs-MIP labels carry genuine noise near the decision boundary, so
// the bench races below a softer bar than the 0.8 server default —
// predictions the online model is actually sure about are served
// directly, and the solve layer's MIP anytime floor bounds the cost of
// trusting a borderline prediction.
const selectorMinConfidence = 0.55

// selectorExploreConfidence is the warmup jobs' threshold: close
// enough to 1 that the gcn arm keeps racing (and labelling) even after
// its first model installs, instead of letting an undertrained
// classifier's confidence shut off its own training stream.
const selectorExploreConfidence = 0.97

func selectorBenchPreset(sh selectorBenchShape, idx int, seed int64) workload.Preset {
	return workload.Preset{
		Name:     fmt.Sprintf("SEL-%d", idx),
		Services: sh.services, Containers: sh.containers, Machines: sh.machines,
		Beta: 1.6, AffinityFraction: 0.6, Zones: 1, Utilization: 0.55,
		Seed: seed,
	}
}

// buildSelectorJobs generates jobsPerShape clusters per shape (distinct
// seeds) and serializes each as a structured-options job submission for
// the given policy kind.
func buildSelectorJobs(cfg Config, shapes []selectorBenchShape, jobsPerShape int, seedBase int64, kind string, minConfidence float64) ([]selectorBenchJob, error) {
	var jobs []selectorBenchJob
	for r := 0; r < jobsPerShape; r++ {
		for si, sh := range shapes {
			seed := seedBase + int64(si*97+r*1009)
			c, err := getCluster(selectorBenchPreset(sh, si, seed))
			if err != nil {
				return nil, err
			}
			policy := map[string]any{"kind": kind}
			if kind == "gcn" {
				policy["minConfidence"] = minConfidence
			}
			req := map[string]any{
				"snapshot": snapshot.FromCluster(c.Problem, c.Original),
				"options": map[string]any{
					"policy":        policy,
					"skipMigration": true,
					"seed":          seed,
					"budget":        cfg.Budget.String(),
				},
			}
			body, err := json.Marshal(req)
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, selectorBenchJob{body: body, total: c.Problem.Affinity.TotalWeight()})
		}
	}
	return jobs, nil
}

// buildSelectorHoldout labels held-out clusters with the *sequential*
// oracle: CG alone, then MIP alone, each with the full label budget and
// no sibling contending for the core. That is the question every
// single-pick policy actually answers in the serving path ("which arm
// is better when it runs by itself?") — a concurrent race on one core
// starves CG and would grade predictors against a contention artifact
// instead. Within-RaceMargin finishes are oracle-ambiguous and counted
// as ties, not scored.
func buildSelectorHoldout(cfg Config, shapes []selectorBenchShape) (labeled []selector.Labeled, ties int, err error) {
	for si, sh := range shapes {
		for r := 0; r < 3; r++ {
			seed := cfg.Seed + int64(si*131+r*17) + 777
			c, err := getCluster(selectorBenchPreset(sh, si, seed))
			if err != nil {
				return nil, 0, err
			}
			// Default partition options: the holdout must mirror the
			// subproblem distribution the serving path produces.
			pres, err := partition.Multistage(cfg.Ctx, c.Problem, c.Original, partition.Options{Seed: seed})
			if err != nil {
				return nil, 0, err
			}
			// Each arm gets the slice of the job budget a subproblem of
			// this partition would see in the serving path — a more
			// generous per-arm budget would grade predictors against a
			// time regime the server never runs them in.
			perArm := cfg.Budget / time.Duration(len(pres.Subproblems))
			for _, sp := range pres.Subproblems {
				l, err := sequentialLabel(cfg, sp, perArm)
				if err != nil {
					return nil, 0, err
				}
				if l.Tie {
					ties++
					continue
				}
				labeled = append(labeled, l)
			}
		}
	}
	return labeled, ties, nil
}

// sequentialLabel runs each arm alone under the per-arm budget and
// picks the better objective; MIP must clear CG by RaceMargin (ties go
// to CG), mirroring the race verdict rule without the CPU contention.
func sequentialLabel(cfg Config, sp *cluster.Subproblem, perArm time.Duration) (selector.Labeled, error) {
	cg, err := pool.SolveCG(cfg.Ctx, sp, time.Now().Add(perArm))
	if err != nil {
		return selector.Labeled{}, err
	}
	mip, err := pool.SolveMIP(cfg.Ctx, sp, time.Now().Add(perArm))
	if err != nil {
		return selector.Labeled{}, err
	}
	l := selector.Labeled{Sub: sp, Winner: pool.CG, CGObj: cg.Objective, MIPObj: mip.Objective}
	if cg.Objective != 0 {
		l.Margin = (mip.Objective - cg.Objective) / cg.Objective
	}
	switch {
	case !mip.OutOfTime && mip.Objective > cg.Objective*(1+pool.RaceMargin)+1e-9:
		l.Winner = pool.MIP
	case mip.Objective >= cg.Objective*(1-pool.RaceMargin)-1e-9:
		l.Tie = true
	}
	return l, nil
}

// selectorClient wraps one arm's in-process server.
type selectorClient struct {
	ts *httptest.Server
}

func (c *selectorClient) submitWait(wait time.Duration, body []byte) (*server.JobResult, error) {
	resp, err := http.Post(c.ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	var acc struct {
		ID string `json:"id"`
		Er *struct {
			Code, Message string
		} `json:"error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&acc)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return nil, fmt.Errorf("submit: status %d (%+v)", resp.StatusCode, acc.Er)
	}
	deadline := time.Now().Add(wait)
	for {
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s?wait=%s", c.ts.URL, acc.ID, 10*time.Second))
		if err != nil {
			return nil, err
		}
		var view struct {
			Status string            `json:"status"`
			Error  string            `json:"error"`
			Result *server.JobResult `json:"result"`
		}
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		switch view.Status {
		case "completed":
			return view.Result, nil
		case "failed":
			return nil, fmt.Errorf("job %s failed: %s", acc.ID, view.Error)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("job %s still %s after %s", acc.ID, view.Status, wait)
		}
	}
}

// policyState mirrors the GET /v1/policy body.
type policyState struct {
	Trainer learn.Stats `json:"trainer"`
	Model   *gnn.GCN    `json:"model"`
}

func (c *selectorClient) policy() (*policyState, error) {
	resp, err := http.Get(c.ts.URL + "/v1/policy")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st policyState
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// runSelectorArm drives the full job stream through one fresh server.
// Warmup jobs run untimed; the measured tail is aggregated.
func runSelectorArm(cfg Config, kind string, warmup, measured []selectorBenchJob) (*SelectorBenchArm, *policyState, error) {
	srv := server.New(server.Config{
		Workers:       1,
		DefaultBudget: cfg.Budget,
		MaxBudget:     10 * cfg.Budget,
		Policy:        "heuristic",
		MinConfidence: 0.8,
		// Retrain eagerly: the warmup window is tens of races, not the
		// default server's hundreds.
		Learner: learn.Options{RetrainEvery: 16, MinExamples: 12, Epochs: 800, Seed: cfg.Seed},
	})
	client := &selectorClient{ts: httptest.NewServer(srv)}
	defer client.ts.Close()
	maxWait := 20 * cfg.Budget
	if maxWait < time.Minute {
		maxWait = time.Minute
	}

	for _, j := range warmup {
		if err := cfg.Ctx.Err(); err != nil {
			return nil, nil, err
		}
		if _, err := client.submitWait(maxWait, j.body); err != nil {
			return nil, nil, fmt.Errorf("selectorbench: %s warmup: %w", kind, err)
		}
	}

	arm := &SelectorBenchArm{Name: kind, DecisionSources: map[string]int{}}
	start := time.Now()
	for _, j := range measured {
		if err := cfg.Ctx.Err(); err != nil {
			return nil, nil, err
		}
		res, err := client.submitWait(maxWait, j.body)
		if err != nil {
			return nil, nil, fmt.Errorf("selectorbench: %s: %w", kind, err)
		}
		arm.Jobs++
		if j.total > 0 {
			arm.MeanNormalizedGain += res.GainedAffinity / j.total
		}
		for _, sr := range res.SubResults {
			arm.Subproblems++
			if sr.Raced {
				arm.Raced++
			}
			arm.SolverSeconds += sr.Stats.Wall.Seconds()
			if sr.Source != "" {
				arm.DecisionSources[sr.Source]++
			}
		}
	}
	arm.WallSeconds = time.Since(start).Seconds()
	if arm.Jobs > 0 {
		arm.MeanNormalizedGain /= float64(arm.Jobs)
	}
	if arm.Subproblems > 0 {
		arm.RaceFraction = float64(arm.Raced) / float64(arm.Subproblems)
	}
	st, err := client.policy()
	if err != nil {
		return nil, nil, err
	}
	return arm, st, nil
}

// SelectorBench runs the identical job stream through always-race,
// heuristic, and online-gcn servers and scores each arm's selection
// rule against a sequentially-labelled holdout. The gcn arm must match the
// always-race arm's affinity quality while racing under half of its
// measured subproblems — the cost of the Section IV-D oracle collapses
// onto the shrinking low-confidence region.
func SelectorBench(cfg Config) (*SelectorBenchResult, error) {
	cfg = cfg.withDefaults()
	// Floor the job budget: with a starved budget the in-job races
	// time-slice MIP into mislabelling its own wins, and the trainer
	// learns a contention artifact instead of the solver tradeoff
	// (shardbench floors its per-pass budget for the same reason).
	if cfg.Budget < 3*time.Second {
		cfg.Budget = 3 * time.Second
	}
	small := os.Getenv("RASA_BENCH_SMALL") == "1"
	shapes := selectorBenchShapes(small)
	warmupPerShape, measuredPerShape := 4, 3
	if small {
		warmupPerShape, measuredPerShape = 3, 2
	}

	res := &SelectorBenchResult{
		Schema: "rasa-selector-bench/1",
		Seed:   cfg.Seed,
		Budget: cfg.Budget.String(),
	}

	holdout, ties, err := buildSelectorHoldout(cfg, shapes)
	if err != nil {
		return nil, err
	}
	res.HoldoutExamples = len(holdout)
	res.HoldoutTies = ties

	header(cfg.Out, "SELECTOR-BENCH", "online-GCN vs always-race vs heuristic through the serving path (BENCH_pr10.json)")
	row(cfg.Out, "arm", "jobs", "subs", "raced", "frac", "wall s", "solver s", "gain", "pred acc")

	var gcnState *policyState
	for _, kind := range []string{"race", "heuristic", "gcn"} {
		var warmup []selectorBenchJob
		if kind == "gcn" {
			// Only the learning arm needs the warmup stream: the fixed
			// arms carry no state, and the measured window is timed
			// separately anyway. Warmup jobs race at the exploration
			// threshold so the trainer keeps collecting labels past its
			// first model install.
			if warmup, err = buildSelectorJobs(cfg, shapes, warmupPerShape, cfg.Seed, kind, selectorExploreConfidence); err != nil {
				return nil, err
			}
			res.WarmupJobs = len(warmup)
		}
		measured, err := buildSelectorJobs(cfg, shapes, measuredPerShape, cfg.Seed+50_000, kind, selectorMinConfidence)
		if err != nil {
			return nil, err
		}
		res.MeasuredJobs = len(measured)
		arm, st, err := runSelectorArm(cfg, kind, warmup, measured)
		if err != nil {
			return nil, err
		}
		switch kind {
		case "race":
			// The race arm runs the labelling oracle on every subproblem;
			// its "prediction" is the oracle by construction.
			arm.PredictorAccuracy = 1
		case "heuristic":
			arm.PredictorAccuracy = heuristicAccuracy(holdout)
		case "gcn":
			gcnState = st
			if st.Model != nil {
				arm.PredictorAccuracy = st.Model.Accuracy(selector.ToSamples(holdout))
			}
		}
		res.Arms = append(res.Arms, *arm)
		row(cfg.Out, arm.Name, arm.Jobs, arm.Subproblems, arm.Raced, arm.RaceFraction,
			arm.WallSeconds, arm.SolverSeconds, arm.MeanNormalizedGain, arm.PredictorAccuracy)
	}

	race, gcn := res.Arms[0], res.Arms[2]
	res.GCNRaceFraction = gcn.RaceFraction
	if gcn.WallSeconds > 0 {
		res.SpeedupVsRace = race.WallSeconds / gcn.WallSeconds
	}
	if race.MeanNormalizedGain > 0 {
		res.QualityDeltaPercent = 100 * (gcn.MeanNormalizedGain - race.MeanNormalizedGain) / race.MeanNormalizedGain
	}
	if gcnState != nil {
		res.FinalModelVersion = gcnState.Trainer.Version
		res.FinalHoldoutAccuracy = gcnState.Trainer.HoldoutAccuracy
		res.Retrains = gcnState.Trainer.Retrains
		res.Rollbacks = gcnState.Trainer.Rollbacks
	}
	if res.FinalModelVersion == 0 {
		return nil, fmt.Errorf("selectorbench: gcn arm never trained a model (observed %d races)", gcnState.Trainer.Observed)
	}
	fmt.Fprintf(cfg.Out, "gcn race fraction %.3f; speedup vs always-race %.2fx; quality delta %+.3f%%; model v%d (holdout acc %.2f, %d retrains, %d rollbacks)\n",
		res.GCNRaceFraction, res.SpeedupVsRace, res.QualityDeltaPercent,
		res.FinalModelVersion, res.FinalHoldoutAccuracy, res.Retrains, res.Rollbacks)
	return res, nil
}

// heuristicAccuracy scores the containers-vs-machines rule against the
// holdout labels.
func heuristicAccuracy(holdout []selector.Labeled) float64 {
	if len(holdout) == 0 {
		return 0
	}
	hit := 0
	for _, l := range holdout {
		if (selector.Heuristic{}).Select(l.Sub) == l.Winner {
			hit++
		}
	}
	return float64(hit) / float64(len(holdout))
}

// WriteSelectorBenchJSON writes the BENCH_pr10.json artifact.
func WriteSelectorBenchJSON(w io.Writer, r *SelectorBenchResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

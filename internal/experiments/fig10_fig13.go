package experiments

import (
	"fmt"
	"time"

	"github.com/cloudsched/rasa/internal/core"
	"github.com/cloudsched/rasa/internal/partition"
	"github.com/cloudsched/rasa/internal/prodsim"
	"github.com/cloudsched/rasa/internal/sched"
	"github.com/cloudsched/rasa/internal/workload"
)

// Fig10Point is one (runtime, quality) measurement.
type Fig10Point struct {
	Budget  time.Duration
	Runtime time.Duration // actual wall time used
	Gained  float64       // normalized
}

// Fig10Series is the quality-over-runtime curve for one algorithm on
// one cluster.
type Fig10Series struct {
	Cluster   string
	Algorithm string // "RASA" or "POP"
	Points    []Fig10Point
}

// Fig10 regenerates Fig. 10: optimization quality as a function of
// runtime for RASA and POP (the two anytime algorithms). Expected
// shape: RASA dominates POP at every budget and plateaus early.
func Fig10(cfg Config) ([]Fig10Series, error) {
	cfg = cfg.withDefaults()
	gcn, _, _, err := trainedSelectors(cfg)
	if err != nil {
		return nil, err
	}
	fractions := []float64{0.25, 0.5, 1, 2, 4}
	var out []Fig10Series
	header(cfg.Out, "Fig. 10", "Optimization quality vs runtime (RASA and POP)")
	row(cfg.Out, "Cluster", "Algorithm", "budget", "runtime", "gained")
	for _, ps := range cfg.Presets {
		if err := cfg.Ctx.Err(); err != nil {
			return nil, fmt.Errorf("interrupted: %w", err)
		}
		c, err := getCluster(ps)
		if err != nil {
			return nil, err
		}
		rasaSeries := Fig10Series{Cluster: ps.Name, Algorithm: "RASA"}
		popSeries := Fig10Series{Cluster: ps.Name, Algorithm: "POP"}
		for _, f := range fractions {
			budget := time.Duration(float64(cfg.Budget) * f)

			start := time.Now()
			res, err := core.Optimize(cfg.Ctx, c.Problem, c.Original, core.Options{
				Budget:        budget,
				Policy:        gcn,
				SkipMigration: true,
				Partition:     partition.Options{Seed: cfg.Seed},
			})
			if err != nil {
				return nil, err
			}
			rp := Fig10Point{Budget: budget, Runtime: time.Since(start), Gained: normalized(c.Problem, res.GainedAffinity)}
			rasaSeries.Points = append(rasaSeries.Points, rp)
			row(cfg.Out, ps.Name, "RASA", budget.String(), rp.Runtime.Round(time.Millisecond).String(), rp.Gained)

			start = time.Now()
			popA, err := sched.POP(cfg.Ctx, c.Problem, c.Original, sched.Options{Deadline: budget, Seed: cfg.Seed})
			if err != nil {
				return nil, err
			}
			pp := Fig10Point{Budget: budget, Runtime: time.Since(start), Gained: normalized(c.Problem, popA.GainedAffinity(c.Problem))}
			popSeries.Points = append(popSeries.Points, pp)
			row(cfg.Out, ps.Name, "POP", budget.String(), pp.Runtime.Round(time.Millisecond).String(), pp.Gained)
		}
		out = append(out, rasaSeries, popSeries)
	}
	return out, nil
}

// ProductionResult aggregates the Section V-F artifacts.
type ProductionResult struct {
	Comparison *prodsim.Comparison
	// Per tracked pair: relative latency/error improvement of WITH RASA
	// over WITHOUT RASA (Figs. 11 and 12).
	PairLatencyImprovement []float64
	PairErrorImprovement   []float64
	// Weighted improvements (Fig. 13; paper: 23.75% and 24.09%).
	WeightedLatencyImprovement float64
	WeightedErrorImprovement   float64
	// Gap of WITH RASA to the ONLY COLLOCATED bound, normalized by the
	// WITHOUT RASA baseline span (paper: < 10% absolute on normalized
	// metrics).
	LatencyGapToCollocated float64
	ErrorGapToCollocated   float64
}

// productionPreset is the cluster used for the production simulation:
// the CronJob runs a full optimization per tick, so the simulated
// cluster is mid-sized.
func productionPreset(seed int64) workload.Preset {
	return workload.Preset{
		Name: "PROD", Services: 120, Containers: 700, Machines: 30,
		Beta: 1.6, AffinityFraction: 0.6, Zones: 1, Utilization: 0.55, Seed: seed,
	}
}

// Production regenerates Figs. 11, 12 and 13: normalized end-to-end
// latency and request error rate for the four critical service pairs and
// the QPS-weighted cluster aggregate, under WITHOUT RASA / WITH RASA /
// ONLY COLLOCATED. Expected shape: WITH RASA between the other two, and
// within ~10% (normalized) of ONLY COLLOCATED.
func Production(cfg Config) (*ProductionResult, error) {
	cfg = cfg.withDefaults()
	cmp, err := prodsim.RunAll(cfg.Ctx, prodsim.Config{
		Workload:      productionPreset(cfg.Seed + 500),
		Ticks:         24,
		OptimizeEvery: 2,
		Budget:        cfg.Budget / 2,
		ChurnServices: 3,
		TrackedPairs:  4,
		Partition:     partition.Options{Seed: cfg.Seed},
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	res := &ProductionResult{Comparison: cmp}

	header(cfg.Out, "Fig. 11/12", "Normalized latency and error rate for 4 critical service pairs")
	row(cfg.Out, "pair", "lat WITHOUT", "lat WITH", "lat COLLOCATED", "err WITHOUT", "err WITH", "err COLLOCATED", "lat improv%", "err improv%")
	for i := range cmp.Without.TrackedPairs {
		wo := cmp.Without.MeanPair(i)
		wi := cmp.With.MeanPair(i)
		co := cmp.Collocated.MeanPair(i)
		// Normalize each metric so the maximum across scenarios is 1.0,
		// as the paper does.
		latMax := maxF(wo.Latency, wi.Latency, co.Latency)
		errMax := maxF(wo.ErrorRate, wi.ErrorRate, co.ErrorRate)
		latImp := improvement(wo.Latency, wi.Latency)
		errImp := improvement(wo.ErrorRate, wi.ErrorRate)
		res.PairLatencyImprovement = append(res.PairLatencyImprovement, latImp)
		res.PairErrorImprovement = append(res.PairErrorImprovement, errImp)
		row(cfg.Out, fmt.Sprintf("(%d,%d)", cmp.Without.TrackedPairs[i][0], cmp.Without.TrackedPairs[i][1]),
			wo.Latency/latMax, wi.Latency/latMax, co.Latency/latMax,
			wo.ErrorRate/errMax, wi.ErrorRate/errMax, co.ErrorRate/errMax,
			100*latImp, 100*errImp)
	}

	wo := cmp.Without.MeanWeighted()
	wi := cmp.With.MeanWeighted()
	co := cmp.Collocated.MeanWeighted()
	res.WeightedLatencyImprovement = improvement(wo.Latency, wi.Latency)
	res.WeightedErrorImprovement = improvement(wo.ErrorRate, wi.ErrorRate)
	res.LatencyGapToCollocated = (wi.Latency - co.Latency) / maxF(wo.Latency, 1e-12)
	res.ErrorGapToCollocated = (wi.ErrorRate - co.ErrorRate) / maxF(wo.ErrorRate, 1e-12)

	header(cfg.Out, "Fig. 13", "Weighted end-to-end latency and error rate")
	row(cfg.Out, "scenario", "latency(norm)", "error(norm)")
	latMax := maxF(wo.Latency, wi.Latency, co.Latency)
	errMax := maxF(wo.ErrorRate, wi.ErrorRate, co.ErrorRate)
	row(cfg.Out, "WITHOUT RASA", wo.Latency/latMax, wo.ErrorRate/errMax)
	row(cfg.Out, "WITH RASA", wi.Latency/latMax, wi.ErrorRate/errMax)
	row(cfg.Out, "ONLY COLLOCATED", co.Latency/latMax, co.ErrorRate/errMax)
	fmt.Fprintf(cfg.Out, "weighted latency improvement: %.2f%% (paper: 23.75%%)\n", 100*res.WeightedLatencyImprovement)
	fmt.Fprintf(cfg.Out, "weighted error improvement:   %.2f%% (paper: 24.09%%)\n", 100*res.WeightedErrorImprovement)
	fmt.Fprintf(cfg.Out, "gap to ONLY COLLOCATED: latency %.2f%%, error %.2f%% (paper: <10%%)\n",
		100*res.LatencyGapToCollocated, 100*res.ErrorGapToCollocated)
	return res, nil
}

func improvement(before, after float64) float64 {
	if before <= 0 {
		return 0
	}
	return (before - after) / before
}

func maxF(vals ...float64) float64 {
	m := vals[0]
	for _, v := range vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

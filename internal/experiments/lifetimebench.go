// Lifetime benchmark (BENCH_pr6.json): the event-sourced substrate end
// to end. One recorded lifetime — churn, delta proposals, faulty
// execution, a machine death — is captured twice and replayed once,
// proving the record → trace → replay loop is deterministic and
// lossless (identical fingerprints at every corner). The artifact then
// embeds the PR-4 incremental benchmark and the PR-5 executor
// benchmark unchanged, so one file shows the refactor kept both the
// delta-solve speedup and the executor's SLA-floor invariants intact.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/cloudsched/rasa/internal/lifetime"
	"github.com/cloudsched/rasa/internal/lifetime/record"
	"github.com/cloudsched/rasa/internal/workload"
)

// LifetimeBenchResult is the schema of BENCH_pr6.json.
type LifetimeBenchResult struct {
	Schema string `json:"schema"`
	Seed   int64  `json:"seed"`

	Lifetime LifetimeBenchRun `json:"lifetime"`

	// The PR-4 and PR-5 benchmarks, re-run on the event-sourced
	// substrate: their headline numbers (speedup, movesDelta vs
	// movesFull, slaFloorViolations, completionRate) must match the
	// committed BENCH_pr4.json / BENCH_pr5.json within noise.
	Incr *IncrBenchResult `json:"incr"`
	Exec *ExecBenchResult `json:"exec"`
}

// LifetimeBenchRun is the record/replay determinism section.
type LifetimeBenchRun struct {
	Preset  string `json:"preset"`
	Ticks   int    `json:"ticks"`
	PerTick int    `json:"perTick"`
	// FaultRate and DeathTick describe the recorded hostility: faults
	// on every tick, one mid-plan machine death.
	FaultRate float64 `json:"faultRate"`
	DeathTick int     `json:"deathTick"`

	// Events is the recorded log length; Summary the recorded run's
	// counters (floorViolations must be zero).
	Events  int               `json:"events"`
	Summary *lifetime.Summary `json:"summary"`

	RecordedFingerprint string `json:"recordedFingerprint"`
	SecondFingerprint   string `json:"secondFingerprint"`
	ReplayedFingerprint string `json:"replayedFingerprint"`
	// DeterministicRecord: two recordings of the same config produced
	// the same fingerprint. ReplayMatch: the pure fold landed on it too.
	DeterministicRecord bool `json:"deterministicRecord"`
	ReplayMatch         bool `json:"replayMatch"`

	RecordSeconds float64 `json:"recordSeconds"`
	ReplaySeconds float64 `json:"replaySeconds"`
}

// LifetimeBench records one faulty lifetime twice, replays it, and
// then runs the incremental and executor benchmarks on the shared
// substrate.
func LifetimeBench(cfg Config) (*LifetimeBenchResult, error) {
	cfg = cfg.withDefaults()
	rcfg := record.Config{
		Preset:    workload.TrainingPresets()[0],
		Ticks:     4,
		PerTick:   4,
		Budget:    cfg.Budget,
		FaultRate: 0.1,
		DeathTick: 1,
		Seed:      cfg.Seed,
	}
	rcfg.Preset.Seed = cfg.Seed + rcfg.Preset.Seed

	header(cfg.Out, "LIFETIME-BENCH", "event-sourced record/replay determinism (BENCH_pr6.json)")
	start := time.Now()
	first, err := record.Record(cfg.Ctx, rcfg)
	if err != nil {
		return nil, fmt.Errorf("lifetimebench: record: %w", err)
	}
	recordSecs := time.Since(start).Seconds()
	second, err := record.Record(cfg.Ctx, rcfg)
	if err != nil {
		return nil, fmt.Errorf("lifetimebench: second record: %w", err)
	}
	start = time.Now()
	replayed, err := lifetime.Replay(first)
	if err != nil {
		return nil, fmt.Errorf("lifetimebench: replay: %w", err)
	}
	replaySecs := time.Since(start).Seconds()

	run := LifetimeBenchRun{
		Preset:              rcfg.Preset.Name,
		Ticks:               rcfg.Ticks,
		PerTick:             rcfg.PerTick,
		FaultRate:           rcfg.FaultRate,
		DeathTick:           rcfg.DeathTick,
		Events:              len(first.Events),
		Summary:             first.Summary,
		RecordedFingerprint: first.Fingerprint,
		SecondFingerprint:   second.Fingerprint,
		ReplayedFingerprint: replayed.Fingerprint(),
		DeterministicRecord: first.Fingerprint == second.Fingerprint,
		ReplayMatch:         replayed.Fingerprint() == first.Fingerprint,
		RecordSeconds:       recordSecs,
		ReplaySeconds:       replaySecs,
	}
	row(cfg.Out, "events", "deaths", "replans", "deterministic", "replay match", "record s", "replay s")
	row(cfg.Out, run.Events, run.Summary.Deaths, run.Summary.Replans,
		run.DeterministicRecord, run.ReplayMatch, run.RecordSeconds, run.ReplaySeconds)
	if !run.DeterministicRecord {
		return nil, fmt.Errorf("lifetimebench: recording nondeterministic: %s vs %s",
			run.RecordedFingerprint, run.SecondFingerprint)
	}
	if !run.ReplayMatch {
		return nil, fmt.Errorf("lifetimebench: replay fingerprint %s, recorded %s",
			run.ReplayedFingerprint, run.RecordedFingerprint)
	}
	if run.Summary.FloorViolations != 0 {
		return nil, fmt.Errorf("lifetimebench: %d executor-issued SLA floor violations", run.Summary.FloorViolations)
	}

	incr, err := IncrBench(cfg)
	if err != nil {
		return nil, fmt.Errorf("lifetimebench: incr: %w", err)
	}
	// The committed BENCH_pr5.json ran with a 3 s budget (vs the 1.5 s
	// default the incremental artifact uses); pin it so the embedded
	// section stays comparable to that reference.
	ecfg := cfg
	ecfg.Budget = 3 * time.Second
	exec, err := ExecBench(ecfg)
	if err != nil {
		return nil, fmt.Errorf("lifetimebench: exec: %w", err)
	}
	return &LifetimeBenchResult{
		Schema:   "rasa-lifetime-bench/1",
		Seed:     cfg.Seed,
		Lifetime: run,
		Incr:     incr,
		Exec:     exec,
	}, nil
}

// WriteLifetimeBenchJSON writes the BENCH_pr6.json artifact.
func WriteLifetimeBenchJSON(w io.Writer, r *LifetimeBenchResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

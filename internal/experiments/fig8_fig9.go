package experiments

import (
	"fmt"
	"sync"

	"github.com/cloudsched/rasa/internal/core"
	"github.com/cloudsched/rasa/internal/partition"
	"github.com/cloudsched/rasa/internal/pool"
	"github.com/cloudsched/rasa/internal/sched"
	"github.com/cloudsched/rasa/internal/selector"
	"github.com/cloudsched/rasa/internal/workload"
)

// trainedModels caches the labelled training set and the two trained
// selectors; labelling races both solvers on ~dozens of subproblems and
// is the most expensive setup step.
var (
	trainOnce   sync.Once
	trainGCN    selector.GCNPolicy
	trainMLP    selector.MLPPolicy
	trainGCNAcc float64
	trainErr    error
)

func trainedSelectors(cfg Config) (selector.GCNPolicy, selector.MLPPolicy, float64, error) {
	trainOnce.Do(func() {
		var labeled []selector.Labeled
		for ci, ps := range workload.TrainingPresets() {
			c, err := getCluster(ps)
			if err != nil {
				trainErr = err
				return
			}
			for round := 0; round < 4; round++ {
				pres, err := partition.Multistage(cfg.Ctx, c.Problem, c.Original, partition.Options{
					TargetSize: 6 + 3*round,
					Seed:       cfg.Seed + int64(ci*10+round),
				})
				if err != nil {
					trainErr = err
					return
				}
				for _, sp := range pres.Subproblems {
					l, err := selector.Label(cfg.Ctx, sp, cfg.LabelBudget)
					if err != nil {
						trainErr = err
						return
					}
					labeled = append(labeled, l)
				}
			}
		}
		gcn := selector.TrainGCN(labeled, cfg.Seed)
		mlp := selector.TrainMLP(labeled, cfg.Seed)
		trainGCN = selector.GCNPolicy{Model: gcn}
		trainMLP = selector.MLPPolicy{Model: mlp}
		trainGCNAcc = gcn.Accuracy(selector.ToSamples(labeled))
	})
	return trainGCN, trainMLP, trainGCNAcc, trainErr
}

// Fig8Result maps cluster -> policy name -> normalized gained affinity.
type Fig8Result map[string]map[string]float64

// Fig8 regenerates Fig. 8: gained affinity under different
// algorithm-selection policies. Expected shape: GCN-BASED matches the
// best fixed/heuristic choice on every cluster; no other policy does so
// across all clusters.
func Fig8(cfg Config) (Fig8Result, error) {
	cfg = cfg.withDefaults()
	gcn, mlp, acc, err := trainedSelectors(cfg)
	if err != nil {
		return nil, err
	}
	policies := []selector.Policy{
		selector.Fixed{Algorithm: pool.CG},
		selector.Fixed{Algorithm: pool.MIP},
		selector.Heuristic{},
		mlp,
		gcn,
	}
	out := make(Fig8Result)
	header(cfg.Out, "Fig. 8", fmt.Sprintf("Gained affinity by selection policy (GCN train acc %.2f)", acc))
	row(cfg.Out, "Cluster", "CG", "MIP", "HEURISTIC", "MLP-BASED", "GCN-BASED")
	for _, ps := range cfg.Presets {
		if err := cfg.Ctx.Err(); err != nil {
			return out, fmt.Errorf("interrupted: %w", err)
		}
		c, err := getCluster(ps)
		if err != nil {
			return nil, err
		}
		cells := make(map[string]float64)
		var cols []any
		cols = append(cols, ps.Name)
		for _, pol := range policies {
			res, err := core.Optimize(cfg.Ctx, c.Problem, c.Original, core.Options{
				Budget:        cfg.Budget,
				Policy:        pol,
				SkipMigration: true,
				Partition:     partition.Options{Seed: cfg.Seed},
			})
			if err != nil {
				return nil, fmt.Errorf("fig8 %s/%s: %w", ps.Name, pol.Name(), err)
			}
			g := normalized(c.Problem, res.GainedAffinity)
			cells[pol.Name()] = g
			cols = append(cols, g)
		}
		out[ps.Name] = cells
		row(cfg.Out, cols...)
	}
	return out, nil
}

// Fig9Result maps cluster -> algorithm name -> normalized gained
// affinity (math.NaN means OOT).
type Fig9Result struct {
	Cells map[string]map[string]float64
	// Headline aggregates (Section V-D): mean improvement of RASA over
	// each baseline.
	RASAvsOriginal float64 // multiplicative (paper: 13.83x)
	RASAvsPOP      float64 // relative improvement (paper: 54.91%)
	RASAvsK8s      float64 // relative improvement (paper: 54.69%)
	RASAvsAPPLSCI  float64 // relative improvement (paper: 17.66%)
}

// Fig9 regenerates Fig. 9: gained affinity of POP, K8s+, APPLSCI19,
// RASA and ORIGINAL under the time-out. Expected shape: RASA best on
// every cluster; ORIGINAL an order of magnitude below.
func Fig9(cfg Config) (*Fig9Result, error) {
	cfg = cfg.withDefaults()
	gcn, _, _, err := trainedSelectors(cfg)
	if err != nil {
		return nil, err
	}
	out := &Fig9Result{Cells: make(map[string]map[string]float64)}
	header(cfg.Out, "Fig. 9", "Gained affinity by algorithm (time-out "+cfg.Budget.String()+")")
	row(cfg.Out, "Cluster", "ORIGINAL", "POP", "K8s+", "APPLSCI19", "RASA")

	var ratioOrig, ratioPOP, ratioK8s, ratioAppl float64
	n := 0
	for _, ps := range cfg.Presets {
		if err := cfg.Ctx.Err(); err != nil {
			return nil, fmt.Errorf("interrupted: %w", err)
		}
		c, err := getCluster(ps)
		if err != nil {
			return nil, err
		}
		p := c.Problem
		cells := make(map[string]float64)

		cells["ORIGINAL"] = normalized(p, c.Original.GainedAffinity(p))

		popA, err := sched.POP(cfg.Ctx, p, c.Original, sched.Options{Deadline: cfg.Budget, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		cells["POP"] = normalized(p, popA.GainedAffinity(p))

		k8sA, err := sched.K8sPlus(p, cfg.Seed)
		if err != nil {
			return nil, err
		}
		cells["K8s+"] = normalized(p, k8sA.GainedAffinity(p))

		applA, err := sched.APPLSCI19(p, c.Original, sched.Options{Deadline: cfg.Budget, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		cells["APPLSCI19"] = normalized(p, applA.GainedAffinity(p))

		rasaRes, err := core.Optimize(cfg.Ctx, p, c.Original, core.Options{
			Budget:        cfg.Budget,
			Policy:        gcn,
			SkipMigration: true,
			Partition:     partition.Options{Seed: cfg.Seed},
		})
		if err != nil {
			return nil, err
		}
		cells["RASA"] = normalized(p, rasaRes.GainedAffinity)

		out.Cells[ps.Name] = cells
		row(cfg.Out, ps.Name, cells["ORIGINAL"], cells["POP"], cells["K8s+"], cells["APPLSCI19"], cells["RASA"])

		if cells["ORIGINAL"] > 0 {
			ratioOrig += cells["RASA"] / cells["ORIGINAL"]
		}
		if cells["POP"] > 0 {
			ratioPOP += (cells["RASA"] - cells["POP"]) / cells["POP"]
		}
		if cells["K8s+"] > 0 {
			ratioK8s += (cells["RASA"] - cells["K8s+"]) / cells["K8s+"]
		}
		if cells["APPLSCI19"] > 0 {
			ratioAppl += (cells["RASA"] - cells["APPLSCI19"]) / cells["APPLSCI19"]
		}
		n++
	}
	if n > 0 {
		out.RASAvsOriginal = ratioOrig / float64(n)
		out.RASAvsPOP = ratioPOP / float64(n)
		out.RASAvsK8s = ratioK8s / float64(n)
		out.RASAvsAPPLSCI = ratioAppl / float64(n)
	}
	fmt.Fprintf(cfg.Out, "RASA vs ORIGINAL: %.2fx (paper: 13.83x)\n", out.RASAvsOriginal)
	fmt.Fprintf(cfg.Out, "RASA vs POP: +%.2f%% (paper: +54.91%%)\n", 100*out.RASAvsPOP)
	fmt.Fprintf(cfg.Out, "RASA vs K8s+: +%.2f%% (paper: +54.69%%)\n", 100*out.RASAvsK8s)
	fmt.Fprintf(cfg.Out, "RASA vs APPLSCI19: +%.2f%% (paper: +17.66%%)\n", 100*out.RASAvsAPPLSCI)
	return out, nil
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V) on the synthetic M1–M4 clusters. Each function
// prints the same rows/series the paper reports; cmd/rasabench and the
// root bench_test.go both drive this package, so the CLI and `go test
// -bench` produce identical artifacts.
//
// Absolute numbers differ from the paper (the substrate is a pure-Go
// solver on scaled clusters, not Gurobi on a production fleet); the
// reproduction targets are the *shapes*: who wins, by what rough factor,
// and where the crossovers fall. EXPERIMENTS.md records paper-vs-
// measured for every artifact.
package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"time"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/workload"
)

// Config parameterizes an experiment run.
type Config struct {
	// Ctx interrupts a run: experiments check it between optimization
	// passes and thread it into every solve, so an interrupted run stops
	// within one solver poll interval. Default context.Background().
	Ctx context.Context
	// Budget is the per-optimization time-out. The paper uses 60 s on
	// production hardware; the default here is 1.5 s, which produces the
	// same qualitative shapes on the scaled clusters. Override with the
	// RASA_BENCH_BUDGET environment variable (e.g. "10s") or the
	// -budget flag of cmd/rasabench.
	Budget time.Duration
	// LabelBudget is the per-algorithm budget when labelling GCN
	// training subproblems.
	LabelBudget time.Duration
	// Presets are the evaluation clusters; default M1–M4.
	Presets []workload.Preset
	// Seed drives all randomized components.
	Seed int64
	// Out receives the formatted tables; default os.Stdout.
	Out io.Writer
}

// FromEnv builds the default config, honouring RASA_BENCH_BUDGET and
// RASA_BENCH_SMALL=1 (use quarter-scale clusters for quick runs).
func FromEnv() Config {
	cfg := Config{}
	if v := os.Getenv("RASA_BENCH_BUDGET"); v != "" {
		if d, err := time.ParseDuration(v); err == nil {
			cfg.Budget = d
		}
	}
	if os.Getenv("RASA_BENCH_SMALL") == "1" {
		cfg.Presets = SmallPresets()
	}
	return cfg
}

// SmallPresets returns quarter-scale variants of M1–M4 for fast runs.
func SmallPresets() []workload.Preset {
	var out []workload.Preset
	for _, ps := range workload.EvaluationPresets() {
		ps.Services /= 4
		ps.Containers /= 4
		ps.Machines /= 4
		if ps.Machines < 4 {
			ps.Machines = 4
		}
		if ps.Services < 10 {
			ps.Services = 10
		}
		if ps.Containers < 4*ps.Services {
			ps.Containers = 4 * ps.Services
		}
		out = append(out, ps)
	}
	return out
}

func (c Config) withDefaults() Config {
	if c.Ctx == nil {
		c.Ctx = context.Background()
	}
	if c.Budget <= 0 {
		c.Budget = 1500 * time.Millisecond
	}
	if c.LabelBudget <= 0 {
		// The paper labels subproblems under the same one-minute limit it
		// evaluates with; here half the evaluation budget keeps labels
		// predictive while bounding the one-off training cost (hundreds
		// of subproblems are raced twice each).
		c.LabelBudget = c.Budget / 2
	}
	if len(c.Presets) == 0 {
		c.Presets = workload.EvaluationPresets()
	}
	if c.Out == nil {
		c.Out = os.Stdout
	}
	return c
}

// clusterCache avoids regenerating the same preset across experiments
// in one process (generation of M2 costs seconds).
var clusterCache sync.Map // preset name+seed -> *workload.Cluster

func getCluster(ps workload.Preset) (*workload.Cluster, error) {
	key := ps.Name + "/" + strconv.FormatInt(ps.Seed, 10) + "/" + strconv.Itoa(ps.Services)
	if v, ok := clusterCache.Load(key); ok {
		return v.(*workload.Cluster), nil
	}
	c, err := workload.Generate(ps)
	if err != nil {
		return nil, err
	}
	clusterCache.Store(key, c)
	return c, nil
}

// normalized converts an absolute gained affinity into the paper's
// normalized objective (total affinity of workload clusters is 1.0, but
// divide anyway to stay correct for custom presets).
func normalized(p *cluster.Problem, gained float64) float64 {
	total := p.Affinity.TotalWeight()
	if total == 0 {
		return 0
	}
	return gained / total
}

// header prints an experiment banner.
func header(w io.Writer, id, title string) {
	fmt.Fprintf(w, "\n=== %s: %s ===\n", id, title)
}

// row prints one formatted table row.
func row(w io.Writer, cols ...any) {
	for i, c := range cols {
		if i > 0 {
			fmt.Fprint(w, "\t")
		}
		switch v := c.(type) {
		case float64:
			fmt.Fprintf(w, "%.4f", v)
		default:
			fmt.Fprintf(w, "%v", v)
		}
	}
	fmt.Fprintln(w)
}

package experiments

import (
	"encoding/csv"
	"io"
	"sort"
	"strconv"
)

// CSV writers: each experiment's typed result can be exported as a CSV
// series for external plotting (cmd/rasabench -csv). Columns mirror the
// axes of the corresponding paper figure.

func writeAll(w io.Writer, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.WriteAll(rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

// WriteFig5CSV exports rank, observed T(s), and both fitted curves.
func WriteFig5CSV(w io.Writer, r *Fig5Result) error {
	rows := [][]string{{"rank", "total_affinity", "powerlaw_fit", "exponential_fit"}}
	for i, y := range r.Top {
		rows = append(rows, []string{
			strconv.Itoa(i + 1), f(y), f(r.PowerLaw.Eval(i + 1)), f(r.Exponential.Eval(i + 1)),
		})
	}
	return writeAll(w, rows)
}

// WriteFig6CSV exports cluster x strategy gained affinity ("OOT" for
// out-of-time cells).
func WriteFig6CSV(w io.Writer, r Fig6Result) error {
	strategies := []string{"NO-PARTITION", "RANDOM-PARTITION", "KAHIP", "MULTI-STAGE-PARTITION"}
	rows := [][]string{append([]string{"cluster"}, strategies...)}
	names := make([]string, 0, len(r))
	for name := range r {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		row := []string{name}
		for _, st := range strategies {
			c := r[name][st]
			if c.OOT {
				row = append(row, "OOT")
			} else {
				row = append(row, f(c.Gained))
			}
		}
		rows = append(rows, row)
	}
	return writeAll(w, rows)
}

// WriteFig7CSV exports the master-ratio sweep, one row per
// (cluster, ratio).
func WriteFig7CSV(w io.Writer, series []Fig7Series) error {
	rows := [][]string{{"cluster", "ratio", "gained", "master_total_affinity", "chosen_alpha"}}
	for _, s := range series {
		for _, pt := range s.Points {
			rows = append(rows, []string{
				s.Cluster, f(pt.Ratio), f(pt.Gained), f(pt.MasterAffinity), f(s.ChosenRatio),
			})
		}
	}
	return writeAll(w, rows)
}

// WriteFig8CSV exports cluster x policy gained affinity.
func WriteFig8CSV(w io.Writer, r Fig8Result) error {
	policies := []string{"CG", "MIP", "HEURISTIC", "MLP-BASED", "GCN-BASED"}
	rows := [][]string{append([]string{"cluster"}, policies...)}
	names := make([]string, 0, len(r))
	for name := range r {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		row := []string{name}
		for _, pol := range policies {
			row = append(row, f(r[name][pol]))
		}
		rows = append(rows, row)
	}
	return writeAll(w, rows)
}

// WriteFig9CSV exports cluster x algorithm gained affinity.
func WriteFig9CSV(w io.Writer, r *Fig9Result) error {
	algs := []string{"ORIGINAL", "POP", "K8s+", "APPLSCI19", "RASA"}
	rows := [][]string{append([]string{"cluster"}, algs...)}
	names := make([]string, 0, len(r.Cells))
	for name := range r.Cells {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		row := []string{name}
		for _, a := range algs {
			row = append(row, f(r.Cells[name][a]))
		}
		rows = append(rows, row)
	}
	return writeAll(w, rows)
}

// WriteFig10CSV exports (cluster, algorithm, budget, runtime, gained).
func WriteFig10CSV(w io.Writer, series []Fig10Series) error {
	rows := [][]string{{"cluster", "algorithm", "budget_ms", "runtime_ms", "gained"}}
	for _, s := range series {
		for _, pt := range s.Points {
			rows = append(rows, []string{
				s.Cluster, s.Algorithm,
				f(float64(pt.Budget.Milliseconds())),
				f(float64(pt.Runtime.Milliseconds())),
				f(pt.Gained),
			})
		}
	}
	return writeAll(w, rows)
}

// WriteProductionCSV exports the Figs. 11-13 time series: per tick and
// scenario, the weighted latency/error plus per-pair metrics.
func WriteProductionCSV(w io.Writer, r *ProductionResult) error {
	rows := [][]string{{"scenario", "tick", "weighted_latency_ms", "weighted_error_rate", "gained_affinity", "pair", "pair_latency_ms", "pair_error_rate"}}
	add := func(name string, ticks []tickLike, pairs int) {
		for ti, tm := range ticks {
			for pi := 0; pi < pairs; pi++ {
				rows = append(rows, []string{
					name, strconv.Itoa(ti),
					f(tm.weightedLatency), f(tm.weightedError), f(tm.gained),
					strconv.Itoa(pi), f(tm.pairLatency[pi]), f(tm.pairError[pi]),
				})
			}
		}
	}
	for _, sc := range []struct {
		name string
		rep  *reportAccessor
	}{
		{"WITHOUT_RASA", newReportAccessor(r, 0)},
		{"WITH_RASA", newReportAccessor(r, 1)},
		{"ONLY_COLLOCATED", newReportAccessor(r, 2)},
	} {
		add(sc.name, sc.rep.ticks, sc.rep.pairs)
	}
	return writeAll(w, rows)
}

// tickLike flattens one prodsim tick for CSV.
type tickLike struct {
	weightedLatency, weightedError, gained float64
	pairLatency, pairError                 []float64
}

type reportAccessor struct {
	ticks []tickLike
	pairs int
}

func newReportAccessor(r *ProductionResult, which int) *reportAccessor {
	rep := r.Comparison.Without
	switch which {
	case 1:
		rep = r.Comparison.With
	case 2:
		rep = r.Comparison.Collocated
	}
	out := &reportAccessor{pairs: len(rep.TrackedPairs)}
	for _, tm := range rep.Ticks {
		tl := tickLike{
			weightedLatency: tm.Weighted.Latency,
			weightedError:   tm.Weighted.ErrorRate,
			gained:          tm.GainedAffinity,
		}
		for _, pm := range tm.Pairs {
			tl.pairLatency = append(tl.pairLatency, pm.Latency)
			tl.pairError = append(tl.pairError, pm.ErrorRate)
		}
		out.ticks = append(out.ticks, tl)
	}
	return out
}

// WriteLemma1CSV exports the tail-share measurements.
func WriteLemma1CSV(w io.Writer, pts []Lemma1Point) error {
	rows := [][]string{{"n", "alpha", "masters", "tail_share"}}
	for _, pt := range pts {
		rows = append(rows, []string{
			strconv.Itoa(pt.N), f(pt.Alpha), strconv.Itoa(pt.MasterCount), f(pt.TailShare),
		})
	}
	return writeAll(w, rows)
}

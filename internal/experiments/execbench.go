// Migration-execution benchmark (BENCH_pr5.json): the PR-5 fault-
// tolerant executor driving identical migration plans against fabrics
// of increasing hostility. Each arm runs several independent trials of
// the same shape — bootstrap a cluster, plan the first re-optimization,
// execute it — at a given per-command failure rate; the hardest arm
// additionally kills the most-loaded machine halfway through the plan,
// forcing the checkpoint → drain → re-plan → resume escalation. The
// artifact records plan completion rate, wasted moves, retry/re-plan
// effort, and achieved vs planned normalized affinity. The SLA floor
// invariant (zero executor-issued violations) must hold in every arm.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/exec"
	"github.com/cloudsched/rasa/internal/incr"
	"github.com/cloudsched/rasa/internal/snapshot"
	"github.com/cloudsched/rasa/internal/workload"
)

// ExecBenchResult is the schema of BENCH_pr5.json.
type ExecBenchResult struct {
	Schema string `json:"schema"`
	Seed   int64  `json:"seed"`
	Preset string `json:"preset"`
	Budget string `json:"budget"`
	// Trials is the number of independent runs per arm.
	Trials int            `json:"trials"`
	Arms   []ExecBenchArm `json:"arms"`
}

// ExecBenchArm aggregates the trials at one fault rate.
type ExecBenchArm struct {
	FaultRate float64 `json:"faultRate"`
	// MachineDeath marks the arm that kills the most-loaded machine
	// after half the plan's commands.
	MachineDeath bool `json:"machineDeath"`
	Trials       int  `json:"trials"`
	// Completed counts trials whose outcome was "completed" (directly
	// or after re-plan escalation); CompletionRate = Completed/Trials.
	Completed      int     `json:"completed"`
	CompletionRate float64 `json:"completionRate"`
	// Replanned counts trials that needed at least one re-plan.
	Replanned int `json:"replanned"`

	PlannedMoves     int `json:"plannedMoves"`
	ExecutedCommands int `json:"executedCommands"`
	WastedMoves      int `json:"wastedMoves"`
	Retries          int `json:"retries"`
	Replans          int `json:"replans"`
	// SLAFloorViolations counts executor-issued floor breaches; the
	// runtime invariant demands this stays zero at every fault rate.
	SLAFloorViolations int `json:"slaFloorViolations"`
	// EnvFloorDips counts environment-caused dips (machine death
	// pushing a service below its floor) — expected only in death arms.
	EnvFloorDips int `json:"envFloorDips"`

	// Mean normalized gained affinity of the plan's target vs what the
	// executor actually achieved, over the arm's trials.
	NormPlanned  float64 `json:"normPlanned"`
	NormAchieved float64 `json:"normAchieved"`
}

// execBenchTrials per arm: enough to average fault noise without
// turning the benchmark into a soak test.
const execBenchTrials = 3

// ExecBench measures the executor across 0%, 5%, and 15% per-command
// fault rates, the last with a mid-plan machine death. All trials run
// with Parallelism 1 and derived seeds, so the artifact is
// deterministic for a given -seed.
func ExecBench(cfg Config) (*ExecBenchResult, error) {
	cfg = cfg.withDefaults()
	ps := workload.TrainingPresets()[0]
	ps.Seed = cfg.Seed + ps.Seed
	c, err := getCluster(ps)
	if err != nil {
		return nil, err
	}

	res := &ExecBenchResult{
		Schema: "rasa-exec-bench/1",
		Seed:   cfg.Seed,
		Preset: ps.Name,
		Budget: cfg.Budget.String(),
		Trials: execBenchTrials,
	}
	arms := []struct {
		rate  float64
		death bool
	}{
		{0, false},
		{0.05, false},
		{0.15, true},
	}

	header(cfg.Out, "EXEC-BENCH", "fault-tolerant plan execution at increasing fault rates (BENCH_pr5.json)")
	row(cfg.Out, "fault", "death", "done", "replan", "planned", "executed", "wasted", "retries", "norm plan", "norm got")
	for _, arm := range arms {
		a := ExecBenchArm{FaultRate: arm.rate, MachineDeath: arm.death, Trials: execBenchTrials}
		var normPlannedSum, normAchievedSum float64
		for trial := 0; trial < execBenchTrials; trial++ {
			if err := cfg.Ctx.Err(); err != nil {
				return nil, err
			}
			rep, err := execBenchTrial(cfg, c, arm.rate, arm.death, cfg.Seed+int64(trial)*997)
			if err != nil {
				return nil, fmt.Errorf("execbench: fault %v trial %d: %w", arm.rate, trial, err)
			}
			if rep.Outcome == exec.OutcomeCompleted {
				a.Completed++
			}
			if rep.Replans > 0 {
				a.Replanned++
			}
			a.PlannedMoves += rep.PlannedMoves
			a.ExecutedCommands += rep.Executed
			a.WastedMoves += rep.WastedMoves
			a.Retries += rep.Retries
			a.Replans += rep.Replans
			a.SLAFloorViolations += rep.FloorViolations
			a.EnvFloorDips += rep.EnvFloorDips
			normPlannedSum += rep.NormPlanned
			normAchievedSum += rep.NormAchieved
		}
		a.CompletionRate = float64(a.Completed) / float64(a.Trials)
		a.NormPlanned = normPlannedSum / float64(a.Trials)
		a.NormAchieved = normAchievedSum / float64(a.Trials)
		res.Arms = append(res.Arms, a)
		row(cfg.Out, a.FaultRate, a.MachineDeath, a.CompletionRate, a.Replanned,
			a.PlannedMoves, a.ExecutedCommands, a.WastedMoves, a.Retries,
			a.NormPlanned, a.NormAchieved)
		if a.SLAFloorViolations != 0 {
			return nil, fmt.Errorf("execbench: %d SLA floor violations at fault rate %v", a.SLAFloorViolations, a.FaultRate)
		}
	}
	return res, nil
}

// execBenchTrial bootstraps a fresh engine over the shared cluster,
// plans the first re-optimization, and executes it against a fabric at
// the given fault rate.
func execBenchTrial(cfg Config, c *workload.Cluster, rate float64, death bool, seed int64) (*exec.Report, error) {
	// Each trial owns its state: deep-copy through the snapshot
	// round-trip so executions cannot contaminate each other.
	p, a, err := snapshot.FromCluster(c.Problem, c.Original).ToCluster()
	if err != nil {
		return nil, err
	}
	st, err := incr.NewState(p, a)
	if err != nil {
		return nil, err
	}
	eng := incr.New(st, incr.Options{
		Budget:      cfg.Budget,
		MinAlive:    0.75,
		Parallelism: 1,
	}, nil)

	from := st.Assignment().Clone()
	// Propose, not Reoptimize: the engine's state stays at `from`, which
	// is the contract Execute requires — the executor converges the
	// event log on the proposed target move by move.
	rres, err := eng.Propose(cfg.Ctx)
	if err != nil {
		return nil, err
	}
	if rres.Plan == nil || len(rres.Plan.Steps) == 0 {
		return nil, fmt.Errorf("bootstrap produced no plan (moves=%d)", rres.Moves)
	}

	var fab exec.Fabric
	if rate == 0 && !death {
		fab = exec.NewInstantFabric(from.Clone())
	} else {
		fc := exec.FaultConfig{FailureProb: rate, Seed: seed}
		if death {
			commands := 0
			for _, s := range rres.Plan.Steps {
				commands += len(s)
			}
			fc.Deaths = []exec.MachineDeath{{
				Machine:       mostLoadedMachine(from),
				AfterCommands: commands / 2,
			}}
		}
		fab = exec.NewFaultFabric(from.Clone(), fc)
	}
	ex := exec.New(eng, fab, exec.Options{
		MinAlive:    0.75,
		Parallelism: 1,
		Seed:        seed,
	}, nil)
	return ex.Execute(cfg.Ctx, from, rres.Plan)
}

// mostLoadedMachine picks the machine hosting the most containers —
// the death target that maximizes divergence.
func mostLoadedMachine(a *cluster.Assignment) int {
	best, bestC := 0, -1
	for m, scs := range a.PerMachine() {
		total := 0
		for _, sc := range scs {
			total += sc.Count
		}
		if total > bestC {
			best, bestC = m, total
		}
	}
	return best
}

// WriteExecBenchJSON writes the BENCH_pr5.json artifact.
func WriteExecBenchJSON(w io.Writer, r *ExecBenchResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

package experiments

import (
	"fmt"
	"time"

	"github.com/cloudsched/rasa/internal/cg"
	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/core"
	"github.com/cloudsched/rasa/internal/mip"
	"github.com/cloudsched/rasa/internal/model"
	"github.com/cloudsched/rasa/internal/partition"
	"github.com/cloudsched/rasa/internal/workload"
)

// clusterNewAssignment aliases the constructor for readability in the
// ablation helpers.
var clusterNewAssignment = cluster.NewAssignment

// SupplementaryRow reports the partitioning cost metrics for one
// cluster (supplementary material of the paper: optimality loss
// generally below 12%, time overhead below 10%).
type SupplementaryRow struct {
	Cluster       string
	LostAffinity  float64 // share of total affinity cut away by partitioning
	Overhead      float64 // partition time / total optimization time
	PartitionTime time.Duration
	TotalTime     time.Duration
}

// Supplementary regenerates the partitioning-cost analysis.
func Supplementary(cfg Config) ([]SupplementaryRow, error) {
	cfg = cfg.withDefaults()
	header(cfg.Out, "Supplementary", "Multi-stage partitioning optimality loss and time overhead")
	row(cfg.Out, "Cluster", "lost-affinity", "partition-time", "total-time", "overhead")
	var out []SupplementaryRow
	for _, ps := range cfg.Presets {
		if err := cfg.Ctx.Err(); err != nil {
			return nil, fmt.Errorf("interrupted: %w", err)
		}
		c, err := getCluster(ps)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res, err := core.Optimize(cfg.Ctx, c.Problem, c.Original, core.Options{
			Budget:        cfg.Budget,
			SkipMigration: true,
			Partition:     partition.Options{Seed: cfg.Seed},
		})
		if err != nil {
			return nil, err
		}
		total := time.Since(start)
		r := SupplementaryRow{
			Cluster:       ps.Name,
			LostAffinity:  res.Partition.LostAffinity / c.Problem.Affinity.TotalWeight(),
			PartitionTime: res.Partition.Elapsed,
			TotalTime:     total,
			Overhead:      float64(res.Partition.Elapsed) / float64(total),
		}
		out = append(out, r)
		row(cfg.Out, r.Cluster, r.LostAffinity, r.PartitionTime.Round(time.Millisecond).String(),
			r.TotalTime.Round(time.Millisecond).String(), r.Overhead)
	}
	return out, nil
}

// AblationResult is one ablation comparison: the design choice on vs
// off, measured by normalized gained affinity.
type AblationResult struct {
	Name     string
	On, Off  float64
	OnLabel  string
	OffLabel string
}

// ablationCluster is a deliberately contended cluster (high utilization,
// few machines per subproblem) where the ablated design choices actually
// bind; on loose clusters every variant solves at the root node and the
// comparison degenerates.
func ablationCluster(cfg Config) (*clusterBundle, error) {
	ps := workload.Preset{
		Name: "ABL", Services: 48, Containers: 360, Machines: 12,
		Beta: 1.6, AffinityFraction: 0.75, Zones: 1, Utilization: 0.8,
		CommunitySize: 10, Seed: cfg.Seed + 900,
	}
	c, err := getCluster(ps)
	if err != nil {
		return nil, err
	}
	pres, err := partition.Multistage(cfg.Ctx, c.Problem, c.Original, partition.Options{Seed: cfg.Seed, TargetSize: 12})
	if err != nil {
		return nil, err
	}
	return &clusterBundle{c: c, pres: pres}, nil
}

type clusterBundle struct {
	c    *workload.Cluster
	pres *partition.Result
}

// AblationMachineGrouping measures the machine-grouping reduction in CG
// (DESIGN.md A1): total gained affinity across subproblems with
// grouping on vs off, under the same per-subproblem budget.
func AblationMachineGrouping(cfg Config) (*AblationResult, error) {
	cfg = cfg.withDefaults()
	b, err := ablationCluster(cfg)
	if err != nil {
		return nil, err
	}
	// Partition against an empty deployment: trivial-usage carve-outs
	// perturb every machine's residual capacity, which would make every
	// machine its own group and mask the ablation.
	empty := clusterNewAssignment(b.c.Problem.N(), b.c.Problem.M())
	pres, err := partition.Multistage(cfg.Ctx, b.c.Problem, empty, partition.Options{Seed: cfg.Seed, TargetSize: 12})
	if err != nil {
		return nil, err
	}
	// Grouping is a model-size reduction: solution quality matches once
	// both converge, so the honest metric is the wall time column
	// generation needs to run its full iteration budget.
	run := func(disable bool) (float64, error) {
		start := time.Now()
		for _, sp := range pres.Subproblems {
			if _, err := cg.Solve(cfg.Ctx, sp, cg.Options{
				Deadline:        time.Now().Add(cfg.Budget),
				DisableGrouping: disable,
				MaxIters:        20,
			}); err != nil {
				return 0, err
			}
		}
		return float64(time.Since(start).Milliseconds()), nil
	}
	on, err := run(false)
	if err != nil {
		return nil, err
	}
	off, err := run(true)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Name: "machine-grouping (CG wall time, ms, lower is better)", On: on, Off: off, OnLabel: "grouped", OffLabel: "per-machine"}
	printAblation(cfg, res)
	return res, nil
}

// AblationAnytime measures the value of heuristic rounding incumbents in
// branch and bound (DESIGN.md A2) under a tight budget.
func AblationAnytime(cfg Config) (*AblationResult, error) {
	cfg = cfg.withDefaults()
	b, err := ablationCluster(cfg)
	if err != nil {
		return nil, err
	}
	run := func(roundEvery int) (float64, error) {
		var total float64
		for _, sp := range b.pres.Subproblems {
			m, err := model.BuildMIP(sp)
			if err != nil {
				return 0, err
			}
			opts := mip.Options{
				Deadline:   time.Now().Add(cfg.Budget / 32),
				RoundEvery: roundEvery,
			}
			if roundEvery > 0 {
				opts.Rounder = m.Rounder()
			}
			sol, err := mip.Solve(cfg.Ctx, &m.Prob, opts)
			if err != nil {
				return 0, err
			}
			if sol.X != nil {
				total += m.AffinityValue(sol.X)
			}
		}
		return normalized(b.c.Problem, total), nil
	}
	on, err := run(8)
	if err != nil {
		return nil, err
	}
	off, err := run(-1)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Name: "anytime-rounding", On: on, Off: off, OnLabel: "rounding", OffLabel: "exact-only"}
	printAblation(cfg, res)
	return res, nil
}

// AblationSampleCount measures stage-4 partition sampling depth
// (DESIGN.md A3) end to end: final gained affinity when the balanced
// partition is chosen from 64 samples vs a single sample. Note that a
// single unbalanced sample can retain *more* raw affinity (one giant
// subset cuts nothing) yet solve worse — the end-to-end objective is the
// honest metric.
func AblationSampleCount(cfg Config) (*AblationResult, error) {
	cfg = cfg.withDefaults()
	ps := cfg.Presets[0]
	c, err := getCluster(ps)
	if err != nil {
		return nil, err
	}
	run := func(sampleCap int) (float64, error) {
		res, err := core.Optimize(cfg.Ctx, c.Problem, c.Original, core.Options{
			Budget:        cfg.Budget,
			SkipMigration: true,
			Partition:     partition.Options{Seed: cfg.Seed, SampleCap: sampleCap},
		})
		if err != nil {
			return 0, err
		}
		return normalized(c.Problem, res.GainedAffinity), nil
	}
	on, err := run(64)
	if err != nil {
		return nil, err
	}
	off, err := run(1)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Name: "partition-sample-count (final gained affinity)", On: on, Off: off, OnLabel: "64 samples", OffLabel: "1 sample"}
	printAblation(cfg, res)
	return res, nil
}

// AblationBranching compares pseudocost vs most-fractional branching
// (DESIGN.md A4) by nodes needed to solve subproblems exactly.
func AblationBranching(cfg Config) (*AblationResult, error) {
	cfg = cfg.withDefaults()
	b, err := ablationCluster(cfg)
	if err != nil {
		return nil, err
	}
	run := func(rule mip.BranchRule) (float64, error) {
		var nodes float64
		count := 0
		for _, sp := range b.pres.Subproblems {
			m, err := model.BuildMIP(sp)
			if err != nil {
				return 0, err
			}
			sol, err := mip.Solve(cfg.Ctx, &m.Prob, mip.Options{
				Deadline:  time.Now().Add(cfg.Budget / 4),
				Branching: rule,
				Rounder:   m.Rounder(),
			})
			if err != nil {
				return 0, err
			}
			nodes += float64(sol.Nodes)
			count++
		}
		if count == 0 {
			return 0, nil
		}
		return nodes / float64(count), nil
	}
	on, err := run(mip.Pseudocost)
	if err != nil {
		return nil, err
	}
	off, err := run(mip.MostFractional)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Name: "branching-rule (mean B&B nodes, lower is better)", On: on, Off: off, OnLabel: "pseudocost", OffLabel: "most-fractional"}
	printAblation(cfg, res)
	return res, nil
}

func printAblation(cfg Config, r *AblationResult) {
	header(cfg.Out, "Ablation", r.Name)
	fmt.Fprintf(cfg.Out, "%s: %.4f\n%s: %.4f\n", r.OnLabel, r.On, r.OffLabel, r.Off)
}

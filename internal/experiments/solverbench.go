// Solver benchmark (BENCH_pr3.json): quantifies the LP workspace layer
// introduced in PR 3 — tableau-storage reuse (allocs/solve, ns/solve)
// and branch-and-bound warm starts (nodes explored within a fixed
// budget, pivots/node) — on the standard subproblem benchmark: MIP
// formulations of multistage-partitioned workload clusters, the exact
// instances the production solve path feeds to internal/mip. Later PRs
// regenerate the same artifact to track the solver-perf trajectory.
package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"github.com/cloudsched/rasa/internal/lp"
	"github.com/cloudsched/rasa/internal/mip"
	"github.com/cloudsched/rasa/internal/model"
	"github.com/cloudsched/rasa/internal/partition"
)

// SolverBenchResult is the schema of BENCH_pr3.json. All aggregate
// ratios are also derivable from the per-case entries; they are
// materialized so trajectory comparisons are one jq expression.
type SolverBenchResult struct {
	// Schema names the layout so later BENCH_*.json revisions can evolve.
	Schema string `json:"schema"`
	Seed   int64  `json:"seed"`
	// LPSolves is how many repeated solves each LP case averages over.
	LPSolves int `json:"lpSolvesPerCase"`
	// MIPBudget is the fixed wall-clock budget of the node-throughput
	// comparison (Go duration string).
	MIPBudget string `json:"mipBudget"`

	LP  LPBenchGroup  `json:"lp"`
	MIP MIPBenchGroup `json:"mip"`
}

// LPBenchGroup compares cold solves in a fresh workspace per solve (the
// pre-workspace allocation profile: every tableau row, cost row, and
// index slice allocated anew) against cold solves reusing one workspace.
type LPBenchGroup struct {
	Cases []LPBenchCase `json:"cases"`
	// Means across cases (per solve).
	NsFresh      float64 `json:"nsPerSolveFresh"`
	NsReused     float64 `json:"nsPerSolveReused"`
	AllocsFresh  float64 `json:"allocsPerSolveFresh"`
	AllocsReused float64 `json:"allocsPerSolveReused"`
	// AllocReduction = 1 - reused/fresh; the PR-3 acceptance floor is 0.40.
	AllocReduction float64 `json:"allocReduction"`
}

// LPBenchCase is one subproblem's root-relaxation LP.
type LPBenchCase struct {
	Name         string  `json:"name"`
	Vars         int     `json:"vars"`
	Rows         int     `json:"rows"`
	NsFresh      float64 `json:"nsPerSolveFresh"`
	NsReused     float64 `json:"nsPerSolveReused"`
	AllocsFresh  float64 `json:"allocsPerSolveFresh"`
	AllocsReused float64 `json:"allocsPerSolveReused"`
}

// MIPBenchGroup compares branch and bound with per-node warm starts
// (default) against DisableWarmStart under one fixed wall-clock budget,
// plus run-to-completion objective agreement between the two paths.
type MIPBenchGroup struct {
	Cases []MIPBenchCase `json:"cases"`
	// NodeRatio is the mean warm/cold node count over budget-bound cases;
	// the PR-3 acceptance floor is 1.5.
	NodeRatio         float64 `json:"nodeRatio"`
	PivotsPerNodeCold float64 `json:"pivotsPerNodeCold"`
	PivotsPerNodeWarm float64 `json:"pivotsPerNodeWarm"`
	// MaxObjectiveDelta is the largest |warm-cold| completion-objective
	// gap; ObjectivesAgree requires every delta <= 1e-6.
	MaxObjectiveDelta float64 `json:"maxObjectiveDelta"`
	ObjectivesAgree   bool    `json:"objectivesAgree"`
}

// MIPBenchCase is one subproblem's MIP formulation.
type MIPBenchCase struct {
	Name string `json:"name"`
	Vars int    `json:"vars"`
	Rows int    `json:"rows"`
	// Fixed-budget runs.
	NodesCold         int     `json:"nodesCold"`
	NodesWarm         int     `json:"nodesWarm"`
	PivotsPerNodeCold float64 `json:"pivotsPerNodeCold"`
	PivotsPerNodeWarm float64 `json:"pivotsPerNodeWarm"`
	// WarmPivotShare is warm pivots / total pivots of the warm run.
	WarmPivotShare float64 `json:"warmPivotShare"`
	// BudgetBound marks cases whose cold run exhausted the budget; only
	// those contribute to NodeRatio (a case both paths solve to
	// optimality inside the budget says nothing about throughput).
	BudgetBound bool `json:"budgetBound"`
	// Run-to-completion comparison (omitted when the case is too large
	// to finish: Completed=false, objectives zero).
	Completed      bool    `json:"completed"`
	ObjectiveCold  float64 `json:"objectiveCold"`
	ObjectiveWarm  float64 `json:"objectiveWarm"`
	ObjectiveDelta float64 `json:"objectiveDelta"`
}

// benchCase is one selected subproblem formulation.
type benchCase struct {
	name string
	m    *model.MIPModel
}

// solverBenchCases builds the benchmark instances: multistage-partition
// each evaluation cluster and keep MIP-tractable subproblem formulations
// whose root relaxation is fractional (so branch and bound has a tree to
// explore), capped per preset and in total.
func solverBenchCases(cfg Config) ([]benchCase, error) {
	const (
		minCells    = 2_000   // below this the LP solves in microseconds; noise
		maxCells    = 400_000 // above this one node LP eats the whole budget
		perPreset   = 2
		totalCap    = 8
		targetSize  = 10
		sampleSeeds = 3
	)
	var out []benchCase
	for _, ps := range cfg.Presets {
		c, err := getCluster(ps)
		if err != nil {
			return nil, err
		}
		kept := 0
		for seed := int64(0); seed < sampleSeeds && kept < perPreset && len(out) < totalCap; seed++ {
			pres, err := partition.Multistage(cfg.Ctx, c.Problem, c.Original, partition.Options{
				TargetSize: targetSize, Seed: cfg.Seed + seed,
			})
			if err != nil {
				return nil, err
			}
			for _, sp := range pres.Subproblems {
				if kept >= perPreset || len(out) >= totalCap {
					break
				}
				m, err := model.BuildMIP(sp)
				if err != nil {
					continue
				}
				cells := int64(m.NumVars()) * int64(m.NumRows())
				if cells < minCells || cells > maxCells {
					continue
				}
				out = append(out, benchCase{
					name: fmt.Sprintf("%s/seed%d/%dv%dr", ps.Name, cfg.Seed+seed, m.NumVars(), m.NumRows()),
					m:    m,
				})
				kept++
			}
		}
	}
	return out, nil
}

// measureLP runs `solves` cold solves of prob and returns the mean
// ns/solve and allocs/solve. fresh=true allocates a new workspace per
// solve (the pre-workspace profile); fresh=false reuses one workspace.
func measureLP(ctx context.Context, prob *lp.Problem, solves int, fresh bool) (nsPerSolve, allocsPerSolve float64, err error) {
	ws := new(lp.Workspace)
	// Warm-up solve so one-time costs (lazy slices sized to this problem)
	// don't pollute the reused measurement.
	if _, err := ws.Solve(ctx, prob, lp.Options{}); err != nil {
		return 0, 0, err
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < solves; i++ {
		if fresh {
			ws = new(lp.Workspace)
		}
		if _, err := ws.Solve(ctx, prob, lp.Options{}); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := float64(solves)
	return float64(elapsed.Nanoseconds()) / n, float64(after.Mallocs-before.Mallocs) / n, nil
}

// SolverBench runs the solver benchmark and prints a summary table to
// cfg.Out. Serialize the result with WriteSolverBenchJSON.
func SolverBench(cfg Config) (*SolverBenchResult, error) {
	cfg = cfg.withDefaults()
	// The node-throughput comparison wants a budget tight enough that
	// branch and bound cannot finish: a tenth of the optimization budget,
	// clamped to keep both arms meaningful across -budget overrides.
	mipBudget := cfg.Budget / 10
	if mipBudget < 50*time.Millisecond {
		mipBudget = 50 * time.Millisecond
	}
	if mipBudget > 500*time.Millisecond {
		mipBudget = 500 * time.Millisecond
	}
	const lpSolves = 200

	cases, err := solverBenchCases(cfg)
	if err != nil {
		return nil, err
	}
	if len(cases) == 0 {
		return nil, fmt.Errorf("solverbench: no benchmark cases survived selection")
	}

	res := &SolverBenchResult{
		Schema:    "rasa-solver-bench/1",
		Seed:      cfg.Seed,
		LPSolves:  lpSolves,
		MIPBudget: mipBudget.String(),
	}

	header(cfg.Out, "SOLVER-BENCH", "LP workspace reuse + B&B warm starts (BENCH_pr3.json)")
	row(cfg.Out, "case", "vars", "rows", "allocs/solve fresh", "allocs/solve reused", "ns/solve fresh", "ns/solve reused")
	for _, bc := range cases {
		if err := cfg.Ctx.Err(); err != nil {
			return nil, err
		}
		prob := &bc.m.Prob.LP
		nsF, alF, err := measureLP(cfg.Ctx, prob, lpSolves, true)
		if err != nil {
			return nil, fmt.Errorf("solverbench %s: %w", bc.name, err)
		}
		nsR, alR, err := measureLP(cfg.Ctx, prob, lpSolves, false)
		if err != nil {
			return nil, fmt.Errorf("solverbench %s: %w", bc.name, err)
		}
		lc := LPBenchCase{
			Name: bc.name, Vars: bc.m.NumVars(), Rows: bc.m.NumRows(),
			NsFresh: nsF, NsReused: nsR, AllocsFresh: alF, AllocsReused: alR,
		}
		res.LP.Cases = append(res.LP.Cases, lc)
		row(cfg.Out, bc.name, lc.Vars, lc.Rows, lc.AllocsFresh, lc.AllocsReused, lc.NsFresh, lc.NsReused)
	}
	for _, lc := range res.LP.Cases {
		res.LP.NsFresh += lc.NsFresh
		res.LP.NsReused += lc.NsReused
		res.LP.AllocsFresh += lc.AllocsFresh
		res.LP.AllocsReused += lc.AllocsReused
	}
	n := float64(len(res.LP.Cases))
	res.LP.NsFresh /= n
	res.LP.NsReused /= n
	res.LP.AllocsFresh /= n
	res.LP.AllocsReused /= n
	if res.LP.AllocsFresh > 0 {
		res.LP.AllocReduction = 1 - res.LP.AllocsReused/res.LP.AllocsFresh
	}
	row(cfg.Out, "LP MEAN", "", "", res.LP.AllocsFresh, res.LP.AllocsReused, res.LP.NsFresh, res.LP.NsReused)
	fmt.Fprintf(cfg.Out, "alloc reduction: %.1f%%\n", 100*res.LP.AllocReduction)

	// completionCells bounds run-to-completion comparisons: larger
	// formulations may not finish in reasonable time on either path.
	const completionCells = 120_000
	row(cfg.Out, "case", "nodes cold", "nodes warm", "piv/node cold", "piv/node warm", "obj cold", "obj warm")
	var ratioSum float64
	var ratioN int
	res.MIP.ObjectivesAgree = true
	var totalPivCold, totalPivWarm, totalNodesCold, totalNodesWarm float64
	for _, bc := range cases {
		if err := cfg.Ctx.Err(); err != nil {
			return nil, err
		}
		runBudget := func(disable bool) (mip.Solution, error) {
			return mip.Solve(cfg.Ctx, &bc.m.Prob, mip.Options{
				Deadline:         time.Now().Add(mipBudget),
				Rounder:          bc.m.Rounder(),
				DisableWarmStart: disable,
			})
		}
		cold, err := runBudget(true)
		if err != nil {
			return nil, err
		}
		warm, err := runBudget(false)
		if err != nil {
			return nil, err
		}
		mc := MIPBenchCase{
			Name: bc.name, Vars: bc.m.NumVars(), Rows: bc.m.NumRows(),
			NodesCold: cold.Nodes, NodesWarm: warm.Nodes,
			BudgetBound: cold.Status != mip.Optimal,
		}
		if cold.Nodes > 0 {
			mc.PivotsPerNodeCold = float64(cold.Stats.SimplexIters) / float64(cold.Nodes)
		}
		if warm.Nodes > 0 {
			mc.PivotsPerNodeWarm = float64(warm.Stats.SimplexIters) / float64(warm.Nodes)
		}
		if warm.Stats.SimplexIters > 0 {
			mc.WarmPivotShare = float64(warm.Stats.WarmPivots) / float64(warm.Stats.SimplexIters)
		}
		totalPivCold += float64(cold.Stats.SimplexIters)
		totalPivWarm += float64(warm.Stats.SimplexIters)
		totalNodesCold += float64(cold.Nodes)
		totalNodesWarm += float64(warm.Nodes)
		if mc.BudgetBound && cold.Nodes > 0 {
			ratioSum += float64(warm.Nodes) / float64(cold.Nodes)
			ratioN++
		}

		if int64(mc.Vars)*int64(mc.Rows) <= completionCells {
			// A generous but bounded deadline: cases that cannot prove
			// optimality within it report Completed=false instead of
			// stalling the whole benchmark on one hard tree.
			runFull := func(disable bool) (mip.Solution, error) {
				return mip.Solve(cfg.Ctx, &bc.m.Prob, mip.Options{
					Deadline:         time.Now().Add(20 * mipBudget),
					MaxNodes:         200_000,
					Rounder:          bc.m.Rounder(),
					DisableWarmStart: disable,
				})
			}
			fc, err := runFull(true)
			if err != nil {
				return nil, err
			}
			fw, err := runFull(false)
			if err != nil {
				return nil, err
			}
			if fc.Status == mip.Optimal && fw.Status == mip.Optimal {
				mc.Completed = true
				mc.ObjectiveCold = fc.Objective
				mc.ObjectiveWarm = fw.Objective
				mc.ObjectiveDelta = abs(fw.Objective - fc.Objective)
				if mc.ObjectiveDelta > res.MIP.MaxObjectiveDelta {
					res.MIP.MaxObjectiveDelta = mc.ObjectiveDelta
				}
				if mc.ObjectiveDelta > 1e-6 {
					res.MIP.ObjectivesAgree = false
				}
			}
		}
		res.MIP.Cases = append(res.MIP.Cases, mc)
		row(cfg.Out, bc.name, mc.NodesCold, mc.NodesWarm, mc.PivotsPerNodeCold, mc.PivotsPerNodeWarm, mc.ObjectiveCold, mc.ObjectiveWarm)
	}
	if ratioN > 0 {
		res.MIP.NodeRatio = ratioSum / float64(ratioN)
	}
	if totalNodesCold > 0 {
		res.MIP.PivotsPerNodeCold = totalPivCold / totalNodesCold
	}
	if totalNodesWarm > 0 {
		res.MIP.PivotsPerNodeWarm = totalPivWarm / totalNodesWarm
	}
	fmt.Fprintf(cfg.Out, "node ratio (warm/cold, budget-bound cases): %.2fx; piv/node %.1f -> %.1f; max obj delta %.2g\n",
		res.MIP.NodeRatio, res.MIP.PivotsPerNodeCold, res.MIP.PivotsPerNodeWarm, res.MIP.MaxObjectiveDelta)
	return res, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// WriteSolverBenchJSON writes the BENCH_*.json artifact.
func WriteSolverBenchJSON(w io.Writer, r *SolverBenchResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

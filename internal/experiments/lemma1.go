package experiments

import (
	"fmt"

	"github.com/cloudsched/rasa/internal/partition"
	"github.com/cloudsched/rasa/internal/workload"
)

// Lemma1Point is one cluster-size measurement of the non-master tail.
type Lemma1Point struct {
	N           int     // services
	Alpha       float64 // chosen master ratio 45*ln^0.66(N)/N
	MasterCount int
	// TailShare is the fraction of total affinity carried by edges with
	// at least one non-master endpoint — the affinity the partitioner
	// gives up by ignoring the tail. Lemma 1 bounds it by O(1/ln^γ N).
	TailShare float64
}

// Lemma1 empirically verifies the operative content of Lemma 1: under
// the production master ratio alpha = 45*ln^0.66(N)/N, the non-master
// tail carries only a few percent of the total affinity at every
// cluster size — the skewness property that justifies ignoring most
// services (Section IV-B2). (The asymptotic O(1/ln^gamma N) decay only
// becomes visible at sizes far beyond these presets; at laptop scale
// the share converges to a small constant.)
func Lemma1(cfg Config) ([]Lemma1Point, error) {
	cfg = cfg.withDefaults()
	header(cfg.Out, "Lemma 1", "Non-master affinity share vs cluster size under the production alpha")
	row(cfg.Out, "N", "alpha", "masters", "tail-share")
	sizes := []int{200, 400, 800, 1600, 3200}
	var out []Lemma1Point
	for _, n := range sizes {
		ps := workload.Preset{
			Name:             fmt.Sprintf("L%d", n),
			Services:         n,
			Containers:       n * 5,
			Machines:         n / 5,
			Beta:             1.6,
			AffinityFraction: 0.6,
			Zones:            1,
			Utilization:      0.55,
			Seed:             cfg.Seed + int64(n),
		}
		c, err := getCluster(ps)
		if err != nil {
			return nil, err
		}
		g := c.Problem.Affinity
		alpha := partition.Options{}.Alpha(n)
		quota := int(alpha*float64(n) + 0.999)
		rank := g.RankByTotalAffinity()
		inMaster := make(map[int]bool, quota)
		for i := 0; i < quota && i < len(rank); i++ {
			inMaster[rank[i]] = true
		}
		var tail float64
		for _, e := range g.Edges() {
			if !inMaster[e.U] || !inMaster[e.V] {
				tail += e.Weight
			}
		}
		total := g.TotalWeight()
		pt := Lemma1Point{N: n, Alpha: alpha, MasterCount: quota, TailShare: tail / total}
		out = append(out, pt)
		row(cfg.Out, pt.N, pt.Alpha, pt.MasterCount, pt.TailShare)
	}
	return out, nil
}

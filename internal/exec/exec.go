// Package exec is the execution layer that closes the plan→execute
// gap: it drives a migrate.Plan step-by-step against a live cluster
// through a pluggable Fabric, enforcing the per-service SLA floor as a
// runtime invariant rather than a planning-time one.
//
// The paper's output is an executable migration path (Algorithm 2,
// §IV-E); this package is what runs it in the regime where static
// plans break — moves fail, machines die mid-migration, and churn
// arrives between steps. Failed commands get per-command timeouts and
// bounded exponential backoff with jitter; any divergence between the
// believed state and the plan (a machine death, a command that
// exhausted its retries, a step the runtime invariant refuses) stops
// the current plan at a step boundary, checkpoints progress, feeds the
// divergence into the incremental engine (incr.DrainMachine events plus
// the believed assignment), re-plans the remainder, and resumes. Every
// outcome — retries, backoff, escalations, SLA-floor headroom — is
// surfaced through internal/obs and the final Report.
//
// The executor's state machine, per plan step:
//
//	ADMIT  → serially re-validate each command against the believed
//	         state (presence, capacity, machine liveness, SLA floor),
//	         reserving its effect; invalid commands are skipped and
//	         mark the plan diverged.
//	APPLY  → dispatch admitted commands to the fabric in parallel
//	         (bounded), each with timeout + retry/backoff.
//	SETTLE → commit successes, roll back reservations of failures,
//	         write off machines reported dead.
//	       → no divergence: next step. Divergence: checkpoint and
//	         escalate (re-plan via incr.Engine), up to MaxReplans,
//	         then resume with the fresh plan. Context cancellation
//	         terminates between commands with the report so far.
//
// Execution writes through the lifetime event log: the engine commits
// its plan as a proposal (incr.Engine.Propose), and the executor
// appends MoveStarted at admission, MoveApplied at settle, MoveFailed
// on skips and reverts, and MachineDied on write-offs. The log's folded
// state therefore tracks the executor's APPLIED view move by move, and
// reserved-vs-applied reduces to two cursors into the log
// (Report.ReservedSeq / Report.AppliedSeq). Checkpoint/resume in a
// fresh process is "replay the log to the checkpoint's Offset"
// (lifetime.Replay + incr.FromLog); the Checkpoint JSON remains as a
// compact self-contained alternative.
package exec

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/incr"
	"github.com/cloudsched/rasa/internal/lifetime"
	"github.com/cloudsched/rasa/internal/migrate"
	"github.com/cloudsched/rasa/internal/obs"
	"github.com/cloudsched/rasa/internal/snapshot"
)

// Options tune an Executor.
type Options struct {
	// MinAlive is the SLA floor fraction enforced at runtime (default
	// 0.75, Section IV-E). The executor never issues a delete that
	// would take a service below floor(MinAlive * replicas) — clamped,
	// like migrate.Compute, to the plan's entry and target placements —
	// even when a (diverged) plan asks for it.
	MinAlive float64
	// MaxAttempts bounds tries per command, first attempt included
	// (default 4).
	MaxAttempts int
	// CommandTimeout bounds each fabric Apply attempt (default 2s).
	CommandTimeout time.Duration
	// BaseBackoff and MaxBackoff bound the exponential backoff between
	// attempts (defaults 10ms and 1s); Jitter spreads each delay by
	// ±Jitter (default 0.25).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	Jitter      float64
	// MaxReplans bounds checkpoint-and-re-plan escalations before the
	// run aborts (default 3; negative means none allowed).
	MaxReplans int
	// Parallelism bounds concurrent fabric commands within one plan
	// step (default 4).
	Parallelism int
	// Seed drives the backoff jitter (0 means 1).
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.MinAlive == 0 {
		o.MinAlive = 0.75
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.CommandTimeout <= 0 {
		o.CommandTimeout = 2 * time.Second
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 10 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = time.Second
	}
	if o.Jitter == 0 {
		o.Jitter = 0.25
	}
	if o.MaxReplans == 0 {
		o.MaxReplans = 3
	} else if o.MaxReplans < 0 {
		o.MaxReplans = 0
	}
	if o.Parallelism <= 0 {
		o.Parallelism = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Outcome is the terminal state of an execution run.
type Outcome string

// Terminal states. A run that re-planned and then finished reports
// OutcomeCompleted with Report.Replans > 0.
const (
	OutcomeCompleted Outcome = "completed"
	OutcomeAborted   Outcome = "aborted"
	OutcomeCancelled Outcome = "cancelled"
)

// Checkpoint snapshots execution progress at a divergence: enough to
// audit the escalation and to Resume a run in a fresh process.
type Checkpoint struct {
	// Step is the index of the first step of the diverged plan that was
	// NOT fully executed; Executed counts commands applied so far across
	// the whole run.
	Step     int    `json:"step"`
	Executed int    `json:"executed"`
	Reason   string `json:"reason"`
	// Offset is the event-log head at the checkpoint: replaying the log
	// to this sequence number reconstructs the believed state below.
	Offset uint64 `json:"offset,omitempty"`
	// Services/Machines are the believed state's shape, Placements its
	// non-zero cells; DeadMachines lists every machine written off so
	// far.
	Services     int                      `json:"services"`
	Machines     int                      `json:"machines"`
	DeadMachines []int                    `json:"deadMachines,omitempty"`
	Placements   []snapshot.PlacementJSON `json:"placements"`
}

// Report is the final account of an execution run.
type Report struct {
	Outcome Outcome
	// Err describes why an aborted run gave up.
	Err string
	// PlannedMoves is the original plan's move count; Steps counts plan
	// steps fully executed across the original plan and every re-plan.
	PlannedMoves int
	Steps        int
	// Commands counts commands the executor processed (executed +
	// failed + skipped); Executed succeeded on the fabric; Failed
	// exhausted their attempts or hit a dead machine; Skipped were
	// refused at admission (absent container, dead machine, capacity,
	// or the SLA floor).
	Commands int
	Executed int
	Failed   int
	Skipped  int
	// Retries counts re-attempts after transient failures;
	// BackoffTotal is the summed backoff sleep.
	Retries      int
	BackoffTotal time.Duration
	// Replans counts checkpoint-and-re-plan escalations;
	// ReplanReasons has one entry per escalation (first divergence of
	// the diverged step); Checkpoints snapshots each.
	Replans       int
	ReplanReasons []string
	Checkpoints   []Checkpoint
	// DeadMachines lists machines that died during the run.
	DeadMachines []int
	// FloorViolations counts executor-issued deletes that landed below
	// the SLA floor — zero by construction; exported so tests and CI
	// can assert the invariant. EnvFloorDips counts services pushed
	// below their floor by machine deaths (the environment's doing, not
	// the executor's). MinHeadroom is the tightest believed alive−floor
	// slack observed at any delete admission, or -1 when the run issued
	// no deletes.
	FloorViolations int
	EnvFloorDips    int
	MinHeadroom     int
	// WastedMoves is Executed minus the minimal command count that
	// transitions the entry state to the final one — work spent on
	// moves that faults then undid or re-routed.
	WastedMoves int
	// PlannedGain is the gained affinity of the original plan's target;
	// AchievedGain is that of the final believed state. NormPlanned and
	// NormAchieved divide by the affinity graph's total weight.
	PlannedGain  float64
	AchievedGain float64
	NormPlanned  float64
	NormAchieved float64
	// ReservedSeq and AppliedSeq are the executor's two cursors into the
	// lifetime event log: the newest MoveStarted it appended (the
	// reservation frontier) and the newest state-bearing actuation
	// (MoveApplied or MachineDied — the applied frontier). At every
	// settle boundary the log's folded assignment equals the believed
	// state.
	ReservedSeq uint64
	AppliedSeq  uint64
	// Final is the believed final assignment (matches the fabric's
	// state up to machine deaths the fabric has not yet reported).
	Final   *cluster.Assignment
	Elapsed time.Duration
}

// Executor drives migration plans against a Fabric, escalating
// divergence into eng re-plans. One executor runs one plan at a time
// (Execute/Run are not safe for concurrent use on the same Executor).
type Executor struct {
	eng  *incr.Engine
	fab  Fabric
	opts Options
	m    *metrics

	mu  sync.Mutex
	rng *rand.Rand
}

// New builds an executor over an engine and a fabric. reg may be nil
// (no metrics).
func New(eng *incr.Engine, fab Fabric, opts Options, reg *obs.Registry) *Executor {
	opts = opts.withDefaults()
	return &Executor{
		eng:  eng,
		fab:  fab,
		opts: opts,
		m:    newMetrics(reg),
		rng:  rand.New(rand.NewSource(opts.Seed)),
	}
}

// Run is the complete plan→execute loop: it asks the engine for a
// proposal over its current state (the state stays put; the plan is
// committed to the log as Applied=false), then executes the resulting
// plan, converging the log on the target exactly as far as the fabric
// actually gets. A noop proposal (nothing dirty, nothing to move)
// completes immediately.
func (e *Executor) Run(ctx context.Context) (*Report, error) {
	st := e.eng.State()
	from := st.Assignment().Clone()
	res, err := e.eng.Propose(ctx)
	if err != nil {
		return nil, err
	}
	if res.Plan == nil {
		if res.Moves > 0 {
			return nil, fmt.Errorf("exec: engine proposed %d moves without a plan (SkipMigration engine, or planning was cut off)", res.Moves)
		}
		rep := &Report{Outcome: OutcomeCompleted, Final: from, MinHeadroom: -1}
		e.finishGains(rep, from)
		e.m.run(rep)
		return rep, nil
	}
	return e.Execute(ctx, from, res.Plan)
}

// Execute runs plan from the given entry assignment. The engine's
// state must equal `from`: the plan transitions `from` to a proposed
// target (the contract Engine.Propose establishes). The executor
// appends every actuation to the engine's event log as it settles, so
// on return the log's folded state IS the believed final state — no
// separate sync step.
func (e *Executor) Execute(ctx context.Context, from *cluster.Assignment, plan *migrate.Plan) (*Report, error) {
	start := time.Now()
	st := e.eng.State()
	p := st.Problem()

	ex := &execState{
		p:    p,
		log:  st.Log(),
		cur:  from.Clone(),
		dead: make(map[int]bool),
		rep: &Report{
			PlannedMoves: plan.Moves,
			MinHeadroom:  -1,
		},
	}
	ex.used = ex.cur.UsedResources(p)
	entry := from.Clone()
	planned := replayPlan(from, plan)

	curPlan := plan
	for {
		ex.setFloors(curPlan, e.opts.MinAlive)
		replanAt, reason, err := e.runSteps(ctx, ex, curPlan)
		if err != nil {
			// Context cancellation: terminate with the report so far.
			ex.rep.Outcome = OutcomeCancelled
			ex.rep.Err = err.Error()
			break
		}
		if replanAt < 0 {
			ex.rep.Outcome = OutcomeCompleted
			break
		}
		cp := ex.checkpoint(replanAt, reason)
		ex.rep.Checkpoints = append(ex.rep.Checkpoints, cp)
		ex.rep.ReplanReasons = append(ex.rep.ReplanReasons, reason)
		if ex.rep.Replans >= e.opts.MaxReplans {
			ex.rep.Outcome = OutcomeAborted
			ex.rep.Err = fmt.Sprintf("exec: re-plan limit (%d) exhausted; last divergence: %s", e.opts.MaxReplans, reason)
			break
		}
		newPlan, rerr := e.replan(ctx, ex, reason)
		if rerr != nil {
			ex.rep.Outcome = OutcomeAborted
			ex.rep.Err = "exec: re-plan failed: " + rerr.Error()
			break
		}
		ex.rep.Replans++
		e.m.replan(reason)
		if newPlan == nil || len(newPlan.Steps) == 0 {
			// The believed state already is (or equals) the re-planned
			// target: nothing left to move.
			ex.rep.Outcome = OutcomeCompleted
			break
		}
		curPlan = newPlan
	}

	e.finalizeLog(ex)
	rep := ex.rep
	rep.Final = ex.cur
	rep.WastedMoves = rep.Executed - minimalCommands(entry, ex.cur)
	if rep.WastedMoves < 0 {
		rep.WastedMoves = 0
	}
	if planned != nil {
		rep.PlannedGain = planned.GainedAffinity(p)
	}
	e.finishGains(rep, ex.cur)
	rep.Elapsed = time.Since(start)
	e.m.run(rep)
	return rep, nil
}

// Resume restarts an interrupted run from a checkpoint in a (possibly
// fresh) process: the believed assignment is restored into the engine,
// the checkpoint's dead machines are drained, and the remainder is
// re-planned and executed.
func (e *Executor) Resume(ctx context.Context, cp *Checkpoint) (*Report, error) {
	st := e.eng.State()
	p := st.Problem()
	if cp.Services != p.N() || cp.Machines != p.M() {
		return nil, fmt.Errorf("exec: checkpoint shape %dx%d does not match cluster %dx%d",
			cp.Services, cp.Machines, p.N(), p.M())
	}
	a := cluster.NewAssignment(cp.Services, cp.Machines)
	for _, pl := range cp.Placements {
		if pl.Service < 0 || pl.Service >= cp.Services || pl.Machine < 0 || pl.Machine >= cp.Machines || pl.Count < 0 {
			return nil, fmt.Errorf("exec: invalid checkpoint placement %+v", pl)
		}
		a.Set(pl.Service, pl.Machine, pl.Count)
	}
	if err := st.SetAssignment(a.Clone()); err != nil {
		return nil, err
	}
	for _, m := range cp.DeadMachines {
		if _, err := st.Apply(incr.DrainMachine{Machine: m}); err != nil {
			return nil, fmt.Errorf("exec: draining checkpointed dead machine %d: %w", m, err)
		}
	}
	return e.Run(ctx)
}

// replan asks the engine for a fresh proposal from the believed state.
// No state hand-off is needed: every death and settled move is already
// in the event log, so the engine's folded state equals ex.cur at this
// step boundary — the appended ReplanRequested both records the
// divergence and tells the engine's fold to re-validate everything.
// The returned plan transitions the believed state to the new proposed
// target.
func (e *Executor) replan(ctx context.Context, ex *execState, reason string) (*migrate.Plan, error) {
	ex.logEv(lifetime.ReplanRequested{Reason: reason})
	res, err := e.eng.Propose(ctx)
	if err != nil {
		return nil, err
	}
	if res.Plan == nil && res.Moves > 0 {
		return nil, fmt.Errorf("engine proposed %d moves without a plan (SkipMigration engine, or planning was cut off)", res.Moves)
	}
	return res.Plan, nil
}

// finalizeLog closes out the run's event-log bookkeeping. A run that
// did not complete leaves the proposed plan partially actuated; the
// appended ReplanRequested makes the next planner pass re-validate
// everything. The log's folded assignment must equal the believed
// final state — the executor logged every state-bearing actuation —
// so any mismatch is surfaced as a run error rather than papered over.
func (e *Executor) finalizeLog(ex *execState) {
	if ex.rep.Outcome != OutcomeCompleted {
		ex.logEv(lifetime.ReplanRequested{Reason: "terminal: " + string(ex.rep.Outcome)})
	}
	if !migrate.Equal(e.eng.State().Assignment(), ex.cur) {
		ex.rep.appendErr("exec: event log diverged from believed state")
	}
}

func (r *Report) appendErr(msg string) {
	if r.Err != "" {
		r.Err += "; "
	}
	r.Err += msg
}

func (e *Executor) finishGains(rep *Report, final *cluster.Assignment) {
	p := e.eng.State().Problem()
	rep.AchievedGain = final.GainedAffinity(p)
	if total := p.Affinity.TotalWeight(); total > 0 {
		rep.NormAchieved = rep.AchievedGain / total
		rep.NormPlanned = rep.PlannedGain / total
	}
	e.m.headroom(rep.MinHeadroom)
}

// runSteps executes plan steps until the plan completes (-1), the
// believed state diverges (the index of the first unexecuted step is
// returned with the first divergence reason), or ctx is cancelled
// (error).
func (e *Executor) runSteps(ctx context.Context, ex *execState, plan *migrate.Plan) (int, string, error) {
	for si, step := range plan.Steps {
		if err := ctx.Err(); err != nil {
			return si, "", err
		}
		diverged, reason, err := e.runStep(ctx, ex, step)
		if err != nil {
			return si, "", err
		}
		if diverged {
			return si + 1, reason, nil
		}
		ex.rep.Steps++
	}
	return -1, "", nil
}

// cmdResult is one dispatched command's outcome.
type cmdResult struct {
	cmd     migrate.Command
	err     error
	retries int
	backoff time.Duration
}

// runStep admits, dispatches, and settles one plan step. Returns
// whether the believed state diverged from the plan (and the first
// divergence reason), or ctx's error.
//
// Commands dispatch make-before-break: the step's creates run first,
// its deletes only after every create has settled. Plan steps are only
// floor-safe applied in order (a delete may rely on the slack a create
// in the same step restores), and the executor dispatches out of
// order — running the creates to completion first means no
// intermediate state can dip below what the step's final state
// guarantees. The fabric mirror enforces no capacity, so the transient
// surge a create-first order implies is acceptable; a capacity-checked
// fabric would need surge headroom, as rolling upgrades do.
func (e *Executor) runStep(ctx context.Context, ex *execState, step migrate.Step) (bool, string, error) {
	diverged := false
	reason := ""
	note := func(r string) {
		diverged = true
		if reason == "" {
			reason = r
		}
	}

	// ADMIT: serial re-validation against the believed state, reserving
	// each admitted command's effect so parallel siblings cannot jointly
	// breach a floor or a capacity.
	var creates, deletes []migrate.Command
	for _, c := range step {
		if why, ok := ex.admit(c); !ok {
			ex.rep.Commands++
			ex.rep.Skipped++
			e.m.command(c.Op, "skipped")
			note(fmt.Sprintf("skipped %v: %s", c, why))
			continue
		}
		if c.Op == migrate.Create {
			creates = append(creates, c)
		} else {
			deletes = append(deletes, c)
		}
	}

	halted, err := e.runWave(ctx, ex, creates, note)
	if err != nil {
		e.skipPending(ex, deletes)
		return false, "", err
	}
	if halted {
		e.skipPending(ex, deletes)
		return diverged, reason, nil
	}

	// Re-validate the delete wave against the settled state: a failed
	// create leaves a service short of the slack its deletes were
	// admitted with, so deletes are dropped until the reserved state
	// clears the floor again.
	kept := deletes[:0]
	for _, c := range deletes {
		if ex.alive[c.Service] < ex.floor[c.Service] {
			ex.revert(c, "floor-slack-lost")
			ex.rep.Commands++
			ex.rep.Skipped++
			e.m.command(c.Op, "skipped")
			note(fmt.Sprintf("skipped %v: SLA floor slack lost to create failures", c))
			continue
		}
		kept = append(kept, c)
	}
	if _, err := e.runWave(ctx, ex, kept, note); err != nil {
		return false, "", err
	}
	return diverged, reason, nil
}

// runWave dispatches one step's wave with bounded parallelism,
// settling results as they complete. New commands launch only from the
// settle loop, so a machine death surfaced by one result halts the
// wave before the next command dispatches (with Parallelism 1 the wave
// is fully serial and the halt is immediate). Pending commands of a
// halted wave have their reservations released and count as skipped;
// the returned flag tells the caller to do the same with later waves.
func (e *Executor) runWave(ctx context.Context, ex *execState, cmds []migrate.Command, note func(string)) (bool, error) {
	par := e.opts.Parallelism
	if par < 1 {
		par = 1
	}
	results := make(chan cmdResult)
	next, outstanding := 0, 0
	halted := false
	var cancelled error
	for {
		for !halted && cancelled == nil && outstanding < par && next < len(cmds) {
			c := cmds[next]
			next++
			outstanding++
			go func(c migrate.Command) {
				retries, backoff, err := e.applyWithRetry(ctx, c)
				results <- cmdResult{cmd: c, err: err, retries: retries, backoff: backoff}
			}(c)
		}
		if outstanding == 0 {
			break
		}
		r := <-results
		outstanding--

		ex.rep.Commands++
		ex.rep.Retries += r.retries
		ex.rep.BackoffTotal += r.backoff
		e.m.retries(r.retries, r.backoff)
		var down *MachineDownError
		switch {
		case r.err == nil:
			ex.settle(r.cmd)
			ex.rep.Executed++
			e.m.command(r.cmd.Op, "ok")
		case errors.As(r.err, &down):
			ex.markDead(down.Machine)
			ex.revert(r.cmd, "machine-down")
			ex.rep.Failed++
			e.m.command(r.cmd.Op, "machine-down")
			note(fmt.Sprintf("%v: machine %d died", r.cmd, down.Machine))
			halted = true
		case errors.Is(r.err, context.Canceled) || errors.Is(r.err, context.DeadlineExceeded):
			ex.revert(r.cmd, "cancelled")
			ex.rep.Failed++
			e.m.command(r.cmd.Op, "cancelled")
			if ctx.Err() != nil {
				cancelled = ctx.Err()
			} else {
				note(fmt.Sprintf("%v: %v", r.cmd, r.err))
			}
		default:
			ex.revert(r.cmd, "failed")
			ex.rep.Failed++
			e.m.command(r.cmd.Op, "failed")
			note(fmt.Sprintf("%v failed after %d attempts: %v", r.cmd, e.opts.MaxAttempts, r.err))
		}
		// Out-of-band death watch: write off machines the fabric knows
		// are dead even when no command targeted them. Without it the
		// executor would keep deleting against a believed state that
		// still counts the dead machine's containers.
		if e.syncFabricDeaths(ex, note) {
			halted = true
		}
	}
	if cancelled != nil {
		e.skipPending(ex, cmds[next:])
		return halted, cancelled
	}
	if halted {
		e.skipPending(ex, cmds[next:])
	}
	return halted, nil
}

// skipPending releases the reservations of admitted commands that were
// never dispatched (their wave was halted or cancelled) and counts
// them as skipped.
func (e *Executor) skipPending(ex *execState, cmds []migrate.Command) {
	for _, c := range cmds {
		ex.revert(c, "skipped")
		ex.rep.Commands++
		ex.rep.Skipped++
		e.m.command(c.Op, "skipped")
	}
}

// syncFabricDeaths folds machine deaths the fabric reports out of band
// into the believed state; returns whether any new death was seen.
func (e *Executor) syncFabricDeaths(ex *execState, note func(string)) bool {
	dr, ok := e.fab.(DeadReporter)
	if !ok {
		return false
	}
	any := false
	for _, m := range dr.DeadMachines() {
		if !ex.dead[m] {
			ex.markDead(m)
			note(fmt.Sprintf("machine %d died", m))
			any = true
		}
	}
	return any
}

// applyWithRetry drives one command through the fabric: per-attempt
// timeout, bounded exponential backoff with jitter between attempts.
// Machine-down errors and context cancellation return immediately.
func (e *Executor) applyWithRetry(ctx context.Context, cmd migrate.Command) (retries int, backoff time.Duration, err error) {
	for attempt := 1; ; attempt++ {
		cctx, cancel := context.WithTimeout(ctx, e.opts.CommandTimeout)
		err = e.fab.Apply(cctx, cmd)
		cancel()
		if err == nil {
			return
		}
		var down *MachineDownError
		if errors.As(err, &down) {
			return
		}
		if ctx.Err() != nil {
			err = ctx.Err()
			return
		}
		if attempt >= e.opts.MaxAttempts {
			return
		}
		d := e.backoffDelay(attempt)
		retries++
		backoff += d
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			err = ctx.Err()
			return
		}
	}
}

// backoffDelay is BaseBackoff * 2^(attempt-1), capped at MaxBackoff,
// spread by ±Jitter.
func (e *Executor) backoffDelay(attempt int) time.Duration {
	d := e.opts.BaseBackoff
	for i := 1; i < attempt && d < e.opts.MaxBackoff; i++ {
		d *= 2
	}
	if d > e.opts.MaxBackoff {
		d = e.opts.MaxBackoff
	}
	e.mu.Lock()
	j := 1 + e.opts.Jitter*(2*e.rng.Float64()-1)
	e.mu.Unlock()
	if j < 0 {
		j = 0
	}
	return time.Duration(float64(d) * j)
}

// execState is the executor's believed cluster state during one run.
// It keeps two views: the RESERVED view (cur/alive/used) includes the
// effect of every admitted command, settled or not, and is what
// admission checks against; the APPLIED view (applied/appliedAlive)
// counts only settled successes and is therefore what an external
// observer of the fabric sees. Floors re-clamp on machine deaths
// against the applied view — clamping against the reserved view would
// let the executor's own pending deletes masquerade as environmental
// damage and erode the floor below what the environment caused.
type execState struct {
	p *cluster.Problem
	// log is the lifetime event log shared with the engine. The executor
	// appends its actuation events here; the log's folded state tracks
	// the applied view, making the engine's next fold see every death
	// and settled move without a separate hand-off.
	log   *lifetime.Log
	cur   *cluster.Assignment
	used  []cluster.Resources
	alive []int
	floor []int

	applied      *cluster.Assignment
	appliedAlive []int
	// graceDips[s] counts deletes of s that were already in flight when
	// a machine death re-clamped the floor: their sub-floor landings are
	// the death's collateral, not executor-issued violations.
	graceDips []int

	// dead holds every machine written off (mirrored in the log as
	// MachineDied events).
	dead map[int]bool
	rep  *Report
}

// logEv appends one actuation event to the lifetime log and advances
// the report's log cursors. Append failures are surfaced on the report
// (they indicate the log and the believed state have diverged) but do
// not stop execution — the fabric action already happened.
func (ex *execState) logEv(ev lifetime.Event) {
	if _, err := ex.log.Append(ev); err != nil {
		ex.rep.appendErr("exec: log: " + err.Error())
		return
	}
	seq := ex.log.Head()
	switch ev.(type) {
	case lifetime.MoveStarted:
		ex.rep.ReservedSeq = seq
	case lifetime.MoveApplied, lifetime.MachineDied:
		ex.rep.AppliedSeq = seq
	}
}

// opString maps a migrate op onto the event log's wire vocabulary.
func opString(op migrate.Op) string {
	if op == migrate.Create {
		return lifetime.OpCreate
	}
	return lifetime.OpDelete
}

// setFloors recomputes the per-service SLA floors at a plan's entry,
// with the same clamping as migrate.Compute: the floor demands neither
// more containers than the plan's target places nor more than exist at
// entry.
func (ex *execState) setFloors(plan *migrate.Plan, minAlive float64) {
	n := ex.p.N()
	ex.alive = make([]int, n)
	target := make([]int, n)
	// At a plan boundary nothing is in flight: the reserved and applied
	// views coincide.
	ex.applied = ex.cur.Clone()
	ex.appliedAlive = make([]int, n)
	ex.graceDips = make([]int, n)
	for s := 0; s < n; s++ {
		ex.alive[s] = ex.cur.Placed(s)
		ex.appliedAlive[s] = ex.alive[s]
		target[s] = ex.alive[s]
	}
	for _, step := range plan.Steps {
		for _, c := range step {
			if c.Op == migrate.Delete {
				target[c.Service]--
			} else {
				target[c.Service]++
			}
		}
	}
	ex.floor = make([]int, n)
	for s := 0; s < n; s++ {
		f := int(minAlive * float64(ex.p.Services[s].Replicas))
		if f > target[s] {
			f = target[s]
		}
		if f > ex.alive[s] {
			f = ex.alive[s]
		}
		if f < 0 {
			f = 0
		}
		ex.floor[s] = f
	}
}

// admit re-validates one command against the believed state and, when
// valid, reserves its effect. The SLA floor check here is the runtime
// invariant: a delete that would breach the floor is refused no matter
// what the plan says.
func (ex *execState) admit(c migrate.Command) (string, bool) {
	s, m := c.Service, c.Machine
	if s < 0 || s >= ex.p.N() || m < 0 || m >= ex.p.M() {
		return "out of range", false
	}
	if ex.dead[m] {
		return "machine dead", false
	}
	req := ex.p.Services[s].Request
	switch c.Op {
	case migrate.Delete:
		if ex.cur.Get(s, m) <= 0 {
			return "container absent", false
		}
		if ex.alive[s]-1 < ex.floor[s] {
			return "SLA floor", false
		}
		ex.cur.Add(s, m, -1)
		ex.alive[s]--
		ex.used[m] = ex.used[m].Sub(req)
		if h := ex.alive[s] - ex.floor[s]; ex.rep.MinHeadroom < 0 || h < ex.rep.MinHeadroom {
			ex.rep.MinHeadroom = h
		}
	case migrate.Create:
		if !ex.p.CanHost(s, m) {
			return "not schedulable", false
		}
		if !ex.used[m].Add(req).Fits(ex.p.Machines[m].Capacity) {
			return "capacity", false
		}
		ex.cur.Add(s, m, 1)
		ex.alive[s]++
		ex.used[m] = ex.used[m].Add(req)
	default:
		return "unknown op", false
	}
	ex.logEv(lifetime.MoveStarted{Op: opString(c.Op), Service: s, Machine: m})
	return "", true
}

// settle commits a successfully applied command to the applied view
// (its reservation already holds in the reserved view). Commands
// landing on machines written off in the meantime are not counted:
// the death destroyed their effect, and markDead already zeroed the
// machine's applied row.
func (ex *execState) settle(c migrate.Command) {
	s, m := c.Service, c.Machine
	if ex.dead[m] {
		// No MoveApplied: the death destroyed the command's effect, and
		// the log already zeroed the machine via its MachineDied event.
		return
	}
	ex.logEv(lifetime.MoveApplied{Op: opString(c.Op), Service: s, Machine: m})
	switch c.Op {
	case migrate.Delete:
		ex.applied.Add(s, m, -1)
		ex.appliedAlive[s]--
		if ex.appliedAlive[s] < ex.floor[s] {
			if ex.graceDips[s] > 0 {
				// In flight when a death re-clamped the floor: the dip is
				// environmental, and the floor follows it down.
				ex.graceDips[s]--
				ex.rep.EnvFloorDips++
				ex.floor[s] = ex.appliedAlive[s]
			} else {
				// Cannot happen: admission reserved above the floor and the
				// delete wave runs after its step's creates settled. Counted,
				// never silently ignored.
				ex.rep.FloorViolations++
			}
		}
	case migrate.Create:
		ex.applied.Add(s, m, 1)
		ex.appliedAlive[s]++
	}
}

// revert rolls back a reservation whose command did not take effect,
// logging a MoveFailed with the reason (which marks the command's
// service dirty in the engine's fold — it will not reach its planned
// placement). Reservations on machines that died in the meantime are
// not rolled back: markDead already wrote the whole machine off, and
// the fabric's copy of the container is gone either way.
func (ex *execState) revert(c migrate.Command, reason string) {
	ex.logEv(lifetime.MoveFailed{Op: opString(c.Op), Service: c.Service, Machine: c.Machine, Reason: reason})
	if ex.dead[c.Machine] {
		return
	}
	s, m := c.Service, c.Machine
	req := ex.p.Services[s].Request
	switch c.Op {
	case migrate.Delete:
		ex.cur.Add(s, m, 1)
		ex.alive[s]++
		ex.used[m] = ex.used[m].Add(req)
	case migrate.Create:
		ex.cur.Add(s, m, -1)
		ex.alive[s]--
		ex.used[m] = ex.used[m].Sub(req)
	}
}

// markDead writes a machine off the believed state: its containers are
// gone (the fabric's mirror dropped them the same way), its resources
// are unusable, and the engine will be told via a DrainMachine event
// at the next re-plan or state sync. Floors are re-clamped: a death
// pushing a service below its floor is the environment breaking the
// SLA, and the executor must remain able to act from the degraded
// state.
func (ex *execState) markDead(m int) {
	if ex.dead[m] {
		return
	}
	// Log first: MachineDied zeroes the machine's row in the log's
	// folded state exactly as the local bookkeeping below zeroes the
	// believed views, keeping the two in lockstep.
	ex.logEv(lifetime.MachineDied{Machine: m})
	ex.dead[m] = true
	ex.rep.DeadMachines = append(ex.rep.DeadMachines, m)
	for s := 0; s < ex.p.N(); s++ {
		if c := ex.cur.Get(s, m); c > 0 {
			ex.cur.Set(s, m, 0)
			ex.alive[s] -= c
		}
		// The floor re-clamp follows the applied view: only containers
		// that actually existed (settled) count as environmental loss.
		if c := ex.applied.Get(s, m); c > 0 {
			ex.applied.Set(s, m, 0)
			ex.appliedAlive[s] -= c
			if ex.appliedAlive[s] < ex.floor[s] {
				ex.rep.EnvFloorDips++
				ex.floor[s] = ex.appliedAlive[s]
			}
		}
		// Deletes still in flight at this moment were dispatched against
		// the pre-death floor; grant them grace for sub-floor landings.
		if g := ex.appliedAlive[s] - ex.alive[s]; g > 0 {
			ex.graceDips[s] += g
		}
	}
	for r := range ex.used[m] {
		ex.used[m][r] = 0
	}
}

// checkpoint snapshots the believed state at a divergence.
func (ex *execState) checkpoint(step int, reason string) Checkpoint {
	cp := Checkpoint{
		Step:         step,
		Executed:     ex.rep.Executed,
		Reason:       reason,
		Offset:       ex.log.Head(),
		Services:     ex.p.N(),
		Machines:     ex.p.M(),
		DeadMachines: append([]int(nil), ex.rep.DeadMachines...),
	}
	ex.cur.EachPlacement(func(s, m, count int) {
		cp.Placements = append(cp.Placements, snapshot.PlacementJSON{Service: s, Machine: m, Count: count})
	})
	return cp
}

// replayPlan applies a plan to a copy of `from` without validation,
// returning the plan's intended target state (nil when the plan is not
// replayable from `from` — diverged input).
func replayPlan(from *cluster.Assignment, plan *migrate.Plan) *cluster.Assignment {
	out := from.Clone()
	for _, step := range plan.Steps {
		for _, c := range step {
			switch c.Op {
			case migrate.Delete:
				if out.Get(c.Service, c.Machine) <= 0 {
					return nil
				}
				out.Add(c.Service, c.Machine, -1)
			case migrate.Create:
				out.Add(c.Service, c.Machine, 1)
			}
		}
	}
	return out
}

// minimalCommands is the smallest number of fabric commands that
// transition `from` to `to`: one delete per surplus container plus one
// create per deficit container, cell by cell.
func minimalCommands(from, to *cluster.Assignment) int {
	if from.N != to.N || from.M != to.M {
		return 0
	}
	total := 0
	for s := 0; s < from.N; s++ {
		seen := make(map[int]bool)
		for _, m := range from.MachinesOf(s) {
			seen[m] = true
			d := from.Get(s, m) - to.Get(s, m)
			if d < 0 {
				d = -d
			}
			total += d
		}
		for _, m := range to.MachinesOf(s) {
			if !seen[m] {
				total += to.Get(s, m)
			}
		}
	}
	return total
}

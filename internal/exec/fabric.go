package exec

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/migrate"
)

// Fabric is the actuation interface between the executor and the
// cluster: it applies exactly one migration command (delete or create
// one container), possibly slowly, possibly unsuccessfully.
//
// The contract is atomic per command: when Apply returns nil the
// command took full effect; when it returns any error (including a
// context error from a per-command timeout) the command had no effect.
// There is no partial application, so the executor's believed state
// only ever diverges from the fabric's by whole machine deaths — which
// Apply reports with *MachineDownError.
//
// Apply must be safe for concurrent use: the executor dispatches the
// commands of one plan step in parallel.
type Fabric interface {
	Apply(ctx context.Context, cmd migrate.Command) error
}

// DeadReporter is optionally implemented by fabrics that can report
// machine deaths out of band (a real fabric would surface its node
// health watch here). The executor polls it after every settled
// command so a death is written off as soon as the environment knows
// of it, not only when a command happens to target the dead machine —
// the lag would otherwise let deletes land on a believed state that
// still counts the dead machine's containers as alive.
type DeadReporter interface {
	DeadMachines() []int
}

// ErrApplyFailed is the transient per-command fault injected by
// FaultFabric: the command did not take effect but may succeed on
// retry. Real fabrics would wrap kubelet/agent RPC errors the same way.
var ErrApplyFailed = errors.New("exec: command application failed")

// MachineDownError reports that a command targeted a machine that has
// died. Unlike ErrApplyFailed it is not retryable: the executor marks
// the machine dead, writes off every container it hosted, and
// escalates to a re-plan. Detect it with errors.As.
type MachineDownError struct {
	Machine int
}

func (e *MachineDownError) Error() string {
	return fmt.Sprintf("exec: machine %d is down", e.Machine)
}

// InstantFabric applies every command immediately and successfully
// against an in-memory mirror of the cluster. It is the zero-fault
// actuator: prodsim uses it to execute plans move-by-move instead of
// adopting target assignments wholesale, and tests use its mirror as
// the ground truth the executor's believed state must match.
type InstantFabric struct {
	mu  sync.Mutex
	cur *cluster.Assignment
}

// NewInstantFabric mirrors the given starting assignment (cloned; the
// caller's copy is not touched).
func NewInstantFabric(start *cluster.Assignment) *InstantFabric {
	return &InstantFabric{cur: start.Clone()}
}

// Apply implements Fabric. Deleting an absent container fails: the
// caller's view of the cluster has diverged and retrying cannot help.
func (f *InstantFabric) Apply(_ context.Context, cmd migrate.Command) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return applyToMirror(f.cur, cmd)
}

// Assignment returns a copy of the fabric's current state.
func (f *InstantFabric) Assignment() *cluster.Assignment {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cur.Clone()
}

// MachineDeath schedules a machine to die once the fabric has
// successfully applied AfterCommands commands — "mid-plan" is expressed
// as a command count so fault scenarios replay deterministically.
type MachineDeath struct {
	Machine       int
	AfterCommands int
}

// FaultConfig tunes a FaultFabric.
type FaultConfig struct {
	// FailureProb is the per-attempt probability that Apply fails with
	// ErrApplyFailed (no effect, retryable).
	FailureProb float64
	// Latency is the mean apply latency; each attempt sleeps
	// Latency * U[1-LatencyJitter, 1+LatencyJitter). Zero means instant.
	Latency       time.Duration
	LatencyJitter float64
	// Deaths schedules machine-death events.
	Deaths []MachineDeath
	// Seed makes the fault sequence reproducible (0 means seed 1).
	Seed int64
}

// FaultFabric is the fault-injecting actuator: configurable transient
// step-failure probability, a latency distribution, and scheduled
// machine deaths. Like InstantFabric it keeps an in-memory mirror that
// is the ground truth of what actually happened on the "cluster".
type FaultFabric struct {
	cfg FaultConfig

	mu      sync.Mutex
	cur     *cluster.Assignment
	rng     *rand.Rand
	applied int
	dead    map[int]bool
}

// NewFaultFabric mirrors the starting assignment (cloned) and arms the
// fault schedule.
func NewFaultFabric(start *cluster.Assignment, cfg FaultConfig) *FaultFabric {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &FaultFabric{
		cfg:  cfg,
		cur:  start.Clone(),
		rng:  rand.New(rand.NewSource(seed)),
		dead: make(map[int]bool),
	}
}

// Apply implements Fabric: sleep the sampled latency, then fail with
// the configured probability, report *MachineDownError for dead
// machines, and otherwise commit the command to the mirror. A context
// cancelled mid-latency leaves the mirror untouched (the atomic
// no-effect contract).
func (f *FaultFabric) Apply(ctx context.Context, cmd migrate.Command) error {
	f.mu.Lock()
	f.fireDeaths()
	if f.dead[cmd.Machine] {
		f.mu.Unlock()
		return &MachineDownError{Machine: cmd.Machine}
	}
	var delay time.Duration
	if f.cfg.Latency > 0 {
		jitter := 1.0
		if f.cfg.LatencyJitter > 0 {
			jitter = 1 + f.cfg.LatencyJitter*(2*f.rng.Float64()-1)
		}
		delay = time.Duration(float64(f.cfg.Latency) * jitter)
	}
	fail := f.cfg.FailureProb > 0 && f.rng.Float64() < f.cfg.FailureProb
	f.mu.Unlock()

	if delay > 0 {
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if fail {
		return ErrApplyFailed
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	// A concurrent command may have killed this machine during the
	// latency window.
	if f.dead[cmd.Machine] {
		return &MachineDownError{Machine: cmd.Machine}
	}
	if err := applyToMirror(f.cur, cmd); err != nil {
		return err
	}
	f.applied++
	f.fireDeaths()
	return nil
}

// fireDeaths triggers every scheduled death whose command count has
// been reached: the machine's containers vanish from the mirror and
// all future commands against it fail. Called with f.mu held.
func (f *FaultFabric) fireDeaths() {
	for _, d := range f.cfg.Deaths {
		if f.dead[d.Machine] || f.applied < d.AfterCommands {
			continue
		}
		f.dead[d.Machine] = true
		for s := 0; s < f.cur.N; s++ {
			f.cur.Set(s, d.Machine, 0)
		}
	}
}

// Assignment returns a copy of the fabric's current state.
func (f *FaultFabric) Assignment() *cluster.Assignment {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cur.Clone()
}

// DeadMachines returns the machines that have died so far, ascending.
func (f *FaultFabric) DeadMachines() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]int, 0, len(f.dead))
	for m := range f.dead {
		out = append(out, m)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// applyToMirror commits one command to a mirror assignment.
func applyToMirror(cur *cluster.Assignment, cmd migrate.Command) error {
	switch cmd.Op {
	case migrate.Delete:
		if cur.Get(cmd.Service, cmd.Machine) <= 0 {
			return fmt.Errorf("exec: delete of absent container %v", cmd)
		}
		cur.Add(cmd.Service, cmd.Machine, -1)
	case migrate.Create:
		cur.Add(cmd.Service, cmd.Machine, 1)
	default:
		return fmt.Errorf("exec: unknown op %d", cmd.Op)
	}
	return nil
}

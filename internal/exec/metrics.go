package exec

import (
	"strings"
	"time"

	"github.com/cloudsched/rasa/internal/migrate"
	"github.com/cloudsched/rasa/internal/obs"
)

// metrics is the executor's obs surface. A nil *metrics (no registry)
// disables everything; every method is nil-safe, mirroring incr.
type metrics struct {
	commands  *obs.CounterVec
	retriesC  *obs.Counter
	backoff   *obs.Histogram
	replans   *obs.CounterVec
	runs      *obs.CounterVec
	headroomG *obs.Gauge
	floor     *obs.Counter
	deaths    *obs.Counter
	wasted    *obs.Counter
}

func newMetrics(reg *obs.Registry) *metrics {
	if reg == nil {
		return nil
	}
	return &metrics{
		commands: reg.CounterVec("rasa_exec_commands_total",
			"Migration commands processed by the executor, by op and outcome.",
			"op", "outcome"),
		retriesC: reg.Counter("rasa_exec_retries_total",
			"Command re-attempts after transient fabric failures."),
		backoff: reg.Histogram("rasa_exec_backoff_seconds",
			"Backoff sleep per command (summed over its retries).",
			[]float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}),
		replans: reg.CounterVec("rasa_exec_replans_total",
			"Checkpoint-and-re-plan escalations, by first divergence kind.",
			"reason"),
		runs: reg.CounterVec("rasa_exec_runs_total",
			"Execution runs, by terminal outcome.",
			"outcome"),
		headroomG: reg.Gauge("rasa_exec_min_sla_headroom",
			"Tightest alive-minus-floor slack observed at any delete admission in the last run (-1: no deletes)."),
		floor: reg.Counter("rasa_exec_floor_violations_total",
			"Executor-issued deletes that landed below the SLA floor (zero by construction)."),
		deaths: reg.Counter("rasa_exec_machine_deaths_total",
			"Machines written off during execution runs."),
		wasted: reg.Counter("rasa_exec_wasted_moves_total",
			"Executed commands beyond the minimal entry-to-final transition."),
	}
}

func (m *metrics) command(op migrate.Op, outcome string) {
	if m == nil {
		return
	}
	m.commands.With(op.String(), outcome).Inc()
}

func (m *metrics) retries(n int, backoff time.Duration) {
	if m == nil {
		return
	}
	m.retriesC.Add(float64(n))
	if n > 0 {
		m.backoff.Observe(backoff.Seconds())
	}
}

func (m *metrics) replan(reason string) {
	if m == nil {
		return
	}
	m.replans.With(replanKind(reason)).Inc()
}

// replanKind collapses a free-form divergence reason to a stable label.
func replanKind(reason string) string {
	switch {
	case strings.Contains(reason, "died"):
		return "machine-death"
	case strings.Contains(reason, "skipped"):
		return "admission-skip"
	default:
		return "command-failure"
	}
}

func (m *metrics) headroom(h int) {
	if m == nil {
		return
	}
	m.headroomG.Set(float64(h))
}

func (m *metrics) run(rep *Report) {
	if m == nil {
		return
	}
	m.runs.With(string(rep.Outcome)).Inc()
	m.floor.Add(float64(rep.FloorViolations))
	m.deaths.Add(float64(len(rep.DeadMachines)))
	m.wasted.Add(float64(rep.WastedMoves))
}

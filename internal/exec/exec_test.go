package exec

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/incr"
	"github.com/cloudsched/rasa/internal/lifetime"
	"github.com/cloudsched/rasa/internal/migrate"
	"github.com/cloudsched/rasa/internal/obs"
	"github.com/cloudsched/rasa/internal/snapshot"
	"github.com/cloudsched/rasa/internal/workload"
)

const testMinAlive = 0.75

// newTestEngine builds a small cluster, a state, and an engine that
// plans migrations (SkipMigration off: the executor needs plans).
func newTestEngine(t *testing.T) *incr.Engine {
	t.Helper()
	c, err := workload.Generate(workload.TrainingPresets()[0])
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	st, err := incr.NewState(c.Problem, c.Original)
	if err != nil {
		t.Fatalf("state: %v", err)
	}
	return incr.New(st, incr.Options{
		Budget:      3 * time.Second,
		MinAlive:    testMinAlive,
		Parallelism: 2,
	}, nil)
}

// fastOptions keeps retry/backoff timings test-sized.
func fastOptions() Options {
	return Options{
		MinAlive:       testMinAlive,
		MaxAttempts:    4,
		CommandTimeout: 500 * time.Millisecond,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     5 * time.Millisecond,
		MaxReplans:     5,
		Parallelism:    4,
		Seed:           1,
	}
}

// planFor asks the engine for one proposal and returns the entry
// assignment and the plan (skipping the test when the bootstrap solve
// needs no moves, which does not happen with the training presets).
// Propose leaves the engine's state at the entry assignment — the
// contract Execute requires.
func planFor(t *testing.T, eng *incr.Engine) (*cluster.Assignment, *migrate.Plan) {
	t.Helper()
	from := eng.State().Assignment().Clone()
	res, err := eng.Propose(context.Background())
	if err != nil {
		t.Fatalf("propose: %v", err)
	}
	if res.Plan == nil || len(res.Plan.Steps) == 0 {
		t.Fatalf("bootstrap produced no plan (mode=%v moves=%d)", res.Mode, res.Moves)
	}
	return from, res.Plan
}

func planCommands(p *migrate.Plan) int {
	n := 0
	for _, s := range p.Steps {
		n += len(s)
	}
	return n
}

// mostLoadedMachine picks the machine hosting the most containers.
func mostLoadedMachine(a *cluster.Assignment) int {
	best, bestC := 0, -1
	for m, scs := range a.PerMachine() {
		total := 0
		for _, sc := range scs {
			total += sc.Count
		}
		if total > bestC {
			best, bestC = m, total
		}
	}
	return best
}

// equalIgnoringDead compares two assignments with the given machines'
// rows zeroed: a death the fabric has not yet reported to the executor
// legitimately leaves the believed state ahead of the mirror there.
func equalIgnoringDead(a, b *cluster.Assignment, dead []int) bool {
	ac, bc := a.Clone(), b.Clone()
	for _, m := range dead {
		for s := 0; s < ac.N; s++ {
			ac.Set(s, m, 0)
			bc.Set(s, m, 0)
		}
	}
	return migrate.Equal(ac, bc)
}

func TestRunInstantCompletes(t *testing.T) {
	eng := newTestEngine(t)
	fab := NewInstantFabric(eng.State().Assignment())
	ex := New(eng, fab, fastOptions(), nil)

	rep, err := ex.Run(context.Background())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Outcome != OutcomeCompleted {
		t.Fatalf("outcome=%s err=%q", rep.Outcome, rep.Err)
	}
	if rep.Executed == 0 || rep.Failed != 0 || rep.Skipped != 0 || rep.Retries != 0 {
		t.Fatalf("fault-free run: executed=%d failed=%d skipped=%d retries=%d",
			rep.Executed, rep.Failed, rep.Skipped, rep.Retries)
	}
	if rep.Replans != 0 || rep.FloorViolations != 0 {
		t.Fatalf("fault-free run: replans=%d floorViolations=%d", rep.Replans, rep.FloorViolations)
	}
	if rep.WastedMoves != 0 {
		t.Fatalf("fault-free run wasted %d moves", rep.WastedMoves)
	}
	if !migrate.Equal(fab.Assignment(), rep.Final) {
		t.Fatal("fabric mirror diverged from believed final state")
	}
	if !migrate.Equal(eng.State().Assignment(), rep.Final) {
		t.Fatal("engine state diverged from believed final state")
	}
	if viol := rep.Final.Check(eng.State().Problem(), true); len(viol) > 0 {
		t.Fatalf("final state invalid: %v", viol[0])
	}
}

// TestFaultMatrix drives failure-probability × machine-death-timing
// combinations to a terminal state and checks the invariants that must
// hold in every cell: termination, zero executor-issued floor
// violations, and believed/mirror agreement up to unreported deaths.
func TestFaultMatrix(t *testing.T) {
	type deathTiming int
	const (
		noDeath deathTiming = iota
		earlyDeath
		midDeath
	)
	probs := []float64{0, 0.1, 0.3}
	timings := []deathTiming{noDeath, earlyDeath, midDeath}

	for _, prob := range probs {
		for _, timing := range timings {
			name := fmt.Sprintf("p=%.2f/timing=%d", prob, timing)
			t.Run(name, func(t *testing.T) {
				eng := newTestEngine(t)
				from, plan := planFor(t, eng)
				cfg := FaultConfig{FailureProb: prob, Seed: 42}
				switch timing {
				case earlyDeath:
					cfg.Deaths = []MachineDeath{{Machine: mostLoadedMachine(from), AfterCommands: 0}}
				case midDeath:
					cfg.Deaths = []MachineDeath{{Machine: mostLoadedMachine(from), AfterCommands: planCommands(plan) / 2}}
				}
				fab := NewFaultFabric(from, cfg)
				ex := New(eng, fab, fastOptions(), nil)

				rep, err := ex.Execute(context.Background(), from, plan)
				if err != nil {
					t.Fatalf("execute: %v", err)
				}
				if rep.Outcome != OutcomeCompleted && rep.Outcome != OutcomeAborted {
					t.Fatalf("non-terminal outcome %q", rep.Outcome)
				}
				if rep.FloorViolations != 0 {
					t.Fatalf("%d executor-issued floor violations", rep.FloorViolations)
				}
				if !equalIgnoringDead(fab.Assignment(), rep.Final, fab.DeadMachines()) {
					t.Fatal("believed state diverged from fabric mirror beyond unreported deaths")
				}
				if timing == noDeath && prob == 0 {
					if rep.Outcome != OutcomeCompleted || rep.Replans != 0 {
						t.Fatalf("clean cell: outcome=%s replans=%d", rep.Outcome, rep.Replans)
					}
				}
				if timing != noDeath && rep.Outcome == OutcomeCompleted && len(rep.DeadMachines) > 0 {
					// A completed run that saw a death must have either
					// re-planned around it or skipped its commands.
					if rep.Replans == 0 && rep.Skipped == 0 && rep.Failed == 0 {
						t.Fatal("death observed but no divergence handling recorded")
					}
				}
			})
		}
	}
}

// floorGuardFabric wraps a FaultFabric and independently verifies, from
// the outside, that no successful delete ever lands a service below its
// SLA floor. It keeps its own mirror, learns about machine deaths from
// the inner fabric after every command, and clamps floors exactly the
// way the executor must: a death dipping a service below its floor is
// the environment's doing, and only re-clamps the floor downward.
// Requires Parallelism 1 (serial command stream).
type floorGuardFabric struct {
	t     *testing.T
	inner *FaultFabric
	p     *cluster.Problem

	mu        sync.Mutex
	cur       *cluster.Assignment
	alive     []int
	floor     []int
	seenDead  map[int]bool
	breaches  int
	minSlack  int
	anyDelete bool
}

func newFloorGuard(t *testing.T, inner *FaultFabric, p *cluster.Problem, start *cluster.Assignment, minAlive float64) *floorGuardFabric {
	g := &floorGuardFabric{
		t:        t,
		inner:    inner,
		p:        p,
		cur:      start.Clone(),
		alive:    make([]int, p.N()),
		floor:    make([]int, p.N()),
		seenDead: map[int]bool{},
		minSlack: 1 << 30,
	}
	for s := 0; s < p.N(); s++ {
		g.alive[s] = start.Placed(s)
		f := int(minAlive * float64(p.Services[s].Replicas))
		if f > g.alive[s] {
			f = g.alive[s]
		}
		g.floor[s] = f
	}
	return g
}

func (g *floorGuardFabric) Apply(ctx context.Context, cmd migrate.Command) error {
	err := g.inner.Apply(ctx, cmd)
	g.mu.Lock()
	defer g.mu.Unlock()
	g.syncDeaths()
	if err != nil {
		return err
	}
	switch cmd.Op {
	case migrate.Delete:
		g.cur.Add(cmd.Service, cmd.Machine, -1)
		g.alive[cmd.Service]--
		g.anyDelete = true
		slack := g.alive[cmd.Service] - g.floor[cmd.Service]
		if slack < g.minSlack {
			g.minSlack = slack
		}
		if slack < 0 {
			g.breaches++
		}
	case migrate.Create:
		g.cur.Add(cmd.Service, cmd.Machine, 1)
		g.alive[cmd.Service]++
	}
	return nil
}

// DeadMachines forwards the inner fabric's death reports, so the
// executor's out-of-band death watch works through the guard wrapper.
func (g *floorGuardFabric) DeadMachines() []int {
	return g.inner.DeadMachines()
}

// syncDeaths folds newly-dead machines into the guard's view; called
// with g.mu held.
func (g *floorGuardFabric) syncDeaths() {
	for _, m := range g.inner.DeadMachines() {
		if g.seenDead[m] {
			continue
		}
		g.seenDead[m] = true
		for s := 0; s < g.p.N(); s++ {
			if c := g.cur.Get(s, m); c > 0 {
				g.cur.Set(s, m, 0)
				g.alive[s] -= c
				if g.alive[s] < g.floor[s] {
					g.floor[s] = g.alive[s]
				}
			}
		}
	}
}

// TestSLAFloorNeverViolated is the regression test for the runtime
// invariant: under a 15% step-failure rate with one mid-plan machine
// death (the acceptance scenario), every successful delete — observed
// from outside the executor — keeps its service at or above the SLA
// floor at every intermediate state.
func TestSLAFloorNeverViolated(t *testing.T) {
	eng := newTestEngine(t)
	from, plan := planFor(t, eng)
	inner := NewFaultFabric(from, FaultConfig{
		FailureProb: 0.15,
		Seed:        7,
		Deaths:      []MachineDeath{{Machine: mostLoadedMachine(from), AfterCommands: planCommands(plan) / 2}},
	})
	guard := newFloorGuard(t, inner, eng.State().Problem(), from, testMinAlive)

	opts := fastOptions()
	opts.Parallelism = 1 // the guard needs a serial command stream
	ex := New(eng, guard, opts, nil)

	rep, err := ex.Execute(context.Background(), from, plan)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if guard.breaches != 0 {
		t.Fatalf("%d SLA floor breaches observed by external guard (min slack %d)", guard.breaches, guard.minSlack)
	}
	if rep.FloorViolations != 0 {
		t.Fatalf("executor self-reported %d floor violations", rep.FloorViolations)
	}
	// The acceptance scenario: terminate with a completed plan or a
	// re-planned-and-completed plan.
	if rep.Outcome != OutcomeCompleted {
		t.Fatalf("outcome=%s err=%q (replans=%d)", rep.Outcome, rep.Err, rep.Replans)
	}
	if len(rep.DeadMachines) == 0 {
		t.Fatal("scheduled machine death never fired")
	}
	if guard.anyDelete && rep.MinHeadroom < 0 {
		t.Fatal("deletes ran but MinHeadroom unset")
	}
	if rep.MinHeadroom >= 0 && guard.anyDelete && guard.minSlack < 0 {
		t.Fatalf("guard slack %d negative with headroom %d", guard.minSlack, rep.MinHeadroom)
	}
}

// flakyFabric fails each command instance a fixed number of times,
// then applies it instantly — exercising the retry/backoff path
// deterministically. The failure pattern is periodic (fail `failures`
// attempts, succeed once, repeat) so a command value that recurs in a
// later step — a relocation bounce — pays the same retry cost again.
type flakyFabric struct {
	inner    *InstantFabric
	failures int

	mu   sync.Mutex
	seen map[migrate.Command]int
}

func (f *flakyFabric) Apply(ctx context.Context, cmd migrate.Command) error {
	f.mu.Lock()
	n := f.seen[cmd]
	f.seen[cmd] = n + 1
	f.mu.Unlock()
	if n%(f.failures+1) < f.failures {
		return ErrApplyFailed
	}
	return f.inner.Apply(ctx, cmd)
}

func TestRetryBackoffRecovers(t *testing.T) {
	eng := newTestEngine(t)
	from, plan := planFor(t, eng)
	opts := fastOptions()
	fab := &flakyFabric{
		inner:    NewInstantFabric(from),
		failures: opts.MaxAttempts - 1,
		seen:     map[migrate.Command]int{},
	}
	ex := New(eng, fab, opts, nil)

	rep, err := ex.Execute(context.Background(), from, plan)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if rep.Outcome != OutcomeCompleted {
		t.Fatalf("outcome=%s err=%q", rep.Outcome, rep.Err)
	}
	if rep.Failed != 0 || rep.Replans != 0 {
		t.Fatalf("failed=%d replans=%d, want 0/0 (every command recovers in-budget)", rep.Failed, rep.Replans)
	}
	wantRetries := rep.Executed * (opts.MaxAttempts - 1)
	if rep.Retries != wantRetries {
		t.Fatalf("retries=%d, want %d", rep.Retries, wantRetries)
	}
	if rep.BackoffTotal <= 0 {
		t.Fatal("no backoff recorded despite retries")
	}
	if !migrate.Equal(fab.inner.Assignment(), rep.Final) {
		t.Fatal("mirror diverged")
	}
}

func TestCancellationMidRun(t *testing.T) {
	eng := newTestEngine(t)
	from, plan := planFor(t, eng)
	fab := NewFaultFabric(from, FaultConfig{Latency: 20 * time.Millisecond, Seed: 3})
	ex := New(eng, fab, fastOptions(), nil)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	rep, err := ex.Execute(ctx, from, plan)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if rep.Outcome != OutcomeCancelled {
		t.Fatalf("outcome=%s, want cancelled", rep.Outcome)
	}
	if rep.FloorViolations != 0 {
		t.Fatalf("floor violations on cancel: %d", rep.FloorViolations)
	}
	// The engine is synced to whatever really happened before the cut.
	if !equalIgnoringDead(eng.State().Assignment(), rep.Final, fab.DeadMachines()) {
		t.Fatal("engine state not synced to believed state after cancellation")
	}
}

// TestCheckpointResume aborts a run on its first divergence (no
// re-plans allowed), then resumes from the emitted checkpoint with a
// fresh executor and finishes the migration.
func TestCheckpointResume(t *testing.T) {
	eng := newTestEngine(t)
	from, plan := planFor(t, eng)
	fab := NewFaultFabric(from, FaultConfig{
		Seed:   11,
		Deaths: []MachineDeath{{Machine: mostLoadedMachine(from), AfterCommands: planCommands(plan) / 2}},
	})

	opts := fastOptions()
	opts.MaxReplans = -1 // abort at the first divergence
	ex := New(eng, fab, opts, nil)
	rep, err := ex.Execute(context.Background(), from, plan)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if rep.Outcome != OutcomeAborted || len(rep.Checkpoints) == 0 {
		t.Fatalf("outcome=%s checkpoints=%d, want aborted with a checkpoint", rep.Outcome, len(rep.Checkpoints))
	}
	cp := rep.Checkpoints[len(rep.Checkpoints)-1]
	if cp.Reason == "" || len(cp.Placements) == 0 {
		t.Fatalf("checkpoint underspecified: %+v", cp)
	}

	// Fresh executor (fresh process in real life), same engine + fabric.
	ex2 := New(eng, fab, fastOptions(), nil)
	rep2, err := ex2.Resume(context.Background(), &cp)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if rep2.Outcome != OutcomeCompleted {
		t.Fatalf("resume outcome=%s err=%q", rep2.Outcome, rep2.Err)
	}
	if rep2.FloorViolations != 0 {
		t.Fatalf("resume floor violations: %d", rep2.FloorViolations)
	}
	if !equalIgnoringDead(fab.Assignment(), rep2.Final, fab.DeadMachines()) {
		t.Fatal("resumed run diverged from fabric mirror")
	}
}

func TestMetricsRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	eng := newTestEngine(t)
	fab := NewInstantFabric(eng.State().Assignment())
	ex := New(eng, fab, fastOptions(), reg)
	if _, err := ex.Run(context.Background()); err != nil {
		t.Fatalf("run: %v", err)
	}
	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatalf("render: %v", err)
	}
	text := sb.String()
	for _, want := range []string{
		"rasa_exec_commands_total",
		"rasa_exec_runs_total",
		"rasa_exec_min_sla_headroom",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metric %s missing from render", want)
		}
	}
}

func TestInstantFabricDeleteAbsent(t *testing.T) {
	a := cluster.NewAssignment(1, 1)
	fab := NewInstantFabric(a)
	err := fab.Apply(context.Background(), migrate.Command{Op: migrate.Delete, Service: 0, Machine: 0})
	if err == nil {
		t.Fatal("delete of absent container succeeded")
	}
}

func TestFaultFabricDeathSchedule(t *testing.T) {
	a := cluster.NewAssignment(1, 2)
	a.Set(0, 0, 3)
	a.Set(0, 1, 2)
	fab := NewFaultFabric(a, FaultConfig{Deaths: []MachineDeath{{Machine: 0, AfterCommands: 1}}})
	ctx := context.Background()

	if err := fab.Apply(ctx, migrate.Command{Op: migrate.Delete, Service: 0, Machine: 1}); err != nil {
		t.Fatalf("first command: %v", err)
	}
	// Death fires at applied >= 1: machine 0 is now gone.
	err := fab.Apply(ctx, migrate.Command{Op: migrate.Delete, Service: 0, Machine: 0})
	var down *MachineDownError
	if !errors.As(err, &down) || down.Machine != 0 {
		t.Fatalf("expected MachineDownError{0}, got %v", err)
	}
	if got := fab.Assignment().Get(0, 0); got != 0 {
		t.Fatalf("dead machine still hosts %d containers", got)
	}
	if d := fab.DeadMachines(); len(d) != 1 || d[0] != 0 {
		t.Fatalf("dead machines = %v", d)
	}
}

// TestResumeViaLogReplay is the event-sourced version of
// TestCheckpointResume: instead of restoring the checkpoint's
// placement dump into the engine, a fresh process replays the lifetime
// log up to the checkpoint's offset and resumes from the folded state.
// The death is part of the log, so no drain bookkeeping is needed —
// "resume" is literally "replay to offset, then Run".
func TestResumeViaLogReplay(t *testing.T) {
	// Build the engine by hand so the pristine starting snapshot (what a
	// recorded trace would carry) exists before any event mutates the
	// live cluster in place.
	c, err := workload.Generate(workload.TrainingPresets()[0])
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	snap := snapshot.FromCluster(c.Problem, c.Original)
	p, a, err := snap.ToCluster()
	if err != nil {
		t.Fatalf("to cluster: %v", err)
	}
	st, err := incr.NewState(p, a)
	if err != nil {
		t.Fatalf("state: %v", err)
	}
	engOpts := incr.Options{Budget: 3 * time.Second, MinAlive: testMinAlive, Parallelism: 1}
	eng := incr.New(st, engOpts, nil)

	from, plan := planFor(t, eng)
	fab := NewFaultFabric(from, FaultConfig{
		Seed:   11,
		Deaths: []MachineDeath{{Machine: mostLoadedMachine(from), AfterCommands: planCommands(plan) / 2}},
	})
	opts := fastOptions()
	opts.MaxReplans = -1 // abort at the first divergence, like a crash
	ex := New(eng, fab, opts, nil)
	rep, err := ex.Execute(context.Background(), from, plan)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if rep.Outcome != OutcomeAborted || len(rep.Checkpoints) == 0 {
		t.Fatalf("outcome=%s checkpoints=%d, want aborted with a checkpoint", rep.Outcome, len(rep.Checkpoints))
	}
	cp := rep.Checkpoints[len(rep.Checkpoints)-1]
	if cp.Offset == 0 {
		t.Fatal("checkpoint carries no log offset")
	}

	// Replay the log prefix up to the committed offset. Everything the
	// executor logged after the checkpoint (revert bookkeeping, the
	// terminal replan request) is state-neutral, so the folded prefix
	// must land on the aborted engine's exact fingerprint.
	log := eng.State().Log()
	var prefix []lifetime.Entry
	for _, en := range log.Entries(1) {
		if en.Seq <= cp.Offset {
			prefix = append(prefix, en)
		}
	}
	tr := &lifetime.Trace{
		Version:  lifetime.TraceVersion,
		Snapshot: snap,
		Events:   lifetime.EntriesJSON(prefix),
	}
	replayed, err := lifetime.Replay(tr)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if replayed.Fingerprint() != log.Fingerprint() {
		t.Fatalf("replayed fingerprint %s, want %s", replayed.Fingerprint(), log.Fingerprint())
	}
	if len(replayed.DeadMachines()) != 1 {
		t.Fatalf("replayed dead machines = %v, want the mid-wave death", replayed.DeadMachines())
	}

	// Fresh process: state from the replayed log, fresh engine, fresh
	// executor, same fabric (the cluster doesn't reset because we did).
	eng2 := incr.New(incr.FromLog(replayed), engOpts, nil)
	ex2 := New(eng2, fab, fastOptions(), nil)
	rep2, err := ex2.Run(context.Background())
	if err != nil {
		t.Fatalf("resume run: %v", err)
	}
	if rep2.Outcome != OutcomeCompleted {
		t.Fatalf("resume outcome=%s err=%q", rep2.Outcome, rep2.Err)
	}
	if rep2.FloorViolations != 0 {
		t.Fatalf("resume floor violations: %d", rep2.FloorViolations)
	}
	if !equalIgnoringDead(fab.Assignment(), rep2.Final, fab.DeadMachines()) {
		t.Fatal("resumed run diverged from fabric mirror")
	}
}

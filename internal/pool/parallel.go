package pool

import (
	"context"
	"runtime"
	"sync"
	"time"
)

import "github.com/cloudsched/rasa/internal/cluster"

// SolveAll solves every subproblem concurrently, dispatching each to the
// algorithm algFor(i), under one shared wall-clock budget. Subproblems
// are independent after partitioning (Section IV-A), so parallel solving
// is exactly what the production deployment does. The shared budget is
// enforced by a derived context deadline, so when it expires every
// in-flight sibling solve is cancelled together and returns its best
// incumbent; cancelling the parent context has the same effect. Results
// are returned in subproblem order; a subproblem whose solve errors
// yields an empty OutOfTime result rather than failing the batch,
// mirroring the paper's tolerance of failed deployments.
func SolveAll(ctx context.Context, subs []*cluster.Subproblem, algFor func(i int) Algorithm, budget time.Duration, parallelism int) []Result {
	return SolveAllWarm(ctx, subs, algFor, nil, budget, parallelism)
}

// SolveAllWarm is SolveAll with per-subproblem warm-start caches: when
// warmFor is non-nil and algFor(i) is MIP, subproblem i's solve is
// seeded from (and refreshes) warmFor(i). Each cache entry is touched
// only by its own subproblem's goroutine, so callers may hand out
// entries from a plain map built before the call.
func SolveAllWarm(parent context.Context, subs []*cluster.Subproblem, algFor func(i int) Algorithm, warmFor func(i int) *WarmStart, budget time.Duration, parallelism int) []Result {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	deadline := time.Now().Add(budget)
	ctx, cancel := context.WithDeadline(parent, deadline)
	defer cancel()
	results := make([]Result, len(subs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, parallelism)
	for i := range subs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			alg := algFor(i)
			var (
				res Result
				err error
			)
			if alg == MIP && warmFor != nil {
				res, err = SolveMIPWarm(ctx, subs[i], deadline, warmFor(i))
			} else {
				res, err = Solve(ctx, subs[i], alg, deadline)
			}
			switch {
			case err != nil:
				res = Result{Algorithm: alg, OutOfTime: true}
			case alg == MIP && len(res.Placements) == 0:
				// CG and Race picks are anytime — they always return an
				// incumbent — but a MIP pick that hits the shared
				// deadline (or the size guard) before rounding its
				// first integral solution returns nothing, and the
				// merge would leave the subproblem on its original
				// assignment. Give it CG's greedy floor: a bounded
				// overtime slice on the parent context, so a starved
				// (or mispredicted) MIP pick degrades to roughly a CG
				// solve instead of a hole in the new assignment.
				if parent.Err() == nil {
					stats := res.Stats
					if cg, cgErr := SolveCG(parent, subs[i], time.Now().Add(mipFloorBudget)); cgErr == nil && len(cg.Placements) > 0 {
						res = cg
						// Still a MIP pick, still out of time — the
						// floor only fills the placement hole.
						res.Algorithm = MIP
						res.OutOfTime = true
						res.Stats.Merge(stats)
					}
				}
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	return results
}

// mipFloorBudget bounds the per-subproblem overtime a placement-less
// MIP pick may spend computing its CG greedy floor.
const mipFloorBudget = 150 * time.Millisecond

package pool

import (
	"runtime"
	"sync"
	"time"
)

import "github.com/cloudsched/rasa/internal/cluster"

// SolveAll solves every subproblem concurrently, dispatching each to the
// algorithm algFor(i), under one shared wall-clock budget. Subproblems
// are independent after partitioning (Section IV-A), so parallel solving
// is exactly what the production deployment does. Results are returned
// in subproblem order; a subproblem whose solve errors yields an empty
// OutOfTime result rather than failing the batch, mirroring the paper's
// tolerance of failed deployments.
func SolveAll(subs []*cluster.Subproblem, algFor func(i int) Algorithm, budget time.Duration, parallelism int) []Result {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	deadline := time.Now().Add(budget)
	results := make([]Result, len(subs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, parallelism)
	for i := range subs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			alg := algFor(i)
			res, err := Solve(subs[i], alg, deadline)
			if err != nil {
				results[i] = Result{Algorithm: alg, OutOfTime: true}
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	return results
}

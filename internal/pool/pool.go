// Package pool is the scheduling algorithm pool of Section IV-C: the
// two solver-based algorithms (MIP-based and column generation) behind a
// single interface, so the algorithm-selection phase can dispatch each
// subproblem to either.
package pool

import (
	"context"
	"fmt"
	"time"

	"github.com/cloudsched/rasa/internal/cg"
	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/lp"
	"github.com/cloudsched/rasa/internal/mip"
	"github.com/cloudsched/rasa/internal/model"
	"github.com/cloudsched/rasa/internal/solve"
)

// Algorithm identifies a member of the pool.
type Algorithm int

// Pool members.
const (
	CG  Algorithm = iota // column generation (Section IV-C2)
	MIP                  // direct MIP via branch and bound (Section IV-C1)
	// Race runs both members concurrently and keeps the better result
	// (Section IV-D's labelling procedure). It costs up to 2x the CPU of
	// a single arm, but its outcome doubles as an oracle-labelled
	// training example for the online selector.
	Race
)

func (a Algorithm) String() string {
	switch a {
	case CG:
		return "CG"
	case MIP:
		return "MIP"
	case Race:
		return "RACE"
	}
	return "unknown"
}

// Result is a solved subproblem.
type Result struct {
	Placements []model.Placement
	Objective  float64 // gained affinity of the placements
	Algorithm  Algorithm
	OutOfTime  bool // the budget expired before a solution was found
	// Stats is the solver effort behind this result: iteration counts,
	// per-phase wall time, and the cause that stopped the solve.
	Stats solve.Stats
	// Race, set only when the subproblem was solved by racing both pool
	// members (Algorithm Race, or a policy decision below its confidence
	// threshold), records the head-to-head outcome; Algorithm then names
	// the winning arm. It is the labelled example the learning loop
	// trains on.
	Race *RaceOutcome
}

// maxMIPCells bounds the direct-MIP formulation size (rows * columns of
// the simplex tableau). Formulations beyond this bound cannot complete a
// single LP solve within any practical budget on this substrate and are
// reported OutOfTime immediately — reproducing the OOT entries of
// Fig. 6/Fig. 9 for the NO-PARTITION configuration.
const maxMIPCells = 20_000_000

// Solve dispatches the subproblem to the chosen algorithm with the
// given deadline. Both algorithms are anytime: with an expired deadline
// or a cancelled context they return their best (possibly greedy)
// feasible schedule rather than an error.
func Solve(ctx context.Context, sp *cluster.Subproblem, alg Algorithm, deadline time.Time) (Result, error) {
	switch alg {
	case CG:
		return SolveCG(ctx, sp, deadline)
	case MIP:
		return SolveMIP(ctx, sp, deadline)
	case Race:
		return SolveRace(ctx, sp, deadline)
	}
	return Result{}, fmt.Errorf("pool: unknown algorithm %d", alg)
}

// SolveMIP solves the subproblem with the direct MIP formulation.
func SolveMIP(ctx context.Context, sp *cluster.Subproblem, deadline time.Time) (Result, error) {
	return SolveMIPCutoff(ctx, sp, deadline, nil)
}

// WarmStart caches the root-relaxation basis of a subproblem's last MIP
// solve, keyed by formulation shape. The incremental engine keeps one
// per partition subproblem: when a delta leaves the formulation shape
// intact (e.g. an affinity-weight update, or a replica change that
// keeps the same machine set), the next solve of that subproblem seeds
// its root simplex from here instead of starting cold. The basis is
// validated downstream, so a cache that turns out stale merely falls
// back to the cold path.
type WarmStart struct {
	Vars, Rows int
	Basis      *lp.Basis
}

// SolveMIPWarm is SolveMIP seeded from (and refreshing) a WarmStart
// cache. A nil warm behaves exactly like SolveMIP. The basis is used
// only when the cached shape matches the freshly built formulation.
func SolveMIPWarm(ctx context.Context, sp *cluster.Subproblem, deadline time.Time, warm *WarmStart) (Result, error) {
	m, err := model.BuildMIP(sp)
	if err != nil {
		return Result{}, err
	}
	if cells := int64(m.NumVars()) * int64(m.NumRows()); cells > maxMIPCells {
		return Result{Algorithm: MIP, OutOfTime: true}, nil
	}
	opts := mip.Options{Deadline: deadline, Rounder: m.Rounder()}
	if warm != nil && warm.Basis != nil && warm.Vars == m.NumVars() && warm.Rows == m.NumRows() {
		opts.RootBasis = warm.Basis
	}
	sol, err := mip.Solve(ctx, &m.Prob, opts)
	if err != nil {
		return Result{}, err
	}
	if warm != nil && sol.RootBasis != nil {
		warm.Vars, warm.Rows, warm.Basis = m.NumVars(), m.NumRows(), sol.RootBasis
	}
	if sol.X == nil {
		return Result{Algorithm: MIP, OutOfTime: true, Stats: sol.Stats}, nil
	}
	return Result{
		Placements: m.Extract(sol.X),
		Objective:  m.AffinityValue(sol.X),
		Algorithm:  MIP,
		Stats:      sol.Stats,
	}, nil
}

// SolveMIPCutoff is SolveMIP with an objective cutoff: when cutoff
// reports (c, true) and the branch-and-bound proves its global upper
// bound cannot exceed c, the solve stops early with a Cancelled stop
// cause. The selector's labelling race uses it to abandon a MIP solve
// once the concurrent CG result is provably unbeatable.
func SolveMIPCutoff(ctx context.Context, sp *cluster.Subproblem, deadline time.Time, cutoff func() (float64, bool)) (Result, error) {
	m, err := model.BuildMIP(sp)
	if err != nil {
		return Result{}, err
	}
	if cells := int64(m.NumVars()) * int64(m.NumRows()); cells > maxMIPCells {
		return Result{Algorithm: MIP, OutOfTime: true}, nil
	}
	sol, err := mip.Solve(ctx, &m.Prob, mip.Options{
		Deadline: deadline,
		Rounder:  m.Rounder(),
		Cutoff:   cutoff,
	})
	if err != nil {
		return Result{}, err
	}
	if sol.X == nil {
		return Result{Algorithm: MIP, OutOfTime: true, Stats: sol.Stats}, nil
	}
	return Result{
		Placements: m.Extract(sol.X),
		Objective:  m.AffinityValue(sol.X),
		Algorithm:  MIP,
		Stats:      sol.Stats,
	}, nil
}

// SolveCG solves the subproblem with column generation.
func SolveCG(ctx context.Context, sp *cluster.Subproblem, deadline time.Time) (Result, error) {
	res, err := cg.Solve(ctx, sp, cg.Options{Deadline: deadline})
	if err != nil {
		return Result{}, err
	}
	return Result{
		Placements: res.Placements,
		Objective:  res.Objective,
		Algorithm:  CG,
		Stats:      res.Stats,
	}, nil
}

// Package pool is the scheduling algorithm pool of Section IV-C: the
// two solver-based algorithms (MIP-based and column generation) behind a
// single interface, so the algorithm-selection phase can dispatch each
// subproblem to either.
package pool

import (
	"fmt"
	"time"

	"github.com/cloudsched/rasa/internal/cg"
	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/mip"
	"github.com/cloudsched/rasa/internal/model"
)

// Algorithm identifies a member of the pool.
type Algorithm int

// Pool members.
const (
	CG  Algorithm = iota // column generation (Section IV-C2)
	MIP                  // direct MIP via branch and bound (Section IV-C1)
)

func (a Algorithm) String() string {
	switch a {
	case CG:
		return "CG"
	case MIP:
		return "MIP"
	}
	return "unknown"
}

// Result is a solved subproblem.
type Result struct {
	Placements []model.Placement
	Objective  float64 // gained affinity of the placements
	Algorithm  Algorithm
	OutOfTime  bool // the budget expired before a solution was found
}

// maxMIPCells bounds the direct-MIP formulation size (rows * columns of
// the simplex tableau). Formulations beyond this bound cannot complete a
// single LP solve within any practical budget on this substrate and are
// reported OutOfTime immediately — reproducing the OOT entries of
// Fig. 6/Fig. 9 for the NO-PARTITION configuration.
const maxMIPCells = 20_000_000

// Solve dispatches the subproblem to the chosen algorithm with the
// given deadline. Both algorithms are anytime: with an expired deadline
// they return their best (possibly greedy) feasible schedule.
func Solve(sp *cluster.Subproblem, alg Algorithm, deadline time.Time) (Result, error) {
	switch alg {
	case CG:
		return SolveCG(sp, deadline)
	case MIP:
		return SolveMIP(sp, deadline)
	}
	return Result{}, fmt.Errorf("pool: unknown algorithm %d", alg)
}

// SolveMIP solves the subproblem with the direct MIP formulation.
func SolveMIP(sp *cluster.Subproblem, deadline time.Time) (Result, error) {
	m, err := model.BuildMIP(sp)
	if err != nil {
		return Result{}, err
	}
	if cells := int64(m.NumVars()) * int64(m.NumRows()); cells > maxMIPCells {
		return Result{Algorithm: MIP, OutOfTime: true}, nil
	}
	sol, err := mip.Solve(&m.Prob, mip.Options{
		Deadline: deadline,
		Rounder:  m.Rounder(),
	})
	if err != nil {
		return Result{}, err
	}
	if sol.X == nil {
		return Result{Algorithm: MIP, OutOfTime: true}, nil
	}
	return Result{
		Placements: m.Extract(sol.X),
		Objective:  m.AffinityValue(sol.X),
		Algorithm:  MIP,
	}, nil
}

// SolveCG solves the subproblem with column generation.
func SolveCG(sp *cluster.Subproblem, deadline time.Time) (Result, error) {
	res, err := cg.Solve(sp, cg.Options{Deadline: deadline})
	if err != nil {
		return Result{}, err
	}
	return Result{
		Placements: res.Placements,
		Objective:  res.Objective,
		Algorithm:  CG,
	}, nil
}

package pool

import (
	"context"
	"math"
	"sync/atomic"
	"time"

	"github.com/cloudsched/rasa/internal/cluster"
)

// RaceMargin is how clearly MIP must beat CG to win a race: near-ties
// are dominated by solver timing noise. Outcomes within the margin are
// reported as ties (Winner CG — the cheaper algorithm — but flagged so
// training pipelines can down-weight or skip them instead of learning a
// false CG preference).
const RaceMargin = 0.01

// RaceOutcome records the head-to-head result of racing both pool
// algorithms on one subproblem. It is the labelled example the learning
// loop trains on: Winner is the oracle label, Tie and Margin qualify how
// trustworthy that label is.
type RaceOutcome struct {
	// CGObjective and MIPObjective are the gained-affinity objectives the
	// two arms returned under the shared deadline.
	CGObjective  float64
	MIPObjective float64
	// Winner is the algorithm whose result the race adopted. Ties go to
	// CG, the cheaper algorithm.
	Winner Algorithm
	// Tie reports that MIP completed with an objective within RaceMargin
	// of CG's, so the label is timing noise rather than signal.
	Tie bool
	// Margin is the relative objective gap (MIP - CG) / max(|CG|, eps):
	// positive when MIP found more affinity, negative when CG did. A MIP
	// arm stopped by the cutoff understates its objective, which only
	// widens a negative margin — it cannot fake a MIP win.
	Margin float64
	// MIPOutOfTime reports the MIP arm produced no placements at all
	// (budget or cutoff expired before any incumbent).
	MIPOutOfTime bool
}

// SolveRace runs both pool algorithms on the subproblem concurrently
// under the shared deadline and returns the better result, with
// Result.Race describing the head-to-head outcome (Section IV-D: "we
// attempt each subproblem with the two candidate algorithms and choose
// the one that returns better objective within a time limit").
//
// CG runs on its own goroutine, MIP on the calling one. Once CG
// finishes, its objective feeds the MIP solve as a cutoff, so the branch
// and bound stops the moment its proven upper bound shows it cannot beat
// CG by RaceMargin — the losing arm is cancelled instead of running out
// its budget. Ties go to CG.
func SolveRace(ctx context.Context, sp *cluster.Subproblem, deadline time.Time) (Result, error) {
	var (
		cgObjBits atomic.Uint64
		cgDone    = make(chan struct{})
		cgRes     Result
		cgErr     error
	)
	go func() {
		defer close(cgDone)
		cgRes, cgErr = SolveCG(ctx, sp, deadline)
		if cgErr == nil {
			cgObjBits.Store(math.Float64bits(cgRes.Objective))
		}
	}()

	cutoff := func() (float64, bool) {
		select {
		case <-cgDone:
		default:
			return 0, false
		}
		return math.Float64frombits(cgObjBits.Load()) * (1 + RaceMargin), true
	}
	mipRes, mipErr := SolveMIPCutoff(ctx, sp, deadline, cutoff)
	<-cgDone
	if cgErr != nil {
		return Result{}, cgErr
	}
	if mipErr != nil {
		return Result{}, mipErr
	}

	ro := &RaceOutcome{
		CGObjective:  cgRes.Objective,
		MIPObjective: mipRes.Objective,
		Winner:       CG,
		MIPOutOfTime: mipRes.OutOfTime,
	}
	ro.Margin = (mipRes.Objective - cgRes.Objective) / math.Max(math.Abs(cgRes.Objective), 1e-9)
	// A MIP arm stopped by the cutoff has a proven bound below the margin
	// threshold, so this comparison cannot falsely promote it.
	if !mipRes.OutOfTime && mipRes.Objective > cgRes.Objective*(1+RaceMargin)+1e-9 {
		ro.Winner = MIP
	}
	// MIP delivered an incumbent inside the margin band in either
	// direction: the race was decided by noise, not by the algorithms.
	ro.Tie = !mipRes.OutOfTime && ro.Winner == CG &&
		mipRes.Objective >= cgRes.Objective*(1-RaceMargin)-1e-9

	out := cgRes
	if ro.Winner == MIP {
		out = mipRes
	}
	// The race's effort is both arms' effort; keep the winner's wall/stop.
	merged := out.Stats
	if ro.Winner == MIP {
		merged.Merge(cgRes.Stats)
	} else {
		merged.Merge(mipRes.Stats)
	}
	out.Stats = merged
	out.Race = ro
	return out, nil
}

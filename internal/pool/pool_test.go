package pool_test

import (
	"context"
	"math"
	"testing"
	"time"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/graph"
	"github.com/cloudsched/rasa/internal/partition"
	. "github.com/cloudsched/rasa/internal/pool"
	"github.com/cloudsched/rasa/internal/workload"
)

func pairSubproblem(capacity float64) *cluster.Subproblem {
	g := graph.New(2)
	g.AddEdge(0, 1, 1.0)
	p := &cluster.Problem{
		ResourceNames: []string{"cpu"},
		Services: []cluster.Service{
			{Name: "A", Replicas: 2, Request: cluster.Resources{1}},
			{Name: "B", Replicas: 2, Request: cluster.Resources{1}},
		},
		Machines: []cluster.Machine{
			{Name: "m0", Capacity: cluster.Resources{capacity}},
			{Name: "m1", Capacity: cluster.Resources{capacity}},
		},
		Affinity: g,
	}
	return cluster.FullSubproblem(p)
}

func TestBothAlgorithmsSolveOptimally(t *testing.T) {
	for _, alg := range []Algorithm{CG, MIP} {
		res, err := Solve(context.Background(), pairSubproblem(4), alg, time.Now().Add(5*time.Second))
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.OutOfTime {
			t.Fatalf("%v: unexpected OOT", alg)
		}
		if math.Abs(res.Objective-1.0) > 1e-6 {
			t.Fatalf("%v: objective = %v, want 1.0", alg, res.Objective)
		}
		if res.Algorithm != alg {
			t.Fatalf("result algorithm = %v, want %v", res.Algorithm, alg)
		}
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	if _, err := Solve(context.Background(), pairSubproblem(4), Algorithm(99), time.Time{}); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
}

func TestAlgorithmString(t *testing.T) {
	if CG.String() != "CG" || MIP.String() != "MIP" || Algorithm(9).String() != "unknown" {
		t.Fatal("Algorithm.String broken")
	}
}

func TestMIPOversizedGoesOOT(t *testing.T) {
	// A NO-PARTITION-sized subproblem must be reported OutOfTime rather
	// than attempting a hopeless formulation (Fig. 6's OOT entries).
	c, err := workload.Generate(workload.Preset{
		Name: "big", Services: 400, Containers: 2500, Machines: 120,
		Beta: 1.5, AffinityFraction: 0.7, Zones: 1, Utilization: 0.55, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	sp := cluster.FullSubproblem(c.Problem)
	res, err := SolveMIP(context.Background(), sp, time.Now().Add(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OutOfTime {
		t.Fatalf("expected OOT on %d-service full problem", c.Problem.N())
	}
}

func TestSolveAllParallelAndOrdered(t *testing.T) {
	c, err := workload.Generate(workload.Preset{
		Name: "p", Services: 60, Containers: 300, Machines: 16,
		Beta: 1.6, AffinityFraction: 0.6, Zones: 1, Utilization: 0.55, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	pres, err := partition.Multistage(context.Background(), c.Problem, c.Original, partition.Options{TargetSize: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pres.Subproblems) < 2 {
		t.Fatalf("want multiple subproblems, got %d", len(pres.Subproblems))
	}
	results := SolveAll(context.Background(), pres.Subproblems, func(i int) Algorithm {
		if i%2 == 0 {
			return CG
		}
		return MIP
	}, 3*time.Second, 4)
	if len(results) != len(pres.Subproblems) {
		t.Fatalf("results = %d, want %d", len(results), len(pres.Subproblems))
	}
	for i, r := range results {
		want := CG
		if i%2 == 1 {
			want = MIP
		}
		if r.Algorithm != want {
			t.Fatalf("result %d algorithm = %v, want %v", i, r.Algorithm, want)
		}
	}
}

func TestSolveAllExpiredBudgetStillReturns(t *testing.T) {
	sp := pairSubproblem(4)
	results := SolveAll(context.Background(), []*cluster.Subproblem{sp, sp}, func(int) Algorithm { return CG }, -time.Second, 2)
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
}

// TestSolveAllMIPFloor checks a MIP pick that cannot produce a single
// integral incumbent inside the shared budget still returns placements:
// the solve layer fills the hole with CG's greedy floor (bounded
// overtime) instead of leaving the subproblem on its original
// assignment. A cancelled parent context must NOT trigger the floor.
func TestSolveAllMIPFloor(t *testing.T) {
	c, err := workload.Generate(workload.Preset{
		Name: "floor", Services: 60, Containers: 300, Machines: 16,
		Beta: 1.6, AffinityFraction: 0.6, Zones: 1, Utilization: 0.55, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	pres, err := partition.Multistage(context.Background(), c.Problem, c.Original, partition.Options{TargetSize: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	subs := pres.Subproblems

	// A nanosecond budget expires before any MIP can round an
	// incumbent.
	results := SolveAll(context.Background(), subs, func(int) Algorithm { return MIP }, time.Nanosecond, 2)
	for i, r := range results {
		if r.Algorithm != MIP || !r.OutOfTime {
			t.Fatalf("result %d: %v OutOfTime=%v, want starved MIP", i, r.Algorithm, r.OutOfTime)
		}
		if len(r.Placements) == 0 {
			t.Fatalf("result %d has no placements: the anytime floor is gone", i)
		}
	}

	// With the parent context already cancelled there is no overtime to
	// spend: results come back empty rather than stretching the
	// cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results = SolveAll(ctx, subs, func(int) Algorithm { return MIP }, time.Nanosecond, 2)
	for i, r := range results {
		if len(r.Placements) != 0 {
			t.Fatalf("result %d solved after parent cancellation", i)
		}
	}
}

package pool_test

import (
	"context"
	"testing"
	"time"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/partition"
	. "github.com/cloudsched/rasa/internal/pool"
	"github.com/cloudsched/rasa/internal/workload"
)

// TestSolveAllSiblingCancellationStress exercises sibling cancellation
// in SolveAll under the race detector: one shared deadline context fans
// out to every concurrent subproblem solve (each of which pools an LP
// workspace and polls cancellation inside its pivot loops), and budgets
// tight enough to expire mid-solve make every sibling observe the
// cancellation at a different point. A second wave cancels the parent
// context outright while solves are in flight.
func TestSolveAllSiblingCancellationStress(t *testing.T) {
	c, err := workload.Generate(workload.Preset{
		Name: "race", Services: 60, Containers: 300, Machines: 16,
		Beta: 1.6, AffinityFraction: 0.6, Zones: 1, Utilization: 0.55, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	pres, err := partition.Multistage(context.Background(), c.Problem, c.Original, partition.Options{TargetSize: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	subs := pres.Subproblems
	if len(subs) < 2 {
		t.Fatalf("want multiple subproblems, got %d", len(subs))
	}
	mixed := func(i int) Algorithm {
		if i%2 == 0 {
			return CG
		}
		return MIP
	}

	// Wave 1: shared budget expires while solves are in flight; every
	// result must still arrive (anytime contract), in order.
	for _, budget := range []time.Duration{time.Millisecond, 5 * time.Millisecond, 25 * time.Millisecond} {
		results := SolveAll(context.Background(), subs, mixed, budget, 4)
		if len(results) != len(subs) {
			t.Fatalf("budget %v: results = %d, want %d", budget, len(results), len(subs))
		}
		for i, r := range results {
			if r.Algorithm != mixed(i) {
				t.Fatalf("budget %v: result %d algorithm = %v, want %v", budget, i, r.Algorithm, mixed(i))
			}
		}
	}

	// Wave 2: the parent context is cancelled mid-batch, racing the
	// derived deadline; all siblings must unwind together.
	for trial := 0; trial < 3; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func(d time.Duration) {
			time.Sleep(d)
			cancel()
		}(time.Duration(trial+1) * 2 * time.Millisecond)
		results := SolveAll(ctx, subs, mixed, time.Second, 4)
		cancel()
		if len(results) != len(subs) {
			t.Fatalf("trial %d: results = %d, want %d", trial, len(results), len(subs))
		}
	}
}

// TestSolveAllSharedSubproblemStress solves the same subproblem object
// concurrently in every slot: solvers must treat the subproblem as
// read-only, so this is a pure data-race probe on the shared model
// state (and on the pooled LP workspaces behind the solves).
func TestSolveAllSharedSubproblemStress(t *testing.T) {
	sp := pairSubproblem(4)
	subs := make([]*cluster.Subproblem, 8)
	for i := range subs {
		subs[i] = sp
	}
	results := SolveAll(context.Background(), subs, func(int) Algorithm { return MIP }, 2*time.Second, 8)
	for i, r := range results {
		if r.OutOfTime {
			t.Fatalf("result %d unexpectedly out of time", i)
		}
	}
}

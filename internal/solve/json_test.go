package solve

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestStopCauseJSONRoundTrip(t *testing.T) {
	for c := None; c <= NodeLimit; c++ {
		b, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		if want := `"` + c.String() + `"`; string(b) != want {
			t.Fatalf("marshal %v = %s, want %s", c, b, want)
		}
		var back StopCause
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != c {
			t.Fatalf("round trip %v -> %v", c, back)
		}
	}
}

func TestStopCauseJSONLegacyNumeric(t *testing.T) {
	var c StopCause
	if err := json.Unmarshal([]byte("2"), &c); err != nil {
		t.Fatal(err)
	}
	if c != Deadline {
		t.Fatalf("numeric 2 -> %v, want deadline", c)
	}
	if err := json.Unmarshal([]byte(`"bogus"`), &c); err == nil {
		t.Fatal("unknown cause accepted")
	}
	if err := json.Unmarshal([]byte("99"), &c); err == nil {
		t.Fatal("out-of-range numeric accepted")
	}
}

func TestStatsJSONRoundTrip(t *testing.T) {
	s := Stats{
		SimplexIters: 1200, WarmPivots: 900, ColdPivots: 300,
		Nodes: 34, Incumbents: 3, Columns: 56, PricingRounds: 7,
		MasterTime: 15 * time.Millisecond, PricingTime: 9 * time.Millisecond,
		RoundingTime: 2 * time.Millisecond, Wall: 31 * time.Millisecond,
		Stop: Deadline,
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"stop":"deadline"`) {
		t.Fatalf("stop cause not rendered as name: %s", b)
	}
	if !strings.Contains(string(b), `"wall":"31ms"`) {
		t.Fatalf("wall not rendered as duration string: %s", b)
	}
	var back Stats
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatalf("round trip drifted:\n got %+v\nwant %+v", back, s)
	}
}

func TestStatsJSONZeroOmitsDurations(t *testing.T) {
	b, err := json.Marshal(Stats{Stop: Optimal})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "wall") || strings.Contains(string(b), "masterTime") {
		t.Fatalf("zero durations not omitted: %s", b)
	}
	var back Stats
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Stop != Optimal {
		t.Fatalf("stop drifted: %v", back.Stop)
	}
}

func TestStatsJSONBadDuration(t *testing.T) {
	var s Stats
	if err := json.Unmarshal([]byte(`{"wall":"not-a-duration"}`), &s); err == nil {
		t.Fatal("bad duration accepted")
	}
}

// Package solve defines the cross-cutting solve contract shared by every
// layer of the optimization stack (internal/lp → internal/mip →
// internal/cg → internal/pool → internal/core): interruptible solves via
// context.Context, a uniform vocabulary of stop causes, and per-solve
// statistics that surface where the time budget went.
//
// The contract every solver in this module honours:
//
//   - Anytime: a solver interrupted by deadline or cancellation returns
//     its best incumbent found so far (possibly a greedy fallback), never
//     an error, mirroring the paper's use of Gurobi's anytime incumbents
//     under a 60 s time-out.
//   - Cheap polling: inner loops (simplex pivots, branch-and-bound node
//     pops, CG master/pricing rounds) consult the context only once every
//     N iterations via Poll, so cancellation support costs nothing on the
//     hot path.
//   - Populated stats: every solve reports iteration counts, per-phase
//     wall time, and the StopCause that ended it, aggregated upward into
//     pool.Result and core.Result.
package solve

import (
	"context"
	"time"
)

// StopCause reports why a solve stopped.
type StopCause int

// Stop causes.
const (
	// None: the solve has not produced a cause (e.g. infeasible or
	// unbounded outcomes, which the per-solver Status reports).
	None StopCause = iota
	// Optimal: the solver proved optimality (within its gap tolerance).
	Optimal
	// Deadline: the wall-clock budget expired.
	Deadline
	// Cancelled: the context was cancelled (caller shutdown, or a sibling
	// race decided this solve cannot win).
	Cancelled
	// NodeLimit: a discrete work budget (B&B nodes, simplex pivots, CG
	// rounds) was exhausted before the deadline.
	NodeLimit
)

func (c StopCause) String() string {
	switch c {
	case None:
		return "none"
	case Optimal:
		return "optimal"
	case Deadline:
		return "deadline"
	case Cancelled:
		return "cancelled"
	case NodeLimit:
		return "node-limit"
	}
	return "unknown"
}

// Stats aggregates solver effort. Each layer fills the fields it owns
// and merges in the stats of the sub-solves it dispatched; zero-valued
// fields simply mean "not applicable at this layer".
type Stats struct {
	// SimplexIters counts simplex pivots across all LP solves.
	SimplexIters int
	// WarmPivots counts the subset of SimplexIters performed on a
	// warm-started path (dual-simplex repair from a parent basis, or a
	// primal re-solve from a previous vertex); ColdPivots counts pivots
	// of full two-phase solves. WarmPivots+ColdPivots == SimplexIters.
	WarmPivots int
	ColdPivots int
	// Nodes counts branch-and-bound nodes explored.
	Nodes int
	// Incumbents counts integer-feasible incumbents accepted.
	Incumbents int
	// Columns counts column-generation patterns generated.
	Columns int
	// PricingRounds counts CG master/pricing iterations.
	PricingRounds int
	// Per-phase wall time of a CG solve: restricted master LPs, pricing
	// subproblems, and the final integral rounding.
	MasterTime   time.Duration
	PricingTime  time.Duration
	RoundingTime time.Duration
	// Wall is the total wall time of the solve.
	Wall time.Duration
	// Stop is why the solve ended.
	Stop StopCause
}

// Merge adds o's counters and phase times into s. Stop and Wall are
// owned by the aggregating layer and are not merged.
func (s *Stats) Merge(o Stats) {
	s.SimplexIters += o.SimplexIters
	s.WarmPivots += o.WarmPivots
	s.ColdPivots += o.ColdPivots
	s.Nodes += o.Nodes
	s.Incumbents += o.Incumbents
	s.Columns += o.Columns
	s.PricingRounds += o.PricingRounds
	s.MasterTime += o.MasterTime
	s.PricingTime += o.PricingTime
	s.RoundingTime += o.RoundingTime
}

// Cause maps a context error to its StopCause. A nil error maps to None.
func Cause(err error) StopCause {
	switch err {
	case nil:
		return None
	case context.DeadlineExceeded:
		return Deadline
	default:
		return Cancelled
	}
}

// Interrupted reports whether the solve must stop now — the context is
// done or the explicit deadline has passed — and the corresponding stop
// cause. A zero deadline means "no deadline beyond the context's own".
func Interrupted(ctx context.Context, deadline time.Time) (StopCause, bool) {
	if err := ctx.Err(); err != nil {
		return Cause(err), true
	}
	if !deadline.IsZero() && time.Now().After(deadline) {
		return Deadline, true
	}
	return None, false
}

// Poll is a cheap cancellation checker for hot loops: it consults the
// context (and the optional deadline) only once every Every iterations,
// so the per-iteration cost is one integer increment and compare.
type Poll struct {
	ctx      context.Context
	deadline time.Time
	every    int
	n        int
}

// DefaultPollInterval bounds how many inner-loop iterations may pass
// between context checks; it is the poll-latency knob tracked by
// BenchmarkCancellationLatency.
const DefaultPollInterval = 64

// NewPoll builds a Poll checking ctx (and deadline, when non-zero) every
// `every` iterations; every <= 0 uses DefaultPollInterval.
func NewPoll(ctx context.Context, deadline time.Time, every int) *Poll {
	if every <= 0 {
		every = DefaultPollInterval
	}
	return &Poll{ctx: ctx, deadline: deadline, every: every}
}

// Interrupted increments the iteration counter and, on every poll
// boundary, reports whether the solve must stop and why.
func (p *Poll) Interrupted() (StopCause, bool) {
	p.n++
	if p.n%p.every != 0 {
		return None, false
	}
	return Interrupted(p.ctx, p.deadline)
}

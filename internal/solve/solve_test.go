package solve

import (
	"context"
	"testing"
	"time"
)

func TestCause(t *testing.T) {
	if c := Cause(nil); c != None {
		t.Errorf("Cause(nil) = %v, want None", c)
	}
	if c := Cause(context.DeadlineExceeded); c != Deadline {
		t.Errorf("Cause(DeadlineExceeded) = %v, want Deadline", c)
	}
	if c := Cause(context.Canceled); c != Cancelled {
		t.Errorf("Cause(Canceled) = %v, want Cancelled", c)
	}
}

func TestInterrupted(t *testing.T) {
	ctx := context.Background()
	if c, done := Interrupted(ctx, time.Time{}); done {
		t.Errorf("background ctx, no deadline: interrupted with %v", c)
	}
	if c, done := Interrupted(ctx, time.Now().Add(-time.Second)); !done || c != Deadline {
		t.Errorf("past deadline: got (%v, %v), want (Deadline, true)", c, done)
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if c, done := Interrupted(cancelled, time.Time{}); !done || c != Cancelled {
		t.Errorf("cancelled ctx: got (%v, %v), want (Cancelled, true)", c, done)
	}
	// Context cancellation wins over an also-expired explicit deadline:
	// the caller's intent to stop is the more specific cause.
	if c, done := Interrupted(cancelled, time.Now().Add(-time.Second)); !done || c != Cancelled {
		t.Errorf("cancelled ctx + past deadline: got (%v, %v), want (Cancelled, true)", c, done)
	}
	expired, cancel2 := context.WithDeadline(ctx, time.Now().Add(-time.Second))
	defer cancel2()
	if c, done := Interrupted(expired, time.Time{}); !done || c != Deadline {
		t.Errorf("deadline-exceeded ctx: got (%v, %v), want (Deadline, true)", c, done)
	}
}

func TestPollChecksOnlyOnBoundary(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := NewPoll(ctx, time.Time{}, 8)
	for i := 1; i <= 16; i++ {
		_, done := p.Interrupted()
		onBoundary := i%8 == 0
		if done != onBoundary {
			t.Fatalf("iteration %d: done=%v, want %v", i, done, onBoundary)
		}
	}
}

func TestPollDefaultInterval(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := NewPoll(ctx, time.Time{}, 0)
	var fired int
	for i := 0; i < 2*DefaultPollInterval; i++ {
		if _, done := p.Interrupted(); done {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("poll fired %d times over two default intervals, want 2", fired)
	}
}

func TestStatsMerge(t *testing.T) {
	a := Stats{SimplexIters: 1, WarmPivots: 1, ColdPivots: 0, Nodes: 2, Incumbents: 3, Columns: 4, PricingRounds: 5,
		MasterTime: time.Second, Wall: time.Minute, Stop: Optimal}
	a.Merge(Stats{SimplexIters: 10, WarmPivots: 6, ColdPivots: 4, Nodes: 20, Incumbents: 30, Columns: 40, PricingRounds: 50,
		MasterTime: time.Second, PricingTime: 2 * time.Second, RoundingTime: 3 * time.Second,
		Wall: time.Hour, Stop: Cancelled})
	if a.SimplexIters != 11 || a.Nodes != 22 || a.Incumbents != 33 || a.Columns != 44 || a.PricingRounds != 55 {
		t.Errorf("counter merge wrong: %+v", a)
	}
	if a.WarmPivots != 7 || a.ColdPivots != 4 {
		t.Errorf("pivot split merge wrong: %+v", a)
	}
	if a.MasterTime != 2*time.Second || a.PricingTime != 2*time.Second || a.RoundingTime != 3*time.Second {
		t.Errorf("phase time merge wrong: %+v", a)
	}
	if a.Wall != time.Minute || a.Stop != Optimal {
		t.Errorf("Wall/Stop must not merge: %+v", a)
	}
}

func TestStopCauseString(t *testing.T) {
	for c, want := range map[StopCause]string{
		None: "none", Optimal: "optimal", Deadline: "deadline",
		Cancelled: "cancelled", NodeLimit: "node-limit", StopCause(99): "unknown",
	} {
		if got := c.String(); got != want {
			t.Errorf("StopCause(%d).String() = %q, want %q", int(c), got, want)
		}
	}
}

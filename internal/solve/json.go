package solve

import (
	"encoding/json"
	"fmt"
	"time"
)

// MarshalJSON renders the cause as its String() form ("deadline", not
// 3), so job results and metrics labels stay readable.
func (c StopCause) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.String())
}

// UnmarshalJSON accepts both the string form and the legacy numeric
// encoding.
func (c *StopCause) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		switch s {
		case "none":
			*c = None
		case "optimal":
			*c = Optimal
		case "deadline":
			*c = Deadline
		case "cancelled":
			*c = Cancelled
		case "node-limit":
			*c = NodeLimit
		default:
			return fmt.Errorf("solve: unknown stop cause %q", s)
		}
		return nil
	}
	var n int
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("solve: stop cause must be a string or integer: %s", b)
	}
	if n < int(None) || n > int(NodeLimit) {
		return fmt.Errorf("solve: stop cause %d out of range", n)
	}
	*c = StopCause(n)
	return nil
}

// statsJSON is the wire form of Stats: durations as Go duration
// strings ("15ms"), the stop cause as its name.
type statsJSON struct {
	SimplexIters  int       `json:"simplexIters,omitempty"`
	WarmPivots    int       `json:"warmPivots,omitempty"`
	ColdPivots    int       `json:"coldPivots,omitempty"`
	Nodes         int       `json:"nodes,omitempty"`
	Incumbents    int       `json:"incumbents,omitempty"`
	Columns       int       `json:"columns,omitempty"`
	PricingRounds int       `json:"pricingRounds,omitempty"`
	MasterTime    string    `json:"masterTime,omitempty"`
	PricingTime   string    `json:"pricingTime,omitempty"`
	RoundingTime  string    `json:"roundingTime,omitempty"`
	Wall          string    `json:"wall,omitempty"`
	Stop          StopCause `json:"stop"`
}

func formatDuration(d time.Duration) string {
	if d == 0 {
		return ""
	}
	return d.String()
}

func parseDuration(s string) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	return time.ParseDuration(s)
}

// MarshalJSON renders the stats with human-readable durations and a
// named stop cause.
func (s Stats) MarshalJSON() ([]byte, error) {
	return json.Marshal(statsJSON{
		SimplexIters:  s.SimplexIters,
		WarmPivots:    s.WarmPivots,
		ColdPivots:    s.ColdPivots,
		Nodes:         s.Nodes,
		Incumbents:    s.Incumbents,
		Columns:       s.Columns,
		PricingRounds: s.PricingRounds,
		MasterTime:    formatDuration(s.MasterTime),
		PricingTime:   formatDuration(s.PricingTime),
		RoundingTime:  formatDuration(s.RoundingTime),
		Wall:          formatDuration(s.Wall),
		Stop:          s.Stop,
	})
}

// UnmarshalJSON parses the wire form written by MarshalJSON.
func (s *Stats) UnmarshalJSON(b []byte) error {
	var j statsJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	out := Stats{
		SimplexIters:  j.SimplexIters,
		WarmPivots:    j.WarmPivots,
		ColdPivots:    j.ColdPivots,
		Nodes:         j.Nodes,
		Incumbents:    j.Incumbents,
		Columns:       j.Columns,
		PricingRounds: j.PricingRounds,
		Stop:          j.Stop,
	}
	var err error
	if out.MasterTime, err = parseDuration(j.MasterTime); err != nil {
		return fmt.Errorf("solve: masterTime: %w", err)
	}
	if out.PricingTime, err = parseDuration(j.PricingTime); err != nil {
		return fmt.Errorf("solve: pricingTime: %w", err)
	}
	if out.RoundingTime, err = parseDuration(j.RoundingTime); err != nil {
		return fmt.Errorf("solve: roundingTime: %w", err)
	}
	if out.Wall, err = parseDuration(j.Wall); err != nil {
		return fmt.Errorf("solve: wall: %w", err)
	}
	*s = out
	return nil
}

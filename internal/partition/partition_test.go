package partition

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/graph"
)

// makeProblem builds a cluster with n services (replicas 2, 1 cpu each)
// and m machines (capacity 8), plus the given affinity edges.
func makeProblem(n, m int, edges [][3]float64) *cluster.Problem {
	g := graph.New(n)
	for _, e := range edges {
		g.AddEdge(int(e[0]), int(e[1]), e[2])
	}
	p := &cluster.Problem{ResourceNames: []string{"cpu"}, Affinity: g}
	for s := 0; s < n; s++ {
		p.Services = append(p.Services, cluster.Service{
			Name: "s", Replicas: 2, Request: cluster.Resources{1},
		})
	}
	for j := 0; j < m; j++ {
		p.Machines = append(p.Machines, cluster.Machine{
			Name: "m", Capacity: cluster.Resources{8},
		})
	}
	return p
}

func TestAlpha(t *testing.T) {
	opts := Options{}
	if a := opts.Alpha(1); a != 1 {
		t.Fatalf("alpha(1) = %v, want 1", a)
	}
	// Small N: formula exceeds 1, must clamp.
	if a := opts.Alpha(10); a != 1 {
		t.Fatalf("alpha(10) = %v, want clamped 1", a)
	}
	// Large N: 45*ln^0.66(N)/N < 1.
	a := opts.Alpha(10000)
	want := 45 * math.Pow(math.Log(10000), 0.66) / 10000
	if math.Abs(a-want) > 1e-12 {
		t.Fatalf("alpha(10000) = %v, want %v", a, want)
	}
	// Override.
	opts.MasterRatio = 0.25
	if a := opts.Alpha(10000); a != 0.25 {
		t.Fatalf("override alpha = %v", a)
	}
}

func TestMultistageNonAffinityTrivial(t *testing.T) {
	// Services 3 and 4 have no edges: always trivial.
	p := makeProblem(5, 4, [][3]float64{{0, 1, 5}, {1, 2, 3}})
	res, err := Multistage(context.Background(), p, cluster.NewAssignment(5, 4), Options{MasterRatio: 1})
	if err != nil {
		t.Fatal(err)
	}
	inTrivial := map[int]bool{}
	for _, s := range res.Trivial {
		inTrivial[s] = true
	}
	if !inTrivial[3] || !inTrivial[4] {
		t.Fatalf("trivial = %v, want to contain 3 and 4", res.Trivial)
	}
	if inTrivial[0] || inTrivial[1] || inTrivial[2] {
		t.Fatalf("affinity services marked trivial: %v", res.Trivial)
	}
}

func TestMultistageMasterSelection(t *testing.T) {
	// 10 services in a star around 0 with decreasing weights; a master
	// ratio of 0.3 must keep the 3 highest-T(s) services.
	edges := [][3]float64{}
	for i := 1; i < 10; i++ {
		edges = append(edges, [3]float64{0, float64(i), float64(10 - i)})
	}
	p := makeProblem(10, 6, edges)
	res, err := Multistage(context.Background(), p, cluster.NewAssignment(10, 6), Options{MasterRatio: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if res.MasterCount != 3 {
		t.Fatalf("masters = %d, want 3", res.MasterCount)
	}
	// T(0)=45 is the hub, then 1 (w=9) and 2 (w=8).
	var crucial []int
	for _, sp := range res.Subproblems {
		crucial = append(crucial, sp.Services...)
	}
	want := map[int]bool{0: true, 1: true, 2: true}
	if len(crucial) != 3 {
		t.Fatalf("crucial services = %v", crucial)
	}
	for _, s := range crucial {
		if !want[s] {
			t.Fatalf("unexpected crucial service %d", s)
		}
	}
}

func TestMultistageCompatBlocks(t *testing.T) {
	// Services {0,1} only on machines {0,1}; {2,3} only on {2,3}:
	// compatibility partitioning must yield two subproblems with
	// disjoint machines.
	p := makeProblem(4, 4, [][3]float64{{0, 1, 1}, {2, 3, 1}})
	p.Schedulable = make([]cluster.Bitmap, 4)
	for s := 0; s < 4; s++ {
		p.Schedulable[s] = cluster.NewBitmap(4)
	}
	p.Schedulable[0].Set(0)
	p.Schedulable[0].Set(1)
	p.Schedulable[1].Set(0)
	p.Schedulable[1].Set(1)
	p.Schedulable[2].Set(2)
	p.Schedulable[2].Set(3)
	p.Schedulable[3].Set(2)
	p.Schedulable[3].Set(3)
	res, err := Multistage(context.Background(), p, cluster.NewAssignment(4, 4), Options{MasterRatio: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Subproblems) != 2 {
		t.Fatalf("subproblems = %d, want 2", len(res.Subproblems))
	}
	for _, sp := range res.Subproblems {
		for _, s := range sp.Services {
			for _, m := range sp.Machines {
				if !p.CanHost(s, m) {
					t.Fatalf("service %d assigned incompatible machine %d", s, m)
				}
			}
		}
	}
}

func TestMultistageUnplaceableService(t *testing.T) {
	p := makeProblem(2, 2, [][3]float64{{0, 1, 1}})
	p.Schedulable = make([]cluster.Bitmap, 2)
	p.Schedulable[0] = nil                  // anywhere
	p.Schedulable[1] = cluster.NewBitmap(2) // nowhere
	res, err := Multistage(context.Background(), p, cluster.NewAssignment(2, 2), Options{MasterRatio: 1})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range res.Trivial {
		if s == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("unplaceable service not trivial: %v", res.Trivial)
	}
}

func TestMultistageResidualCapacity(t *testing.T) {
	// Trivial service 2 (no affinity) occupies 3 cpu on machine 0; the
	// subproblem capacity of machine 0 must be reduced accordingly.
	p := makeProblem(3, 2, [][3]float64{{0, 1, 1}})
	p.Services[2].Request = cluster.Resources{3}
	p.Services[2].Replicas = 1
	cur := cluster.NewAssignment(3, 2)
	cur.Set(2, 0, 1)
	res, err := Multistage(context.Background(), p, cur, Options{MasterRatio: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range res.Subproblems {
		for i, m := range sp.Machines {
			want := 8.0
			if m == 0 {
				want = 5.0
			}
			if math.Abs(sp.Capacity[i][0]-want) > 1e-9 {
				t.Fatalf("machine %d residual = %v, want %v", m, sp.Capacity[i][0], want)
			}
		}
	}
}

func TestMultistageAntiResidual(t *testing.T) {
	// Anti-affinity rule over {0, 2} with cap 3; trivial service 2 has a
	// container on machine 0 -> residual cap there is 2.
	p := makeProblem(3, 2, [][3]float64{{0, 1, 1}})
	p.AntiAffinity = []cluster.AntiAffinityRule{{Services: []int{0, 2}, MaxPerHost: 3}}
	cur := cluster.NewAssignment(3, 2)
	cur.Set(2, 0, 1)
	res, err := Multistage(context.Background(), p, cur, Options{MasterRatio: 1})
	if err != nil {
		t.Fatal(err)
	}
	checked := false
	for _, sp := range res.Subproblems {
		for _, rule := range sp.Anti {
			for i, m := range sp.Machines {
				want := 3
				if m == 0 {
					want = 2
				}
				if rule.Cap[i] != want {
					t.Fatalf("anti cap on machine %d = %d, want %d", m, rule.Cap[i], want)
				}
				checked = true
			}
		}
	}
	if !checked {
		t.Fatal("no anti rules propagated to subproblems")
	}
}

func TestLossMinBalancedSplitsLargeBlocks(t *testing.T) {
	// A 30-service connected chain with TargetSize 10 must be split into
	// multiple subproblems of bounded size.
	edges := [][3]float64{}
	for i := 0; i < 29; i++ {
		edges = append(edges, [3]float64{float64(i), float64(i + 1), 1})
	}
	p := makeProblem(30, 10, edges)
	res, err := Multistage(context.Background(), p, cluster.NewAssignment(30, 10), Options{MasterRatio: 1, TargetSize: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Subproblems) < 2 {
		t.Fatalf("expected multiple subproblems, got %d", len(res.Subproblems))
	}
	var minSz, maxSz = 1 << 30, 0
	for _, sp := range res.Subproblems {
		if len(sp.Services) < minSz {
			minSz = len(sp.Services)
		}
		if len(sp.Services) > maxSz {
			maxSz = len(sp.Services)
		}
	}
	if maxSz > 2*minSz {
		t.Fatalf("unbalanced partition: max %d, min %d", maxSz, minSz)
	}
}

func TestMultistageDeterministic(t *testing.T) {
	edges := [][3]float64{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 60; i++ {
		edges = append(edges, [3]float64{float64(rng.Intn(40)), float64(rng.Intn(40)), rng.Float64() + 0.1})
	}
	p := makeProblem(40, 12, edges)
	a, err := Multistage(context.Background(), p, cluster.NewAssignment(40, 12), Options{Seed: 42, MasterRatio: 1, TargetSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Multistage(context.Background(), p, cluster.NewAssignment(40, 12), Options{Seed: 42, MasterRatio: 1, TargetSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Subproblems) != len(b.Subproblems) {
		t.Fatalf("non-deterministic subproblem count: %d vs %d", len(a.Subproblems), len(b.Subproblems))
	}
	for i := range a.Subproblems {
		as, bs := a.Subproblems[i].Services, b.Subproblems[i].Services
		if len(as) != len(bs) {
			t.Fatalf("subproblem %d size differs", i)
		}
		for j := range as {
			if as[j] != bs[j] {
				t.Fatalf("subproblem %d differs at %d: %d vs %d", i, j, as[j], bs[j])
			}
		}
	}
}

func TestKWayCutSeparatesCliques(t *testing.T) {
	// Two 6-cliques joined by a single light edge: 2-way cut must cut
	// only the bridge.
	g := graph.New(12)
	for a := 0; a < 6; a++ {
		for b := a + 1; b < 6; b++ {
			g.AddEdge(a, b, 10)
			g.AddEdge(a+6, b+6, 10)
		}
	}
	g.AddEdge(0, 6, 0.5)
	part := KWayCut(g, 2, 0.1, rand.New(rand.NewSource(3)))
	if cut := g.CutWeight(part); math.Abs(cut-0.5) > 1e-9 {
		t.Fatalf("cut = %v, want 0.5 (bridge only); part=%v", cut, part)
	}
}

func TestKWayCutBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.New(100)
	for i := 0; i < 300; i++ {
		g.AddEdge(rng.Intn(100), rng.Intn(100), rng.Float64()+0.1)
	}
	k := 5
	part := KWayCut(g, k, 0.1, rng)
	sizes := make([]int, k)
	for _, p := range part {
		if p < 0 || p >= k {
			t.Fatalf("part id %d out of range", p)
		}
		sizes[p]++
	}
	for _, sz := range sizes {
		if sz > int(float64(100)/float64(k)*1.1)+1 {
			t.Fatalf("oversized part: %v", sizes)
		}
	}
}

func TestKWayCutEdgeCases(t *testing.T) {
	g := graph.New(3)
	if part := KWayCut(g, 1, 0.1, rand.New(rand.NewSource(1))); len(part) != 3 {
		t.Fatal("k=1 partition length")
	}
	if part := KWayCut(g, 5, 0.1, rand.New(rand.NewSource(1))); len(part) != 3 {
		t.Fatal("k>n partition length")
	}
	empty := graph.New(0)
	if part := KWayCut(empty, 2, 0.1, rand.New(rand.NewSource(1))); len(part) != 0 {
		t.Fatal("empty graph partition")
	}
}

func TestRandomBaseline(t *testing.T) {
	edges := [][3]float64{}
	for i := 0; i < 20; i++ {
		edges = append(edges, [3]float64{float64(i), float64((i + 1) % 20), 1})
	}
	p := makeProblem(22, 8, edges) // services 20, 21 have no affinity
	res, err := Random(context.Background(), p, cluster.NewAssignment(22, 8), Options{TargetSize: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trivial) != 2 {
		t.Fatalf("trivial = %v, want the 2 non-affinity services", res.Trivial)
	}
	var total int
	for _, sp := range res.Subproblems {
		total += len(sp.Services)
	}
	if total != 20 {
		t.Fatalf("partitioned services = %d, want 20", total)
	}
}

func TestNoneBaseline(t *testing.T) {
	p := makeProblem(5, 3, [][3]float64{{0, 1, 1}})
	res, err := None(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Subproblems) != 1 {
		t.Fatalf("subproblems = %d, want 1", len(res.Subproblems))
	}
	sp := res.Subproblems[0]
	if len(sp.Services) != 5 || len(sp.Machines) != 3 {
		t.Fatalf("full subproblem: %d services, %d machines", len(sp.Services), len(sp.Machines))
	}
}

// Property: for every partitioner, subproblem services are disjoint,
// machines are disjoint, and trivial + crucial covers all services.
func TestPropertyPartitionInvariants(t *testing.T) {
	runAll := func(p *cluster.Problem, cur *cluster.Assignment, seed int64) []*Result {
		var out []*Result
		if r, err := Multistage(context.Background(), p, cur, Options{Seed: seed, TargetSize: 6}); err == nil {
			out = append(out, r)
		}
		if r, err := Random(context.Background(), p, cur, Options{Seed: seed, TargetSize: 6}); err == nil {
			out = append(out, r)
		}
		if r, err := KWay(context.Background(), p, cur, Options{Seed: seed, TargetSize: 6}); err == nil {
			out = append(out, r)
		}
		return out
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		m := 3 + rng.Intn(10)
		edges := [][3]float64{}
		for i := 0; i < 2*n; i++ {
			edges = append(edges, [3]float64{float64(rng.Intn(n)), float64(rng.Intn(n)), rng.Float64() + 0.05})
		}
		p := makeProblem(n, m, edges)
		cur := cluster.NewAssignment(n, m)
		for s := 0; s < n; s++ {
			for i := 0; i < p.Services[s].Replicas; i++ {
				cur.Add(s, rng.Intn(m), 1)
			}
		}
		results := runAll(p, cur, seed)
		if len(results) != 3 {
			return false
		}
		for _, res := range results {
			seenS := map[int]bool{}
			seenM := map[int]bool{}
			for _, sp := range res.Subproblems {
				for _, s := range sp.Services {
					if seenS[s] {
						return false
					}
					seenS[s] = true
				}
				for _, mach := range sp.Machines {
					if seenM[mach] {
						return false
					}
					seenM[mach] = true
				}
			}
			for _, s := range res.Trivial {
				if seenS[s] {
					return false // trivial service also crucial
				}
				seenS[s] = true
			}
			if len(seenS) != n {
				return false // some service unaccounted for
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Statistical property: on skewed (star-heavy) affinity graphs the
// loss-minimizing multistage partition loses less affinity than random
// partitioning on average — the effect Fig. 6 measures. Individual seeds
// may flip, so compare means over many seeds.
func TestSkewFavorsMultistageOnAverage(t *testing.T) {
	var msLost, rdLost float64
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n, m := 30, 10
		// Star-heavy affinity: a few hubs carry most weight.
		edges := [][3]float64{}
		for i := 1; i < n; i++ {
			hub := rng.Intn(3)
			w := 100 / math.Pow(float64(i), 1.5)
			edges = append(edges, [3]float64{float64(hub), float64(i), w})
		}
		p := makeProblem(n, m, edges)
		cur := cluster.NewAssignment(n, m)
		ms, err1 := Multistage(context.Background(), p, cur, Options{Seed: seed, TargetSize: 8, MasterRatio: 1})
		rd, err2 := Random(context.Background(), p, cur, Options{Seed: seed, TargetSize: 8})
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		msLost += ms.LostAffinity
		rdLost += rd.LostAffinity
	}
	if msLost >= rdLost {
		t.Fatalf("multistage mean lost affinity %v >= random %v", msLost/30, rdLost/30)
	}
}

func BenchmarkMultistage(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	n, m := 400, 80
	edges := [][3]float64{}
	for i := 0; i < 3*n; i++ {
		edges = append(edges, [3]float64{float64(rng.Intn(n)), float64(rng.Intn(n)), rng.Float64()})
	}
	p := makeProblem(n, m, edges)
	cur := cluster.NewAssignment(n, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Multistage(context.Background(), p, cur, Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKWayCut(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	g := graph.New(500)
	for i := 0; i < 2000; i++ {
		g.AddEdge(rng.Intn(500), rng.Intn(500), rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KWayCut(g, 10, 0.1, rand.New(rand.NewSource(int64(i))))
	}
}

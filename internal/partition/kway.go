package partition

import (
	"math/rand"

	"github.com/cloudsched/rasa/internal/graph"
)

// KWayCut computes a balanced k-way min-weight-cut partition of a graph
// using the multilevel scheme popularized by METIS/KaHIP: heavy-edge
// matching coarsening, greedy region-growing initial partitioning, and
// Fiduccia–Mattheyses-style boundary refinement during uncoarsening.
//
// It stands in for KaHIP in the Fig. 6 comparison: a strong balanced
// min-cut partitioner that — unlike the multi-stage partitioner — is
// oblivious to affinity skewness and optimizes cut weight under a hard
// balance constraint.
//
// The returned slice maps each vertex to its part in [0, k). Balance is
// enforced within factor (1 + imbalance) of the average part weight,
// counting unit vertex weights.
func KWayCut(g *graph.Graph, k int, imbalance float64, rng *rand.Rand) []int {
	n := g.N()
	if k <= 1 || n == 0 {
		return make([]int, n)
	}
	if k >= n {
		part := make([]int, n)
		for i := range part {
			part[i] = i % k
		}
		return part
	}
	if imbalance <= 0 {
		imbalance = 0.10
	}
	lvl := &level{g: g, weight: ones(n)}
	return lvl.partition(k, imbalance, rng)
}

type level struct {
	g      *graph.Graph
	weight []int // vertex weights (coarse vertices aggregate fine ones)
	// mapping from this level's vertices to the coarser level's.
	coarseOf []int
	coarser  *level
}

func ones(n int) []int {
	w := make([]int, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// partition recursively coarsens, partitions the coarsest level, then
// projects back with refinement.
func (l *level) partition(k int, imbalance float64, rng *rand.Rand) []int {
	const coarsestTarget = 40
	if l.g.N() > coarsestTarget*k && l.g.M() > 0 {
		if ok := l.coarsen(rng); ok {
			coarsePart := l.coarser.partition(k, imbalance, rng)
			part := make([]int, l.g.N())
			for v := range part {
				part[v] = coarsePart[l.coarseOf[v]]
			}
			l.refine(part, k, imbalance)
			return part
		}
	}
	part := l.initial(k, rng)
	l.refine(part, k, imbalance)
	return part
}

// coarsen builds the next level via heavy-edge matching. Returns false
// if matching makes no progress (e.g. edgeless graph).
func (l *level) coarsen(rng *rand.Rand) bool {
	n := l.g.N()
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(n)
	matched := 0
	for _, v := range order {
		if match[v] != -1 {
			continue
		}
		bestU, bestW := -1, 0.0
		for _, h := range l.g.Neighbors(v) {
			if match[h.To] == -1 && h.To != v && h.Weight > bestW {
				bestU, bestW = h.To, h.Weight
			}
		}
		if bestU >= 0 {
			match[v] = bestU
			match[bestU] = v
			matched++
		}
	}
	if matched == 0 {
		return false
	}
	coarseOf := make([]int, n)
	for i := range coarseOf {
		coarseOf[i] = -1
	}
	var nc int
	for v := 0; v < n; v++ {
		if coarseOf[v] != -1 {
			continue
		}
		coarseOf[v] = nc
		if u := match[v]; u != -1 {
			coarseOf[u] = nc
		}
		nc++
	}
	cg := graph.New(nc)
	cw := make([]int, nc)
	for v := 0; v < n; v++ {
		cw[coarseOf[v]] += l.weight[v]
	}
	for _, e := range l.g.Edges() {
		cu, cv := coarseOf[e.U], coarseOf[e.V]
		if cu != cv {
			cg.AddEdge(cu, cv, e.Weight)
		}
	}
	l.coarseOf = coarseOf
	l.coarser = &level{g: cg, weight: cw}
	return true
}

// initial grows k regions greedily from high-degree seeds.
func (l *level) initial(k int, rng *rand.Rand) []int {
	n := l.g.N()
	part := make([]int, n)
	for i := range part {
		part[i] = -1
	}
	total := 0
	for _, w := range l.weight {
		total += w
	}
	cap := (total + k - 1) / k

	order := l.g.RankByTotalAffinity()
	sizes := make([]int, k)
	// Seed each part with the heaviest unassigned vertex.
	seeds := make([]int, 0, k)
	for _, v := range order {
		if len(seeds) == k {
			break
		}
		part[v] = len(seeds)
		sizes[len(seeds)] += l.weight[v]
		seeds = append(seeds, v)
	}
	// BFS growth, bounded by cap.
	queue := append([]int(nil), seeds...)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		pv := part[v]
		for _, h := range l.g.Neighbors(v) {
			u := h.To
			if part[u] != -1 || sizes[pv]+l.weight[u] > cap {
				continue
			}
			part[u] = pv
			sizes[pv] += l.weight[u]
			queue = append(queue, u)
		}
	}
	// Remaining vertices: smallest part first.
	for v := 0; v < n; v++ {
		if part[v] != -1 {
			continue
		}
		smallest := 0
		for p := 1; p < k; p++ {
			if sizes[p] < sizes[smallest] {
				smallest = p
			}
		}
		part[v] = smallest
		sizes[smallest] += l.weight[v]
	}
	return part
}

// refine performs boundary FM passes: move vertices to the neighboring
// part with the best cut gain while balance permits.
func (l *level) refine(part []int, k int, imbalance float64) {
	n := l.g.N()
	total := 0
	for _, w := range l.weight {
		total += w
	}
	maxSize := int(float64(total)/float64(k)*(1+imbalance)) + 1
	sizes := make([]int, k)
	for v := 0; v < n; v++ {
		sizes[part[v]] += l.weight[v]
	}
	gainTo := make([]float64, k)
	const passes = 3
	for pass := 0; pass < passes; pass++ {
		moved := 0
		for v := 0; v < n; v++ {
			pv := part[v]
			for i := range gainTo {
				gainTo[i] = 0
			}
			touched := []int{}
			for _, h := range l.g.Neighbors(v) {
				pu := part[h.To]
				if gainTo[pu] == 0 {
					touched = append(touched, pu)
				}
				gainTo[pu] += h.Weight
			}
			bestP, bestGain := pv, 0.0
			for _, p := range touched {
				if p == pv {
					continue
				}
				if sizes[p]+l.weight[v] > maxSize {
					continue
				}
				if g := gainTo[p] - gainTo[pv]; g > bestGain+1e-12 {
					bestP, bestGain = p, g
				}
			}
			if bestP != pv {
				sizes[pv] -= l.weight[v]
				sizes[bestP] += l.weight[v]
				part[v] = bestP
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}

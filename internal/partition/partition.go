// Package partition implements the service-partitioning phase of the
// RASA algorithm (Section IV-B): the multi-stage technique that splits a
// cluster-scale problem into small subproblems focused on the services
// that carry most of the affinity, plus the baseline partitioners the
// paper compares against in Section V-B (random, k-way min-cut à la
// KaHIP, and no partitioning).
//
// The stages of the multi-stage partitioner are:
//
//  1. Non-affinity partitioning — services with no affinity edges are
//     trivial and stay put.
//  2. Master-affinity partitioning — only the top ceil(alpha*N) services
//     by total affinity T(s) are optimized; under the power-law
//     Assumption 4.1 the rest contribute o(1) affinity (Lemma 1). The
//     default ratio is the paper's production choice
//     alpha = 45 * ln^0.66(N) / N.
//  3. Compatibility partitioning — services that share no compatible
//     machine can be scheduled separately with no loss; blocks are the
//     connected components of the service–machine compatibility
//     relation.
//  4. Loss-minimization balanced partitioning — oversized blocks are
//     split by the sampled multi-source-BFS heuristic, keeping the
//     partition balanced (largest subset at most twice the smallest)
//     while minimizing the affinity cut.
//
// Finally machines are distributed to subproblems proportionally to
// requested resources, with capacities reduced by the usage of trivial
// services that remain in place (Section IV-B5).
package partition

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"github.com/cloudsched/rasa/internal/cluster"
)

// Options tune the partitioners.
type Options struct {
	// MasterCoeff and MasterExp define the master ratio
	// alpha = MasterCoeff * ln^MasterExp(N) / N. Defaults: 45 and 0.66
	// (the paper's production values, Section V-B).
	MasterCoeff float64
	MasterExp   float64
	// MasterRatio, when > 0, overrides the computed alpha (used by the
	// Fig. 7 master-ratio sweep).
	MasterRatio float64
	// TargetSize is the desired number of services per subproblem for
	// stage 4; default 15.
	TargetSize int
	// SampleCap bounds the number of sampled partitions in stage 4 (the
	// paper uses |E|, which is capped here for predictable runtime);
	// default 64. This is the ablation knob of
	// BenchmarkAblationSampleCount.
	SampleCap int
	// Seed drives the stage-4 sampling; the partitioner is deterministic
	// for a fixed seed.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.MasterCoeff == 0 {
		o.MasterCoeff = 45
	}
	if o.MasterExp == 0 {
		o.MasterExp = 0.66
	}
	if o.TargetSize <= 0 {
		o.TargetSize = 15
	}
	if o.SampleCap <= 0 {
		o.SampleCap = 64
	}
	return o
}

// Alpha returns the master ratio used for a problem of N services.
func (o Options) Alpha(n int) float64 {
	o = o.withDefaults()
	if o.MasterRatio > 0 {
		return math.Min(o.MasterRatio, 1)
	}
	if n <= 1 {
		return 1
	}
	a := o.MasterCoeff * math.Pow(math.Log(float64(n)), o.MasterExp) / float64(n)
	return math.Min(a, 1)
}

// Result is the outcome of a partitioning pass.
type Result struct {
	Subproblems []*cluster.Subproblem
	// Trivial lists services that are not re-optimized (non-affinity,
	// non-master, or unplaceable); their containers stay where they are.
	Trivial []int
	// MasterCount is the number of crucial services optimized.
	MasterCount int
	// Alpha is the master ratio actually applied.
	Alpha float64
	// LostAffinity is the total weight of affinity edges not internal to
	// any subproblem — the optimality the partitioning gives up.
	LostAffinity float64
	// Elapsed is the partitioning wall time (the <10% overhead figure of
	// the supplementary material).
	Elapsed time.Duration
}

// Multistage runs the full four-stage partitioner. current is the
// cluster's existing assignment, used to carve trivial services' usage
// out of machine capacities. Partitioning is best-effort under
// cancellation: a done context stops the stage-4 sampling early and the
// partitioner returns a valid (if less balanced) result rather than an
// error, so downstream anytime solves still get subproblems to work on.
func Multistage(ctx context.Context, p *cluster.Problem, current *cluster.Assignment, opts Options) (*Result, error) {
	start := time.Now()
	opts = opts.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.N()
	trivial := make([]bool, n)

	// Stage 1: non-affinity partitioning.
	ts := p.Affinity.TotalAffinities()
	for s := 0; s < n; s++ {
		if ts[s] == 0 {
			trivial[s] = true
		}
	}

	// Stage 2: master-affinity partitioning.
	alpha := opts.Alpha(n)
	masterQuota := int(math.Ceil(alpha * float64(n)))
	order := p.Affinity.RankByTotalAffinity()
	var masters []int
	for _, s := range order {
		if len(masters) >= masterQuota {
			break
		}
		if trivial[s] {
			continue // zero-affinity services are never masters
		}
		masters = append(masters, s)
	}
	masterSet := make(map[int]bool, len(masters))
	for _, s := range masters {
		masterSet[s] = true
	}
	for s := 0; s < n; s++ {
		if !masterSet[s] {
			trivial[s] = true
		}
	}

	// Stage 3: compatibility partitioning via union-find over services
	// and machines.
	blocks, unplaceable := compatibilityBlocks(p, masters)
	for _, s := range unplaceable {
		trivial[s] = true
		delete(masterSet, s)
	}

	// Stage 4: loss-minimization balanced partitioning of large blocks.
	rng := rand.New(rand.NewSource(opts.Seed))
	var groups [][]int
	for _, b := range blocks {
		if len(b) <= opts.TargetSize {
			groups = append(groups, b)
			continue
		}
		groups = append(groups, lossMinBalanced(ctx, p, b, opts, rng)...)
	}

	res := &Result{Alpha: alpha, MasterCount: len(masterSet)}
	for s := 0; s < n; s++ {
		if trivial[s] {
			res.Trivial = append(res.Trivial, s)
		}
	}
	subs, err := AssignMachines(p, current, groups, res.Trivial)
	if err != nil {
		return nil, err
	}
	res.Subproblems = subs
	res.LostAffinity = lostAffinity(p, subs)
	res.Elapsed = time.Since(start)
	return res, nil
}

// compatibilityBlocks groups the given services into connected
// components of the service–machine compatibility relation. Services
// with no compatible machine are returned separately as unplaceable.
func compatibilityBlocks(p *cluster.Problem, services []int) (blocks [][]int, unplaceable []int) {
	m := p.M()
	// Union-find over services (ids 0..len-1) and machines (offset).
	parent := make([]int, len(services)+m)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	hasMachine := make([]bool, len(services))
	for i, s := range services {
		for mach := 0; mach < m; mach++ {
			if p.CanHost(s, mach) {
				union(i, len(services)+mach)
				hasMachine[i] = true
			}
		}
	}
	byRoot := make(map[int][]int)
	for i, s := range services {
		if !hasMachine[i] {
			unplaceable = append(unplaceable, s)
			continue
		}
		r := find(i)
		byRoot[r] = append(byRoot[r], s)
	}
	roots := make([]int, 0, len(byRoot))
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	for _, r := range roots {
		b := byRoot[r]
		sort.Ints(b)
		blocks = append(blocks, b)
	}
	return blocks, unplaceable
}

// Block is one compatibility block of the cluster: a set of services
// together with every machine any of them can run on. Blocks are
// independent by construction — no service of one block can ever be
// placed on a machine of another — which is the invariant the
// federation layer (internal/fed) shards on.
type Block struct {
	// Services holds global service indices, sorted ascending.
	Services []int
	// Machines holds global machine indices, sorted ascending.
	Machines []int
}

// Blocks partitions the whole cluster into compatibility blocks — the
// stage-3 union-find over CanHost (Section IV-B3) run on every service,
// additionally attributing each machine to the block it can host.
// Unplaceable services (no compatible machine) and orphan machines
// (hostable by no service) are folded into the first block so the union
// of all blocks is exactly the cluster. Well-formed clusters produce
// neither; the fold keeps every index owned by some block regardless.
func Blocks(p *cluster.Problem) []Block {
	n, m := p.N(), p.M()
	parent := make([]int, n+m)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	hasMachine := make([]bool, n)
	machUsed := make([]bool, m)
	for s := 0; s < n; s++ {
		for mach := 0; mach < m; mach++ {
			if p.CanHost(s, mach) {
				union(s, n+mach)
				hasMachine[s] = true
				machUsed[mach] = true
			}
		}
	}
	type group struct {
		svcs, machs []int
	}
	byRoot := make(map[int]*group)
	var unplaced []int
	for s := 0; s < n; s++ {
		if !hasMachine[s] {
			unplaced = append(unplaced, s)
			continue
		}
		r := find(s)
		g := byRoot[r]
		if g == nil {
			g = &group{}
			byRoot[r] = g
		}
		g.svcs = append(g.svcs, s)
	}
	var orphans []int
	for mach := 0; mach < m; mach++ {
		if !machUsed[mach] {
			orphans = append(orphans, mach)
			continue
		}
		// A used machine always shares a root with at least one service.
		byRoot[find(n+mach)].machs = append(byRoot[find(n+mach)].machs, mach)
	}
	groups := make([]*group, 0, len(byRoot))
	for _, g := range byRoot {
		groups = append(groups, g)
	}
	// Services were appended in ascending order, so svcs[0] is each
	// group's minimum — a stable sort key independent of union order.
	sort.Slice(groups, func(a, b int) bool { return groups[a].svcs[0] < groups[b].svcs[0] })
	if len(groups) == 0 {
		groups = append(groups, &group{})
	}
	groups[0].svcs = append(groups[0].svcs, unplaced...)
	groups[0].machs = append(groups[0].machs, orphans...)
	sort.Ints(groups[0].svcs)
	sort.Ints(groups[0].machs)
	out := make([]Block, len(groups))
	for i, g := range groups {
		out[i] = Block{Services: g.svcs, Machines: g.machs}
	}
	return out
}

// lossMinBalanced implements the stage-4 heuristic (Section IV-B4):
// sample seed sets, grow subsets by multi-source BFS on the induced
// affinity graph, keep balanced partitions, and return the one with the
// minimum affinity cut. A done context stops the sampling loop after the
// current trial; the best partition found so far (or the round-robin
// fallback) is returned, never an error.
func lossMinBalanced(ctx context.Context, p *cluster.Problem, block []int, opts Options, rng *rand.Rand) [][]int {
	sub, orig := p.Affinity.Subgraph(block)
	n := len(block)
	h := (n + opts.TargetSize - 1) / opts.TargetSize
	if h < 2 {
		h = 2
	}
	samples := sub.M()
	if samples > opts.SampleCap {
		samples = opts.SampleCap
	}
	if samples < 1 {
		samples = 1
	}

	type cand struct {
		part  []int
		cut   float64
		ratio float64 // max/min subset size
	}
	best := cand{ratio: math.Inf(1), cut: math.Inf(1)}
	bestBalanced := false
	for trial := 0; trial < samples; trial++ {
		if ctx.Err() != nil {
			break
		}
		seeds := rng.Perm(n)[:h]
		owner := sub.BFSFrom(seeds)
		sizes := make([]int, h)
		// Unreached vertices (disconnected from every seed) are spread
		// round-robin over the smallest subsets; they carry no internal
		// edges toward the seeds' regions, so the cut is unaffected.
		for v := 0; v < n; v++ {
			if owner[v] >= 0 {
				sizes[owner[v]]++
			}
		}
		for v := 0; v < n; v++ {
			if owner[v] < 0 {
				smallest := 0
				for k := 1; k < h; k++ {
					if sizes[k] < sizes[smallest] {
						smallest = k
					}
				}
				owner[v] = smallest
				sizes[smallest]++
			}
		}
		minSz, maxSz := n, 0
		for _, sz := range sizes {
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
		}
		if minSz == 0 {
			continue // a seed claimed nothing useful; degenerate sample
		}
		ratio := float64(maxSz) / float64(minSz)
		balanced := maxSz <= 2*minSz
		cut := sub.CutWeight(owner)
		better := false
		switch {
		case balanced && !bestBalanced:
			better = true
		case balanced == bestBalanced && balanced:
			better = cut < best.cut
		case balanced == bestBalanced: // both unbalanced: prefer closer to balance, then cut
			better = ratio < best.ratio || (ratio == best.ratio && cut < best.cut)
		}
		if better {
			best = cand{part: append([]int(nil), owner...), cut: cut, ratio: ratio}
			bestBalanced = balanced
		}
	}
	if best.part == nil {
		// All samples degenerate (e.g. n < h); fall back to round-robin.
		best.part = make([]int, n)
		for v := 0; v < n; v++ {
			best.part[v] = v % h
		}
	}
	out := make([][]int, h)
	for v, k := range best.part {
		out[k] = append(out[k], orig[v])
	}
	var nonEmpty [][]int
	for _, g := range out {
		if len(g) > 0 {
			sort.Ints(g)
			nonEmpty = append(nonEmpty, g)
		}
	}
	return nonEmpty
}

// lostAffinity computes the affinity weight not internal to any
// subproblem.
func lostAffinity(p *cluster.Problem, subs []*cluster.Subproblem) float64 {
	id := make([]int, p.N())
	for i := range id {
		id[i] = -1
	}
	for k, sp := range subs {
		for _, s := range sp.Services {
			id[s] = k
		}
	}
	var lost float64
	for _, e := range p.Affinity.Edges() {
		if id[e.U] < 0 || id[e.U] != id[e.V] {
			lost += e.Weight
		}
	}
	return lost
}

// AssignMachines distributes machines among service groups
// proportionally to requested resources and builds the subproblems with
// residual capacities (Section IV-B5). Trivial services' current usage
// is carved out of the capacities of the machines that host them.
func AssignMachines(p *cluster.Problem, current *cluster.Assignment, groups [][]int, trivial []int) ([]*cluster.Subproblem, error) {
	isTrivial := make([]bool, p.N())
	for _, s := range trivial {
		isTrivial[s] = true
	}
	// Residual machine capacities after trivial usage.
	residual := make([]cluster.Resources, p.M())
	for m := range residual {
		residual[m] = p.Machines[m].Capacity.Clone()
	}
	antiResidual := make([][]int, len(p.AntiAffinity))
	for k, rule := range p.AntiAffinity {
		antiResidual[k] = make([]int, p.M())
		for m := range antiResidual[k] {
			antiResidual[k][m] = rule.MaxPerHost
		}
	}
	if current != nil {
		current.EachPlacement(func(s, m, count int) {
			if !isTrivial[s] {
				return
			}
			residual[m] = residual[m].Sub(p.Services[s].Request.Scale(float64(count)))
			for r := range residual[m] {
				if residual[m][r] < 0 {
					residual[m][r] = 0
				}
			}
			for k, rule := range p.AntiAffinity {
				for _, rs := range rule.Services {
					if rs == s {
						antiResidual[k][m] -= count
						if antiResidual[k][m] < 0 {
							antiResidual[k][m] = 0
						}
					}
				}
			}
		})
	}

	// Demand per group (primary resource, index 0, as scalar proxy).
	if len(groups) == 0 {
		return nil, nil
	}
	demand := make([]float64, len(groups))
	for k, g := range groups {
		for _, s := range g {
			demand[k] += p.Services[s].Request[0] * float64(p.Services[s].Replicas)
		}
		if demand[k] == 0 {
			demand[k] = 1e-9
		}
	}

	// Distribute machines: each machine goes to the compatible group
	// with the largest unmet demand fraction.
	assignedCap := make([]float64, len(groups))
	machineOf := make([]int, p.M())
	for m := range machineOf {
		machineOf[m] = -1
	}
	// Deterministic machine order: by descending residual primary
	// capacity, ties by index, so large machines are spread first.
	order := make([]int, p.M())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return residual[order[a]][0] > residual[order[b]][0]
	})
	// Each group receives machines until it holds ~capSlack times its
	// requested resources (Section IV-B5 assigns machines proportional
	// to demand) AND enough machines to satisfy its strictest
	// anti-affinity spread requirement (a service capped at h containers
	// per machine needs at least ceil(d/h) machines). Machines beyond
	// that stay unassigned: they keep their trivial load and absorb
	// default-scheduler spill. Capping the assignment is also what keeps
	// subproblem formulations small.
	const capSlack = 1.6
	minCount := make([]int, len(groups))
	for k, g := range groups {
		minCount[k] = 1
		for _, s := range g {
			for _, rule := range p.AntiAffinity {
				if len(rule.Services) != 1 || rule.Services[0] != s || rule.MaxPerHost <= 0 {
					continue
				}
				need := (p.Services[s].Replicas + rule.MaxPerHost - 1) / rule.MaxPerHost
				// Headroom: residual caps on specific machines may be
				// tighter than the raw rule.
				need = need + (need+3)/4
				if need > minCount[k] {
					minCount[k] = need
				}
			}
		}
	}
	assignedCount := make([]int, len(groups))
	for _, m := range order {
		best := -1
		bestNeed := 0.0
		for k, g := range groups {
			capOK := assignedCap[k] >= capSlack*demand[k]
			countOK := assignedCount[k] >= minCount[k]
			if capOK && countOK {
				continue
			}
			compatible := false
			for _, s := range g {
				if p.CanHost(s, m) {
					compatible = true
					break
				}
			}
			if !compatible {
				continue
			}
			need := (demand[k] - assignedCap[k]) / demand[k]
			if !countOK {
				if deficit := float64(minCount[k]-assignedCount[k]) / float64(minCount[k]); deficit > need {
					need = deficit
				}
			}
			if best == -1 || need > bestNeed {
				best, bestNeed = k, need
			}
		}
		if best >= 0 {
			machineOf[m] = best
			assignedCap[best] += residual[m][0]
			assignedCount[best]++
		}
	}

	// Repair pass: a group containing a compatibility-restricted service
	// must hold enough machines that service can actually run on —
	// otherwise the subproblem strands it (overlapping compatibility
	// classes are merged into one block by stage 3, so the proportional
	// pass alone cannot guarantee this). Steal the largest compatible
	// machines from other groups until the restricted demand fits.
	for k, g := range groups {
		for _, s := range g {
			restricted := false
			if p.Schedulable != nil && p.Schedulable[s] != nil {
				restricted = true
			}
			if !restricted {
				continue
			}
			needCap := p.Services[s].Request[0] * float64(p.Services[s].Replicas)
			var haveCap float64
			for m := 0; m < p.M(); m++ {
				if machineOf[m] == k && p.CanHost(s, m) {
					haveCap += residual[m][0]
				}
			}
			for haveCap < needCap {
				steal := -1
				for m := 0; m < p.M(); m++ {
					if machineOf[m] == k || !p.CanHost(s, m) {
						continue
					}
					if steal < 0 || residual[m][0] > residual[steal][0] ||
						(residual[m][0] == residual[steal][0] && machineOf[m] < 0 && machineOf[steal] >= 0) {
						steal = m
					}
				}
				if steal < 0 || residual[steal][0] == 0 {
					break // no compatible capacity exists anywhere
				}
				if prev := machineOf[steal]; prev >= 0 {
					assignedCap[prev] -= residual[steal][0]
				}
				machineOf[steal] = k
				assignedCap[k] += residual[steal][0]
				haveCap += residual[steal][0]
			}
		}
	}

	var subs []*cluster.Subproblem
	for k, g := range groups {
		if len(g) == 0 {
			continue
		}
		sp := &cluster.Subproblem{P: p}
		sp.Services = append(sp.Services, g...)
		sort.Ints(sp.Services)
		for m := 0; m < p.M(); m++ {
			if machineOf[m] == k {
				sp.Machines = append(sp.Machines, m)
				sp.Capacity = append(sp.Capacity, residual[m].Clone())
			}
		}
		inGroup := make(map[int]bool, len(g))
		for _, s := range g {
			inGroup[s] = true
		}
		for rk, rule := range p.AntiAffinity {
			var members []int
			for _, s := range rule.Services {
				if inGroup[s] {
					members = append(members, s)
				}
			}
			if len(members) == 0 {
				continue
			}
			caps := make([]int, len(sp.Machines))
			for i, m := range sp.Machines {
				caps[i] = antiResidual[rk][m]
			}
			sp.Anti = append(sp.Anti, cluster.ResidualAntiRule{Services: members, Cap: caps})
		}
		if err := sp.Validate(); err != nil {
			return nil, fmt.Errorf("partition: invalid subproblem %d: %w", k, err)
		}
		subs = append(subs, sp)
	}
	return subs, nil
}

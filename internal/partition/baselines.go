package partition

import (
	"context"
	"math/rand"
	"time"

	"github.com/cloudsched/rasa/internal/cluster"
)

// affinityServices returns the services with at least one affinity edge
// (everything else can never contribute gained affinity).
func affinityServices(p *cluster.Problem) (withAffinity, without []int) {
	ts := p.Affinity.TotalAffinities()
	for s := 0; s < p.N(); s++ {
		if ts[s] > 0 {
			withAffinity = append(withAffinity, s)
		} else {
			without = append(without, s)
		}
	}
	return
}

// Random implements the RANDOM-PARTITION baseline of Section V-B: the
// affinity-bearing services are split uniformly at random into groups of
// roughly TargetSize, ignoring affinity structure entirely.
func Random(ctx context.Context, p *cluster.Problem, current *cluster.Assignment, opts Options) (*Result, error) {
	_ = ctx // random partitioning has no loop worth interrupting
	start := time.Now()
	opts = opts.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	withAff, trivial := affinityServices(p)
	rng := rand.New(rand.NewSource(opts.Seed))
	perm := rng.Perm(len(withAff))
	k := (len(withAff) + opts.TargetSize - 1) / opts.TargetSize
	if k < 1 {
		k = 1
	}
	groups := make([][]int, k)
	for i, pi := range perm {
		groups[i%k] = append(groups[i%k], withAff[pi])
	}
	subs, err := AssignMachines(p, current, groups, trivial)
	if err != nil {
		return nil, err
	}
	return &Result{
		Subproblems:  subs,
		Trivial:      trivial,
		MasterCount:  len(withAff),
		Alpha:        1,
		LostAffinity: lostAffinity(p, subs),
		Elapsed:      time.Since(start),
	}, nil
}

// KWay implements the KAHIP baseline of Section V-B: the affinity graph
// over affinity-bearing services is split by the multilevel min-weight
// balanced k-way partitioner, again without master or compatibility
// awareness.
func KWay(ctx context.Context, p *cluster.Problem, current *cluster.Assignment, opts Options) (*Result, error) {
	_ = ctx // the multilevel cut is fast relative to any solve budget
	start := time.Now()
	opts = opts.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	withAff, trivial := affinityServices(p)
	sub, orig := p.Affinity.Subgraph(withAff)
	k := (len(withAff) + opts.TargetSize - 1) / opts.TargetSize
	if k < 1 {
		k = 1
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	part := KWayCut(sub, k, 0.10, rng)
	groups := make([][]int, k)
	for v, pt := range part {
		groups[pt] = append(groups[pt], orig[v])
	}
	var nonEmpty [][]int
	for _, g := range groups {
		if len(g) > 0 {
			nonEmpty = append(nonEmpty, g)
		}
	}
	subs, err := AssignMachines(p, current, nonEmpty, trivial)
	if err != nil {
		return nil, err
	}
	return &Result{
		Subproblems:  subs,
		Trivial:      trivial,
		MasterCount:  len(withAff),
		Alpha:        1,
		LostAffinity: lostAffinity(p, subs),
		Elapsed:      time.Since(start),
	}, nil
}

// None implements the NO-PARTITION baseline: the entire problem is one
// subproblem over all services and raw machine capacities. On anything
// but small clusters this is the configuration that goes out-of-time in
// Fig. 6.
func None(ctx context.Context, p *cluster.Problem) (*Result, error) {
	_ = ctx // nothing to interrupt: the full problem is the one subproblem
	start := time.Now()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	sp := cluster.FullSubproblem(p)
	return &Result{
		Subproblems: []*cluster.Subproblem{sp},
		MasterCount: p.N(),
		Alpha:       1,
		Elapsed:     time.Since(start),
	}, nil
}

// Package model translates RASA subproblems into mathematical
// programming formulations: the direct MIP of Section II-C (expressions
// (2)–(9)) for the MIP-based algorithm, and machine grouping plus
// pattern utilities shared with the column-generation algorithm
// (Section IV-C2).
//
// All variable indexing is local to the subproblem; Placements translate
// solutions back to original service/machine ids.
package model

import (
	"fmt"
	"math"
	"sort"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/lp"
	"github.com/cloudsched/rasa/internal/mip"
)

// Placement is one entry of a solved subproblem: count containers of an
// original service on an original machine.
type Placement struct {
	Service int
	Machine int
	Count   int
}

// localEdge is an affinity edge between two local service indices.
type localEdge struct {
	i, j int // local service indices, i < j
	w    float64
}

// MIPModel is the direct MIP formulation of a subproblem.
type MIPModel struct {
	Prob mip.Problem

	sp    *cluster.Subproblem
	nS    int   // services
	nM    int   // machines
	xIdx  []int // [si*nM+mi] -> variable index or -1 if not schedulable
	nx    int   // number of x variables
	edges []localEdge
	// aIdx[e*nM+mi] -> variable index or -1
	aIdx []int
	// placementBonus is the tiny per-container objective reward that
	// makes the solver prefer placing containers when affinity is
	// indifferent; excluded from reported affinity values.
	placementBonus float64
}

// BuildMIP constructs the MIP formulation for a subproblem:
//
//	max   sum_e sum_m a_{e,m} + bonus * sum x        (2)
//	s.t.  sum_m x_{s,m} <= d_s                       (3, relaxed to <=)
//	      sum_s R_{r,s} x_{s,m} <= C_{r,m}           (4)
//	      sum_{s in A_k} x_{s,m} <= h_{k,m}          (5)
//	      x_{s,m} = 0 where !b_{s,m}                 (6, by omission)
//	      a_{e,m} <= (w_e/d_s)  x_{s,m}              (7)
//	      a_{e,m} <= (w_e/d_s') x_{s',m}             (8)
//	      x integer >= 0, a >= 0                     (9)
//
// The SLA row is relaxed from equality because subproblem machines may
// not fit every container; the paper treats unplaced containers as
// acceptable and hands them to the default scheduler (Section IV-B5).
// The small placement bonus keeps solutions from gratuitously dropping
// containers.
func BuildMIP(sp *cluster.Subproblem) (*MIPModel, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	m := &MIPModel{sp: sp, nS: len(sp.Services), nM: len(sp.Machines)}
	p := sp.P

	// x variables for schedulable (service, machine) pairs.
	m.xIdx = make([]int, m.nS*m.nM)
	for i := range m.xIdx {
		m.xIdx[i] = -1
	}
	var nv int
	for si, s := range sp.Services {
		for mi, mach := range sp.Machines {
			if p.CanHost(s, mach) {
				m.xIdx[si*m.nM+mi] = nv
				nv++
			}
		}
	}
	m.nx = nv

	// Affinity edges internal to the subproblem.
	local := make(map[int]int, m.nS)
	for si, s := range sp.Services {
		local[s] = si
	}
	for _, e := range p.Affinity.Edges() {
		i, okI := local[e.U]
		j, okJ := local[e.V]
		if !okI || !okJ {
			continue
		}
		if i > j {
			i, j = j, i
		}
		m.edges = append(m.edges, localEdge{i: i, j: j, w: e.Weight})
	}
	sort.Slice(m.edges, func(a, b int) bool {
		if m.edges[a].i != m.edges[b].i {
			return m.edges[a].i < m.edges[b].i
		}
		return m.edges[a].j < m.edges[b].j
	})

	// a variables where both endpoints are schedulable on the machine.
	m.aIdx = make([]int, len(m.edges)*m.nM)
	for i := range m.aIdx {
		m.aIdx[i] = -1
	}
	for ei, e := range m.edges {
		for mi := range sp.Machines {
			if m.xIdx[e.i*m.nM+mi] >= 0 && m.xIdx[e.j*m.nM+mi] >= 0 {
				m.aIdx[ei*m.nM+mi] = nv
				nv++
			}
		}
	}

	m.Prob.LP.NumVars = nv
	m.Prob.Integer = make([]bool, nv)
	for i := 0; i < m.nx; i++ {
		m.Prob.Integer[i] = true
	}

	// Objective: sum of a variables plus the placement bonus on x.
	totalW := 0.0
	for _, e := range m.edges {
		totalW += e.w
	}
	totalContainers := sp.TotalContainers()
	if totalContainers > 0 {
		m.placementBonus = 1e-4 * (totalW + 1) / float64(totalContainers)
	}
	for ei := range m.edges {
		for mi := 0; mi < m.nM; mi++ {
			if v := m.aIdx[ei*m.nM+mi]; v >= 0 {
				m.Prob.LP.Objective = append(m.Prob.LP.Objective, lp.Coef{Var: v, Val: 1})
			}
		}
	}
	if m.placementBonus > 0 {
		for i := 0; i < m.nS*m.nM; i++ {
			if v := m.xIdx[i]; v >= 0 {
				m.Prob.LP.Objective = append(m.Prob.LP.Objective, lp.Coef{Var: v, Val: m.placementBonus})
			}
		}
	}

	// (3) SLA rows.
	for si, s := range sp.Services {
		var row []lp.Coef
		for mi := 0; mi < m.nM; mi++ {
			if v := m.xIdx[si*m.nM+mi]; v >= 0 {
				row = append(row, lp.Coef{Var: v, Val: 1})
			}
		}
		if len(row) > 0 {
			m.Prob.LP.AddRow(row, lp.LE, float64(p.Services[s].Replicas))
		}
	}
	// (4) resource rows.
	for mi := range sp.Machines {
		for r := range p.ResourceNames {
			var row []lp.Coef
			for si, s := range sp.Services {
				if v := m.xIdx[si*m.nM+mi]; v >= 0 && p.Services[s].Request[r] > 0 {
					row = append(row, lp.Coef{Var: v, Val: p.Services[s].Request[r]})
				}
			}
			if len(row) > 0 {
				m.Prob.LP.AddRow(row, lp.LE, sp.Capacity[mi][r])
			}
		}
	}
	// (5) anti-affinity rows.
	for _, rule := range sp.Anti {
		for mi := range sp.Machines {
			var row []lp.Coef
			for _, s := range rule.Services {
				si, ok := local[s]
				if !ok {
					continue
				}
				if v := m.xIdx[si*m.nM+mi]; v >= 0 {
					row = append(row, lp.Coef{Var: v, Val: 1})
				}
			}
			if len(row) > 0 {
				m.Prob.LP.AddRow(row, lp.LE, float64(rule.Cap[mi]))
			}
		}
	}
	// (7)+(8) gained-affinity linearization.
	for ei, e := range m.edges {
		di := float64(p.Services[sp.Services[e.i]].Replicas)
		dj := float64(p.Services[sp.Services[e.j]].Replicas)
		for mi := 0; mi < m.nM; mi++ {
			av := m.aIdx[ei*m.nM+mi]
			if av < 0 {
				continue
			}
			xi := m.xIdx[e.i*m.nM+mi]
			xj := m.xIdx[e.j*m.nM+mi]
			m.Prob.LP.AddRow([]lp.Coef{{Var: av, Val: 1}, {Var: xi, Val: -e.w / di}}, lp.LE, 0)
			m.Prob.LP.AddRow([]lp.Coef{{Var: av, Val: 1}, {Var: xj, Val: -e.w / dj}}, lp.LE, 0)
		}
	}
	return m, nil
}

// NumVars returns the number of variables of the formulation.
func (m *MIPModel) NumVars() int { return m.Prob.LP.NumVars }

// NumRows returns the number of constraint rows.
func (m *MIPModel) NumRows() int { return len(m.Prob.LP.Rows) }

// Extract converts a solution vector into placements in original ids.
func (m *MIPModel) Extract(x []float64) []Placement {
	var out []Placement
	for si := 0; si < m.nS; si++ {
		for mi := 0; mi < m.nM; mi++ {
			v := m.xIdx[si*m.nM+mi]
			if v < 0 {
				continue
			}
			cnt := int(math.Round(x[v]))
			if cnt > 0 {
				out = append(out, Placement{
					Service: m.sp.Services[si],
					Machine: m.sp.Machines[mi],
					Count:   cnt,
				})
			}
		}
	}
	return out
}

// AffinityValue computes the true gained affinity (no placement bonus)
// of an integral x-part of a solution vector.
func (m *MIPModel) AffinityValue(x []float64) float64 {
	var total float64
	for _, e := range m.edges {
		di := float64(m.sp.P.Services[m.sp.Services[e.i]].Replicas)
		dj := float64(m.sp.P.Services[m.sp.Services[e.j]].Replicas)
		for mi := 0; mi < m.nM; mi++ {
			xi := m.xIdx[e.i*m.nM+mi]
			xj := m.xIdx[e.j*m.nM+mi]
			if xi < 0 || xj < 0 {
				continue
			}
			total += e.w * math.Min(x[xi]/di, x[xj]/dj)
		}
	}
	return total
}

// Rounder returns a RASA-specific rounding heuristic for branch and
// bound: it floors the fractional x, then greedily re-adds containers in
// decreasing order of fractional part while resources, SLA and
// anti-affinity caps permit, and finally recomputes consistent a values.
func (m *MIPModel) Rounder() mip.Rounder {
	p := m.sp.P
	return func(x []float64) ([]float64, float64, bool) {
		out := make([]float64, len(x))
		// Floor the integer part.
		used := make([]cluster.Resources, m.nM)
		for mi := range used {
			used[mi] = make(cluster.Resources, len(p.ResourceNames))
		}
		placed := make([]int, m.nS)
		antiUsed := make([][]int, len(m.sp.Anti))
		for k := range antiUsed {
			antiUsed[k] = make([]int, m.nM)
		}
		memberOf := make([][]int, m.nS) // service -> rule indices
		for k, rule := range m.sp.Anti {
			for _, s := range rule.Services {
				for si, os := range m.sp.Services {
					if os == s {
						memberOf[si] = append(memberOf[si], k)
					}
				}
			}
		}
		add := func(si, mi, cnt int) bool {
			s := m.sp.Services[si]
			req := p.Services[s].Request
			if placed[si]+cnt > p.Services[s].Replicas {
				return false
			}
			need := req.Scale(float64(cnt))
			if !used[mi].Add(need).Fits(m.sp.Capacity[mi]) {
				return false
			}
			for _, k := range memberOf[si] {
				if antiUsed[k][mi]+cnt > m.sp.Anti[k].Cap[mi] {
					return false
				}
			}
			used[mi] = used[mi].Add(need)
			placed[si] += cnt
			for _, k := range memberOf[si] {
				antiUsed[k][mi] += cnt
			}
			out[m.xIdx[si*m.nM+mi]] += float64(cnt)
			return true
		}
		type fracEntry struct {
			si, mi int
			frac   float64
		}
		var fracs []fracEntry
		for si := 0; si < m.nS; si++ {
			for mi := 0; mi < m.nM; mi++ {
				v := m.xIdx[si*m.nM+mi]
				if v < 0 {
					continue
				}
				fl := math.Floor(x[v] + 1e-9)
				if fl > 0 {
					if !add(si, mi, int(fl)) {
						// Floored base should always fit; if numerical
						// noise breaks it, add what fits one by one.
						for k := 0; k < int(fl); k++ {
							if !add(si, mi, 1) {
								break
							}
						}
					}
				}
				if fr := x[v] - fl; fr > 1e-6 {
					fracs = append(fracs, fracEntry{si, mi, fr})
				}
			}
		}
		sort.Slice(fracs, func(a, b int) bool {
			if fracs[a].frac != fracs[b].frac {
				return fracs[a].frac > fracs[b].frac
			}
			if fracs[a].si != fracs[b].si {
				return fracs[a].si < fracs[b].si
			}
			return fracs[a].mi < fracs[b].mi
		})
		for _, f := range fracs {
			add(f.si, f.mi, 1)
		}
		// Fill the a variables consistently with the rounded x.
		var obj float64
		for ei, e := range m.edges {
			di := float64(p.Services[m.sp.Services[e.i]].Replicas)
			dj := float64(p.Services[m.sp.Services[e.j]].Replicas)
			for mi := 0; mi < m.nM; mi++ {
				av := m.aIdx[ei*m.nM+mi]
				if av < 0 {
					continue
				}
				xi := m.xIdx[e.i*m.nM+mi]
				xj := m.xIdx[e.j*m.nM+mi]
				a := e.w * math.Min(out[xi]/di, out[xj]/dj)
				out[av] = a
				obj += a
			}
		}
		for i := 0; i < m.nS*m.nM; i++ {
			if v := m.xIdx[i]; v >= 0 {
				obj += m.placementBonus * out[v]
			}
		}
		return out, obj, true
	}
}

// MachineGroup is a set of interchangeable machines of a subproblem:
// identical residual capacity (quantized), identical schedulability over
// the subproblem's services, and identical anti-affinity caps. Machine
// grouping is the model-size reduction the paper's cutting-stock
// formulation relies on (a_{s,s',g} is indexed by group in Table I).
type MachineGroup struct {
	Machines []int // local machine indices within the subproblem
	Capacity cluster.Resources
	AntiCap  []int  // residual anti-affinity cap per subproblem rule
	CanHost  []bool // per local service
}

// Count returns the number of machines in the group.
func (g *MachineGroup) Count() int { return len(g.Machines) }

// GroupMachines partitions the subproblem's machines into groups of
// interchangeable machines.
func GroupMachines(sp *cluster.Subproblem) []MachineGroup {
	p := sp.P
	type key = string
	idx := make(map[key]int)
	var groups []MachineGroup
	for mi, mach := range sp.Machines {
		k := fmt.Sprintf("%.6g|", sp.Capacity[mi])
		canHost := make([]bool, len(sp.Services))
		for si, s := range sp.Services {
			canHost[si] = p.CanHost(s, mach)
			if canHost[si] {
				k += "1"
			} else {
				k += "0"
			}
		}
		anti := make([]int, len(sp.Anti))
		for r, rule := range sp.Anti {
			anti[r] = rule.Cap[mi]
			k += fmt.Sprintf("|%d", anti[r])
		}
		if gi, ok := idx[k]; ok {
			groups[gi].Machines = append(groups[gi].Machines, mi)
			continue
		}
		idx[k] = len(groups)
		groups = append(groups, MachineGroup{
			Machines: []int{mi},
			Capacity: sp.Capacity[mi].Clone(),
			AntiCap:  anti,
			CanHost:  canHost,
		})
	}
	return groups
}

// Pattern is a feasible placement of service containers on one machine
// of a group (Section IV-C2): counts per local service index.
type Pattern struct {
	Counts []int
	Group  int // index into the group slice it was generated for
}

// PatternValue returns the gained affinity one machine contributes when
// hosting the pattern.
func PatternValue(sp *cluster.Subproblem, counts []int) float64 {
	p := sp.P
	local := make(map[int]int, len(sp.Services))
	for si, s := range sp.Services {
		local[s] = si
	}
	var total float64
	for _, e := range p.Affinity.Edges() {
		i, okI := local[e.U]
		j, okJ := local[e.V]
		if !okI || !okJ {
			continue
		}
		if counts[i] == 0 || counts[j] == 0 {
			continue
		}
		di := float64(p.Services[e.U].Replicas)
		dj := float64(p.Services[e.V].Replicas)
		total += e.Weight * math.Min(float64(counts[i])/di, float64(counts[j])/dj)
	}
	return total
}

// PatternFeasible reports whether a pattern respects the group's
// capacity, schedulability and anti-affinity caps plus per-service
// replica bounds.
func PatternFeasible(sp *cluster.Subproblem, g *MachineGroup, counts []int) bool {
	p := sp.P
	need := make(cluster.Resources, len(p.ResourceNames))
	for si, c := range counts {
		if c == 0 {
			continue
		}
		if c < 0 || c > p.Services[sp.Services[si]].Replicas {
			return false
		}
		if !g.CanHost[si] {
			return false
		}
		req := p.Services[sp.Services[si]].Request
		for r := range need {
			need[r] += req[r] * float64(c)
		}
	}
	if !need.Fits(g.Capacity) {
		return false
	}
	for k, rule := range sp.Anti {
		var tot int
		for _, s := range rule.Services {
			for si, os := range sp.Services {
				if os == s {
					tot += counts[si]
				}
			}
		}
		if tot > g.AntiCap[k] {
			return false
		}
	}
	return true
}

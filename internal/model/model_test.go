package model

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/cloudsched/rasa/internal/cluster"
	"github.com/cloudsched/rasa/internal/graph"
	"github.com/cloudsched/rasa/internal/mip"
)

// pairProblem is the Fig. 2 scenario: two services, two replicas each,
// three machines, unit affinity.
func pairProblem(capacity float64) *cluster.Problem {
	g := graph.New(2)
	g.AddEdge(0, 1, 1.0)
	return &cluster.Problem{
		ResourceNames: []string{"cpu"},
		Services: []cluster.Service{
			{Name: "A", Replicas: 2, Request: cluster.Resources{1}},
			{Name: "B", Replicas: 2, Request: cluster.Resources{1}},
		},
		Machines: []cluster.Machine{
			{Name: "m0", Capacity: cluster.Resources{capacity}},
			{Name: "m1", Capacity: cluster.Resources{capacity}},
			{Name: "m2", Capacity: cluster.Resources{capacity}},
		},
		Affinity: g,
	}
}

func solveModel(t *testing.T, m *MIPModel) mip.Solution {
	t.Helper()
	sol, err := mip.Solve(context.Background(), &m.Prob, mip.Options{Rounder: m.Rounder()})
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func applyPlacements(p *cluster.Problem, pls []Placement) *cluster.Assignment {
	a := cluster.NewAssignment(p.N(), p.M())
	for _, pl := range pls {
		a.Add(pl.Service, pl.Machine, pl.Count)
	}
	return a
}

func TestMIPFullCollocation(t *testing.T) {
	// Capacity 4 lets both containers of both services share a machine:
	// optimal gained affinity = 1.0 (all traffic localized).
	p := pairProblem(4)
	sp := cluster.FullSubproblem(p)
	m, err := BuildMIP(sp)
	if err != nil {
		t.Fatal(err)
	}
	sol := solveModel(t, m)
	if sol.Status != mip.Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	a := applyPlacements(p, m.Extract(sol.X))
	if got := a.GainedAffinity(p); math.Abs(got-1.0) > 1e-6 {
		t.Fatalf("gained = %v, want 1.0", got)
	}
	if vs := a.Check(p, true); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
}

func TestMIPCapacityLimited(t *testing.T) {
	// Capacity 2: each machine fits two containers, so the best is two
	// A+B pairs on two machines -> gained affinity 1.0 still. Capacity 1
	// forbids any collocation -> gained 0.
	p := pairProblem(2)
	sp := cluster.FullSubproblem(p)
	m, _ := BuildMIP(sp)
	sol := solveModel(t, m)
	a := applyPlacements(p, m.Extract(sol.X))
	if got := a.GainedAffinity(p); math.Abs(got-1.0) > 1e-6 {
		t.Fatalf("cap 2: gained = %v, want 1.0", got)
	}

	p = pairProblem(1)
	sp = cluster.FullSubproblem(p)
	m, _ = BuildMIP(sp)
	sol = solveModel(t, m)
	a = applyPlacements(p, m.Extract(sol.X))
	if got := a.GainedAffinity(p); got > 1e-9 {
		t.Fatalf("cap 1: gained = %v, want 0", got)
	}
	// Only 3 slots exist for 4 containers; the placement bonus must fill
	// every slot rather than dropping placeable containers.
	if got := a.Placed(0) + a.Placed(1); got != 3 {
		t.Fatalf("placed %d containers, want 3 (capacity-bound)", got)
	}
}

func TestMIPAntiAffinity(t *testing.T) {
	// Anti-affinity cap 1 over {A,B} on each machine prevents collocation
	// even with large capacity.
	p := pairProblem(10)
	p.AntiAffinity = []cluster.AntiAffinityRule{{Services: []int{0, 1}, MaxPerHost: 1}}
	sp := cluster.FullSubproblem(p)
	m, _ := BuildMIP(sp)
	sol := solveModel(t, m)
	a := applyPlacements(p, m.Extract(sol.X))
	if got := a.GainedAffinity(p); got > 1e-9 {
		t.Fatalf("gained = %v, want 0 under anti-affinity", got)
	}
	if vs := a.Check(p, false); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
}

func TestMIPSchedulable(t *testing.T) {
	// A restricted to m0/m1 and B to m2: no machine can host both.
	p := pairProblem(10)
	p.Schedulable = []cluster.Bitmap{cluster.NewBitmap(3), cluster.NewBitmap(3)}
	p.Schedulable[0].Set(0)
	p.Schedulable[0].Set(1)
	p.Schedulable[1].Set(2)
	sp := cluster.FullSubproblem(p)
	m, _ := BuildMIP(sp)
	sol := solveModel(t, m)
	a := applyPlacements(p, m.Extract(sol.X))
	if got := a.GainedAffinity(p); got > 1e-9 {
		t.Fatalf("gained = %v, want 0", got)
	}
	for _, pl := range m.Extract(sol.X) {
		if pl.Service == 1 && pl.Machine != 2 {
			t.Fatalf("B placed on machine %d", pl.Machine)
		}
	}
}

func TestMIPResidualCapacity(t *testing.T) {
	// Residual capacities below raw capacity must be honored.
	p := pairProblem(4)
	sp := cluster.FullSubproblem(p)
	for i := range sp.Capacity {
		sp.Capacity[i] = cluster.Resources{1} // only one slot per machine
	}
	m, _ := BuildMIP(sp)
	sol := solveModel(t, m)
	pls := m.Extract(sol.X)
	perMachine := map[int]int{}
	for _, pl := range pls {
		perMachine[pl.Machine] += pl.Count
	}
	for mach, cnt := range perMachine {
		if cnt > 1 {
			t.Fatalf("machine %d hosts %d > residual 1", mach, cnt)
		}
	}
}

func TestAffinityValueMatchesEvaluation(t *testing.T) {
	p := pairProblem(4)
	sp := cluster.FullSubproblem(p)
	m, _ := BuildMIP(sp)
	sol := solveModel(t, m)
	a := applyPlacements(p, m.Extract(sol.X))
	if diff := math.Abs(m.AffinityValue(sol.X) - a.GainedAffinity(p)); diff > 1e-6 {
		t.Fatalf("model affinity %v vs cluster evaluation %v", m.AffinityValue(sol.X), a.GainedAffinity(p))
	}
}

func TestGroupMachines(t *testing.T) {
	p := pairProblem(4)
	p.Machines[2].Capacity = cluster.Resources{8} // one machine differs
	sp := cluster.FullSubproblem(p)
	groups := GroupMachines(sp)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	var total int
	for _, g := range groups {
		total += g.Count()
	}
	if total != 3 {
		t.Fatalf("grouped machines = %d, want 3", total)
	}
}

func TestGroupMachinesSplitsOnCompat(t *testing.T) {
	p := pairProblem(4)
	p.Schedulable = []cluster.Bitmap{nil, cluster.NewBitmap(3)}
	p.Schedulable[1].Set(0) // B only on m0 -> m0 differs from m1/m2
	sp := cluster.FullSubproblem(p)
	groups := GroupMachines(sp)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
}

func TestPatternValueAndFeasibility(t *testing.T) {
	p := pairProblem(2)
	sp := cluster.FullSubproblem(p)
	groups := GroupMachines(sp)
	if len(groups) != 1 {
		t.Fatalf("groups = %d", len(groups))
	}
	g := &groups[0]
	// Pattern [1,1]: one container of each -> value = min(1/2,1/2) = 0.5.
	if v := PatternValue(sp, []int{1, 1}); math.Abs(v-0.5) > 1e-9 {
		t.Fatalf("value = %v, want 0.5", v)
	}
	if !PatternFeasible(sp, g, []int{1, 1}) {
		t.Fatal("[1,1] should be feasible")
	}
	if PatternFeasible(sp, g, []int{2, 1}) {
		t.Fatal("[2,1] exceeds capacity 2")
	}
	if PatternFeasible(sp, g, []int{3, 0}) {
		t.Fatal("[3,0] exceeds replicas")
	}
	if PatternFeasible(sp, g, []int{-1, 0}) {
		t.Fatal("negative counts must be rejected")
	}
}

func TestPatternFeasibleRespectsAnti(t *testing.T) {
	p := pairProblem(10)
	p.AntiAffinity = []cluster.AntiAffinityRule{{Services: []int{0, 1}, MaxPerHost: 1}}
	sp := cluster.FullSubproblem(p)
	groups := GroupMachines(sp)
	if PatternFeasible(sp, &groups[0], []int{1, 1}) {
		t.Fatal("anti-affinity must reject [1,1]")
	}
	if !PatternFeasible(sp, &groups[0], []int{1, 0}) {
		t.Fatal("[1,0] should be feasible")
	}
}

// randomSubproblem builds a small random subproblem with guaranteed
// total capacity.
func randomSubproblem(rng *rand.Rand) *cluster.Subproblem {
	n := 2 + rng.Intn(4)
	mN := 2 + rng.Intn(3)
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(rng.Intn(n), rng.Intn(n), rng.Float64()+0.1)
	}
	p := &cluster.Problem{ResourceNames: []string{"cpu"}, Affinity: g}
	for s := 0; s < n; s++ {
		p.Services = append(p.Services, cluster.Service{
			Name: "s", Replicas: 1 + rng.Intn(3), Request: cluster.Resources{1},
		})
	}
	for j := 0; j < mN; j++ {
		p.Machines = append(p.Machines, cluster.Machine{
			Name: "m", Capacity: cluster.Resources{float64(2 + rng.Intn(6))},
		})
	}
	return cluster.FullSubproblem(p)
}

// Property: solved placements are always constraint-feasible and never
// over-place a service.
func TestPropertySolutionsFeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sp := randomSubproblem(rng)
		m, err := BuildMIP(sp)
		if err != nil {
			return false
		}
		sol, err := mip.Solve(context.Background(), &m.Prob, mip.Options{Rounder: m.Rounder()})
		if err != nil || sol.X == nil {
			return false
		}
		a := applyPlacements(sp.P, m.Extract(sol.X))
		for s := range sp.P.Services {
			if a.Placed(s) > sp.P.Services[s].Replicas {
				return false
			}
		}
		return len(a.Check(sp.P, false)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the rounder always produces feasible points whose reported
// objective matches an independent evaluation.
func TestPropertyRounderConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sp := randomSubproblem(rng)
		m, err := BuildMIP(sp)
		if err != nil {
			return false
		}
		// Feed the rounder a random fractional point within [0, d].
		x := make([]float64, m.NumVars())
		for si := 0; si < len(sp.Services); si++ {
			for mi := 0; mi < len(sp.Machines); mi++ {
				if v := m.xIdx[si*m.nM+mi]; v >= 0 {
					x[v] = rng.Float64() * float64(sp.P.Services[sp.Services[si]].Replicas)
				}
			}
		}
		rx, obj, ok := m.Rounder()(x)
		if !ok {
			return false
		}
		a := applyPlacements(sp.P, m.Extract(rx))
		if len(a.Check(sp.P, false)) != 0 {
			return false
		}
		var bonus float64
		for i := 0; i < m.nS*m.nM; i++ {
			if v := m.xIdx[i]; v >= 0 {
				bonus += m.placementBonus * rx[v]
			}
		}
		want := a.GainedAffinity(sp.P) + bonus
		return math.Abs(obj-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuildMIP(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	sp := randomSubproblem(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildMIP(sp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveSubproblemMIP(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	sp := randomSubproblem(rng)
	m, err := BuildMIP(sp)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mip.Solve(context.Background(), &m.Prob, mip.Options{Rounder: m.Rounder()}); err != nil {
			b.Fatal(err)
		}
	}
}

// Package cluster models a containerized cluster for the RASA problem
// (Section II of the paper): services with replica requirements (SLA),
// machines with multi-dimensional resource capacities, anti-affinity
// rules, a schedulability matrix, and the affinity graph between
// services. It also implements constraint validation and the
// gained-affinity objective (Definition 1).
package cluster

import (
	"errors"
	"fmt"
	"math"

	"github.com/cloudsched/rasa/internal/graph"
)

// Resources is a vector of resource quantities indexed by resource type
// (e.g. CPU millicores, memory MiB). All problems within a cluster use
// the same resource-type ordering.
type Resources []float64

// Add returns r + o.
func (r Resources) Add(o Resources) Resources {
	out := make(Resources, len(r))
	for i := range r {
		out[i] = r[i] + o[i]
	}
	return out
}

// Sub returns r - o.
func (r Resources) Sub(o Resources) Resources {
	out := make(Resources, len(r))
	for i := range r {
		out[i] = r[i] - o[i]
	}
	return out
}

// Scale returns r * k.
func (r Resources) Scale(k float64) Resources {
	out := make(Resources, len(r))
	for i := range r {
		out[i] = r[i] * k
	}
	return out
}

// Fits reports whether r <= cap component-wise (with a small tolerance
// to absorb floating-point accumulation).
func (r Resources) Fits(cap Resources) bool {
	const eps = 1e-9
	for i := range r {
		if r[i] > cap[i]+eps {
			return false
		}
	}
	return true
}

// Clone returns a copy of r.
func (r Resources) Clone() Resources {
	out := make(Resources, len(r))
	copy(out, r)
	return out
}

// Service is a microservice that must run d_s homogeneous containers.
type Service struct {
	Name     string
	Replicas int       // d_s: number of containers required by the SLA
	Request  Resources // R^S_{r,s}: per-container resource request
}

// Machine is a physical machine (or VM) that hosts containers.
type Machine struct {
	Name     string
	Capacity Resources // R^M_{r,m}: total resource capacity
	// Spec identifies the machine's hardware specification. Machines with
	// equal Spec and equal compatibility rows are interchangeable; the
	// model builder exploits this for machine grouping.
	Spec int
}

// AntiAffinityRule caps how many containers from a set of services may
// share one machine (constraint (5); h_k in the paper). A rule over a
// single service is the common service-to-machine anti-affinity.
type AntiAffinityRule struct {
	Services   []int // indices into Problem.Services
	MaxPerHost int   // h_k
}

// Problem is a full RASA problem instance: the cluster inventory plus
// the affinity graph. The schedulability matrix b is stored per service
// as a bitmap over machines; a nil Schedulable means every service can
// run on every machine.
type Problem struct {
	ResourceNames []string
	Services      []Service
	Machines      []Machine
	Affinity      *graph.Graph // vertex i <=> Services[i]
	AntiAffinity  []AntiAffinityRule
	Schedulable   []Bitmap // [service] -> bitmap over machines; nil = all allowed
}

// Bitmap is a simple bitset over machine indices.
type Bitmap []uint64

// NewBitmap returns a bitmap able to hold n bits, all zero.
func NewBitmap(n int) Bitmap { return make(Bitmap, (n+63)/64) }

// Set sets bit i.
func (b Bitmap) Set(i int) { b[i/64] |= 1 << (uint(i) % 64) }

// Clear clears bit i.
func (b Bitmap) Clear(i int) { b[i/64] &^= 1 << (uint(i) % 64) }

// Get reports bit i.
func (b Bitmap) Get(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// Grow returns a bitmap able to hold n bits, preserving every set bit.
// The receiver is returned unchanged when it is already large enough,
// so cheap no-op growth is the common case.
func (b Bitmap) Grow(n int) Bitmap {
	want := (n + 63) / 64
	if len(b) >= want {
		return b
	}
	out := make(Bitmap, want)
	copy(out, b)
	return out
}

// Clone returns a copy of the bitmap.
func (b Bitmap) Clone() Bitmap {
	out := make(Bitmap, len(b))
	copy(out, b)
	return out
}

// Intersects reports whether b and o share any set bit.
func (b Bitmap) Intersects(o Bitmap) bool {
	n := len(b)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if b[i]&o[i] != 0 {
			return true
		}
	}
	return false
}

// N returns len(p.Services).
func (p *Problem) N() int { return len(p.Services) }

// M returns len(p.Machines).
func (p *Problem) M() int { return len(p.Machines) }

// CanHost reports b_{s,m}: whether machine m may host containers of
// service s.
func (p *Problem) CanHost(s, m int) bool {
	if p.Schedulable == nil || p.Schedulable[s] == nil {
		return true
	}
	return p.Schedulable[s].Get(m)
}

// ErrInvalidProblem is the sentinel every Validate failure wraps:
// errors.Is(err, ErrInvalidProblem) identifies a structurally broken
// problem instance without string-matching the detail message.
var ErrInvalidProblem = errors.New("cluster: invalid problem")

// Validate checks structural consistency of the problem instance. All
// returned errors wrap ErrInvalidProblem.
func (p *Problem) Validate() error {
	nr := len(p.ResourceNames)
	if nr == 0 {
		return fmt.Errorf("%w: no resource types defined", ErrInvalidProblem)
	}
	for i, s := range p.Services {
		if s.Replicas <= 0 {
			return fmt.Errorf("%w: service %d (%s) has non-positive replicas %d", ErrInvalidProblem, i, s.Name, s.Replicas)
		}
		if len(s.Request) != nr {
			return fmt.Errorf("%w: service %d (%s) request has %d resources, want %d", ErrInvalidProblem, i, s.Name, len(s.Request), nr)
		}
		for r, v := range s.Request {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: service %d (%s) has invalid %s request %v", ErrInvalidProblem, i, s.Name, p.ResourceNames[r], v)
			}
		}
	}
	for i, m := range p.Machines {
		if len(m.Capacity) != nr {
			return fmt.Errorf("%w: machine %d (%s) capacity has %d resources, want %d", ErrInvalidProblem, i, m.Name, len(m.Capacity), nr)
		}
		for r, v := range m.Capacity {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: machine %d (%s) has invalid %s capacity %v", ErrInvalidProblem, i, m.Name, p.ResourceNames[r], v)
			}
		}
	}
	if p.Affinity == nil {
		return fmt.Errorf("%w: nil affinity graph", ErrInvalidProblem)
	}
	if p.Affinity.N() != len(p.Services) {
		return fmt.Errorf("%w: affinity graph has %d vertices, want %d services", ErrInvalidProblem, p.Affinity.N(), len(p.Services))
	}
	for k, rule := range p.AntiAffinity {
		if rule.MaxPerHost < 0 {
			return fmt.Errorf("%w: anti-affinity rule %d has negative cap", ErrInvalidProblem, k)
		}
		for _, s := range rule.Services {
			if s < 0 || s >= len(p.Services) {
				return fmt.Errorf("%w: anti-affinity rule %d references service %d out of range", ErrInvalidProblem, k, s)
			}
		}
	}
	if p.Schedulable != nil && len(p.Schedulable) != len(p.Services) {
		return fmt.Errorf("%w: schedulable matrix has %d rows, want %d", ErrInvalidProblem, len(p.Schedulable), len(p.Services))
	}
	return nil
}

// TotalRequested returns the total resources requested by all replicas
// of all services.
func (p *Problem) TotalRequested() Resources {
	tot := make(Resources, len(p.ResourceNames))
	for _, s := range p.Services {
		for r := range tot {
			tot[r] += s.Request[r] * float64(s.Replicas)
		}
	}
	return tot
}

// TotalCapacity returns the total capacity of all machines.
func (p *Problem) TotalCapacity() Resources {
	tot := make(Resources, len(p.ResourceNames))
	for _, m := range p.Machines {
		for r := range tot {
			tot[r] += m.Capacity[r]
		}
	}
	return tot
}

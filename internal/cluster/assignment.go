package cluster

import (
	"fmt"
	"sort"
)

// Assignment is a container-to-machine mapping: X[s][m] is the number of
// containers of service s placed on machine m (the decision variable x
// in the paper's formulation). Machines are stored sparsely per service
// since a service typically touches few machines.
type Assignment struct {
	N, M int
	// counts[s] maps machine index -> container count (>0 entries only).
	counts []map[int]int
}

// NewAssignment returns an empty assignment for n services and m machines.
func NewAssignment(n, m int) *Assignment {
	a := &Assignment{N: n, M: m, counts: make([]map[int]int, n)}
	return a
}

// Get returns X[s][m].
func (a *Assignment) Get(s, m int) int {
	if a.counts[s] == nil {
		return 0
	}
	return a.counts[s][m]
}

// Set sets X[s][m] = v (v must be >= 0).
func (a *Assignment) Set(s, m, v int) {
	if v < 0 {
		panic(fmt.Sprintf("cluster: negative assignment x[%d][%d] = %d", s, m, v))
	}
	if v == 0 {
		if a.counts[s] != nil {
			delete(a.counts[s], m)
		}
		return
	}
	if a.counts[s] == nil {
		a.counts[s] = make(map[int]int)
	}
	a.counts[s][m] = v
}

// Add adds delta to X[s][m]; the result must stay >= 0.
func (a *Assignment) Add(s, m, delta int) {
	a.Set(s, m, a.Get(s, m)+delta)
}

// Placed returns the total number of containers of service s that are
// placed somewhere.
func (a *Assignment) Placed(s int) int {
	var t int
	for _, v := range a.counts[s] {
		t += v
	}
	return t
}

// MachinesOf returns the machines hosting at least one container of
// service s, sorted ascending.
func (a *Assignment) MachinesOf(s int) []int {
	if a.counts[s] == nil {
		return nil
	}
	out := make([]int, 0, len(a.counts[s]))
	for m := range a.counts[s] {
		out = append(out, m)
	}
	sort.Ints(out)
	return out
}

// EachPlacement calls fn(s, m, count) for every non-zero entry, in
// deterministic (service, machine) order.
func (a *Assignment) EachPlacement(fn func(s, m, count int)) {
	for s := 0; s < a.N; s++ {
		for _, m := range a.MachinesOf(s) {
			fn(s, m, a.counts[s][m])
		}
	}
}

// Clone returns a deep copy.
func (a *Assignment) Clone() *Assignment {
	c := NewAssignment(a.N, a.M)
	for s := range a.counts {
		if a.counts[s] == nil {
			continue
		}
		c.counts[s] = make(map[int]int, len(a.counts[s]))
		for m, v := range a.counts[s] {
			c.counts[s][m] = v
		}
	}
	return c
}

// DropService returns a copy of the assignment with service s removed;
// services above s shift down by one index. The incremental engine uses
// it when a RemoveService event rebuilds the problem.
func (a *Assignment) DropService(s int) *Assignment {
	if s < 0 || s >= a.N {
		panic(fmt.Sprintf("cluster: DropService index %d out of range [0,%d)", s, a.N))
	}
	c := NewAssignment(a.N-1, a.M)
	for old := 0; old < a.N; old++ {
		if old == s || a.counts[old] == nil {
			continue
		}
		to := old
		if old > s {
			to = old - 1
		}
		c.counts[to] = make(map[int]int, len(a.counts[old]))
		for m, v := range a.counts[old] {
			c.counts[to][m] = v
		}
	}
	return c
}

// PerMachine returns, for each machine, the services placed on it with
// their counts (sorted by service id). Useful for per-machine constraint
// checks and affinity evaluation.
func (a *Assignment) PerMachine() [][]ServiceCount {
	out := make([][]ServiceCount, a.M)
	for s := 0; s < a.N; s++ {
		for m, v := range a.counts[s] {
			out[m] = append(out[m], ServiceCount{Service: s, Count: v})
		}
	}
	for m := range out {
		sort.Slice(out[m], func(i, j int) bool { return out[m][i].Service < out[m][j].Service })
	}
	return out
}

// ServiceCount pairs a service index with a container count.
type ServiceCount struct {
	Service int
	Count   int
}

// UsedResources returns the resources consumed on each machine.
func (a *Assignment) UsedResources(p *Problem) []Resources {
	used := make([]Resources, p.M())
	for m := range used {
		used[m] = make(Resources, len(p.ResourceNames))
	}
	for s := 0; s < a.N; s++ {
		req := p.Services[s].Request
		for m, v := range a.counts[s] {
			for r := range req {
				used[m][r] += req[r] * float64(v)
			}
		}
	}
	return used
}

// Violation describes one violated constraint found by Check.
type Violation struct {
	Kind    string // "sla", "resource", "anti-affinity", "schedulable"
	Detail  string
	Service int // -1 when not applicable
	Machine int // -1 when not applicable
}

func (v Violation) String() string { return v.Kind + ": " + v.Detail }

// Check validates the assignment against all constraints of the problem
// (Section II-C). If requireSLA is false, under-placement is not
// reported — used for intermediate states during migration where SLA is
// temporarily relaxed.
func (a *Assignment) Check(p *Problem, requireSLA bool) []Violation {
	var out []Violation
	if requireSLA {
		for s := range p.Services {
			if got := a.Placed(s); got != p.Services[s].Replicas {
				out = append(out, Violation{
					Kind:    "sla",
					Detail:  fmt.Sprintf("service %d placed %d, want %d", s, got, p.Services[s].Replicas),
					Service: s, Machine: -1,
				})
			}
		}
	}
	used := a.UsedResources(p)
	for m := range p.Machines {
		if !Resources(used[m]).Fits(p.Machines[m].Capacity) {
			out = append(out, Violation{
				Kind:    "resource",
				Detail:  fmt.Sprintf("machine %d used %v exceeds capacity %v", m, used[m], p.Machines[m].Capacity),
				Service: -1, Machine: m,
			})
		}
	}
	for s := 0; s < a.N; s++ {
		for m, v := range a.counts[s] {
			if v > 0 && !p.CanHost(s, m) {
				out = append(out, Violation{
					Kind:    "schedulable",
					Detail:  fmt.Sprintf("service %d not schedulable on machine %d", s, m),
					Service: s, Machine: m,
				})
			}
		}
	}
	for k, rule := range p.AntiAffinity {
		perMachine := make(map[int]int)
		for _, s := range rule.Services {
			for m, v := range a.counts[s] {
				perMachine[m] += v
			}
		}
		for m, tot := range perMachine {
			if tot > rule.MaxPerHost {
				out = append(out, Violation{
					Kind:    "anti-affinity",
					Detail:  fmt.Sprintf("rule %d: machine %d hosts %d containers, cap %d", k, m, tot, rule.MaxPerHost),
					Service: -1, Machine: m,
				})
			}
		}
	}
	return out
}

// GainedAffinity computes the overall gained affinity of the assignment
// (Definition 1): for every affinity edge (s,s') and machine m,
//
//	a_{s,s',m} = w_{s,s'} * min(x_{s,m}/d_s, x_{s',m}/d_{s'})
//
// summed over all machines and edges. The result is in the same unit as
// the affinity weights; divide by p.Affinity.TotalWeight() for the
// normalized figure the paper reports.
func (a *Assignment) GainedAffinity(p *Problem) float64 {
	var total float64
	per := a.PerMachine()
	for m := range per {
		svcs := per[m]
		if len(svcs) < 2 {
			continue
		}
		onM := make(map[int]int, len(svcs))
		for _, sc := range svcs {
			onM[sc.Service] = sc.Count
		}
		for _, sc := range svcs {
			s := sc.Service
			ds := float64(p.Services[s].Replicas)
			for _, h := range p.Affinity.Neighbors(s) {
				if h.To <= s { // count each edge once
					continue
				}
				cnt, ok := onM[h.To]
				if !ok {
					continue
				}
				dsp := float64(p.Services[h.To].Replicas)
				rs := float64(sc.Count) / ds
				rsp := float64(cnt) / dsp
				if rsp < rs {
					rs = rsp
				}
				total += h.Weight * rs
			}
		}
	}
	return total
}

// PairGainedAffinity returns the gained affinity between a specific pair
// of services, as a fraction of that pair's edge weight (i.e. the share
// of their traffic that is localized). Returns 0 if the pair has no
// affinity edge.
func (a *Assignment) PairGainedAffinity(p *Problem, s, sp int) float64 {
	w := p.Affinity.Weight(s, sp)
	if w == 0 {
		return 0
	}
	ds := float64(p.Services[s].Replicas)
	dsp := float64(p.Services[sp].Replicas)
	var frac float64
	for m, v := range a.counts[s] {
		v2 := a.Get(sp, m)
		if v2 == 0 {
			continue
		}
		rs := float64(v) / ds
		rsp := float64(v2) / dsp
		if rsp < rs {
			rs = rsp
		}
		frac += rs
	}
	return frac
}

// MoveCount returns the number of container moves needed to transition
// from a to b: the total positive difference per (service, machine).
func MoveCount(a, b *Assignment) int {
	if a.N != b.N {
		panic("cluster: MoveCount over assignments of different service counts")
	}
	var moves int
	for s := 0; s < a.N; s++ {
		seen := make(map[int]bool)
		for m, v := range a.counts[s] {
			nv := b.Get(s, m)
			if v > nv {
				moves += v - nv
			}
			seen[m] = true
		}
		_ = seen
	}
	return moves
}
